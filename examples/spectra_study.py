"""Domain study: eigensolver behaviour across application-like spectra.

The paper motivates EVD with PCA, tight-binding physics and quantum
chemistry — workloads whose matrices have very different spectra.  This
example runs the full pipeline on four spectrum shapes and reports
accuracy, deflation behaviour of divide & conquer, and agreement among the
three independent tridiagonal solvers.

    python examples/spectra_study.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.bench.workloads import (
    clustered_spectrum,
    geometric_spectrum,
    symmetric_with_spectrum,
    uniform_spectrum,
)
from repro.eig.dc import dc_eigh


def run_case(name: str, lam: np.ndarray, seed: int) -> None:
    lam = np.sort(lam)
    n = lam.size
    A = symmetric_with_spectrum(lam, seed=seed)

    res = repro.eigh(A, method="proposed")
    err = np.max(np.abs(res.eigenvalues - lam)) / max(np.max(np.abs(lam)), 1e-300)

    # Deflation behaviour of D&C on this spectrum.
    tri = res.tridiag
    _, _, stats = dc_eigh(tri.d, tri.e, compute_vectors=False, return_stats=True)

    # Independent solver agreement.
    lam_qr, _ = repro.tridiag_qr_eigh(tri.d, tri.e, compute_vectors=False)
    lam_bi, _ = repro.eigh_bisect(tri.d, tri.e, compute_vectors=False)
    scale = max(np.max(np.abs(lam)), 1.0)
    agree = max(
        np.max(np.abs(res.eigenvalues - lam_qr)),
        np.max(np.abs(res.eigenvalues - lam_bi)),
    ) / scale

    print(f"{name:>22}: n={n:4d} | rel err {err:.2e} | "
          f"residual {res.residual(A):.2e} | D&C deflation "
          f"{stats.deflation_fraction:5.1%} | solver agreement {agree:.2e}")


def main() -> None:
    print("Eigensolver study across application-like spectra\n")
    n = 200
    run_case("uniform (PCA-like)", uniform_spectrum(n, -1.0, 1.0), seed=1)
    run_case("geometric (chem.)", geometric_spectrum(n, cond=1e10), seed=2)
    run_case("clustered (bands)", clustered_spectrum(n, clusters=5, spread=1e-9,
                                                     seed=3), seed=3)
    two_level = np.concatenate([np.full(n // 2, -1.0), np.full(n - n // 2, 1.0)])
    run_case("two-level (spin)", two_level + 1e-14 * np.arange(n), seed=4)
    print("\nAll spectra are resolved to machine precision; graded and")
    print("degenerate spectra trigger divide-and-conquer deflation — the")
    print("mechanism that keeps Dstedc cheap in Figure 4.")


if __name__ == "__main__":
    main()
