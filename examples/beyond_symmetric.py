"""Beyond real-symmetric: Hermitian, generalized, and SVD problems.

The paper's substrate (Householder reductions + tridiagonal divide &
conquer + back transformation) solves more than the standard symmetric
eigenproblem.  This example exercises the three problem-class extensions:

  1. complex Hermitian EVD (the `zheevd` problem, via the real symmetric
     embedding);
  2. the generalized symmetric-definite problem ``A x = lambda B x``
     (the Ltaief et al. problem cited in related work, via Cholesky);
  3. SVD through bidiagonalization + the Golub-Kahan tridiagonal (the
     Gates et al. [10] companion problem).

    python examples/beyond_symmetric.py
"""

from __future__ import annotations

import numpy as np

from repro.core.extensions import eigh_generalized, eigh_hermitian
from repro.core.svd import svd


def main() -> None:
    rng = np.random.default_rng(21)

    # --- 1. Hermitian: a random tight-binding-style Hamiltonian ----------
    n = 80
    G = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    H = (G + G.conj().T) / 2.0
    lam, V = eigh_hermitian(H)
    resid = np.linalg.norm(H @ V - V * lam) / np.linalg.norm(H)
    orth = np.linalg.norm(V.conj().T @ V - np.eye(n))
    print(f"Hermitian EVD      n={n}: residual {resid:.2e}, unitarity {orth:.2e}")
    print(f"  (solved as one real symmetric problem of size {2 * n})")

    # --- 2. Generalized: a stiffness/mass pencil --------------------------
    n = 60
    A = rng.standard_normal((n, n))
    A = (A + A.T) / 2.0
    M = rng.standard_normal((n, n))
    B = M @ M.T + n * np.eye(n)  # SPD "mass matrix"
    lam, X = eigh_generalized(A, B)
    resid = np.linalg.norm(A @ X - B @ X * lam) / np.linalg.norm(A)
    borth = np.linalg.norm(X.T @ B @ X - np.eye(n))
    print(f"Generalized EVD    n={n}: residual {resid:.2e}, B-orthonormality "
          f"{borth:.2e}")
    print(f"  (own Cholesky + triangular solves; eigenvalues in "
          f"[{lam[0]:.3g}, {lam[-1]:.3g}])")

    # --- 3. SVD: low-rank plus noise --------------------------------------
    m, n, r = 120, 60, 5
    A = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
    A += 1e-6 * rng.standard_normal((m, n))
    s, U, V = svd(A)
    rec = np.linalg.norm((U * s) @ V.T - A) / np.linalg.norm(A)
    print(f"SVD              {m}x{n}: reconstruction {rec:.2e}")
    print(f"  singular values: {np.array2string(s[: r + 2], precision=3)}")
    print(f"  effective rank at 1e-3 cut: {int(np.sum(s > 1e-3 * s[0]))} "
          f"(planted {r})")
    print("\nAll three problems route every flop through the reproduced "
          "pipeline\n(reflectors -> tridiagonal -> divide & conquer -> "
          "back transform).")


if __name__ == "__main__":
    main()
