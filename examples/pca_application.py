"""Application: kernel PCA via the tridiagonalization pipeline.

Principal component analysis is the first application the paper lists for
large symmetric EVD (Section 7.2).  This example builds an RBF kernel
matrix over synthetic clustered data — a dense symmetric matrix whose top
eigenvectors embed the data — and extracts the leading components with
``repro.eigh_partial`` (the top-k path: Sturm bisection + inverse
iteration + a back transform over k columns only).

The quality check is intrinsic: the embedding must separate the planted
clusters (measured by the ratio of between- to within-cluster distances),
and the eigenpairs must satisfy the usual residual bounds.

    python examples/pca_application.py
"""

from __future__ import annotations

import numpy as np

import repro


def make_clustered_data(
    n_points: int, n_clusters: int, dim: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Points around ``n_clusters`` well-separated centers, with labels."""
    centers = rng.standard_normal((n_clusters, dim)) * 6.0
    labels = rng.integers(0, n_clusters, size=n_points)
    points = centers[labels] + rng.standard_normal((n_points, dim))
    return points, labels


def rbf_kernel(X: np.ndarray, gamma: float) -> np.ndarray:
    """Centered RBF kernel matrix (the PCA "covariance" in feature space)."""
    sq = np.sum(X * X, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    K = np.exp(-gamma * np.maximum(d2, 0.0))
    # Double centering (kernel PCA requirement).
    one = np.full((X.shape[0], X.shape[0]), 1.0 / X.shape[0])
    return K - one @ K - K @ one + one @ K @ one


def cluster_separation(embed: np.ndarray, labels: np.ndarray) -> float:
    """Between-cluster over within-cluster mean distance in the embedding."""
    centers = np.array([embed[labels == c].mean(axis=0) for c in np.unique(labels)])
    within = np.mean(
        [np.linalg.norm(embed[labels == c] - centers[i], axis=1).mean()
         for i, c in enumerate(np.unique(labels))]
    )
    diffs = centers[:, None, :] - centers[None, :, :]
    between = np.linalg.norm(diffs, axis=2)
    between = between[np.triu_indices(len(centers), 1)].mean()
    return float(between / max(within, 1e-300))


def main() -> None:
    rng = np.random.default_rng(11)
    n, clusters, dim, k = 400, 4, 12, 4
    X, labels = make_clustered_data(n, clusters, dim, rng)
    K = rbf_kernel(X, gamma=0.05)

    print(f"kernel PCA: {n} points, {clusters} planted clusters, "
          f"extracting top {k} components\n")

    # Top-k eigenpairs of the centered kernel matrix.
    res = repro.eigh_partial(K, (n - k, n - 1))
    lam = res.eigenvalues[::-1]  # descending, PCA convention
    V = res.eigenvectors[:, ::-1]

    resid = np.linalg.norm(K @ V - V * lam) / np.linalg.norm(K)
    lam_ref = np.linalg.eigvalsh(K)[::-1][:k]
    print(f"top eigenvalues: {np.array2string(lam, precision=2)}")
    print(f"  vs numpy:      {np.array2string(lam_ref, precision=2)}")
    print(f"  eigenpair residual: {resid:.2e}")

    embed = V * np.sqrt(np.maximum(lam, 0.0))
    sep_embed = cluster_separation(embed, labels)
    sep_raw = cluster_separation(X, labels)
    print(f"\ncluster separation (between/within distance ratio):")
    print(f"  raw {dim}-d data:        {sep_raw:5.2f}")
    print(f"  kernel PCA ({k} comps):  {sep_embed:5.2f}")

    # Variance captured.
    total = np.trace(K)
    print(f"\nvariance captured by {k} components: {np.sum(lam) / total:.1%}")
    print("\nThe partial-spectrum path answers the PCA query without the "
          "O(n^3)\nfull-eigenvector back transformation the paper's "
          "Section 6.2 laments.")


if __name__ == "__main__":
    main()
