"""Visualize the GPU bulge-chasing pipeline and the Section 3.3 model.

Simulates the paper-scale pipelined bulge chasing on the H100 model,
prints an ASCII Gantt chart of sweep lifetimes, the achieved-throughput
curve of Figure 12, and the Figure 5 closed-form-vs-executor comparison.

    python examples/gpu_pipeline_visualization.py
"""

from __future__ import annotations

from repro.gpusim import (
    CPU_8_CORE,
    H100,
    bc_task_bytes,
    bc_task_time_gpu,
    simulate_bc_pipeline,
)
from repro.gpusim.trace import ascii_gantt, throughput_timeline, utilization
from repro.models.baselines import magma_sb2st_time
from repro.models.bc_model import bc_time_model


def main() -> None:
    n, b = 65536, 32

    print(f"GPU bulge chasing pipeline, n = {n}, b = {b} (H100 model)\n")

    # Small-scale Gantt so the pipeline shape is visible.
    small = simulate_bc_pipeline(400, 16, 16, 1e-6)
    print("Sweep lifetimes (n = 400, b = 16, S = 16):")
    print(ascii_gantt(small, width=64, max_rows=16))
    print()

    # Figure 5: closed form vs executor vs the MAGMA line.
    magma = magma_sb2st_time(CPU_8_CORE, n, b)
    print(f"Figure 5 — estimated BC time vs S (MAGMA line: {magma:.1f} s)")
    for S in (1, 4, 16, 32, 64, 128):
        closed = bc_time_model(n, b, S)
        sim = simulate_bc_pipeline(n, b, S, 10e-6).total_time_s
        marker = "  << beats MAGMA" if sim < magma else ""
        print(f"  S={S:4d}: closed-form {closed:8.1f} s, executor {sim:8.1f} s"
              f"{marker}")
    print()

    # Figure 12: throughput vs parallelism, optimized configuration.
    dt, s_max = bc_task_time_gpu(H100, n, b, optimized=True)
    print(f"Figure 12 — achieved memory throughput (task = {dt * 1e6:.1f} us, "
          f"S_max = {s_max})")
    for S in (1, 8, 32, 132, s_max):
        sim = simulate_bc_pipeline(n, b, S, dt, bc_task_bytes(b))
        tl = throughput_timeline(sim)
        print(f"  S={S:4d}: {sim.throughput_gbs:7.0f} GB/s aggregate, "
              f"peak {tl.peak_gbs:7.0f} GB/s, "
              f"slot utilization {utilization(sim):5.1%}")
    print("\nMore in-flight sweeps -> higher memory throughput, exactly the")
    print("Nsight observation the paper uses to justify GPU bulge chasing.")


if __name__ == "__main__":
    main()
