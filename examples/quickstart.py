"""Quickstart: full symmetric eigendecomposition with the proposed pipeline.

Runs `repro.eigh` (DBBR band reduction + pipelined bulge chasing + divide &
conquer + incremental back transformation) on a random symmetric matrix,
verifies the decomposition, and compares against the MAGMA-like and
cuSOLVER-like baselines.

    python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys
import time

import numpy as np

import repro


def main(n: int = 300) -> None:
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n))
    A = (A + A.T) / 2.0
    print(f"Symmetric EVD of a random {n} x {n} matrix\n")

    lam_ref = np.linalg.eigvalsh(A)
    for method in ("proposed", "magma", "cusolver"):
        t0 = time.perf_counter()
        res = repro.eigh(A, method=method)
        dt = time.perf_counter() - t0
        V = res.eigenvectors
        err = np.max(np.abs(res.eigenvalues - lam_ref))
        resid = res.residual(A)
        orth = np.linalg.norm(V.T @ V - np.eye(n))
        print(
            f"{method:>9}: {dt:6.2f} s | max eigvalue err {err:.2e} | "
            f"residual {resid:.2e} | orthogonality {orth:.2e}"
        )

    # Peek inside the proposed pipeline.
    res = repro.eigh(A, method="proposed")
    tri = res.tridiag
    print(f"\nproposed pipeline internals:")
    print(f"  intermediate bandwidth b = {tri.bandwidth}")
    print(f"  SBR panels recorded      = {len(tri.band_result.blocks)}")
    print(f"  BC reflectors recorded   = {len(tri.bc_result.reflectors)}")
    if tri.pipeline_stats is not None:
        s = tri.pipeline_stats
        print(f"  BC pipeline rounds       = {s.rounds} "
              f"(mean {s.mean_parallel:.1f} sweeps in flight)")
    print("\nEverything checks out: A = V diag(lam) V^T to machine precision.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
