"""Partial-spectrum EVD and factorization reuse.

A common production pattern: tridiagonalize once (the expensive part),
persist the factors, then answer many cheap spectral queries later —
selected eigenvalue windows, extreme eigenpairs, quadratic forms — without
refactorizing.  This example demonstrates:

  1. `repro.eigh_partial` — selected eigenpairs (Sturm bisection + inverse
     iteration + a back transform over only the requested columns);
  2. `save_tridiag` / `load_tridiag` — persisting a factorization and
     back-transforming from disk;
  3. the blocked BC back transformation (the paper's future-work item)
     applied to a wide eigenvector window.

    python examples/partial_spectrum_and_reuse.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.core.bc_back_transform import apply_q1_blocked, blocked_q1_blocks
from repro.core.serialization import load_tridiag, save_tridiag
from repro.eig.dc import dc_eigh


def main() -> None:
    n = 400
    rng = np.random.default_rng(42)
    A = rng.standard_normal((n, n))
    A = (A + A.T) / 2.0
    lam_ref = np.linalg.eigvalsh(A)

    # --- 1. Selected eigenpairs ------------------------------------------
    t0 = time.perf_counter()
    window = repro.eigh_partial(A, (0, 9))  # the 10 smallest
    t_partial = time.perf_counter() - t0
    err = np.max(np.abs(window.eigenvalues - lam_ref[:10]))
    V = window.eigenvectors
    resid = np.linalg.norm(A @ V - V * window.eigenvalues) / np.linalg.norm(A)
    print(f"eigh_partial, 10 smallest of {n}: {t_partial:.2f} s "
          f"| eigenvalue err {err:.2e} | residual {resid:.2e}")

    t0 = time.perf_counter()
    full = repro.eigh(A)
    t_full = time.perf_counter() - t0
    print(f"full eigh for comparison:        {t_full:.2f} s "
          f"({t_full / t_partial:.1f}x the partial query)")

    # --- 2. Persist and reuse the factorization --------------------------
    tri = repro.tridiagonalize(A)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "factors.npz"
        save_tridiag(path, tri)
        size_mb = path.stat().st_size / 1e6
        loaded = load_tridiag(path)
        print(f"\nfactorization persisted: {size_mb:.1f} MB on disk")
        # Answer a new query from disk: eigenvectors 190..199.
        lam, U = dc_eigh(loaded.d, loaded.e)
        Vw = np.array(U[:, 190:200])
        loaded.apply_q(Vw)
        r = np.linalg.norm(A @ Vw - Vw * lam[190:200]) / np.linalg.norm(A)
        print(f"mid-spectrum window from disk: residual {r:.2e}")

    # --- 3. Blocked BC back transformation (future work) ------------------
    bc = tri.bc_result
    blocks = blocked_q1_blocks(bc, group=16)
    X = rng.standard_normal((n, 50))
    t0 = time.perf_counter()
    Y_scalar = X.copy()
    bc.apply_q1(Y_scalar)
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    Y_blocked = X.copy()
    apply_q1_blocked(blocks, Y_blocked)
    t_blocked = time.perf_counter() - t0
    dev = np.max(np.abs(Y_scalar - Y_blocked))
    print(f"\nblocked BC back transform (group 16): "
          f"{t_scalar * 1e3:.0f} ms scalar -> {t_blocked * 1e3:.0f} ms blocked "
          f"({t_scalar / max(t_blocked, 1e-9):.1f}x), deviation {dev:.2e}")
    print(f"  ({len(bc.reflectors)} reflectors collapsed into "
          f"{len(blocks)} WY blocks)")


if __name__ == "__main__":
    main()
