"""Walkthrough: every stage of the two-stage tridiagonalization, explicit.

Reproduces the paper's pipeline step by step on a small matrix so each
intermediate object can be inspected:

  1. DBBR (Algorithm 1): full -> band, with deferred rank-2k updates;
  2. pipelined bulge chasing (Algorithm 2): band -> tridiagonal, with the
     gCom-style sweep pipeline;
  3. divide & conquer on the tridiagonal matrix;
  4. back transformation (Q1 then the SBR WY blocks, Figure 13 grouping).

    python examples/two_stage_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.band.ops import bandwidth_of, bandwidth_profile
from repro.band.storage import dense_from_band
from repro.core.back_transform import assemble_eigenvectors
from repro.core.bc_pipeline import bulge_chase_pipelined
from repro.core.dbbr import dbbr
from repro.eig.dc import dc_eigh


def main() -> None:
    n, b, k = 96, 4, 16
    rng = np.random.default_rng(7)
    A = rng.standard_normal((n, n))
    A = (A + A.T) / 2.0

    print(f"Stage 0: random symmetric A, n = {n} (dense bandwidth {bandwidth_of(A)})")

    # --- Stage 1: double-blocking band reduction -------------------------
    red = dbbr(A, bandwidth=b, second_block=k, syr2k_kind="square")
    print(f"\nStage 1: DBBR with b = {b}, k = {k} (square-block syr2k)")
    print(f"  band bandwidth: {bandwidth_of(red.band, tol=1e-10)}")
    print(f"  WY blocks recorded: {len(red.blocks)} "
          f"(widths {sorted({blk.width for blk in red.blocks})})")
    print(f"  flops counted: {red.flops:.3g}")
    recon = np.linalg.norm(red.reconstruct() - A) / np.linalg.norm(A)
    print(f"  similarity check ||A - Q B Q^T||/||A|| = {recon:.2e}")

    # --- Stage 2: pipelined bulge chasing --------------------------------
    bc, stats = bulge_chase_pipelined(red.band, b)
    print(f"\nStage 2: pipelined bulge chasing")
    print(f"  tasks: {stats.total_tasks}, lockstep rounds: {stats.rounds}, "
          f"max parallel sweeps: {stats.max_parallel}")
    print(f"  serial would need {stats.total_tasks} rounds -> "
          f"{stats.total_tasks / max(stats.rounds, 1):.1f}x pipeline parallelism")
    prof = bandwidth_profile(dense_from_band(bc.d, bc.e))
    print(f"  output bandwidth profile max: {prof.max()} (tridiagonal)")

    # --- Stage 3: divide & conquer ---------------------------------------
    lam, U, dstats = dc_eigh(bc.d, bc.e, return_stats=True)
    print(f"\nStage 3: divide & conquer on tridiag(d, e)")
    print(f"  merges: {dstats.merges}, deflation fraction: "
          f"{dstats.deflation_fraction:.1%}")
    lam_ref = np.linalg.eigvalsh(A)
    print(f"  eigenvalue error vs numpy: {np.max(np.abs(lam - lam_ref)):.2e}")

    # --- Stage 4: back transformation ------------------------------------
    V = assemble_eigenvectors(red.blocks, bc, U, method="incremental",
                              group_width=k)
    resid = np.linalg.norm(A @ V - V * lam) / np.linalg.norm(A)
    orth = np.linalg.norm(V.T @ V - np.eye(n))
    print(f"\nStage 4: back transformation (Figure 13 grouping, width {k})")
    print(f"  eigenpair residual: {resid:.2e}, orthogonality: {orth:.2e}")
    print("\nPipeline complete: A = V diag(lam) V^T.")


if __name__ == "__main__":
    main()
