"""SolverService load test — service throughput vs a serial eigh loop.

Drives the :mod:`repro.serve` load generator on a mixed small-``n``
workload (repeated matrices, half of them on the stacked dense tier)
and reports throughput, latency percentiles, the batch-size histogram,
cache hit rate, and in-flight coalescing.  ``[measured]`` wall time.
Every service result is bit-compared against its serial counterpart, so
the speedup is only reported next to a machine-checked determinism
verdict.  Acceptance gate: >= 2x vs the serial loop at full scale.

Run directly (CI smoke mode finishes in a few seconds):

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]

Writes ``benchmarks/out/BENCH_serve.json`` (full mode only, or with
``--json`` forced); the CI smoke asserts its schema via
:data:`repro.serve.loadgen.ARTIFACT_SCHEMA_KEYS`.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.bench.reporting import banner, write_json_artifact
from repro.serve import ServiceConfig, WorkloadSpec, run_loadgen
from repro.serve.loadgen import print_report

OUT_DIR = pathlib.Path(__file__).parent / "out"

FULL_SPEC = WorkloadSpec(requests=200, sizes=(32, 64, 128), unique=80,
                         dense_fraction=0.5, seed=0)
SMOKE_SPEC = WorkloadSpec(requests=40, sizes=(24, 32), unique=16,
                          dense_fraction=0.5, seed=0)


def make_config(workers: int, backend: str) -> ServiceConfig:
    # A bounded queue with the blocking policy self-paces submission, so
    # the run exercises backpressure and the cache (later repeats of a
    # completed matrix hit at submit time) as well as coalescing.
    return ServiceConfig(
        workers=workers,
        backend=backend,
        queue_limit=32,
        backpressure="block",
        max_batch=16,
        batch_window_s=0.002,
    )


def run(
    smoke: bool = False,
    workers: int = 4,
    write_json: bool | None = None,
    backend: str = "numpy",
) -> dict:
    spec = SMOKE_SPEC if smoke else FULL_SPEC
    config = make_config(workers, backend)
    print(banner(
        f"SolverService vs serial eigh loop [backend: {backend}]",
        "measured",
    ))
    payload = run_loadgen(spec, config)
    payload["provenance"] = "measured"
    payload["smoke"] = smoke
    print_report(payload)

    if write_json if write_json is not None else not smoke:
        path = write_json_artifact(OUT_DIR, "serve", payload, backend=backend)
        print(f"\nartifact: {path}")
    sv = payload["service"]
    print(
        f"\nheadline: {sv['speedup_vs_serial']:.2f}x vs serial "
        f"({config.workers} workers, target {'—' if smoke else '2.0x'})"
    )
    return payload


def test_serve_speedup_smoke(report):
    """Benchmark-suite entry: even at smoke scale the service must beat
    the serial loop while staying bit-identical to it."""
    payload = run(smoke=True, write_json=False)
    sv = payload["service"]
    report(
        f"{sv['speedup_vs_serial']:.2f}x, "
        f"coalesced {sv['coalesced']}, "
        f"cache hit rate {sv['cache']['hit_rate']:.1%}"
    )
    assert payload["determinism"]["bit_identical_to_serial"]
    assert sv["speedup_vs_serial"] > 1.0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, no JSON artifact (CI gate)",
    )
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument(
        "--json",
        action="store_true",
        help="write the JSON artifact even in smoke mode",
    )
    ap.add_argument(
        "--backend",
        default="numpy",
        choices=["numpy", "cupy", "torch", "auto"],
        help="array backend for the worker contexts",
    )
    args = ap.parse_args(argv)
    payload = run(smoke=args.smoke, workers=args.workers,
                  write_json=args.json or None, backend=args.backend)
    if not payload["determinism"]["bit_identical_to_serial"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
