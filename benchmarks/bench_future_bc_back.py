"""Future work (Section 8) — blocked bulge-chasing back transformation.

The paper leaves the BC back transformation (61% of the eigenvector path)
as future work.  This repo implements the natural fix — WY-blocking runs
of consecutive same-sweep reflectors into width-``g`` GEMMs — and prices
it: past the break-even width the grouped scheme cuts the dominant stage
several-fold, which would flip the Figure-16 "vectors" comparison.

``[simulated]`` — cost vs group width, and the resulting end-to-end EVD.
``[measured]`` — the real blocked application: exactness vs the scalar
loop and laptop wall time across group sizes.
"""

from __future__ import annotations

import numpy as np

from repro.band.ops import random_symmetric_band
from repro.bench.reporting import banner
from repro.core.bc_back_transform import (
    apply_q1_blocked,
    blocked_bc_back_time,
    blocked_q1_blocks,
)
from repro.core.bulge_chasing import bulge_chase
from repro.gpusim import H100
from repro.models.baselines import bc_back_transform_time
from repro.models.proposed import proposed_evd_times

N, B = 49152, 32
GROUPS = [8, 16, 32, 64, 128, 256]


def test_future_blocked_bcback_simulated(benchmark, report):
    scalar = bc_back_transform_time(H100, N, B)
    rows = benchmark(
        lambda: [(g, blocked_bc_back_time(H100, N, B, g)) for g in GROUPS]
    )
    report(banner("Future work: blocked BC back transformation (H100)",
                  "simulated"))
    report(f"  today's scheme (paper's bottleneck): {scalar:7.1f} s")
    for g, t in rows:
        mark = "  <- beats today's scheme" if t < scalar else ""
        report(f"  WY group {g:4d}: {t:7.1f} s{mark}")
    best = min(t for _, t in rows)
    evd_today = proposed_evd_times(H100, N, True)
    improved = evd_today.total - evd_today.stages["bc_back"] + best
    report(f"  proposed EVD (vectors) today: {evd_today.total:6.1f} s "
           f"(bc_back {evd_today.fraction('bc_back'):.0%})")
    report(f"  with blocked bc_back:         {improved:6.1f} s "
           f"({evd_today.total / improved:.2f}x end-to-end)")
    assert best < scalar / 2
    assert improved < evd_today.total


def test_future_blocked_bcback_measured(benchmark, report):
    """Real numerics: the blocked application across group widths is
    exact, and the laptop wall time already improves (fewer Python-level
    operations, bigger GEMMs)."""
    n, b = 200, 4
    A = random_symmetric_band(n, b, np.random.default_rng(60))
    bc = bulge_chase(A, b)
    X = np.eye(n)

    def run():
        blocks = blocked_q1_blocks(bc, group=16)
        Y = X.copy()
        apply_q1_blocked(blocks, Y)
        return Y

    Y_blocked = benchmark(run)
    Y_scalar = X.copy()
    bc.apply_q1(Y_scalar)
    err = np.max(np.abs(Y_blocked - Y_scalar))
    report(banner("Future work (measured): blocked vs scalar Q1", "measured"))
    report(f"  n={n}, b={b}, reflectors={len(bc.reflectors)}")
    report(f"  max deviation blocked vs scalar: {err:.2e}")
    assert err < 1e-12


def test_future_scalar_bcback_measured(benchmark):
    """Scalar reference application for the pytest-benchmark comparison."""
    n, b = 200, 4
    A = random_symmetric_band(n, b, np.random.default_rng(60))
    bc = bulge_chase(A, b)
    X = np.eye(n)

    def run():
        Y = X.copy()
        bc.apply_q1(Y)
        return Y

    benchmark(run)
