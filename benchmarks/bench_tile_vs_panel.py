"""Band-reduction lineage comparison: tile (PLASMA) vs panel (MAGMA) vs
double-blocking (proposed).

Not a single paper figure — the context for Figure 9: the paper's DBBR
competes against the *panel*-based MAGMA sy2sb, which itself displaced the
*tile*-based PLASMA reduction.  This bench measures all three real
implementations at laptop scale (identical spectra asserted) and reports
the tile task DAG's parallelism — the property that made tiles win on
multicore and that the GPU panel algorithms trade away for bigger GEMMs.

``[measured]`` only.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import banner
from repro.bench.workloads import goe
from repro.core.dbbr import dbbr
from repro.core.sbr import sbr
from repro.core.tile_sbr import tile_sbr, tile_task_dag

N, B = 192, 8


def test_tile_sbr_measured(benchmark):
    A = goe(N, seed=24)
    res = benchmark(lambda: tile_sbr(A, B))
    assert res.bandwidth == B


def test_panel_sbr_measured(benchmark):
    A = goe(N, seed=24)
    res = benchmark(lambda: sbr(A, B))
    assert res.bandwidth == B


def test_dbbr_measured(benchmark):
    A = goe(N, seed=24)
    res = benchmark(lambda: dbbr(A, B, 32))
    assert res.bandwidth == B


def test_all_reductions_same_spectrum(benchmark, report):
    A = goe(128, seed=25)

    def run():
        return (
            np.linalg.eigvalsh(tile_sbr(A, 8).band),
            np.linalg.eigvalsh(sbr(A, 8).band),
            np.linalg.eigvalsh(dbbr(A, 8, 32).band),
        )

    lam_tile, lam_sbr, lam_dbbr = benchmark(run)
    report(banner("Band reductions: spectrum agreement", "measured"))
    report(f"  tile vs panel SBR: {np.max(np.abs(lam_tile - lam_sbr)):.2e}")
    report(f"  DBBR vs panel SBR: {np.max(np.abs(lam_dbbr - lam_sbr)):.2e}")
    assert np.max(np.abs(lam_tile - lam_sbr)) < 1e-10
    assert np.max(np.abs(lam_dbbr - lam_sbr)) < 1e-10


def test_tile_dag_parallelism(benchmark, report):
    """The tile schedule's width: tasks per tile-column step whose row
    sets are pairwise disjoint (PLASMA's multicore parallelism source)."""

    def analyze(n=1024, b=32):
        tasks = tile_task_dag(n, b)
        nt = n // b
        # Within one k, all tsqrt tasks share tile row k+1 -> serialized;
        # across k's, steps (k, i) and (k', i') with disjoint {k+1, i} and
        # {k'+1, i'} can overlap.  Count a simple greedy wave schedule.
        waves = 0
        remaining = list(tasks)
        while remaining:
            busy: set[int] = set()
            rest = []
            for kind, k, i in remaining:
                rows = {k + 1, i}
                if rows & busy:
                    rest.append((kind, k, i))
                else:
                    busy.update(rows)
            remaining = rest
            waves += 1
        return len(tasks), waves

    ntasks, waves = benchmark(analyze)
    report(banner("PLASMA tile task DAG (n=1024, b=32)", "measured"))
    report(f"  tasks: {ntasks}, greedy waves: {waves}, "
           f"mean parallelism {ntasks / waves:.1f}")
    assert ntasks / waves > 2.0  # the DAG exposes real concurrency
