"""Figure 8 — proposed square-block syr2k vs cuBLAS across matrix sizes.

Paper: on H100 the proposed schedule wins at every n and stays flat, while
cuBLAS's rate collapses for n >= 49152.

``[simulated]`` — the device-scale rate series for both schedules.
``[measured]`` — the real NumPy square vs rectangular schedules at laptop
scale (both must match the reference numerically; timing shows schedule
overhead is modest).
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import banner
from repro.core.syr2k import syr2k_rect_blocked, syr2k_square_blocked, syr2k_reference
from repro.gpusim import H100
from repro.models.syr2k_model import figure8_series

NS = [8192, 16384, 24576, 32768, 40960, 49152, 57344, 65536]
K = 1024


def test_fig08_simulated(benchmark, report):
    series = benchmark(lambda: figure8_series(H100, NS, K))
    report(banner(f"Figure 8: syr2k TFLOPs vs n (k = {K}, H100)", "simulated"))
    report(f"  {'n':>8} | {'cuBLAS':>8} | {'proposed':>8}")
    for n, cublas, square in series:
        cliff = "  <- cuBLAS cliff" if n >= 49152 else ""
        report(f"  {n:>8} | {cublas:8.2f} | {square:8.2f}{cliff}")
    data = {n: (c, s) for n, c, s in series}
    assert data[49152][0] < 0.6 * data[40960][0], "cuBLAS cliff at 49152"
    assert data[49152][1] > 0.85 * data[40960][1], "proposed stays flat"
    for n in NS:
        assert data[n][1] > data[n][0], "proposed wins everywhere"


def test_fig08_square_schedule_measured(benchmark):
    """Real numerics: the Figure-7 schedule at laptop scale."""
    n, k = 768, 64
    rng = np.random.default_rng(8)
    C = rng.standard_normal((n, n))
    C = (C + C.T) / 2
    A = rng.standard_normal((n, k))
    B = rng.standard_normal((n, k))

    def run():
        out = C.copy()
        syr2k_square_blocked(out, A, B, block=128)
        return out

    out = benchmark(run)
    assert np.allclose(out, syr2k_reference(C, A, B), atol=1e-10)


def test_fig08_rect_schedule_measured(benchmark):
    """The cuBLAS-style row-panel schedule, for comparison."""
    n, k = 768, 64
    rng = np.random.default_rng(8)
    C = rng.standard_normal((n, n))
    C = (C + C.T) / 2
    A = rng.standard_normal((n, k))
    B = rng.standard_normal((n, k))

    def run():
        out = C.copy()
        syr2k_rect_blocked(out, A, B, block=128)
        return out

    out = benchmark(run)
    assert np.allclose(out, syr2k_reference(C, A, B), atol=1e-10)
