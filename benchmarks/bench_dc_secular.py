"""Batched vs scalar secular machinery in divide and conquer — PR 6 tentpole.

Both modes execute the *same* mathematics (guarded Newton on the secular
equation, Gu–Eisenstat Löwner refinement, analytic eigenvectors); the
scalar mode iterates one root / one column at a time, the batched mode
runs every root of a merge as stacked ``(N, N)`` array sweeps
(:mod:`repro.eig.secular`).  ``[measured]`` wall time only — a pure
software-architecture comparison, no simulator involved.  Acceptance
gate: the ``dc_secular`` stage >= 5x at n = 1024 with vectors.

Run directly (CI smoke mode finishes in a few seconds):

    PYTHONPATH=src python benchmarks/bench_dc_secular.py [--smoke]

Writes ``benchmarks/out/BENCH_dc_secular.json`` (full mode only, or with
``--json`` forced) so the headline number is a checked-in artifact.
"""

from __future__ import annotations

import argparse
import pathlib
import time

import numpy as np

from repro.backend.context import ExecutionContext
from repro.bench.reporting import banner, print_table, write_json_artifact
from repro.core.evd import eigh
from repro.eig.dc import dc_eigh

OUT_DIR = pathlib.Path(__file__).parent / "out"

FULL_NS = [256, 512, 1024, 2048]
SMOKE_NS = [96, 160]
HEADLINE = (1024, True)  # the >= 5x acceptance case: n, compute_vectors
END_TO_END_N = {True: 512, False: 96}  # full / smoke end-to-end eigh size

# Top-level keys every BENCH_dc_secular.json must carry (CI smoke gate).
ARTIFACT_SCHEMA_KEYS = [
    "name",
    "generated_at",
    "environment",
    "provenance",
    "reps",
    "smoke",
    "headline",
    "cases",
    "end_to_end",
]

DC_STAGES = ("dc_leaf", "dc_deflate", "dc_secular", "dc_gemm")


def _problem(n: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(1234 + n)
    return rng.standard_normal(n), rng.standard_normal(n - 1)


def _timed_run(d, e, mode: str, compute_vectors: bool, reps: int) -> dict:
    """Best-of-``reps`` wall and per-stage times for one dc_eigh config."""
    ctx = ExecutionContext()
    run = lambda: dc_eigh(
        d, e, compute_vectors=compute_vectors, ctx=ctx, secular_mode=mode
    )
    run()  # warmup: fills the workspace pool high-water marks
    best_total = np.inf
    best_stages = {}
    for _ in range(reps):
        before = dict(ctx.stage_times)
        t0 = time.perf_counter()
        run()
        total = time.perf_counter() - t0
        stages = {
            k: ctx.stage_times.get(k, 0.0) - before.get(k, 0.0) for k in DC_STAGES
        }
        if total < best_total:
            best_total, best_stages = total, stages
    return {"total_s": best_total, **{f"{k}_s": v for k, v in best_stages.items()}}


def run_case(n: int, compute_vectors: bool, reps: int) -> dict:
    """Time both secular modes on one tridiagonal and cross-check numerics."""
    d, e = _problem(n)
    t_b = _timed_run(d, e, "batched", compute_vectors, reps)
    t_s = _timed_run(d, e, "scalar", compute_vectors, reps)

    lam_b, U_b = dc_eigh(d, e, compute_vectors=compute_vectors, secular_mode="batched")
    lam_s, U_s = dc_eigh(d, e, compute_vectors=compute_vectors, secular_mode="scalar")
    scale = max(float(np.max(np.abs(lam_s))), 1.0)
    dev = float(np.max(np.abs(lam_b - lam_s)) / scale)
    orth = (
        float(np.linalg.norm(U_b.T @ U_b - np.eye(n)))
        if compute_vectors
        else None
    )

    return {
        "n": n,
        "compute_vectors": compute_vectors,
        "scalar_total_s": t_s["total_s"],
        "batched_total_s": t_b["total_s"],
        "scalar_secular_s": t_s["dc_secular_s"],
        "batched_secular_s": t_b["dc_secular_s"],
        "speedup_total": t_s["total_s"] / t_b["total_s"],
        "speedup_secular": t_s["dc_secular_s"] / max(t_b["dc_secular_s"], 1e-12),
        "max_rel_eig_deviation": dev,
        "batched_orthogonality": orth,
        "stages_batched": {k: t_b[f"{k}_s"] for k in DC_STAGES},
        "stages_scalar": {k: t_s[f"{k}_s"] for k in DC_STAGES},
    }


def run_end_to_end(n: int, reps: int) -> dict:
    """Full `eigh` (method default) with each secular mode."""
    rng = np.random.default_rng(99)
    g = rng.standard_normal((n, n))
    A = (g + g.T) / 2.0
    out = {}
    for mode in ("batched", "scalar"):
        best = np.inf
        for _ in range(reps + 1):  # first rep doubles as warmup
            t0 = time.perf_counter()
            eigh(A, secular_mode=mode)
            best = min(best, time.perf_counter() - t0)
        out[f"{mode}_s"] = best
    out["n"] = n
    out["speedup"] = out["scalar_s"] / out["batched_s"]
    return out


def run(smoke: bool = False, reps: int = 2, write_json: bool | None = None) -> dict:
    ns = SMOKE_NS if smoke else FULL_NS
    print(banner("Batched vs scalar secular solve in divide & conquer", "measured"))
    rows = [
        run_case(n, vecs, reps) for n in ns for vecs in (True, False)
    ]

    print_table(
        ["n", "vectors", "scalar secular", "batched secular", "secular speedup",
         "total speedup", "max rel dev"],
        [
            [
                r["n"],
                "yes" if r["compute_vectors"] else "no",
                f"{r['scalar_secular_s'] * 1e3:9.1f} ms",
                f"{r['batched_secular_s'] * 1e3:9.1f} ms",
                f"{r['speedup_secular']:5.2f}x",
                f"{r['speedup_total']:5.2f}x",
                f"{r['max_rel_eig_deviation']:.2e}",
            ]
            for r in rows
        ],
    )

    e2e = run_end_to_end(END_TO_END_N[not smoke], reps)
    print(
        f"\nend-to-end eigh (method default, n={e2e['n']}): "
        f"scalar {e2e['scalar_s'] * 1e3:.0f} ms -> batched "
        f"{e2e['batched_s'] * 1e3:.0f} ms ({e2e['speedup']:.2f}x)"
    )

    headline = next(
        (
            r
            for r in rows
            if (r["n"], r["compute_vectors"]) == HEADLINE
        ),
        rows[0],
    )
    payload = {
        "provenance": "measured",
        "reps": reps,
        "smoke": smoke,
        "headline": {
            "n": headline["n"],
            "compute_vectors": headline["compute_vectors"],
            "speedup_secular": headline["speedup_secular"],
            "speedup_total": headline["speedup_total"],
            "target_speedup_secular": 5.0 if not smoke else None,
        },
        "cases": rows,
        "end_to_end": e2e,
    }
    if write_json if write_json is not None else not smoke:
        path = write_json_artifact(OUT_DIR, "dc_secular", payload)
        print(f"artifact: {path}")
    print(
        f"headline: n={headline['n']} vectors={headline['compute_vectors']}: "
        f"secular stage {headline['speedup_secular']:.2f}x (best-of-{reps})"
    )
    return payload


def test_dc_secular_speedup_smoke(report):
    """Benchmark-suite entry: even at smoke scale the batched secular
    stage must beat the scalar loops while agreeing numerically."""
    r = run_case(SMOKE_NS[-1], True, reps=2)
    report(
        f"n={r['n']} vectors: secular {r['speedup_secular']:.2f}x, "
        f"max rel dev {r['max_rel_eig_deviation']:.2e}"
    )
    assert r["speedup_secular"] > 1.0
    assert r["max_rel_eig_deviation"] < 1e-12


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small cases only, no JSON artifact (CI gate)",
    )
    ap.add_argument("--reps", type=int, default=2, help="timed repetitions")
    ap.add_argument(
        "--json",
        action="store_true",
        help="write the JSON artifact even in smoke mode",
    )
    args = ap.parse_args(argv)
    run(smoke=args.smoke, reps=args.reps, write_json=args.json or None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
