"""Table 1 — syr2k TFLOPs versus inner dimension ``k``.

Paper: cuBLAS ``Dsyr2k`` on H100 and RTX 4090 at ``n ∈ {8192, 32768}`` for
``k ∈ {16 … 4096}``: the H100 needs ``k`` in the hundreds to approach its
sustained rate, while the RTX 4090 saturates even at ``k = 16`` — the
observation that motivates DBBR's second block size.

``[simulated]`` — full device-scale table from the calibrated rate model,
printed against every published cell.
``[measured]`` — the real NumPy syr2k schedules at laptop scale, shape
check included (rate improves with k).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import banner
from repro.core.syr2k import syr2k_square_blocked
from repro.gpusim import H100, RTX4090, syr2k_tflops
from repro.models.syr2k_model import PAPER_TABLE1, table1_rows

KS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def test_table1_simulated(benchmark, report):
    rows = benchmark(lambda: table1_rows([H100, RTX4090], ks=KS))
    report(banner("Table 1: SYR2K TFLOPs vs k (model vs paper)", "simulated"))
    hdr = f"{'k':>6} | " + " | ".join(
        f"{d} n={n}" for d in ("H100", "4090") for n in (8192, 32768)
    )
    report(hdr)
    report("-" * len(hdr))
    for r in rows:
        cells = []
        for dev in ("H100-SXM", "RTX 4090"):
            for n in (8192, 32768):
                m = r.model[(dev, n)]
                p = r.paper[(dev, n)]
                cells.append(f"{m:6.2f} ({p:6.2f})")
        report(f"{r.k:>6} | " + " | ".join(cells))
    report("model (paper) in TFLOPs; every cell within 35% of Table 1")
    # Shape assertions.
    h100 = {r.k: r.model[("H100-SXM", 32768)] for r in rows}
    assert h100[4096] > 2 * h100[128] > 4 * h100[16]
    g4090 = {r.k: r.model[("RTX 4090", 32768)] for r in rows}
    assert g4090[16] > 0.8 * g4090[4096]  # flat: FP64-bound at every k


@pytest.mark.parametrize("k", [4, 16, 64])
def test_syr2k_measured_rate_improves_with_k(benchmark, k):
    """Real NumPy syr2k at n = 512: achieved GFLOPs grows with k (the
    Table 1 mechanism, at laptop scale through BLAS)."""
    n = 512
    rng = np.random.default_rng(0)
    C = rng.standard_normal((n, n))
    C = (C + C.T) / 2
    A = rng.standard_normal((n, k))
    B = rng.standard_normal((n, k))

    def run():
        out = C.copy()
        syr2k_square_blocked(out, A, B, block=128)
        return out

    benchmark(run)
    benchmark.extra_info["flops"] = 2.0 * n * n * k
    benchmark.extra_info["k"] = k


def test_table1_model_anchor_tolerance():
    """Regression guard: the model stays within 35% of every paper cell."""
    for (dev_name, n), cells in PAPER_TABLE1.items():
        dev = H100 if "H100" in dev_name else RTX4090
        for k, paper in cells.items():
            model = syr2k_tflops(dev, n, k, kind="cublas")
            assert abs(model - paper) / paper < 0.35
