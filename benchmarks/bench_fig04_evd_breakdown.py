"""Figure 4 — EVD elapsed-time breakdown at n = 49152 on H100.

Paper: two pies.  cuSOLVER: Dsytrd 97.7% / divide-and-conquer 2.3% (tridiag
2.0 TFLOPs).  MAGMA: sy2sb ~43% (22.1 s) / sb2st ~48% (23.9 s) / Dstedc
7.6% (tridiag 3.4 TFLOPs).  Plus the Section 3.2 bandwidth trade-off text
(b = 64: 22.1 + 23.9 s vs b = 128: 16.5 + 84.9 s).

``[simulated]`` — device-scale breakdowns from the composed models.
``[measured]`` — the same decomposition measured on the real NumPy
pipelines at laptop scale (shares differ — the substrate is BLAS-on-CPU —
but the 'tridiagonalization dominates' claim is checked for real).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.reporting import banner, format_time
from repro.bench.workloads import goe
from repro.eig.dc import dc_eigh
from repro.core.tridiag import tridiagonalize
from repro.gpusim import H100
from repro.models import (
    cusolver_syevd_times,
    magma_evd_times,
    magma_sb2st_time,
    magma_sy2sb_time,
)
from repro.models import flops as F
from repro.gpusim.device import CPU_8_CORE

N = 49152


def test_fig04_breakdown_simulated(benchmark, report):
    cu, ma = benchmark(
        lambda: (
            cusolver_syevd_times(H100, N, compute_vectors=False),
            magma_evd_times(H100, N, compute_vectors=False),
        )
    )
    report(banner(f"Figure 4: EVD time breakdown, n = {N}, H100", "simulated"))
    report("cuSOLVER Dsyevd (eigenvalues):")
    for k, v in cu.stages.items():
        report(f"  {k:8s} {format_time(v)}  {cu.fraction(k):6.1%}")
    report(f"  tridiag rate: {F.tridiag_flops(N) / cu.stages['sytrd'] / 1e12:.2f}"
           " TFLOPs (paper 2.0)")
    report("MAGMA 2-stage EVD (eigenvalues):")
    for k, v in ma.stages.items():
        report(f"  {k:8s} {format_time(v)}  {ma.fraction(k):6.1%}")
    tri = ma.stages["sy2sb"] + ma.stages["sb2st"]
    report(f"  tridiag rate: {F.tridiag_flops(N) / tri / 1e12:.2f} TFLOPs (paper 3.4)")
    report("paper: cuSOLVER sytrd 97.7% / DC 2.3%; MAGMA SBR 43% / BC 48% / DC 7.6%")
    assert cu.fraction("sytrd") > 0.9
    assert 0.35 < ma.fraction("sb2st") < 0.65


def test_fig04_bandwidth_tradeoff_simulated(benchmark, report):
    def series():
        return {
            b: (magma_sy2sb_time(H100, N, b), magma_sb2st_time(CPU_8_CORE, N, b))
            for b in (32, 64, 128)
        }

    res = benchmark(series)
    report(banner("Section 3.2: bandwidth trade-off (MAGMA, n = 49152)", "simulated"))
    paper = {32: (None, 16.2), 64: (22.1, 23.9), 128: (16.5, 84.9)}
    for b, (sbr_t, bc_t) in res.items():
        p_sbr, p_bc = paper[b]
        report(
            f"  b={b:4d}: SBR {sbr_t:6.1f}s"
            + (f" (paper {p_sbr})" if p_sbr else " (paper n/a)")
            + f"  BC {bc_t:6.1f}s (paper {p_bc})  total {sbr_t + bc_t:6.1f}s"
        )
    report("larger b: faster SBR, much slower BC — total gets worse")
    assert res[128][0] < res[64][0]  # SBR faster at b=128
    assert res[128][1] > 2.5 * res[64][1]  # BC blows up
    assert sum(res[128]) > sum(res[64])  # net loss


def test_fig04_breakdown_measured(benchmark, report):
    """Real pipeline at n = 384: time tridiagonalization vs the
    tridiagonal solve — tridiagonalization dominates here too."""
    n = 384
    A = goe(n, seed=4)

    def run():
        t0 = time.perf_counter()
        tri = tridiagonalize(A, method="dbbr", bandwidth=8, second_block=32)
        t1 = time.perf_counter()
        dc_eigh(tri.d, tri.e, compute_vectors=False)
        t2 = time.perf_counter()
        return t1 - t0, t2 - t1

    t_tri, t_dc = benchmark(run)
    report(banner(f"Figure 4 analogue: measured NumPy pipeline, n = {n}", "measured"))
    report(f"  tridiagonalization {format_time(t_tri)}  ({t_tri / (t_tri + t_dc):.1%})")
    report(f"  divide & conquer   {format_time(t_dc)}  ({t_dc / (t_tri + t_dc):.1%})")
    report("  (at laptop scale the Python-loop secular solver inflates DC;")
    report("   the >97% tridiag share is a device-scale property — see the")
    report("   simulated breakdown above)")
    assert t_tri > 0.25 * (t_tri + t_dc)
