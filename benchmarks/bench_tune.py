"""Model-tuned vs store-tuned planning — the autotuning payoff check.

For each size the benchmark runs a real measurement-driven search
(:func:`repro.tune.search`), records the winner in an in-memory
:class:`~repro.tune.TuningStore`, then re-measures — with fresh
contexts, same seeded workload — the plan ``tuning="model"`` picks and
the plan the store record resolves to.  ``[measured]`` wall time only.
Acceptance gate: at the headline size the store-tuned plan is **no
slower than the model-tuned plan beyond the measurement noise guard**
(the tuned candidate was picked *because* it measured fastest; the gate
allows the re-measurement to jitter by the larger of the two CVs plus a
floor).

Run directly (CI smoke mode finishes in under a minute):

    PYTHONPATH=src python benchmarks/bench_tune.py [--smoke]

Writes ``benchmarks/out/BENCH_tune.json`` (full mode only, or with
``--json`` forced) so the headline number is a checked-in artifact.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.bench.reporting import banner, print_table, write_json_artifact
from repro.plan import plan_evd
from repro.tune import (
    MeasureProtocol,
    TuningStore,
    measure_plan,
    search,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"

FULL_NS = [256, 512, 1024]
SMOKE_NS = [64, 96]
METHOD = "proposed"
HEADLINE_N = {True: SMOKE_NS[-1], False: FULL_NS[-1]}  # smoke -> n
NOISE_FLOOR = 0.05  # minimum relative slack the gate always allows

# Top-level keys every BENCH_tune.json must carry (CI smoke gate).
ARTIFACT_SCHEMA_KEYS = [
    "name",
    "generated_at",
    "environment",
    "provenance",
    "reps",
    "smoke",
    "headline",
    "cases",
]


def run_case(n: int, reps: int, budget: int) -> dict:
    """Search at size ``n``, then re-measure model vs store-tuned plans."""
    protocol = MeasureProtocol(reps=reps, trim=1 if reps > 2 else 0)
    store = TuningStore()  # in-memory: the benchmark must not touch ~/.cache
    result = search(
        n, METHOD, budget=budget, protocol=protocol, store=store, save=False
    )
    record = store.get(result.store_key)

    model_plan = plan_evd(n, METHOD, tuning="model")
    tuned_plan = plan_evd(n, result.method, **record.knobs)
    # The stored knobs must spell the searched winner exactly.
    assert tuned_plan.cache_token() == result.best_pipeline.cache_token

    model_m = measure_plan(model_plan, protocol)
    tuned_m = measure_plan(tuned_plan, protocol)

    noise = max(model_m.cv, tuned_m.cv, NOISE_FLOOR)
    within_guard = tuned_m.time_s <= model_m.time_s * (1.0 + noise)
    return {
        "n": n,
        "method": result.method,
        "strategy": result.strategy,
        "space_size": result.space_size,
        "candidates_measured": len(result.trials),
        "tuned_knobs": record.knobs,
        "model_knobs": {
            "bandwidth": model_plan.tridiag.bandwidth,
            "second_block": model_plan.tridiag.second_block,
        },
        "model_s": model_m.time_s,
        "tuned_s": tuned_m.time_s,
        "model_cv": model_m.cv,
        "tuned_cv": tuned_m.cv,
        "speedup": model_m.time_s / tuned_m.time_s,
        "noise_allowance": noise,
        "tuned_within_noise_guard": within_guard,
    }


def run(
    smoke: bool = False,
    reps: int = 3,
    budget: int = 24,
    write_json: bool | None = None,
) -> dict:
    ns = SMOKE_NS if smoke else FULL_NS
    print(banner("Model-tuned vs store-tuned EVD plans", "measured"))
    rows = [run_case(n, reps, budget) for n in ns]

    print_table(
        ["n", "strategy", "measured", "model", "tuned", "speedup", "guard"],
        [
            [
                r["n"],
                r["strategy"],
                f"{r['candidates_measured']}/{r['space_size']}",
                f"{r['model_s'] * 1e3:8.1f} ms",
                f"{r['tuned_s'] * 1e3:8.1f} ms",
                f"{r['speedup']:5.2f}x",
                "ok" if r["tuned_within_noise_guard"] else "VIOLATED",
            ]
            for r in rows
        ],
    )

    headline = next(r for r in rows if r["n"] == HEADLINE_N[smoke])
    payload = {
        "provenance": "measured",
        "reps": reps,
        "budget": budget,
        "smoke": smoke,
        "method": METHOD,
        "headline": {
            "n": headline["n"],
            "backend": "numpy",
            "model_s": headline["model_s"],
            "tuned_s": headline["tuned_s"],
            "speedup": headline["speedup"],
            "noise_allowance": headline["noise_allowance"],
            "tuned_within_noise_guard": headline["tuned_within_noise_guard"],
        },
        "cases": rows,
    }
    if write_json if write_json is not None else not smoke:
        path = write_json_artifact(OUT_DIR, "tune", payload)
        print(f"artifact: {path}")
    print(
        f"headline: n={headline['n']} store-tuned {headline['tuned_s'] * 1e3:.1f} ms "
        f"vs model {headline['model_s'] * 1e3:.1f} ms "
        f"({headline['speedup']:.2f}x, noise allowance "
        f"{headline['noise_allowance'] * 100:.0f}%) -> "
        f"{'ok' if headline['tuned_within_noise_guard'] else 'VIOLATED'}"
    )
    return payload


def test_tuned_not_slower_smoke(report):
    """Benchmark-suite entry: even at smoke scale the store-tuned plan
    must hold its measured advantage over the model pick within the
    noise guard."""
    r = run_case(SMOKE_NS[-1], reps=3, budget=16)
    report(
        f"n={r['n']}: model {r['model_s'] * 1e3:.1f} ms, tuned "
        f"{r['tuned_s'] * 1e3:.1f} ms ({r['speedup']:.2f}x, "
        f"allowance {r['noise_allowance'] * 100:.0f}%)"
    )
    assert r["tuned_within_noise_guard"]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small cases only, no JSON artifact (CI gate)",
    )
    ap.add_argument("--reps", type=int, default=3, help="timed repetitions")
    ap.add_argument("--budget", type=int, default=24,
                    help="max unique candidates measured per size")
    ap.add_argument(
        "--json",
        action="store_true",
        help="write the JSON artifact even in smoke mode",
    )
    args = ap.parse_args(argv)
    run(smoke=args.smoke, reps=args.reps, budget=args.budget,
        write_json=args.json or None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
