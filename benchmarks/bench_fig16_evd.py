"""Figure 16 — end-to-end EVD: cuSOLVER vs MAGMA vs proposed, with and
without eigenvectors (H100).

Paper: eigenvalues-only — up to 6.1x / 3.8x over cuSOLVER / MAGMA, except
below n ~ 8192 where cuSOLVER's fast Dstedc (33 ms vs MAGMA's 248 ms)
wins.  With eigenvectors — only a slight edge over cuSOLVER: the BC back
transformation eats 61% of our total (36% of MAGMA's).

``[simulated]`` — both device-scale series with per-stage shares.
``[measured]`` — the three real EVD pipelines at laptop scale, correctness
asserted.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import banner
from repro.bench.workloads import goe
from repro.core.evd import eigh
from repro.gpusim import H100
from repro.models.baselines import cusolver_syevd_times, magma_evd_times
from repro.models.proposed import proposed_evd_times

NS = [4096, 8192, 16384, 32768, 49152]


def _series(compute_vectors: bool):
    rows = []
    for n in NS:
        cu = cusolver_syevd_times(H100, n, compute_vectors).total
        ma = magma_evd_times(H100, n, compute_vectors).total
        ours = proposed_evd_times(H100, n, compute_vectors).total
        rows.append((n, cu, ma, ours))
    return rows


def test_fig16_novec_simulated(benchmark, report):
    rows = benchmark(lambda: _series(False))
    report(banner("Figure 16: EVD, eigenvalues only (H100)", "simulated"))
    report(f"  {'n':>8} | {'cuSOLVER':>9} | {'MAGMA':>9} | {'ours':>9} | speedups")
    for n, cu, ma, ours in rows:
        report(f"  {n:>8} | {cu:8.2f}s | {ma:8.2f}s | {ours:8.2f}s | "
               f"{cu / ours:4.1f}x / {ma / ours:4.1f}x")
    report("paper: up to 6.1x / 3.8x; crossover vs cuSOLVER below ~8192")
    n, cu, ma, ours = rows[-1]
    assert cu / ours > 4.0 and ma / ours > 2.5
    # Small-n crossover: cuSOLVER competitive at n = 4096.
    assert rows[0][1] < rows[0][3] * 1.6


def test_fig16_vec_simulated(benchmark, report):
    rows = benchmark(lambda: _series(True))
    report(banner("Figure 16: EVD with eigenvectors (H100)", "simulated"))
    report(f"  {'n':>8} | {'cuSOLVER':>9} | {'MAGMA':>9} | {'ours':>9} | speedups")
    for n, cu, ma, ours in rows:
        report(f"  {n:>8} | {cu:8.2f}s | {ma:8.2f}s | {ours:8.2f}s | "
               f"{cu / ours:4.1f}x / {ma / ours:4.1f}x")
    ours_st = proposed_evd_times(H100, 49152, True)
    magma_st = magma_evd_times(H100, 49152, True)
    report(f"  BC back-transform share @49152: ours "
           f"{ours_st.fraction('bc_back'):.0%} (paper 61%), MAGMA "
           f"{magma_st.fraction('bc_back'):.0%} (paper 36%)")
    n, cu, ma, ours = rows[-1]
    assert 1.0 < cu / ours < 2.5  # only a slight advantage with vectors
    assert 0.45 < ours_st.fraction("bc_back") < 0.75


def test_fig16_proposed_evd_measured(benchmark):
    A = goe(192, seed=16)
    res = benchmark(lambda: eigh(A, method="proposed", bandwidth=8, second_block=32))
    assert res.residual(A) < 1e-11


def test_fig16_magma_evd_measured(benchmark):
    A = goe(192, seed=16)
    res = benchmark(lambda: eigh(A, method="magma", bandwidth=8))
    assert res.residual(A) < 1e-11


def test_fig16_cusolver_evd_measured(benchmark):
    A = goe(192, seed=16)
    res = benchmark(lambda: eigh(A, method="cusolver"))
    assert res.residual(A) < 1e-11


def test_fig16_novec_measured(benchmark):
    A = goe(192, seed=16)
    res = benchmark(
        lambda: eigh(A, method="proposed", compute_vectors=False,
                     bandwidth=8, second_block=32)
    )
    assert np.max(np.abs(res.eigenvalues - np.linalg.eigvalsh(A))) < 1e-10
