"""Figure 11 — bulge chasing: MAGMA sb2st vs naive GPU vs optimized GPU.

Paper: on H100 with b = 32, the naive one-block-per-sweep GPU version is up
to 5.9x faster than MAGMA's CPU sb2st; the optimized version (packed band
in L2, warp-per-sweep, prefetch) reaches 12.5x at large n.

``[simulated]`` — all three implementations priced at device scale.
``[measured]`` — the real pipelined bulge chasing at laptop scale: the
pipeline schedule with many sweeps does the same arithmetic as serial, and
the lockstep round count shrinks with allowed parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.band.ops import random_symmetric_band
from repro.bench.reporting import banner
from repro.core.bc_pipeline import bulge_chase_pipelined
from repro.gpusim import CPU_8_CORE, H100
from repro.models.baselines import magma_sb2st_time
from repro.models.proposed import gpu_bc_time

NS = [8192, 16384, 24576, 32768, 40960, 49152]
B = 32


def test_fig11_simulated(benchmark, report):
    def series():
        return [
            (
                n,
                magma_sb2st_time(CPU_8_CORE, n, B),
                gpu_bc_time(H100, n, B, optimized=False),
                gpu_bc_time(H100, n, B, optimized=True),
            )
            for n in NS
        ]

    rows = benchmark(series)
    report(banner(f"Figure 11: bulge chasing time, b = {B}", "simulated"))
    report(f"  {'n':>8} | {'MAGMA':>9} | {'naive GPU':>10} | {'opt GPU':>9} | speedups")
    for n, magma, naive, opt in rows:
        report(
            f"  {n:>8} | {magma:8.2f}s | {naive:9.2f}s | {opt:8.2f}s | "
            f"{magma / naive:4.1f}x / {magma / opt:4.1f}x"
        )
    report("paper: up to 5.9x (naive) and 12.5x (optimized)")
    n, magma, naive, opt = rows[-1]
    assert 3.5 < magma / naive < 8.0
    assert 9.0 < magma / opt < 16.0
    for _, magma, naive, opt in rows:
        assert opt < naive < magma


def test_fig11_pipelined_bc_measured(benchmark, report):
    """Real numerics: pipelined BC with unbounded S vs serial rounds."""
    n, b = 160, 4
    Bm = random_symmetric_band(n, b, np.random.default_rng(11))

    def run():
        res, stats = bulge_chase_pipelined(Bm, b, max_sweeps=None)
        return res, stats

    res, stats = benchmark(run)
    _, serial_stats = bulge_chase_pipelined(Bm, b, max_sweeps=1)
    report(banner(f"Figure 11 analogue: pipeline rounds, n = {n}, b = {b}", "measured"))
    report(f"  serial rounds:    {serial_stats.rounds}")
    report(f"  pipelined rounds: {stats.rounds}  "
           f"(mean parallel sweeps {stats.mean_parallel:.1f})")
    assert stats.rounds < serial_stats.rounds / 2
    assert res.d.size == n


def test_fig11_serial_bc_measured(benchmark):
    n, b = 160, 4
    Bm = random_symmetric_band(n, b, np.random.default_rng(11))
    res, _ = benchmark(lambda: bulge_chase_pipelined(Bm, b, max_sweeps=1))
    assert res.d.size == n
