"""Wavefront-batched vs per-task bulge chasing — the tentpole speedup.

Both drivers execute the *same* pipelined schedule; the per-task driver
issues one tiny NumPy call per bulge, the wavefront driver one stacked
operation per round (:mod:`repro.core.bc_wavefront`).  ``[measured]``
wall time only — this is a pure software-architecture comparison, no
simulator involved.  Acceptance gate: >= 3x at n = 1024, b = 16.

Run directly (CI smoke mode finishes in a few seconds):

    PYTHONPATH=src python benchmarks/bench_wavefront_bc.py [--smoke]

Writes ``benchmarks/out/BENCH_wavefront_bc.json`` (full mode only, or
with ``--json`` forced) so the headline number is a checked-in artifact.
"""

from __future__ import annotations

import argparse
import pathlib

import numpy as np

from repro.backend import get_backend
from repro.backend.context import ExecutionContext
from repro.band.ops import random_symmetric_band
from repro.band.storage import LowerBandStorage
from repro.bench.reporting import banner, print_table, write_json_artifact
from repro.bench.timing import measure
from repro.core.bc_pipeline import bulge_chase_pipelined
from repro.core.bc_wavefront import bulge_chase_wavefront

OUT_DIR = pathlib.Path(__file__).parent / "out"

FULL_CASES = [(256, 8), (512, 16), (1024, 16)]
SMOKE_CASES = [(128, 4), (192, 8)]
HEADLINE = (1024, 16)  # the >= 3x acceptance case


def run_case(n: int, b: int, reps: int, backend: str = "numpy") -> dict:
    """Time both drivers on one band matrix and cross-check numerics."""
    A = random_symmetric_band(n, b, np.random.default_rng(1234 + n))
    lb = LowerBandStorage.from_dense(A, b)
    ctx = ExecutionContext(backend=get_backend(backend))

    t_wf = measure(lambda: bulge_chase_wavefront(lb, ctx=ctx), reps=reps)
    t_pt = measure(lambda: bulge_chase_pipelined(A, b), reps=reps)

    wf, stats = bulge_chase_wavefront(lb, ctx=ctx)
    pt, _ = bulge_chase_pipelined(A, b)
    scale = max(np.max(np.abs(pt.d)), 1.0)
    dev = max(np.max(np.abs(wf.d - pt.d)), np.max(np.abs(wf.e - pt.e))) / scale

    return {
        "n": n,
        "b": b,
        "per_task_best_s": t_pt.best,
        "per_task_mean_s": t_pt.mean,
        "wavefront_best_s": t_wf.best,
        "wavefront_mean_s": t_wf.mean,
        "speedup_best": t_pt.best / t_wf.best,
        "speedup_mean": t_pt.mean / t_wf.mean,
        "max_rel_deviation": float(dev),
        "rounds": stats.rounds,
        "max_parallel": stats.max_parallel,
        "total_tasks": stats.total_tasks,
    }


def run(
    smoke: bool = False,
    reps: int = 3,
    write_json: bool | None = None,
    backend: str = "numpy",
) -> dict:
    cases = SMOKE_CASES if smoke else FULL_CASES
    backend_name = get_backend(backend).name
    print(banner(
        f"Wavefront-batched vs per-task bulge chasing [backend: {backend_name}]",
        "measured",
    ))
    rows = [run_case(n, b, reps, backend=backend_name) for n, b in cases]

    print_table(
        ["n", "b", "per-task best", "wavefront best", "speedup", "max rel dev"],
        [
            [
                r["n"],
                r["b"],
                f"{r['per_task_best_s'] * 1e3:9.1f} ms",
                f"{r['wavefront_best_s'] * 1e3:9.1f} ms",
                f"{r['speedup_best']:5.2f}x",
                f"{r['max_rel_deviation']:.2e}",
            ]
            for r in rows
        ],
    )

    headline = next(
        (r for r in rows if (r["n"], r["b"]) == HEADLINE), rows[-1]
    )
    payload = {
        "provenance": "measured",
        "reps": reps,
        "smoke": smoke,
        "backend": backend_name,
        "headline": {
            "n": headline["n"],
            "b": headline["b"],
            "speedup_best": headline["speedup_best"],
            "target_speedup": 3.0 if not smoke else None,
        },
        "cases": rows,
    }
    if write_json if write_json is not None else not smoke:
        path = write_json_artifact(OUT_DIR, "wavefront_bc", payload, backend=backend_name)
        print(f"\nartifact: {path}")
    print(
        f"\nheadline: n={headline['n']}, b={headline['b']}: "
        f"{headline['speedup_best']:.2f}x (best-of-{reps})"
    )
    return payload


def test_wavefront_speedup_smoke(report):
    """Benchmark-suite entry: even at smoke scale the batched engine must
    beat the per-task driver while agreeing numerically."""
    r = run_case(*SMOKE_CASES[-1], reps=2)
    report(
        f"n={r['n']} b={r['b']}: {r['speedup_best']:.2f}x, "
        f"max rel dev {r['max_rel_deviation']:.2e}"
    )
    assert r["speedup_best"] > 1.0
    assert r["max_rel_deviation"] < 1e-10


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small cases only, no JSON artifact (CI gate)",
    )
    ap.add_argument("--reps", type=int, default=3, help="timed repetitions")
    ap.add_argument(
        "--json",
        action="store_true",
        help="write the JSON artifact even in smoke mode",
    )
    ap.add_argument(
        "--backend",
        default="numpy",
        choices=["numpy", "cupy", "torch", "auto"],
        help="array backend for the wavefront driver",
    )
    args = ap.parse_args(argv)
    run(smoke=args.smoke, reps=args.reps, write_json=args.json or None,
        backend=args.backend)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
