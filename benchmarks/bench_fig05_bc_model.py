"""Figure 5 — estimated GPU bulge-chasing time vs max parallel sweeps S.

Paper: n = 65536, b = 32, S ∈ 1 … 128, per-bulge time "around 10 ms"
(dimensional analysis against the figure shows microseconds; see
EXPERIMENTS.md).  Serial (S = 1) is far slower than MAGMA's CPU sb2st;
S >= 32 beats it — so the >100 SMs of an H100 suffice.

``[simulated]`` — the paper's closed-form pipeline model next to the
discrete-event executor, with the MAGMA reference line.
"""

from __future__ import annotations

from repro.bench.reporting import banner
from repro.gpusim import CPU_8_CORE, H100
from repro.gpusim.executor import simulate_bc_pipeline
from repro.models.baselines import magma_sb2st_time
from repro.models.bc_model import bc_time_model, total_cycles

N, B = 65536, 32
S_VALUES = [1, 2, 4, 8, 16, 32, 64, 128]
T_BULGE = 10e-6


def test_fig05_model_simulated(benchmark, report):
    magma = magma_sb2st_time(CPU_8_CORE, N, B)
    series = benchmark(
        lambda: [(S, bc_time_model(N, B, S, T_BULGE)) for S in S_VALUES]
    )
    report(banner(f"Figure 5: estimated BC time vs S (n={N}, b={B})", "simulated"))
    report(f"  MAGMA sb2st reference line: {magma:8.1f} s")
    for S, t in series:
        beats = "beats MAGMA" if t < magma else ""
        report(f"  S={S:4d}: {t:10.1f} s   ({total_cycles(N, B, S):12.0f} cycles) {beats}")
    times = dict(series)
    assert times[1] > magma, "serial GPU BC must lose to MAGMA"
    assert times[32] < magma, "paper: S >= 32 outperforms MAGMA"
    vals = [t for _, t in series]
    assert vals == sorted(vals, reverse=True)


def test_fig05_model_vs_executor(benchmark, report):
    """The closed form against the event-driven executor at the same
    per-task cost — the model's validity check."""

    def run():
        rows = []
        for S in S_VALUES:
            closed = bc_time_model(N, B, S, T_BULGE)
            sim = simulate_bc_pipeline(N, B, S, T_BULGE).total_time_s
            rows.append((S, closed, sim))
        return rows

    rows = benchmark(run)
    report(banner("Figure 5 validation: closed form vs event simulation", "simulated"))
    for S, closed, sim in rows:
        report(f"  S={S:4d}: model {closed:10.1f} s   executor {sim:10.1f} s  "
               f"ratio {closed / sim:5.2f}")
    for S, closed, sim in rows:
        assert 0.25 < closed / sim < 4.0, (S, closed, sim)
