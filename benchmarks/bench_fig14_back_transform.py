"""Figure 14 — SBR back transformation: MAGMA ormqr vs the proposed
batched W-merge scheme (k = 2048) at b = 64 on H100.

Paper: despite the extra flops of forming wider W blocks, the enlarged GEMM
inner dimension wins ~1.6x across sizes.

``[simulated]`` — both schemes priced at device scale.
``[measured]`` — the three numerically equivalent back-transform schedules
(blocked / recursive / incremental) on the real pipeline; wall-clock at
laptop scale plus an exactness check.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import banner
from repro.bench.workloads import goe
from repro.core.back_transform import apply_sbr_q, q_from_blocks
from repro.core.dbbr import dbbr
from repro.gpusim import H100
from repro.models.baselines import magma_ormqr_sbr_time
from repro.models.proposed import proposed_back_transform_time

NS = [8192, 16384, 24576, 32768, 40960, 49152]
B, K = 64, 2048


def test_fig14_simulated(benchmark, report):
    def series():
        return [
            (
                n,
                magma_ormqr_sbr_time(H100, n, B),
                proposed_back_transform_time(H100, n, B, K),
            )
            for n in NS
        ]

    rows = benchmark(series)
    report(banner(f"Figure 14: SBR back transformation, b = {B}, k = {K}",
                  "simulated"))
    report(f"  {'n':>8} | {'MAGMA ormqr':>12} | {'proposed':>10} | speedup")
    for n, magma, ours in rows:
        report(f"  {n:>8} | {magma:11.2f}s | {ours:9.2f}s | {magma / ours:5.2f}x")
    report("paper: ~1.6x across sizes")
    for n, magma, ours in rows:
        assert ours < magma, n
    n, magma, ours = rows[-1]
    assert 1.1 < magma / ours < 3.0


def _reduction(n=160):
    A = goe(n, seed=14)
    return n, dbbr(A, 8, 32)


def test_fig14_blocked_measured(benchmark):
    n, res = _reduction()
    X = np.eye(n)
    benchmark(lambda: apply_sbr_q(res.blocks, X.copy(), method="blocked"))


def test_fig14_recursive_measured(benchmark):
    n, res = _reduction()
    X = np.eye(n)
    benchmark(lambda: apply_sbr_q(res.blocks, X.copy(), method="recursive"))


def test_fig14_incremental_measured(benchmark):
    n, res = _reduction()
    X = np.eye(n)
    benchmark(
        lambda: apply_sbr_q(res.blocks, X.copy(), method="incremental", group_width=32)
    )


def test_fig14_equivalence(benchmark):
    """All three schedules produce the same Q (within roundoff)."""
    n, res = _reduction(96)

    def run():
        return tuple(
            q_from_blocks(res.blocks, n, method=m)
            for m in ("blocked", "recursive", "incremental")
        )

    q_b, q_r, q_i = benchmark(run)
    assert np.allclose(q_b, q_r, atol=1e-11)
    assert np.allclose(q_b, q_i, atol=1e-11)
