"""Ablation — DBBR second block size ``k``.

DESIGN.md §6: sweep ``k`` from 64 to 4096 at fixed ``b = 32`` and show the
syr2k-rate mechanism: larger ``k`` buys a faster deferred update until the
look-ahead corrections (``O(n^2 k)`` extra flops) eat the gain.

``[simulated]`` — the device-scale sweep locating the sweet spot.
``[measured]`` — the real DBBR across k: numerics identical, extra-flop
counter grows linearly in k.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import banner
from repro.bench.workloads import goe
from repro.core.dbbr import dbbr
from repro.gpusim import H100
from repro.models.proposed import dbbr_time

N, B = 49152, 32
K_VALUES = [32, 64, 128, 256, 512, 1024, 2048, 4096]


def test_ablation_k_simulated(benchmark, report):
    rows = benchmark(lambda: [(k, dbbr_time(H100, N, B, k)) for k in K_VALUES])
    report(banner(f"Ablation: DBBR second block k (n={N}, b={B}, H100)",
                  "simulated"))
    for k, t in rows:
        report(f"  k={k:5d}: {t:7.2f} s")
    times = dict(rows)
    best_k = min(times, key=times.get)
    report(f"  sweet spot: k = {best_k} (paper selects k = 1024)")
    # k = b (classic SBR coupling) must be clearly worse than the best.
    assert times[32] > 1.5 * times[best_k]
    assert 256 <= best_k <= 4096


def test_ablation_k_measured_invariance(benchmark, report):
    """Real numerics: the band matrix is k-invariant; only flops shift."""
    A = goe(96, seed=20)

    def run():
        return {k: dbbr(A, 4, k) for k in (4, 16, 48)}

    results = benchmark(run)
    report(banner("Ablation (measured): DBBR numerics across k", "measured"))
    ref = results[4].band
    for k, res in results.items():
        report(f"  k={k:3d}: extra flops {res.flops:12.0f}, "
               f"band diff {np.max(np.abs(res.band - ref)):.2e}")
        assert np.allclose(res.band, ref, atol=1e-9)
    assert results[48].flops > results[4].flops
