"""Ablation — intermediate bandwidth ``b``: the SBR/BC see-saw.

Section 3.2's core trade-off: a larger ``b`` speeds the band reduction
(higher syr2k intensity) but slows bulge chasing (more work per task,
CPU-cache or L2 pressure).  DBBR breaks the see-saw by decoupling the
syr2k ``k`` from ``b``, so the proposed pipeline prefers *small* b.

``[simulated]`` — total proposed tridiagonalization time across b, showing
the optimum sits at small b (the paper picks 32), and the MAGMA curve for
contrast (optimum at 64, because its syr2k rate is chained to b).
"""

from __future__ import annotations

from repro.bench.reporting import banner
from repro.gpusim import CPU_8_CORE, H100
from repro.models.baselines import magma_sb2st_time, magma_sy2sb_time
from repro.models.proposed import gpu_bc_time, dbbr_time

N = 49152
B_VALUES = [16, 32, 64, 128]


def test_ablation_bandwidth_proposed_simulated(benchmark, report):
    def series():
        rows = []
        for b in B_VALUES:
            k = max(1024, b)
            t_sbr = dbbr_time(H100, N, b, k)
            t_bc = gpu_bc_time(H100, N, b, optimized=True)
            rows.append((b, t_sbr, t_bc))
        return rows

    rows = benchmark(series)
    report(banner(f"Ablation: bandwidth b, proposed pipeline (n={N})", "simulated"))
    report(f"  {'b':>5} | {'DBBR':>8} | {'GPU BC':>8} | {'total':>8}")
    for b, t_sbr, t_bc in rows:
        report(f"  {b:>5} | {t_sbr:7.2f}s | {t_bc:7.2f}s | {t_sbr + t_bc:7.2f}s")
    totals = {b: s + c for b, s, c in rows}
    best = min(totals, key=totals.get)
    report(f"  optimum at b = {best} (paper selects 32)")
    assert best <= 64
    assert totals[128] > totals[32]


def test_ablation_bandwidth_magma_simulated(benchmark, report):
    def series():
        return [
            (b, magma_sy2sb_time(H100, N, b), magma_sb2st_time(CPU_8_CORE, N, b))
            for b in B_VALUES
        ]

    rows = benchmark(series)
    report(banner(f"Ablation: bandwidth b, MAGMA pipeline (n={N})", "simulated"))
    report(f"  {'b':>5} | {'SBR':>8} | {'CPU BC':>8} | {'total':>8}")
    for b, t_sbr, t_bc in rows:
        report(f"  {b:>5} | {t_sbr:7.2f}s | {t_bc:7.2f}s | {t_sbr + t_bc:7.2f}s")
    totals = {b: s + c for b, s, c in rows}
    # MAGMA's see-saw: SBR improves with b, BC degrades, optimum interior.
    sbrs = [s for _, s, _ in rows]
    bcs = {b: c for b, _, c in rows}
    assert sbrs == sorted(sbrs, reverse=True)
    # BC degrades with b in the paper's 32..128 range (at b = 16 the
    # sheer task count makes BC slightly slower again — a real effect of
    # per-task overhead, outside the paper's sweep).
    assert bcs[32] < bcs[64] < bcs[128]
    assert totals[128] > totals[64]
