"""Mixed precision vs fp64 — the fp32 pipeline + refinement speed/accuracy
trade.

Runs the full ``proposed`` EVD pipeline at each size under the
``"fp64"`` and ``"mixed"`` precision policies on the same GOE matrix and
reports, per size: total wall time, the tridiagonalization-stage time
(the paper's kernel — where fp32 SYR2K/GEMM throughput pays), the
fp64-measured residual and orthogonality error of the final result, and
the refinement sweep count.  ``[measured]`` wall time.

Acceptance gate (full mode): the mixed policy's *tridiagonalization
stage* is >= 1.5x faster than fp64 at n = 1024, while the refined result
still passes ``verify_evd`` at fp64 tolerances.

Run directly (CI smoke mode finishes in seconds):

    PYTHONPATH=src python benchmarks/bench_precision.py [--smoke]

Writes ``benchmarks/out/BENCH_precision.json`` (full mode only, or with
``--json`` forced) with the accuracy columns alongside the timings.
"""

from __future__ import annotations

import argparse
import pathlib
import time

import numpy as np

from repro.backend.context import ExecutionContext
from repro.bench.reporting import banner, write_json_artifact
from repro.bench.workloads import goe
from repro.plan import plan_evd
from repro.plan.runner import execute_plan
from repro.resilience import verify_evd

OUT_DIR = pathlib.Path(__file__).parent / "out"

FULL_NS = (256, 512, 1024)
SMOKE_NS = (96, 160)

#: Acceptance gate: mixed tridiag-stage speedup at the largest full size.
TRIDIAG_SPEEDUP_GATE = 1.5


def _run_one(A: np.ndarray, precision: str) -> dict:
    """One full pipeline execution; returns timing + accuracy columns."""
    n = A.shape[0]
    ctx = ExecutionContext(backend="numpy")
    plan = plan_evd(n, "proposed", precision=precision)
    t0 = time.perf_counter()
    res = execute_plan(A, plan, ctx=ctx)
    total = time.perf_counter() - t0
    norm = float(np.linalg.norm(A))
    V, lam = res.eigenvectors, res.eigenvalues
    residual = float(np.linalg.norm(A @ V - V * lam[None, :])) / norm
    orth = float(np.linalg.norm(V.T @ V - np.eye(n)))
    report = verify_evd(A, res)
    ref = res.refinement
    return {
        "precision": precision,
        "n": n,
        "total_s": total,
        "tridiag_s": ctx.stage_times.get("tridiagonalize", 0.0),
        "solver_s": ctx.stage_times.get("tridiag_solver", 0.0),
        "back_transform_s": ctx.stage_times.get("back_transform", 0.0),
        "refine_s": ctx.stage_times.get("refine_evd", 0.0),
        "residual": residual,
        "orth_error": orth,
        "verify_ok": bool(report.ok),
        "refine_iterations": 0 if ref is None else int(ref.iterations),
        "escalated": False if ref is None else bool(ref.escalated),
    }


def run(smoke: bool = False, write_json: bool | None = None) -> dict:
    ns = SMOKE_NS if smoke else FULL_NS
    print(banner("Mixed precision vs fp64 (proposed pipeline)", "measured"))
    rows = []
    for n in ns:
        A = goe(n, seed=n)
        r64 = _run_one(A, "fp64")
        rmx = _run_one(A, "mixed")
        rows.append({"fp64": r64, "mixed": rmx})
    print(f"  {'n':>6} | {'fp64 tridiag':>12} | {'mixed tridiag':>13} | "
          f"{'speedup':>7} | {'mixed resid':>11} | {'orth':>9} | sweeps")
    for row in rows:
        r64, rmx = row["fp64"], row["mixed"]
        sp = r64["tridiag_s"] / max(rmx["tridiag_s"], 1e-12)
        row["tridiag_speedup"] = sp
        print(f"  {r64['n']:>6} | {r64['tridiag_s']:>11.3f}s | "
              f"{rmx['tridiag_s']:>12.3f}s | {sp:>6.2f}x | "
              f"{rmx['residual']:>11.2e} | {rmx['orth_error']:>9.2e} | "
              f"{rmx['refine_iterations']}")
    payload = {
        "provenance": "measured",
        "smoke": smoke,
        "pipeline": "proposed",
        "gate_tridiag_speedup": TRIDIAG_SPEEDUP_GATE,
        "rows": rows,
    }
    if write_json if write_json is not None else not smoke:
        path = write_json_artifact(OUT_DIR, "precision", payload)
        print(f"\nartifact: {path}")
    last = rows[-1]
    print(f"\nheadline: {last['tridiag_speedup']:.2f}x tridiag-stage speedup "
          f"at n = {last['fp64']['n']} "
          f"(target {'—' if smoke else f'{TRIDIAG_SPEEDUP_GATE}x'}), "
          f"mixed verify {'OK' if last['mixed']['verify_ok'] else 'FAILED'}")
    return payload


def test_precision_smoke(report):
    """Benchmark-suite entry: mixed must stay fp64-accurate even at smoke
    scale (the speedup gate only applies at full scale)."""
    payload = run(smoke=True, write_json=False)
    for row in payload["rows"]:
        assert row["mixed"]["verify_ok"]
        assert not row["mixed"]["escalated"]
        assert row["fp64"]["verify_ok"]
    last = payload["rows"][-1]
    report(f"{last['tridiag_speedup']:.2f}x tridiag speedup at "
           f"n={last['fp64']['n']}, mixed residual "
           f"{last['mixed']['residual']:.2e}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small sizes, no JSON artifact (CI gate)")
    ap.add_argument("--json", action="store_true",
                    help="write the JSON artifact even in smoke mode")
    args = ap.parse_args(argv)
    payload = run(smoke=args.smoke, write_json=args.json or None)
    for row in payload["rows"]:
        if not row["mixed"]["verify_ok"]:
            print("FAIL: mixed result did not pass fp64 verification")
            return 1
    if not args.smoke:
        last = payload["rows"][-1]
        if last["tridiag_speedup"] < TRIDIAG_SPEEDUP_GATE:
            print(f"FAIL: tridiag speedup {last['tridiag_speedup']:.2f}x "
                  f"< {TRIDIAG_SPEEDUP_GATE}x at n = {last['fp64']['n']}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
