"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures.  Real NumPy
numerics are timed with pytest-benchmark at laptop scale (``[measured]``);
device-scale series come from the calibrated simulator (``[simulated]``).
Each report is printed and also written to ``benchmarks/out/<name>.txt`` so
EXPERIMENTS.md can reference the exact artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_collection_modifyitems(items):
    """Cap benchmark rounds: the measured pipelines run whole EVDs per
    round, so default calibration would take minutes per test."""
    for item in items:
        item.add_marker(
            pytest.mark.benchmark(max_time=0.8, min_rounds=3, warmup=False)
        )


@pytest.fixture
def report(request):
    """A writer that tees benchmark report lines to stdout and a file."""
    OUT_DIR.mkdir(exist_ok=True)
    name = request.node.name.replace("/", "_")
    path = OUT_DIR / f"{name}.txt"
    lines: list[str] = []

    def emit(*parts: object) -> None:
        line = " ".join(str(p) for p in parts)
        lines.append(line)
        print(line)

    yield emit
    path.write_text("\n".join(lines) + "\n")
