"""Figure 9 — band reduction: DBBR vs MAGMA SBR at b = 64 on H100.

Paper: DBBR wins at every size, "especially for large matrix sizes", up to
3.1x (cuBLAS cliff sizes excluded, hence n < 49152 in the paper's plot).

``[simulated]`` — device-scale time series for both reductions.
``[measured]`` — the real NumPy SBR and DBBR at laptop scale; here the two
are arithmetic-equivalent (DBBR only reorders work), so the check is
numerical identity plus comparable wall time.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import banner
from repro.bench.workloads import goe
from repro.core.dbbr import dbbr
from repro.core.sbr import sbr
from repro.gpusim import H100
from repro.models.baselines import magma_sy2sb_time
from repro.models.proposed import dbbr_time

NS = [8192, 16384, 24576, 32768, 40960, 49152]
B, K = 64, 1024


def test_fig09_simulated(benchmark, report):
    def series():
        return [
            (n, magma_sy2sb_time(H100, n, B), dbbr_time(H100, n, B, K)) for n in NS
        ]

    rows = benchmark(series)
    report(banner(f"Figure 9: band reduction time, b = {B} (H100)", "simulated"))
    report(f"  {'n':>8} | {'MAGMA SBR':>10} | {'DBBR':>10} | speedup")
    for n, t_sbr, t_dbbr in rows:
        report(f"  {n:>8} | {t_sbr:9.2f}s | {t_dbbr:9.2f}s | {t_sbr / t_dbbr:5.2f}x")
    report("paper: up to 3.1x (our model lands somewhat higher; same shape)")
    for n, t_sbr, t_dbbr in rows:
        assert t_dbbr < t_sbr
    # Large-n speedup is a multi-x win.
    last = rows[-1]
    assert last[1] / last[2] > 2.0


def test_fig09_sbr_measured(benchmark):
    A = goe(192, seed=9)
    res = benchmark(lambda: sbr(A, 8))
    assert res.bandwidth == 8


def test_fig09_dbbr_measured(benchmark):
    A = goe(192, seed=9)
    res = benchmark(lambda: dbbr(A, 8, 32))
    assert res.bandwidth == 8


def test_fig09_dbbr_equals_sbr_numerically(benchmark):
    """DBBR must produce the same band matrix (deferral is exact)."""
    A = goe(128, seed=10)

    def run():
        return sbr(A, 8).band, dbbr(A, 8, 32, syr2k_kind="reference").band

    band_sbr, band_dbbr = benchmark(run)
    assert np.allclose(band_sbr, band_dbbr, atol=1e-10)
