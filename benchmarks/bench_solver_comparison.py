"""Measured comparison of the tridiagonal eigensolvers (and Jacobi).

Not a paper figure — a harness deliverable: the paper integrates MAGMA's
divide & conquer because of its BLAS3-friendly merges; this benchmark
measures our four from-scratch solvers on the same tridiagonal problem at
laptop scale and verifies they agree.

``[measured]`` only.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import banner
from repro.bench.workloads import goe
from repro.core.direct_tridiag import direct_tridiagonalize
from repro.eig.dc import dc_eigh
from repro.eig.jacobi import jacobi_eigh
from repro.eig.qr_iteration import tridiag_qr_eigh
from repro.eig.sturm import eigh_bisect

N = 300


def _tridiag():
    A = goe(N, seed=22)
    res = direct_tridiagonalize(A)
    return res.d, res.e


def test_dc_measured(benchmark):
    d, e = _tridiag()
    lam, U = benchmark(lambda: dc_eigh(d, e))
    assert U is not None


def test_dc_novec_measured(benchmark):
    d, e = _tridiag()
    lam, _ = benchmark(lambda: dc_eigh(d, e, compute_vectors=False))
    assert lam.size == N


def test_qr_iteration_measured(benchmark):
    d, e = _tridiag()
    lam, U = benchmark(lambda: tridiag_qr_eigh(d, e))
    assert U is not None


def test_bisection_measured(benchmark):
    d, e = _tridiag()
    lam, _ = benchmark(lambda: eigh_bisect(d, e, compute_vectors=False))
    assert lam.size == N


def test_jacobi_dense_measured(benchmark):
    A = goe(120, seed=23)  # Jacobi is dense O(n^3 per sweep); smaller n
    lam, V = benchmark(lambda: jacobi_eigh(A))
    assert V is not None


def test_all_solvers_agree(benchmark, report):
    d, e = _tridiag()

    def run():
        lam_dc, _ = dc_eigh(d, e, compute_vectors=False)
        lam_qr, _ = tridiag_qr_eigh(d, e, compute_vectors=False)
        lam_bi, _ = eigh_bisect(d, e, compute_vectors=False)
        return lam_dc, lam_qr, lam_bi

    lam_dc, lam_qr, lam_bi = benchmark(run)
    scale = max(np.max(np.abs(lam_dc)), 1.0)
    d_qr = np.max(np.abs(lam_dc - lam_qr)) / scale
    d_bi = np.max(np.abs(lam_dc - lam_bi)) / scale
    report(banner(f"Tridiagonal solver agreement, n = {N}", "measured"))
    report(f"  D&C vs QL iteration: {d_qr:.2e}")
    report(f"  D&C vs bisection:    {d_bi:.2e}")
    assert d_qr < 1e-12 and d_bi < 1e-11
