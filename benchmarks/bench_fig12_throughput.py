"""Figure 12 — memory throughput of bulge chasing vs number of parallel
sweeps on H100.

Paper (Nsight Compute): more parallel sweeps → proportionally higher
achieved memory throughput, i.e. the GPU BC is limited by exposed
parallelism, not by the memory system at small S.

``[simulated]`` — achieved throughput from the byte-accounting executor
(plus the Figure 10 L2-residency analysis and a mechanistic LRU replay of
the packed-vs-naive layout at laptop scale).
"""

from __future__ import annotations

from repro.bench.reporting import banner
from repro.gpusim import H100, bc_task_bytes, bc_task_time_gpu, simulate_bc_pipeline
from repro.gpusim.memory import bc_memory_summary, simulate_layout_misses
from repro.gpusim.trace import throughput_timeline

N, B = 49152, 32
S_VALUES = [1, 4, 16, 64, 132, 528]  # 528 = "max" (4 warps x 132 SMs)


def test_fig12_throughput_simulated(benchmark, report):
    dt, s_max = bc_task_time_gpu(H100, N, B, optimized=True)

    def series():
        rows = []
        for S in S_VALUES:
            sim = simulate_bc_pipeline(N, B, min(S, s_max), dt, bc_task_bytes(B))
            rows.append((S, sim.throughput_gbs, sim.mean_parallel_sweeps))
        return rows

    rows = benchmark(series)
    report(banner(f"Figure 12: BC memory throughput vs parallel sweeps "
                  f"(n={N}, b={B})", "simulated"))
    report(f"  {'S':>6} | {'throughput':>12} | mean active sweeps")
    for S, th, act in rows:
        label = f"{S}" if S != s_max else f"{S} (max)"
        report(f"  {label:>6} | {th:9.0f} GB/s | {act:8.1f}")
    ths = [t for _, t, _ in rows]
    assert ths == sorted(ths), "throughput grows with parallelism"
    assert ths[-1] > 20 * ths[0]


def test_fig12_l2_residency_simulated(benchmark, report):
    summary = benchmark(lambda: bc_memory_summary(H100, N, B))
    report(banner("Figure 10/12: packed band working set vs H100 L2", "simulated"))
    report(f"  packed band: {summary.working_set_mb:8.2f} MB")
    report(f"  H100 L2:     {summary.l2_capacity_bytes / 1e6:8.2f} MB")
    report(f"  L2-resident: {summary.l2_resident}")
    report(f"  total traffic over the run: {summary.total_bytes / 1e12:.2f} TB "
           f"({summary.total_tasks} tasks)")
    assert summary.l2_resident  # n*(b+1)*8 = ~13 MB << 50 MB


def test_fig12_layout_lru_replay_measured(benchmark, report):
    """Mechanistic Figure-10 check: replay the exact BC access stream
    against an LRU cache for both layouts."""
    res = benchmark(lambda: simulate_layout_misses(96, 4, cache_kb=8.0, sweeps=6))
    report(banner("Figure 10: LRU miss-rate replay, naive vs packed layout",
                  "measured"))
    report(f"  naive (dense, strided): {res['naive']:.1%} misses")
    report(f"  packed (Figure 10):     {res['packed']:.1%} misses")
    assert res["packed"] < res["naive"]
