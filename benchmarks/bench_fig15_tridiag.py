"""Figure 15 — tridiagonalization: cuSOLVER vs MAGMA vs proposed, on H100
(15a) and RTX 4090 (15b).

Paper (H100, b = 32 / k = 1024 for ours; b = 64 for MAGMA): ours wins at
every size, up to 19.6 TFLOPs vs 3.4 (MAGMA) and 2.1 (cuSOLVER) — 9.3x and
5.2x.  MAGMA beats cuSOLVER only at large n.  On the RTX 4090 ours peaks at
~1.4 TFLOPs (above the 1.29 FP64 peak, via INT8-assisted GEMM) and the BC
stage is 213/209 ms (n = 4096) and 14327/1839 ms (n = 32768) for
MAGMA/ours.

``[simulated]`` — full device-scale bar series for both GPUs.
``[measured]`` — the three real pipelines timed at laptop scale.
"""

from __future__ import annotations

from repro.bench.reporting import banner
from repro.bench.workloads import goe
from repro.core.tridiag import tridiagonalize
from repro.gpusim import H100, RTX4090
from repro.models import flops as F
from repro.models.baselines import cusolver_sytrd_time, magma_tridiag_times
from repro.models.proposed import proposed_tridiag_times

NS = [4096, 8192, 16384, 32768, 49152]


def _series(device):
    rows = []
    for n in NS:
        cu = cusolver_sytrd_time(device, n)
        ma = magma_tridiag_times(device, n, 64).total
        ours = proposed_tridiag_times(device, n, 32, 1024).total
        rows.append((n, cu, ma, ours))
    return rows


def test_fig15a_h100_simulated(benchmark, report):
    rows = benchmark(lambda: _series(H100))
    report(banner("Figure 15a: tridiagonalization on H100", "simulated"))
    report(f"  {'n':>8} | {'cuSOLVER':>9} | {'MAGMA':>9} | {'ours':>9} | "
           f"{'ours TFLOPs':>11} | speedups")
    for n, cu, ma, ours in rows:
        tf = F.tridiag_flops(n) / ours / 1e12
        report(
            f"  {n:>8} | {cu:8.2f}s | {ma:8.2f}s | {ours:8.2f}s | {tf:11.2f} | "
            f"{cu / ours:4.1f}x / {ma / ours:4.1f}x"
        )
    report("paper: ours up to 19.6 TFLOPs; speedups up to 9.3x / 5.2x;"
           " MAGMA beats cuSOLVER only at large n")
    for n, cu, ma, ours in rows:
        assert ours < cu and ours < ma
    # MAGMA loses to cuSOLVER at the smallest size, wins at the largest.
    assert rows[0][2] > rows[0][1]
    assert rows[-1][2] < rows[-1][1]
    n, cu, ma, ours = rows[-1]
    assert cu / ours > 6.0 and ma / ours > 3.5


def test_fig15b_rtx4090_simulated(benchmark, report):
    rows = benchmark(lambda: _series(RTX4090))
    report(banner("Figure 15b: tridiagonalization on RTX 4090", "simulated"))
    report(f"  {'n':>8} | {'cuSOLVER':>9} | {'MAGMA':>9} | {'ours':>9} | ours TFLOPs")
    for n, cu, ma, ours in rows:
        tf = F.tridiag_flops(n) / ours / 1e12
        report(f"  {n:>8} | {cu:8.2f}s | {ma:8.2f}s | {ours:8.2f}s | {tf:6.2f}")
    st = proposed_tridiag_times(RTX4090, 32768, 32, 1024)
    ma_bc = magma_tridiag_times(RTX4090, 32768, 64).stages["sb2st"]
    report(f"  BC @32768: MAGMA {ma_bc * 1e3:6.0f} ms (paper 14327)  "
           f"ours {st.stages['gpu_bc'] * 1e3:6.0f} ms (paper 1839)")
    n, cu, ma, ours = rows[-2]  # 32768
    tf = F.tridiag_flops(n) / ours / 1e12
    assert tf > 0.9 * RTX4090.fp64_tflops  # ~peak, via INT8 assist
    assert st.stages["gpu_bc"] < ma_bc / 3


def test_fig15_proposed_measured(benchmark):
    A = goe(256, seed=15)
    res = benchmark(
        lambda: tridiagonalize(A, method="dbbr", bandwidth=8, second_block=32)
    )
    assert res.d.size == 256


def test_fig15_magma_like_measured(benchmark):
    A = goe(256, seed=15)
    res = benchmark(
        lambda: tridiagonalize(A, method="sbr", bandwidth=8, pipelined=False)
    )
    assert res.d.size == 256


def test_fig15_cusolver_like_measured(benchmark):
    A = goe(256, seed=15)
    res = benchmark(lambda: tridiagonalize(A, method="direct"))
    assert res.d.size == 256
