"""Ablation — the bulge-chasing pipeline protocol knobs.

DESIGN.md §6: (a) the safety distance between consecutive sweeps (the
paper's ``gCom + 2b`` rule = 3 bulge-tasks) — smaller is unsafe, larger
wastes parallelism; (b) warp-grouping factor (sweeps per SM) in the
optimized BC.

``[simulated]`` — makespan vs safety distance and vs sweeps-per-SM.
``[measured]`` — numeric proof that the 3-task distance is exactly safe:
the pipelined result equals sequential for every tested matrix, while the
round count grows with artificially larger distances.
"""

from __future__ import annotations

import numpy as np

from repro.band.ops import random_symmetric_band
from repro.bench.reporting import banner
from repro.core import bc_pipeline
from repro.core.bulge_chasing import bulge_chase
from repro.gpusim import H100, bc_task_time_gpu, simulate_bc_pipeline

N, B = 49152, 32


def test_ablation_safety_distance_simulated(benchmark, report):
    dt, S = bc_task_time_gpu(H100, N, B, optimized=True)

    def series():
        return [
            (s, simulate_bc_pipeline(N, B, S, dt, safety_tasks=s).total_time_s)
            for s in (3, 4, 6, 10, 20)
        ]

    rows = benchmark(series)
    report(banner("Ablation: pipeline safety distance (in bulge tasks)",
                  "simulated"))
    for s, t in rows:
        note = "  <- paper's 2b rule" if s == 3 else ""
        report(f"  distance {s:3d}: {t:7.2f} s{note}")
    times = [t for _, t in rows]
    assert times == sorted(times), "larger distance only slows the pipeline"


def test_ablation_sweeps_per_sm_simulated(benchmark, report):
    def series():
        rows = []
        for w in (1, 2, 4, 8):
            dt, S = bc_task_time_gpu(H100, N, B, optimized=True, sweeps_per_sm=w)
            t = simulate_bc_pipeline(N, B, S, dt).total_time_s
            rows.append((w, S, dt, t))
        return rows

    rows = benchmark(series)
    report(banner("Ablation: warp grouping (sweeps per SM)", "simulated"))
    for w, S, dt, t in rows:
        report(f"  {w} sweeps/SM: S={S:4d}, task {dt * 1e6:5.1f} us, "
               f"makespan {t:6.2f} s")
    # Per-task time grows with sharing, but the critical path (3n * dt)
    # means there is a sweet spot rather than monotone improvement.
    times = {w: t for w, _, _, t in rows}
    assert min(times.values()) < times[8] or min(times.values()) < times[1]


def test_ablation_safety_distance_measured(benchmark, report):
    """Numeric safety proof at the paper's distance, plus cost of larger
    distances in lockstep rounds."""
    n, b = 120, 4
    Bm = random_symmetric_band(n, b, np.random.default_rng(21))
    seq = bulge_chase(Bm, b)

    def run():
        results = {}
        original = bc_pipeline.SAFETY_TASKS
        try:
            for dist in (3, 5, 8):
                bc_pipeline.SAFETY_TASKS = dist
                res, stats = bc_pipeline.bulge_chase_pipelined(Bm, b)
                results[dist] = (res, stats.rounds)
        finally:
            bc_pipeline.SAFETY_TASKS = original
        return results

    results = benchmark(run)
    report(banner("Ablation (measured): safety distance vs rounds", "measured"))
    for dist, (res, rounds) in results.items():
        ok = np.array_equal(res.d, seq.d)
        report(f"  distance {dist}: rounds={rounds:5d}, exact={ok}")
        assert ok
    assert results[3][1] <= results[5][1] <= results[8][1]
