"""Unit tests for band utilities."""

from __future__ import annotations

import numpy as np

from repro.band.ops import (
    bandwidth_of,
    bandwidth_profile,
    extract_tridiagonal,
    is_banded,
    off_band_norm,
    random_symmetric_band,
    symmetric_error,
)


class TestBandwidthOf:
    def test_exact_band(self, rng):
        A = random_symmetric_band(20, 4, rng)
        assert bandwidth_of(A) == 4

    def test_diagonal_matrix(self):
        assert bandwidth_of(np.diag(np.arange(1.0, 6.0))) == 0

    def test_dense_matrix(self, rng):
        A = rng.standard_normal((8, 8))
        assert bandwidth_of(A) == 7

    def test_tolerance_filters_noise(self, rng):
        A = random_symmetric_band(15, 2, rng)
        A[10, 0] = 1e-14
        A[0, 10] = 1e-14
        assert bandwidth_of(A, tol=1e-12) == 2
        assert bandwidth_of(A, tol=0.0) == 10


class TestOffBandNorm:
    def test_zero_within_band(self, rng):
        A = random_symmetric_band(12, 3, rng)
        assert off_band_norm(A, 3) == 0.0

    def test_counts_both_triangles(self):
        A = np.zeros((5, 5))
        A[4, 0] = 3.0
        A[0, 4] = 4.0
        assert abs(off_band_norm(A, 1) - 5.0) < 1e-14

    def test_is_banded(self, rng):
        A = random_symmetric_band(20, 3, rng)
        assert is_banded(A, 3)
        assert not is_banded(A + np.eye(20)[::-1] * 10, 3)


class TestExtractTridiagonal:
    def test_values(self, rng):
        A = random_symmetric_band(10, 1, rng)
        d, e = extract_tridiagonal(A)
        assert np.array_equal(d, np.diagonal(A))
        assert np.array_equal(e, np.diagonal(A, -1))

    def test_returns_copies(self, rng):
        A = random_symmetric_band(8, 1, rng)
        d, _ = extract_tridiagonal(A)
        d[0] = 999.0
        assert A[0, 0] != 999.0


class TestProfiles:
    def test_bandwidth_profile(self, rng):
        A = random_symmetric_band(16, 3, rng)
        prof = bandwidth_profile(A)
        assert np.all(prof[:-3] == 3)
        assert prof[-1] == 0

    def test_symmetric_error(self, rng):
        A = random_symmetric_band(10, 2, rng)
        assert symmetric_error(A) == 0.0
        A[3, 1] += 1.0
        # Both (3,1) and (1,3) now disagree -> sqrt(2).
        assert abs(symmetric_error(A) - np.sqrt(2.0)) < 1e-14


class TestRandomBand:
    def test_structure(self, rng):
        A = random_symmetric_band(30, 5, rng)
        assert np.array_equal(A, A.T)
        assert bandwidth_of(A) == 5

    def test_deterministic_default_seed(self):
        A1 = random_symmetric_band(10, 2)
        A2 = random_symmetric_band(10, 2)
        assert np.array_equal(A1, A2)
