"""Unit tests for band linear algebra (sbmv, norms, Gershgorin)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.linalg import (
    band_frobenius_norm,
    band_gershgorin,
    band_inf_norm,
    band_quadratic_form,
    band_trace,
    sbmv,
    tridiag_matvec,
)
from repro.band.ops import random_symmetric_band
from repro.band.storage import LowerBandStorage, dense_from_band


@pytest.fixture
def case(rng):
    A = random_symmetric_band(30, 4, rng)
    return A, LowerBandStorage.from_dense(A, 4)


class TestSbmv:
    def test_matches_dense(self, case, rng):
        A, lb = case
        x = rng.standard_normal(30)
        assert np.allclose(sbmv(lb, x), A @ x, atol=1e-13)

    def test_multiple_rhs(self, case, rng):
        A, lb = case
        X = rng.standard_normal((30, 5))
        assert np.allclose(sbmv(lb, X), A @ X, atol=1e-13)

    def test_diagonal_matrix(self, rng):
        d = rng.standard_normal(10)
        lb = LowerBandStorage(d[None, :].copy(), 0)
        x = rng.standard_normal(10)
        assert np.allclose(sbmv(lb, x), d * x)

    def test_wrong_length_rejected(self, case):
        _, lb = case
        with pytest.raises(ValueError):
            sbmv(lb, np.zeros(7))

    def test_linear_in_x(self, case, rng):
        _, lb = case
        x = rng.standard_normal(30)
        y = rng.standard_normal(30)
        assert np.allclose(sbmv(lb, 2 * x + y), 2 * sbmv(lb, x) + sbmv(lb, y),
                           atol=1e-12)


class TestNorms:
    def test_frobenius_matches_dense(self, case):
        A, lb = case
        assert band_frobenius_norm(lb) == pytest.approx(np.linalg.norm(A))

    def test_inf_norm_matches_dense(self, case):
        A, lb = case
        assert band_inf_norm(lb) == pytest.approx(
            np.max(np.sum(np.abs(A), axis=1))
        )

    def test_trace(self, case):
        A, lb = case
        assert band_trace(lb) == pytest.approx(np.trace(A))

    def test_gershgorin_encloses_spectrum(self, case):
        A, lb = case
        lo, hi = band_gershgorin(lb)
        lam = np.linalg.eigvalsh(A)
        assert lo <= lam[0] and lam[-1] <= hi

    def test_quadratic_form(self, case, rng):
        A, lb = case
        x = rng.standard_normal(30)
        assert band_quadratic_form(lb, x) == pytest.approx(x @ A @ x)


class TestTridiagMatvec:
    def test_matches_dense(self, rng):
        d = rng.standard_normal(12)
        e = rng.standard_normal(11)
        x = rng.standard_normal(12)
        T = dense_from_band(d, e)
        assert np.allclose(tridiag_matvec(d, e, x), T @ x, atol=1e-13)

    def test_matrix_rhs(self, rng):
        d = rng.standard_normal(8)
        e = rng.standard_normal(7)
        X = rng.standard_normal((8, 3))
        T = dense_from_band(d, e)
        assert np.allclose(tridiag_matvec(d, e, X), T @ X, atol=1e-13)

    def test_scalar_case(self):
        y = tridiag_matvec(np.array([2.0]), np.zeros(0), np.array([3.0]))
        assert y[0] == 6.0


class TestPipelineResidualsViaBand:
    def test_band_reduction_invariants_on_band_storage(self, rng):
        """Trace and Frobenius norm are similarity invariants — checkable
        straight from band storage, no densification."""
        from repro.core.dbbr import dbbr

        g = rng.standard_normal((40, 40))
        A = (g + g.T) / 2
        res = dbbr(A, 4, 8)
        lb = LowerBandStorage.from_dense(res.band, 4)
        assert band_trace(lb) == pytest.approx(np.trace(A), abs=1e-9)
        assert band_frobenius_norm(lb) == pytest.approx(np.linalg.norm(A))

    def test_bc_band_eigen_residual_on_band_storage(self, rng):
        from repro.core.bulge_chasing_band import bulge_chase_band
        from repro.eig.dc import dc_eigh

        A = random_symmetric_band(35, 3, rng)
        lb = LowerBandStorage.from_dense(A, 3)
        bc = bulge_chase_band(lb)
        lam, U = dc_eigh(bc.d, bc.e)
        resid = np.linalg.norm(tridiag_matvec(bc.d, bc.e, U) - U * lam)
        assert resid < 1e-11 * max(band_frobenius_norm(lb), 1.0)
