"""Unit tests for band storage layouts (LAPACK lower band + Figure 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.ops import random_symmetric_band
from repro.band.storage import (
    LowerBandStorage,
    PackedBandStorage,
    band_from_dense,
    dense_from_band,
)


class TestLowerBandStorage:
    def test_roundtrip(self, rng):
        A = random_symmetric_band(20, 3, rng)
        lb = LowerBandStorage.from_dense(A, 3)
        assert np.allclose(lb.to_dense(), A)

    def test_layout_convention(self, rng):
        A = random_symmetric_band(10, 2, rng)
        lb = LowerBandStorage.from_dense(A, 2)
        for i in range(3):
            for j in range(10 - i):
                assert lb.ab[i, j] == A[j + i, j]

    def test_diagonal_and_subdiagonal_views(self, rng):
        A = random_symmetric_band(12, 4, rng)
        lb = LowerBandStorage.from_dense(A, 4)
        assert np.allclose(lb.diagonal(), np.diagonal(A))
        assert np.allclose(lb.subdiagonal(2), np.diagonal(A, -2))

    def test_subdiagonal_out_of_band(self, rng):
        lb = LowerBandStorage.from_dense(random_symmetric_band(8, 2, rng), 2)
        with pytest.raises(IndexError):
            lb.subdiagonal(3)
        with pytest.raises(IndexError):
            lb.subdiagonal(0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LowerBandStorage(np.zeros((3, 10)), bandwidth=4)

    def test_copy_is_independent(self, rng):
        lb = LowerBandStorage.from_dense(random_symmetric_band(8, 2, rng), 2)
        cp = lb.copy()
        cp.ab[0, 0] = 123.0
        assert lb.ab[0, 0] != 123.0

    def test_nbytes(self, rng):
        lb = LowerBandStorage.from_dense(random_symmetric_band(16, 3, rng), 3)
        assert lb.nbytes() == 4 * 16 * 8


class TestPackedBandStorage:
    def test_roundtrip_dense(self, rng):
        A = random_symmetric_band(15, 4, rng)
        pb = PackedBandStorage.from_dense(A, 4)
        assert np.allclose(pb.to_dense(), A)

    def test_roundtrip_via_lower_band(self, rng):
        A = random_symmetric_band(18, 3, rng)
        lb = LowerBandStorage.from_dense(A, 3)
        pb = PackedBandStorage.from_lower_band(lb)
        assert np.allclose(pb.to_lower_band().ab, lb.ab)

    def test_columns_are_consecutive(self, rng):
        # The Figure 10 property: column j's band entries occupy one
        # contiguous slice of the flat buffer.
        A = random_symmetric_band(12, 3, rng)
        pb = PackedBandStorage.from_dense(A, 3)
        for j in range(12):
            col = pb.column(j)
            expect = A[j : min(j + 4, 12), j]
            assert np.array_equal(col, expect)

    def test_total_size_formula(self, rng):
        n, b = 20, 5
        pb = PackedBandStorage.from_dense(random_symmetric_band(n, b, rng), b)
        expect = n * (b + 1) - b * (b + 1) // 2
        assert pb.data.size == expect
        assert pb.nbytes() == expect * 8

    def test_packed_smaller_than_dense(self, rng):
        n, b = 64, 4
        A = random_symmetric_band(n, b, rng)
        pb = PackedBandStorage.from_dense(A, b)
        assert pb.nbytes() < A.nbytes / 6

    def test_column_is_view(self, rng):
        pb = PackedBandStorage.from_dense(random_symmetric_band(10, 2, rng), 2)
        pb.column(3)[0] = 42.0
        assert pb.to_dense()[3, 3] == 42.0


class TestDenseFromBand:
    def test_tridiagonal_construction(self):
        T = dense_from_band(np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0]))
        expect = np.array([[1, 4, 0], [4, 2, 5], [0, 5, 3]], dtype=float)
        assert np.array_equal(T, expect)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dense_from_band(np.zeros(3), np.zeros(3))

    def test_band_from_dense_alias(self, rng):
        A = random_symmetric_band(9, 2, rng)
        assert np.allclose(band_from_dense(A, 2).to_dense(), A)


class TestBandWindowBatcher:
    @staticmethod
    def _working(A, b, depth):
        n = A.shape[0]
        data = np.zeros((depth + 1, n), dtype=np.float64)
        lb = LowerBandStorage.from_dense(A, b)
        data[: b + 1] = lb.ab
        return data

    def test_gather_matches_dense_windows(self, rng):
        from repro.band.storage import BandWindowBatcher

        n, b = 30, 3
        A = random_symmetric_band(n, b, rng)
        batcher = BandWindowBatcher(self._working(A, b, 2 * b))
        los = np.array([0, 7, 15, 21])
        w = 9
        stack = batcher.gather(los, w)
        assert stack.shape == (4, w, w)
        for s, lo in enumerate(los):
            assert np.array_equal(stack[s], A[lo : lo + w, lo : lo + w])

    def test_scatter_roundtrip(self, rng):
        from repro.band.storage import BandWindowBatcher

        n, b = 24, 2
        A = random_symmetric_band(n, b, rng)
        data = self._working(A, b, 2 * b)
        batcher = BandWindowBatcher(data)
        los = np.array([2, 12])
        w = 6
        stack = batcher.gather(los, w)
        stack[0, 1, 0] = stack[0, 0, 1] = 99.0
        stack[1, 3, 3] = -7.0
        batcher.scatter(stack, los, w)
        assert data[1, 2] == 99.0  # A[3, 2]
        assert data[0, 15] == -7.0  # A[15, 15]
        # Re-gathering sees the scattered values (symmetric single copy).
        again = batcher.gather(los, w)
        assert again[0, 0, 1] == 99.0 and again[0, 1, 0] == 99.0

    def test_entries_beyond_depth_read_zero(self, rng):
        from repro.band.storage import BandWindowBatcher

        n, b = 16, 2
        A = random_symmetric_band(n, b, rng)
        batcher = BandWindowBatcher(self._working(A, b, 2 * b))
        w = 2 * b + 3  # wider than the stored depth
        stack = batcher.gather(np.array([4]), w)
        assert np.array_equal(stack[0], A[4 : 4 + w, 4 : 4 + w])
        assert stack[0, w - 1, 0] == 0.0

    def test_buffers_are_reused(self, rng):
        from repro.band.storage import BandWindowBatcher

        A = random_symmetric_band(40, 3, rng)
        batcher = BandWindowBatcher(self._working(A, 3, 6))
        s1 = batcher.gather(np.array([0, 10, 20]), 8)
        ptr1 = s1.__array_interface__["data"][0]
        s2 = batcher.gather(np.array([5, 15, 25]), 8)
        assert s2.__array_interface__["data"][0] == ptr1

    def test_rejects_bad_arrays(self):
        from repro.band.storage import BandWindowBatcher

        # float32 is a supported working width (mixed precision); only
        # non-float dtypes, wrong ranks and non-contiguous arrays fail.
        BandWindowBatcher(np.zeros((3, 8), dtype=np.float32))
        with pytest.raises(ValueError):
            BandWindowBatcher(np.zeros((3, 8), dtype=np.int64))
        with pytest.raises(ValueError):
            BandWindowBatcher(np.zeros(8))
        batcher = BandWindowBatcher(np.zeros((3, 8)))
        with pytest.raises(ValueError):
            batcher.gather(np.array([0]), 9)
