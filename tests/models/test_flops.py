"""Unit tests: analytical flop counts vs the exact counters the numeric
kernels accumulate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bulge_chasing import bulge_chase
from repro.core.dbbr import dbbr
from repro.core.sbr import sbr
from repro.band.ops import random_symmetric_band
from repro.models import flops as F
from tests.conftest import make_symmetric


class TestFormulas:
    def test_tridiag_convention(self):
        assert F.tridiag_flops(300) == pytest.approx(4 / 3 * 300**3)

    def test_syr2k(self):
        assert F.syr2k_flops(64, 16) == 2 * 64 * 64 * 16

    def test_dbbr_exceeds_sbr(self):
        assert F.dbbr_flops(1000, 32, 512) > F.sbr_flops(1000, 32)

    def test_bc_task_count_quadratic(self):
        c1 = F.bc_task_count(1000, 8)
        c2 = F.bc_task_count(2000, 8)
        assert 3.5 < c2 / c1 < 4.5

    def test_bc_task_count_trivial(self):
        assert F.bc_task_count(100, 1) == 0.0
        assert F.bc_task_count(2, 4) == 0.0

    def test_stedc_vector_vs_novec(self):
        # Vector path is O(n^3) vs O(n^2 log n): ratio ~ n / (22 log n).
        assert F.stedc_flops(4096, True) > 10 * F.stedc_flops(4096, False)
        assert F.stedc_flops(49152, True) > 100 * F.stedc_flops(49152, False)

    def test_evd_budget_includes_back_transforms(self):
        with_v = F.evd_flops(2048, 32, True)
        without = F.evd_flops(2048, 32, False)
        assert with_v > without + 2 * 2048**3  # two ~2n^3 back transforms


class TestAgainstImplementationCounters:
    def test_sbr_counter_close_to_formula(self):
        n, b = 96, 8
        res = sbr(make_symmetric(n, seed=1), b)
        assert res.flops == pytest.approx(F.sbr_flops(n, b), rel=0.6)

    def test_dbbr_counter_close_to_formula(self):
        n, b, k = 96, 8, 32
        res = dbbr(make_symmetric(n, seed=2), b, k)
        assert res.flops == pytest.approx(F.dbbr_flops(n, b, k), rel=0.7)

    def test_bc_counter_close_to_formula(self, rng):
        n, b = 80, 6
        res = bulge_chase(random_symmetric_band(n, b, rng), b)
        assert res.flops == pytest.approx(F.bulge_chasing_flops(n, b), rel=0.7)

    def test_bc_task_count_exact(self, rng):
        from repro.core.bulge_chasing import num_tasks_in_sweep

        for n, b in [(50, 4), (33, 7)]:
            expect = sum(num_tasks_in_sweep(n, b, i) for i in range(n - 2))
            assert F.bc_task_count(n, b) == expect
