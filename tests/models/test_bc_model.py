"""Unit tests for the Section 3.3 analytical bulge-chasing model."""

from __future__ import annotations

import pytest

from repro.gpusim.device import H100
from repro.gpusim.executor import simulate_bc_pipeline
from repro.models.bc_model import (
    bc_time_model,
    figure5_series,
    model_vs_executor,
    stall_cycles,
    successive_bulge_cycles,
    total_cycles,
)


class TestClosedForm:
    def test_successive_bulges(self):
        assert successive_bulge_cycles(65536) == 3 * 65536 - 2

    def test_stalls_vanish_for_large_s(self):
        # Once S covers the pipeline depth there are no stalls.
        assert stall_cycles(65536, 32, 4096) == 0.0

    def test_stalls_monotone_decreasing_in_s(self):
        vals = [stall_cycles(65536, 32, S) for S in [1, 2, 4, 8, 16, 32, 64, 128]]
        assert vals == sorted(vals, reverse=True)

    def test_total_cycles_monotone_in_s(self):
        vals = [total_cycles(65536, 32, S) for S in [1, 4, 16, 64, 256]]
        assert vals == sorted(vals, reverse=True)

    def test_invalid_s(self):
        with pytest.raises(ValueError):
            stall_cycles(100, 4, 0)

    def test_time_is_cycles_times_t_bulge(self):
        assert bc_time_model(1000, 8, 16, 2e-6) == pytest.approx(
            total_cycles(1000, 8, 16) * 2e-6
        )


class TestFigure5:
    def test_series_shape(self):
        series = figure5_series()
        assert [s for s, _ in series] == [1, 2, 4, 8, 16, 32, 64, 128]
        times = [t for _, t in series]
        assert times == sorted(times, reverse=True)

    def test_crossover_near_32_sweeps(self):
        # The paper's claim: at S >= 32 the GPU model beats MAGMA
        # (n = 65536, b = 32; MAGMA line from the CPU model).
        from repro.gpusim.device import CPU_8_CORE
        from repro.models.baselines import magma_sb2st_time

        magma = magma_sb2st_time(CPU_8_CORE, 65536, 32)
        t16 = bc_time_model(65536, 32, 16)
        t32 = bc_time_model(65536, 32, 32)
        assert t32 < magma
        assert t16 > t32  # still improving at the crossover

    def test_serial_far_slower_than_magma(self):
        from repro.gpusim.device import CPU_8_CORE
        from repro.models.baselines import magma_sb2st_time

        magma = magma_sb2st_time(CPU_8_CORE, 65536, 32)
        assert bc_time_model(65536, 32, 1) > 3 * magma


class TestModelVsExecutor:
    @pytest.mark.parametrize("S", [4, 16, 64])
    def test_closed_form_tracks_simulation(self, S):
        # The claim Figure 5 rests on: the analytical cycle count agrees
        # with the event-driven executor within a modest factor.
        model_t, sim_t = model_vs_executor(H100, 8192, 32, S)
        assert 0.3 < model_t / sim_t < 3.0

    def test_both_converge_at_large_s(self):
        model_t, sim_t = model_vs_executor(H100, 8192, 32, 10_000)
        # Fully pipelined: both ~3n cycles.
        dt, _ = __import__("repro.gpusim.kernels", fromlist=["bc_task_time_gpu"]).bc_task_time_gpu(
            H100, 8192, 32, optimized=False
        )
        assert abs(model_t - sim_t) < 0.5 * max(model_t, sim_t)
