"""Unit tests for the figure-data generators."""

from __future__ import annotations

import pytest

from repro.models.figures import (
    figure5,
    figure8,
    figure11,
    figure15,
    figure16,
    figure_registry,
    make_figure,
    table1,
)


class TestRegistry:
    def test_all_figures_present(self):
        reg = figure_registry()
        assert set(reg) == {
            "table1", "fig4", "fig5", "fig8", "fig9",
            "fig11", "fig12", "fig14", "fig15", "fig16",
        }

    @pytest.mark.parametrize("name", ["table1", "fig4", "fig5", "fig8", "fig9",
                                      "fig11", "fig12", "fig14", "fig15", "fig16"])
    def test_every_figure_generates(self, name):
        data = make_figure(name)
        assert data.series
        for s in data.series:
            assert s.points
            assert all(y >= 0 for _, y in s.points)

    def test_name_normalization(self):
        assert make_figure("Figure15").figure == "Figure 15"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_figure("fig3")


class TestContent:
    def test_table1_has_four_series(self):
        data = table1()
        assert len(data.series) == 4  # 2 devices x 2 sizes

    def test_figure5_magma_line_flat(self):
        data = figure5()
        magma = next(s for s in data.series if "MAGMA" in s.name)
        ys = [y for _, y in magma.points]
        assert ys[0] == ys[-1]

    def test_figure8_cliff_visible(self):
        data = figure8()
        cublas = next(s for s in data.series if "cuBLAS" in s.name)
        pts = dict(cublas.points)
        assert pts[49152] < 0.6 * pts[40960]

    def test_figure11_ordering(self):
        data = figure11()
        by_name = {s.name: dict(s.points) for s in data.series}
        for n in (32768, 49152):
            assert (by_name["optimized GPU"][n]
                    < by_name["naive GPU"][n]
                    < by_name["MAGMA sb2st"][n])

    def test_figure15_tflops_annotation(self):
        data = figure15()
        tflops = next(s for s in data.series if "TFLOPs" in s.name)
        assert max(y for _, y in tflops.points) > 14.0

    def test_figure16_vec_vs_novec(self):
        novec = figure16(False)
        vec = figure16(True)
        ours_n = dict(next(s for s in novec.series if s.name == "proposed").points)
        ours_v = dict(next(s for s in vec.series if s.name == "proposed").points)
        assert ours_v[49152] > 3 * ours_n[49152]  # vectors are expensive
