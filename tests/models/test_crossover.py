"""Unit tests for crossover analysis (Figures 15/16 intersections)."""

from __future__ import annotations

import pytest

from repro.models.crossover import (
    crossover_n,
    evd_novec_vs_cusolver,
    magma_vs_cusolver_tridiag,
)


class TestCrossoverSearch:
    def test_linear_functions(self):
        # a(n) = 100 + n/100, b(n) = n/10: a wins above ~1111.
        x = crossover_n(lambda n: 100 + n / 100, lambda n: n / 10,
                        lo=256, hi=65536, resolution=64)
        assert x is not None
        assert abs(x - 1111) < 200

    def test_a_already_winning(self):
        assert crossover_n(lambda n: 1.0, lambda n: 2.0, lo=1024) == 1024

    def test_never_crosses(self):
        assert crossover_n(lambda n: 2.0, lambda n: 1.0) is None

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            crossover_n(lambda n: 1.0, lambda n: 2.0, resolution=0)


class TestPaperCrossovers:
    def test_magma_passes_cusolver_at_large_n(self):
        # Figure 15a: "MAGMA ... superior performance only for large
        # matrices" — the crossover exists and sits well above 4096.
        x = magma_vs_cusolver_tridiag()
        assert x is not None
        assert 8192 <= x <= 40000

    def test_proposed_evd_crossover_band(self):
        # Figure 16 (eigenvalues only): cuSOLVER wins below ~8192 because
        # of MAGMA's Dstedc overhead; we pass it in the low thousands.
        x = evd_novec_vs_cusolver()
        assert x is not None
        assert 1024 <= x <= 16384
