"""Unit tests for the Table 1 / Figure 8 syr2k series generators."""

from __future__ import annotations

import math

from repro.gpusim.device import H100, RTX4090
from repro.models.syr2k_model import PAPER_TABLE1, figure8_series, table1_rows


class TestTable1:
    def test_rows_cover_all_ks(self):
        rows = table1_rows([H100, RTX4090])
        assert [r.k for r in rows] == [16, 32, 64, 128, 256, 512, 1024, 2048, 4096]

    def test_paper_references_attached(self):
        rows = table1_rows([H100])
        for r in rows:
            assert r.paper[("H100-SXM", 32768)] == PAPER_TABLE1[("H100-SXM", 32768)][r.k]

    def test_model_tracks_paper_trend(self):
        # Spearman-like check: model ordering across k matches the paper's.
        rows = table1_rows([H100], ns=(32768,))
        model = [r.model[("H100-SXM", 32768)] for r in rows]
        paper = [r.paper[("H100-SXM", 32768)] for r in rows]
        assert model == sorted(model)
        assert paper == sorted(paper)

    def test_unknown_device_gets_nan_reference(self):
        dev = H100.with_(name="H200")
        rows = table1_rows([dev], ns=(32768,), ks=(64,))
        assert math.isnan(rows[0].paper[("H200", 32768)])


class TestFigure8:
    def test_cliff_only_in_cublas(self):
        ns = [8192, 16384, 32768, 49152, 65536]
        series = figure8_series(H100, ns)
        cublas = {n: c for n, c, _ in series}
        square = {n: s for n, _, s in series}
        assert cublas[49152] < 0.6 * cublas[32768]
        assert square[49152] > 0.85 * square[32768]

    def test_square_wins_everywhere(self):
        for _, cublas, square in figure8_series(H100, [8192, 32768, 65536]):
            assert square > cublas
