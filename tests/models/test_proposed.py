"""Unit tests pinning the proposed-method time model to the paper's
headline numbers (Figures 9, 11, 14, 15, 16)."""

from __future__ import annotations

import pytest

from repro.gpusim.device import CPU_8_CORE, H100, RTX4090
from repro.models import flops as F
from repro.models.baselines import (
    cusolver_syevd_times,
    cusolver_sytrd_time,
    magma_evd_times,
    magma_ormqr_sbr_time,
    magma_sb2st_time,
    magma_sy2sb_time,
    magma_tridiag_times,
)
from repro.models.proposed import (
    dbbr_time,
    gpu_bc_time,
    proposed_back_transform_time,
    proposed_evd_times,
    proposed_tridiag_times,
)


class TestFigure9DBBR:
    def test_dbbr_beats_sbr_at_same_bandwidth(self):
        for n in [16384, 32768, 49152]:
            assert dbbr_time(H100, n, 64, 1024) < magma_sy2sb_time(H100, n, 64)

    def test_large_n_speedup_band(self):
        # Paper Figure 9: up to 3.1x at b = 64.  Our model lands somewhat
        # higher (we price the custom-kernel DBBR favorably at b = 64);
        # the qualitative claim — a multi-x win at large n — holds.
        s_large = magma_sy2sb_time(H100, 49152, 64) / dbbr_time(H100, 49152, 64, 1024)
        assert 2.0 < s_large < 7.0


class TestFigure11BC:
    def test_naive_speedup_vs_magma(self):
        # Paper: up to 5.9x (naive GPU vs MAGMA CPU).
        n, b = 49152, 32
        magma = magma_sb2st_time(CPU_8_CORE, n, b)
        naive = gpu_bc_time(H100, n, b, optimized=False)
        assert 3.5 < magma / naive < 8.0

    def test_optimized_speedup_vs_magma(self):
        # Paper: up to 12.5x.
        n, b = 49152, 32
        magma = magma_sb2st_time(CPU_8_CORE, n, b)
        opt = gpu_bc_time(H100, n, b, optimized=True)
        assert 9.0 < magma / opt < 16.0

    def test_optimized_beats_naive(self):
        for n in [16384, 32768, 49152]:
            assert gpu_bc_time(H100, n, 32, True) < gpu_bc_time(H100, n, 32, False)

    def test_4090_bc_anchor(self):
        # Section 6.1: 1839 ms at n = 32768 (vs MAGMA 14327 ms).
        t = gpu_bc_time(RTX4090, 32768, 32, optimized=True)
        assert t == pytest.approx(1.839, rel=0.3)


class TestFigure14BackTransform:
    def test_proposed_faster_than_magma_ormqr(self):
        # Paper: ~1.6x with k = 2048 at b = 64.
        for n in [16384, 32768, 49152]:
            magma = magma_ormqr_sbr_time(H100, n, 64)
            ours = proposed_back_transform_time(H100, n, 64, 2048)
            assert 1.1 < magma / ours < 3.0, n


class TestFigure15Tridiag:
    def test_h100_headline_tflops(self):
        n = 49152
        st = proposed_tridiag_times(H100, n, 32, 1024)
        tf = F.tridiag_flops(n) / st.total / 1e12
        assert 15.0 < tf < 25.0  # paper: up to 19.6

    def test_speedups_vs_baselines(self):
        n = 49152
        ours = proposed_tridiag_times(H100, n, 32, 1024).total
        cu = cusolver_sytrd_time(H100, n)
        ma = magma_tridiag_times(H100, n, 64).total
        assert 6.0 < cu / ours < 13.0  # paper: up to 9.3x
        assert 3.5 < ma / ours < 7.5  # paper: up to 5.2x

    def test_bc_no_longer_the_bottleneck(self):
        # Section 5.2: after optimization BC is a small share.
        st = proposed_tridiag_times(H100, 49152, 32, 1024)
        assert st.fraction("gpu_bc") < 0.35

    def test_4090_exceeds_fp64_peak(self):
        # Section 6.1: INT8 assist pushes past the 1.29 TFLOPs FP64 peak.
        n = 32768
        st = proposed_tridiag_times(RTX4090, n, 32, 1024)
        tf = F.tridiag_flops(n) / st.total / 1e12
        assert tf > 0.9 * RTX4090.fp64_tflops

    def test_monotone_speedup_in_n(self):
        speedups = []
        for n in [8192, 16384, 32768, 49152]:
            ours = proposed_tridiag_times(H100, n, 32, 1024).total
            speedups.append(cusolver_sytrd_time(H100, n) / ours)
        assert speedups[-1] > speedups[0]


class TestFigure16EVD:
    def test_novec_speedups(self):
        n = 49152
        ours = proposed_evd_times(H100, n, False).total
        cu = cusolver_syevd_times(H100, n, False).total
        ma = magma_evd_times(H100, n, False).total
        assert 4.0 < cu / ours < 10.0  # paper: up to 6.1x
        assert 2.5 < ma / ours < 7.0  # paper: up to 3.8x

    def test_vec_slight_advantage_only(self):
        # Section 6.2: with eigenvectors the advantage shrinks.
        n = 49152
        ours = proposed_evd_times(H100, n, True).total
        cu = cusolver_syevd_times(H100, n, True).total
        assert 1.0 < cu / ours < 2.5

    def test_bc_back_dominates_vector_path(self):
        # Section 6.2: 61% of the proposed EVD with vectors.
        st = proposed_evd_times(H100, 49152, True)
        assert 0.45 < st.fraction("bc_back") < 0.75

    def test_small_n_crossover(self):
        # Below ~8192 cuSOLVER wins the eigenvalues-only race because
        # MAGMA's Dstedc has a large fixed cost (33 ms vs 248 ms).
        ours = proposed_evd_times(H100, 4096, False).total
        cu = cusolver_syevd_times(H100, 4096, False).total
        assert cu < ours * 1.6  # no big win for us at small n

    def test_tridiag_share_dominant_without_vectors(self):
        st = proposed_evd_times(H100, 49152, False)
        tri = st.stages["dbbr"] + st.stages["gpu_bc"]
        assert tri / st.total > 0.6
