"""Unit tests pinning the baseline time models to the paper's anchors."""

from __future__ import annotations

import pytest

from repro.gpusim.device import CPU_8_CORE, H100, RTX4090
from repro.models import flops as F
from repro.models.baselines import (
    cusolver_stedc_time,
    cusolver_syevd_times,
    cusolver_sytrd_time,
    magma_evd_times,
    magma_ormqr_sbr_time,
    magma_sb2st_time,
    magma_stedc_time,
    magma_sy2sb_time,
    magma_tridiag_times,
)


class TestCuSolverAnchors:
    def test_sytrd_two_tflops_on_h100(self):
        # Figure 4 / Section 1: ~2.0-2.1 TFLOPs at n = 49152.
        n = 49152
        t = cusolver_sytrd_time(H100, n)
        tf = F.tridiag_flops(n) / t / 1e12
        assert 1.6 < tf < 2.6

    def test_sytrd_fraction_of_evd_dominant(self):
        # ">97% of EVD time on tridiagonalization" (eigenvalues path).
        st = cusolver_syevd_times(H100, 49152, compute_vectors=False)
        assert st.fraction("sytrd") > 0.95

    def test_stedc_33ms_at_8192(self):
        t = cusolver_stedc_time(H100, 8192, compute_vectors=False)
        assert t == pytest.approx(33e-3, rel=0.05)

    def test_vectors_add_ormtr_stage(self):
        novec = cusolver_syevd_times(H100, 16384, False)
        vec = cusolver_syevd_times(H100, 16384, True)
        assert "ormtr" in vec.stages and "ormtr" not in novec.stages
        assert vec.total > novec.total


class TestMagmaAnchors:
    def test_sy2sb_22s_at_49152(self):
        t = magma_sy2sb_time(H100, 49152, 64)
        assert t == pytest.approx(22.1, rel=0.25)

    @pytest.mark.parametrize("b,target", [(32, 16.2), (64, 23.9), (128, 84.9)])
    def test_sb2st_section32_anchors(self, b, target):
        t = magma_sb2st_time(CPU_8_CORE, 49152, b)
        assert t == pytest.approx(target, rel=0.15)

    def test_bandwidth_tradeoff(self):
        # Section 3.2: b = 64 -> 128 makes SBR faster but BC much slower,
        # and the total worse.
        sbr64 = magma_sy2sb_time(H100, 49152, 64)
        sbr128 = magma_sy2sb_time(H100, 49152, 128)
        bc64 = magma_sb2st_time(CPU_8_CORE, 49152, 64)
        bc128 = magma_sb2st_time(CPU_8_CORE, 49152, 128)
        assert sbr128 < sbr64
        assert bc128 > 2.5 * bc64
        assert sbr128 + bc128 > sbr64 + bc64

    def test_tridiag_3_4_tflops(self):
        n = 49152
        st = magma_tridiag_times(H100, n, b=64)
        tf = F.tridiag_flops(n) / st.total / 1e12
        assert 2.7 < tf < 4.5

    def test_bc_roughly_half_of_tridiag(self):
        # Figure 4: sb2st ~48% of the 2-stage tridiagonalization.
        st = magma_tridiag_times(H100, 49152, b=64)
        assert 0.35 < st.fraction("sb2st") < 0.65

    def test_magma_stedc_slower_than_cusolver(self):
        for n in [8192, 49152]:
            assert magma_stedc_time(H100, n, False) > cusolver_stedc_time(
                H100, n, False
            )

    def test_magma_stedc_248ms_at_8192(self):
        t = magma_stedc_time(H100, 8192, False)
        assert t == pytest.approx(248e-3, rel=0.15)

    def test_evd_dc_fraction_small(self):
        # Figure 4 right: Dstedc ~7.6% of MAGMA EVD (eigenvalues path).
        st = magma_evd_times(H100, 49152, compute_vectors=False)
        assert 0.02 < st.fraction("stedc") < 0.15

    def test_ormqr_scales_with_n_cubed(self):
        t1 = magma_ormqr_sbr_time(H100, 16384, 64)
        t2 = magma_ormqr_sbr_time(H100, 32768, 64)
        assert 5.0 < t2 / t1 < 11.0


class TestRTX4090:
    def test_magma_bc_14s_at_32768(self):
        # Section 6.1: 14327 ms (the CPU does the BC; GPU-independent).
        t = magma_sb2st_time(CPU_8_CORE, 32768, 64)
        assert t == pytest.approx(14.3, rel=0.35)

    def test_sy2sb_near_peak_on_4090(self):
        # Section 3.2: classic SBR is efficient on the 4090.
        n = 32768
        t = magma_sy2sb_time(RTX4090, n, 64)
        tf = F.tridiag_flops(n) / t / 1e12
        assert tf > 0.3 * RTX4090.fp64_tflops
