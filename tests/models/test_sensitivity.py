"""Unit tests: the paper's conclusions survive calibration perturbation."""

from __future__ import annotations

import pytest

from repro.gpusim.device import H100
from repro.models.sensitivity import (
    PERTURBABLE_FIELDS,
    conclusions_hold,
    headline_metrics,
    sweep_device_parameter,
)


class TestHeadlineMetrics:
    def test_baseline_values(self):
        m = headline_metrics()
        assert 14.0 < m.tridiag_tflops < 26.0
        assert m.speedup_vs_cusolver > 6.0
        assert m.speedup_vs_magma > 3.5
        assert m.bc_speedup_optimized > 9.0

    def test_all_conclusions_true_at_baseline(self):
        assert all(headline_metrics().conclusions().values())


class TestSweeps:
    def test_sweep_shapes(self):
        rows = sweep_device_parameter("gemm_peak_tflops", (0.8, 1.0, 1.2))
        assert [f for f, _ in rows] == [0.8, 1.0, 1.2]
        tflops = [m.tridiag_tflops for _, m in rows]
        # Faster GEMM -> faster proposed tridiagonalization.
        assert tflops == sorted(tflops)

    def test_bandwidth_hits_everyone(self):
        # Cutting memory bandwidth slows ours AND cuSOLVER (symv-bound):
        # the speedup moves less than the raw time.
        rows = sweep_device_parameter("mem_bw_gbs", (0.7, 1.0))
        s_lo = rows[0][1].speedup_vs_cusolver
        s_hi = rows[1][1].speedup_vs_cusolver
        assert abs(s_lo - s_hi) / s_hi < 0.5

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            sweep_device_parameter("sm_count")


class TestConclusionsRobust:
    def test_conclusions_survive_25_percent(self):
        verdicts = conclusions_hold(factor=0.75)
        # Ordinal claims must be calibration-robust.
        assert verdicts["tridiag_faster_than_cusolver"]
        assert verdicts["tridiag_faster_than_magma"]
        assert verdicts["tridiag_multix_speedup"]
        assert verdicts["gpu_bc_beats_magma"]
        assert verdicts["evd_novec_wins"]

    def test_perturbable_fields_exist_on_spec(self):
        for field in PERTURBABLE_FIELDS:
            assert hasattr(H100, field)
