"""Unit tests for the benchmark reporting helpers."""

from __future__ import annotations

from repro.bench.reporting import Series, banner, format_time, print_series, print_table
from repro.bench.timing import measure


class TestFormatting:
    def test_banner_contains_provenance(self):
        text = banner("My figure", "simulated")
        assert "My figure" in text and "[simulated]" in text

    def test_format_time_units(self):
        assert "us" in format_time(5e-6)
        assert "ms" in format_time(5e-3)
        assert "s" in format_time(5.0)

    def test_print_table_alignment(self):
        lines = []
        print_table(["a", "bb"], [["1", "2"], ["333", "4"]], out=lines.append)
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows same width


class TestSeries:
    def test_add_and_paper_refs(self):
        s = Series("model", paper={10.0: 1.5})
        s.add(10.0, 1.4)
        s.add(20.0, 2.8)
        lines = []
        print_series([s], xlabel="n", out=lines.append)
        joined = "\n".join(lines)
        assert "paper 1.5" in joined
        assert "2.8" in joined

    def test_missing_points_dashed(self):
        s1 = Series("a")
        s1.add(1.0, 10.0)
        s2 = Series("b")
        s2.add(2.0, 20.0)
        lines = []
        print_series([s1, s2], out=lines.append)
        assert any("-" in line for line in lines[2:])


class TestMeasure:
    def test_measure_returns_positive_times(self):
        t = measure(lambda: sum(range(1000)), reps=3, warmup=1)
        assert t.best > 0 and t.mean >= t.best and t.reps == 3
