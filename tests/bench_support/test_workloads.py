"""Unit tests for the workload generators."""

from __future__ import annotations

import numpy as np

from repro.bench.workloads import (
    clustered_spectrum,
    geometric_spectrum,
    goe,
    laplacian_1d,
    random_band,
    symmetric_with_spectrum,
    uniform_spectrum,
    wilkinson_tridiagonal,
)


class TestGenerators:
    def test_goe_symmetric_and_deterministic(self):
        A = goe(20, seed=1)
        assert np.array_equal(A, A.T)
        assert np.array_equal(A, goe(20, seed=1))
        assert not np.array_equal(A, goe(20, seed=2))

    def test_spectrum_construction_exact(self):
        lam = np.array([-2.0, 0.5, 1.0, 7.0])
        A = symmetric_with_spectrum(lam, seed=3)
        assert np.max(np.abs(np.linalg.eigvalsh(A) - lam)) < 1e-12

    def test_clustered_spectrum_shape(self):
        lam = clustered_spectrum(40, clusters=4, spread=1e-9, seed=4)
        assert lam.size == 40
        assert np.all(np.diff(lam) >= 0)
        # Gaps within clusters tiny, between clusters large.
        gaps = np.sort(np.diff(lam))
        assert gaps[0] < 1e-7 and gaps[-1] > 1e-3

    def test_geometric_condition_number(self):
        lam = geometric_spectrum(30, cond=1e8)
        assert lam[-1] / lam[0] == 1e8 or abs(lam[-1] / lam[0] - 1e8) < 1.0

    def test_uniform_endpoints(self):
        lam = uniform_spectrum(11, -3.0, 5.0)
        assert lam[0] == -3.0 and lam[-1] == 5.0

    def test_wilkinson_structure(self):
        d, e = wilkinson_tridiagonal(21)
        assert d[10] == 0.0 and d[0] == d[-1] == 10.0
        assert np.all(e == 1.0)

    def test_laplacian_spectrum(self):
        d, e = laplacian_1d(16)
        from scipy.linalg import eigh_tridiagonal

        lam = eigh_tridiagonal(d, e, eigvals_only=True)
        expect = 2.0 - 2.0 * np.cos(np.arange(1, 17) * np.pi / 17)
        assert np.max(np.abs(np.sort(lam) - np.sort(expect))) < 1e-12

    def test_random_band_bandwidth(self):
        from repro.band.ops import bandwidth_of

        A = random_band(30, 5, seed=6)
        assert bandwidth_of(A) == 5
        assert np.array_equal(A, A.T)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(7)
        A1 = goe(8, seed=rng)
        A2 = goe(8, seed=rng)  # same generator advanced -> different draw
        assert not np.array_equal(A1, A2)
