"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.bench.plotting import bar_chart, line_chart


class TestLineChart:
    def test_renders_all_series_markers(self):
        chart = line_chart(
            [("a", [(0, 0), (1, 1)]), ("b", [(0, 1), (1, 0)])],
            width=20, height=8,
        )
        assert chart.legend == {"a": "*", "b": "o"}
        assert "*" in chart.text and "o" in chart.text

    def test_axis_labels_present(self):
        chart = line_chart([("s", [(10, 5), (100, 50)])], width=30, height=6)
        assert "10" in chart.text and "100" in chart.text
        assert "50" in chart.text

    def test_log_scale_tag(self):
        chart = line_chart([("s", [(1, 1), (2, 1000)])], logy=True)
        assert "[log y]" in chart.text

    def test_monotone_series_slopes_up(self):
        chart = line_chart([("up", [(0, 0), (1, 1), (2, 2)])], width=12, height=6)
        rows = [l.split("|", 1)[1] for l in chart.text.splitlines() if "|" in l]
        cols = {}
        for r, line in enumerate(rows):
            for c, ch in enumerate(line):
                if ch == "*":
                    cols[c] = r
        # Larger x -> smaller row index (higher on screen).
        items = sorted(cols.items())
        assert all(r1 >= r2 for (_, r1), (_, r2) in zip(items, items[1:]))

    def test_empty_series(self):
        chart = line_chart([])
        assert "no data" in chart.text

    def test_constant_series_no_crash(self):
        chart = line_chart([("flat", [(0, 5), (1, 5), (2, 5)])])
        assert "*" in chart.text

    def test_title(self):
        chart = line_chart([("s", [(0, 1)])], title="My title")
        assert chart.text.splitlines()[0] == "My title"


class TestBarChart:
    def test_bars_and_shares(self):
        chart = bar_chart(["x", "yy"], [1.0, 3.0], width=12, unit="s")
        lines = chart.text.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 12  # max bar fills the width
        assert "75.0%" in lines[1]

    def test_zero_value_bar(self):
        chart = bar_chart(["a", "b"], [0.0, 2.0])
        assert "a" in chart.text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "no data" in bar_chart([], []).text
