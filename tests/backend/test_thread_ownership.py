"""Regression tests for the owning-thread assertion on ExecutionContext
and its WorkspacePool: sharing a context across threads fails loudly
instead of silently corrupting shared scratch buffers."""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro.backend.context import ExecutionContext, WorkspacePool
from repro.backend.registry import get_backend
from repro.bench.workloads import goe


def run_in_thread(fn):
    """Run ``fn`` in a fresh thread; return (result, exception)."""
    box = {"result": None, "exc": None}

    def target():
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 - captured for assert
            box["exc"] = exc

    t = threading.Thread(target=target)
    t.start()
    t.join(timeout=30)
    assert not t.is_alive()
    return box["result"], box["exc"]


class TestWorkspacePoolOwnership:
    def test_binds_to_first_using_thread(self):
        pool = WorkspacePool(get_backend("numpy"))
        buf = pool.stack("a", (4, 4))
        assert buf.shape == (4, 4)
        buf2 = pool.stack("a", (4, 4))
        assert buf2.base is buf.base or np.shares_memory(buf, buf2)

    def test_cross_thread_use_raises(self):
        pool = WorkspacePool(get_backend("numpy"))
        pool.stack("a", (2, 2))  # binds to this thread
        _, exc = run_in_thread(lambda: pool.stack("a", (2, 2)))
        assert isinstance(exc, RuntimeError)
        assert "not thread-safe" in str(exc)

    def test_thread_that_binds_keeps_ownership(self):
        pool = WorkspacePool(get_backend("numpy"))
        _, exc = run_in_thread(lambda: pool.stack("a", (2, 2)))
        assert exc is None  # first use from the worker binds there
        with pytest.raises(RuntimeError):
            pool.stack("a", (2, 2))  # now *this* thread is the stranger


class TestExecutionContextOwnership:
    def test_stage_from_second_thread_raises(self):
        ctx = ExecutionContext(backend="numpy")
        with ctx.stage("warmup"):
            pass

        def use_elsewhere():
            with ctx.stage("intruder"):
                pass

        _, exc = run_in_thread(use_elsewhere)
        assert isinstance(exc, RuntimeError)
        assert "ExecutionContext" in str(exc)

    def test_shared_context_in_pipeline_raises(self):
        """The realistic failure: one warm context handed to a second
        thread running a full solve."""
        ctx = ExecutionContext(backend="numpy")
        A = goe(24, seed=0)
        repro.eigh(A, backend=ctx)  # binds the context here
        _, exc = run_in_thread(lambda: repro.eigh(goe(24, seed=1), backend=ctx))
        assert isinstance(exc, RuntimeError)

    def test_per_thread_contexts_work_concurrently(self):
        """The supported pattern — one context per thread — must keep
        producing bit-identical results under concurrency."""
        mats = [goe(20, seed=s) for s in range(4)]
        refs = [repro.eigh(A) for A in mats]
        out = [None] * len(mats)

        def solve(i):
            ctx = ExecutionContext(backend="numpy")
            out[i] = repro.eigh(mats[i], backend=ctx)

        threads = [threading.Thread(target=solve, args=(i,))
                   for i in range(len(mats))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        for ref, got in zip(refs, out):
            assert np.array_equal(ref.eigenvalues, got.eigenvalues)
            assert np.array_equal(ref.eigenvectors, got.eigenvectors)

    def test_fresh_default_contexts_unaffected(self):
        """backend=None resolves a fresh context per call, so plain API
        use from many threads stays valid."""
        A = goe(16, seed=2)
        ref = repro.eigh(A)
        got, exc = run_in_thread(lambda: repro.eigh(A))
        assert exc is None
        assert np.array_equal(ref.eigenvalues, got.eigenvalues)
