"""Backend layer: protocol conformance, registry resolution, context."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    BackendUnavailable,
    ExecutionContext,
    NumpyBackend,
    StageEvent,
    WorkspacePool,
    available_backends,
    get_backend,
    resolve_context,
)
from repro.backend import registry
from repro.backend.base import assert_f64

BACKEND_NAMES = ["numpy", "torch"]


@pytest.fixture(params=BACKEND_NAMES, ids=[f"backend-{b}" for b in BACKEND_NAMES])
def backend(request) -> ArrayBackend:
    if request.param != "numpy":
        pytest.importorskip(request.param)
    return get_backend(request.param)


class TestProtocolConformance:
    """Every constructible backend satisfies the ArrayBackend contract."""

    def test_roundtrip_host_conversion(self, backend):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        native = backend.from_numpy(x)
        assert backend.owns(native)
        back = backend.to_numpy(native)
        assert isinstance(back, np.ndarray)
        assert np.array_equal(back, x)

    def test_asarray_produces_f64(self, backend):
        native = backend.asarray([[1, 2], [3, 4]])
        assert str(native.dtype) in ("float64", "torch.float64")
        assert_f64(native)  # must not raise

    def test_creation_ops(self, backend):
        xp = backend.xp
        assert tuple(xp.empty((2, 3), dtype=np.float64).shape) == (2, 3)
        z = xp.zeros((4,), dtype=np.float64)
        assert float(backend.to_numpy(z).sum()) == 0.0
        ar = backend.to_numpy(xp.arange(5))
        assert np.array_equal(ar, np.arange(5))

    def test_matmul_with_out(self, backend):
        xp = backend.xp
        rng = np.random.default_rng(7)
        A = backend.from_numpy(rng.standard_normal((4, 5)))
        B = backend.from_numpy(rng.standard_normal((5, 3)))
        out = xp.empty((4, 3), dtype=np.float64)
        xp.matmul(A, B, out=out)
        ref = backend.to_numpy(A) @ backend.to_numpy(B)
        assert np.allclose(backend.to_numpy(out), ref, atol=1e-14)

    def test_batched_matmul(self, backend):
        rng = np.random.default_rng(8)
        A = rng.standard_normal((6, 3, 4))
        B = rng.standard_normal((6, 4, 2))
        got = backend.to_numpy(backend.from_numpy(A) @ backend.from_numpy(B))
        assert np.allclose(got, A @ B, atol=1e-14)

    def test_take_with_out(self, backend):
        xp = backend.xp
        flat = backend.from_numpy(np.arange(20, dtype=np.float64))
        idx = np.array([[3, 1], [0, 19]], dtype=np.int64)
        idx_native = idx if backend.is_host else backend.from_numpy(idx)
        out = xp.empty((2, 2), dtype=np.float64)
        xp.take(flat, idx_native, out=out)
        assert np.array_equal(backend.to_numpy(out), np.arange(20.0)[idx])

    def test_elementwise_out_ops(self, backend):
        xp = backend.xp
        a = backend.from_numpy(np.array([1.0, -4.0, 9.0]))
        assert np.allclose(backend.to_numpy(xp.abs(a)), [1.0, 4.0, 9.0])
        assert np.allclose(
            backend.to_numpy(xp.copysign(xp.abs(a), a)), [1.0, -4.0, 9.0]
        )
        out = xp.empty((3,), dtype=np.float64)
        xp.multiply(a, a, out=out)
        assert np.allclose(backend.to_numpy(out), [1.0, 16.0, 81.0])

    def test_tril_structure_ops(self, backend):
        xp = backend.xp
        A = backend.from_numpy(np.arange(9, dtype=np.float64).reshape(3, 3))
        ref = np.tril(np.arange(9.0).reshape(3, 3), -1)
        assert np.array_equal(backend.to_numpy(xp.tril(A, -1)), ref)
        i, j = xp.tril_indices(3)
        ri, rj = np.tril_indices(3)
        assert np.array_equal(backend.to_numpy(xp.asarray(i)), ri)
        assert np.array_equal(backend.to_numpy(xp.asarray(j)), rj)

    def test_copy_is_independent(self, backend):
        xp = backend.xp
        a = backend.from_numpy(np.zeros(3))
        c = xp.copy(a)
        c[0] = 5.0
        assert float(backend.to_numpy(a)[0]) == 0.0

    def test_solve_triangular(self, backend):
        rng = np.random.default_rng(9)
        L = np.tril(rng.standard_normal((4, 4))) + 4.0 * np.eye(4)
        B = rng.standard_normal((4, 2))
        X = backend.to_numpy(
            backend.solve_triangular(backend.from_numpy(L), backend.from_numpy(B))
        )
        assert np.allclose(L @ X, B, atol=1e-12)

    def test_synchronize_is_callable(self, backend):
        backend.synchronize()  # must not raise


class TestNumpyBackendIsTransparent:
    def test_xp_is_numpy_module(self):
        assert NumpyBackend.xp is np

    def test_from_numpy_is_identity(self):
        x = np.zeros(3)
        assert get_backend("numpy").from_numpy(x) is x


class TestRegistry:
    def test_none_and_default_resolve_to_numpy(self):
        assert get_backend(None).name == "numpy"
        assert get_backend().name == "numpy"

    def test_instance_passthrough(self):
        be = NumpyBackend()
        assert get_backend(be) is be

    def test_unknown_name_raises_valueerror(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("tpu")

    def test_missing_library_raises_backend_unavailable(self):
        avail = available_backends()
        assert "numpy" in avail
        for name in ("cupy", "torch"):
            if name not in avail:
                with pytest.raises(BackendUnavailable):
                    get_backend(name)

    def test_auto_falls_back_to_numpy(self, monkeypatch):
        # Pin every GPU probe to unavailable: auto must land on numpy.
        def unavailable():
            raise BackendUnavailable("pinned off for the test")

        monkeypatch.setitem(
            registry._PROBES, "cupy", (unavailable, unavailable)
        )
        monkeypatch.setitem(
            registry._PROBES, "torch", (unavailable, unavailable)
        )
        assert get_backend("auto").name == "numpy"

    def test_auto_prefers_gpu_probe_order(self, monkeypatch):
        # A fake CuPy probe must win over everything downstream.
        winner = NumpyBackend()
        winner.name = "fake-cupy"
        monkeypatch.setitem(
            registry._PROBES, "cupy", (lambda: winner, lambda: winner)
        )
        assert get_backend("auto") is winner

    def test_auto_torch_requires_cuda(self):
        # On a CUDA-less machine auto never selects torch, even when the
        # library is importable (CPU torch loses to numpy for FP64).
        torch = pytest.importorskip("torch")
        if torch.cuda.is_available():  # pragma: no cover - CPU CI
            pytest.skip("CUDA present; auto-selecting torch is correct here")
        assert get_backend("auto").name == "numpy"


class TestAssertF64:
    def test_accepts_f64_f32_rejects_other_dtypes_and_nonarrays(self):
        assert_f64(np.zeros(2))
        # float32 is the mixed-precision working width — accepted too.
        assert_f64(np.zeros(2, dtype=np.float32))
        with pytest.raises(TypeError, match="float64"):
            assert_f64(np.zeros(2, dtype=np.int64))
        with pytest.raises(TypeError, match="float64"):
            assert_f64([1.0, 2.0])


class TestWorkspacePool:
    def test_reuses_when_trailing_dims_match(self):
        pool = WorkspacePool(get_backend("numpy"))
        a = pool.stack("t", (8, 3, 3))
        b = pool.stack("t", (5, 3, 3))
        assert b.base is a.base or b.base is a  # view of the same buffer
        assert b.shape == (5, 3, 3)

    def test_grows_and_reshapes(self):
        pool = WorkspacePool(get_backend("numpy"))
        pool.stack("t", (4, 2, 2))
        big = pool.stack("t", (9, 2, 2))
        assert big.shape == (9, 2, 2)
        other = pool.stack("t", (4, 5))
        assert other.shape == (4, 5)

    def test_clear_and_nbytes(self):
        pool = WorkspacePool(get_backend("numpy"))
        pool.stack("t", (4, 4))
        assert pool.nbytes == 4 * 4 * 8
        pool.clear()
        assert pool.nbytes == 0


class TestExecutionContext:
    def test_stage_times_and_hook_order(self):
        events: list[StageEvent] = []
        ctx = ExecutionContext(backend="numpy", hooks=[events.append])
        with ctx.stage("demo", n=7):
            pass
        assert [e.phase for e in events] == ["start", "end"]
        assert events[0].stage == "demo" and events[0].meta == {"n": 7}
        assert events[1].duration_s is not None
        assert ctx.stage_times["demo"] >= 0.0

    def test_stage_times_accumulate(self):
        ctx = ExecutionContext(backend="numpy")
        with ctx.stage("s"):
            pass
        first = ctx.stage_times["s"]
        with ctx.stage("s"):
            pass
        assert ctx.stage_times["s"] >= first

    def test_resolve_context_paths(self):
        ctx = ExecutionContext(backend="numpy")
        assert resolve_context(ctx) is ctx
        fresh = resolve_context(None)
        assert fresh.is_numpy and fresh.xp is np
        named = resolve_context("numpy")
        assert named.backend.name == "numpy"

    def test_to_numpy_copy_never_aliases(self):
        ctx = resolve_context(None)
        x = np.arange(4, dtype=np.float64)
        y = ctx.to_numpy_copy(x)
        y[0] = -1.0
        assert x[0] == 0.0


class TestPipelineIntegration:
    """The backend= argument on the public entry points."""

    def _matrix(self, n=48):
        rng = np.random.default_rng(42)
        A = rng.standard_normal((n, n))
        return (A + A.T) / 2.0

    def test_tridiagonalize_numpy_backend_bit_identical(self):
        import repro

        A = self._matrix()
        base = repro.tridiagonalize(A)
        via = repro.tridiagonalize(A, backend="numpy")
        assert np.array_equal(base.d, via.d)
        assert np.array_equal(base.e, via.e)
        assert via.backend == "numpy"

    def test_eigh_records_stage_times(self):
        import repro

        ctx = ExecutionContext(backend="numpy")
        res = repro.eigh(self._matrix(), backend=ctx)
        assert res.residual(self._matrix()) < 1e-12
        for stage in ("tridiagonalize", "tridiag_solver", "back_transform"):
            assert stage in ctx.stage_times

    def test_eigh_on_backend_matches_numpy(self, backend):
        import repro

        A = self._matrix(40)
        ref = np.linalg.eigvalsh(A)
        res = repro.eigh(A, backend=backend)
        assert np.max(np.abs(res.eigenvalues - ref)) < 1e-10
        assert res.residual(A) < 1e-10
