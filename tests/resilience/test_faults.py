"""Deterministic fault injection: the harness fires exactly as scheduled,
and is a bit-exact no-op when disarmed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import (
    FAULT_KINDS,
    FAULT_SITES,
    BackendFault,
    ConvergenceError,
    FaultInjectionError,
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
    active_plan,
    clear_faults,
    faults_from_env,
    injected_faults,
    install_faults,
    maybe_corrupt,
    maybe_raise,
    parse_fault_specs,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_faults()
    yield
    clear_faults()


class TestSpecValidation:
    def test_unknown_site_rejected_at_install_time(self):
        with pytest.raises(FaultInjectionError, match="unknown fault site"):
            FaultSpec("no.such.site", "nan")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            FaultSpec("dc.merge", "explode")

    def test_bad_times_and_probability_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec("dc.merge", "nan", times=0)
        with pytest.raises(FaultInjectionError):
            FaultSpec("dc.merge", "nan", probability=0.0)
        with pytest.raises(FaultInjectionError):
            FaultSpec("dc.merge", "nan", probability=1.5)

    def test_registry_is_closed_and_documented(self):
        assert set(FAULT_SITES) == {
            "secular.newton", "dc.merge", "qr.sweep", "jacobi.sweep",
            "runner.result", "serve.worker", "serve.backend",
            "precision.refine",
        }
        assert FAULT_KINDS == ("nan", "convergence", "crash", "backend")


class TestGrammar:
    def test_full_spec(self):
        (spec,) = parse_fault_specs("serve.worker:crash:2:0.5:7")
        assert (spec.site, spec.kind, spec.times, spec.probability, spec.seed) == (
            "serve.worker", "crash", 2, 0.5, 7
        )

    def test_multiple_specs_and_defaults(self):
        specs = parse_fault_specs("dc.merge:convergence; runner.result:nan:3")
        assert len(specs) == 2
        assert specs[0].times == 1 and specs[0].probability == 1.0
        assert specs[1].times == 3

    def test_malformed_specs_raise(self):
        for text in ("dc.merge", "dc.merge:nan:x", "a:b:c:d:e:f",
                     "dc.merge:convergence:1:nope"):
            with pytest.raises(FaultInjectionError):
                parse_fault_specs(text)

    def test_faults_from_env(self):
        assert faults_from_env({}) is None
        assert faults_from_env({"REPRO_FAULTS": "  "}) is None
        plan = faults_from_env({"REPRO_FAULTS": "qr.sweep:convergence"})
        assert isinstance(plan, FaultPlan)
        assert plan.specs[0].site == "qr.sweep"


class TestFiring:
    def test_no_plan_is_a_noop(self):
        maybe_raise("dc.merge")  # must not raise
        a = np.arange(4.0)
        assert maybe_corrupt("runner.result", a) is a

    def test_kinds_raise_their_exception(self):
        with injected_faults(FaultSpec("dc.merge", "convergence")):
            with pytest.raises(ConvergenceError) as info:
                maybe_raise("dc.merge")
            assert info.value.site == "dc.merge"
        with injected_faults(FaultSpec("serve.backend", "backend")):
            with pytest.raises(BackendFault):
                maybe_raise("serve.backend")
        with injected_faults(FaultSpec("serve.worker", "crash")):
            with pytest.raises(InjectedWorkerCrash):
                maybe_raise("serve.worker")

    def test_budget_limits_firing(self):
        with injected_faults(FaultSpec("qr.sweep", "convergence", times=2)) as plan:
            for _ in range(2):
                with pytest.raises(ConvergenceError):
                    maybe_raise("qr.sweep")
            maybe_raise("qr.sweep")  # budget spent: no-op
            (st,) = plan.stats()
            assert st["fired"] == 2 and st["calls"] == 3

    def test_site_mismatch_does_not_fire(self):
        with injected_faults(FaultSpec("dc.merge", "convergence")):
            maybe_raise("qr.sweep")  # different site

    def test_probability_pattern_is_seeded(self):
        def pattern(seed):
            fired = []
            with injected_faults(
                FaultSpec("dc.merge", "convergence", times=100,
                          probability=0.5, seed=seed)
            ):
                for _ in range(40):
                    try:
                        maybe_raise("dc.merge")
                        fired.append(False)
                    except ConvergenceError:
                        fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        assert any(pattern(7)) and not all(pattern(7))


class TestCorruption:
    def test_nan_lands_at_seeded_index(self):
        a = np.zeros(16)
        with injected_faults(FaultSpec("runner.result", "nan", seed=3)):
            out = maybe_corrupt("runner.result", a)
        assert out is not a  # copy, input untouched
        assert np.isfinite(a).all()
        assert np.isnan(out).sum() == 1

    def test_fortran_ordered_payload_is_corrupted(self):
        # Regression: reshape(-1) on an F-ordered array returns a copy,
        # silently dropping the NaN write; .flat must be used instead.
        a = np.asfortranarray(np.zeros((8, 8)))
        with injected_faults(FaultSpec("runner.result", "nan")):
            out = maybe_corrupt("runner.result", a)
        assert np.isnan(out).sum() == 1

    def test_budget_spent_returns_same_object(self):
        a = np.zeros(4)
        with injected_faults(FaultSpec("runner.result", "nan", times=1)):
            first = maybe_corrupt("runner.result", a)
            second = maybe_corrupt("runner.result", a)
        assert np.isnan(first).sum() == 1
        assert second is a


class TestInstallation:
    def test_injected_faults_restores_previous_plan(self):
        outer = install_faults(FaultSpec("dc.merge", "convergence"))
        with injected_faults(FaultSpec("qr.sweep", "convergence")) as inner:
            assert active_plan() is inner
        assert active_plan() is outer

    def test_clear_faults_disarms(self):
        install_faults(FaultSpec("dc.merge", "convergence"))
        clear_faults()
        assert active_plan() is None
        maybe_raise("dc.merge")
