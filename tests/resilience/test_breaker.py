"""Circuit breaker state machine, with an injectable clock so timing is
deterministic."""

from __future__ import annotations

from repro.resilience import BreakerRegistry, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestCircuitBreaker:
    def make(self, threshold=3, reset=30.0):
        clock = FakeClock()
        return CircuitBreaker("torch", failure_threshold=threshold,
                              reset_timeout_s=reset, clock=clock), clock

    def test_stays_closed_below_threshold(self):
        br, _ = self.make(threshold=3)
        br.record_failure()
        br.record_failure()
        assert br.allow()
        assert br.stats()["state"] == "closed"

    def test_success_resets_consecutive_count(self):
        br, _ = self.make(threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.allow()  # never saw 2 consecutive failures

    def test_threshold_trips_open(self):
        br, _ = self.make(threshold=3)
        for _ in range(3):
            br.record_failure()
        assert not br.allow()
        st = br.stats()
        assert st["state"] == "open" and st["trips"] == 1
        assert st["rejections"] >= 1

    def test_half_open_after_reset_allows_single_probe(self):
        br, clock = self.make(threshold=1, reset=30.0)
        br.record_failure()
        assert not br.allow()
        clock.advance(31.0)
        assert br.stats()["state"] == "half_open"
        assert br.allow()       # the probe
        assert not br.allow()   # only one probe at a time

    def test_probe_success_closes(self):
        br, clock = self.make(threshold=1, reset=30.0)
        br.record_failure()
        clock.advance(31.0)
        assert br.allow()
        br.record_success()
        assert br.stats()["state"] == "closed"
        assert br.allow()

    def test_probe_failure_reopens(self):
        br, clock = self.make(threshold=1, reset=30.0)
        br.record_failure()
        clock.advance(31.0)
        assert br.allow()
        br.record_failure()
        assert br.stats()["state"] == "open"
        assert not br.allow()
        assert br.stats()["trips"] == 2


class TestRegistry:
    def test_one_breaker_per_backend(self):
        reg = BreakerRegistry(failure_threshold=2, reset_timeout_s=10.0)
        assert reg.get("torch") is reg.get("torch")
        assert reg.get("torch") is not reg.get("cupy")

    def test_stats_keyed_by_backend(self):
        clock = FakeClock()
        reg = BreakerRegistry(failure_threshold=1, reset_timeout_s=10.0,
                              clock=clock)
        reg.get("torch").record_failure()
        st = reg.stats()
        assert set(st) == {"torch"}
        assert st["torch"]["state"] == "open"
