"""The typed error hierarchy: one ``except ReproError`` covers every
deliberate failure, and historical base classes keep catching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmptyMatrixError,
    NonFiniteError,
    NonSquareError,
    SymmetryError,
    check_symmetric,
)
from repro.plan import PlanError, plan_evd
from repro.resilience import (
    BackendFault,
    ConvergenceError,
    DeadlineExceeded,
    FallbackExhausted,
    FaultInjectionError,
    InjectedWorkerCrash,
    ReproError,
    VerificationError,
    WorkerCrashError,
)


class TestHierarchy:
    def test_every_typed_error_is_a_repro_error(self):
        for cls in (
            ConvergenceError, VerificationError, WorkerCrashError,
            DeadlineExceeded, BackendFault, FallbackExhausted,
            FaultInjectionError, SymmetryError, NonSquareError,
            NonFiniteError, EmptyMatrixError, PlanError,
        ):
            assert issubclass(cls, ReproError), cls

    def test_convergence_error_keeps_linalgerror_base(self):
        assert issubclass(ConvergenceError, np.linalg.LinAlgError)
        with pytest.raises(np.linalg.LinAlgError):
            raise ConvergenceError("stalled")

    def test_validation_errors_keep_valueerror_base(self):
        for cls in (SymmetryError, NonSquareError, NonFiniteError,
                    EmptyMatrixError, PlanError):
            assert issubclass(cls, ValueError), cls

    def test_backend_fault_keeps_runtimeerror_base(self):
        assert issubclass(BackendFault, RuntimeError)

    def test_injected_worker_crash_escapes_except_exception(self):
        assert issubclass(InjectedWorkerCrash, BaseException)
        assert not issubclass(InjectedWorkerCrash, Exception)
        with pytest.raises(InjectedWorkerCrash):
            try:
                raise InjectedWorkerCrash("serve.worker")
            except Exception:  # pragma: no cover - must NOT swallow it
                pytest.fail("InjectedWorkerCrash was caught by except Exception")


class TestValidationStillTyped:
    def test_check_symmetric_raises_repro_error(self):
        with pytest.raises(ReproError):
            check_symmetric(np.ones((2, 3)))
        with pytest.raises(ValueError):
            check_symmetric(np.ones((2, 3)))

    def test_plan_error_is_repro_error(self):
        with pytest.raises(ReproError):
            plan_evd(64, "no-such-method")


class TestPayloads:
    def test_convergence_error_context(self):
        exc = ConvergenceError(
            "stalled", site="secular.newton", iterations=256,
            indices=np.array([3, 7]),
        )
        assert exc.site == "secular.newton"
        assert exc.iterations == 256
        assert exc.indices == [3, 7]

    def test_convergence_error_defaults(self):
        exc = ConvergenceError("stalled")
        assert exc.site is None and exc.iterations is None
        assert exc.indices is None

    def test_verification_error_carries_report(self):
        report = object()
        exc = VerificationError("bad", report=report)
        assert exc.report is report

    def test_fallback_exhausted_attempts(self):
        exc = FallbackExhausted("all failed", attempts=[1, 2])
        assert exc.attempts == [1, 2]
        assert FallbackExhausted("none").attempts == []

    def test_backend_fault_backend(self):
        assert BackendFault("boom", backend="torch").backend == "torch"
