"""Numerical-health verification: healthy results pass, poisoned results
are caught by the right check."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.backend import ExecutionContext
from repro.resilience import (
    VerificationError,
    default_tolerances,
    verify_evd,
    verify_tridiag,
)


def goe(n: int, seed: int = 0) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


class TestTolerances:
    def test_scale_with_n(self):
        tr32, to32 = default_tolerances(32)
        tr64, to64 = default_tolerances(64)
        assert tr64 == pytest.approx(2 * tr32)
        assert to64 == pytest.approx(2 * to32)

    def test_floor_at_n_one(self):
        assert default_tolerances(0) == default_tolerances(1)


class TestVerifyEVD:
    def test_healthy_pipeline_result_passes(self):
        A = goe(48, seed=1)
        res = repro.eigh(A)
        report = verify_evd(A, res)
        assert report.ok and report.failures == []
        assert report.residual is not None and report.residual < report.tol_residual
        assert report.orth_error is not None and report.orth_error < report.tol_orth
        assert report.raise_if_failed() is report

    def test_eigenvalues_only_checks_trace(self):
        A = goe(40, seed=2)
        res = repro.eigh(A, compute_vectors=False)
        report = verify_evd(A, res)
        assert report.ok
        assert report.residual is None and report.orth_error is None
        assert "trace" in report.checks and report.checks["trace"]

    def test_nan_payload_fails_finite_and_short_circuits(self):
        A = goe(24, seed=3)
        res = repro.eigh(A)
        V = res.eigenvectors.copy()
        V[3, 5] = np.nan
        res.eigenvectors = V
        report = verify_evd(A, res)
        assert not report.ok and report.failures == ["finite"]
        assert report.residual is None  # later checks skipped on NaN
        with pytest.raises(VerificationError) as info:
            report.raise_if_failed()
        assert info.value.report is report

    def test_unordered_eigenvalues_fail(self):
        A = goe(16, seed=4)
        res = repro.eigh(A)
        res.eigenvalues = np.ascontiguousarray(res.eigenvalues[::-1])
        res.eigenvectors = np.ascontiguousarray(res.eigenvectors[:, ::-1])
        report = verify_evd(A, res)
        assert "ordered" in report.failures

    def test_wrong_vectors_fail_residual_and_orthogonality(self):
        A = goe(24, seed=5)
        res = repro.eigh(A)
        V = res.eigenvectors.copy()
        V[:, 0] = V[:, 0] + 0.5
        res.eigenvectors = V
        report = verify_evd(A, res)
        assert not report.ok
        assert "residual" in report.failures
        assert "orthogonality" in report.failures

    def test_wrong_spectrum_fails_trace(self):
        A = goe(24, seed=6)
        res = repro.eigh(A, compute_vectors=False)
        res.eigenvalues = res.eigenvalues + 1.0
        report = verify_evd(A, res)
        assert "trace" in report.failures

    def test_explicit_tolerances_override_defaults(self):
        A = goe(24, seed=7)
        res = repro.eigh(A)
        strict = verify_evd(A, res, tol_residual=1e-30, tol_orth=1e-30)
        assert not strict.ok
        loose = verify_evd(A, res, tol_residual=1.0, tol_orth=1.0)
        assert loose.ok

    def test_emits_stage_event_through_context(self):
        A = goe(16, seed=8)
        res = repro.eigh(A)
        stages = []
        ctx = ExecutionContext(
            backend="numpy",
            hooks=[lambda ev: stages.append((ev.stage, ev.phase))],
        )
        verify_evd(A, res, ctx=ctx)
        assert ("verify_evd", "end") in stages

    def test_to_dict_round_trip_fields(self):
        A = goe(12, seed=9)
        report = verify_evd(A, repro.eigh(A))
        d = report.to_dict()
        assert d["kind"] == "evd" and d["n"] == 12 and d["ok"]
        assert set(d["checks"]) == {
            "finite", "ordered", "trace", "residual", "orthogonality"
        }


class TestVerifyTridiag:
    def test_healthy_factorization_passes(self):
        A = goe(40, seed=10)
        tri = repro.tridiagonalize(A)
        report = verify_tridiag(A, tri)
        assert report.ok, report.failures
        assert report.kind == "tridiag"
        assert report.residual < report.tol_residual

    def test_corrupted_diagonal_fails(self):
        A = goe(32, seed=11)
        tri = repro.tridiagonalize(A)
        d = np.array(tri.d, copy=True)
        d[0] = np.nan
        tri.d = d
        assert verify_tridiag(A, tri).failures == ["finite"]

    def test_wrong_matrix_fails_residual(self):
        A = goe(32, seed=12)
        tri = repro.tridiagonalize(A)
        report = verify_tridiag(goe(32, seed=99), tri)
        assert "residual" in report.failures
