"""Property-style chaos suite: under every injected fault class, every
submitted future resolves — to a verified result or a typed
:class:`~repro.resilience.ReproError` — and with faults disabled the
service is bit-identical to direct execution.

The seed set is shifted by ``REPRO_CHAOS_SEED`` so CI can sweep
different schedules (the ``chaos`` job runs offsets 0, 1, 2) without
editing the suite.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.resilience import (
    FaultSpec,
    ReproError,
    clear_faults,
    injected_faults,
    verify_evd,
)
from repro.serve import ServiceConfig, SolverService

SEED_OFFSET = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
SEEDS = [SEED_OFFSET, SEED_OFFSET + 1, SEED_OFFSET + 2]

#: One spec-set per fault class the harness can inject, each firing
#: probabilistically so the schedule varies across seeds.
FAULT_CLASSES = {
    "nan": lambda seed: [
        FaultSpec("runner.result", "nan", times=4, probability=0.6, seed=seed)
    ],
    "convergence": lambda seed: [
        FaultSpec("dc.merge", "convergence", times=4, probability=0.6, seed=seed),
        FaultSpec("secular.newton", "convergence", times=2, probability=0.4,
                  seed=seed + 1),
    ],
    "crash": lambda seed: [
        FaultSpec("serve.worker", "crash", times=2, probability=0.5, seed=seed)
    ],
    "backend": lambda seed: [
        FaultSpec("serve.backend", "backend", times=3, probability=0.5, seed=seed)
    ],
}


def goe(n: int, seed: int) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


def workload(seed: int, count: int = 10):
    rng = np.random.default_rng(1000 + seed)
    return [goe(int(rng.integers(8, 40)), seed=int(rng.integers(0, 2**31)))
            for _ in range(count)]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_faults()
    yield
    clear_faults()


class TestNoFutureIsEverLost:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("fault_class", sorted(FAULT_CLASSES))
    def test_every_future_resolves_typed_or_verified(self, fault_class, seed):
        matrices = workload(seed)
        specs = FAULT_CLASSES[fault_class](seed)
        config = ServiceConfig(workers=2, cache_entries=0)
        with injected_faults(*specs):
            with SolverService(config) as svc:
                futures = [svc.submit(A, fallback="chain") for A in matrices]
                outcomes = []
                for fut in futures:
                    try:
                        outcomes.append(("ok", fut.result(timeout=60)))
                    except ReproError as exc:
                        outcomes.append(("error", exc))
        assert len(outcomes) == len(matrices)
        # Every success is numerically healthy; every failure is typed.
        for (status, payload), A in zip(outcomes, matrices):
            if status == "ok":
                assert verify_evd(A, payload).ok
            else:
                assert isinstance(payload, ReproError)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chain_recovers_convergence_faults_completely(self, seed):
        # With the fallback chain armed, a D&C convergence fault is not
        # even a failure: every future succeeds via escalation.
        matrices = workload(seed, count=6)
        config = ServiceConfig(workers=2, cache_entries=0)
        with injected_faults(
            FaultSpec("dc.merge", "convergence", times=3, probability=0.7,
                      seed=seed)
        ) as plan:
            with SolverService(config) as svc:
                futures = [svc.submit(A, fallback="chain") for A in matrices]
                for fut, A in zip(futures, matrices):
                    assert verify_evd(A, fut.result(timeout=60)).ok
                stats = svc.stats()
            fired = sum(s["fired"] for s in plan.stats())
        assert stats["metrics"]["resilience"]["escalations"] == fired


class TestFaultsOffBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_service_matches_direct_execution_bit_for_bit(self, seed):
        matrices = workload(seed, count=6)
        direct = [repro.eigh(A) for A in matrices]
        with SolverService(ServiceConfig(workers=2)) as svc:
            futures = [svc.submit(A) for A in matrices]
            served = [f.result(timeout=60) for f in futures]
        for d, s in zip(direct, served):
            np.testing.assert_array_equal(d.eigenvalues, s.eigenvalues)
            np.testing.assert_array_equal(d.eigenvectors, s.eigenvectors)

    @pytest.mark.parametrize("seed", SEEDS[:1])
    def test_spent_fault_budget_restores_bit_identity(self, seed):
        # After a plan's budget is exhausted the instrumented sites are
        # pass-through: results must match the unfaulted bits again.
        A = goe(32, seed=seed)
        baseline = repro.eigh(A)
        with injected_faults(
            FaultSpec("dc.merge", "convergence", times=1, seed=seed)
        ):
            with pytest.raises(ReproError):
                repro.eigh(A)
            after = repro.eigh(A)
        np.testing.assert_array_equal(baseline.eigenvalues, after.eigenvalues)
        np.testing.assert_array_equal(baseline.eigenvectors, after.eigenvectors)
