"""Fallback-chain execution: escalation order, recoverable-vs-fatal
classification, and the ``eigh(fallback="chain")`` entry point."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import SymmetryError
from repro.plan import plan_evd
from repro.resilience import (
    FallbackExhausted,
    FaultSpec,
    VerificationError,
    clear_faults,
    execute_plan_with_fallback,
    injected_faults,
    resolve_fallback_chain,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_faults()
    yield
    clear_faults()


def goe(n: int, seed: int = 0) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


class TestChainResolution:
    def test_proposed_chain_escalates_to_dense_then_qr(self):
        plan = plan_evd(64, "proposed", fallback="chain")
        chain = resolve_fallback_chain(plan)
        assert [p.method for p in chain] == ["proposed", "dense", "proposed"]
        assert [p.solver.kind for p in chain] == ["dc", "dense", "qr"]
        # Every link is directly executable: fallback is cleared.
        assert all(p.fallback == "none" for p in chain)

    def test_duplicate_links_are_dropped(self):
        plan = plan_evd(64, "dense", fallback="chain")
        chain = resolve_fallback_chain(plan)
        assert [p.method for p in chain] == ["dense", "proposed"]

    def test_chain_preserves_vectors_flag_and_backend(self):
        plan = plan_evd(48, "proposed", compute_vectors=False, fallback="chain")
        for link in resolve_fallback_chain(plan):
            assert link.solver.compute_vectors is False
            assert link.backend == "numpy"


class TestExecutor:
    def test_healthy_plan_no_escalation(self):
        A = goe(40, seed=1)
        plan = plan_evd(40, "proposed", fallback="chain")
        outcome = execute_plan_with_fallback(A, plan)
        assert not outcome.escalated
        assert outcome.report is not None and outcome.report.ok
        assert outcome.plan.method == "proposed"
        direct = repro.eigh(A)
        np.testing.assert_array_equal(outcome.result.eigenvalues,
                                      direct.eigenvalues)
        np.testing.assert_array_equal(outcome.result.eigenvectors,
                                      direct.eigenvectors)

    def test_convergence_failure_escalates_to_dense(self):
        A = goe(48, seed=2)
        plan = plan_evd(48, "proposed", fallback="chain")
        with injected_faults(FaultSpec("dc.merge", "convergence", times=1)):
            outcome = execute_plan_with_fallback(A, plan)
        assert outcome.escalated
        assert outcome.plan.method == "dense"
        assert outcome.report is not None and outcome.report.ok
        (rec,) = outcome.escalations
        assert (rec.step, rec.method, rec.error_type) == (
            0, "proposed", "ConvergenceError"
        )
        # The escalated result is the dense path's, bit for bit.
        dense = repro.eigh(A, method="dense")
        np.testing.assert_array_equal(outcome.result.eigenvalues,
                                      dense.eigenvalues)

    def test_nan_corruption_is_caught_and_escalated(self):
        A = goe(32, seed=3)
        plan = plan_evd(32, "proposed", fallback="chain")
        with injected_faults(FaultSpec("runner.result", "nan", times=1)):
            outcome = execute_plan_with_fallback(A, plan)
        assert outcome.escalated
        assert outcome.escalations[0].error_type == "VerificationError"
        assert outcome.report.ok

    def test_plain_plan_failure_raises_without_chain(self):
        A = goe(32, seed=4)
        plan = plan_evd(32, "proposed")  # fallback="none"
        with injected_faults(FaultSpec("runner.result", "nan", times=1)):
            with pytest.raises(VerificationError):
                execute_plan_with_fallback(A, plan)

    def test_exhausted_chain_raises_with_full_trail(self):
        A = goe(32, seed=5)
        plan = plan_evd(32, "proposed", fallback="chain")
        # Corrupt every link's output: all three fail verification.
        with injected_faults(FaultSpec("runner.result", "nan", times=3)):
            with pytest.raises(FallbackExhausted) as info:
                execute_plan_with_fallback(A, plan)
        attempts = info.value.attempts
        assert [a.method for a in attempts] == ["proposed", "dense", "proposed"]
        assert all(a.error_type == "VerificationError" for a in attempts)

    def test_non_recoverable_error_propagates_immediately(self):
        plan = plan_evd(8, "proposed", fallback="chain")
        with pytest.raises(SymmetryError):
            execute_plan_with_fallback(np.triu(np.ones((8, 8))), plan)

    def test_verify_false_still_rejects_non_finite(self):
        A = goe(24, seed=6)
        plan = plan_evd(24, "proposed", fallback="chain")
        with injected_faults(FaultSpec("runner.result", "nan", times=1)):
            outcome = execute_plan_with_fallback(A, plan, verify=False)
        assert outcome.escalated
        assert outcome.report is None


class TestEighEntryPoint:
    def test_eigh_fallback_chain_survives_dc_failure(self):
        A = goe(40, seed=7)
        with injected_faults(FaultSpec("dc.merge", "convergence", times=1)):
            res = repro.eigh(A, fallback="chain")
        dense = repro.eigh(A, method="dense")
        np.testing.assert_array_equal(res.eigenvalues, dense.eigenvalues)

    def test_eigh_fallback_chain_is_bit_identical_when_healthy(self):
        A = goe(40, seed=8)
        chained = repro.eigh(A, fallback="chain")
        plain = repro.eigh(A)
        np.testing.assert_array_equal(chained.eigenvalues, plain.eigenvalues)
        np.testing.assert_array_equal(chained.eigenvectors, plain.eigenvectors)

    def test_eigh_rejects_unknown_fallback(self):
        from repro.plan import PlanError

        with pytest.raises(PlanError):
            repro.eigh(goe(8), fallback="retry-forever")

    def test_plan_fallback_field_excluded_from_cache_token(self):
        plain = plan_evd(64, "proposed")
        chained = plan_evd(64, "proposed", fallback="chain")
        assert plain.cache_token() == chained.cache_token()
        assert chained.to_dict()["fallback"] == "chain"
