"""Integration tests: the complete tridiagonalization + EVD pipelines on
structured workloads, cross-checked against NumPy/SciPy and each other."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import eigh_tridiagonal

import repro
from repro.band.storage import dense_from_band
from repro.bench.workloads import (
    clustered_spectrum,
    geometric_spectrum,
    goe,
    symmetric_with_spectrum,
    uniform_spectrum,
)


class TestTridiagonalizationPipelines:
    @pytest.mark.parametrize("method", ["dbbr", "sbr", "direct"])
    @pytest.mark.parametrize("n", [17, 64, 100])
    def test_all_methods_all_sizes(self, method, n):
        A = goe(n, seed=n)
        res = repro.tridiagonalize(A, method=method, bandwidth=4, second_block=12)
        T = dense_from_band(res.d, res.e)
        Q = res.q()
        assert np.linalg.norm(Q @ T @ Q.T - A) / np.linalg.norm(A) < 1e-12
        assert np.linalg.norm(Q.T @ Q - np.eye(n)) < 1e-11

    def test_methods_agree_on_spectrum(self):
        A = goe(80, seed=5)
        spectra = []
        for method in ["dbbr", "sbr", "direct"]:
            res = repro.tridiagonalize(A, method=method, bandwidth=5, second_block=10)
            spectra.append(eigh_tridiagonal(res.d, res.e, eigvals_only=True))
        assert np.max(np.abs(spectra[0] - spectra[1])) < 1e-11
        assert np.max(np.abs(spectra[0] - spectra[2])) < 1e-11

    def test_two_stage_on_already_banded_input(self):
        from repro.bench.workloads import random_band

        A = random_band(60, 3, seed=1)
        res = repro.tridiagonalize(A, method="dbbr", bandwidth=3, second_block=9)
        T = dense_from_band(res.d, res.e)
        assert np.max(
            np.abs(np.linalg.eigvalsh(T) - np.linalg.eigvalsh(A))
        ) < 1e-11


class TestEVDWorkloads:
    def test_known_uniform_spectrum(self):
        lam = uniform_spectrum(72, -2.0, 7.0)
        A = symmetric_with_spectrum(lam, seed=1)
        res = repro.eigh(A, bandwidth=4, second_block=8)
        assert np.max(np.abs(res.eigenvalues - lam)) < 5e-12
        assert res.residual(A) < 1e-12

    def test_clustered_spectrum_deflation_path(self):
        lam = clustered_spectrum(60, clusters=3, spread=1e-11, seed=2)
        A = symmetric_with_spectrum(lam, seed=3)
        res = repro.eigh(A, bandwidth=3, second_block=9)
        assert np.max(np.abs(res.eigenvalues - np.sort(lam))) < 1e-11
        V = res.eigenvectors
        assert np.linalg.norm(V.T @ V - np.eye(60)) < 1e-10

    def test_geometric_spectrum_wide_range(self):
        lam = geometric_spectrum(50, cond=1e10)
        A = symmetric_with_spectrum(lam, seed=4)
        res = repro.eigh(A, bandwidth=4, second_block=8)
        # Large eigenvalues to full relative accuracy; small ones to
        # absolute accuracy ~ eps * ||A||.
        err = np.abs(res.eigenvalues - lam)
        assert np.max(err) < 1e-13 * np.max(lam)

    def test_negative_definite(self):
        lam = -np.abs(uniform_spectrum(40, 1.0, 9.0))
        A = symmetric_with_spectrum(lam, seed=5)
        res = repro.eigh(A, bandwidth=3, second_block=6)
        assert np.all(res.eigenvalues < 0)
        assert res.residual(A) < 1e-12

    @pytest.mark.parametrize("solver", ["dc", "qr", "bisect"])
    def test_three_solvers_one_matrix(self, solver):
        A = goe(56, seed=6)
        res = repro.eigh(A, solver=solver, bandwidth=4, second_block=8)
        assert np.max(np.abs(res.eigenvalues - np.linalg.eigvalsh(A))) < 1e-10


class TestCrossSolverConsistency:
    def test_tridiagonal_solvers_agree(self, rng):
        # Our three fully independent tridiagonal eigensolvers must agree
        # with each other — a correctness oracle with no SciPy involved.
        n = 120
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        lam_dc, _ = repro.dc_eigh(d, e, compute_vectors=False)
        lam_qr, _ = repro.tridiag_qr_eigh(d, e, compute_vectors=False)
        lam_bi, _ = repro.eigh_bisect(d, e, compute_vectors=False)
        scale = max(np.max(np.abs(lam_dc)), 1.0)
        assert np.max(np.abs(lam_dc - lam_qr)) < 1e-12 * scale
        assert np.max(np.abs(lam_dc - lam_bi)) < 1e-11 * scale

    def test_trace_and_frobenius_invariants(self):
        A = goe(64, seed=7)
        res = repro.eigh(A, bandwidth=4, second_block=8)
        assert np.sum(res.eigenvalues) == pytest.approx(np.trace(A), abs=1e-9)
        assert np.sum(res.eigenvalues**2) == pytest.approx(
            np.linalg.norm(A) ** 2, rel=1e-12
        )

    def test_eigenvalues_match_numpy_across_methods(self):
        A = goe(48, seed=8)
        lam_np = np.linalg.eigvalsh(A)
        for method in ["proposed", "magma", "cusolver"]:
            res = repro.eigh(A, method=method, compute_vectors=False,
                             bandwidth=4, second_block=8)
            assert np.max(np.abs(res.eigenvalues - lam_np)) < 1e-11
