"""Integration tests asserting the paper's qualitative claims end to end
(numerics where possible, calibrated models for device-scale claims)."""

from __future__ import annotations

import numpy as np

import repro
from repro.bench.workloads import goe
from repro.gpusim import CPU_8_CORE, H100, RTX4090
from repro.gpusim.kernels import bc_task_time_gpu
from repro.gpusim.executor import simulate_bc_pipeline
from repro.models import (
    bc_time_model,
    cusolver_syevd_times,
    cusolver_sytrd_time,
    magma_evd_times,
    magma_sb2st_time,
    magma_tridiag_times,
    proposed_evd_times,
    proposed_tridiag_times,
)
from repro.models import flops as F


class TestAbstractClaims:
    """The abstract's headline numbers, reproduced from the models."""

    def test_9_3x_vs_cusolver(self):
        n = 49152
        speedup = cusolver_sytrd_time(H100, n) / proposed_tridiag_times(
            H100, n, 32, 1024
        ).total
        assert speedup > 6.0  # paper: up to 9.3x

    def test_5_2x_vs_magma(self):
        n = 49152
        speedup = (
            magma_tridiag_times(H100, n, 64).total
            / proposed_tridiag_times(H100, n, 32, 1024).total
        )
        assert speedup > 3.5  # paper: up to 5.2x

    def test_19_6_tflops(self):
        n = 49152
        tf = F.tridiag_flops(n) / proposed_tridiag_times(H100, n, 32, 1024).total / 1e12
        assert 14.0 < tf < 26.0


class TestSection31Claims:
    def test_tridiag_dominates_cusolver_evd(self):
        st = cusolver_syevd_times(H100, 49152, compute_vectors=False)
        assert st.fraction("sytrd") > 0.9  # paper: 97.7%

    def test_magma_beats_cusolver_overall_despite_slower_dc(self):
        n = 49152
        assert (
            magma_evd_times(H100, n, False).total
            < cusolver_syevd_times(H100, n, False).total
        )

    def test_bc_half_of_magma_tridiag(self):
        st = magma_tridiag_times(H100, 49152, 64)
        assert 0.35 < st.fraction("sb2st") < 0.65  # paper: 48%


class TestSection33PipelineClaims:
    def test_serial_gpu_bc_slower_than_magma(self):
        n, b = 65536, 32
        magma = magma_sb2st_time(CPU_8_CORE, n, b)
        assert bc_time_model(n, b, 1) > magma

    def test_32_sweeps_beat_magma(self):
        n, b = 65536, 32
        magma = magma_sb2st_time(CPU_8_CORE, n, b)
        assert bc_time_model(n, b, 32) < magma

    def test_sm_count_supports_enough_sweeps(self):
        # "even if each SM processes only one sweep" the GPU wins.
        assert H100.sm_count > 32


class TestSection62Claims:
    def test_eigvec_back_transform_dominates(self):
        st = proposed_evd_times(H100, 49152, True)
        total_back = st.stages["bc_back"] + st.stages["sbr_back"]
        assert total_back / st.total > 0.5

    def test_4090_bc_parallelism_beats_compute(self):
        # "BC performance is more dependent on parallelism than on
        # computing capacity": the 4090 (tiny FP64) still crushes the CPU.
        dt, S = bc_task_time_gpu(RTX4090, 32768, 32, optimized=True)
        gpu = simulate_bc_pipeline(32768, 32, S, dt).total_time_s
        cpu = magma_sb2st_time(CPU_8_CORE, 32768, 64)
        assert gpu < cpu / 3


class TestNumericalEquivalenceOfProposedPipeline:
    """The proposed pipeline's *numerics* are exact — GPU scheduling is a
    pure reordering (the property the spin-lock protocol guarantees)."""

    def test_pipelined_equals_sequential_at_scale(self):
        A = goe(150, seed=9)
        # The per-task pipelined driver is a pure reordering of the
        # sequential chase, hence bit-identical.
        r_par = repro.tridiagonalize(
            A, method="dbbr", bandwidth=6, second_block=24,
            pipelined=True, bc_driver="pipelined",
        )
        r_seq = repro.tridiagonalize(
            A, method="dbbr", bandwidth=6, second_block=24, pipelined=False
        )
        assert np.array_equal(r_par.d, r_seq.d)
        assert np.array_equal(r_par.e, r_seq.e)
        # The default wavefront-batched engine changes the summation order
        # inside each round; forward error grows mildly with n, so compare
        # to roundoff scaled a couple of orders above machine epsilon.
        r_wf = repro.tridiagonalize(
            A, method="dbbr", bandwidth=6, second_block=24, pipelined=True
        )
        scale = np.linalg.norm(A)
        assert np.max(np.abs(r_wf.d - r_seq.d)) < 1e-10 * scale
        assert np.max(np.abs(r_wf.e - r_seq.e)) < 1e-10 * scale

    def test_full_proposed_evd_machine_precision(self):
        A = goe(120, seed=10)
        res = repro.eigh(A, method="proposed", bandwidth=6, second_block=12)
        assert res.residual(A) < 5e-13
        V = res.eigenvectors
        assert np.linalg.norm(V.T @ V - np.eye(120)) < 1e-11
