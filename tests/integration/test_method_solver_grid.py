"""The full configuration grid: every tridiagonalization method x every
tridiagonal solver x vectors on/off, one matrix, machine precision."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bench.workloads import goe

N = 64
A = goe(N, seed=123)
LAM_REF = np.linalg.eigvalsh(A)

METHODS = ["dbbr", "sbr", "tile", "direct"]
SOLVERS = ["dc", "qr", "bisect"]


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("solver", SOLVERS)
def test_grid_with_vectors(method, solver):
    res = repro.eigh(A, method=method, solver=solver,
                     bandwidth=4, second_block=8)
    assert np.max(np.abs(res.eigenvalues - LAM_REF)) < 1e-10
    assert res.residual(A) < 1e-10
    V = res.eigenvectors
    assert np.linalg.norm(V.T @ V - np.eye(N)) < 1e-9


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("solver", SOLVERS)
def test_grid_eigenvalues_only(method, solver):
    res = repro.eigh(A, method=method, solver=solver, compute_vectors=False,
                     bandwidth=4, second_block=8)
    assert res.eigenvectors is None
    assert np.max(np.abs(res.eigenvalues - LAM_REF)) < 1e-10


@pytest.mark.parametrize("method", METHODS)
def test_grid_partial_spectrum(method):
    res = repro.eigh_partial(A, (10, 19), method=method,
                             bandwidth=4, second_block=8)
    assert np.max(np.abs(res.eigenvalues - LAM_REF[10:20])) < 1e-9
    V = res.eigenvectors
    assert np.linalg.norm(A @ V - V * res.eigenvalues) / np.linalg.norm(A) < 1e-8
