"""Smoke tests: every example script runs end-to-end (small sizes)."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


def test_quickstart_runs(capsys):
    mod = _load("quickstart")
    mod.main(120)
    out = capsys.readouterr().out
    assert "proposed" in out and "checks out" in out


def test_walkthrough_runs(capsys):
    mod = _load("two_stage_walkthrough")
    mod.main()
    out = capsys.readouterr().out
    assert "Stage 4" in out and "Pipeline complete" in out


def test_spectra_study_runs(capsys):
    mod = _load("spectra_study")
    mod.main()
    out = capsys.readouterr().out
    assert "uniform" in out and "machine precision" in out


@pytest.mark.slow
def test_gpu_visualization_runs(capsys):
    mod = _load("gpu_pipeline_visualization")
    mod.main()
    out = capsys.readouterr().out
    assert "Figure 5" in out and "Figure 12" in out


def test_partial_spectrum_example_runs(capsys):
    mod = _load("partial_spectrum_and_reuse")
    mod.main()
    out = capsys.readouterr().out
    assert "eigh_partial" in out and "persisted" in out and "blocked" in out


def test_pca_example_runs(capsys):
    mod = _load("pca_application")
    mod.main()
    out = capsys.readouterr().out
    assert "kernel PCA" in out and "residual" in out


def test_beyond_symmetric_example_runs(capsys):
    mod = _load("beyond_symmetric")
    mod.main()
    out = capsys.readouterr().out
    assert "Hermitian" in out and "Generalized" in out and "SVD" in out
