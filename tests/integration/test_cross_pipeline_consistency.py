"""Cross-pipeline consistency: independent decompositions of the same
matrix must agree on shared invariants."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bench.workloads import goe, symmetric_with_spectrum
from repro.core.extensions import eigh_generalized, eigh_hermitian
from repro.core.svd import svd
from repro.eig.jacobi import jacobi_eigh


class TestSvdVsEvd:
    def test_spd_singular_values_are_eigenvalues(self):
        lam = np.linspace(0.5, 9.0, 40)
        A = symmetric_with_spectrum(lam, seed=1)
        s, _, _ = svd(A)
        res = repro.eigh(A, compute_vectors=False)
        assert np.max(np.abs(np.sort(s) - res.eigenvalues)) < 1e-10

    def test_indefinite_singular_values_are_abs_eigenvalues(self):
        A = goe(36, seed=2)
        s, _, _ = svd(A)
        res = repro.eigh(A, compute_vectors=False)
        assert np.max(np.abs(s - np.sort(np.abs(res.eigenvalues))[::-1])) < 1e-10

    def test_gram_matrix_consistency(self):
        # eig(A^T A) == svd(A)^2 — two fully different pipelines.
        rng = np.random.default_rng(3)
        A = rng.standard_normal((30, 18))
        s, _, _ = svd(A)
        res = repro.eigh(A.T @ A, compute_vectors=False, bandwidth=3,
                         second_block=6)
        lam = np.sort(np.maximum(res.eigenvalues, 0.0))[::-1]
        assert np.max(np.abs(np.sqrt(lam) - s)) < 1e-9


class TestHermitianVsReal:
    def test_real_matrix_through_both_paths(self):
        A = goe(28, seed=4)
        res_real = repro.eigh(A, compute_vectors=False)
        lam_h, _ = eigh_hermitian(A.astype(complex), compute_vectors=False)
        assert np.max(np.abs(res_real.eigenvalues - lam_h)) < 1e-10

    def test_jacobi_agrees_with_pipeline(self):
        A = goe(32, seed=5)
        lam_j, _ = jacobi_eigh(A, compute_vectors=False)
        res = repro.eigh(A, compute_vectors=False, bandwidth=4, second_block=8)
        assert np.max(np.abs(lam_j - res.eigenvalues)) < 1e-10


class TestGeneralizedVsStandard:
    def test_spd_b_scaling_consistency(self):
        # With B = c*I the generalized eigenvalues are lam(A)/c.
        A = goe(24, seed=6)
        c = 4.0
        lam_gen, _ = eigh_generalized(A, c * np.eye(24), compute_vectors=False)
        res = repro.eigh(A, compute_vectors=False)
        assert np.max(np.abs(lam_gen - res.eigenvalues / c)) < 1e-10

    def test_similarity_invariance(self):
        # eig(A, B) is invariant under congruence by any nonsingular M:
        # (M^T A M) x = lam (M^T B M) x has the same eigenvalues.
        rng = np.random.default_rng(7)
        n = 20
        A = goe(n, seed=8)
        Mb = rng.standard_normal((n, n))
        B = Mb @ Mb.T + n * np.eye(n)
        M = rng.standard_normal((n, n)) + n * np.eye(n)
        lam1, _ = eigh_generalized(A, B, compute_vectors=False)
        lam2, _ = eigh_generalized(M.T @ A @ M, M.T @ B @ M,
                                   compute_vectors=False)
        scale = max(np.max(np.abs(lam1)), 1.0)
        assert np.max(np.abs(lam1 - lam2)) < 1e-8 * scale


class TestPartialVsFull:
    @pytest.mark.parametrize("window", [(0, 4), (20, 29), (35, 39)])
    def test_partial_matches_full(self, window):
        A = goe(40, seed=9)
        full = repro.eigh(A, bandwidth=4, second_block=8)
        part = repro.eigh_partial(A, window, bandwidth=4, second_block=8)
        lo, hi = window
        assert np.max(np.abs(part.eigenvalues - full.eigenvalues[lo : hi + 1])) < 1e-9
        # Vectors agree up to sign.
        for j in range(hi - lo + 1):
            dot = abs(part.eigenvectors[:, j] @ full.eigenvectors[:, lo + j])
            assert dot > 1.0 - 1e-7
