"""The measurement protocol: seeding, trimming, and the CV noise guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.plan import plan_evd
from repro.tune import MeasureProtocol, measure_callable, measure_plan, workload_matrix


class FakeClock:
    """Deterministic clock: each call returns the next scripted instant."""

    def __init__(self, durations):
        self._times = [0.0]
        for d in durations:
            self._times.append(self._times[-1] + d)
            self._times.append(self._times[-1])  # gap between samples is free
        self._i = 0

    def __call__(self) -> float:
        t = self._times[min(self._i, len(self._times) - 1)]
        self._i += 1
        return t


def _measure_with(durations, protocol):
    return measure_callable(lambda: None, protocol, clock=FakeClock(durations))


def test_trimmed_mean_drops_the_outlier():
    proto = MeasureProtocol(warmup=0, reps=5, trim=1, cv_threshold=10.0)
    m = _measure_with([1.0, 1.0, 1.0, 1.0, 100.0], proto)
    assert m.time_s == pytest.approx(1.0)
    assert m.best_s == pytest.approx(1.0)
    assert len(m.samples) == 5
    assert not m.noisy


def test_quiet_measurement_single_attempt():
    proto = MeasureProtocol(warmup=0, reps=3, trim=0, cv_threshold=0.2, max_remeasure=3)
    m = _measure_with([1.0, 1.0, 1.0], proto)
    assert m.attempts == 1
    assert m.cv == pytest.approx(0.0)


def test_cv_guard_triggers_remeasurement():
    # Attempt 1 is wildly noisy, attempt 2 is clean: the guard must
    # re-measure and keep the clean batch.
    proto = MeasureProtocol(warmup=0, reps=3, trim=0, cv_threshold=0.1, max_remeasure=2)
    noisy_then_clean = [1.0, 5.0, 9.0] + [2.0, 2.0, 2.0]
    m = _measure_with(noisy_then_clean, proto)
    assert m.attempts == 2
    assert m.time_s == pytest.approx(2.0)
    assert not m.noisy


def test_unquietable_measurement_flagged_noisy():
    proto = MeasureProtocol(warmup=0, reps=2, trim=0, cv_threshold=0.01, max_remeasure=1)
    m = _measure_with([1.0, 3.0, 1.0, 3.0], proto)
    assert m.attempts == 2  # initial + max_remeasure
    assert m.noisy


def test_warmup_runs_not_sampled():
    calls = []
    proto = MeasureProtocol(warmup=2, reps=3, trim=0, cv_threshold=10.0)
    measure_callable(lambda: calls.append(1), proto, clock=FakeClock([1.0] * 3))
    assert len(calls) == 2 + 3


def test_protocol_validation():
    with pytest.raises(ValueError, match="reps"):
        MeasureProtocol(reps=0)
    with pytest.raises(ValueError, match="warmup"):
        MeasureProtocol(warmup=-1)
    with pytest.raises(ValueError, match="workload"):
        MeasureProtocol(workload="adversarial")


def test_workload_is_seed_deterministic_and_symmetric():
    a = workload_matrix(32, MeasureProtocol(seed=7))
    b = workload_matrix(32, MeasureProtocol(seed=7))
    c = workload_matrix(32, MeasureProtocol(seed=8))
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert np.array_equal(a, a.T)
    u = workload_matrix(32, MeasureProtocol(seed=7, workload="uniform"))
    assert np.array_equal(u, u.T)


def test_measure_plan_times_a_real_solve():
    plan = plan_evd(24, "proposed")
    proto = MeasureProtocol(warmup=1, reps=2, trim=0, cv_threshold=10.0, seed=3)
    m = measure_plan(plan, proto)
    assert m.time_s > 0.0
    assert len(m.samples) == 2
