"""Search strategies, replayed over recorded (synthetic) measurements.

A deterministic ``measure_fn`` stands in for wall-clock timing: each
plan's "time" is a fixed function of its knobs with a known global
minimum, so the tests can assert what the search *finds*, not just that
it runs.
"""

from __future__ import annotations

import pytest

from repro.plan import plan_evd
from repro.tune import (
    Measurement,
    SearchResult,
    TuningStore,
    default_candidate,
    model_candidate,
    search,
    search_serve_threshold,
)
from repro.tune.space import candidates


def synthetic_time(plan) -> float:
    """Known landscape: fastest at bandwidth=16, second_block=64."""
    t = plan.tridiag
    if t is None:  # dense tier
        return 0.5
    if t.method == "direct":
        return 0.3 + abs(t.direct_block - 32) * 1e-3
    time = 0.1 + abs(t.bandwidth - 16) * 1e-2
    if t.method == "dbbr":
        time += abs(t.second_block - 64) * 1e-4
    return time


class CountingMeasure:
    def __init__(self, fn=synthetic_time):
        self.fn = fn
        self.calls = 0

    def __call__(self, plan) -> Measurement:
        self.calls += 1
        t = self.fn(plan)
        return Measurement(time_s=t, best_s=t, cv=0.01, samples=(t,))


class TestExhaustive:
    def test_small_space_is_searched_exhaustively(self):
        meas = CountingMeasure()
        result = search(64, "dbbr", budget=100, measure_fn=meas)
        assert result.strategy == "exhaustive"
        assert result.pruned == 0
        assert len(result.trials) == result.space_size
        best = result.best.candidate.kwargs
        assert (best["bandwidth"], best["second_block"]) == (16, 64)

    def test_memoization_no_duplicate_measurements(self):
        meas = CountingMeasure()
        result = search(64, "dbbr", budget=100, measure_fn=meas)
        # Anchors overlap the pool; the memo must dedupe them.
        assert meas.calls == len(result.trials)

    def test_trials_sorted_fastest_first(self):
        result = search(64, "dbbr", budget=100, measure_fn=CountingMeasure())
        times = [t.measurement.time_s for t in result.trials]
        assert times == sorted(times)


class TestPrunedDescent:
    def test_large_space_uses_descent_within_budget(self):
        space = len(candidates(1024, "dbbr"))
        budget = space // 2
        assert budget >= 4
        meas = CountingMeasure()
        result = search(1024, "dbbr", budget=budget, measure_fn=meas)
        assert result.strategy == "model-pruned-descent"
        assert meas.calls <= budget
        assert result.pruned >= space - budget

    def test_descent_still_finds_the_global_minimum(self):
        # The landscape is separable in the knobs, so coordinate
        # descent must land on the true optimum despite pruning.
        result = search(1024, "dbbr", budget=12, measure_fn=CountingMeasure())
        best = result.best_pipeline.candidate.kwargs
        assert (best["bandwidth"], best["second_block"]) == (16, 64)

    def test_anchors_always_measured(self):
        result = search(1024, "dbbr", budget=8, measure_fn=CountingMeasure())
        tokens = {t.cache_token for t in result.trials}
        for anchor in (
            default_candidate(1024, "dbbr"),
            model_candidate(1024, "dbbr"),
        ):
            plan = plan_evd(1024, "dbbr", **anchor.kwargs)
            assert plan.cache_token() in tokens

    def test_best_no_worse_than_model_choice(self):
        result = search(1024, "dbbr", budget=8, measure_fn=CountingMeasure())
        model = model_candidate(1024, "dbbr")
        model_plan = plan_evd(1024, "dbbr", **model.kwargs)
        model_trial = next(
            t for t in result.trials if t.cache_token == model_plan.cache_token()
        )
        assert result.best_pipeline.measurement.time_s <= model_trial.measurement.time_s


class TestDeterminism:
    @pytest.mark.parametrize("n,budget", [(64, 100), (1024, 10)])
    def test_same_measurements_same_outcome(self, n, budget):
        def run() -> SearchResult:
            return search(n, "dbbr", budget=budget, measure_fn=CountingMeasure())

        a, b = run(), run()
        assert a.best.cache_token == b.best.cache_token
        assert [t.candidate.label for t in a.trials] == [
            t.candidate.label for t in b.trials
        ]
        assert a.to_dict() == b.to_dict()

    def test_ties_break_on_label(self):
        flat = CountingMeasure(fn=lambda plan: 1.0)
        result = search(64, "dbbr", budget=100, measure_fn=flat)
        labels = [t.candidate.label for t in result.trials]
        assert labels == sorted(labels)


class TestStoreIntegration:
    def test_winner_recorded_under_store_key(self, isolated_tune_db):
        store = TuningStore.load()
        result = search(
            64, "proposed", budget=100, measure_fn=CountingMeasure(), store=store
        )
        assert result.store_key is not None
        rec = store.get(result.store_key)
        assert rec is not None
        assert rec.knobs == result.best_pipeline.candidate.kwargs
        assert rec.source == "measured"
        assert not isolated_tune_db.exists(), "save=False must not touch disk"

    def test_save_persists_to_disk(self, isolated_tune_db):
        store = TuningStore.load()
        search(
            64, "dbbr", budget=100, measure_fn=CountingMeasure(), store=store, save=True
        )
        assert isolated_tune_db.exists()
        assert len(TuningStore.load()) == 1

    def test_dense_winner_never_stored(self):
        # Dense wins overall, but auto-tuned plans cannot switch method,
        # so the stored record must be the best *pipeline* candidate.
        fast_dense = CountingMeasure(
            fn=lambda plan: 0.01 if plan.tridiag is None else synthetic_time(plan)
        )
        store = TuningStore()
        result = search(
            64, "dbbr", budget=100, include_dense=True,
            measure_fn=fast_dense, store=store,
        )
        assert result.best.candidate.method == "dense"
        assert result.best_pipeline.candidate.method == "dbbr"
        assert store.get(result.store_key).method == "dbbr"


class TestServeThreshold:
    def test_crossover_found(self):
        # Dense wins for n <= 64, pipeline wins beyond.
        def fn(plan) -> Measurement:
            dense = plan.tridiag is None
            t = (0.1 if dense else 0.2) if plan.n <= 64 else (0.2 if dense else 0.1)
            return Measurement(time_s=t, best_s=t, cv=0.0)

        store = TuningStore()
        result = search_serve_threshold(measure_fn=fn, store=store)
        assert result.threshold == 64
        rec = store.get(result.store_key)
        assert rec.method == "serve"
        assert rec.knobs == {"dense_fastpath_max_n": 64}
        assert result.store_key.startswith("1|serve|numpy|")

    def test_pipeline_always_wins_gives_zero_threshold(self):
        def fn(plan) -> Measurement:
            t = 0.2 if plan.tridiag is None else 0.1
            return Measurement(time_s=t, best_s=t, cv=0.0)

        assert search_serve_threshold(measure_fn=fn).threshold == 0
