"""Serve-layer adoption of tuned thresholds via ``tuned_service_config``."""

from __future__ import annotations

import numpy as np

from repro.serve import ServiceConfig, SolverService
from repro.tune import TuneRecord, TuningStore, tuned_service_config


def _serve_record(**knobs) -> TuneRecord:
    return TuneRecord(method="serve", knobs=knobs, time_s=0.0, n=1)


def test_no_record_returns_config_unchanged(isolated_tune_db):
    base = ServiceConfig(max_batch=7)
    assert tuned_service_config(base) is base


def test_defaults_when_no_config_given(isolated_tune_db):
    assert tuned_service_config() == ServiceConfig()


def test_threshold_adopted_from_store(isolated_tune_db):
    store = TuningStore.load()
    store.put(1, "serve", "numpy", _serve_record(dense_fastpath_max_n=48))
    store.save()
    tuned = tuned_service_config()
    assert tuned.dense_fastpath_max_n == 48


def test_zero_threshold_maps_to_never_promote(isolated_tune_db):
    store = TuningStore()
    store.put(1, "serve", "numpy", _serve_record(dense_fastpath_max_n=0))
    tuned = tuned_service_config(store=store)
    assert tuned.dense_fastpath_max_n is None


def test_only_recognized_knobs_applied(isolated_tune_db):
    store = TuningStore()
    store.put(
        1, "serve", "numpy",
        _serve_record(max_batch=32, bogus_knob=99, dense_fastpath_max_n=16),
    )
    base = ServiceConfig()
    tuned = tuned_service_config(base, store=store)
    assert tuned.max_batch == 32
    assert tuned.dense_fastpath_max_n == 16
    assert not hasattr(tuned, "bogus_knob")
    # Untouched fields carry over.
    assert tuned.backend == base.backend


def test_record_for_other_backend_ignored(isolated_tune_db):
    store = TuningStore()
    store.put(1, "serve", "torch", _serve_record(max_batch=64))
    base = ServiceConfig(backend="numpy")
    assert tuned_service_config(base, store=store) is base


def test_service_runs_with_tuned_config(isolated_tune_db):
    store = TuningStore()
    store.put(1, "serve", "numpy", _serve_record(dense_fastpath_max_n=32))
    config = tuned_service_config(store=store)
    rng = np.random.default_rng(0)
    A = rng.standard_normal((16, 16))
    A = (A + A.T) / 2
    with SolverService(config) as svc:
        res = svc.submit(A).result(timeout=30)
    assert np.allclose(np.sort(res.eigenvalues), np.linalg.eigvalsh(A))
