"""Isolation fixtures for the autotuning suite: every test gets a
private tuning-database path (no test may read the developer's real
``~/.cache`` DB or leave one behind) and fresh hit/miss counters."""

from __future__ import annotations

import pathlib

import pytest

from repro.tune import reset_tune_stats
from repro.tune.store import ENV_DB_PATH


@pytest.fixture(autouse=True)
def isolated_tune_db(tmp_path, monkeypatch) -> pathlib.Path:
    """Point ``$REPRO_TUNE_DB`` at a per-test path (not yet created)."""
    db = tmp_path / "tune_db.json"
    monkeypatch.setenv(ENV_DB_PATH, str(db))
    reset_tune_stats()
    yield db
    reset_tune_stats()
