"""The tuning space: every candidate must be a valid, distinct plan."""

from __future__ import annotations

import pytest

from repro.plan import PlanError, plan_evd
from repro.tune import (
    Candidate,
    candidate_plan,
    candidates,
    default_candidate,
    evd_candidates,
    resolve_method,
    serve_threshold_candidates,
)
from repro.tune.space import DENSE_CROSSOVER_MAX_N


@pytest.mark.parametrize("n", [8, 16, 64, 300, 1024])
@pytest.mark.parametrize("method", ["dbbr", "sbr", "tile", "direct"])
def test_every_candidate_is_a_valid_plan(n, method):
    cands = candidates(n, method)
    assert cands, f"empty space for {method} at n={n}"
    for cand in cands:
        plan = candidate_plan(n, cand)  # must not raise
        assert plan.n == n


@pytest.mark.parametrize("n", [8, 64, 300, 1024])
def test_dbbr_candidates_respect_plan_constraints(n):
    for cand in candidates(n, "dbbr"):
        knobs = cand.kwargs
        b, k = knobs["bandwidth"], knobs["second_block"]
        assert b <= max(n - 2, 1)
        assert k % b == 0, "the b | k rule must hold by construction"
        assert k <= n
        # The planner must resolve exactly what the space generated —
        # no silent re-clamping between search time and execution time.
        plan = candidate_plan(n, cand)
        assert plan.tridiag is not None
        assert (plan.tridiag.bandwidth, plan.tridiag.second_block) == (b, k)


@pytest.mark.parametrize("n", [8, 64, 1024])
@pytest.mark.parametrize("method", ["dbbr", "sbr", "direct"])
def test_candidates_are_distinct_computations(n, method):
    tokens = [candidate_plan(n, c).cache_token() for c in candidates(n, method)]
    assert len(tokens) == len(set(tokens))


@pytest.mark.parametrize("method", ["proposed", "magma", "cusolver", "plasma"])
def test_presets_resolve_to_their_raw_method(method):
    raw = resolve_method(method)
    assert raw in ("dbbr", "sbr", "tile", "direct")
    assert candidates(64, method) == candidates(64, raw)


def test_unknown_method_raises_plan_error():
    with pytest.raises(PlanError, match="valid choices"):
        candidates(64, "simulated-annealing")


def test_default_candidate_matches_planner_defaults():
    for n in (16, 64, 300):
        cand = default_candidate(n, "dbbr")
        explicit = candidate_plan(n, cand)
        automatic = plan_evd(n, "dbbr")
        assert explicit.cache_token() == automatic.cache_token()


def test_default_candidate_always_in_space():
    for n in (16, 64, 300):
        assert default_candidate(n, "dbbr") in candidates(n, "dbbr")


def test_dense_crossover_candidate_below_threshold_only():
    small = evd_candidates(DENSE_CROSSOVER_MAX_N, "dbbr")
    large = evd_candidates(DENSE_CROSSOVER_MAX_N + 1, "dbbr")
    assert Candidate.make("dense") in small
    assert Candidate.make("dense") not in large


def test_serve_threshold_candidates_bounded():
    ts = serve_threshold_candidates()
    assert 0 in ts
    assert max(ts) <= DENSE_CROSSOVER_MAX_N
    assert ts == sorted(ts)


def test_tiny_n_space_nonempty_and_valid():
    for n in (2, 3, 4):
        for cand in candidates(n, "dbbr"):
            candidate_plan(n, cand)


def test_empty_problem_rejected():
    with pytest.raises(PlanError, match="empty"):
        candidates(0, "dbbr")
