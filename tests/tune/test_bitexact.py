"""Regression: tuning must never change *what* is computed.

A store-tuned plan and the identical explicitly-spelled
``plan_evd(**knobs)`` must be the same computation: equal
``cache_token()`` (so the serving cache cannot split) and bit-identical
eigensolutions (not just allclose).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.plan import execute_plan, plan_evd
from repro.tune import TuneRecord, TuningStore, workload_matrix
from repro.tune.measure import MeasureProtocol

KNOBS = {"bandwidth": 8, "second_block": 32}


@pytest.fixture()
def seeded_store(isolated_tune_db):
    store = TuningStore.load()
    store.put(
        64,
        "dbbr",
        "numpy",
        TuneRecord(method="dbbr", knobs=dict(KNOBS), time_s=0.01, n=64),
    )
    store.save()
    return store


def test_store_tuned_plan_equals_explicit_cache_token(seeded_store):
    auto = plan_evd(64, "dbbr", tuning="auto")
    explicit = plan_evd(64, "dbbr", **KNOBS)
    assert auto.cache_token() == explicit.cache_token()
    # The display field still records how the plan was requested.
    assert auto.tuning == "auto"


def test_store_tuned_plan_is_bit_identical(seeded_store):
    A = workload_matrix(64, MeasureProtocol(seed=99))
    auto = execute_plan(A.copy(), plan_evd(64, "dbbr", tuning="auto"))
    explicit = execute_plan(A.copy(), plan_evd(64, "dbbr", **KNOBS))
    # Bitwise equality, not allclose: same plan, same arithmetic.
    assert np.array_equal(auto.eigenvalues, explicit.eigenvalues)
    assert np.array_equal(auto.eigenvectors, explicit.eigenvectors)
    assert auto.eigenvalues.tobytes() == explicit.eigenvalues.tobytes()
    assert auto.eigenvectors.tobytes() == explicit.eigenvectors.tobytes()


def test_explicit_knobs_beat_the_store(seeded_store):
    """User-specified knobs always win over tuned ones."""
    plan = plan_evd(64, "dbbr", tuning="auto", bandwidth=16)
    assert plan.tridiag.bandwidth == 16
    # The unset knob still comes from the store record.
    assert plan.tridiag.second_block == 32


def test_store_miss_matches_model_tuning(seeded_store):
    # n=300 buckets to 512 — no record there, so auto == model exactly.
    auto = plan_evd(300, "dbbr", tuning="auto")
    model = plan_evd(300, "dbbr", tuning="model")
    assert auto.cache_token() == model.cache_token()


def test_bucket_sharing_stays_bit_exact(seeded_store):
    """Knobs recorded at the 64 bucket apply to every n in (32, 64]."""
    for n in (40, 50, 64):
        auto = plan_evd(n, "dbbr", tuning="auto")
        explicit = plan_evd(n, "dbbr", **KNOBS)
        assert auto.cache_token() == explicit.cache_token()
