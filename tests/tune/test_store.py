"""TuningStore durability: round trips, corruption tolerance, atomic
concurrent writes, merge-on-write, and the typed error for unusable
paths."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.resilience import ReproError
from repro.tune import (
    SCHEMA_VERSION,
    TuneRecord,
    TuneStoreError,
    TuneStoreWarning,
    TuningStore,
    default_db_path,
    device_fingerprint,
    lookup_tuned_knobs,
    n_bucket,
    record_key,
    tune_stats,
)


def _rec(time_s=1.0, **knobs) -> TuneRecord:
    return TuneRecord(
        method="dbbr",
        knobs=knobs or {"bandwidth": 8, "second_block": 32},
        time_s=time_s,
        cv=0.05,
        n=64,
        created="2026-08-08T00:00:00+0000",
    )


class TestKeying:
    def test_n_bucket_powers_of_two(self):
        assert [n_bucket(n) for n in (1, 2, 3, 64, 65, 1000, 1024)] == [
            1, 2, 4, 64, 128, 1024, 1024,
        ]

    def test_record_key_fields(self):
        key = record_key(300, "dbbr", "numpy", device="dev", dtype="float64")
        assert key == "512|dbbr|numpy|dev|float64"

    def test_device_fingerprint_stable_and_filesystem_safe(self):
        fp = device_fingerprint()
        assert fp == device_fingerprint()
        assert fp
        assert " " not in fp and "|" not in fp


class TestRoundTrip:
    def test_save_load_round_trip(self, isolated_tune_db):
        store = TuningStore.load()
        assert store.path == isolated_tune_db == default_db_path()
        key = store.put(64, "dbbr", "numpy", _rec())
        store.save()
        again = TuningStore.load()
        assert again.get(key) == _rec()

    def test_round_trip_is_deterministic(self, isolated_tune_db):
        """Identical recorded measurements -> byte-identical database."""
        for _ in range(2):
            store = TuningStore(isolated_tune_db)
            store.put(64, "dbbr", "numpy", _rec())
            store.put(256, "sbr", "numpy", _rec(time_s=2.0, bandwidth=16))
            store.save()
            text = isolated_tune_db.read_text()
            store2 = TuningStore(isolated_tune_db)
            store2.records = dict(TuningStore.load().records)
            store2.save()
            assert isolated_tune_db.read_text() == text

    def test_put_keeps_faster_record(self):
        store = TuningStore()
        key = store.put(64, "dbbr", "numpy", _rec(time_s=2.0))
        store.put(64, "dbbr", "numpy", _rec(time_s=1.0))
        assert store.get(key).time_s == 1.0
        store.put(64, "dbbr", "numpy", _rec(time_s=5.0))
        assert store.get(key).time_s == 1.0
        store.put(64, "dbbr", "numpy", _rec(time_s=5.0), force=True)
        assert store.get(key).time_s == 5.0

    def test_export_import(self, tmp_path):
        src = TuningStore(tmp_path / "a.json")
        src.put(64, "dbbr", "numpy", _rec())
        dst = TuningStore(tmp_path / "b.json")
        assert dst.import_json(src.export_json()) == 1
        assert len(dst) == 1

    def test_import_bad_document_raises_typed_error(self, tmp_path):
        store = TuningStore(tmp_path / "c.json")
        with pytest.raises(TuneStoreError):
            store.import_json("this is not json")
        with pytest.raises(TuneStoreError):
            store.import_json(json.dumps({"schema_version": SCHEMA_VERSION + 1}))


class TestCorruptionTolerance:
    """Broken databases must degrade to empty-with-warning, never raise."""

    def test_missing_file_is_silently_empty(self, isolated_tune_db):
        assert not isolated_tune_db.exists()
        assert len(TuningStore.load()) == 0

    @pytest.mark.parametrize(
        "content",
        [
            "",  # truncated to nothing
            '{"schema_version": 1, "records": {',  # truncated mid-document
            "\x00\x01garbage\xff",  # binary garbage
            "[1, 2, 3]",  # wrong top-level type
            '{"records": {}}',  # missing schema version
        ],
        ids=["empty", "truncated", "garbage", "wrong-type", "no-version"],
    )
    def test_corrupt_file_loads_empty_with_warning(self, isolated_tune_db, content):
        isolated_tune_db.write_text(content)
        with pytest.warns(TuneStoreWarning):
            store = TuningStore.load()
        assert len(store) == 0

    def test_future_schema_loads_empty_with_warning(self, isolated_tune_db):
        doc = {"schema_version": SCHEMA_VERSION + 1, "records": {"k": _rec().to_dict()}}
        isolated_tune_db.write_text(json.dumps(doc))
        with pytest.warns(TuneStoreWarning, match="schema"):
            assert len(TuningStore.load()) == 0

    def test_malformed_record_skipped_healthy_kept(self, isolated_tune_db):
        good_key = record_key(64, "dbbr", "numpy")
        doc = {
            "schema_version": SCHEMA_VERSION,
            "records": {
                good_key: _rec().to_dict(),
                "bad-1": {"method": "dbbr"},  # no knobs/time
                "bad-2": {"method": "dbbr", "knobs": "not-a-dict", "time_s": 1.0},
            },
        }
        isolated_tune_db.write_text(json.dumps(doc))
        with pytest.warns(TuneStoreWarning, match="malformed"):
            store = TuningStore.load()
        assert len(store) == 1
        assert store.get(good_key) is not None

    def test_save_over_corrupt_file_heals_it(self, isolated_tune_db):
        isolated_tune_db.write_text("garbage{{{")
        store = TuningStore(isolated_tune_db)
        store.put(64, "dbbr", "numpy", _rec())
        with pytest.warns(TuneStoreWarning):
            store.save()
        assert len(TuningStore.load()) == 1

    def test_lookup_never_raises_on_corruption(self, isolated_tune_db):
        isolated_tune_db.write_text("garbage")
        with pytest.warns(TuneStoreWarning):
            assert lookup_tuned_knobs(64, "dbbr") is None
        assert tune_stats()["misses"] >= 1


class TestUnusablePath:
    def test_save_into_directory_raises_tune_store_error(self, tmp_path):
        store = TuningStore(tmp_path)  # the "file" is a directory
        store.put(64, "dbbr", "numpy", _rec())
        with pytest.warns(TuneStoreWarning):  # merge-on-write read warns first
            with pytest.raises(TuneStoreError):
                store.save()

    def test_tune_store_error_is_a_repro_error(self):
        assert issubclass(TuneStoreError, ReproError)
        assert issubclass(TuneStoreError, OSError)


class TestConcurrency:
    def test_merge_on_write_accumulates_other_writers(self, isolated_tune_db):
        a = TuningStore.load()
        b = TuningStore.load()
        a.put(64, "dbbr", "numpy", _rec())
        b.put(256, "sbr", "numpy", _rec(bandwidth=16))
        a.save()
        b.save()  # must merge a's record, not clobber it
        merged = TuningStore.load()
        assert len(merged) == 2

    def test_concurrent_writers_leave_a_valid_database(self, isolated_tune_db):
        """N threads hammering save() must never produce a torn file."""
        errors = []

        def writer(i: int) -> None:
            try:
                store = TuningStore.load()
                store.put(2 ** (6 + i % 4), "dbbr", "numpy", _rec(time_s=1.0 + i))
                store.save()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # The file parses (atomic replace: readers never see a torn write)
        doc = json.loads(isolated_tune_db.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert len(TuningStore.load()) >= 1

    def test_lookup_reflects_fresh_writes_despite_read_cache(self, isolated_tune_db):
        store = TuningStore.load()
        store.put(64, "dbbr", "numpy", _rec(bandwidth=8, second_block=32))
        store.save()
        assert lookup_tuned_knobs(64, "dbbr") == {"bandwidth": 8, "second_block": 32}
        store.put(64, "dbbr", "numpy", _rec(time_s=0.5, bandwidth=16, second_block=64))
        store.save()
        assert lookup_tuned_knobs(64, "dbbr") == {"bandwidth": 16, "second_block": 64}


class TestStats:
    def test_hit_and_miss_counters(self, isolated_tune_db):
        assert lookup_tuned_knobs(64, "dbbr") is None
        store = TuningStore.load()
        store.put(64, "dbbr", "numpy", _rec())
        store.save()
        assert lookup_tuned_knobs(64, "dbbr") is not None
        s = tune_stats()
        assert s["misses"] == 1 and s["hits"] == 1

    def test_records_json_roundtrip_numpy_scalars(self, isolated_tune_db):
        """Knob values arriving as numpy ints must still serialize."""
        store = TuningStore.load()
        store.put(
            64, "dbbr", "numpy",
            TuneRecord(method="dbbr", knobs={"bandwidth": int(np.int64(8))}, time_s=1.0),
        )
        store.save()
        assert TuningStore.load().get(record_key(64, "dbbr", "numpy")).knobs == {
            "bandwidth": 8
        }
