"""The ``repro tune`` CLI: search, show, export, import end to end.

Runs against the per-test ``$REPRO_TUNE_DB`` (see conftest), with tiny
problem sizes and one rep so the whole suite stays fast.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.tune import TuningStore

FAST = ["--reps", "1", "--warmup", "0"]


def _search(extra=()):
    return main(["tune", "search", "--n", "16", "--method", "dbbr", *FAST, *extra])


def test_search_records_winner(isolated_tune_db, capsys):
    assert _search() == 0
    out = capsys.readouterr().out
    assert "tuned dbbr at n=16" in out
    assert "<== best" in out
    assert "recorded" in out
    store = TuningStore.load()
    assert len(store) == 1
    ((key, rec),) = list(store)
    assert key.startswith("16|dbbr|numpy|")
    assert rec.method == "dbbr"


def test_search_dry_run_writes_nothing(isolated_tune_db, capsys):
    assert _search(["--dry-run"]) == 0
    assert "dry run" in capsys.readouterr().out
    assert not isolated_tune_db.exists()


def test_search_then_auto_plan_hits_the_store(isolated_tune_db, capsys):
    assert _search() == 0
    capsys.readouterr()
    # `repro plan --tuning auto` must resolve through the fresh record.
    assert main(["plan", "--n", "16", "--method", "dbbr", "--tuning", "auto"]) == 0
    assert "tuning" in capsys.readouterr().out


def test_explicit_db_flag_overrides_env(isolated_tune_db, tmp_path, capsys):
    alt = tmp_path / "alt.json"
    assert _search(["--db", str(alt)]) == 0
    assert alt.exists()
    assert not isolated_tune_db.exists()


def test_show_empty_and_populated(isolated_tune_db, capsys):
    assert main(["tune", "show"]) == 0
    assert "empty" in capsys.readouterr().out
    _search()
    capsys.readouterr()
    assert main(["tune", "show"]) == 0
    out = capsys.readouterr().out
    assert "1 record(s)" in out
    assert "16|dbbr|numpy|" in out


def test_export_import_round_trip(isolated_tune_db, tmp_path, capsys):
    _search()
    dump = tmp_path / "dump.json"
    assert main(["tune", "export", str(dump)]) == 0
    doc = json.loads(dump.read_text())
    assert doc["records"]

    other = tmp_path / "other_db.json"
    capsys.readouterr()
    assert main(["tune", "import", str(dump), "--db", str(other)]) == 0
    assert "imported 1 record(s)" in capsys.readouterr().out
    assert len(TuningStore.load(other)) == 1


def test_export_to_stdout(isolated_tune_db, capsys):
    _search()
    capsys.readouterr()
    assert main(["tune", "export"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc) >= {"schema_version", "records"}


def test_import_garbage_fails_cleanly(isolated_tune_db, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("not json at all")
    assert main(["tune", "import", str(bad)]) == 2
    assert "tune import failed" in capsys.readouterr().err
    assert not isolated_tune_db.exists()


def test_serve_threshold_search(isolated_tune_db, capsys):
    code = main(
        ["tune", "search", "--method", "serve", *FAST, "--sizes", "8", "16"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "serve dense-crossover threshold:" in out
    store = TuningStore.load()
    rec = store.lookup(1, "serve", "numpy")
    assert rec is not None
    assert "dense_fastpath_max_n" in rec.knobs


def test_unknown_tune_subcommand_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["tune", "frobnicate"])
