"""Unit tests for the bounded priority queue and batching policy."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.batcher import (
    BatchPolicy,
    QueueClosed,
    QueueFull,
    QueueTimeout,
    RequestQueue,
)

SINGLE = BatchPolicy(max_batch=1)


def put_all(q, items, priority=0):
    for seq, item in enumerate(items):
        q.put(item, priority=priority, seq=seq)


class TestBatchPolicy:
    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)

    def test_no_wait_when_window_zero_or_unbatched(self):
        assert not BatchPolicy(window_s=0.0).should_wait(1e-6)
        assert not BatchPolicy(max_batch=1).should_wait(1e-6)

    def test_non_adaptive_always_waits(self):
        assert BatchPolicy(adaptive=False).should_wait(None)

    def test_adaptive_needs_fast_arrivals(self):
        p = BatchPolicy(window_s=0.002, adaptive=True)
        assert not p.should_wait(None)        # no traffic observed yet
        assert not p.should_wait(0.1)         # arrivals slower than window
        assert p.should_wait(0.001)           # arrivals within the window


class TestOrdering:
    def test_priority_then_fifo(self):
        q = RequestQueue(limit=8)
        q.put("low-1", priority=5, seq=0)
        q.put("high", priority=0, seq=1)
        q.put("low-2", priority=5, seq=2)
        popped = [q.pop_batch(lambda _: None, SINGLE)[0][0] for _ in range(3)]
        assert popped == ["high", "low-1", "low-2"]

    def test_depth_at_dequeue(self):
        q = RequestQueue(limit=8)
        put_all(q, ["a", "b", "c"])
        _, depth = q.pop_batch(lambda _: None, SINGLE)
        assert depth == 3 and len(q) == 2


class TestBatching:
    def test_groups_compatible_up_to_max(self):
        q = RequestQueue(limit=16)
        put_all(q, ["x1", "x2", "y1", "x3", "x4"])
        policy = BatchPolicy(max_batch=3, window_s=0.0)
        batch, _ = q.pop_batch(lambda item: item[0], policy)
        assert batch == ["x1", "x2", "x3"]
        batch, _ = q.pop_batch(lambda item: item[0], policy)
        assert batch == ["y1"]
        batch, _ = q.pop_batch(lambda item: item[0], policy)
        assert batch == ["x4"]

    def test_none_signature_pops_singly(self):
        q = RequestQueue(limit=8)
        put_all(q, ["a", "b"])
        batch, _ = q.pop_batch(lambda _: None, BatchPolicy(max_batch=8, window_s=0.0))
        assert batch == ["a"] and len(q) == 1

    def test_window_collects_late_arrival(self):
        q = RequestQueue(limit=8)
        # Prime the EWMA with a fast arrival pair so the window opens.
        q.put("x1", priority=0, seq=0)
        q.put("x2", priority=0, seq=1)
        q.pop_batch(lambda item: item[0], SINGLE)
        q.pop_batch(lambda item: item[0], SINGLE)
        assert q.ewma_interarrival_s is not None

        q.put("x3", priority=0, seq=2)
        policy = BatchPolicy(max_batch=2, window_s=0.25, adaptive=False)
        late = threading.Thread(
            target=lambda: (time.sleep(0.02), q.put("x4", priority=0, seq=3))
        )
        late.start()
        batch, _ = q.pop_batch(lambda item: item[0], policy)
        late.join()
        assert batch == ["x3", "x4"]


class TestBackpressure:
    def test_reject_when_full(self):
        q = RequestQueue(limit=2)
        put_all(q, ["a", "b"])
        with pytest.raises(QueueFull):
            q.put("c", priority=0, seq=9, policy="reject")

    def test_timeout_when_full(self):
        q = RequestQueue(limit=1)
        q.put("a", priority=0, seq=0)
        t0 = time.monotonic()
        with pytest.raises(QueueTimeout):
            q.put("b", priority=0, seq=1, policy="timeout", timeout_s=0.05)
        assert time.monotonic() - t0 >= 0.04

    def test_block_until_capacity(self):
        q = RequestQueue(limit=1)
        q.put("a", priority=0, seq=0)
        done = threading.Event()

        def producer():
            q.put("b", priority=0, seq=1, policy="block")
            done.set()

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.02)
        assert not done.is_set()  # still blocked on the full queue
        q.pop_batch(lambda _: None, SINGLE)
        t.join(timeout=2.0)
        assert done.is_set()

    def test_pop_blocks_until_put(self):
        q = RequestQueue(limit=4)
        threading.Thread(
            target=lambda: (time.sleep(0.02), q.put("a", priority=0, seq=0))
        ).start()
        batch, _ = q.pop_batch(lambda _: None, SINGLE)
        assert batch == ["a"]


class TestShutdown:
    def test_put_after_close_raises(self):
        q = RequestQueue(limit=4)
        q.close()
        with pytest.raises(QueueClosed):
            q.put("a", priority=0, seq=0)

    def test_drain_serves_out_then_signals_exit(self):
        q = RequestQueue(limit=4)
        put_all(q, ["a", "b"])
        assert q.close(drain=True) == []
        assert q.pop_batch(lambda _: None, SINGLE)[0] == ["a"]
        assert q.pop_batch(lambda _: None, SINGLE)[0] == ["b"]
        assert q.pop_batch(lambda _: None, SINGLE) is None

    def test_non_drain_returns_removed(self):
        q = RequestQueue(limit=4)
        put_all(q, ["a", "b"])
        assert q.close(drain=False) == ["a", "b"]
        assert q.pop_batch(lambda _: None, SINGLE) is None

    def test_close_wakes_blocked_consumer(self):
        q = RequestQueue(limit=4)
        got = []

        def consumer():
            got.append(q.pop_batch(lambda _: None, SINGLE))

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.02)
        q.close(drain=True)
        t.join(timeout=2.0)
        assert not t.is_alive() and got == [None]
