"""The service's determinism contract, property-style.

For ANY interleaving of submissions, batch sizes, and cache states, a
result delivered by :class:`~repro.serve.SolverService` must be
bit-identical to a direct single-call ``repro.eigh`` with the request's
*effective* options on the numpy backend.  We drive randomized request
streams (mixed sizes, mixed methods, deliberate duplicates for cache
hits and in-flight coalescing) through randomized service shapes (worker
counts, batch windows, cache on/off, fast-path promotion) and bit-compare
every single result against its reference.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.serve import ServiceConfig, SolverService

SIZES = (12, 16, 24, 32)


def make_stream(rng, n_unique=10, n_requests=28):
    """A randomized request stream with duplicates and mixed options."""
    pool = []
    for _ in range(n_unique):
        n = int(rng.choice(SIZES))
        A = rng.standard_normal((n, n))
        A = (A + A.T) / 2.0
        opts = {}
        roll = rng.random()
        if roll < 0.45:
            opts["method"] = "dense"
        # else: the library default (the full DBBR + BC pipeline)
        if rng.random() < 0.3:
            opts["compute_vectors"] = bool(rng.random() < 0.5)
        pool.append((A, opts))
    picks = rng.integers(0, n_unique, n_requests)
    return [pool[int(i)] for i in picks]


def effective_opts(config, A, opts):
    """Mirror the service's fast-path promotion rule."""
    eff = dict(opts)
    n = A.shape[0]
    if (
        config.dense_fastpath_max_n is not None
        and n <= config.dense_fastpath_max_n
        and "method" not in eff
        and "backend" not in eff
    ):
        eff["method"] = "dense"
    return eff


def assert_bit_identical(got, ref, label):
    assert np.array_equal(got.eigenvalues, ref.eigenvalues), label
    assert (got.eigenvectors is None) == (ref.eigenvectors is None), label
    if ref.eigenvectors is not None:
        assert np.array_equal(got.eigenvectors, ref.eigenvectors), label


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_streams_bit_identical(seed):
    rng = np.random.default_rng(seed)
    stream = make_stream(rng)
    config = ServiceConfig(
        workers=int(rng.integers(1, 5)),
        queue_limit=int(rng.integers(4, 64)),
        max_batch=int(rng.integers(1, 16)),
        batch_window_s=float(rng.choice([0.0, 0.002, 0.01])),
        adaptive_batching=bool(rng.random() < 0.5),
        cache_entries=int(rng.choice([0, 4, 256])),
        dense_fastpath_max_n=(
            int(rng.choice([16, 24])) if rng.random() < 0.5 else None
        ),
    )
    with SolverService(config) as svc:
        futures = [svc.submit(A, **opts) for A, opts in stream]
        results = [f.result(timeout=120) for f in futures]

    for i, ((A, opts), got) in enumerate(zip(stream, results)):
        eff = effective_opts(config, A, opts)
        ref = repro.eigh(A, **eff)
        assert_bit_identical(got, ref, f"request {i}: n={A.shape[0]} opts={eff}")


def test_forced_stacking_matches_singles():
    """Many same-n dense requests in one burst — guaranteed stacked
    batches — must match one-at-a-time dense calls bit-for-bit."""
    rng = np.random.default_rng(7)
    mats = []
    for _ in range(12):
        A = rng.standard_normal((20, 20))
        mats.append((A + A.T) / 2.0)
    config = ServiceConfig(
        workers=1, max_batch=16, batch_window_s=0.01, adaptive_batching=False,
        cache_entries=0,
    )
    with SolverService(config) as svc:
        futs = [svc.submit(A, method="dense") for A in mats]
        results = [f.result(timeout=60) for f in futs]
        stacked = svc.stats()["metrics"]["stacked_batches"]
    assert stacked >= 1  # the burst really did exercise the stacked path
    for A, got in zip(mats, results):
        assert_bit_identical(got, repro.eigh(A, method="dense"), "stacked")


def test_cache_replay_is_bit_identical():
    """A result served from the cache is the same bits as the computed
    one, and both equal the direct call."""
    A = np.random.default_rng(11).standard_normal((24, 24))
    A = (A + A.T) / 2.0
    config = ServiceConfig(workers=1, cache_entries=16)
    with SolverService(config) as svc:
        first = svc.submit(A, method="dense").result(timeout=30)
        replay = svc.submit(A.copy(), method="dense").result(timeout=30)
    ref = repro.eigh(A, method="dense")
    assert_bit_identical(first, ref, "computed")
    assert_bit_identical(replay, ref, "replayed")
