"""Service-level fault tolerance: verification wiring, deadlines, worker
supervision, and the per-backend circuit breaker."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.resilience import (
    BackendFault,
    DeadlineExceeded,
    FaultSpec,
    VerificationError,
    WorkerCrashError,
    clear_faults,
    injected_faults,
)
from repro.serve import ServiceConfig, SolverService


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_faults()
    yield
    clear_faults()


def goe(n: int, seed: int = 0) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


class TestVerificationWiring:
    def test_every_result_is_verified_by_default(self):
        with SolverService(ServiceConfig(workers=2)) as svc:
            futs = svc.submit_many([goe(24, i) for i in range(5)])
            for f in futs:
                f.result(timeout=60)
            res = svc.stats()["metrics"]["resilience"]
        assert res["verifications"] == 5
        assert res["residuals"]["count"] == 5
        assert res["residuals"]["max"] < 1e-12
        assert res["orth_errors"]["count"] == 5

    def test_poisoned_result_fails_future_typed(self):
        with injected_faults(FaultSpec("runner.result", "nan", times=1)):
            with SolverService(ServiceConfig(workers=1)) as svc:
                fut = svc.submit(goe(24, 7))
                with pytest.raises(VerificationError):
                    fut.result(timeout=60)
                res = svc.stats()["metrics"]["resilience"]
        assert res["verification_failures"] == 1

    def test_verify_off_skips_verification(self):
        cfg = ServiceConfig(workers=1, verify=False)
        with SolverService(cfg) as svc:
            svc.submit(goe(16, 1)).result(timeout=60)
            res = svc.stats()["metrics"]["resilience"]
        assert res["verifications"] == 0

    def test_verify_stage_surfaces_in_stage_times(self):
        with SolverService(ServiceConfig(workers=1)) as svc:
            svc.submit(goe(24, 2)).result(timeout=60)
            stages = svc.stats()["metrics"]["stage_times"]
        assert "verify_evd" in stages


class TestFallbackThroughService:
    def test_escalation_visible_in_stats(self):
        with injected_faults(FaultSpec("dc.merge", "convergence", times=1)):
            with SolverService(ServiceConfig(workers=1)) as svc:
                A = goe(40, 3)
                out = svc.submit(A, fallback="chain").result(timeout=60)
                st = svc.stats()
        dense = repro.eigh(A, method="dense")
        np.testing.assert_array_equal(out.eigenvalues, dense.eigenvalues)
        assert st["metrics"]["resilience"]["escalations"] == 1
        assert st["cache"]["escalated_rejections"] == 1

    def test_escalated_result_never_caches_under_original_key(self):
        A = goe(40, 4)
        with SolverService(ServiceConfig(workers=1)) as svc:
            with injected_faults(FaultSpec("dc.merge", "convergence", times=1)):
                svc.submit(A, fallback="chain").result(timeout=60)
            # Faults cleared: the same submission must recompute through
            # the proposed pipeline, not replay the dense escalation.
            out = svc.submit(A, fallback="chain").result(timeout=60)
        direct = repro.eigh(A)
        np.testing.assert_array_equal(out.eigenvalues, direct.eigenvalues)
        np.testing.assert_array_equal(out.eigenvectors, direct.eigenvectors)


class TestDeadlines:
    def test_expired_deadline_fails_typed(self):
        with SolverService(ServiceConfig(workers=1)) as svc:
            fut = svc.submit(goe(16, 5), deadline_s=-1.0)
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=60)
            assert svc.stats()["metrics"]["resilience"]["deadline_expired"] == 1

    def test_config_default_deadline_applies(self):
        cfg = ServiceConfig(workers=1, default_deadline_s=-1.0)
        with SolverService(cfg) as svc:
            with pytest.raises(DeadlineExceeded):
                svc.submit(goe(16, 6)).result(timeout=60)

    def test_generous_deadline_succeeds(self):
        with SolverService(ServiceConfig(workers=1)) as svc:
            out = svc.submit(goe(16, 7), deadline_s=600.0).result(timeout=60)
        assert out.eigenvalues.size == 16


class TestWorkerSupervision:
    def test_crashed_request_is_requeued_and_completes(self):
        with injected_faults(FaultSpec("serve.worker", "crash", times=1)):
            with SolverService(ServiceConfig(workers=2)) as svc:
                A = goe(24, 8)
                out = svc.submit(A).result(timeout=60)
                res = svc.stats()["metrics"]["resilience"]
        direct = repro.eigh(A)
        np.testing.assert_array_equal(out.eigenvalues, direct.eigenvalues)
        assert res["worker_crashes"] == 1
        assert res["crash_requeues"] == 1
        assert res["worker_respawns"] == 1

    def test_retry_budget_exhaustion_fails_typed(self):
        with injected_faults(FaultSpec("serve.worker", "crash", times=5)):
            cfg = ServiceConfig(workers=1, max_crash_retries=1)
            with SolverService(cfg) as svc:
                fut = svc.submit(goe(16, 9))
                with pytest.raises(WorkerCrashError):
                    fut.result(timeout=60)

    def test_service_survives_crash_and_keeps_serving(self):
        with injected_faults(FaultSpec("serve.worker", "crash", times=1)):
            with SolverService(ServiceConfig(workers=1)) as svc:
                first = svc.submit(goe(16, 10)).result(timeout=60)
                second = svc.submit(goe(16, 11)).result(timeout=60)
        assert first.eigenvalues.size == second.eigenvalues.size == 16


class TestCircuitBreaker:
    def test_trips_open_and_reroutes_to_numpy(self):
        with injected_faults(FaultSpec("serve.backend", "backend", times=3)):
            cfg = ServiceConfig(workers=1, backend="torch",
                                breaker_threshold=3, cache_entries=0)
            with SolverService(cfg) as svc:
                for i in range(3):
                    with pytest.raises(BackendFault):
                        svc.submit(goe(16, i)).result(timeout=60)
                # Breaker open: the next request reroutes to numpy and
                # succeeds even though the torch backend is unavailable.
                out = svc.submit(goe(16, 50)).result(timeout=60)
                st = svc.stats()
        assert out.eigenvalues.size == 16
        res = st["metrics"]["resilience"]
        assert res["backend_faults"] == 3
        assert res["breaker_fallbacks"] == 1
        br = st["resilience"]["breakers"]["torch"]
        assert br["state"] == "open" and br["trips"] == 1

    def test_numpy_backend_never_engages_breaker(self):
        with SolverService(ServiceConfig(workers=1)) as svc:
            svc.submit(goe(16, 1)).result(timeout=60)
            assert svc.stats()["resilience"]["breakers"] == {}


class TestStatsSchema:
    def test_resilience_sections_present(self):
        with SolverService(ServiceConfig(workers=1)) as svc:
            st = svc.stats()
        assert st["resilience"]["verify"] is True
        assert st["resilience"]["max_crash_retries"] == 1
        assert "breakers" in st["resilience"]
        assert "escalated_rejections" in st["cache"]
        assert "resilience" in st["metrics"]
