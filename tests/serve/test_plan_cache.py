"""Plan-token cache keying: equivalent request spellings share one entry.

Satellite regression (PR 7): the service keys its result cache and
single-flight coalescing on the *resolved* plan's ``cache_token`` rather
than the raw submitted kwargs, so ``method="proposed"`` and its
fully-expanded DBBR spelling hit the same ``ResultCache`` entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.plan import PlanError, plan_evd
from repro.serve import ServiceConfig, SolverService, plan_cache_key
from repro.serve.cache import ResultCache


def goe(n: int, seed: int = 0) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


def expanded_proposed_kwargs(n: int) -> dict:
    """The fully-spelled-out kwargs equivalent of ``method="proposed"``."""
    p = plan_evd(n, "proposed")
    return dict(
        method="dbbr",
        bandwidth=p.tridiag.bandwidth,
        second_block=p.tridiag.second_block,
        pipelined=True,
        bc_driver="wavefront",
        back_transform="incremental",
        back_transform_group=p.back_transform.group,
    )


class TestPlanCacheKey:
    def test_none_plan_is_uncacheable(self):
        assert plan_cache_key(goe(4), None) is None

    def test_key_contains_fingerprint_and_token(self):
        A = goe(4)
        plan = plan_evd(4, "proposed")
        key = plan_cache_key(A, plan)
        assert key is not None and key.endswith(plan.cache_token())
        # Same bytes, same key; different matrix, different key.
        assert plan_cache_key(A.copy(), plan) == key
        assert plan_cache_key(goe(4, seed=99), plan) != key

    def test_equivalent_spellings_share_key(self):
        A = goe(24)
        a = plan_cache_key(A, plan_evd(24, "proposed"))
        b = plan_cache_key(A, plan_evd(24, **expanded_proposed_kwargs(24)))
        assert a == b


class TestServiceCoalescing:
    def test_preset_and_expanded_spelling_share_cache_entry(self):
        A = goe(24, seed=7)
        with SolverService(ServiceConfig(workers=2)) as svc:
            r1 = svc.submit(A, method="proposed").result(timeout=60)
            r2 = svc.submit(A, **expanded_proposed_kwargs(24)).result(timeout=60)
            stats = svc.stats()["cache"]
        assert stats["entries"] == 1
        assert stats["hits"] >= 1
        np.testing.assert_array_equal(r1.eigenvalues, r2.eigenvalues)
        np.testing.assert_array_equal(r1.eigenvectors, r2.eigenvectors)

    def test_distinct_pipelines_do_not_collide(self):
        A = goe(24, seed=8)
        with SolverService(ServiceConfig(workers=2)) as svc:
            r1 = svc.submit(A, method="proposed").result(timeout=60)
            r2 = svc.submit(A, method="magma").result(timeout=60)
            stats = svc.stats()["cache"]
        assert stats["entries"] == 2
        # Different pipelines, same spectrum — but separate cache slots.
        np.testing.assert_allclose(r1.eigenvalues, r2.eigenvalues, atol=1e-8)

    def test_invalid_knob_fails_fast_at_submit(self):
        with SolverService(ServiceConfig(workers=1)) as svc:
            with pytest.raises(PlanError, match="unknown pipeline knob"):
                svc.submit(goe(8), bandwith=4)

    def test_results_bit_identical_to_direct_eigh(self):
        import repro

        A = goe(24, seed=9)
        with SolverService(ServiceConfig(workers=1)) as svc:
            got = svc.submit(A, method="proposed").result(timeout=60)
        ref = repro.eigh(A, method="proposed")
        np.testing.assert_array_equal(got.eigenvalues, ref.eigenvalues)
        np.testing.assert_array_equal(got.eigenvectors, ref.eigenvectors)

    def test_dense_promotion_and_explicit_dense_coalesce(self):
        """The fastpath's effective ``method="dense"`` resolves to the
        same plan token as an explicit dense submission."""
        A = goe(8, seed=10)
        with SolverService(
            ServiceConfig(workers=1, dense_fastpath_max_n=16)
        ) as svc:
            svc.submit(A).result(timeout=60)  # promoted to dense
            svc.submit(A, method="dense").result(timeout=60)
            stats = svc.stats()["cache"]
        assert stats["entries"] == 1
        assert stats["hits"] >= 1

    def test_replay_is_frozen(self):
        A = goe(12, seed=11)
        with SolverService(ServiceConfig(workers=1)) as svc:
            first = svc.submit(A, method="proposed").result(timeout=60)
            replay = svc.submit(A.copy(), method="proposed").result(timeout=60)
        assert replay is first
        assert not replay.eigenvalues.flags.writeable


class TestCacheStillGeneric:
    def test_result_cache_accepts_plan_keys(self):
        cache = ResultCache(max_entries=2)
        A = goe(6)
        key = plan_cache_key(A, plan_evd(6, "cusolver"))

        class Dummy:
            eigenvalues = np.zeros(6)
            eigenvectors = None
            tridiag = None

        cache.put(key, Dummy())
        assert cache.get(key) is not None
        assert cache.stats()["hits"] == 1


class TestEscalatedResultsNeverPoisonTheCache:
    """Satellite regression (PR 8): a failed or fallback-escalated result
    must never be cached under the original plan's cache token — the
    escalated bits belong to a different pipeline."""

    def _dummy(self, n=6):
        class Dummy:
            eigenvalues = np.zeros(n)
            eigenvectors = None
            tridiag = None

        return Dummy()

    def test_put_refuses_escalated_stores(self):
        cache = ResultCache(max_entries=4)
        A = goe(6)
        key = plan_cache_key(A, plan_evd(6, "proposed"))
        cache.put(key, self._dummy(), escalated=True)
        assert cache.get(key) is None
        assert len(cache) == 0
        assert cache.stats()["escalated_rejections"] == 1

    def test_put_escalated_keys_under_producing_plan(self):
        cache = ResultCache(max_entries=4)
        A = goe(6)
        producer = plan_cache_key(A, plan_evd(6, "dense"))
        cache.put_escalated(producer, self._dummy())
        entry = cache.get_entry(producer)
        assert entry is not None and entry.escalated
        assert cache.get(producer) is entry.result

    def test_failed_solve_is_never_cached(self):
        import repro
        from repro.resilience import (
            FaultSpec,
            VerificationError,
            clear_faults,
            injected_faults,
        )

        A = goe(24, seed=20)
        try:
            with SolverService(ServiceConfig(workers=1)) as svc:
                with injected_faults(FaultSpec("runner.result", "nan", times=1)):
                    with pytest.raises(VerificationError):
                        svc.submit(A, method="proposed").result(timeout=60)
                assert svc.stats()["cache"]["entries"] == 0
                # Faults off: same submission recomputes and caches the
                # healthy bits.
                got = svc.submit(A, method="proposed").result(timeout=60)
                assert svc.stats()["cache"]["entries"] == 1
        finally:
            clear_faults()
        ref = repro.eigh(A, method="proposed")
        np.testing.assert_array_equal(got.eigenvalues, ref.eigenvalues)

    def test_escalated_service_result_rekeys_under_producer(self):
        import repro
        from repro.resilience import FaultSpec, clear_faults, injected_faults

        A = goe(32, seed=21)
        try:
            with SolverService(ServiceConfig(workers=1)) as svc:
                with injected_faults(FaultSpec("dc.merge", "convergence", times=1)):
                    svc.submit(A, fallback="chain").result(timeout=60)
                stats = svc.stats()["cache"]
                assert stats["escalated_rejections"] == 1
                assert stats["entries"] == 1  # only the producing key
                # A direct dense submission replays the escalated entry.
                dense_hit = svc.submit(A, method="dense").result(timeout=60)
                assert svc.stats()["cache"]["hits"] >= 1
        finally:
            clear_faults()
        ref = repro.eigh(A, method="dense")
        np.testing.assert_array_equal(dense_hit.eigenvalues, ref.eigenvalues)
