"""Behavioural tests for :class:`repro.serve.SolverService`: submission,
caching, coalescing, backpressure, robustness, and shutdown."""

from __future__ import annotations

import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

import repro
from repro.bench.workloads import goe
from repro.core.validation import NonFiniteError, NonSquareError
from repro.serve import (
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    SolverService,
    SubmitTimeout,
)


def small_config(**overrides) -> ServiceConfig:
    base = dict(workers=2, backend="numpy", queue_limit=64)
    base.update(overrides)
    return ServiceConfig(**base)


class TestSubmission:
    def test_result_matches_direct_eigh(self):
        A = goe(24, seed=0)
        with SolverService(small_config()) as svc:
            got = svc.submit(A).result(timeout=30)
        ref = repro.eigh(A)
        assert np.array_equal(got.eigenvalues, ref.eigenvalues)
        assert np.array_equal(got.eigenvectors, ref.eigenvectors)

    def test_dense_method_matches_direct(self):
        A = goe(24, seed=1)
        with SolverService(small_config()) as svc:
            got = svc.submit(A, method="dense").result(timeout=30)
        ref = repro.eigh(A, method="dense")
        assert np.array_equal(got.eigenvalues, ref.eigenvalues)
        assert np.array_equal(got.eigenvectors, ref.eigenvectors)

    def test_submit_many(self):
        mats = [goe(16, seed=s) for s in range(5)]
        with SolverService(small_config()) as svc:
            futs = svc.submit_many(mats, method="dense")
            results = [f.result(timeout=30) for f in futs]
        for A, res in zip(mats, results):
            ref = repro.eigh(A, method="dense")
            assert np.array_equal(res.eigenvalues, ref.eigenvalues)

    def test_solver_opts_are_honoured(self):
        A = goe(20, seed=2)
        with SolverService(small_config()) as svc:
            got = svc.submit(A, compute_vectors=False).result(timeout=30)
        assert got.eigenvectors is None

    def test_stats_schema(self):
        with SolverService(small_config()) as svc:
            svc.submit(goe(12, seed=3), method="dense").result(timeout=30)
            stats = svc.stats()
        assert set(stats) >= {
            "workers", "backend", "closed", "queue_depth", "queue_limit",
            "backpressure", "cache", "metrics", "ewma_interarrival_s",
        }
        assert stats["metrics"]["completed"] >= 1


class TestCacheAndCoalescing:
    def test_repeat_hits_cache_bit_identically(self):
        A = goe(20, seed=4)
        with SolverService(small_config()) as svc:
            first = svc.submit(A, method="dense").result(timeout=30)
            time.sleep(0.05)  # let the leader's done-callbacks settle
            second = svc.submit(A.copy(), method="dense").result(timeout=30)
            stats = svc.stats()
        assert stats["metrics"]["cache_hits_at_submit"] == 1
        assert np.array_equal(first.eigenvalues, second.eigenvalues)
        assert np.array_equal(first.eigenvectors, second.eigenvectors)

    def test_cached_arrays_are_read_only(self):
        A = goe(16, seed=5)
        with SolverService(small_config()) as svc:
            res = svc.submit(A, method="dense").result(timeout=30)
        with pytest.raises(ValueError):
            res.eigenvalues[0] = 0.0

    def test_inflight_duplicates_coalesce(self):
        # n=64 through the full pipeline takes long enough that a burst
        # of twins is submitted while the leader is still in flight.
        A = goe(64, seed=6)
        with SolverService(small_config(workers=4)) as svc:
            futs = [svc.submit(A) for _ in range(5)]
            results = [f.result(timeout=60) for f in futs]
            stats = svc.stats()
        assert stats["metrics"]["coalesced"] == 4
        for res in results[1:]:
            assert np.array_equal(res.eigenvalues, results[0].eigenvalues)
            assert np.array_equal(res.eigenvectors, results[0].eigenvectors)

    def test_cache_disabled_still_correct(self):
        A = goe(16, seed=7)
        with SolverService(small_config(cache_entries=0)) as svc:
            r1 = svc.submit(A, method="dense").result(timeout=30)
            r2 = svc.submit(A, method="dense").result(timeout=30)
        assert np.array_equal(r1.eigenvalues, r2.eigenvalues)


class TestDenseFastpath:
    def test_promotion_matches_dense_eigh(self):
        A = goe(24, seed=8)
        cfg = small_config(dense_fastpath_max_n=32)
        with SolverService(cfg) as svc:
            got = svc.submit(A).result(timeout=30)
        ref = repro.eigh(A, method="dense")
        assert got.solver == "dense"
        assert np.array_equal(got.eigenvalues, ref.eigenvalues)

    def test_pinned_method_is_not_promoted(self):
        A = goe(24, seed=9)
        cfg = small_config(dense_fastpath_max_n=32)
        with SolverService(cfg) as svc:
            got = svc.submit(A, method="proposed").result(timeout=30)
        ref = repro.eigh(A, method="proposed")
        assert got.solver != "dense"
        assert np.array_equal(got.eigenvalues, ref.eigenvalues)

    def test_large_n_not_promoted(self):
        A = goe(48, seed=10)
        cfg = small_config(dense_fastpath_max_n=32)
        with SolverService(cfg) as svc:
            got = svc.submit(A).result(timeout=60)
        assert got.solver != "dense"


class TestBackpressure:
    def _flood(self, svc, count=40, n=96):
        """Submit distinct slow requests until one raises, else fail."""
        rng = np.random.default_rng(123)
        futs = []
        with pytest.raises((ServiceOverloaded, SubmitTimeout)) as exc_info:
            for _ in range(count):
                A = rng.standard_normal((n, n))
                A = (A + A.T) / 2.0
                futs.append(svc.submit(A))
        return futs, exc_info

    def test_reject_policy(self):
        cfg = small_config(workers=1, queue_limit=1, backpressure="reject")
        with SolverService(cfg) as svc:
            futs, exc_info = self._flood(svc)
            assert exc_info.type is ServiceOverloaded
            for f in futs:
                f.result(timeout=60)
            assert svc.stats()["metrics"]["rejected"] >= 1

    def test_timeout_policy(self):
        cfg = small_config(
            workers=1, queue_limit=1, backpressure="timeout",
            submit_timeout_s=0.01,
        )
        with SolverService(cfg) as svc:
            futs, exc_info = self._flood(svc)
            assert exc_info.type is SubmitTimeout
            for f in futs:
                f.result(timeout=60)

    def test_block_policy_completes_everything(self):
        cfg = small_config(workers=2, queue_limit=2, backpressure="block")
        mats = [goe(32, seed=s) for s in range(8)]
        with SolverService(cfg) as svc:
            futs = svc.submit_many(mats, method="dense")
            results = [f.result(timeout=60) for f in futs]
        assert len(results) == 8

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(backpressure="drop")


class TestRobustness:
    @pytest.mark.parametrize("opts", [{}, {"method": "dense"}])
    def test_non_finite_fails_only_its_own_future(self, opts):
        bad = goe(16, seed=11)
        bad[3, 3] = np.nan
        good_before = goe(16, seed=12)
        good_after = goe(16, seed=13)
        with SolverService(small_config()) as svc:
            f_before = svc.submit(good_before, **opts)
            f_bad = svc.submit(bad, **opts)
            f_after = svc.submit(good_after, **opts)
            with pytest.raises(NonFiniteError):
                f_bad.result(timeout=30)
            # ... and the service keeps serving
            ref_b = repro.eigh(good_before, **opts)
            ref_a = repro.eigh(good_after, **opts)
            assert np.array_equal(
                f_before.result(timeout=30).eigenvalues, ref_b.eigenvalues
            )
            assert np.array_equal(
                f_after.result(timeout=30).eigenvalues, ref_a.eigenvalues
            )
            assert svc.stats()["metrics"]["failed"] == 1

    def test_non_square_fails_future_not_submit(self):
        with SolverService(small_config()) as svc:
            fut = svc.submit(np.zeros((3, 5)))
            with pytest.raises(NonSquareError):
                fut.result(timeout=30)

    def test_bad_matrix_inside_stacked_batch(self):
        """A NaN twin in a dense batch must not poison its batchmates."""
        bad = goe(16, seed=14)
        bad[0, 0] = np.inf
        goods = [goe(16, seed=s) for s in range(20, 26)]
        cfg = small_config(workers=1, max_batch=8, adaptive_batching=False)
        with SolverService(cfg) as svc:
            futs = [svc.submit(A, method="dense") for A in [bad] + goods]
            with pytest.raises(NonFiniteError):
                futs[0].result(timeout=30)
            for A, f in zip(goods, futs[1:]):
                ref = repro.eigh(A, method="dense")
                assert np.array_equal(f.result(timeout=30).eigenvalues,
                                      ref.eigenvalues)


class TestShutdown:
    def test_drain_completes_queued_work(self):
        mats = [goe(24, seed=s) for s in range(6)]
        svc = SolverService(small_config(workers=1))
        futs = svc.submit_many(mats, method="dense")
        svc.close(drain=True)
        for A, f in zip(mats, futs):
            ref = repro.eigh(A, method="dense")
            assert np.array_equal(f.result(timeout=1).eigenvalues,
                                  ref.eigenvalues)
        assert svc.closed

    def test_submit_after_close_raises(self):
        svc = SolverService(small_config())
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit(goe(8, seed=0))

    def test_close_is_idempotent(self):
        svc = SolverService(small_config())
        svc.close()
        svc.close()

    def test_non_drain_cancels_queued(self):
        # One worker grinds a slow pipeline solve while cheap requests
        # pile up; closing without drain must cancel the queue without
        # deadlocking.
        rng = np.random.default_rng(99)
        slow = rng.standard_normal((128, 128))
        slow = (slow + slow.T) / 2.0
        svc = SolverService(small_config(workers=1))
        first = svc.submit(slow)
        time.sleep(0.05)  # ensure the worker has the slow solve in flight
        rest = [svc.submit(goe(16, seed=s)) for s in range(8)]
        svc.close(drain=False, timeout=60)
        assert not first.cancelled()        # in-flight work finishes
        first.result(timeout=1)
        cancelled = sum(1 for f in rest if f.cancelled())
        assert cancelled >= 1
        for f in rest:
            if not f.cancelled():
                f.result(timeout=1)
            else:
                with pytest.raises(CancelledError):
                    f.result(timeout=1)

    def test_context_manager_drains(self):
        with SolverService(small_config()) as svc:
            fut = svc.submit(goe(16, seed=1), method="dense")
        assert fut.done() and fut.result().eigenvalues.shape == (16,)
