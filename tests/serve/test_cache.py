"""Unit tests for the content-addressed LRU result cache."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.bench.workloads import goe
from repro.serve.cache import ResultCache, canonical_params, make_cache_key


def fake_result(n: int = 4, vectors: bool = True):
    return SimpleNamespace(
        eigenvalues=np.arange(n, dtype=np.float64),
        eigenvectors=np.eye(n) if vectors else None,
        tridiag=None,
    )


class TestCanonicalParams:
    def test_stable_and_order_independent(self):
        a = canonical_params({"solver": "dc", "compute_vectors": True})
        b = canonical_params({"compute_vectors": True, "solver": "dc"})
        assert a == b and a is not None

    def test_distinguishes_values(self):
        a = canonical_params({"compute_vectors": True})
        b = canonical_params({"compute_vectors": False})
        assert a != b

    def test_scalar_types_accepted(self):
        assert canonical_params(
            {"s": "x", "i": 3, "f": 1.5, "b": False, "n": None}
        ) is not None

    def test_non_scalar_bypasses(self):
        assert canonical_params({"backend": object()}) is None
        assert canonical_params({"hook": lambda: None}) is None
        assert canonical_params({"arr": np.zeros(3)}) is None

    def test_empty_params(self):
        assert canonical_params({}) == ""


class TestMakeCacheKey:
    def test_identical_inputs_share_key(self):
        A = goe(6, seed=0)
        k1 = make_cache_key(A, {"solver": "dc"}, "numpy")
        k2 = make_cache_key(A.copy(), {"solver": "dc"}, "numpy")
        assert k1 == k2

    def test_any_difference_changes_key(self):
        A = goe(6, seed=0)
        base = make_cache_key(A, {"solver": "dc"}, "numpy")
        B = A.copy()
        B[0, 0] = np.nextafter(B[0, 0], np.inf)
        assert make_cache_key(B, {"solver": "dc"}, "numpy") != base
        assert make_cache_key(A, {"solver": "qr"}, "numpy") != base
        assert make_cache_key(A, {"solver": "dc"}, "torch") != base

    def test_non_scalar_params_uncacheable(self):
        assert make_cache_key(goe(4, seed=1), {"backend": object()}, "numpy") is None


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is None
        res = fake_result()
        cache.put("k", res)
        assert cache.get("k") is res
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", fake_result())
        cache.put("b", fake_result())
        cache.get("a")          # promote a; b is now the LRU entry
        cache.put("c", fake_result())
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_none_key_is_transparent(self):
        cache = ResultCache(max_entries=2)
        cache.put(None, fake_result())
        assert cache.get(None) is None
        stats = cache.stats()
        # uncacheable requests must not pollute the counters
        assert stats["hits"] == 0 and stats["misses"] == 0 and len(cache) == 0

    def test_zero_capacity_disables(self):
        cache = ResultCache(max_entries=0)
        cache.put("k", fake_result())
        assert cache.get("k") is None and len(cache) == 0

    def test_entries_are_frozen(self):
        cache = ResultCache(max_entries=2)
        res = fake_result()
        cache.put("k", res)
        got = cache.get("k")
        with pytest.raises(ValueError):
            got.eigenvalues[0] = 99.0
        with pytest.raises(ValueError):
            got.eigenvectors[0, 0] = 99.0

    def test_clear(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", fake_result())
        cache.clear()
        assert len(cache) == 0 and cache.get("k") is None
