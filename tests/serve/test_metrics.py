"""Unit tests for the service metric primitives."""

from __future__ import annotations

import threading

import pytest

from repro.backend.context import StageEvent
from repro.serve.metrics import (
    CountHistogram,
    Counter,
    ServiceMetrics,
    StageTimes,
    ValueHistogram,
)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_concurrent_increments(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestValueHistogram:
    def test_empty_snapshot(self):
        assert ValueHistogram().snapshot() == {"count": 0}

    def test_summary_statistics(self):
        h = ValueHistogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert set(snap) >= {"p50", "p90", "p99"}
        assert snap["p50"] == pytest.approx(2.5)

    def test_reservoir_bounds_memory_but_not_counts(self):
        h = ValueHistogram(max_samples=8)
        for v in range(100):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100          # exact over the full stream
        assert snap["min"] == 0.0 and snap["max"] == 99.0
        assert snap["p50"] >= 90.0           # percentiles from the window


class TestCountHistogram:
    def test_counts_and_sorted_keys(self):
        h = CountHistogram()
        for v in [3, 1, 3, 2, 3]:
            h.observe(v)
        assert h.snapshot() == {"1": 1, "2": 1, "3": 3}
        assert h.total_observations == 5


class TestStageTimes:
    def test_accumulates_end_events_only(self):
        st = StageTimes()
        st.hook(StageEvent("band_reduction", "start", "numpy"))
        st.hook(StageEvent("band_reduction", "end", "numpy", duration_s=0.5))
        st.hook(StageEvent("band_reduction", "end", "numpy", duration_s=0.25))
        snap = st.snapshot()
        assert snap == {
            "band_reduction": {"seconds": pytest.approx(0.75), "count": 2}
        }


class TestServiceMetrics:
    def test_snapshot_schema(self):
        m = ServiceMetrics()
        m.submitted.inc()
        m.latency_s.observe(0.01)
        m.batch_sizes.observe(2)
        snap = m.snapshot()
        assert set(snap) == {
            "submitted", "completed", "failed", "rejected", "cancelled",
            "cache_hits_at_submit", "coalesced", "batches", "stacked_batches",
            "latency_s", "queue_wait_s", "batch_sizes",
            "queue_depth_at_dequeue", "stage_times", "resilience",
            "precision",
        }
        assert set(snap["precision"]) == {
            "refinement_iterations", "escalations",
        }
        assert set(snap["resilience"]) == {
            "verifications", "verification_failures", "escalations",
            "fallback_exhausted", "worker_crashes", "worker_respawns",
            "crash_requeues", "deadline_expired", "backend_faults",
            "breaker_fallbacks", "residuals", "orth_errors",
        }
        assert snap["submitted"] == 1
        assert snap["latency_s"]["count"] == 1
        assert snap["batch_sizes"] == {"2": 1}


class TestDCStageAttribution:
    def test_dc_substages_surface_in_service_stats(self):
        """Worker contexts forward the D&C merge sub-stage events, so
        `stats()` attributes solver time below `tridiag_solver`."""
        import numpy as np

        from repro.serve import ServiceConfig, SolverService

        rng = np.random.default_rng(5)
        g = rng.standard_normal((48, 48))
        A = (g + g.T) / 2.0
        cfg = ServiceConfig(workers=1, dense_fastpath_max_n=0, cache_entries=0)
        with SolverService(cfg) as svc:
            svc.submit(A).result(timeout=60)
            stage_times = svc.stats()["metrics"]["stage_times"]
        assert {"dc_deflate", "dc_secular", "dc_gemm"} <= set(stage_times)
        assert all(v["seconds"] >= 0.0 for v in stage_times.values())
