"""Unit tests for Householder reflectors and WY accumulations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.householder import (
    WYAccumulator,
    accumulate_wy,
    apply_householder_left,
    apply_householder_right,
    apply_householder_two_sided,
    batched_make_householder,
    build_q_from_compact_wy,
    build_q_from_wy,
    larft,
    make_householder,
    merge_wy,
)


def dense_h(v: np.ndarray, tau: float) -> np.ndarray:
    return np.eye(v.size) - tau * np.outer(v, v)


class TestMakeHouseholder:
    def test_annihilates_tail(self, rng):
        x = rng.standard_normal(9)
        v, tau, beta = make_householder(x)
        y = dense_h(v, tau) @ x
        assert abs(y[0] - beta) < 1e-14
        assert np.max(np.abs(y[1:])) < 1e-13

    def test_norm_preserved(self, rng):
        x = rng.standard_normal(12)
        _, _, beta = make_householder(x)
        assert abs(abs(beta) - np.linalg.norm(x)) < 1e-12

    def test_unit_leading_element(self, rng):
        v, _, _ = make_householder(rng.standard_normal(5))
        assert v[0] == 1.0

    def test_sign_avoids_cancellation(self):
        # beta must have the opposite sign of x[0].
        v, tau, beta = make_householder(np.array([3.0, 4.0]))
        assert beta == -5.0

    def test_already_annihilated_gives_identity(self):
        x = np.array([2.5, 0.0, 0.0])
        v, tau, beta = make_householder(x)
        assert tau == 0.0
        assert beta == 2.5

    def test_length_one_vector(self):
        v, tau, beta = make_householder(np.array([-7.0]))
        assert tau == 0.0 and beta == -7.0

    def test_reflector_is_orthogonal_and_symmetric(self, rng):
        v, tau, _ = make_householder(rng.standard_normal(7))
        H = dense_h(v, tau)
        assert np.linalg.norm(H @ H - np.eye(7)) < 1e-13
        assert np.linalg.norm(H - H.T) < 1e-14

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_householder(np.zeros(0))

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            make_householder(np.zeros((3, 3)))


class TestApplications:
    def test_left_matches_dense(self, rng):
        v, tau, _ = make_householder(rng.standard_normal(6))
        C = rng.standard_normal((6, 4))
        expect = dense_h(v, tau) @ C
        apply_householder_left(C, v, tau)
        assert np.allclose(C, expect, atol=1e-13)

    def test_right_matches_dense(self, rng):
        v, tau, _ = make_householder(rng.standard_normal(6))
        C = rng.standard_normal((4, 6))
        expect = C @ dense_h(v, tau)
        apply_householder_right(C, v, tau)
        assert np.allclose(C, expect, atol=1e-13)

    def test_two_sided_matches_dense(self, rng):
        v, tau, _ = make_householder(rng.standard_normal(6))
        B = rng.standard_normal((6, 6))
        B = (B + B.T) / 2
        H = dense_h(v, tau)
        expect = H @ B @ H
        apply_householder_two_sided(B, v, tau)
        assert np.allclose(B, expect, atol=1e-12)

    def test_two_sided_preserves_symmetry(self, rng):
        v, tau, _ = make_householder(rng.standard_normal(8))
        B = rng.standard_normal((8, 8))
        B = (B + B.T) / 2
        apply_householder_two_sided(B, v, tau)
        assert np.linalg.norm(B - B.T) < 1e-13

    def test_tau_zero_is_noop(self, rng):
        C = rng.standard_normal((5, 5))
        C0 = C.copy()
        apply_householder_left(C, np.ones(5), 0.0)
        apply_householder_right(C, np.ones(5), 0.0)
        assert np.array_equal(C, C0)


class TestWYAccumulator:
    def test_matches_explicit_product(self, rng):
        m, k = 10, 4
        acc = WYAccumulator(m)
        expect = np.eye(m)
        for _ in range(k):
            v, tau, _ = make_householder(rng.standard_normal(m))
            acc.append(v, tau)
            expect = expect @ dense_h(v, tau)
        assert np.allclose(acc.q(), expect, atol=1e-13)

    def test_growth_beyond_capacity(self, rng):
        acc = WYAccumulator(6, capacity=1)
        for _ in range(5):
            v, tau, _ = make_householder(rng.standard_normal(6))
            acc.append(v, tau)
        assert acc.k == 5
        assert acc.W.shape == (6, 5)

    def test_q_is_orthogonal(self, rng):
        acc = WYAccumulator(8)
        for _ in range(3):
            v, tau, _ = make_householder(rng.standard_normal(8))
            acc.append(v, tau)
        Q = acc.q()
        assert np.linalg.norm(Q.T @ Q - np.eye(8)) < 1e-13

    def test_shape_mismatch_rejected(self):
        acc = WYAccumulator(5)
        with pytest.raises(ValueError):
            acc.append(np.ones(4), 1.0)

    def test_accumulate_wy_equivalent(self, rng):
        m, k = 9, 3
        V = np.zeros((m, k))
        taus = np.zeros(k)
        for j in range(k):
            v, tau, _ = make_householder(rng.standard_normal(m))
            V[:, j] = v
            taus[j] = tau
        W, Y = accumulate_wy(V, taus)
        acc = WYAccumulator(m)
        for j in range(k):
            acc.append(V[:, j], taus[j])
        assert np.allclose(W, acc.W) and np.allclose(Y, acc.Y)


class TestCompactWY:
    def test_larft_matches_wy(self, rng):
        m, k = 12, 4
        V = np.zeros((m, k))
        taus = np.zeros(k)
        A = rng.standard_normal((m, k))
        # Build proper unit-lower reflectors from a QR-like sweep.
        for j in range(k):
            v, tau, _ = make_householder(A[j:, j])
            V[j:, j] = v
            taus[j] = tau
            w = tau * (v @ A[j:, j + 1 :])
            A[j:, j + 1 :] -= np.outer(v, w)
        T = larft(V, taus)
        W, Y = accumulate_wy(V, taus)
        Q1 = build_q_from_compact_wy(V, T)
        Q2 = build_q_from_wy(W, Y)
        assert np.allclose(Q1, Q2, atol=1e-13)

    def test_w_equals_v_times_t(self, rng):
        m, k = 10, 3
        V = np.zeros((m, k))
        taus = np.zeros(k)
        for j in range(k):
            x = rng.standard_normal(m - j)
            v, tau, _ = make_householder(x)
            V[j:, j] = v
            taus[j] = tau
        T = larft(V, taus)
        W, Y = accumulate_wy(V, taus)
        assert np.allclose(W, V @ T, atol=1e-13)

    def test_larft_upper_triangular(self, rng):
        V = np.tril(rng.standard_normal((8, 4)))
        np.fill_diagonal(V, 1.0)
        T = larft(V, np.full(4, 0.5))
        assert np.allclose(T, np.triu(T))


class TestMergeWY:
    def test_merge_equals_product(self, rng):
        m = 10
        V1 = np.zeros((m, 2))
        t1 = np.zeros(2)
        V2 = np.zeros((m, 3))
        t2 = np.zeros(3)
        for j in range(2):
            V1[:, j], t1[j], _ = make_householder(rng.standard_normal(m))
        for j in range(3):
            V2[:, j], t2[j], _ = make_householder(rng.standard_normal(m))
        W1, Y1 = accumulate_wy(V1, t1)
        W2, Y2 = accumulate_wy(V2, t2)
        W, Y = merge_wy(W1, Y1, W2, Y2)
        expect = build_q_from_wy(W1, Y1) @ build_q_from_wy(W2, Y2)
        assert np.allclose(build_q_from_wy(W, Y), expect, atol=1e-13)

    def test_merge_widths_add(self, rng):
        W1 = rng.standard_normal((7, 2))
        Y1 = rng.standard_normal((7, 2))
        W2 = rng.standard_normal((7, 3))
        Y2 = rng.standard_normal((7, 3))
        W, Y = merge_wy(W1, Y1, W2, Y2)
        assert W.shape == (7, 5) and Y.shape == (7, 5)


class TestBatchedMakeHouseholder:
    def test_matches_scalar_kernel(self, rng):
        # Agreement is to the last ulp: the batched inner product (einsum)
        # may sum in a different order than the scalar np.dot.
        X = rng.standard_normal((7, 9))
        V, tau, beta = batched_make_householder(X)
        for s in range(7):
            v_s, tau_s, beta_s = make_householder(X[s])
            assert np.allclose(V[s], v_s, rtol=1e-14, atol=0.0)
            assert np.isclose(tau[s], tau_s, rtol=1e-14, atol=0.0)
            assert np.isclose(beta[s], beta_s, rtol=1e-14, atol=0.0)

    def test_annihilates_all_tails(self, rng):
        X = rng.standard_normal((5, 6))
        V, tau, beta = batched_make_householder(X)
        for s in range(5):
            y = dense_h(V[s], tau[s]) @ X[s]
            assert abs(y[0] - beta[s]) < 1e-12
            assert np.max(np.abs(y[1:])) < 1e-12

    def test_already_annihilated_rows(self, rng):
        # Mixed batch: rows with zero tails take the tau == 0 identity
        # path without disturbing their neighbours.
        X = rng.standard_normal((4, 5))
        X[1, 1:] = 0.0
        X[3, 1:] = 0.0
        V, tau, beta = batched_make_householder(X)
        assert tau[1] == 0.0 and beta[1] == X[1, 0]
        assert np.array_equal(V[1], np.eye(5)[0])
        for s in (0, 2):
            v_s, tau_s, beta_s = make_householder(X[s])
            assert np.allclose(V[s], v_s, rtol=1e-14, atol=0.0)
            assert np.isclose(tau[s], tau_s, rtol=1e-14, atol=0.0)
            assert np.isclose(beta[s], beta_s, rtol=1e-14, atol=0.0)

    def test_length_one_vectors(self, rng):
        X = rng.standard_normal((3, 1))
        V, tau, beta = batched_make_householder(X)
        assert np.array_equal(V, np.ones((3, 1)))
        assert np.array_equal(tau, np.zeros(3))
        assert np.array_equal(beta, X[:, 0])

    def test_input_not_modified(self, rng):
        X = rng.standard_normal((4, 6))
        X0 = X.copy()
        batched_make_householder(X)
        assert np.array_equal(X, X0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            batched_make_householder(np.zeros(5))
        with pytest.raises(ValueError):
            batched_make_householder(np.zeros((3, 0)))
