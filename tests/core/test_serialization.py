"""Unit tests for TridiagResult serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import goe
from repro.core.serialization import load_tridiag, save_tridiag
from repro.core.tridiag import tridiagonalize


@pytest.fixture
def tmp_npz(tmp_path):
    return tmp_path / "factor.npz"


class TestRoundTrip:
    @pytest.mark.parametrize("method", ["dbbr", "sbr", "direct", "tile"])
    def test_q_application_identical(self, tmp_npz, method, rng):
        A = goe(48, seed=60)
        res = tridiagonalize(A, method=method, bandwidth=4, second_block=8)
        save_tridiag(tmp_npz, res)
        loaded = load_tridiag(tmp_npz)
        assert np.array_equal(loaded.d, res.d)
        assert np.array_equal(loaded.e, res.e)
        assert loaded.method == res.method
        X = rng.standard_normal((48, 5))
        Y1, Y2 = X.copy(), X.copy()
        res.apply_q(Y1)
        loaded.apply_q(Y2)
        assert np.array_equal(Y1, Y2)

    def test_back_transform_settings_preserved(self, tmp_npz):
        A = goe(30, seed=61)
        res = tridiagonalize(A, method="sbr", bandwidth=3,
                             back_transform="recursive", back_transform_group=7)
        save_tridiag(tmp_npz, res)
        loaded = load_tridiag(tmp_npz)
        assert loaded.back_transform_method == "recursive"
        assert loaded.back_transform_group == 7

    def test_reconstruction_after_reload(self, tmp_npz):
        from repro.band.storage import dense_from_band

        A = goe(40, seed=62)
        save_tridiag(tmp_npz, tridiagonalize(A, bandwidth=4, second_block=8))
        loaded = load_tridiag(tmp_npz)
        T = dense_from_band(loaded.d, loaded.e)
        Q = loaded.q()
        assert np.linalg.norm(Q @ T @ Q.T - A) / np.linalg.norm(A) < 1e-12

    def test_eigenvector_pipeline_from_disk(self, tmp_npz):
        from repro.eig.dc import dc_eigh

        A = goe(36, seed=63)
        save_tridiag(tmp_npz, tridiagonalize(A, bandwidth=3, second_block=6))
        loaded = load_tridiag(tmp_npz)
        lam, U = dc_eigh(loaded.d, loaded.e)
        V = np.array(U)
        loaded.apply_q(V)
        assert np.linalg.norm(A @ V - V * lam) / np.linalg.norm(A) < 1e-12

    def test_tiny_matrix_no_reflectors(self, tmp_npz):
        A = goe(2, seed=64)  # already tridiagonal: no panels, no sweeps
        res = tridiagonalize(A, method="sbr", bandwidth=4)
        save_tridiag(tmp_npz, res)
        loaded = load_tridiag(tmp_npz)
        assert loaded.band_result is not None
        assert len(loaded.band_result.blocks) == 0

    def test_version_check(self, tmp_npz):
        A = goe(10, seed=65)
        save_tridiag(tmp_npz, tridiagonalize(A, bandwidth=2, second_block=4))
        data = dict(np.load(tmp_npz))
        data["format_version"] = np.array(99)
        np.savez_compressed(tmp_npz, **data)
        with pytest.raises(ValueError):
            load_tridiag(tmp_npz)

    def test_file_is_compact(self, tmp_npz):
        n = 64
        A = goe(n, seed=66)
        save_tridiag(tmp_npz, tridiagonalize(A, bandwidth=4, second_block=16))
        # Factors are O(n^2); the archive should stay within a small
        # multiple of the dense matrix itself.
        assert tmp_npz.stat().st_size < 12 * n * n * 8


class TestEVDRoundTrip:
    def test_round_trip_with_source_matrix(self, tmp_path):
        import repro
        from repro.core.serialization import load_evd, save_evd

        A = goe(40, seed=61)
        res = repro.eigh(A)
        path = tmp_path / "evd.npz"
        save_evd(path, res, A=A)
        loaded, A_back = load_evd(path)
        assert np.array_equal(loaded.eigenvalues, res.eigenvalues)
        assert np.array_equal(loaded.eigenvectors, res.eigenvectors)
        assert np.array_equal(A_back, A)
        assert loaded.solver == res.solver
        assert loaded.tridiag is None

    def test_round_trip_eigenvalues_only_no_matrix(self, tmp_path):
        import repro
        from repro.core.serialization import load_evd, save_evd

        A = goe(24, seed=62)
        res = repro.eigh(A, compute_vectors=False)
        path = tmp_path / "lam.npz"
        save_evd(path, res)
        loaded, A_back = load_evd(path)
        assert np.array_equal(loaded.eigenvalues, res.eigenvalues)
        assert loaded.eigenvectors is None and A_back is None

    def test_load_evd_rejects_tridiag_archive(self, tmp_path):
        from repro.core.serialization import load_evd

        A = goe(24, seed=63)
        res = tridiagonalize(A, method="dbbr", bandwidth=4, second_block=8)
        path = tmp_path / "tri.npz"
        save_tridiag(path, res)
        with pytest.raises(ValueError, match="not an EVD archive"):
            load_evd(path)

    def test_loaded_result_verifies(self, tmp_path):
        import repro
        from repro.core.serialization import load_evd, save_evd
        from repro.resilience import verify_evd

        A = goe(32, seed=64)
        path = tmp_path / "evd.npz"
        save_evd(path, repro.eigh(A), A=A)
        result, A_back = load_evd(path)
        assert verify_evd(A_back, result).ok
