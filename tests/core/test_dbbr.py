"""Unit tests for double-blocking band reduction (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.ops import bandwidth_of, symmetric_error
from repro.core.dbbr import dbbr
from repro.core.sbr import sbr
from tests.conftest import make_symmetric


class TestDBBRStructure:
    @pytest.mark.parametrize(
        "n,b,k", [(32, 2, 8), (40, 4, 16), (50, 5, 20), (64, 8, 8), (45, 3, 12)]
    )
    def test_band_structure(self, n, b, k):
        A = make_symmetric(n, seed=n + b + k)
        res = dbbr(A, b, k)
        assert bandwidth_of(res.band, tol=1e-10) <= b
        assert symmetric_error(res.band) < 1e-12

    def test_k_equals_b_degenerates_to_sbr(self):
        A = make_symmetric(30, seed=2)
        r1 = dbbr(A, 4, 4, syr2k_kind="reference")
        r2 = sbr(A, 4)
        assert np.allclose(r1.band, r2.band, atol=1e-12)

    def test_k_not_multiple_of_b_rejected(self):
        with pytest.raises(ValueError):
            dbbr(make_symmetric(20), 4, 10)

    def test_k_smaller_than_b_rejected(self):
        with pytest.raises(ValueError):
            dbbr(make_symmetric(20), 8, 4)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            dbbr(make_symmetric(20), 0, 4)

    def test_input_not_modified(self):
        A = make_symmetric(25, seed=4)
        A0 = A.copy()
        dbbr(A, 3, 9)
        assert np.array_equal(A, A0)


class TestDBBRCorrectness:
    @pytest.mark.parametrize("n,b,k", [(30, 3, 9), (48, 4, 16), (41, 5, 15)])
    def test_similarity_transform(self, n, b, k):
        A = make_symmetric(n, seed=n * 3 + k)
        res = dbbr(A, b, k)
        err = np.linalg.norm(res.reconstruct() - A) / np.linalg.norm(A)
        assert err < 1e-13

    @pytest.mark.parametrize("kind", ["reference", "rect", "square"])
    def test_all_syr2k_kinds_agree(self, kind):
        A = make_symmetric(36, seed=6)
        ref = dbbr(A, 4, 12, syr2k_kind="reference")
        got = dbbr(A, 4, 12, syr2k_kind=kind)
        assert np.allclose(got.band, ref.band, atol=1e-12)

    def test_same_band_as_sbr(self):
        # DBBR computes the *same* reduction as SBR, just reordered:
        # identical panels -> identical band matrix (up to roundoff).
        A = make_symmetric(40, seed=8)
        r_sbr = sbr(A, 4)
        r_dbbr = dbbr(A, 4, 16, syr2k_kind="reference")
        assert np.allclose(r_dbbr.band, r_sbr.band, atol=1e-10)

    def test_same_blocks_as_sbr(self):
        A = make_symmetric(32, seed=10)
        r_sbr = sbr(A, 4)
        r_dbbr = dbbr(A, 4, 8, syr2k_kind="reference")
        assert len(r_sbr.blocks) == len(r_dbbr.blocks)
        for b1, b2 in zip(r_sbr.blocks, r_dbbr.blocks):
            assert b1.offset == b2.offset
            assert np.allclose(b1.Y, b2.Y, atol=1e-10)

    def test_spectrum_preserved(self):
        A = make_symmetric(44, seed=12)
        res = dbbr(A, 4, 16)
        assert np.max(
            np.abs(np.linalg.eigvalsh(A) - np.linalg.eigvalsh(res.band))
        ) < 1e-11

    def test_short_final_panel_and_block(self):
        # nelim not divisible by k nor b: exercises both tail paths.
        A = make_symmetric(37, seed=14)
        res = dbbr(A, 4, 12)
        err = np.linalg.norm(res.reconstruct() - A) / np.linalg.norm(A)
        assert err < 1e-13

    def test_k_spanning_whole_matrix(self):
        A = make_symmetric(26, seed=16)
        res = dbbr(A, 2, 24)  # one outer block covers everything
        err = np.linalg.norm(res.reconstruct() - A) / np.linalg.norm(A)
        assert err < 1e-13

    def test_dbbr_extra_flops_grow_with_k(self):
        A = make_symmetric(48, seed=18)
        f_small = dbbr(A, 4, 4).flops
        f_large = dbbr(A, 4, 16).flops
        # Deferral costs extra look-ahead GEMMs.
        assert f_large > f_small
