"""Unit tests for the pipelined (GPU-style) bulge chasing schedule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.ops import random_symmetric_band
from repro.core.bc_pipeline import (
    SAFETY_TASKS,
    bulge_chase_pipelined,
    pipeline_schedule,
)
from repro.core.bulge_chasing import bulge_chase, num_tasks_in_sweep


class TestSchedule:
    def test_all_tasks_scheduled_once(self):
        n, b = 30, 3
        rounds, stats = pipeline_schedule(n, b)
        total = sum(num_tasks_in_sweep(n, b, i) for i in range(n - 2))
        scheduled = sum(len(r) for r in rounds)
        assert scheduled == total == stats.total_tasks

    def test_gcom_rule_never_violated(self):
        # Sweep i's task t must come after sweep i-1's task t + SAFETY - 1.
        rounds, _ = pipeline_schedule(40, 4)
        finished: dict[tuple[int, int], int] = {}
        for r, tasks in enumerate(rounds):
            for t in tasks:
                finished[(t.sweep, t.step)] = r
        for (sweep, step), r in finished.items():
            dep = (sweep - 1, step + SAFETY_TASKS - 1)
            if dep in finished:
                assert finished[dep] < r or (
                    finished[dep] == r and False
                ), f"dependency violated at {(sweep, step)}"

    def test_same_sweep_tasks_in_order(self):
        rounds, _ = pipeline_schedule(30, 3)
        pos: dict[tuple[int, int], int] = {}
        for r, tasks in enumerate(rounds):
            for t in tasks:
                pos[(t.sweep, t.step)] = r
        for (sweep, step), r in pos.items():
            if (sweep, step + 1) in pos:
                assert pos[(sweep, step + 1)] > r

    def test_max_sweeps_respected(self):
        rounds, stats = pipeline_schedule(40, 3, max_sweeps=2)
        for tasks in rounds:
            assert len({t.sweep for t in tasks}) <= 2
        assert stats.max_parallel <= 2

    def test_serial_mode_one_task_per_round(self):
        rounds, stats = pipeline_schedule(25, 3, max_sweeps=1)
        assert all(len(r) == 1 for r in rounds)
        assert stats.mean_parallel == 1.0

    def test_more_sweeps_fewer_rounds(self):
        _, s1 = pipeline_schedule(50, 4, max_sweeps=1)
        _, s4 = pipeline_schedule(50, 4, max_sweeps=4)
        _, sinf = pipeline_schedule(50, 4)
        assert s1.rounds > s4.rounds >= sinf.rounds

    def test_stalls_appear_when_capped(self):
        _, s_capped = pipeline_schedule(60, 3, max_sweeps=2)
        _, s_free = pipeline_schedule(60, 3)
        assert s_capped.stall_rounds > 0
        assert s_free.rounds <= s_capped.rounds

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            pipeline_schedule(20, 3, max_sweeps=0)

    def test_unbounded_rounds_near_3n(self):
        # Law 1+2 bound: fully pipelined completion in ~3n rounds.
        n = 60
        _, stats = pipeline_schedule(n, 4)
        assert stats.rounds <= 3 * n
        assert stats.rounds >= n  # it cannot beat one sweep's own depth


class TestPipelinedNumerics:
    @pytest.mark.parametrize("S", [None, 1, 2, 7, 100])
    def test_matches_sequential(self, rng, S):
        B = random_symmetric_band(32, 4, rng)
        seq = bulge_chase(B, 4)
        pip, _ = bulge_chase_pipelined(B, 4, max_sweeps=S)
        assert np.array_equal(seq.d, pip.d)
        assert np.array_equal(seq.e, pip.e)

    def test_q1_valid_in_pipeline_order(self, rng):
        from repro.band.storage import dense_from_band

        B = random_symmetric_band(28, 3, rng)
        pip, _ = bulge_chase_pipelined(B, 3, max_sweeps=4)
        T = dense_from_band(pip.d, pip.e)
        Q1 = pip.q1()
        assert np.linalg.norm(Q1 @ T @ Q1.T - B) / np.linalg.norm(B) < 1e-12

    def test_stats_returned_for_trivial_input(self, rng):
        B = random_symmetric_band(10, 1, rng)
        res, stats = bulge_chase_pipelined(B, 1)
        assert stats.total_tasks == 0
        assert res.d.size == 10
