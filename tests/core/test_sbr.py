"""Unit tests for single-blocking successive band reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.ops import bandwidth_of, off_band_norm, symmetric_error
from repro.core.sbr import sbr
from tests.conftest import make_symmetric


class TestSBRStructure:
    @pytest.mark.parametrize("n,b", [(20, 2), (32, 4), (45, 5), (64, 8), (30, 1)])
    def test_band_structure(self, n, b):
        A = make_symmetric(n, seed=n * 7 + b)
        res = sbr(A, b)
        assert bandwidth_of(res.band, tol=1e-10) <= b
        assert off_band_norm(res.band, b) == 0.0  # scrubbed exactly

    def test_band_is_symmetric(self):
        A = make_symmetric(40, seed=3)
        res = sbr(A, 4)
        assert symmetric_error(res.band) < 1e-12

    def test_bandwidth_one_is_tridiagonal(self):
        A = make_symmetric(25, seed=9)
        res = sbr(A, 1)
        assert bandwidth_of(res.band, tol=1e-10) <= 1

    def test_small_matrix_noop(self):
        A = make_symmetric(3, seed=1)
        res = sbr(A, 4)
        # n <= b+1: already "band", no blocks recorded.
        assert len(res.blocks) == 0
        assert np.allclose(res.band, A)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            sbr(make_symmetric(10), 0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            sbr(np.zeros((4, 5)), 2)

    def test_input_not_modified(self):
        A = make_symmetric(20, seed=5)
        A0 = A.copy()
        sbr(A, 3)
        assert np.array_equal(A, A0)


class TestSBRCorrectness:
    @pytest.mark.parametrize("n,b", [(24, 3), (40, 4), (33, 5), (50, 7)])
    def test_similarity_transform(self, n, b):
        A = make_symmetric(n, seed=n + b)
        res = sbr(A, b)
        err = np.linalg.norm(res.reconstruct() - A) / np.linalg.norm(A)
        assert err < 1e-13

    def test_q_orthogonal(self):
        A = make_symmetric(36, seed=11)
        res = sbr(A, 4)
        Q = res.q()
        assert np.linalg.norm(Q.T @ Q - np.eye(36)) < 1e-13

    def test_spectrum_preserved(self):
        A = make_symmetric(30, seed=13)
        res = sbr(A, 3)
        lam_a = np.linalg.eigvalsh(A)
        lam_b = np.linalg.eigvalsh(res.band)
        assert np.max(np.abs(lam_a - lam_b)) < 1e-11

    def test_short_final_panel(self):
        # n - b - 1 not divisible by b: the strip left-update path.
        A = make_symmetric(23, seed=17)
        res = sbr(A, 3)  # nelim = 19, panels 3+3+...+1
        err = np.linalg.norm(res.reconstruct() - A) / np.linalg.norm(A)
        assert err < 1e-13

    def test_blocks_have_increasing_offsets(self):
        A = make_symmetric(40, seed=19)
        res = sbr(A, 4)
        offsets = [blk.offset for blk in res.blocks]
        assert offsets == sorted(offsets)
        assert all(o >= 4 for o in offsets)

    def test_flops_accumulated(self):
        A = make_symmetric(32, seed=21)
        res = sbr(A, 4)
        # Dominated by 4/3 n^3; must be within a small factor.
        assert 0.3 * (4 / 3) * 32**3 < res.flops < 5 * (4 / 3) * 32**3

    def test_band_matrix_input_stays_band(self):
        from repro.band.ops import random_symmetric_band

        A = random_symmetric_band(30, 2)
        res = sbr(A, 4)  # already narrower than target
        assert np.allclose(res.band, A, atol=1e-12)
