"""Unit tests for the top-level tridiagonalization driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.storage import dense_from_band
from repro.core.tridiag import auto_params, tridiagonalize
from tests.conftest import make_symmetric


class TestDriver:
    @pytest.mark.parametrize("method", ["dbbr", "sbr", "direct", "tile"])
    def test_reconstruction(self, method):
        A = make_symmetric(48, seed=42)
        res = tridiagonalize(A, method=method, bandwidth=4, second_block=12)
        T = dense_from_band(res.d, res.e)
        Q = res.q()
        assert np.linalg.norm(Q @ T @ Q.T - A) / np.linalg.norm(A) < 1e-12

    @pytest.mark.parametrize("method", ["dbbr", "sbr", "direct", "tile"])
    def test_same_spectrum_across_methods(self, method):
        A = make_symmetric(40, seed=43)
        lam_ref = np.linalg.eigvalsh(A)
        res = tridiagonalize(A, method=method, bandwidth=3, second_block=9)
        T = dense_from_band(res.d, res.e)
        assert np.max(np.abs(np.linalg.eigvalsh(T) - lam_ref)) < 1e-11

    def test_apply_q_matches_materialized(self, rng):
        A = make_symmetric(30, seed=44)
        res = tridiagonalize(A, method="dbbr", bandwidth=3, second_block=6)
        X = rng.standard_normal((30, 4))
        Y = X.copy()
        res.apply_q(Y)
        assert np.allclose(Y, res.q() @ X, atol=1e-12)

    def test_apply_q_transpose_inverts(self, rng):
        A = make_symmetric(26, seed=45)
        for method in ["dbbr", "sbr", "direct", "tile"]:
            res = tridiagonalize(A, method=method, bandwidth=3, second_block=6)
            X = rng.standard_normal((26, 3))
            Y = X.copy()
            res.apply_q(Y)
            res.apply_q_transpose(Y)
            assert np.allclose(X, Y, atol=1e-12), method

    def test_pipelined_and_sequential_identical(self):
        A = make_symmetric(36, seed=46)
        kw = dict(method="dbbr", bandwidth=4, second_block=8)
        # The per-task pipelined driver only reorders commuting tasks, so
        # it is bit-identical to the sequential chase.
        r1 = tridiagonalize(A, pipelined=True, bc_driver="pipelined", **kw)
        r2 = tridiagonalize(A, pipelined=False, **kw)
        assert np.array_equal(r1.d, r2.d)
        assert np.array_equal(r1.e, r2.e)
        # The wavefront-batched default evaluates the same updates with a
        # different summation order, so it agrees to roundoff instead.
        r3 = tridiagonalize(A, pipelined=True, **kw)
        assert np.allclose(r3.d, r2.d, atol=1e-12)
        assert np.allclose(r3.e, r2.e, atol=1e-12)

    def test_unknown_bc_driver_rejected(self):
        with pytest.raises(ValueError):
            tridiagonalize(make_symmetric(12), bc_driver="warp")

    def test_pipeline_stats_present_when_pipelined(self):
        A = make_symmetric(30, seed=47)
        res = tridiagonalize(A, method="dbbr", bandwidth=3, second_block=6)
        assert res.pipeline_stats is not None
        assert res.pipeline_stats.total_tasks > 0
        res2 = tridiagonalize(A, method="sbr", bandwidth=3, pipelined=False)
        assert res2.pipeline_stats is None

    def test_max_sweeps_forwarded(self):
        A = make_symmetric(30, seed=48)
        res = tridiagonalize(
            A, method="dbbr", bandwidth=3, second_block=6, max_sweeps=2
        )
        assert res.pipeline_stats.max_parallel <= 2

    def test_auto_params(self):
        A = make_symmetric(64, seed=49)
        res = tridiagonalize(A)  # everything defaulted
        assert res.bandwidth >= 1
        T = dense_from_band(res.d, res.e)
        assert np.max(
            np.abs(np.linalg.eigvalsh(T) - np.linalg.eigvalsh(A))
        ) < 1e-11

    def test_auto_params_contract(self):
        for n in [8, 50, 300, 5000]:
            b, k = auto_params(n)
            assert b >= 2 and k >= b and k % b == 0

    @pytest.mark.parametrize("n", range(5, 17))
    def test_auto_params_tiny_n_clamped(self, n):
        # k must never exceed n (DBBR would defer updates past the
        # trailing edge); the invariants still hold at every tiny size.
        b, k = auto_params(n)
        assert b >= 2 and k >= b and k % b == 0
        assert k <= n

    @pytest.mark.parametrize("n", range(5, 17))
    def test_tiny_n_end_to_end(self, n):
        # The defaulted driver must actually work at these sizes, not
        # just produce admissible parameters.
        A = make_symmetric(n, seed=60 + n)
        res = tridiagonalize(A)
        T = dense_from_band(res.d, res.e)
        assert np.max(
            np.abs(np.linalg.eigvalsh(T) - np.linalg.eigvalsh(A))
        ) < 1e-11

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            tridiagonalize(make_symmetric(10), method="quantum")

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            tridiagonalize(np.zeros((3, 4)))

    def test_second_block_rounded_to_multiple(self):
        A = make_symmetric(40, seed=50)
        # k=10 with b=4 -> rounded down to 8.
        res = tridiagonalize(A, method="dbbr", bandwidth=4, second_block=10)
        T = dense_from_band(res.d, res.e)
        assert np.max(
            np.abs(np.linalg.eigvalsh(T) - np.linalg.eigvalsh(A))
        ) < 1e-11

    def test_back_transform_method_recorded(self):
        A = make_symmetric(24, seed=51)
        res = tridiagonalize(
            A, method="sbr", bandwidth=3, back_transform="recursive"
        )
        assert res.back_transform_method == "recursive"
