"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evd_defaults(self):
        args = build_parser().parse_args(["evd"])
        assert args.n == 300 and args.method == "proposed"

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evd", "--method", "jacobi2"])


class TestCommands:
    def test_evd_runs(self, capsys):
        assert main(["evd", "--n", "80", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "residual" in out and "eigenvalue" in out

    def test_evd_no_vectors(self, capsys):
        assert main(["evd", "--n", "60", "--no-vectors"]) == 0
        out = capsys.readouterr().out
        assert "residual" not in out

    def test_tridiag_runs(self, capsys):
        assert main(["tridiag", "--n", "70", "--method", "dbbr",
                     "--bandwidth", "4", "--second-block", "8"]) == 0
        out = capsys.readouterr().out
        assert "spectrum error" in out and "BC pipeline" in out

    def test_tridiag_direct(self, capsys):
        assert main(["tridiag", "--n", "50", "--method", "direct"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth: 1" in out

    @pytest.mark.parametrize("name", ["table1", "fig5", "fig9", "fig15"])
    def test_figures_render(self, capsys, name):
        assert main(["figure", name]) == 0
        out = capsys.readouterr().out
        assert "vs" in out and len(out.splitlines()) > 5

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            main(["figure", "fig99"])

    def test_simulate_bc(self, capsys):
        assert main(["simulate-bc", "--n", "8192", "--bandwidth", "32",
                     "--sweeps", "64"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "throughput" in out

    def test_simulate_bc_naive_4090(self, capsys):
        assert main(["simulate-bc", "--n", "4096", "--device", "4090",
                     "--naive"]) == 0
        assert "naive" in capsys.readouterr().out

    def test_serve_bench_smoke(self, capsys, tmp_path):
        out_json = tmp_path / "serve.json"
        assert main([
            "serve-bench", "--requests", "12", "--sizes", "16", "24",
            "--unique", "6", "--workers", "2", "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "bit-identical" in out
        import json

        payload = json.loads(out_json.read_text())
        from repro.serve.loadgen import ARTIFACT_SCHEMA_KEYS

        assert all(k in payload for k in ARTIFACT_SCHEMA_KEYS)

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "H100" in out and "4090" in out


class TestVerifyCommand:
    def test_save_then_verify_ok(self, capsys, tmp_path):
        path = str(tmp_path / "r.npz")
        assert main(["evd", "--n", "60", "--save", path]) == 0
        assert main(["verify", path]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "check residual: pass" in out

    def test_verify_fails_on_corrupted_result(self, capsys, tmp_path):
        import numpy as np

        from repro.core.serialization import load_evd, save_evd

        path = str(tmp_path / "r.npz")
        assert main(["evd", "--n", "40", "--save", path]) == 0
        res, A = load_evd(path)
        V = res.eigenvectors.copy()
        V[0, 0] += 0.5
        res.eigenvectors = V
        bad = str(tmp_path / "bad.npz")
        save_evd(bad, res, A=A)
        capsys.readouterr()
        assert main(["verify", bad]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_verify_without_matrix_needs_flag(self, capsys, tmp_path):
        import numpy as np

        import repro
        from repro.core.serialization import save_evd

        rng = np.random.default_rng(3)
        A = rng.standard_normal((24, 24))
        A = (A + A.T) / 2
        path = str(tmp_path / "r.npz")
        save_evd(path, repro.eigh(A))  # no embedded matrix
        assert main(["verify", path]) == 2
        mat = str(tmp_path / "A.npy")
        np.save(mat, A)
        assert main(["verify", path, "--matrix", mat]) == 0


class TestFaultInjectionFlags:
    def test_faults_flag_fails_without_fallback(self, capsys):
        assert main(["evd", "--n", "40",
                     "--faults", "dc.merge:convergence"]) == 1
        assert "ConvergenceError" in capsys.readouterr().err

    def test_faults_flag_recovers_with_chain(self, capsys):
        assert main(["evd", "--n", "40", "--faults", "dc.merge:convergence",
                     "--fallback", "chain"]) == 0
        assert "residual" in capsys.readouterr().out

    def test_env_hook_arms_faults(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "dc.merge:convergence")
        try:
            assert main(["evd", "--n", "40"]) == 1
        finally:
            from repro.resilience import clear_faults

            clear_faults()
