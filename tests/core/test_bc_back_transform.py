"""Unit tests for the blocked BC back transformation (future-work item)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.ops import random_symmetric_band
from repro.core.bc_back_transform import (
    apply_q1_blocked,
    blocked_bc_back_time,
    blocked_q1_blocks,
)
from repro.core.bulge_chasing import bulge_chase
from repro.gpusim import H100
from repro.models.baselines import bc_back_transform_time


@pytest.fixture
def chase(rng):
    n, b = 36, 4
    A = random_symmetric_band(n, b, rng)
    return n, b, bulge_chase(A, b)


class TestBlocking:
    @pytest.mark.parametrize("group", [1, 2, 4, 8, 64])
    def test_matches_scalar_application(self, chase, rng, group):
        n, _, bc = chase
        blocks = blocked_q1_blocks(bc, group=group)
        X = rng.standard_normal((n, 6))
        Y_scalar = X.copy()
        bc.apply_q1(Y_scalar)
        Y_blocked = X.copy()
        apply_q1_blocked(blocks, Y_blocked)
        assert np.allclose(Y_scalar, Y_blocked, atol=1e-12)

    def test_transpose_matches(self, chase, rng):
        n, _, bc = chase
        blocks = blocked_q1_blocks(bc, group=4)
        X = rng.standard_normal((n, 3))
        Y1 = X.copy()
        bc.apply_q1_transpose(Y1)
        Y2 = X.copy()
        apply_q1_blocked(blocks, Y2, transpose=True)
        assert np.allclose(Y1, Y2, atol=1e-12)

    def test_blocked_q_is_orthogonal(self, chase):
        n, _, bc = chase
        blocks = blocked_q1_blocks(bc, group=8)
        Q = np.eye(n)
        apply_q1_blocked(blocks, Q)
        assert np.linalg.norm(Q.T @ Q - np.eye(n)) < 1e-11

    def test_group_one_is_one_block_per_reflector(self, chase):
        _, _, bc = chase
        blocks = blocked_q1_blocks(bc, group=1)
        assert len(blocks) == len(bc.reflectors)
        assert all(b.width == 1 for b in blocks)

    def test_groups_never_cross_sweeps(self, chase):
        _, b, bc = chase
        blocks = blocked_q1_blocks(bc, group=1000)
        # Width can never exceed the longest sweep's task count.
        max_tasks = max(
            sum(1 for r in bc.reflectors if r.sweep == s)
            for s in {r.sweep for r in bc.reflectors}
        )
        assert max(blk.width for blk in blocks) <= max_tasks

    def test_block_row_spans_are_contiguous_windows(self, chase):
        _, b, bc = chase
        for blk in blocked_q1_blocks(bc, group=4):
            # g consecutive chase reflectors span <= (g+1) * b rows.
            assert blk.rows <= (blk.width + 1) * b

    def test_invalid_group(self, chase):
        _, _, bc = chase
        with pytest.raises(ValueError):
            blocked_q1_blocks(bc, group=0)

    def test_empty_reflector_log(self, rng):
        A = random_symmetric_band(10, 1, rng)
        bc = bulge_chase(A, 1)
        assert blocked_q1_blocks(bc, group=4) == []

    def test_pipelined_log_groups_and_stays_exact(self, rng):
        """The pipelined chase records reflectors in interleaved order;
        sweep-major re-sorting is a commuting reorder, so the blocked
        application is still exact AND gets real grouping."""
        from repro.core.bc_pipeline import bulge_chase_pipelined

        n, b = 48, 4
        A = random_symmetric_band(n, b, rng)
        bc, _ = bulge_chase_pipelined(A, b)
        blocks = blocked_q1_blocks(bc, group=16)
        assert len(blocks) < len(bc.reflectors) / 3  # real compression
        X = rng.standard_normal((n, 4))
        Y1 = X.copy()
        bc.apply_q1(Y1)
        Y2 = X.copy()
        apply_q1_blocked(blocks, Y2)
        assert np.allclose(Y1, Y2, atol=1e-12)


class TestCostModel:
    def test_blocked_beats_baseline_past_breakeven(self):
        # The future-work payoff at device scale: the WY width must exceed
        # the baseline's effective per-sweep blocking (~b) before the
        # grouped GEMMs win; past that the gain is substantial.
        n, b = 49152, 32
        scalar = bc_back_transform_time(H100, n, b)
        assert blocked_bc_back_time(H100, n, b, 64) < scalar
        assert blocked_bc_back_time(H100, n, b, 128) < scalar

    def test_monotone_improvement_with_group(self):
        n, b = 49152, 32
        times = [blocked_bc_back_time(H100, n, b, g) for g in (8, 32, 64, 128)]
        assert times == sorted(times, reverse=True)
