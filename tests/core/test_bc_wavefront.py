"""Unit tests for the wavefront-batched bulge chasing engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import ExecutionContext, get_backend
from repro.band.ops import random_symmetric_band
from repro.band.storage import LowerBandStorage, PackedBandStorage, dense_from_band
from repro.core.bc_pipeline import bulge_chase_pipelined, pipeline_schedule
from repro.core.bc_wavefront import (
    WavefrontBCResult,
    bulge_chase_wavefront,
)
from repro.core.bulge_chasing import BulgeChasingResult, bulge_chase
from repro.core.bulge_chasing_band import bulge_chase_band

# Small enough that forward-error amplification between the two (equally
# valid) roundoff trajectories stays well under the strict 1e-12 gate;
# larger sizes are covered by the residual/back-transform tests below.
GRID = [(12, 2), (20, 3), (33, 4), (40, 5), (50, 7), (64, 8), (40, 16)]

# Execution substrates the oracle grid runs on.  numpy must be
# *bit*-identical to the sequential chase's trajectory handling; torch
# (CPU) is importorskip-gated and held to the same 1e-12 gate (select
# with `pytest -k backend`).
BACKEND_NAMES = ["numpy", "torch"]


@pytest.fixture(params=BACKEND_NAMES, ids=[f"backend-{b}" for b in BACKEND_NAMES])
def backend_ctx(request) -> ExecutionContext:
    if request.param != "numpy":
        pytest.importorskip(request.param)
    return ExecutionContext(backend=get_backend(request.param))


class TestMatchesOracle:
    @pytest.mark.parametrize("n,b", GRID)
    def test_d_e_match_sequential(self, rng, backend_ctx, n, b):
        A = random_symmetric_band(n, b, rng)
        seq = bulge_chase(A, b)
        wf, _ = bulge_chase_wavefront(
            LowerBandStorage.from_dense(A, b), ctx=backend_ctx
        )
        tol = 1e-12 if backend_ctx.is_numpy else 1e-10
        assert np.max(np.abs(wf.d - seq.d)) < tol
        assert np.max(np.abs(wf.e - seq.e)) < tol

    def test_numpy_backend_bit_identical(self, rng):
        # backend="numpy" is not merely close — it executes the same
        # instruction stream as the default path, bit for bit.
        n, b = 50, 7
        A = random_symmetric_band(n, b, rng)
        plain, _ = bulge_chase_wavefront(LowerBandStorage.from_dense(A, b))
        ctx = ExecutionContext(backend=get_backend("numpy"))
        viactx, _ = bulge_chase_wavefront(LowerBandStorage.from_dense(A, b), ctx=ctx)
        assert np.array_equal(plain.d, viactx.d)
        assert np.array_equal(plain.e, viactx.e)

    def test_backend_reconstruction(self, rng, backend_ctx):
        n, b = 40, 5
        A = random_symmetric_band(n, b, rng)
        wf, _ = bulge_chase_wavefront(A, b, ctx=backend_ctx)
        Q1 = np.eye(n)
        wf.apply_q1(Q1)
        T = dense_from_band(wf.d, wf.e)
        assert np.linalg.norm(Q1 @ T @ Q1.T - A) / np.linalg.norm(A) < 1e-12

    def test_accepts_packed_and_dense(self, rng):
        A = random_symmetric_band(24, 3, rng)
        r1, _ = bulge_chase_wavefront(LowerBandStorage.from_dense(A, 3))
        r2, _ = bulge_chase_wavefront(PackedBandStorage.from_dense(A, 3))
        r3, _ = bulge_chase_wavefront(A, 3)
        assert np.array_equal(r1.d, r2.d) and np.array_equal(r1.d, r3.d)
        assert np.array_equal(r1.e, r2.e) and np.array_equal(r1.e, r3.e)

    def test_dense_without_bandwidth_rejected(self, rng):
        with pytest.raises(ValueError):
            bulge_chase_wavefront(random_symmetric_band(10, 2, rng))

    def test_residual_at_scale(self, rng):
        # At n = 150 entrywise d/e divergence can exceed 1e-12 (forward
        # error of two different summation orders); the factorization
        # itself must still be machine-precision exact.
        n, b = 150, 6
        A = random_symmetric_band(n, b, rng)
        wf, _ = bulge_chase_wavefront(A, b)
        Q1 = np.eye(n)
        wf.apply_q1(Q1)
        T = dense_from_band(wf.d, wf.e)
        assert np.linalg.norm(Q1 @ T @ Q1.T - A) / np.linalg.norm(A) < 1e-13
        assert np.linalg.norm(Q1.T @ Q1 - np.eye(n)) < 1e-12


class TestReflectorLog:
    def test_log_matches_pipelined_driver(self, rng):
        # Same schedule, same commit order: the materialized scalar log
        # must line up reflector-for-reflector with the per-task driver.
        n, b = 40, 4
        A = random_symmetric_band(n, b, rng)
        wf, _ = bulge_chase_wavefront(LowerBandStorage.from_dense(A, b))
        ref, _ = bulge_chase_pipelined(A, b)
        log = wf.reflectors
        assert len(log) == len(ref.reflectors) == wf.num_reflectors
        for rw, rp in zip(log, ref.reflectors):
            assert (rw.sweep, rw.step, rw.offset) == (rp.sweep, rp.step, rp.offset)
            assert rw.seq == rp.seq
            # Wavefront reflectors are padded to length b then trimmed at
            # the matrix edge; the overlap must agree, the tail be zero.
            m = min(rw.v.size, rp.v.size)
            assert np.allclose(rw.v[:m], rp.v[:m], atol=1e-12)
            assert np.all(rw.v[m:] == 0.0) and np.all(rp.v[m:] == 0.0)
            assert abs(rw.tau - rp.tau) < 1e-12

    def test_log_is_seq_ordered(self, rng):
        A = random_symmetric_band(30, 3, rng)
        wf, _ = bulge_chase_wavefront(A, 3)
        seqs = [r.seq for r in wf.reflectors]
        assert seqs == list(range(len(seqs)))

    def test_tiny_matrix_no_reflectors(self, rng):
        wf, stats = bulge_chase_wavefront(random_symmetric_band(2, 1, rng), 1)
        assert wf.num_reflectors == 0 and wf.reflectors == []
        assert stats.rounds == 0


class TestSchedule:
    @pytest.mark.parametrize("n,b", [(20, 2), (30, 3), (41, 4), (25, 8)])
    def test_closed_form_equals_generic_scheduler(self, rng, n, b):
        A = random_symmetric_band(n, b, rng)
        _, stats = bulge_chase_wavefront(A, b)
        _, ref = pipeline_schedule(n, b, None)
        assert stats.rounds == ref.rounds
        assert stats.occupancy == ref.occupancy
        assert stats.max_parallel == ref.max_parallel
        assert stats.total_tasks == ref.total_tasks
        assert stats.task_rounds == ref.task_rounds

    def test_capped_matches_oracle(self, rng):
        n, b = 36, 4
        A = random_symmetric_band(n, b, rng)
        seq = bulge_chase(A, b)
        wf, stats = bulge_chase_wavefront(A, b, max_sweeps=2)
        assert np.max(np.abs(wf.d - seq.d)) < 1e-12
        assert np.max(np.abs(wf.e - seq.e)) < 1e-12
        assert stats.max_parallel <= 2

    def test_serial_cap_one_task_per_round(self, rng):
        A = random_symmetric_band(25, 3, rng)
        _, stats = bulge_chase_wavefront(A, 3, max_sweeps=1)
        assert all(occ == 1 for occ in stats.occupancy)


class TestFlops:
    @pytest.mark.parametrize("n,b", [(20, 2), (30, 3), (41, 4), (25, 8), (16, 15)])
    def test_identical_across_all_drivers(self, rng, n, b):
        # One flop model (bc_task_flops), four drivers, exact agreement:
        # the terms are small integers, so the float64 sums are exact.
        A = random_symmetric_band(n, b, rng)
        seq = bulge_chase(A, b)
        band = bulge_chase_band(LowerBandStorage.from_dense(A, b))
        pipe, _ = bulge_chase_pipelined(A, b)
        wf, _ = bulge_chase_wavefront(A, b)
        assert seq.flops == band.flops == pipe.flops == wf.flops


class TestApplyQ1:
    def test_batched_apply_matches_scalar_log(self, rng):
        # Replaying the stacked groups must agree with walking the
        # materialized scalar log through the base-class kernels.
        n, b = 48, 5
        A = random_symmetric_band(n, b, rng)
        wf, _ = bulge_chase_wavefront(A, b)
        scalar = BulgeChasingResult(
            d=wf.d, e=wf.e, reflectors=wf.reflectors, flops=wf.flops
        )
        X = rng.standard_normal((n, 4))
        Y1, Y2 = X.copy(), X.copy()
        wf.apply_q1(Y1)
        scalar.apply_q1(Y2)
        assert np.allclose(Y1, Y2, atol=1e-12)
        Y1, Y2 = X.copy(), X.copy()
        wf.apply_q1_transpose(Y1)
        scalar.apply_q1_transpose(Y2)
        assert np.allclose(Y1, Y2, atol=1e-12)

    def test_transpose_inverts(self, rng):
        n, b = 33, 4
        A = random_symmetric_band(n, b, rng)
        wf, _ = bulge_chase_wavefront(A, b)
        X = rng.standard_normal((n, 3))
        Y = X.copy()
        wf.apply_q1(Y)
        wf.apply_q1_transpose(Y)
        assert np.allclose(X, Y, atol=1e-12)

    @pytest.mark.parametrize("n,b", [(20, 3), (40, 5), (26, 8)])
    def test_reconstruction(self, rng, n, b):
        A = random_symmetric_band(n, b, rng)
        wf, _ = bulge_chase_wavefront(A, b)
        Q1 = np.eye(n)
        wf.apply_q1(Q1)
        T = dense_from_band(wf.d, wf.e)
        assert np.linalg.norm(Q1 @ T @ Q1.T - A) / np.linalg.norm(A) < 1e-12

    def test_result_type_is_drop_in(self, rng):
        wf, _ = bulge_chase_wavefront(random_symmetric_band(20, 3, rng), 3)
        assert isinstance(wf, WavefrontBCResult)
        assert isinstance(wf, BulgeChasingResult)
