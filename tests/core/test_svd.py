"""Unit tests for the SVD pipeline (bidiagonalization + Golub-Kahan)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.storage import dense_from_band
from repro.core.svd import bidiagonalize, golub_kahan_tridiagonal, svd


class TestBidiagonalize:
    @pytest.mark.parametrize("m,n", [(5, 5), (12, 8), (30, 30), (40, 7), (3, 1)])
    def test_factorization(self, rng, m, n):
        A = rng.standard_normal((m, n))
        bd = bidiagonalize(A)
        # Rebuild B and check A = U B V^T by applying the factors.
        B = np.zeros((m, n))
        B[np.arange(n), np.arange(n)] = bd.d
        B[np.arange(n - 1), np.arange(1, n)] = bd.f
        UB = B.copy()
        bd.apply_u(UB)  # U @ B
        VT = np.eye(n)
        bd.apply_v(VT)  # V
        assert np.linalg.norm(UB @ VT.T - A) / max(np.linalg.norm(A), 1) < 1e-13

    def test_u_v_orthogonal(self, rng):
        A = rng.standard_normal((14, 9))
        bd = bidiagonalize(A)
        U = np.eye(14)
        bd.apply_u(U)
        V = np.eye(9)
        bd.apply_v(V)
        assert np.linalg.norm(U.T @ U - np.eye(14)) < 1e-13
        assert np.linalg.norm(V.T @ V - np.eye(9)) < 1e-13

    def test_wide_rejected(self, rng):
        with pytest.raises(ValueError):
            bidiagonalize(rng.standard_normal((3, 5)))

    def test_input_not_modified(self, rng):
        A = rng.standard_normal((8, 6))
        A0 = A.copy()
        bidiagonalize(A)
        assert np.array_equal(A, A0)


class TestGolubKahan:
    def test_shuffle_structure(self, rng):
        d = rng.standard_normal(4)
        f = rng.standard_normal(3)
        dt, et = golub_kahan_tridiagonal(d, f)
        assert np.all(dt == 0.0)
        assert np.allclose(et, [d[0], f[0], d[1], f[1], d[2], f[2], d[3]])

    def test_spectrum_is_plus_minus_sigma(self, rng):
        d = rng.standard_normal(5)
        f = rng.standard_normal(4)
        B = np.diag(d) + np.diag(f, 1)
        sigma = np.linalg.svd(B, compute_uv=False)
        dt, et = golub_kahan_tridiagonal(d, f)
        lam = np.linalg.eigvalsh(dense_from_band(dt, et))
        expect = np.sort(np.concatenate([sigma, -sigma]))
        assert np.max(np.abs(np.sort(lam) - expect)) < 1e-12


class TestSVD:
    @pytest.mark.parametrize("m,n", [(6, 6), (20, 12), (33, 33), (50, 9)])
    def test_matches_numpy(self, rng, m, n):
        A = rng.standard_normal((m, n))
        s, U, V = svd(A)
        sref = np.linalg.svd(A, compute_uv=False)
        assert np.max(np.abs(s - sref)) < 1e-11 * max(sref[0], 1)
        assert np.linalg.norm((U * s) @ V.T - A) / np.linalg.norm(A) < 1e-12
        assert np.linalg.norm(U.T @ U - np.eye(n)) < 1e-11
        assert np.linalg.norm(V.T @ V - np.eye(n)) < 1e-11

    def test_values_descending_nonnegative(self, rng):
        s, _, _ = svd(rng.standard_normal((15, 10)))
        assert np.all(s >= 0)
        assert np.all(np.diff(s) <= 1e-14)

    def test_rank_deficient(self, rng):
        A = rng.standard_normal((15, 4)) @ rng.standard_normal((4, 10))
        s, U, V = svd(A)
        assert np.sum(s > 1e-10 * s[0]) == 4
        assert np.linalg.norm((U * s) @ V.T - A) / np.linalg.norm(A) < 1e-12
        assert np.linalg.norm(U.T @ U - np.eye(10)) < 1e-10
        assert np.linalg.norm(V.T @ V - np.eye(10)) < 1e-10

    def test_zero_matrix(self):
        s, U, V = svd(np.zeros((5, 3)))
        assert np.all(s == 0)
        assert np.linalg.norm(U.T @ U - np.eye(3)) < 1e-14

    def test_values_only(self, rng):
        A = rng.standard_normal((12, 7))
        s, U, V = svd(A, compute_vectors=False)
        assert U is None and V is None
        assert np.max(np.abs(s - np.linalg.svd(A, compute_uv=False))) < 1e-12

    def test_orthogonal_input(self):
        Q, _ = np.linalg.qr(np.random.default_rng(1).standard_normal((9, 9)))
        s, _, _ = svd(Q)
        assert np.max(np.abs(s - 1.0)) < 1e-12

    def test_wide_rejected(self, rng):
        with pytest.raises(ValueError):
            svd(rng.standard_normal((4, 9)))

    def test_known_singular_values(self):
        A = np.diag([5.0, 3.0, 1.0]) @ np.eye(3)
        s, U, V = svd(A)
        assert np.allclose(s, [5.0, 3.0, 1.0])
        assert np.allclose(np.abs(U), np.eye(3), atol=1e-12)


class TestContextThreading:
    """Regression: `svd` must run its D&C solve on the caller's context
    (it used to re-resolve a fresh one, bypassing backend/workspace/hooks)."""

    def test_caller_context_receives_stage_events(self, rng):
        from repro.backend.context import ExecutionContext

        events = []
        ctx = ExecutionContext(hooks=[events.append])
        A = rng.standard_normal((36, 30))  # GK tridiagonal size 60: real merges
        s, U, V = svd(A, backend=ctx)
        stages = {ev.stage for ev in events}
        # The bidiagonalization, the tridiagonal solve, and the D&C
        # sub-stages all flow through the caller's hooks.
        assert {"bidiagonalize", "tridiag_solver"} <= stages
        assert {"dc_deflate", "dc_secular", "dc_gemm"} <= stages
        assert "tridiag_solver" in ctx.stage_times
        # And the result is still correct.
        assert np.max(np.abs(s - np.linalg.svd(A, compute_uv=False))) < 1e-11

    def test_caller_workspace_is_used(self, rng):
        from repro.backend.context import ExecutionContext

        ctx = ExecutionContext()
        svd(rng.standard_normal((40, 40)), backend=ctx)
        # Batched secular scratch was drawn from *this* pool.
        assert ctx.workspace.nbytes > 0

    def test_backend_string_accepted(self, rng):
        A = rng.standard_normal((10, 6))
        s_default, _, _ = svd(A)
        s_named, _, _ = svd(A, backend="numpy")
        assert np.array_equal(s_default, s_named)

    def test_secular_mode_threaded(self, rng):
        A = rng.standard_normal((18, 18))
        s_b, _, _ = svd(A, secular_mode="batched")
        s_s, _, _ = svd(A, secular_mode="scalar")
        assert np.max(np.abs(s_b - s_s)) < 1e-12 * max(s_s[0], 1.0)
