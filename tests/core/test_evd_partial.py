"""Unit tests for the partial-spectrum EVD path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import goe, symmetric_with_spectrum, uniform_spectrum
from repro.core.evd import eigh_partial


class TestPartialSpectrum:
    def test_interior_window(self):
        A = goe(70, seed=50)
        lam_ref = np.linalg.eigvalsh(A)
        res = eigh_partial(A, (10, 19), bandwidth=4, second_block=8)
        assert res.eigenvalues.shape == (10,)
        assert np.max(np.abs(res.eigenvalues - lam_ref[10:20])) < 1e-10
        V = res.eigenvectors
        assert V.shape == (70, 10)
        assert np.linalg.norm(A @ V - V * res.eigenvalues) / np.linalg.norm(A) < 1e-9
        assert np.linalg.norm(V.T @ V - np.eye(10)) < 1e-8

    def test_extremal_eigenpairs(self):
        A = goe(50, seed=51)
        lam_ref = np.linalg.eigvalsh(A)
        low = eigh_partial(A, (0, 0), bandwidth=3, second_block=6)
        high = eigh_partial(A, (49, 49), bandwidth=3, second_block=6)
        assert abs(low.eigenvalues[0] - lam_ref[0]) < 1e-10
        assert abs(high.eigenvalues[0] - lam_ref[-1]) < 1e-10

    def test_full_window_matches_eigh(self):
        A = goe(40, seed=52)
        res = eigh_partial(A, (0, 39), bandwidth=3, second_block=6)
        assert np.max(np.abs(res.eigenvalues - np.linalg.eigvalsh(A))) < 1e-10

    def test_eigenvalues_only(self):
        A = goe(30, seed=53)
        res = eigh_partial(A, (3, 7), compute_vectors=False)
        assert res.eigenvectors is None
        assert res.eigenvalues.shape == (5,)

    def test_known_spectrum(self):
        lam = uniform_spectrum(60, 0.0, 10.0)
        A = symmetric_with_spectrum(lam, seed=54)
        res = eigh_partial(A, (25, 34), bandwidth=4, second_block=8)
        assert np.max(np.abs(res.eigenvalues - lam[25:35])) < 1e-10

    def test_clustered_window_orthogonalized(self):
        lam = np.sort(np.concatenate([np.full(5, 1.0) + 1e-10 * np.arange(5),
                                      np.linspace(2, 3, 25)]))
        A = symmetric_with_spectrum(lam, seed=55)
        res = eigh_partial(A, (0, 4), bandwidth=3, second_block=6)
        V = res.eigenvectors
        assert np.linalg.norm(V.T @ V - np.eye(5)) < 1e-7

    @pytest.mark.parametrize("method", ["proposed", "magma", "cusolver"])
    def test_all_presets(self, method):
        A = goe(36, seed=56)
        lam_ref = np.linalg.eigvalsh(A)
        res = eigh_partial(A, (0, 4), method=method, bandwidth=3, second_block=6)
        assert np.max(np.abs(res.eigenvalues - lam_ref[:5])) < 1e-10

    def test_out_of_range_rejected(self):
        A = goe(10, seed=57)
        with pytest.raises(ValueError):
            eigh_partial(A, (5, 12))
        with pytest.raises(ValueError):
            eigh_partial(A, (-1, 3))
        with pytest.raises(ValueError):
            eigh_partial(A, (7, 3))
