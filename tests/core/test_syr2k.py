"""Unit tests for the syr2k schedules (reference, rectangular, square)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.syr2k import (
    rect_schedule,
    square_schedule,
    symmetrize_lower,
    syr2k_rect_blocked,
    syr2k_reference,
    syr2k_square_blocked,
)


def _inputs(rng, n=40, k=7):
    C = rng.standard_normal((n, n))
    C = (C + C.T) / 2
    A = rng.standard_normal((n, k))
    B = rng.standard_normal((n, k))
    return C, A, B


class TestNumericalEquivalence:
    @pytest.mark.parametrize("block", [4, 8, 16, 64])
    def test_square_matches_reference(self, rng, block):
        C, A, B = _inputs(rng)
        expect = syr2k_reference(C, A, B, alpha=-1.0)
        got = C.copy()
        syr2k_square_blocked(got, A, B, alpha=-1.0, block=block)
        assert np.allclose(got, expect, atol=1e-12)

    @pytest.mark.parametrize("block", [4, 16, 100])
    def test_rect_matches_reference(self, rng, block):
        C, A, B = _inputs(rng)
        expect = syr2k_reference(C, A, B, alpha=-1.0)
        got = C.copy()
        syr2k_rect_blocked(got, A, B, alpha=-1.0, block=block)
        assert np.allclose(got, expect, atol=1e-12)

    def test_positive_alpha(self, rng):
        C, A, B = _inputs(rng, n=20, k=3)
        expect = syr2k_reference(C, A, B, alpha=2.5)
        got = C.copy()
        syr2k_square_blocked(got, A, B, alpha=2.5, block=8)
        assert np.allclose(got, expect, atol=1e-12)

    def test_result_is_symmetric(self, rng):
        C, A, B = _inputs(rng, n=33, k=5)
        syr2k_square_blocked(C, A, B, block=8)
        assert np.linalg.norm(C - C.T) == 0.0

    def test_non_divisible_sizes(self, rng):
        C, A, B = _inputs(rng, n=37, k=5)
        expect = syr2k_reference(C, A, B)
        got = C.copy()
        syr2k_square_blocked(got, A, B, block=8)
        assert np.allclose(got, expect, atol=1e-12)

    def test_shape_mismatch_rejected(self, rng):
        C, A, B = _inputs(rng)
        with pytest.raises(ValueError):
            syr2k_square_blocked(C, A, B[:-1], block=8)

    def test_block_larger_than_n(self, rng):
        C, A, B = _inputs(rng, n=10, k=2)
        expect = syr2k_reference(C, A, B)
        got = C.copy()
        syr2k_square_blocked(got, A, B, block=64)
        assert np.allclose(got, expect, atol=1e-12)


class TestSquareSchedule:
    def test_figure7_example_4x4(self):
        # 4 blocks of the paper's example: 4 diagonal tiles, then the two
        # unit off-diagonal tiles, then one 2x2-block square.
        tasks = square_schedule(4 * 16, 16)
        diag = [t for t in tasks if t.diagonal]
        off = [t for t in tasks if not t.diagonal]
        assert len(diag) == 4
        sizes = sorted((t.m // 16, t.n // 16) for t in off)
        assert sizes == [(1, 1), (1, 1), (2, 2)]

    def test_tiles_cover_lower_triangle_exactly_once(self):
        n, block = 96, 16
        cover = np.zeros((n, n), dtype=int)
        for t in square_schedule(n, block):
            tile = cover[t.r0 : t.r1, t.c0 : t.c1]
            if t.diagonal:
                ii, jj = np.indices(tile.shape)
                tile[(ii + t.r0) >= (jj + t.c0)] += 1
            else:
                tile += 1
        lower = np.tril(np.ones((n, n), dtype=int))
        assert np.array_equal(np.tril(cover), lower)
        assert np.all(np.triu(cover, 1) == 0)

    def test_tasks_write_disjoint_tiles(self):
        tasks = square_schedule(128, 16)
        seen = set()
        for t in tasks:
            key = (t.r0, t.r1, t.c0, t.c1)
            assert key not in seen
            seen.add(key)

    def test_off_diagonal_tiles_are_square(self):
        for t in square_schedule(256, 32):
            if not t.diagonal:
                assert t.m == t.n

    def test_level_zero_is_diagonal_pass(self):
        tasks = square_schedule(64, 16)
        for t in tasks:
            assert (t.level == 0) == t.diagonal

    def test_invalid_block_rejected(self):
        with pytest.raises(ValueError):
            square_schedule(64, 0)


class TestRectSchedule:
    def test_row_panels_cover_lower_triangle(self):
        n, block = 64, 16
        tasks = rect_schedule(n, block)
        assert len(tasks) == 4
        for i, t in enumerate(tasks):
            assert t.r0 == i * block and t.c0 == 0 and t.c1 == t.r1

    def test_aspect_ratio_degrades(self):
        # The skinny-GEMM pathology of Section 5.1: later panels get wider.
        tasks = rect_schedule(256, 32)
        ratios = [t.n / t.m for t in tasks]
        assert ratios == sorted(ratios)
        assert ratios[-1] == 8.0


class TestSymmetrize:
    def test_symmetrize_lower(self, rng):
        C = rng.standard_normal((9, 9))
        symmetrize_lower(C)
        assert np.array_equal(C, C.T)
        assert np.array_equal(np.tril(C), np.tril(C))  # lower untouched
