"""Edge-case regressions: every BC driver vs the sequential oracle.

The drivers share one task geometry but clip it differently at the
matrix edge; these cases pin the awkward corners — ``n`` not divisible
by ``b``, bandwidth swallowing (almost) the whole matrix, tiny ``n``,
and the already-tridiagonal ``b == 1`` no-op.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.ops import random_symmetric_band
from repro.band.storage import LowerBandStorage
from repro.core.bc_pipeline import bulge_chase_pipelined
from repro.core.bc_wavefront import bulge_chase_wavefront
from repro.core.bulge_chasing import bulge_chase
from repro.core.bulge_chasing_band import bulge_chase_band

DRIVERS = {
    "pipelined": lambda A, b: bulge_chase_pipelined(A, b)[0],
    "band": lambda A, b: bulge_chase_band(LowerBandStorage.from_dense(A, b)),
    "wavefront": lambda A, b: bulge_chase_wavefront(A, b)[0],
}

EDGE_CASES = [
    (25, 4),  # n % b != 0: last sweep's tasks are all clipped
    (23, 7),  # n % b != 0 with b not a power of two
    (10, 9),  # b == n - 1: single full-width sweep geometry
    (9, 8),   # b == n - 1, odd n
    (12, 11),
    (3, 2),   # smallest matrix with any chase work
    (4, 2),
    (4, 3),
    (2, 1),   # no sweeps at all
    (3, 1),   # b == 1: already tridiagonal
    (12, 1),
]


@pytest.mark.parametrize("driver", sorted(DRIVERS))
@pytest.mark.parametrize("n,b", EDGE_CASES)
def test_matches_sequential_oracle(rng, driver, n, b):
    A = random_symmetric_band(n, b, rng)
    oracle = bulge_chase(A, b)
    res = DRIVERS[driver](A, b)
    assert np.max(np.abs(res.d - oracle.d), initial=0.0) < 1e-12, driver
    assert np.max(np.abs(res.e - oracle.e), initial=0.0) < 1e-12, driver
    assert len(res.reflectors) == len(oracle.reflectors)


@pytest.mark.parametrize("driver", sorted(DRIVERS))
@pytest.mark.parametrize("n", [3, 8, 15])
def test_b_equals_one_is_identity(rng, driver, n):
    # A tridiagonal input needs no chasing: d/e pass through untouched
    # and the reflector log stays empty.
    A = random_symmetric_band(n, 1, rng)
    res = DRIVERS[driver](A, 1)
    assert np.array_equal(res.d, np.diagonal(A))
    assert np.array_equal(res.e, np.diagonal(A, -1))
    assert len(res.reflectors) == 0


@pytest.mark.parametrize("driver", sorted(DRIVERS))
@pytest.mark.parametrize("n,b", [(25, 4), (10, 9), (4, 2)])
def test_q1_reconstructs_band(rng, driver, n, b):
    from repro.band.storage import dense_from_band

    A = random_symmetric_band(n, b, rng)
    res = DRIVERS[driver](A, b)
    Q1 = np.eye(n)
    res.apply_q1(Q1)
    T = dense_from_band(res.d, res.e)
    scale = max(np.linalg.norm(A), 1.0)
    assert np.linalg.norm(Q1 @ T @ Q1.T - A) / scale < 1e-12, driver
