"""Unit tests for the shared reduction result types (WYBlock etc.)."""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BandReductionResult, WYBlock
from repro.core.panel_qr import panel_qr_wy
from tests.conftest import make_symmetric


def make_block(rng, n=12, offset=4, width=3) -> WYBlock:
    W, Y, _ = panel_qr_wy(rng.standard_normal((n - offset, width)))
    return WYBlock(W=W, Y=Y, offset=offset)


class TestWYBlock:
    def test_embed_is_orthogonal(self, rng):
        blk = make_block(rng)
        Q = blk.embed(12)
        assert np.linalg.norm(Q.T @ Q - np.eye(12)) < 1e-13

    def test_embed_identity_above_offset(self, rng):
        blk = make_block(rng)
        Q = blk.embed(12)
        assert np.array_equal(Q[:4, :4], np.eye(4))
        assert np.all(Q[:4, 4:] == 0.0)

    def test_apply_left_matches_embed(self, rng):
        blk = make_block(rng)
        X = rng.standard_normal((12, 5))
        Y = X.copy()
        blk.apply_left(Y)
        assert np.allclose(Y, blk.embed(12) @ X, atol=1e-13)

    def test_apply_left_transpose_inverts(self, rng):
        blk = make_block(rng)
        X = rng.standard_normal((12, 3))
        Y = X.copy()
        blk.apply_left(Y)
        blk.apply_left_transpose(Y)
        assert np.allclose(X, Y, atol=1e-13)

    def test_shape_properties(self, rng):
        blk = make_block(rng, n=20, offset=6, width=4)
        assert blk.width == 4
        assert blk.rows == 14


class TestBandReductionResult:
    def test_q_is_ordered_product(self, rng):
        from repro.core.sbr import sbr

        A = make_symmetric(24, seed=31)
        res = sbr(A, 3)
        Q = res.q()
        expect = np.eye(24)
        for blk in res.blocks:
            expect = expect @ blk.embed(24)
        assert np.allclose(Q, expect, atol=1e-12)

    def test_reconstruct_equals_manual(self, rng):
        from repro.core.sbr import sbr

        A = make_symmetric(18, seed=32)
        res = sbr(A, 2)
        Q = res.q()
        assert np.allclose(res.reconstruct(), Q @ res.band @ Q.T, atol=1e-12)

    def test_n_property(self):
        res = BandReductionResult(band=np.eye(7), bandwidth=2)
        assert res.n == 7
        assert np.allclose(res.q(), np.eye(7))  # no blocks -> identity
