"""Unit tests for public-API input validation."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bench.workloads import goe
from repro.core.validation import SymmetryError, check_symmetric


class TestCheckSymmetric:
    def test_passes_symmetric_through(self):
        A = goe(10, seed=1)
        B = check_symmetric(A)
        assert np.array_equal(A, B)
        assert B is not A  # never aliases

    def test_symmetrizes_roundoff_asymmetry(self):
        A = goe(10, seed=2)
        A[3, 4] += 1e-13
        B = check_symmetric(A)
        assert np.array_equal(B, B.T)

    def test_rejects_large_asymmetry(self):
        A = goe(10, seed=3)
        A[3, 4] += 1.0
        with pytest.raises(SymmetryError):
            check_symmetric(A)

    def test_rejects_nan_and_inf(self):
        A = goe(6, seed=4)
        A[2, 2] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            check_symmetric(A)
        A = goe(6, seed=4)
        A[1, 1] = np.inf
        with pytest.raises(ValueError):
            check_symmetric(A)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            check_symmetric(np.zeros((3, 5)))

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            check_symmetric(np.zeros(5))

    def test_custom_tolerance(self):
        A = goe(8, seed=5)
        A[0, 1] += 1e-6
        with pytest.raises(SymmetryError):
            check_symmetric(A)
        B = check_symmetric(A, tol=1e-3)
        assert np.array_equal(B, B.T)

    def test_integer_input_promoted(self):
        A = np.array([[2, 1], [1, 3]])
        B = check_symmetric(A)
        assert B.dtype == np.float64


class TestDriversValidate:
    def test_tridiagonalize_rejects_nan(self):
        A = goe(12, seed=6)
        A[0, 0] = np.nan
        with pytest.raises(ValueError):
            repro.tridiagonalize(A)

    def test_tridiagonalize_rejects_asymmetric(self):
        A = np.random.default_rng(7).standard_normal((12, 12))
        with pytest.raises(SymmetryError):
            repro.tridiagonalize(A)

    def test_eigh_inherits_validation(self):
        A = np.random.default_rng(8).standard_normal((10, 10))
        with pytest.raises(SymmetryError):
            repro.eigh(A)

    def test_roundoff_asymmetric_input_accepted(self):
        A = goe(24, seed=9)
        A[5, 6] += 1e-14
        res = repro.eigh(A, bandwidth=3, second_block=6)
        assert res.residual((A + A.T) / 2) < 1e-12
