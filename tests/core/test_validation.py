"""Unit tests for public-API input validation."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bench.workloads import goe
from repro.core.validation import (
    EmptyMatrixError,
    NonFiniteError,
    NonSquareError,
    SymmetryError,
    check_symmetric,
    matrix_fingerprint,
)


class TestCheckSymmetric:
    def test_passes_symmetric_through(self):
        A = goe(10, seed=1)
        B = check_symmetric(A)
        assert np.array_equal(A, B)
        assert B is not A  # never aliases

    def test_symmetrizes_roundoff_asymmetry(self):
        A = goe(10, seed=2)
        A[3, 4] += 1e-13
        B = check_symmetric(A)
        assert np.array_equal(B, B.T)

    def test_rejects_large_asymmetry(self):
        A = goe(10, seed=3)
        A[3, 4] += 1.0
        with pytest.raises(SymmetryError):
            check_symmetric(A)

    def test_rejects_nan_and_inf(self):
        A = goe(6, seed=4)
        A[2, 2] = np.nan
        with pytest.raises(NonFiniteError, match="NaN"):
            check_symmetric(A)
        A = goe(6, seed=4)
        A[1, 1] = np.inf
        with pytest.raises(NonFiniteError):
            check_symmetric(A)

    def test_rejects_non_square(self):
        with pytest.raises(NonSquareError, match="square"):
            check_symmetric(np.zeros((3, 5)))

    def test_rejects_vector(self):
        with pytest.raises(NonSquareError):
            check_symmetric(np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(EmptyMatrixError):
            check_symmetric(np.zeros((0, 0)))

    def test_typed_errors_are_value_errors(self):
        # callers that only catch ValueError keep working
        for exc in (SymmetryError, NonSquareError, NonFiniteError,
                    EmptyMatrixError):
            assert issubclass(exc, ValueError)

    def test_custom_tolerance(self):
        A = goe(8, seed=5)
        A[0, 1] += 1e-6
        with pytest.raises(SymmetryError):
            check_symmetric(A)
        B = check_symmetric(A, tol=1e-3)
        assert np.array_equal(B, B.T)

    def test_integer_input_promoted(self):
        A = np.array([[2, 1], [1, 3]])
        B = check_symmetric(A)
        assert B.dtype == np.float64


class TestMatrixFingerprint:
    def test_deterministic_across_copies(self):
        A = goe(9, seed=20)
        assert matrix_fingerprint(A) == matrix_fingerprint(A.copy())

    def test_single_bit_flip_changes_digest(self):
        A = goe(9, seed=21)
        B = A.copy()
        B[4, 4] = np.nextafter(B[4, 4], np.inf)
        assert matrix_fingerprint(A) != matrix_fingerprint(B)

    def test_shape_is_part_of_identity(self):
        flat = np.arange(12, dtype=np.float64)
        assert (matrix_fingerprint(flat.reshape(3, 4))
                != matrix_fingerprint(flat.reshape(4, 3)))

    def test_dtype_is_part_of_identity(self):
        A = np.eye(4, dtype=np.float32)
        assert matrix_fingerprint(A) != matrix_fingerprint(A.astype(np.float64))

    def test_non_contiguous_views_hash_by_content(self):
        A = goe(10, seed=22)
        view = A[::2, ::2]
        assert matrix_fingerprint(view) == matrix_fingerprint(view.copy())

    def test_digest_is_short_hex(self):
        fp = matrix_fingerprint(goe(5, seed=23))
        assert len(fp) == 32
        int(fp, 16)  # hex-parsable


class TestDriversValidate:
    def test_tridiagonalize_rejects_nan(self):
        A = goe(12, seed=6)
        A[0, 0] = np.nan
        with pytest.raises(ValueError):
            repro.tridiagonalize(A)

    @pytest.mark.parametrize("entry", [
        lambda A: repro.eigh(A),
        lambda A: repro.eigh_partial(A, indices=(0, 1)),
        lambda A: repro.tridiagonalize(A),
    ])
    def test_typed_errors_at_every_entry_point(self, entry):
        with pytest.raises(NonSquareError):
            entry(np.zeros((4, 6)))
        with pytest.raises(EmptyMatrixError):
            entry(np.zeros((0, 0)))
        bad = goe(12, seed=30)
        bad[1, 2] = bad[2, 1] = np.nan
        with pytest.raises(NonFiniteError):
            entry(bad)

    def test_dense_method_validates_too(self):
        with pytest.raises(NonSquareError):
            repro.eigh(np.zeros((4, 6)), method="dense")
        bad = goe(8, seed=31)
        bad[0, 0] = np.inf
        with pytest.raises(NonFiniteError):
            repro.eigh(bad, method="dense")

    def test_eigh_stacked_validates_shape(self):
        with pytest.raises(NonSquareError):
            repro.eigh_stacked(np.zeros((3, 4, 5)))
        with pytest.raises(NonSquareError):
            repro.eigh_stacked(np.zeros((4, 4)))  # not a stack
        with pytest.raises(EmptyMatrixError):
            repro.eigh_stacked(np.zeros((0, 4, 4)))

    def test_tridiagonalize_rejects_asymmetric(self):
        A = np.random.default_rng(7).standard_normal((12, 12))
        with pytest.raises(SymmetryError):
            repro.tridiagonalize(A)

    def test_eigh_inherits_validation(self):
        A = np.random.default_rng(8).standard_normal((10, 10))
        with pytest.raises(SymmetryError):
            repro.eigh(A)

    def test_roundoff_asymmetric_input_accepted(self):
        A = goe(24, seed=9)
        A[5, 6] += 1e-14
        res = repro.eigh(A, bandwidth=3, second_block=6)
        assert res.residual((A + A.T) / 2) < 1e-12
