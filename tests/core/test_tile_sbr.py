"""Unit tests for the PLASMA-style tile band reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.ops import bandwidth_of, symmetric_error
from repro.core.sbr import sbr
from repro.core.tile_sbr import tile_sbr, tile_task_dag
from tests.conftest import make_symmetric


class TestTileSBR:
    @pytest.mark.parametrize("n,b", [(24, 4), (33, 4), (30, 5), (25, 2), (16, 8)])
    def test_band_contract(self, n, b):
        A = make_symmetric(n, seed=n + b)
        res = tile_sbr(A, b)
        assert bandwidth_of(res.band, tol=1e-9) <= b
        assert symmetric_error(res.band) < 1e-12

    @pytest.mark.parametrize("n,b", [(20, 3), (28, 4), (35, 6)])
    def test_similarity(self, n, b):
        A = make_symmetric(n, seed=2 * n + b)
        res = tile_sbr(A, b)
        assert np.linalg.norm(res.reconstruct() - A) / np.linalg.norm(A) < 1e-12
        Q = res.q()
        assert np.linalg.norm(Q.T @ Q - np.eye(n)) < 1e-12

    def test_same_spectrum_as_panel_sbr(self):
        A = make_symmetric(32, seed=7)
        lam_tile = np.linalg.eigvalsh(tile_sbr(A, 4).band)
        lam_panel = np.linalg.eigvalsh(sbr(A, 4).band)
        assert np.max(np.abs(lam_tile - lam_panel)) < 1e-11

    def test_tile_size_one_gives_tridiagonal(self):
        A = make_symmetric(12, seed=8)
        res = tile_sbr(A, 1)
        assert bandwidth_of(res.band, tol=1e-10) <= 1

    def test_reflector_kinds(self):
        A = make_symmetric(24, seed=9)
        res = tile_sbr(A, 4)
        kinds = {r.kind for r in res.reflectors}
        assert kinds == {"geqrt", "tsqrt"}
        # tsqrt factors with i > k+2 span two non-contiguous tile rows
        # (the adjacent-tile case i == k+2 is contiguous by construction).
        max_gap = max(
            int(np.max(np.diff(r.rows)))
            for r in res.reflectors
            if r.kind == "tsqrt"
        )
        assert max_gap > 1

    def test_input_not_modified(self):
        A = make_symmetric(18, seed=10)
        A0 = A.copy()
        tile_sbr(A, 3)
        assert np.array_equal(A, A0)

    def test_validation(self):
        with pytest.raises(ValueError):
            tile_sbr(np.zeros((3, 4)), 2)
        with pytest.raises(ValueError):
            tile_sbr(np.zeros((4, 4)), 0)

    def test_feeds_bulge_chasing(self):
        """Tile band reduction composes with the rest of the pipeline."""
        from repro.band.storage import dense_from_band
        from repro.core.bulge_chasing import bulge_chase

        A = make_symmetric(30, seed=11)
        res = tile_sbr(A, 3)
        bc = bulge_chase(res.band, 3)
        T = dense_from_band(bc.d, bc.e)
        assert np.max(
            np.abs(np.linalg.eigvalsh(T) - np.linalg.eigvalsh(A))
        ) < 1e-10


class TestTaskDag:
    def test_task_counts(self):
        # nt tiles -> sum_{k} (1 + (nt - k - 2)) tasks.
        tasks = tile_task_dag(24, 4)  # nt = 6
        assert len(tasks) == sum(1 + (6 - k - 2) for k in range(5))

    def test_order_matches_execution(self):
        A = make_symmetric(24, seed=12)
        res = tile_sbr(A, 4)
        dag = tile_task_dag(24, 4)
        assert len(dag) == len(res.reflectors)
        for (kind, _, _), refl in zip(dag, res.reflectors):
            assert kind == refl.kind

    def test_parallelism_exists(self):
        # Tile rows of (k, i) tasks with distinct i are disjoint -> the
        # PLASMA scheduler can run them concurrently.
        tasks = tile_task_dag(64, 8)
        tsqrt_k0 = [(k, i) for kind, k, i in tasks if kind == "tsqrt" and k == 0]
        assert len(tsqrt_k0) >= 2
