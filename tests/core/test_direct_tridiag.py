"""Unit tests for blocked direct (one-stage) tridiagonalization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.storage import dense_from_band
from repro.core.direct_tridiag import direct_tridiagonalize
from tests.conftest import make_symmetric


class TestDirectTridiag:
    @pytest.mark.parametrize("n,nb", [(10, 3), (30, 8), (33, 32), (50, 16), (3, 1)])
    def test_reconstruction(self, n, nb):
        A = make_symmetric(n, seed=n + nb)
        res = direct_tridiagonalize(A, block=nb)
        T = dense_from_band(res.d, res.e)
        Q = res.q()
        assert np.linalg.norm(Q @ T @ Q.T - A) / np.linalg.norm(A) < 1e-13

    def test_q_orthogonal(self):
        A = make_symmetric(40, seed=1)
        res = direct_tridiagonalize(A, block=8)
        Q = res.q()
        assert np.linalg.norm(Q.T @ Q - np.eye(40)) < 1e-13

    def test_block_size_does_not_change_result(self):
        A = make_symmetric(25, seed=2)
        r1 = direct_tridiagonalize(A, block=1)
        r2 = direct_tridiagonalize(A, block=8)
        r3 = direct_tridiagonalize(A, block=64)
        assert np.allclose(r1.d, r2.d, atol=1e-11)
        assert np.allclose(np.abs(r1.e), np.abs(r3.e), atol=1e-11)

    def test_matches_scipy_hessenberg_spectrum(self):
        from scipy.linalg import eigh_tridiagonal

        A = make_symmetric(30, seed=3)
        res = direct_tridiagonalize(A)
        lam_t = eigh_tridiagonal(res.d, res.e, eigvals_only=True)
        lam_a = np.linalg.eigvalsh(A)
        assert np.max(np.abs(lam_t - lam_a)) < 1e-11

    def test_blas2_fraction_near_half(self):
        A = make_symmetric(64, seed=4)
        res = direct_tridiagonalize(A, block=8)
        # A large share of the flops are the symv — the BLAS2 bottleneck
        # of Section 2.2 (the exact share depends on block size and the
        # look-ahead correction accounting).
        frac = res.blas2_flops / res.flops
        assert 0.25 < frac < 0.7

    def test_apply_q_transpose_inverts(self, rng):
        A = make_symmetric(22, seed=5)
        res = direct_tridiagonalize(A, block=4)
        X = rng.standard_normal((22, 3))
        Y = X.copy()
        res.apply_q(Y)
        res.apply_q_transpose(Y)
        assert np.allclose(X, Y, atol=1e-12)

    def test_tiny_matrices(self):
        for n in [1, 2]:
            A = make_symmetric(n, seed=n)
            res = direct_tridiagonalize(A)
            assert res.d.size == n
            assert np.allclose(res.d, np.diagonal(A))

    def test_input_not_modified(self):
        A = make_symmetric(15, seed=6)
        A0 = A.copy()
        direct_tridiagonalize(A)
        assert np.array_equal(A, A0)

    def test_diagonal_input(self):
        A = np.diag(np.arange(1.0, 11.0))
        res = direct_tridiagonalize(A)
        assert np.allclose(np.sort(res.d), np.arange(1.0, 11.0))
        assert np.max(np.abs(res.e)) < 1e-14
