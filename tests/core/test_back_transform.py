"""Unit tests for the SBR back transformation (Algorithm 3 / Figure 13)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.back_transform import (
    apply_sbr_q,
    apply_sbr_q_transpose,
    assemble_eigenvectors,
    merge_blocks_grouped,
    merge_blocks_recursive,
    q_from_blocks,
)
from repro.core.bulge_chasing import bulge_chase
from repro.core.dbbr import dbbr
from repro.core.sbr import sbr
from tests.conftest import make_symmetric


@pytest.fixture
def reduction():
    A = make_symmetric(40, seed=77)
    return A, dbbr(A, 4, 12)


class TestMethodsAgree:
    @pytest.mark.parametrize("method", ["blocked", "recursive", "incremental"])
    def test_q_matches_blocked(self, reduction, method):
        _, res = reduction
        Q_ref = q_from_blocks(res.blocks, 40, method="blocked")
        Q = q_from_blocks(res.blocks, 40, method=method)
        assert np.allclose(Q, Q_ref, atol=1e-12)

    @pytest.mark.parametrize("gw", [4, 8, 16, 64])
    def test_incremental_group_widths(self, reduction, gw):
        _, res = reduction
        Q_ref = q_from_blocks(res.blocks, 40, method="blocked")
        Q = np.eye(40)
        apply_sbr_q(res.blocks, Q, method="incremental", group_width=gw)
        assert np.allclose(Q, Q_ref, atol=1e-12)

    def test_unknown_method_rejected(self, reduction):
        _, res = reduction
        with pytest.raises(ValueError):
            apply_sbr_q(res.blocks, np.eye(40), method="bogus")

    def test_transpose_is_inverse(self, reduction, rng):
        _, res = reduction
        for method in ["blocked", "recursive", "incremental"]:
            X = rng.standard_normal((40, 5))
            Y = X.copy()
            apply_sbr_q(res.blocks, Y, method=method)
            apply_sbr_q_transpose(res.blocks, Y, method=method)
            assert np.allclose(X, Y, atol=1e-12)


class TestMerging:
    def test_recursive_merge_width(self, reduction):
        _, res = reduction
        W, Y = merge_blocks_recursive(res.blocks, 40)
        total = sum(b.width for b in res.blocks)
        assert W.shape == (40, total) and Y.shape == (40, total)

    def test_recursive_merge_is_orthogonal(self, reduction):
        _, res = reduction
        W, Y = merge_blocks_recursive(res.blocks, 40)
        Q = np.eye(40) - W @ Y.T
        assert np.linalg.norm(Q.T @ Q - np.eye(40)) < 1e-12

    def test_empty_blocks(self):
        W, Y = merge_blocks_recursive([], 10)
        assert W.shape == (10, 0)
        Q = np.eye(10)
        apply_sbr_q([], Q, method="recursive")
        assert np.allclose(Q, np.eye(10))

    def test_grouped_merge_respects_width(self, reduction):
        _, res = reduction
        groups = merge_blocks_grouped(res.blocks, 40, group_width=8)
        # All groups except possibly the last reach >= 8 columns.
        for W, _ in groups[:-1]:
            assert W.shape[1] >= 8

    def test_grouped_product_in_order(self, reduction):
        _, res = reduction
        groups = merge_blocks_grouped(res.blocks, 40, group_width=8)
        Q = np.eye(40)
        for W, Y in groups:
            Q = Q @ (np.eye(40) - W @ Y.T)
        assert np.allclose(Q, q_from_blocks(res.blocks, 40), atol=1e-12)

    def test_group_width_one_is_identity_grouping(self, reduction):
        _, res = reduction
        groups = merge_blocks_grouped(res.blocks, 40, group_width=1)
        assert len(groups) == len(res.blocks)

    def test_invalid_group_width(self, reduction):
        _, res = reduction
        with pytest.raises(ValueError):
            merge_blocks_grouped(res.blocks, 40, group_width=0)


class TestEigenvectorAssembly:
    def test_full_pipeline_eigenvectors(self):
        A = make_symmetric(36, seed=99)
        res = sbr(A, 3)
        bc = bulge_chase(res.band, 3)
        from repro.band.storage import dense_from_band

        T = dense_from_band(bc.d, bc.e)
        lam, U = np.linalg.eigh(T)
        for method in ["blocked", "recursive", "incremental"]:
            V = assemble_eigenvectors(res.blocks, bc, U, method=method, group_width=6)
            resid = np.linalg.norm(A @ V - V * lam) / np.linalg.norm(A)
            orth = np.linalg.norm(V.T @ V - np.eye(36))
            assert resid < 1e-12 and orth < 1e-12

    def test_input_u_not_modified(self):
        A = make_symmetric(20, seed=101)
        res = sbr(A, 2)
        bc = bulge_chase(res.band, 2)
        U = np.eye(20)
        U0 = U.copy()
        assemble_eigenvectors(res.blocks, bc, U)
        assert np.array_equal(U, U0)
