"""Unit tests for the panel QR factorization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.householder import build_q_from_wy
from repro.core.panel_qr import explicit_q, panel_qr, panel_qr_compact, panel_qr_wy


class TestPanelQR:
    def test_r_is_upper_triangular(self, rng):
        P = rng.standard_normal((12, 5))
        _, _, R = panel_qr(P)
        assert np.allclose(R, np.triu(R))

    def test_reconstruction(self, rng):
        P = rng.standard_normal((10, 4))
        V, taus, R = panel_qr(P)
        Q = explicit_q(V, taus)
        full_r = np.zeros_like(P)
        full_r[:4] = R
        assert np.allclose(Q @ full_r, P, atol=1e-13)

    def test_matches_numpy_qr_up_to_signs(self, rng):
        P = rng.standard_normal((15, 6))
        _, _, R = panel_qr(P)
        _, R_np = np.linalg.qr(P)
        assert np.allclose(np.abs(R), np.abs(R_np), atol=1e-12)

    def test_v_unit_lower_trapezoidal(self, rng):
        P = rng.standard_normal((9, 3))
        V, _, _ = panel_qr(P)
        for j in range(3):
            assert V[j, j] == 1.0
            assert np.all(V[:j, j] == 0.0)

    def test_square_panel(self, rng):
        P = rng.standard_normal((5, 5))
        V, taus, R = panel_qr(P)
        Q = explicit_q(V, taus)
        assert np.allclose(Q @ R, P, atol=1e-13)

    def test_single_column(self, rng):
        P = rng.standard_normal((8, 1))
        V, taus, R = panel_qr(P)
        assert abs(abs(R[0, 0]) - np.linalg.norm(P)) < 1e-13

    def test_wide_panel_rejected(self, rng):
        with pytest.raises(ValueError):
            panel_qr(rng.standard_normal((3, 5)))

    def test_input_not_modified(self, rng):
        P = rng.standard_normal((7, 3))
        P0 = P.copy()
        panel_qr(P)
        assert np.array_equal(P, P0)

    def test_rank_deficient_panel(self, rng):
        col = rng.standard_normal(8)
        P = np.column_stack([col, 2 * col, rng.standard_normal(8)])
        V, taus, R = panel_qr(P)
        Q = explicit_q(V, taus)
        full_r = np.zeros_like(P)
        full_r[:3] = R
        assert np.allclose(Q @ full_r, P, atol=1e-12)
        assert abs(R[1, 1]) < 1e-12  # deficiency shows up on the diagonal


class TestPanelQRWY:
    def test_q_orthogonal(self, rng):
        P = rng.standard_normal((11, 4))
        W, Y, _ = panel_qr_wy(P)
        Q = build_q_from_wy(W, Y)
        assert np.linalg.norm(Q.T @ Q - np.eye(11)) < 1e-13

    def test_qt_panel_is_r(self, rng):
        P = rng.standard_normal((10, 3))
        W, Y, R = panel_qr_wy(P)
        Q = build_q_from_wy(W, Y)
        top = (Q.T @ P)[:3]
        assert np.allclose(top, R, atol=1e-12)
        assert np.max(np.abs((Q.T @ P)[3:])) < 1e-12


class TestPanelQRCompact:
    def test_compact_matches_wy(self, rng):
        P = rng.standard_normal((13, 5))
        W, Y, _ = panel_qr_wy(P)
        V, T, _ = panel_qr_compact(P)
        assert np.allclose(W, V @ T, atol=1e-12)
        assert np.allclose(Y, V)

    def test_t_upper_triangular(self, rng):
        P = rng.standard_normal((9, 4))
        _, T, _ = panel_qr_compact(P)
        assert np.allclose(T, np.triu(T))
