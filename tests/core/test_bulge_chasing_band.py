"""Unit tests for band-storage bulge chasing (O(n b) memory)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.ops import random_symmetric_band
from repro.band.storage import LowerBandStorage, PackedBandStorage, dense_from_band
from repro.core.bulge_chasing import bulge_chase
from repro.core.bulge_chasing_band import WorkingBand, bulge_chase_band


class TestWorkingBand:
    def test_window_roundtrip(self, rng):
        A = random_symmetric_band(20, 3, rng)
        wb = WorkingBand(LowerBandStorage.from_dense(A, 3))
        D = wb.window_to_dense(4, 12)
        assert np.allclose(D, A[4:12, 4:12])
        D[0, 0] = 99.0
        D[1, 0] = D[0, 1] = -7.0
        wb.dense_to_window(D, 4, 12)
        D2 = wb.window_to_dense(4, 12)
        assert D2[0, 0] == 99.0 and D2[1, 0] == -7.0

    def test_memory_is_linear_in_n(self, rng):
        n, b = 200, 4
        wb = WorkingBand(LowerBandStorage.from_dense(random_symmetric_band(n, b, rng), b))
        assert wb.data.nbytes == (2 * b + 1) * n * 8

    def test_tridiagonal_extraction(self, rng):
        A = random_symmetric_band(12, 1, rng)
        wb = WorkingBand(LowerBandStorage.from_dense(A, 1))
        d, e = wb.tridiagonal()
        assert np.allclose(d, np.diagonal(A))
        assert np.allclose(e, np.diagonal(A, -1))

    def test_fill_depth_starts_at_b(self, rng):
        A = random_symmetric_band(16, 3, rng)
        wb = WorkingBand(LowerBandStorage.from_dense(A, 3))
        assert wb.max_fill_depth() == 3


class TestBulgeChaseBand:
    @pytest.mark.parametrize("n,b", [(20, 2), (30, 3), (40, 5), (25, 8)])
    def test_matches_dense_driver(self, rng, n, b):
        A = random_symmetric_band(n, b, rng)
        dense = bulge_chase(A, b)
        band = bulge_chase_band(LowerBandStorage.from_dense(A, b))
        assert np.allclose(dense.d, band.d, atol=1e-12)
        assert np.allclose(dense.e, band.e, atol=1e-12)
        assert len(dense.reflectors) == len(band.reflectors)
        for r1, r2 in zip(dense.reflectors, band.reflectors):
            assert r1.offset == r2.offset
            assert np.allclose(r1.v, r2.v, atol=1e-10)

    def test_accepts_packed_storage(self, rng):
        A = random_symmetric_band(24, 3, rng)
        pb = PackedBandStorage.from_dense(A, 3)
        res = bulge_chase_band(pb)
        ref = bulge_chase(A, 3)
        assert np.allclose(res.d, ref.d, atol=1e-12)

    def test_accepts_dense_with_bandwidth(self, rng):
        A = random_symmetric_band(18, 2, rng)
        res = bulge_chase_band(A, b=2)
        ref = bulge_chase(A, 2)
        assert np.allclose(res.d, ref.d, atol=1e-12)

    def test_dense_without_bandwidth_rejected(self, rng):
        with pytest.raises(ValueError):
            bulge_chase_band(random_symmetric_band(10, 2, rng))

    def test_q1_reconstructs(self, rng):
        n, b = 28, 4
        A = random_symmetric_band(n, b, rng)
        res = bulge_chase_band(LowerBandStorage.from_dense(A, b))
        T = dense_from_band(res.d, res.e)
        Q1 = res.q1()
        assert np.linalg.norm(Q1 @ T @ Q1.T - A) / np.linalg.norm(A) < 1e-12

    def test_tridiagonal_passthrough(self, rng):
        A = random_symmetric_band(15, 1, rng)
        res = bulge_chase_band(LowerBandStorage.from_dense(A, 1))
        assert len(res.reflectors) == 0
        assert np.allclose(res.d, np.diagonal(A))

    def test_invalid_bandwidth(self, rng):
        lb = LowerBandStorage(np.zeros((1, 10)), 0)
        with pytest.raises(ValueError):
            bulge_chase_band(lb)

    def test_fill_never_exceeds_2b(self, rng):
        """The WorkingBand depth contract: a chase in progress never
        creates fill deeper than 2b (the storage invariant)."""
        from repro.core.bulge_chasing import apply_bc_task, sweep_tasks, task_window
        from repro.core.bulge_chasing import BCTask

        n, b = 24, 3
        A = random_symmetric_band(n, b, rng)
        wb = WorkingBand(LowerBandStorage.from_dense(A, b))
        for i in range(4):
            for task in sweep_tasks(n, b, i):
                lo, hi = task_window(task, n, b)
                D = wb.window_to_dense(lo, hi)
                local = BCTask(task.sweep, task.step, task.col - lo,
                               task.row0 - lo, task.row1 - lo)
                apply_bc_task(D, b, local)
                wb.dense_to_window(D, lo, hi)
                assert wb.max_fill_depth(tol=1e-14) <= 2 * b
