"""Unit tests for Hermitian and generalized eigenproblem extensions."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import eigh as scipy_eigh

from repro.core.extensions import (
    cholesky_lower,
    eigh_generalized,
    eigh_hermitian,
    solve_triangular_lower,
)


def random_hermitian(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    G = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    return (G + G.conj().T) / 2.0


def random_spd(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((n, n))
    return M @ M.T + n * np.eye(n)


class TestHermitian:
    @pytest.mark.parametrize("n", [2, 8, 25, 50])
    def test_matches_numpy(self, n):
        A = random_hermitian(n, seed=n)
        lam, V = eigh_hermitian(A, bandwidth=3, second_block=6)
        lref = np.linalg.eigvalsh(A)
        assert np.max(np.abs(lam - lref)) < 1e-10 * max(1, np.max(np.abs(lref)))
        assert np.linalg.norm(A @ V - V * lam) / np.linalg.norm(A) < 1e-10
        assert np.linalg.norm(V.conj().T @ V - np.eye(n)) < 1e-9

    def test_eigenvalues_real(self):
        A = random_hermitian(20, seed=1)
        lam, _ = eigh_hermitian(A)
        assert lam.dtype == np.float64
        assert np.all(np.diff(lam) >= -1e-14)

    def test_eigenvalues_only(self):
        A = random_hermitian(15, seed=2)
        lam, V = eigh_hermitian(A, compute_vectors=False)
        assert V is None and lam.size == 15

    def test_real_symmetric_special_case(self):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((12, 12))
        A = ((A + A.T) / 2).astype(complex)
        lam, V = eigh_hermitian(A)
        assert np.max(np.abs(lam - np.linalg.eigvalsh(A.real))) < 1e-11

    def test_degenerate_spectrum(self):
        rng = np.random.default_rng(4)
        d = np.array([1.0, 1.0, 1.0, 5.0, 5.0, 7.0])
        Q, _ = np.linalg.qr(rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6)))
        A = (Q * d) @ Q.conj().T
        lam, V = eigh_hermitian(A)
        assert np.max(np.abs(lam - np.sort(d))) < 1e-10
        assert np.linalg.norm(V.conj().T @ V - np.eye(6)) < 1e-9

    def test_scaled_identity(self):
        lam, V = eigh_hermitian(3.5 * np.eye(10, dtype=complex))
        assert np.allclose(lam, 3.5)
        assert np.linalg.norm(V.conj().T @ V - np.eye(10)) < 1e-10

    def test_non_hermitian_rejected(self):
        A = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=complex)
        with pytest.raises(ValueError, match="Hermitian"):
            eigh_hermitian(A)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            eigh_hermitian(np.zeros((2, 3), dtype=complex))


class TestCholesky:
    @pytest.mark.parametrize("n", [1, 7, 32, 33, 70])
    def test_factorization(self, n):
        B = random_spd(n, seed=n)
        L = cholesky_lower(B)
        assert np.allclose(L, np.tril(L))
        assert np.linalg.norm(L @ L.T - B) / np.linalg.norm(B) < 1e-13

    def test_matches_numpy(self):
        B = random_spd(20, seed=5)
        assert np.allclose(cholesky_lower(B), np.linalg.cholesky(B), atol=1e-11)

    def test_indefinite_rejected(self):
        B = np.diag([1.0, -1.0, 2.0])
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_lower(B)

    def test_triangular_solves(self, rng):
        B = random_spd(15, seed=6)
        L = cholesky_lower(B)
        x = rng.standard_normal(15)
        assert np.allclose(solve_triangular_lower(L, L @ x), x, atol=1e-10)
        assert np.allclose(solve_triangular_lower(L, L.T @ x, transpose=True),
                           x, atol=1e-10)

    def test_triangular_solve_matrix_rhs(self, rng):
        B = random_spd(12, seed=7)
        L = cholesky_lower(B)
        X = rng.standard_normal((12, 4))
        assert np.allclose(solve_triangular_lower(L, L @ X), X, atol=1e-10)


class TestGeneralized:
    @pytest.mark.parametrize("n", [4, 20, 45])
    def test_matches_scipy(self, n):
        rng = np.random.default_rng(n)
        A = rng.standard_normal((n, n))
        A = (A + A.T) / 2
        B = random_spd(n, seed=n + 1)
        lam, X = eigh_generalized(A, B, bandwidth=3, second_block=6)
        lref = scipy_eigh(A, B, eigvals_only=True)
        assert np.max(np.abs(lam - lref)) < 1e-9 * max(1, np.max(np.abs(lref)))
        resid = np.linalg.norm(A @ X - B @ X * lam) / np.linalg.norm(A)
        assert resid < 1e-10

    def test_b_orthonormal_eigenvectors(self):
        n = 25
        rng = np.random.default_rng(8)
        A = rng.standard_normal((n, n))
        A = (A + A.T) / 2
        B = random_spd(n, seed=9)
        lam, X = eigh_generalized(A, B)
        assert np.linalg.norm(X.T @ B @ X - np.eye(n)) < 1e-10

    def test_b_identity_reduces_to_standard(self):
        n = 18
        rng = np.random.default_rng(10)
        A = rng.standard_normal((n, n))
        A = (A + A.T) / 2
        lam, _ = eigh_generalized(A, np.eye(n))
        assert np.max(np.abs(lam - np.linalg.eigvalsh(A))) < 1e-10

    def test_eigenvalues_only(self):
        A = np.diag([3.0, 1.0])
        B = np.diag([1.0, 2.0])
        lam, X = eigh_generalized(A, B, compute_vectors=False)
        assert X is None
        assert np.allclose(np.sort(lam), [0.5, 3.0])

    def test_indefinite_b_rejected(self):
        A = np.eye(3)
        B = np.diag([1.0, -1.0, 1.0])
        with pytest.raises(np.linalg.LinAlgError):
            eigh_generalized(A, B)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            eigh_generalized(np.eye(3), np.eye(4))
