"""Unit tests for sequential bulge chasing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.band.ops import random_symmetric_band
from repro.band.storage import dense_from_band
from repro.core.bulge_chasing import (
    apply_bc_task,
    bulge_chase,
    num_tasks_in_sweep,
    sweep_tasks,
    task_window,
)


class TestSweepGeometry:
    def test_first_task_row_window(self):
        tasks = sweep_tasks(20, 4, 0)
        assert tasks[0].col == 0
        assert tasks[0].row0 == 1 and tasks[0].row1 == 5

    def test_chase_advances_by_bandwidth(self):
        tasks = sweep_tasks(40, 5, 2)
        cols = [t.col for t in tasks]
        assert cols[0] == 2
        diffs = np.diff(cols[1:])
        assert np.all(diffs == 5)

    def test_task_count_matches_generator(self):
        for n, b, i in [(20, 3, 0), (33, 4, 7), (50, 8, 30), (10, 2, 7)]:
            assert num_tasks_in_sweep(n, b, i) == len(sweep_tasks(n, b, i))

    def test_later_sweeps_have_fewer_tasks(self):
        counts = [num_tasks_in_sweep(60, 4, i) for i in range(58)]
        assert all(c1 >= c2 for c1, c2 in zip(counts, counts[1:]))

    def test_bandwidth_one_has_no_tasks(self):
        assert num_tasks_in_sweep(20, 1, 0) == 0

    def test_last_sweep_single_task(self):
        tasks = sweep_tasks(20, 4, 17)  # i = n-3
        assert len(tasks) == 1
        assert tasks[0].length == 2

    def test_window_covers_task(self):
        for t in sweep_tasks(30, 4, 3):
            lo, hi = task_window(t, 30, 4)
            assert lo <= t.col and hi >= t.row1


class TestApplyTask:
    def test_annihilates_column(self, rng):
        n, b = 16, 4
        A = random_symmetric_band(n, b, rng)
        task = sweep_tasks(n, b, 0)[0]
        apply_bc_task(A, b, task)
        assert np.max(np.abs(A[2 : 1 + b, 0])) < 1e-13
        assert np.max(np.abs(A[0, 2 : 1 + b])) < 1e-13

    def test_preserves_symmetry(self, rng):
        n, b = 18, 3
        A = random_symmetric_band(n, b, rng)
        for task in sweep_tasks(n, b, 0):
            apply_bc_task(A, b, task)
            assert np.linalg.norm(A - A.T) < 1e-12

    def test_preserves_spectrum(self, rng):
        n, b = 14, 3
        A = random_symmetric_band(n, b, rng)
        lam0 = np.linalg.eigvalsh(A)
        for task in sweep_tasks(n, b, 0):
            apply_bc_task(A, b, task)
        assert np.max(np.abs(np.linalg.eigvalsh(A) - lam0)) < 1e-12

    def test_one_sweep_restores_band_beyond_column(self, rng):
        n, b = 20, 4
        A = random_symmetric_band(n, b, rng)
        for task in sweep_tasks(n, b, 0):
            apply_bc_task(A, b, task)
        # Column 0 is tridiagonal.  A sweep annihilates only each bulge's
        # *first* column; the remnant columns stay for the next sweeps, but
        # fill never reaches deeper than 2b below the diagonal.
        assert np.max(np.abs(A[2:, 0])) < 1e-13
        for q in range(1, n):
            assert np.max(np.abs(A[min(q + 2 * b, n) :, q]), initial=0.0) < 1e-12


class TestBulgeChase:
    @pytest.mark.parametrize("n,b", [(12, 3), (25, 2), (30, 5), (17, 8), (40, 6)])
    def test_reconstruction(self, rng, n, b):
        B = random_symmetric_band(n, b, rng)
        res = bulge_chase(B, b)
        T = dense_from_band(res.d, res.e)
        Q1 = res.q1()
        assert np.linalg.norm(Q1 @ T @ Q1.T - B) / np.linalg.norm(B) < 1e-12

    def test_q1_orthogonal(self, rng):
        B = random_symmetric_band(24, 4, rng)
        res = bulge_chase(B, 4)
        Q1 = res.q1()
        assert np.linalg.norm(Q1.T @ Q1 - np.eye(24)) < 1e-12

    def test_spectrum_preserved(self, rng):
        B = random_symmetric_band(30, 5, rng)
        res = bulge_chase(B, 5)
        T = dense_from_band(res.d, res.e)
        assert np.max(np.abs(np.linalg.eigvalsh(T) - np.linalg.eigvalsh(B))) < 1e-11

    def test_already_tridiagonal_passthrough(self, rng):
        B = random_symmetric_band(15, 1, rng)
        res = bulge_chase(B, 1)
        assert len(res.reflectors) == 0
        assert np.allclose(res.d, np.diagonal(B))
        assert np.allclose(res.e, np.diagonal(B, -1))

    def test_apply_q1_transpose_inverts(self, rng):
        B = random_symmetric_band(20, 3, rng)
        res = bulge_chase(B, 3)
        X = rng.standard_normal((20, 4))
        Y = X.copy()
        res.apply_q1(Y)
        res.apply_q1_transpose(Y)
        assert np.allclose(X, Y, atol=1e-12)

    def test_reflector_log_seq_is_contiguous(self, rng):
        B = random_symmetric_band(18, 4, rng)
        res = bulge_chase(B, 4)
        seqs = [r.seq for r in res.reflectors]
        assert seqs == list(range(len(seqs)))

    def test_input_not_modified(self, rng):
        B = random_symmetric_band(16, 3, rng)
        B0 = B.copy()
        bulge_chase(B, 3)
        assert np.array_equal(B, B0)

    def test_invalid_bandwidth(self, rng):
        with pytest.raises(ValueError):
            bulge_chase(random_symmetric_band(10, 2, rng), 0)

    def test_flops_scale(self, rng):
        B = random_symmetric_band(40, 4, rng)
        res = bulge_chase(B, 4)
        # ~12 n^2 b within a small factor.
        assert 0.2 * 12 * 40**2 * 4 < res.flops < 3 * 12 * 40**2 * 4


class TestCommitOrderContract:
    """``apply_q1``/``apply_q1_transpose`` assume the reflector log is in
    commit (seq) order and assert it once instead of re-sorting on every
    call."""

    def test_out_of_order_log_rejected(self, rng):
        B = random_symmetric_band(20, 3, rng)
        res = bulge_chase(B, 3)
        res.reflectors[0], res.reflectors[1] = res.reflectors[1], res.reflectors[0]
        with pytest.raises(AssertionError):
            res.apply_q1(np.eye(20))

    def test_order_checked_once_then_cached(self, rng):
        B = random_symmetric_band(18, 3, rng)
        res = bulge_chase(B, 3)
        X = np.eye(18)
        res.apply_q1(X)
        # Corrupting the log after the first (validated) application must
        # not re-trigger the scan — the contract is checked once.
        res.reflectors[0], res.reflectors[1] = res.reflectors[1], res.reflectors[0]
        res.apply_q1_transpose(X)
        assert np.isfinite(X).all()
