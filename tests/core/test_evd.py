"""Unit tests for the end-to-end EVD driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evd import eigh
from repro.bench.workloads import symmetric_with_spectrum, uniform_spectrum
from tests.conftest import make_symmetric


class TestEVDPresets:
    @pytest.mark.parametrize("method", ["proposed", "magma", "cusolver", "plasma"])
    def test_eigenpairs(self, method):
        A = make_symmetric(60, seed=7)
        lam_ref = np.linalg.eigvalsh(A)
        res = eigh(A, method=method, bandwidth=4, second_block=8)
        assert np.max(np.abs(res.eigenvalues - lam_ref)) < 1e-11
        assert res.residual(A) < 1e-12
        V = res.eigenvectors
        assert np.linalg.norm(V.T @ V - np.eye(60)) < 1e-11

    @pytest.mark.parametrize("method", ["proposed", "magma", "cusolver"])
    def test_eigenvalues_only(self, method):
        A = make_symmetric(50, seed=8)
        res = eigh(A, method=method, compute_vectors=False, bandwidth=3, second_block=6)
        assert res.eigenvectors is None
        assert np.max(np.abs(res.eigenvalues - np.linalg.eigvalsh(A))) < 1e-11
        with pytest.raises(ValueError):
            res.residual(A)

    @pytest.mark.parametrize("solver", ["dc", "qr", "bisect"])
    def test_all_solvers(self, solver):
        A = make_symmetric(40, seed=9)
        res = eigh(A, solver=solver, bandwidth=3, second_block=6)
        assert res.residual(A) < 1e-10
        assert res.solver == solver

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            eigh(make_symmetric(10), solver="jacobi")

    def test_known_spectrum_recovered(self):
        lam = uniform_spectrum(48, -3.0, 5.0)
        A = symmetric_with_spectrum(lam, seed=10)
        res = eigh(A, bandwidth=4, second_block=8)
        assert np.max(np.abs(res.eigenvalues - lam)) < 1e-11

    def test_eigenvalues_ascending(self):
        A = make_symmetric(30, seed=11)
        res = eigh(A)
        assert np.all(np.diff(res.eigenvalues) >= -1e-14)

    def test_raw_method_passthrough(self):
        A = make_symmetric(30, seed=12)
        res = eigh(A, method="sbr", bandwidth=3)
        assert res.tridiag.method == "sbr"

    def test_identity_matrix(self):
        A = np.eye(20)
        res = eigh(A)
        assert np.allclose(res.eigenvalues, 1.0)
        assert res.residual(A) < 1e-13

    def test_rank_one_matrix(self):
        v = np.arange(1.0, 13.0)
        A = np.outer(v, v)
        res = eigh(A, bandwidth=2, second_block=4)
        lam = res.eigenvalues
        assert abs(lam[-1] - float(v @ v)) < 1e-9
        assert np.max(np.abs(lam[:-1])) < 1e-9


class TestSecularModePlumbing:
    """`secular_mode` flows from `eigh` through the D&C solver."""

    def test_modes_agree_end_to_end(self, rng):
        A = make_symmetric(72, seed=11)
        rb = eigh(A, secular_mode="batched")
        rs = eigh(A, secular_mode="scalar")
        scale = max(float(np.max(np.abs(rs.eigenvalues))), 1.0)
        assert np.max(np.abs(rb.eigenvalues - rs.eigenvalues)) < 1e-13 * scale
        assert rb.residual(A) < 1e-12 and rs.residual(A) < 1e-12

    def test_dc_substage_times_recorded(self, rng):
        from repro.backend.context import ExecutionContext

        ctx = ExecutionContext()
        A = make_symmetric(64, seed=3)
        eigh(A, backend=ctx)
        assert {"dc_deflate", "dc_secular", "dc_gemm"} <= set(ctx.stage_times)
        # The sub-stages nest inside the solver stage, so they cannot
        # exceed it.
        sub = sum(
            ctx.stage_times[k]
            for k in ("dc_leaf", "dc_deflate", "dc_secular", "dc_gemm")
            if k in ctx.stage_times
        )
        assert sub <= ctx.stage_times["tridiag_solver"] + 1e-9

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ValueError):
            eigh(make_symmetric(16, seed=1), secular_mode="turbo")
