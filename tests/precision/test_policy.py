"""Precision policies: presets, validation, plan wiring, cache identity."""

import numpy as np
import pytest

from repro.plan import PlanError, plan_evd
from repro.precision import (
    PRECISION_PRESETS,
    PrecisionPolicy,
    resolve_policy,
)


class TestPolicy:
    def test_presets_cover_the_three_tokens(self):
        assert set(PRECISION_PRESETS) == {"fp64", "mixed", "fp32"}

    def test_fp64_preset_is_the_identity_policy(self):
        p = resolve_policy("fp64")
        assert p.is_fp64
        assert not p.refine
        assert p.tridiag_dtype == np.float64
        assert p.solver_dtype == np.float64
        assert p.back_transform_dtype == np.float64

    def test_mixed_preset_drops_every_stage_and_refines(self):
        p = resolve_policy("mixed")
        assert not p.is_fp64
        assert p.refine
        assert p.tridiag_dtype == np.float32
        assert p.solver_dtype == np.float32
        assert p.back_transform_dtype == np.float32

    def test_fp32_preset_skips_refinement(self):
        p = resolve_policy("fp32")
        assert not p.is_fp64
        assert not p.refine
        assert p.tridiag_dtype == np.float32

    def test_policy_passthrough_and_unknown_token(self):
        p = PRECISION_PRESETS["mixed"]
        assert resolve_policy(p) is p
        with pytest.raises(PlanError, match="precision"):
            resolve_policy("bf16")

    def test_bad_stage_dtype_rejected_at_construction(self):
        with pytest.raises(PlanError, match="tridiag dtype"):
            PrecisionPolicy(name="bad", tridiag="fp16")

    def test_policy_is_frozen(self):
        p = resolve_policy("mixed")
        with pytest.raises(Exception):
            p.tridiag = "fp64"

    def test_describe_names_the_stages(self):
        text = resolve_policy("mixed").describe()
        assert "tridiag=fp32" in text and "refine" in text


class TestPlannerGates:
    def test_plan_accepts_and_stores_precision(self):
        plan = plan_evd(128, "proposed", precision="mixed")
        assert plan.precision == "mixed"

    def test_default_is_fp64(self):
        assert plan_evd(128, "proposed").precision == "fp64"

    def test_unknown_precision_rejected(self):
        with pytest.raises(PlanError, match="precision"):
            plan_evd(128, "proposed", precision="tf32")

    def test_non_numpy_backend_rejected(self):
        with pytest.raises(PlanError, match="backend"):
            plan_evd(128, "proposed", precision="mixed", backend="torch")

    def test_dense_method_rejected(self):
        with pytest.raises(PlanError):
            plan_evd(128, "dense", precision="mixed")

    def test_mixed_requires_vectors(self):
        with pytest.raises(PlanError):
            plan_evd(128, "proposed", precision="mixed", compute_vectors=False)

    def test_fp32_without_vectors_is_allowed(self):
        plan = plan_evd(128, "proposed", precision="fp32", compute_vectors=False)
        assert plan.precision == "fp32"


class TestCacheToken:
    def test_fp64_token_matches_the_historical_spelling(self):
        # Old tokens stay stable: the fp64 policy adds nothing.
        with_knob = plan_evd(128, "proposed", precision="fp64")
        without = plan_evd(128, "proposed")
        assert with_knob.cache_token() == without.cache_token()
        assert "precision" not in without.cache_token()

    def test_non_fp64_token_is_distinct(self):
        t64 = plan_evd(128, "proposed").cache_token()
        tmx = plan_evd(128, "proposed", precision="mixed").cache_token()
        t32 = plan_evd(128, "proposed", precision="fp32").cache_token()
        assert len({t64, tmx, t32}) == 3
        assert "precision=mixed" in tmx

    def test_round_trips_through_dict(self):
        from repro.plan import EVDPlan

        plan = plan_evd(128, "proposed", precision="mixed")
        again = EVDPlan.from_dict(plan.to_dict())
        assert again.precision == "mixed"
        assert again.cache_token() == plan.cache_token()
