"""Ogita–Aishima refinement property tests: GOE matrices, clustered
spectra, quadratic residual contraction, typed stalls."""

import numpy as np
import pytest

from repro.precision import RefinementStalled, refine_eigh
from repro.resilience import verify_evd

EPS64 = float(np.finfo(np.float64).eps)


def goe(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    return (A + A.T) / 2.0


def fp32_start(A: np.ndarray):
    """An fp32-accurate eigendecomposition: LAPACK in single precision."""
    lam, V = np.linalg.eigh(A.astype(np.float32))
    return np.asarray(lam, dtype=np.float64), np.asarray(V, dtype=np.float64)


class TestGOERefinement:
    @pytest.mark.parametrize("n", [8, 64, 256])
    def test_fp32_start_reaches_fp64_tolerances(self, n):
        A = goe(n, seed=n)
        lam0, V0 = fp32_start(A)
        lam, V, report = refine_eigh(A, lam0, V0)
        assert report.converged
        norm = np.linalg.norm(A)
        res = np.linalg.norm(A @ V - V * lam[None, :]) / norm
        orth = np.linalg.norm(V.T @ V - np.eye(n))
        bound = 200.0 * n * EPS64
        assert res <= bound
        assert orth <= bound
        # Ascending order is part of the contract.
        assert np.all(np.diff(lam) >= 0.0)

    @pytest.mark.parametrize("n", [64, 256])
    def test_residual_decreases_quadratically(self, n):
        A = goe(n, seed=1000 + n)
        lam0, V0 = fp32_start(A)
        _, _, report = refine_eigh(A, lam0, V0)
        # Entering residuals: index 0 is the unrefined fp32 start.  Each
        # sweep should square the error (allow generous slack above the
        # eps64 floor): r_{k+1} <= C * r_k^1.5 is already far stronger
        # than the stall criterion and only quadratic contraction
        # achieves it from 1e-6 in <= 3 steps.
        rs = report.residuals
        assert len(rs) >= 2
        for prev, cur in zip(rs, rs[1:]):
            if cur <= 100.0 * n * EPS64:
                break  # hit the fp64 floor — nothing more to contract
            assert cur <= max(prev**1.5 * 50.0, 100.0 * n * EPS64)

    def test_refined_result_passes_verify_evd(self):
        n = 128
        A = goe(n, seed=7)
        lam0, V0 = fp32_start(A)
        lam, V, _ = refine_eigh(A, lam0, V0)
        from repro.core.evd import EVDResult

        result = EVDResult(
            eigenvalues=lam, eigenvectors=V, tridiag=None, solver="dc"
        )
        verify_evd(A, result).raise_if_failed()


class TestClusteredSpectra:
    @pytest.mark.parametrize("n", [32, 96])
    def test_tight_clusters_are_resolved(self, n):
        """Eigenvalues in near-degenerate groups: the elementwise update
        cannot separate them, the Rayleigh-Ritz cluster rotation must."""
        rng = np.random.default_rng(n)
        # Three tight clusters separated by O(1) gaps.
        base = np.repeat([-1.0, 0.5, 2.0], n // 3)
        base = np.concatenate([base, 3.0 + np.arange(n - base.size)])
        lam_true = np.sort(base + rng.uniform(0.0, 1e-9, size=n))
        Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        A = (Q * lam_true) @ Q.T
        A = (A + A.T) / 2.0
        lam0, V0 = fp32_start(A)
        lam, V, report = refine_eigh(A, lam0, V0)
        assert report.converged
        assert report.clusters >= 1
        norm = np.linalg.norm(A)
        res = np.linalg.norm(A @ V - V * lam[None, :]) / norm
        orth = np.linalg.norm(V.T @ V - np.eye(n))
        bound = 200.0 * n * EPS64
        assert res <= bound and orth <= bound

    def test_identity_like_matrix_all_one_cluster(self):
        n = 24
        rng = np.random.default_rng(3)
        A = np.eye(n) + 1e-10 * goe(n, seed=4)
        A = (A + A.T) / 2.0
        lam0, V0 = fp32_start(A)
        lam, V, report = refine_eigh(A, lam0, V0)
        assert report.converged
        assert np.allclose(lam, 1.0, atol=1e-8)
        assert np.linalg.norm(V.T @ V - np.eye(n)) <= 200.0 * n * EPS64
        del rng


class TestStall:
    def test_garbage_start_raises_typed_stall(self):
        n = 48
        A = goe(n, seed=11)
        rng = np.random.default_rng(12)
        lam0 = np.sort(rng.standard_normal(n))
        V0 = rng.standard_normal((n, n))  # not remotely orthogonal
        with pytest.raises(RefinementStalled):
            refine_eigh(A, lam0, V0, max_iter=3)

    def test_stall_is_a_convergence_error(self):
        from repro.resilience import ConvergenceError

        assert issubclass(RefinementStalled, ConvergenceError)

    def test_already_converged_input_is_a_single_measurement(self):
        n = 40
        A = goe(n, seed=21)
        lam0, V0 = np.linalg.eigh(A)
        lam, V, report = refine_eigh(A, lam0, V0)
        assert report.converged
        assert report.iterations == 1
        assert np.array_equal(lam, np.asarray(lam0))

    def test_report_to_dict_round_trip_fields(self):
        n = 16
        A = goe(n, seed=31)
        lam0, V0 = fp32_start(A)
        _, _, report = refine_eigh(A, lam0, V0)
        d = report.to_dict()
        assert d["converged"] is True
        assert d["iterations"] == report.iterations
        assert len(d["residuals"]) == len(report.residuals)
