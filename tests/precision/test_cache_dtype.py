"""Dtype audit of the content-addressed cache keys (regression).

The serving layer's bit-identical replay hinges on the matrix
fingerprint covering *dtype* as well as bytes: an fp32 cast of a matrix
must never alias its fp64 original, and a ``precision="mixed"`` plan
must never alias the fp64 plan for the same bytes."""

import numpy as np

from repro.core.validation import matrix_fingerprint
from repro.plan import plan_evd
from repro.serve.cache import plan_cache_key


def goe(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    return (A + A.T) / 2.0


class TestFingerprintDtype:
    def test_fp32_cast_has_a_distinct_fingerprint(self):
        A = goe(32, seed=0)
        assert matrix_fingerprint(A) != matrix_fingerprint(A.astype(np.float32))

    def test_round_trip_cast_restores_neither(self):
        """fp64 -> fp32 -> fp64 loses bits: all three fingerprints differ."""
        A = goe(32, seed=1)
        A32 = A.astype(np.float32)
        A_round = A32.astype(np.float64)
        fps = {
            matrix_fingerprint(A),
            matrix_fingerprint(A32),
            matrix_fingerprint(A_round),
        }
        assert len(fps) == 3

    def test_same_bytes_same_dtype_same_fingerprint(self):
        A = goe(32, seed=2)
        assert matrix_fingerprint(A) == matrix_fingerprint(A.copy())


class TestPlanCacheKeyDtype:
    def test_fp32_cast_and_fp64_get_distinct_entries(self):
        A = goe(64, seed=3)
        plan = plan_evd(64, "proposed")
        assert plan_cache_key(A, plan) != plan_cache_key(
            A.astype(np.float32), plan
        )

    def test_precision_policies_get_distinct_entries(self):
        A = goe(64, seed=4)
        keys = {
            plan_cache_key(A, plan_evd(64, "proposed")),
            plan_cache_key(A, plan_evd(64, "proposed", precision="mixed")),
            plan_cache_key(A, plan_evd(64, "proposed", precision="fp32")),
        }
        assert len(keys) == 3

    def test_service_level_no_aliasing(self):
        """End to end: submitting the fp32 cast after the fp64 original
        must compute (and cache) separately, not replay fp64 bits."""
        from repro.serve import ServiceConfig, SolverService

        A = goe(48, seed=5)
        A32 = A.astype(np.float32)
        with SolverService(ServiceConfig(workers=1)) as svc:
            r64 = svc.submit(A).result(timeout=60)
            r32 = svc.submit(A32).result(timeout=60)
            stats = svc.stats()
        assert stats["metrics"]["cache_hits_at_submit"] == 0
        assert not np.array_equal(r64.eigenvalues, r32.eigenvalues)
