"""The mixed-precision execution path: end-to-end accuracy, fp64
bit-identity, fault-driven escalation, and the serve integration."""

import numpy as np
import pytest

import repro
from repro.plan import plan_evd
from repro.plan.runner import execute_plan
from repro.precision import PrecisionWarning
from repro.resilience import (
    FaultSpec,
    clear_faults,
    install_faults,
    verify_evd,
)


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    clear_faults()
    yield
    clear_faults()


def goe(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    return (A + A.T) / 2.0


class TestMixedEndToEnd:
    @pytest.mark.parametrize("method", ["proposed", "magma", "cusolver", "plasma"])
    def test_mixed_passes_fp64_verification(self, method):
        n = 96
        A = goe(n, seed=5)
        res = repro.eigh(A, method=method, precision="mixed")
        assert res.refinement is not None
        assert res.refinement.converged
        assert not res.refinement.escalated
        assert res.eigenvalues.dtype == np.float64
        assert res.eigenvectors.dtype == np.float64
        verify_evd(A, res).raise_if_failed()

    def test_mixed_pipeline_actually_ran_fp32(self):
        """The low-precision stages must genuinely run in float32 — the
        tridiagonal factors the result carries are the proof."""
        A = goe(80, seed=6)
        res = repro.eigh(A, method="proposed", precision="mixed")
        tri = res.tridiag
        assert tri is not None
        assert tri.band_result is not None
        # DBBR panel/WY factors follow the working dtype.
        blk = tri.band_result.blocks[0]
        assert blk.W.dtype == np.float32

    def test_fp64_precision_is_bit_identical_to_default(self):
        A = goe(64, seed=9)
        base = repro.eigh(A, method="proposed")
        viaknob = repro.eigh(A, method="proposed", precision="fp64")
        assert np.array_equal(base.eigenvalues, viaknob.eigenvalues)
        assert np.array_equal(base.eigenvectors, viaknob.eigenvectors)
        assert viaknob.refinement is None

    def test_fp32_policy_returns_fp32_level_accuracy_unrefined(self):
        A = goe(64, seed=10)
        res = repro.eigh(A, method="proposed", precision="fp32")
        assert res.refinement is None
        # fp32-level, not fp64-level: residual in the 1e-7..1e-4 window.
        r = res.residual(A)
        assert 1e-9 < r < 1e-3

    def test_eigenvalues_only_mixed_is_rejected_but_fp32_works(self):
        from repro.plan import PlanError

        A = goe(48, seed=12)
        with pytest.raises(PlanError):
            repro.eigh(A, precision="mixed", compute_vectors=False)
        res = repro.eigh(A, precision="fp32", compute_vectors=False)
        lam64 = np.linalg.eigvalsh(A)
        # Eigenvalue machinery stays fp64-accurate on the promoted (d, e):
        # only the reduction itself contributes fp32 error.
        assert np.max(np.abs(res.eigenvalues - lam64)) < 1e-3


class TestEscalation:
    def test_injected_refine_fault_escalates_to_fp64(self):
        n = 64
        A = goe(n, seed=20)
        install_faults([
            FaultSpec("precision.refine", "convergence", times=10)
        ])
        res = repro.eigh(A, method="proposed", precision="mixed")
        assert res.refinement is not None
        assert res.refinement.escalated
        assert not res.refinement.converged
        recs = res.refinement.escalations
        assert recs and recs[0].method.endswith("[precision=mixed]")
        # The escalated result is the full fp64 pipeline's output.
        clear_faults()
        base = repro.eigh(A, method="proposed")
        assert np.array_equal(res.eigenvalues, base.eigenvalues)
        assert np.array_equal(res.eigenvectors, base.eigenvectors)
        verify_evd(A, res).raise_if_failed()

    def test_escalated_result_is_deterministic(self):
        A = goe(48, seed=21)
        outs = []
        for _ in range(2):
            install_faults([
                FaultSpec("precision.refine", "convergence", times=10)
            ])
            outs.append(repro.eigh(A, method="proposed", precision="mixed"))
            clear_faults()
        assert np.array_equal(outs[0].eigenvalues, outs[1].eigenvalues)
        assert np.array_equal(outs[0].eigenvectors, outs[1].eigenvectors)

    def test_fallback_chain_carries_fp64_twin_for_mixed_plan(self):
        from repro.resilience.fallback import resolve_fallback_chain

        plan = plan_evd(96, "proposed", precision="mixed", fallback="chain")
        chain = resolve_fallback_chain(plan)
        assert chain[0].precision == "mixed"
        assert chain[1].precision == "fp64"
        assert chain[1].method == plan.method

    def test_execute_plan_routes_precision(self):
        A = goe(56, seed=23)
        plan = plan_evd(56, "proposed", precision="mixed")
        res = execute_plan(A, plan)
        assert res.refinement is not None
        verify_evd(A, res).raise_if_failed()


class TestUpcastWarning:
    def test_float32_input_on_fp64_path_warns_once(self):
        A32 = goe(32, seed=30).astype(np.float32)
        with pytest.warns(PrecisionWarning, match="mixed"):
            repro.eigh(A32, method="proposed")

    def test_no_warning_under_an_explicit_policy(self):
        import warnings

        A32 = goe(32, seed=31).astype(np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("error", PrecisionWarning)
            repro.eigh(A32, method="proposed", precision="mixed")

    def test_no_warning_for_float64_input(self):
        import warnings

        A = goe(32, seed=32)
        with warnings.catch_warnings():
            warnings.simplefilter("error", PrecisionWarning)
            repro.eigh(A, method="proposed")


class TestServeIntegration:
    def test_mixed_requests_served_and_metered(self):
        from repro.serve import ServiceConfig, SolverService

        A = goe(64, seed=40)
        with SolverService(ServiceConfig(workers=1)) as svc:
            res = svc.submit(A, precision="mixed").result(timeout=60)
            assert res.refinement is not None
            stats = svc.stats()
        prec = stats["metrics"]["precision"]
        assert sum(int(v) for v in prec["refinement_iterations"].values()) == 1
        assert prec["escalations"] == 0

    def test_escalation_counter_increments(self):
        from repro.serve import ServiceConfig, SolverService

        A = goe(48, seed=41)
        install_faults([
            FaultSpec("precision.refine", "convergence", times=10)
        ])
        with SolverService(ServiceConfig(workers=1)) as svc:
            res = svc.submit(A, precision="mixed").result(timeout=60)
            assert res.refinement is not None and res.refinement.escalated
            stats = svc.stats()
        assert stats["metrics"]["precision"]["escalations"] == 1
