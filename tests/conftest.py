"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test RNG."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def sym64(rng) -> np.ndarray:
    """A 64 x 64 GOE matrix — the workhorse input."""
    g = rng.standard_normal((64, 64))
    return (g + g.T) / 2.0


def make_symmetric(n: int, seed: int = 0) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


def reconstruction_error(A: np.ndarray, Q: np.ndarray, B: np.ndarray) -> float:
    """Relative ``||A - Q B Q^T||_F``."""
    return float(np.linalg.norm(A - Q @ B @ Q.T) / max(np.linalg.norm(A), 1e-300))


def orthogonality_error(Q: np.ndarray) -> float:
    n = Q.shape[0]
    return float(np.linalg.norm(Q.T @ Q - np.eye(n)))
