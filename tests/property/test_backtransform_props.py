"""Hypothesis property tests for the back transformations."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.band.ops import random_symmetric_band
from repro.core.back_transform import q_from_blocks
from repro.core.bc_back_transform import apply_q1_blocked, blocked_q1_blocks
from repro.core.bulge_chasing import bulge_chase
from repro.core.dbbr import dbbr


def _sym(n: int, seed: int) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


@st.composite
def reduction_case(draw):
    n = draw(st.integers(min_value=8, max_value=40))
    b = draw(st.integers(min_value=1, max_value=min(6, n - 2)))
    groups = draw(st.integers(min_value=1, max_value=4))
    gw = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, b, b * groups, gw, seed


@settings(max_examples=30, deadline=None)
@given(reduction_case())
def test_all_sbr_back_methods_agree(case):
    """blocked == recursive == incremental for every reduction and every
    group width."""
    n, b, k, gw, seed = case
    res = dbbr(_sym(n, seed), b, k)
    q_blocked = q_from_blocks(res.blocks, n, method="blocked")
    q_rec = q_from_blocks(res.blocks, n, method="recursive")
    assert np.allclose(q_blocked, q_rec, atol=1e-10)
    from repro.core.back_transform import apply_sbr_q

    q_inc = np.eye(n)
    apply_sbr_q(res.blocks, q_inc, method="incremental", group_width=gw)
    assert np.allclose(q_blocked, q_inc, atol=1e-10)


@st.composite
def bc_case(draw):
    n = draw(st.integers(min_value=6, max_value=36))
    b = draw(st.integers(min_value=2, max_value=min(6, n - 1)))
    group = draw(st.integers(min_value=1, max_value=32))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, b, group, seed


@settings(max_examples=30, deadline=None)
@given(bc_case())
def test_blocked_bc_back_exact_for_any_group(case):
    """WY-blocking the reflector log is order-preserving for every group
    width: blocked Q1 equals the scalar Q1."""
    n, b, group, seed = case
    A = random_symmetric_band(n, b, np.random.default_rng(seed))
    bc = bulge_chase(A, b)
    blocks = blocked_q1_blocks(bc, group=group)
    X = np.random.default_rng(seed + 1).standard_normal((n, 3))
    Y1 = X.copy()
    bc.apply_q1(Y1)
    Y2 = X.copy()
    apply_q1_blocked(blocks, Y2)
    assert np.allclose(Y1, Y2, atol=1e-10)
    # Round trip through the transpose.
    apply_q1_blocked(blocks, Y2, transpose=True)
    assert np.allclose(Y2, X, atol=1e-10)
