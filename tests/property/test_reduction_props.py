"""Hypothesis property tests for the reduction pipeline invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.band.ops import bandwidth_of, random_symmetric_band
from repro.band.storage import dense_from_band
from repro.core.bulge_chasing import bulge_chase
from repro.core.bc_pipeline import bulge_chase_pipelined
from repro.core.dbbr import dbbr
from repro.core.sbr import sbr


def _sym(n: int, seed: int) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


@st.composite
def reduction_case(draw):
    n = draw(st.integers(min_value=6, max_value=48))
    b = draw(st.integers(min_value=1, max_value=max(1, min(8, n - 2))))
    groups = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, b, b * groups, seed


@settings(max_examples=40, deadline=None)
@given(reduction_case())
def test_dbbr_similarity_invariants(case):
    """For any (n, b, k, seed): DBBR yields an orthogonally similar band
    matrix of bandwidth <= b with the original spectrum."""
    n, b, k, seed = case
    A = _sym(n, seed)
    res = dbbr(A, b, k)
    assert bandwidth_of(res.band, tol=1e-9) <= b
    err = np.linalg.norm(res.reconstruct() - A) / max(np.linalg.norm(A), 1e-300)
    assert err < 1e-11
    lam0 = np.linalg.eigvalsh(A)
    lam1 = np.linalg.eigvalsh(res.band)
    assert np.max(np.abs(lam0 - lam1)) < 1e-9 * max(1.0, np.max(np.abs(lam0)))


@settings(max_examples=30, deadline=None)
@given(reduction_case())
def test_sbr_and_dbbr_same_band(case):
    """SBR and DBBR perform identical eliminations, so the band matrices
    agree (deferral only reorders exact arithmetic)."""
    n, b, k, seed = case
    A = _sym(n, seed)
    r1 = sbr(A, b)
    r2 = dbbr(A, b, k, syr2k_kind="reference")
    assert np.allclose(r1.band, r2.band, atol=1e-8 * max(1.0, np.linalg.norm(A)))


@st.composite
def band_case(draw):
    n = draw(st.integers(min_value=4, max_value=40))
    b = draw(st.integers(min_value=2, max_value=max(2, min(7, n - 1))))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, b, seed


@settings(max_examples=40, deadline=None)
@given(band_case())
def test_bulge_chasing_invariants(case):
    """Bulge chasing preserves the spectrum and produces an orthogonal Q1
    for any band matrix."""
    n, b, seed = case
    B = random_symmetric_band(n, b, np.random.default_rng(seed))
    res = bulge_chase(B, b)
    T = dense_from_band(res.d, res.e)
    Q1 = res.q1()
    assert np.linalg.norm(Q1.T @ Q1 - np.eye(n)) < 1e-11
    rec = np.linalg.norm(Q1 @ T @ Q1.T - B) / max(np.linalg.norm(B), 1e-300)
    assert rec < 1e-11


@st.composite
def pipeline_case(draw):
    n = draw(st.integers(min_value=6, max_value=40))
    b = draw(st.integers(min_value=2, max_value=max(2, min(6, n - 1))))
    S = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=16)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, b, S, seed


@settings(max_examples=40, deadline=None)
@given(pipeline_case())
def test_pipeline_reordering_is_exact(case):
    """The spin-lock pipeline is a pure reordering of commuting tasks: the
    tridiagonal output is bit-identical to the sequential chase for every
    (n, b, S)."""
    n, b, S, seed = case
    B = random_symmetric_band(n, b, np.random.default_rng(seed))
    seq = bulge_chase(B, b)
    par, stats = bulge_chase_pipelined(B, b, max_sweeps=S)
    assert np.array_equal(seq.d, par.d)
    assert np.array_equal(seq.e, par.e)
    if S is not None and stats.rounds:
        assert stats.max_parallel <= S
