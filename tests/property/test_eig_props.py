"""Hypothesis property tests for the tridiagonal eigensolvers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.band.storage import dense_from_band
from repro.eig.dc import dc_eigh
from repro.eig.qr_iteration import tridiag_qr_eigh
from repro.eig.secular import refine_z, secular_eigenvectors, solve_all_roots
from repro.eig.sturm import eigvals_bisect, sturm_count


@st.composite
def tridiag_case(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    scale = 10.0 ** draw(st.integers(min_value=-3, max_value=3))
    d = rng.standard_normal(n) * scale
    e = rng.standard_normal(max(n - 1, 0)) * scale
    # Sprinkle exact zeros into e to exercise splitting.
    if n > 2 and draw(st.booleans()):
        e[rng.integers(0, n - 1)] = 0.0
    return d, e


@settings(max_examples=40, deadline=None)
@given(tridiag_case())
def test_dc_equals_qr_iteration(case):
    """Two independent solvers agree on every random tridiagonal."""
    d, e = case
    lam_dc, _ = dc_eigh(d, e, compute_vectors=False)
    lam_qr, _ = tridiag_qr_eigh(d, e, compute_vectors=False)
    scale = max(np.max(np.abs(lam_qr)) if lam_qr.size else 0.0, 1e-30)
    assert np.max(np.abs(lam_dc - lam_qr)) < 1e-11 * scale


@settings(max_examples=30, deadline=None)
@given(tridiag_case())
def test_dc_eigenvector_residuals(case):
    """D&C eigenpairs satisfy the residual and orthogonality bounds."""
    d, e = case
    n = d.size
    lam, U = dc_eigh(d, e)
    T = dense_from_band(d, e)
    norm_t = max(np.linalg.norm(T), 1e-30)
    assert np.linalg.norm(T @ U - U * lam) < 1e-11 * norm_t
    assert np.linalg.norm(U.T @ U - np.eye(n)) < 1e-10


@settings(max_examples=30, deadline=None)
@given(tridiag_case())
def test_bisection_brackets_dc(case):
    """Bisection (Sturm counts) agrees with D&C — a third independent
    check rooted in inertia rather than factorization."""
    d, e = case
    lam_dc, _ = dc_eigh(d, e, compute_vectors=False)
    lam_bi = eigvals_bisect(d, e)
    scale = max(np.max(np.abs(lam_dc)) if lam_dc.size else 0.0, 1e-30)
    assert np.max(np.abs(np.sort(lam_bi) - lam_dc)) < 1e-10 * scale


@settings(max_examples=30, deadline=None)
@given(tridiag_case())
def test_sturm_count_consistent_with_eigenvalues(case):
    """nu(x) computed by the Sturm recurrence equals the number of
    computed eigenvalues below x, for shifts away from eigenvalues."""
    d, e = case
    lam, _ = tridiag_qr_eigh(d, e, compute_vectors=False)
    if lam.size == 0:
        return
    gaps = np.diff(lam)
    scale = max(np.max(np.abs(lam)), 1.0)
    # Pick shifts at well-separated midpoints only.
    for i, g in enumerate(gaps):
        if g > 1e-6 * scale:
            x = 0.5 * (lam[i] + lam[i + 1])
            assert int(sturm_count(d, e, x)[0]) == i + 1


@st.composite
def secular_case(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    d = np.sort(rng.standard_normal(n))
    d += np.arange(n) * 1e-5  # separated poles
    z = rng.standard_normal(n)
    z[np.abs(z) < 1e-2] = 1e-2
    rho = float(draw(st.floats(min_value=0.05, max_value=10.0)))
    return d, z, rho


@settings(max_examples=40, deadline=None)
@given(secular_case())
def test_secular_interlacing_and_residual(case):
    """Interlacing, trace preservation, and eigenpair residuals hold for
    every well-separated rank-one update."""
    d, z, rho = case
    n = d.size
    roots = solve_all_roots(d, z, rho)
    lam = roots.values
    assert np.all(lam[:-1] > d[:-1]) and np.all(lam[:-1] < d[1:] + 1e-30)
    assert lam[-1] > d[-1]
    assert abs(np.sum(lam) - (np.sum(d) + rho * float(z @ z))) < 1e-8 * max(
        np.max(np.abs(lam)), 1.0
    ) * n
    U = secular_eigenvectors(roots, refine_z(roots, z, rho))
    M = np.diag(d) + rho * np.outer(z, z)
    assert np.linalg.norm(M @ U - U * lam) < 1e-9 * max(np.linalg.norm(M), 1.0)
    assert np.linalg.norm(U.T @ U - np.eye(n)) < 1e-9
