"""Hypothesis property tests for SVD, Hermitian, generalized, and
serialization paths."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extensions import cholesky_lower, eigh_generalized, eigh_hermitian
from repro.core.svd import svd


@st.composite
def matrix_shape(draw):
    m = draw(st.integers(min_value=1, max_value=30))
    n = draw(st.integers(min_value=1, max_value=m))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return m, n, seed


@settings(max_examples=30, deadline=None)
@given(matrix_shape())
def test_svd_properties(case):
    """Singular values nonnegative/descending; thin factors orthonormal;
    exact reconstruction — for any tall shape, including rank deficiency."""
    m, n, seed = case
    rng = np.random.default_rng(seed)
    r = rng.integers(1, n + 1)
    A = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
    s, U, V = svd(A)
    assert np.all(s >= 0)
    assert np.all(np.diff(s) <= 1e-12 * max(s[0], 1.0))
    norm = max(np.linalg.norm(A), 1e-30)
    assert np.linalg.norm((U * s) @ V.T - A) / norm < 1e-10
    assert np.linalg.norm(U.T @ U - np.eye(n)) < 1e-9
    assert np.linalg.norm(V.T @ V - np.eye(n)) < 1e-9
    sref = np.linalg.svd(A, compute_uv=False)
    assert np.max(np.abs(s - sref)) < 1e-10 * max(sref[0], 1.0)


@st.composite
def hermitian_case(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, seed


@settings(max_examples=25, deadline=None)
@given(hermitian_case())
def test_hermitian_properties(case):
    """Real eigenvalues, unitary vectors, exact residual for any Hermitian."""
    n, seed = case
    rng = np.random.default_rng(seed)
    G = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    A = (G + G.conj().T) / 2.0
    lam, V = eigh_hermitian(A)
    assert lam.dtype == np.float64
    norm = max(np.linalg.norm(A), 1e-30)
    assert np.linalg.norm(A @ V - V * lam) / norm < 1e-9
    assert np.linalg.norm(V.conj().T @ V - np.eye(n)) < 1e-8
    assert np.max(np.abs(lam - np.linalg.eigvalsh(A))) < 1e-9 * max(
        np.max(np.abs(lam)), 1.0
    )


@settings(max_examples=25, deadline=None)
@given(hermitian_case())
def test_generalized_properties(case):
    """lam/X solve the pencil with B-orthonormal X, for random SPD B."""
    n, seed = case
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    A = (A + A.T) / 2.0
    M = rng.standard_normal((n, n))
    B = M @ M.T + n * np.eye(n)
    lam, X = eigh_generalized(A, B)
    norm = max(np.linalg.norm(A), 1e-30)
    assert np.linalg.norm(A @ X - B @ X * lam) / norm < 1e-8
    assert np.linalg.norm(X.T @ B @ X - np.eye(n)) < 1e-8
    # Cholesky self-check on this B.
    L = cholesky_lower(B)
    assert np.linalg.norm(L @ L.T - B) / np.linalg.norm(B) < 1e-12


@st.composite
def tridiag_method(draw):
    n = draw(st.integers(min_value=6, max_value=40))
    b = draw(st.integers(min_value=1, max_value=6))
    method = draw(st.sampled_from(["dbbr", "sbr", "tile", "direct"]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, b, method, seed


@settings(max_examples=25, deadline=None)
@given(tridiag_method())
def test_serialization_roundtrip_property(case):
    """save/load preserves the factorization for every method and shape."""
    import tempfile
    from pathlib import Path

    from repro.core.serialization import load_tridiag, save_tridiag
    from repro.core.tridiag import tridiagonalize

    n, b, method, seed = case
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    A = (A + A.T) / 2.0
    res = tridiagonalize(A, method=method, bandwidth=b, second_block=2 * b)
    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "f.npz"
        save_tridiag(path, res)
        loaded = load_tridiag(path)
    X = rng.standard_normal((n, 3))
    Y1, Y2 = X.copy(), X.copy()
    res.apply_q(Y1)
    loaded.apply_q(Y2)
    assert np.array_equal(Y1, Y2)
