"""Hypothesis property tests for the pipeline executor and cost models."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.executor import simulate_bc_pipeline, tasks_per_sweep
from repro.models.bc_model import stall_cycles, successive_bulge_cycles, total_cycles


@st.composite
def pipeline_config(draw):
    n = draw(st.integers(min_value=5, max_value=400))
    b = draw(st.integers(min_value=2, max_value=16))
    s1 = draw(st.integers(min_value=1, max_value=64))
    s2 = draw(st.integers(min_value=1, max_value=64))
    return n, b, min(s1, s2), max(s1, s2)


@settings(max_examples=60, deadline=None)
@given(pipeline_config())
def test_makespan_monotone_in_parallelism(cfg):
    """More pipeline slots never slow the schedule down."""
    n, b, s_lo, s_hi = cfg
    t_lo = simulate_bc_pipeline(n, b, s_lo, 1.0).total_time_s
    t_hi = simulate_bc_pipeline(n, b, s_hi, 1.0).total_time_s
    assert t_hi <= t_lo + 1e-9


@settings(max_examples=60, deadline=None)
@given(pipeline_config())
def test_makespan_bounds(cfg):
    """Serial-work upper bound and critical-path lower bound always hold."""
    n, b, s, _ = cfg
    sim = simulate_bc_pipeline(n, b, s, 1.0)
    counts = tasks_per_sweep(n, b)
    if counts.size == 0:
        assert sim.total_time_s == 0.0
        return
    assert sim.total_time_s <= sim.total_tasks + 1e-9  # one slot = serial sum
    assert sim.total_time_s >= counts.max() - 1e-9  # longest sweep is serial
    if counts.size >= 2:
        # Law 1: sweep 1 cannot start before sweep 0 finishes its third
        # bulge (clamped to sweep 0's length when it is shorter).
        assert sim.sweep_start[1] >= min(3, int(counts[0])) - 1e-9


@settings(max_examples=60, deadline=None)
@given(pipeline_config())
def test_work_conservation(cfg):
    """Sum of sweep busy spans >= total work; utilization <= 1."""
    n, b, s, _ = cfg
    sim = simulate_bc_pipeline(n, b, s, 1.0)
    if sim.total_tasks == 0:
        return
    spans = np.sum(sim.sweep_end - sim.sweep_start)
    assert spans >= sim.total_tasks - 1e-6  # waiting only adds span
    assert sim.mean_parallel_sweeps <= s + 1e-9


@st.composite
def model_config(draw):
    n = draw(st.integers(min_value=64, max_value=100_000))
    b = draw(st.sampled_from([8, 16, 32, 64, 128]))
    s = draw(st.integers(min_value=1, max_value=1024))
    return n, b, s


@settings(max_examples=80, deadline=None)
@given(model_config())
def test_closed_form_model_properties(cfg):
    """The Section 3.3 closed form: nonnegative stalls, monotone in S,
    lower-bounded by the fully-pipelined 3n - 2."""
    n, b, s = cfg
    stalls = stall_cycles(n, b, s)
    assert stalls >= 0.0
    assert stall_cycles(n, b, s + 1) <= stalls + 1e-6
    assert total_cycles(n, b, s) >= successive_bulge_cycles(n)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=5, max_value=300), st.integers(min_value=2, max_value=12))
def test_task_count_consistency(n, b):
    """Executor task accounting equals the flop-model count."""
    from repro.models.flops import bc_task_count

    counts = tasks_per_sweep(n, b)
    assert float(np.sum(counts)) == bc_task_count(n, b)
