"""Hypothesis property tests for the Householder/WY foundation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.householder import (
    WYAccumulator,
    make_householder,
    merge_wy,
)
from repro.core.panel_qr import explicit_q, panel_qr
from repro.core.syr2k import syr2k_reference, syr2k_square_blocked

finite_vec = lambda n: hnp.arrays(  # noqa: E731
    np.float64,
    n,
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=30).flatmap(finite_vec))
def test_householder_annihilation_property(x):
    """For any finite vector: H x = beta e_1, |beta| = ||x||, H orthogonal."""
    v, tau, beta = make_householder(x)
    H = np.eye(x.size) - tau * np.outer(v, v)
    y = H @ x
    nx = np.linalg.norm(x)
    assert abs(abs(beta) - nx) <= 1e-12 * max(nx, 1.0)
    if x.size > 1:
        assert np.max(np.abs(y[1:])) <= 1e-10 * max(nx, 1.0)
    assert np.linalg.norm(H @ H.T - np.eye(x.size)) < 1e-12


def test_householder_subnormal_range_rescales():
    """Vectors whose squared norm underflows to the denormal range still
    yield an orthogonal reflector (the dlarfg-style rescale path).  A
    hypothesis-found regression: before the rescale, ``alpha**2 + sigma``
    for this input carried ~1 significant bit and H lost orthogonality
    at the 0.5 level."""
    for x in (
        np.array([1.62483227e-162, 1.62483227e-162]),
        np.array([5e-324, 5e-324]),  # smallest denormals
        np.array([0.0, 5e-324]),
        np.array([-1e-140, 2e-141, -3e-140]),
    ):
        v, tau, beta = make_householder(x)
        H = np.eye(x.size) - tau * np.outer(v, v)
        nx = np.linalg.norm(x)
        assert abs(abs(beta) - nx) <= 1e-12 * max(nx, 1.0)
        assert np.max(np.abs((H @ x)[1:])) <= 1e-10 * max(nx, 1.0)
        assert np.linalg.norm(H @ H.T - np.eye(x.size)) < 1e-12


def test_householder_normal_range_bits_unchanged():
    """The rescale guard must not perturb normal-magnitude inputs: the
    returned (tau, beta) match the direct unscaled formulas bit-for-bit."""
    rng = np.random.default_rng(0)
    for _ in range(200):
        n = int(rng.integers(2, 30))
        x = rng.standard_normal(n) * 10.0 ** float(rng.integers(-100, 100))
        v, tau, beta = make_householder(x)
        sigma = float(np.dot(x[1:], x[1:]))
        alpha = float(x[0])
        ref_beta = -np.copysign(np.sqrt(alpha * alpha + sigma), alpha)
        assert beta == ref_beta
        assert tau == (ref_beta - alpha) / ref_beta


@st.composite
def reflector_sequence(draw):
    m = draw(st.integers(min_value=2, max_value=20))
    k = draw(st.integers(min_value=1, max_value=min(m, 6)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    return m, [make_householder(rng.standard_normal(m))[:2] for _ in range(k)]


@settings(max_examples=50, deadline=None)
@given(reflector_sequence())
def test_wy_accumulation_equals_product(case):
    """I - W Y^T equals the explicit reflector product for any sequence."""
    m, refs = case
    acc = WYAccumulator(m)
    expect = np.eye(m)
    for v, tau in refs:
        acc.append(v, tau)
        expect = expect @ (np.eye(m) - tau * np.outer(v, v))
    assert np.linalg.norm(acc.q() - expect) < 1e-11


@settings(max_examples=40, deadline=None)
@given(reflector_sequence(), reflector_sequence())
def test_wy_merge_associativity(case1, case2):
    """merge(A, B) represents exactly Q_A @ Q_B when dimensions match."""
    m1, refs1 = case1
    _, refs2 = case2
    acc1 = WYAccumulator(m1)
    acc2 = WYAccumulator(m1)
    for v, tau in refs1:
        acc1.append(v, tau)
    for v, tau in refs2:
        # Re-derive reflectors of the right length from the seeds of case2.
        if v.size != m1:
            v = np.resize(v, m1)
            v[0] = 1.0
        acc2.append(v, tau)
    W, Y = merge_wy(acc1.W, acc1.Y, acc2.W, acc2.Y)
    Q = np.eye(m1) - W @ Y.T
    assert np.linalg.norm(Q - acc1.q() @ acc2.q()) < 1e-10


@st.composite
def panel_case(draw):
    m = draw(st.integers(min_value=1, max_value=24))
    b = draw(st.integers(min_value=1, max_value=m))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return np.random.default_rng(seed).standard_normal((m, b))


@settings(max_examples=50, deadline=None)
@given(panel_case())
def test_panel_qr_factorization_property(P):
    """Q R = P with orthogonal Q and upper-triangular R, for any panel."""
    m, b = P.shape
    V, taus, R = panel_qr(P)
    Q = explicit_q(V, taus)
    full_r = np.zeros_like(P)
    full_r[:b] = R
    assert np.linalg.norm(Q @ full_r - P) < 1e-10 * max(np.linalg.norm(P), 1.0)
    assert np.linalg.norm(Q.T @ Q - np.eye(m)) < 1e-11
    assert np.allclose(R, np.triu(R))


@st.composite
def syr2k_case(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    k = draw(st.integers(min_value=1, max_value=8))
    block = draw(st.integers(min_value=1, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    C = rng.standard_normal((n, n))
    return (C + C.T) / 2, rng.standard_normal((n, k)), rng.standard_normal((n, k)), block


@settings(max_examples=50, deadline=None)
@given(syr2k_case())
def test_square_syr2k_matches_reference(case):
    """The Figure-7 schedule equals the dense formula for every shape and
    block size."""
    C, A, B, block = case
    expect = syr2k_reference(C, A, B, alpha=-1.0)
    got = C.copy()
    syr2k_square_blocked(got, A, B, alpha=-1.0, block=block)
    scale = max(np.linalg.norm(expect), 1.0)
    assert np.linalg.norm(got - expect) < 1e-11 * scale
