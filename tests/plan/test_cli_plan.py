"""The ``repro plan`` subcommand: resolve-and-print, --explain, --json."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.n == 1024 and args.method == "proposed"
        assert args.tuning == "manual" and args.device == "h100"
        assert not args.explain and not args.json

    def test_invalid_tuning_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--tuning", "oracle"])


class TestPlanCommand:
    def test_describe(self, capsys):
        assert main(["plan", "--n", "4096", "--method", "proposed"]) == 0
        out = capsys.readouterr().out
        assert "EVDPlan" in out
        assert "dbbr" in out
        assert "cache token" in out

    def test_explain_adds_model_breakdown(self, capsys):
        assert main(["plan", "--n", "4096", "--method", "proposed",
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "predicted stage breakdown" in out
        assert "dbbr" in out and "total" in out
        assert "ms" in out and "%" in out

    @pytest.mark.parametrize("method", ["magma", "cusolver", "plasma", "dense"])
    def test_explain_every_preset(self, capsys, method):
        assert main(["plan", "--n", "2048", "--method", method,
                     "--explain"]) == 0
        assert "EVDPlan" in capsys.readouterr().out

    def test_json_output_is_a_plan_dict(self, capsys):
        assert main(["plan", "--n", "512", "--method", "cusolver",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n"] == 512
        assert data["tridiag"]["method"] == "direct"
        assert "cache_token" in data

    def test_model_tuning(self, capsys):
        assert main(["plan", "--n", "4096", "--tuning", "model",
                     "--device", "rtx4090"]) == 0
        out = capsys.readouterr().out
        assert "tuning=model" in out

    def test_knobs_flow_through(self, capsys):
        assert main(["plan", "--n", "256", "--method", "proposed",
                     "--bandwidth", "8", "--second-block", "32"]) == 0
        out = capsys.readouterr().out
        assert "b=8" in out and "k=32" in out

    def test_plan_error_exits_2(self, capsys):
        assert main(["plan", "--method", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "plan error" in err and "valid choices" in err
