"""Planner validation + normalization: the typed knob surface.

Satellite regression (PR 7): a misspelled pipeline knob used to surface
as a ``TypeError`` deep inside ``tridiagonalize``; it must now be a
:class:`repro.plan.PlanError` raised at the ``eigh``/``plan_evd``
boundary, naming the valid knobs.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.plan import (
    PIPELINE_KNOBS,
    EVDPlan,
    PlanError,
    auto_params,
    plan_evd,
    plan_tridiag,
)


def goe(n: int, seed: int = 0) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


class TestUnknownKnobs:
    def test_eigh_rejects_misspelled_knob_at_entry(self):
        """The satellite regression: ``bandwith`` (sic) must fail fast
        with a PlanError listing every valid knob — not a TypeError from
        somewhere inside the pipeline."""
        with pytest.raises(PlanError) as exc_info:
            repro.eigh(goe(8), bandwith=4)
        msg = str(exc_info.value)
        assert "bandwith" in msg
        for knob in PIPELINE_KNOBS:
            assert knob in msg

    def test_plan_error_is_a_value_error(self):
        # Callers catching ValueError (the historical contract) keep working.
        assert issubclass(PlanError, ValueError)
        with pytest.raises(ValueError):
            plan_evd(8, bogus_knob=1)

    def test_multiple_unknown_knobs_all_named(self):
        with pytest.raises(PlanError, match="knob_a.*knob_b"):
            plan_evd(8, knob_a=1, knob_b=2)

    def test_plan_tridiag_rejects_unknown_knob(self):
        with pytest.raises(PlanError, match="unknown pipeline knob"):
            plan_tridiag(8, "dbbr", second_blck=4)

    def test_eigh_partial_rejects_unknown_knob(self):
        with pytest.raises(PlanError, match="unknown pipeline knob"):
            repro.eigh_partial(goe(8), (0, 2), max_sweps=3)


class TestChoiceValidation:
    def test_unknown_method_names_choices(self):
        with pytest.raises(PlanError, match="'proposed'.*'dense'"):
            plan_evd(8, method="lapack")

    def test_unknown_solver(self):
        with pytest.raises(PlanError, match="'dc', 'qr', 'bisect'"):
            plan_evd(8, solver="jacobi")

    def test_bad_secular_mode(self):
        with pytest.raises(PlanError, match="'batched', 'scalar'"):
            plan_evd(8, secular_mode="vectorized")

    def test_bad_bc_driver(self):
        with pytest.raises(PlanError, match="'wavefront', 'pipelined'"):
            plan_evd(8, method="dbbr", bc_driver="serial")

    def test_bad_syr2k_kind(self):
        with pytest.raises(PlanError, match="'square', 'rect', 'reference'"):
            plan_evd(8, method="dbbr", syr2k_kind="triangular")

    def test_bad_back_transform(self):
        with pytest.raises(PlanError, match="'incremental', 'blocked', 'recursive'"):
            plan_evd(8, method="dbbr", back_transform="fused")

    def test_non_integer_bandwidth(self):
        with pytest.raises(PlanError, match="bandwidth must be an integer"):
            plan_evd(8, method="dbbr", bandwidth="wide")

    def test_bandwidth_minimum(self):
        with pytest.raises(PlanError, match="bandwidth must be >= 1"):
            plan_evd(8, method="dbbr", bandwidth=0)

    def test_bad_n(self):
        with pytest.raises(PlanError, match="n must be"):
            plan_evd("many")
        with pytest.raises(PlanError, match="n must be"):
            plan_evd(-1)

    def test_bad_tuning(self):
        with pytest.raises(PlanError, match="'manual', 'model'"):
            plan_evd(8, tuning="oracle")

    def test_non_string_backend(self):
        with pytest.raises(PlanError, match="backend name string"):
            plan_evd(8, backend=object())


class TestResolution:
    def test_resolved_fields_match_auto_params(self):
        b, k = auto_params(200)
        plan = plan_evd(200, "proposed")
        assert plan.tridiag.bandwidth == b
        assert plan.tridiag.second_block == max(b, (max(k, b) // b) * b)
        assert plan.bulge_chase.pipelined is True
        assert plan.bulge_chase.bc_driver == "wavefront"
        assert plan.back_transform.method == "incremental"
        assert plan.back_transform.group == plan.tridiag.second_block

    def test_bandwidth_clamped_to_matrix(self):
        # Historical clamp: b <= max(n - 2, 1).
        plan = plan_evd(10, "dbbr", bandwidth=64)
        assert plan.tridiag.bandwidth == 8

    def test_second_block_rounded_to_bandwidth_multiple(self):
        plan = plan_evd(100, "dbbr", bandwidth=8, second_block=30)
        assert plan.tridiag.second_block == 24  # (30 // 8) * 8

    def test_direct_method_has_no_band_stages(self):
        plan = plan_evd(64, "cusolver")
        assert plan.tridiag.method == "direct"
        assert plan.tridiag.direct_block == 32
        assert plan.bulge_chase is None
        assert plan.back_transform is None

    def test_dense_plan_has_no_pipeline(self):
        plan = plan_evd(64, "dense", solver="qr")
        assert plan.is_dense
        assert plan.tridiag is None
        assert plan.solver.kind == "dense"

    def test_model_tuning_resolves_concrete_blocks(self):
        plan = plan_evd(4096, "proposed", tuning="model", device="h100")
        assert plan.tuning == "model"
        b, k = plan.tridiag.bandwidth, plan.tridiag.second_block
        assert b in (8, 16, 32, 64)
        assert k % b == 0 and k <= 4096

    def test_model_tuning_respects_explicit_knobs(self):
        plan = plan_evd(4096, "proposed", tuning="model", bandwidth=32,
                        second_block=1024)
        assert plan.tridiag.bandwidth == 32
        assert plan.tridiag.second_block == 1024


class TestCacheToken:
    def test_preset_and_expanded_spelling_share_token(self):
        """The coalescing property the serving layer relies on."""
        n = 96
        p = plan_evd(n, "proposed")
        expanded = plan_evd(
            n,
            "dbbr",
            bandwidth=p.tridiag.bandwidth,
            second_block=p.tridiag.second_block,
            pipelined=True,
            bc_driver="wavefront",
            back_transform="incremental",
            back_transform_group=p.back_transform.group,
        )
        assert p.cache_token() == expanded.cache_token()

    def test_magma_spelling_coalesces(self):
        n = 96
        p = plan_evd(n, "magma")
        expanded = plan_evd(
            n,
            "sbr",
            bandwidth=p.tridiag.bandwidth,
            pipelined=False,
            back_transform="blocked",
            back_transform_group=p.back_transform.group,
        )
        assert p.cache_token() == expanded.cache_token()

    def test_irrelevant_knobs_normalized_away(self):
        # Direct path: band knobs are inert and must not split the token.
        assert (
            plan_evd(64, "cusolver", bandwidth=8).cache_token()
            == plan_evd(64, "cusolver").cache_token()
        )
        # Non-pipelined chase: bc_driver is inert.
        assert (
            plan_evd(64, "sbr", pipelined=False, bc_driver="pipelined").cache_token()
            == plan_evd(64, "sbr", pipelined=False).cache_token()
        )
        # Non-dc solver: secular_mode is inert.
        assert (
            plan_evd(64, solver="qr", secular_mode="scalar").cache_token()
            == plan_evd(64, solver="qr", secular_mode="batched").cache_token()
        )
        # Dense tier: the solver choice itself is inert.
        assert (
            plan_evd(64, "dense", solver="qr").cache_token()
            == plan_evd(64, "dense", solver="dc").cache_token()
        )

    def test_distinct_computations_get_distinct_tokens(self):
        base = plan_evd(64, "proposed").cache_token()
        assert plan_evd(65, "proposed").cache_token() != base
        assert plan_evd(64, "magma").cache_token() != base
        assert plan_evd(64, "proposed", solver="qr").cache_token() != base
        assert plan_evd(64, "proposed", compute_vectors=False).cache_token() != base
        assert plan_evd(64, "proposed", backend="torch").cache_token() != base
        assert plan_evd(64, "proposed", bandwidth=4).cache_token() != base


class TestSerialization:
    @pytest.mark.parametrize("method", ["proposed", "magma", "cusolver",
                                        "plasma", "dense"])
    def test_dict_round_trip(self, method):
        plan = plan_evd(128, method)
        data = plan.to_dict()
        back = EVDPlan.from_dict(data)
        assert back == plan
        assert back.cache_token() == data["cache_token"]

    def test_describe_mentions_every_stage(self):
        text = plan_evd(256, "proposed").describe()
        assert "dbbr" in text
        assert "bulge chase" in text
        assert "back transform" in text
        assert "cache token" in text


class TestPlanTridiag:
    def test_raw_methods_only(self):
        with pytest.raises(PlanError, match="'dbbr', 'sbr', 'tile', 'direct'"):
            plan_tridiag(64, "proposed")

    def test_matches_evd_branch(self):
        tcfg, bcfg, btcfg = plan_tridiag(200, "dbbr")
        plan = plan_evd(200, "dbbr")
        assert tcfg == plan.tridiag
        assert bcfg == plan.bulge_chase
        assert btcfg == plan.back_transform

    def test_core_reexports_auto_params(self):
        assert repro.core.auto_params is auto_params
