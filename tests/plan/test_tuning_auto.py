"""``plan_evd(tuning=...)`` dispatch: validation and the auto fallback.

These tests isolate the tuning database to a per-test path themselves
(the autouse fixture doing so lives in ``tests/tune``) because the
planner consults ``$REPRO_TUNE_DB`` when ``tuning="auto"``.
"""

from __future__ import annotations

import pytest

from repro.plan import PlanError, plan_evd
from repro.plan.planner import TUNINGS, plan_tridiag
from repro.tune import TuneRecord, TuningStore, reset_tune_stats, tune_stats
from repro.tune.store import ENV_DB_PATH


@pytest.fixture(autouse=True)
def tune_db(tmp_path, monkeypatch):
    db = tmp_path / "tune_db.json"
    monkeypatch.setenv(ENV_DB_PATH, str(db))
    reset_tune_stats()
    yield db
    reset_tune_stats()


class TestDispatchValidation:
    def test_unknown_tuning_raises_plan_error_naming_choices(self):
        with pytest.raises(PlanError) as err:
            plan_evd(64, "dbbr", tuning="genetic")
        msg = str(err.value)
        assert "genetic" in msg
        for valid in TUNINGS:
            assert valid in msg

    def test_plan_tridiag_validates_tuning_too(self):
        with pytest.raises(PlanError, match="manual"):
            plan_tridiag(64, "dbbr", tuning="genetic")

    def test_auto_is_a_valid_choice(self):
        assert "auto" in TUNINGS
        assert plan_evd(64, "dbbr", tuning="auto").tuning == "auto"


class TestAutoWithoutDatabase:
    def test_pure_fallback_to_model(self, tune_db):
        auto = plan_evd(64, "dbbr", tuning="auto")
        model = plan_evd(64, "dbbr", tuning="model")
        assert auto.cache_token() == model.cache_token()
        assert auto.tridiag.bandwidth == model.tridiag.bandwidth
        assert auto.tridiag.second_block == model.tridiag.second_block

    def test_no_filesystem_writes(self, tune_db):
        plan_evd(64, "dbbr", tuning="auto")
        plan_tridiag(64, "dbbr", tuning="auto")
        assert not tune_db.exists(), "planning must never create the DB"
        assert not tune_db.parent.joinpath("tune_db.json.tmp").exists()

    def test_miss_is_counted(self, tune_db):
        plan_evd(64, "dbbr", tuning="auto")
        assert tune_stats()["misses"] == 1
        assert tune_stats()["hits"] == 0


class TestAutoWithDatabase:
    def _seed(self, tune_db, **knobs):
        store = TuningStore.load()
        store.put(
            64, "dbbr", "numpy",
            TuneRecord(method="dbbr", knobs=knobs, time_s=0.01, n=64),
        )
        store.save()

    def test_hit_resolves_tuned_knobs(self, tune_db):
        self._seed(tune_db, bandwidth=8, second_block=32)
        plan = plan_evd(64, "dbbr", tuning="auto")
        assert (plan.tridiag.bandwidth, plan.tridiag.second_block) == (8, 32)
        assert tune_stats()["hits"] == 1

    def test_plan_tridiag_consults_the_store(self, tune_db):
        self._seed(tune_db, bandwidth=8, second_block=32)
        tri, _, _ = plan_tridiag(64, "dbbr", tuning="auto")
        assert (tri.bandwidth, tri.second_block) == (8, 32)

    def test_non_pipeline_knobs_in_record_ignored(self, tune_db):
        # A record polluted with unknown keys must not break planning.
        self._seed(tune_db, bandwidth=8, second_block=32, exotic_flag=True)
        plan = plan_evd(64, "dbbr", tuning="auto")
        assert plan.tridiag.bandwidth == 8

    def test_other_method_record_not_consulted(self, tune_db):
        self._seed(tune_db, bandwidth=8, second_block=32)
        auto = plan_evd(64, "sbr", tuning="auto")
        model = plan_evd(64, "sbr", tuning="model")
        assert auto.cache_token() == model.cache_token()
