"""Golden-snapshot stability of resolved plans.

``tests/plan/golden_plans.json`` pins the fully-resolved plan (block
sizes, normalized branches, cache token) for each paper preset at
n in {64, 512, 2048}.  Drift means either an intentional planner change
(regenerate with ``python scripts/check_plan_snapshots.py --write``) or
an accidental one that would re-key the serving cache — either way it
must be a visible diff, not a silent behavior change.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from repro.plan import EVDPlan, plan_evd

REPO = pathlib.Path(__file__).resolve().parents[2]
GOLDEN = pathlib.Path(__file__).with_name("golden_plans.json")


def load_golden() -> dict:
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize("key", sorted(load_golden()))
def test_resolved_plan_matches_golden(key):
    preset, n_part = key.split("/")
    n = int(n_part.removeprefix("n="))
    assert plan_evd(n, preset).to_dict() == load_golden()[key]


@pytest.mark.parametrize("key", sorted(load_golden()))
def test_golden_entries_round_trip(key):
    data = load_golden()[key]
    plan = EVDPlan.from_dict(data)
    assert plan.cache_token() == data["cache_token"]


def test_check_script_verifies():
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_plan_snapshots.py")],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "plan snapshots OK" in proc.stdout
