"""``execute_plan`` is bit-identical to hand-composed stage dispatch.

The tentpole refactor's contract: routing ``eigh``/``eigh_partial``/
``svd`` through the shared plan runner must not change a single bit of
any NumPy result.  The oracle here composes the stages manually — call
``tridiagonalize``, pick the solver, apply the back transformation —
exactly as the pre-plan entry points did inline, and asserts bitwise
equality over the full preset x solver x vectors grid, including the
n = 1 / n = 2 degenerate sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.backend import ExecutionContext
from repro.core.svd import svd
from repro.eig import dc_eigh, eigh_bisect, tridiag_qr_eigh
from repro.plan import make_solver_config, plan_evd, solve_tridiagonal_planned

PRESET_KWARGS = {
    "proposed": dict(
        method="dbbr", pipelined=True, bc_driver="wavefront",
        back_transform="incremental",
    ),
    "magma": dict(method="sbr", pipelined=False, back_transform="blocked"),
    "cusolver": dict(method="direct"),
    "plasma": dict(method="tile", pipelined=False),
}


def goe(n: int, seed: int = 0) -> np.ndarray:
    g = np.random.default_rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


def oracle_eigh(A, method, solver, compute_vectors, secular_mode="batched"):
    """The pre-refactor ``eigh`` body, composed by hand."""
    ctx = ExecutionContext(backend="numpy")
    tri = repro.tridiagonalize(A, backend=ctx, **PRESET_KWARGS[method])
    if solver == "dc":
        lam, U = dc_eigh(tri.d, tri.e, compute_vectors=compute_vectors,
                         ctx=ctx, secular_mode=secular_mode)
    elif solver == "qr":
        lam, U = tridiag_qr_eigh(tri.d, tri.e, compute_vectors=compute_vectors)
    else:
        lam, U = eigh_bisect(tri.d, tri.e, compute_vectors=compute_vectors)
    V = None
    if compute_vectors:
        V = np.array(U, copy=True)
        tri.apply_q(V)
    return lam, V, tri


def assert_same(a: np.ndarray | None, b: np.ndarray | None) -> None:
    if a is None or b is None:
        assert a is None and b is None
        return
    np.testing.assert_array_equal(a, b)
    assert a.dtype == b.dtype and a.shape == b.shape


@pytest.mark.parametrize("n", [1, 2, 7, 24])
@pytest.mark.parametrize("method", sorted(PRESET_KWARGS))
@pytest.mark.parametrize("solver", ["dc", "qr", "bisect"])
@pytest.mark.parametrize("compute_vectors", [True, False])
def test_eigh_matches_manual_composition(n, method, solver, compute_vectors):
    A = goe(n, seed=n)
    got = repro.eigh(A, method=method, solver=solver,
                     compute_vectors=compute_vectors)
    lam, V, tri = oracle_eigh(A, method, solver, compute_vectors)
    assert_same(got.eigenvalues, lam)
    assert_same(got.eigenvectors, V)
    np.testing.assert_array_equal(got.tridiag.d, tri.d)
    np.testing.assert_array_equal(got.tridiag.e, tri.e)
    assert got.solver == solver


@pytest.mark.parametrize("secular_mode", ["batched", "scalar"])
def test_secular_modes_bitexact(secular_mode):
    A = goe(24, seed=9)
    got = repro.eigh(A, method="proposed", secular_mode=secular_mode)
    lam, V, _ = oracle_eigh(A, "proposed", "dc", True, secular_mode=secular_mode)
    assert_same(got.eigenvalues, lam)
    assert_same(got.eigenvectors, V)


@pytest.mark.parametrize("n", [1, 2, 16])
def test_dense_tier_matches_stacked(n):
    A = goe(n, seed=n + 100)
    got = repro.eigh(A, method="dense")
    ref = repro.eigh_stacked(A[None])[0]
    assert_same(got.eigenvalues, ref.eigenvalues)
    assert_same(got.eigenvectors, ref.eigenvectors)
    assert got.tridiag is None


@pytest.mark.parametrize("method", ["proposed", "cusolver"])
def test_eigh_partial_matches_manual_composition(method):
    from repro.eig import eigvals_bisect, inverse_iteration

    A = goe(20, seed=3)
    lo, hi = 2, 6
    got = repro.eigh_partial(A, (lo, hi), method=method)

    ctx = ExecutionContext(backend="numpy")
    tri = repro.tridiagonalize(A, backend=ctx, **PRESET_KWARGS[method])
    idx = np.arange(lo, hi + 1)
    lam = eigvals_bisect(tri.d, tri.e, indices=idx)
    U = np.zeros((20, idx.size))
    scale = max(float(np.max(np.abs(lam))), 1.0)
    cluster = []
    for j in range(idx.size):
        against = cluster if (j > 0 and lam[j] - lam[j - 1] <= 1e-3 * scale) else None
        if against is None:
            cluster = []
        v = inverse_iteration(tri.d, tri.e, float(lam[j]), against=against)
        U[:, j] = v
        cluster.append(v)
    tri.apply_q(U)
    assert_same(got.eigenvalues, lam)
    assert_same(got.eigenvectors, U)


@pytest.mark.parametrize("compute_vectors", [True, False])
@pytest.mark.parametrize("secular_mode", ["batched", "scalar"])
def test_planned_tridiagonal_solve_is_dc_eigh(compute_vectors, secular_mode):
    """The SVD path's solve: ``solve_tridiagonal_planned`` must be a pure
    dispatch — bit-identical to calling the solver directly."""
    rng = np.random.default_rng(5)
    d = rng.standard_normal(17)
    e = rng.standard_normal(16)
    ctx = ExecutionContext(backend="numpy")
    cfg = make_solver_config("dc", compute_vectors, secular_mode)
    lam, U = solve_tridiagonal_planned(d, e, cfg, ctx=ctx)
    ctx2 = ExecutionContext(backend="numpy")
    lam_ref, U_ref = dc_eigh(d, e, compute_vectors=compute_vectors,
                             ctx=ctx2, secular_mode=secular_mode)
    assert_same(lam, lam_ref)
    assert_same(U, U_ref)


@pytest.mark.parametrize("solver", ["qr", "bisect"])
def test_planned_tridiagonal_solve_other_kinds(solver):
    rng = np.random.default_rng(6)
    d = rng.standard_normal(12)
    e = rng.standard_normal(11)
    cfg = make_solver_config(solver, True)
    lam, U = solve_tridiagonal_planned(d, e, cfg)
    ref = tridiag_qr_eigh if solver == "qr" else eigh_bisect
    lam_ref, U_ref = ref(d, e, compute_vectors=True)
    assert_same(lam, lam_ref)
    assert_same(U, U_ref)


def test_svd_still_correct_through_planned_solve():
    rng = np.random.default_rng(11)
    A = rng.standard_normal((12, 8))
    s, U, V = svd(A)
    np.testing.assert_allclose(U @ np.diag(s) @ V.T, A, atol=1e-10)
    with pytest.raises(ValueError, match="secular_mode"):
        svd(A, secular_mode="turbo")


def test_stage_events_preserved():
    """The plan runner must emit the same stage names the entry points
    always did (dashboards and the metrics layer key on them)."""
    events = []
    ctx = ExecutionContext(backend="numpy", hooks=[lambda ev: events.append(ev.stage)])
    repro.eigh(goe(16, seed=1), method="proposed", backend=ctx)
    assert "tridiagonalize" in events
    assert "tridiag_solver" in events
    assert "back_transform" in events


def test_execute_plan_rejects_mismatched_n():
    from repro.plan import PlanError, execute_plan

    plan = plan_evd(8, "proposed")
    with pytest.raises(PlanError, match="resolved for n = 8"):
        execute_plan(goe(9), plan)
