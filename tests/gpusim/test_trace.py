"""Unit tests for trace/timeline utilities."""

from __future__ import annotations

import numpy as np

from repro.gpusim.executor import simulate_bc_pipeline
from repro.gpusim.trace import ascii_gantt, throughput_timeline, utilization


class TestThroughputTimeline:
    def test_peak_scales_with_parallelism(self):
        r1 = simulate_bc_pipeline(120, 4, 1, 1e-6, bytes_per_task=1e3)
        r8 = simulate_bc_pipeline(120, 4, 8, 1e-6, bytes_per_task=1e3)
        t1 = throughput_timeline(r1)
        t8 = throughput_timeline(r8)
        assert t8.peak_gbs > 2 * t1.peak_gbs

    def test_mean_consistent_with_total(self):
        r = simulate_bc_pipeline(100, 4, 4, 1e-6, bytes_per_task=1e3)
        t = throughput_timeline(r, samples=2048)
        # Time-averaged instantaneous throughput ~ aggregate throughput.
        assert abs(t.mean_gbs - r.throughput_gbs) / r.throughput_gbs < 0.3


class TestUtilization:
    def test_bounds(self):
        r = simulate_bc_pipeline(80, 4, 4, 1.0)
        u = utilization(r)
        assert 0.0 < u <= 1.0

    def test_serial_is_fully_utilized(self):
        r = simulate_bc_pipeline(50, 4, 1, 1.0)
        assert utilization(r) > 0.99

    def test_oversized_pipeline_underutilized(self):
        r = simulate_bc_pipeline(50, 4, 1000, 1.0)
        assert utilization(r) < 0.3


class TestGantt:
    def test_renders_rows(self):
        r = simulate_bc_pipeline(40, 4, 4, 1.0)
        text = ascii_gantt(r, width=40, max_rows=10)
        lines = text.splitlines()
        assert 1 <= len(lines) <= 11
        assert all("#" in line for line in lines)

    def test_empty_schedule(self):
        r = simulate_bc_pipeline(2, 4, 4, 1.0)
        assert "empty" in ascii_gantt(r)

    def test_later_sweeps_start_later(self):
        r = simulate_bc_pipeline(60, 4, 8, 1.0)
        text = ascii_gantt(r, width=60, max_rows=30)
        indents = [line.index("#") for line in text.splitlines()]
        assert indents == sorted(indents)
