"""Unit tests for the Chrome trace exporter."""

from __future__ import annotations

import json

from repro.gpusim.chrome_trace import chrome_trace_events, export_chrome_trace
from repro.gpusim.executor import simulate_bc_pipeline


class TestChromeTrace:
    def test_events_shape(self):
        sim = simulate_bc_pipeline(80, 4, 8, 1e-6)
        events = chrome_trace_events(sim)
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == sim.sweep_start.size
        for e in slices:
            assert e["dur"] > 0
            assert e["ts"] >= 0

    def test_slot_rows_respect_cap(self):
        S = 6
        sim = simulate_bc_pipeline(100, 4, S, 1e-6)
        events = [e for e in chrome_trace_events(sim) if e["ph"] == "X"]
        tids = {e["tid"] for e in events}
        assert len(tids) <= S

    def test_no_overlap_within_slot(self):
        sim = simulate_bc_pipeline(90, 4, 4, 1e-6)
        rows: dict[int, list[tuple[float, float]]] = {}
        for e in chrome_trace_events(sim):
            if e["ph"] != "X":
                continue
            rows.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"]))
        for spans in rows.values():
            spans.sort()
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-6

    def test_sampling_caps_event_count(self):
        sim = simulate_bc_pipeline(600, 4, 16, 1e-6)
        events = [e for e in chrome_trace_events(sim, max_sweeps=100)
                  if e["ph"] == "X"]
        assert len(events) <= 100 + 1

    def test_export_writes_valid_json(self, tmp_path):
        sim = simulate_bc_pipeline(60, 4, 4, 1e-6)
        path = tmp_path / "trace.json"
        count = export_chrome_trace(sim, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
        assert any(e["ph"] == "M" for e in data["traceEvents"])

    def test_empty_schedule(self):
        sim = simulate_bc_pipeline(2, 4, 4, 1e-6)
        assert chrome_trace_events(sim) == []
