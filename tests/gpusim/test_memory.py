"""Unit tests for memory accounting and the Figure-10 LRU replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.device import H100
from repro.gpusim.kernels import band_working_set_bytes
from repro.gpusim.memory import (
    LRUCache,
    bc_memory_summary,
    simulate_layout_misses,
)


class TestLRUCache:
    def test_hit_after_access(self):
        c = LRUCache(4)
        assert not c.access(1)
        assert c.access(1)

    def test_eviction_order(self):
        c = LRUCache(2)
        c.access(1)
        c.access(2)
        c.access(1)  # refresh 1
        c.access(3)  # evicts 2
        assert c.access(1)
        assert not c.access(2)

    def test_miss_rate(self):
        c = LRUCache(10)
        for i in range(5):
            c.access(i)
        for i in range(5):
            c.access(i)
        assert c.miss_rate == pytest.approx(0.5)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_access_many_unique(self):
        c = LRUCache(100)
        c.access_many(np.array([1, 1, 2, 2, 3]))
        assert c.hits + c.misses == 3  # deduplicated per burst


class TestSummary:
    def test_l2_residency_decision(self):
        small = bc_memory_summary(H100, 32768, 32)
        assert small.l2_resident
        big = bc_memory_summary(H100, 400000, 32)
        assert not big.l2_resident

    def test_working_set_matches_formula(self):
        s = bc_memory_summary(H100, 1000, 8)
        assert s.working_set_bytes == band_working_set_bytes(1000, 8)

    def test_total_bytes(self):
        s = bc_memory_summary(H100, 200, 4)
        assert s.total_bytes == s.total_tasks * s.bytes_per_task
        assert s.total_tasks > 0


class TestLayoutReplay:
    def test_packed_layout_misses_less(self):
        # The mechanistic Figure-10 justification: with a cache smaller
        # than the dense matrix but larger than the band, the packed
        # layout's miss rate is far lower.
        n, b = 96, 4
        res = simulate_layout_misses(n, b, cache_kb=8.0, sweeps=6)
        assert res["packed"] < res["naive"]

    def test_huge_cache_equalizes(self):
        n, b = 64, 4
        res = simulate_layout_misses(n, b, cache_kb=10_000.0, sweeps=4)
        # Everything fits: both layouts only take compulsory misses, and
        # packed takes fewer lines overall.
        assert res["packed"] <= res["naive"]

    def test_returns_both_layouts(self):
        res = simulate_layout_misses(48, 3, cache_kb=4.0, sweeps=3)
        assert set(res) == {"naive", "packed"}
        assert all(0.0 <= v <= 1.0 for v in res.values())
