"""Unit tests for the roofline / sustained-GEMM rate model."""

from __future__ import annotations

import pytest

from repro.gpusim.device import H100, RTX4090
from repro.gpusim.roofline import (
    attainable_tflops,
    gemm_bytes,
    gemm_time,
    memory_time,
    sustained_gemm_tflops,
)


class TestAttainable:
    def test_memory_bound_region(self):
        # Below the ridge, rate scales linearly with AI.
        r1 = attainable_tflops(H100, 1.0)
        r2 = attainable_tflops(H100, 2.0)
        assert r2 == pytest.approx(2 * r1)

    def test_compute_bound_region(self):
        assert attainable_tflops(H100, 1000.0) == H100.fp64_tflops

    def test_4090_saturates_early(self):
        assert attainable_tflops(RTX4090, 2.0) == RTX4090.fp64_tflops


class TestSustainedGemm:
    def test_monotone_in_k(self):
        rates = [sustained_gemm_tflops(H100, 32768, 32768, k) for k in
                 [16, 64, 256, 1024, 4096]]
        assert rates == sorted(rates)

    def test_never_exceeds_sustained_peak(self):
        for k in [16, 128, 4096]:
            assert sustained_gemm_tflops(H100, 32768, 32768, k) <= H100.gemm_peak_tflops

    def test_h100_far_from_peak_at_small_k(self):
        # The Section 3.2 observation that motivates DBBR.
        assert sustained_gemm_tflops(H100, 32768, 32768, 64) < 0.25 * H100.fp64_tflops

    def test_4090_saturated_even_at_small_k(self):
        r = sustained_gemm_tflops(RTX4090, 32768, 32768, 16)
        assert r > 0.8 * RTX4090.fp64_tflops

    def test_skinny_output_memory_bound(self):
        # (n x 32) output with huge inner dim: capped by the bw * AI line.
        r = sustained_gemm_tflops(H100, 32768, 32, 32768)
        ai = 2.0 * 32768 * 32 * 32768 / gemm_bytes(32768, 32, 32768)
        assert r <= H100.mem_bw_gbs * 1e9 * ai / 1e12 + 1e-9

    def test_degenerate_dims(self):
        assert sustained_gemm_tflops(H100, 0, 10, 10) == 0.0

    def test_custom_peak_can_exceed_fp64(self):
        # INT8-assisted DGEMM on the 4090 (Section 6.1).
        r = sustained_gemm_tflops(RTX4090, 8192, 8192, 4096, peak_tflops=1.45)
        assert r > RTX4090.fp64_tflops


class TestTimes:
    def test_gemm_time_positive_and_scales(self):
        t1 = gemm_time(H100, 8192, 8192, 128)
        t2 = gemm_time(H100, 16384, 16384, 128)
        assert 0 < t1 < t2

    def test_zero_work(self):
        assert gemm_time(H100, 0, 5, 5) == 0.0

    def test_overhead_toggle(self):
        t_with = gemm_time(H100, 256, 256, 64, include_overhead=True)
        t_wo = gemm_time(H100, 256, 256, 64, include_overhead=False)
        assert t_with - t_wo == pytest.approx(H100.kernel_overhead_us * 1e-6)

    def test_memory_time(self):
        assert memory_time(H100, 3350e9) == pytest.approx(1.0)
