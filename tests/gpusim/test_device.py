"""Unit tests for device specs."""

from __future__ import annotations

import pytest

from repro.gpusim.device import CPU_8_CORE, H100, RTX4090, device_by_name


class TestPresets:
    def test_h100_headlines(self):
        assert H100.fp64_tflops == 67.0
        assert H100.l2_mb == 50.0
        assert H100.sm_count == 132

    def test_rtx4090_fp64_is_low(self):
        assert RTX4090.fp64_tflops == pytest.approx(1.29)

    def test_ridge_points_differ(self):
        # H100's ridge is ~20 flops/byte; 4090's ~1.3 — the Section 3.2
        # explanation of why SBR saturates the 4090 but not the H100.
        assert H100.ridge_flops_per_byte > 15.0
        assert RTX4090.ridge_flops_per_byte < 2.0

    def test_cpu_threads(self):
        assert CPU_8_CORE.threads == 8

    def test_with_override(self):
        dev = H100.with_(l2_mb=10.0)
        assert dev.l2_mb == 10.0
        assert H100.l2_mb == 50.0  # frozen original untouched


class TestLookup:
    @pytest.mark.parametrize(
        "name,expect", [("H100", H100), ("h100-sxm", H100), ("RTX 4090", RTX4090), ("4090", RTX4090)]
    )
    def test_by_name(self, name, expect):
        assert device_by_name(name) is expect

    def test_unknown(self):
        with pytest.raises(KeyError):
            device_by_name("mi300")
