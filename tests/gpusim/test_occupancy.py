"""Unit tests for the SM occupancy calculator."""

from __future__ import annotations

import pytest

from repro.gpusim.device import H100, RTX4090
from repro.gpusim.occupancy import (
    MAX_BLOCKS_PER_SM,
    MAX_WARPS_PER_SM,
    KernelResources,
    bc_kernel_resources,
    bc_sweeps_per_sm,
    occupancy,
)


class TestOccupancy:
    def test_warp_limited_kernel(self):
        res = KernelResources(threads_per_block=1024, registers_per_thread=16,
                              shared_mem_bytes=0)
        occ = occupancy(res)
        assert occ.limiter == "warps"
        assert occ.blocks_per_sm == 2  # 64 warps / 32 warps-per-block

    def test_register_limited_kernel(self):
        res = KernelResources(threads_per_block=256, registers_per_thread=255,
                              shared_mem_bytes=0)
        occ = occupancy(res)
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 65536 // (255 * 256)

    def test_shared_mem_limited_kernel(self):
        res = KernelResources(threads_per_block=32, registers_per_thread=16,
                              shared_mem_bytes=60 * 1024)
        occ = occupancy(res)
        assert occ.limiter == "shared_mem"
        assert occ.blocks_per_sm == 1

    def test_block_limited_kernel(self):
        res = KernelResources(threads_per_block=32, registers_per_thread=8,
                              shared_mem_bytes=0)
        occ = occupancy(res)
        assert occ.blocks_per_sm == MAX_BLOCKS_PER_SM

    def test_occupancy_fraction_bounds(self):
        res = KernelResources(threads_per_block=128, registers_per_thread=64,
                              shared_mem_bytes=16 * 1024)
        occ = occupancy(res)
        assert 0.0 < occ.occupancy_fraction <= 1.0
        assert occ.warps_per_sm <= MAX_WARPS_PER_SM

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            occupancy(KernelResources(0, 32, 0))


class TestBCKernel:
    def test_paper_config_four_sweeps_per_sm(self):
        # b = 32 optimized: the warp-per-sweep grouping of Section 5.2
        # lands at 4 sweeps/SM — the constant the performance model uses.
        assert bc_sweeps_per_sm(H100, 32, optimized=True) == 4

    def test_naive_fewer_sweeps(self):
        for b in (16, 32, 64):
            assert bc_sweeps_per_sm(H100, b, optimized=False) <= bc_sweeps_per_sm(
                H100, b, optimized=True
            )

    def test_large_bandwidth_reduces_residency(self):
        # b = 128 windows are 384 KB: shared memory forces 1 sweep/SM.
        assert bc_sweeps_per_sm(H100, 128, optimized=True) <= bc_sweeps_per_sm(
            H100, 32, optimized=True
        )

    def test_always_at_least_one(self):
        for b in (8, 32, 128, 256):
            for opt in (True, False):
                assert bc_sweeps_per_sm(RTX4090, b, opt) >= 1

    def test_resources_scale_with_bandwidth(self):
        small = bc_kernel_resources(16, optimized=True)
        big = bc_kernel_resources(64, optimized=True)
        assert big.shared_mem_bytes == 16 * small.shared_mem_bytes
