"""Unit tests for the kernel cost models and their paper anchors."""

from __future__ import annotations

import pytest

from repro.gpusim.device import CPU_8_CORE, H100, RTX4090
from repro.gpusim.kernels import (
    band_working_set_bytes,
    batched_gemm_time,
    bc_task_bytes,
    bc_task_time_cpu,
    bc_task_time_gpu,
    panel_qr_time,
    symv_time,
    syr2k_flops,
    syr2k_tflops,
    syr2k_time_cublas,
    syr2k_time_square,
)
from repro.models.syr2k_model import PAPER_TABLE1


class TestSyr2kModel:
    def test_table1_anchors_within_tolerance(self):
        # Model within 35% of every published Table 1 cell.
        for (dev_name, n), cells in PAPER_TABLE1.items():
            dev = H100 if "H100" in dev_name else RTX4090
            for k, paper in cells.items():
                model = syr2k_tflops(dev, n, k, kind="cublas")
                assert abs(model - paper) / paper < 0.35, (dev_name, n, k, model)

    def test_rate_monotone_in_k(self):
        rates = [syr2k_tflops(H100, 32768, k) for k in [16, 64, 256, 1024]]
        assert rates == sorted(rates)

    def test_cublas_cliff(self):
        # Figure 8: cuBLAS collapses at n >= 49152; square schedule doesn't.
        below = syr2k_tflops(H100, 40960, 1024, kind="cublas")
        above = syr2k_tflops(H100, 57344, 1024, kind="cublas")
        assert above < 0.6 * below
        sq_below = syr2k_tflops(H100, 40960, 1024, kind="square")
        sq_above = syr2k_tflops(H100, 57344, 1024, kind="square")
        assert sq_above > 0.9 * sq_below

    def test_square_beats_cublas(self):
        for n in [16384, 32768, 49152, 65536]:
            assert syr2k_tflops(H100, n, 1024, "square") > syr2k_tflops(
                H100, n, 1024, "cublas"
            )

    def test_flops_convention(self):
        assert syr2k_flops(100, 10) == 2 * 100 * 100 * 10

    def test_zero_sizes(self):
        assert syr2k_time_cublas(H100, 0, 64) == 0.0
        assert syr2k_time_square(H100, 64, 0) == 0.0


class TestSmallKernels:
    def test_panel_qr_latency_dominated(self):
        # b kernel launches dominate for narrow panels.
        t = panel_qr_time(H100, 4096, 32)
        assert t > 32 * H100.kernel_overhead_us * 1e-6

    def test_symv_memory_bound(self):
        t = symv_time(H100, 32768)
        min_t = 0.5 * 8 * 32768**2 / (H100.mem_bw_gbs * 1e9)
        assert t > min_t

    def test_batched_gemm_amortizes_launch(self):
        many = batched_gemm_time(H100, 64, 256, 256, 256)
        single = 64 * (batched_gemm_time(H100, 1, 256, 256, 256))
        assert many < single

    def test_zero_count(self):
        assert batched_gemm_time(H100, 0, 10, 10, 10) == 0.0


class TestBCTaskCosts:
    def test_bytes_scale_with_b_squared(self):
        assert bc_task_bytes(64) == 4 * bc_task_bytes(32)

    def test_working_set_formula(self):
        assert band_working_set_bytes(100, 4) == 8 * (100 * 5 - 10)

    def test_naive_task_near_10us_on_h100(self):
        # The paper's (mislabeled) "10 ms per bulge" anchor, b = 32.
        dt, S = bc_task_time_gpu(H100, 49152, 32, optimized=False)
        assert 5e-6 < dt < 20e-6
        assert S == H100.sm_count

    def test_optimized_has_more_parallel_sweeps(self):
        _, s_naive = bc_task_time_gpu(H100, 49152, 32, optimized=False)
        _, s_opt = bc_task_time_gpu(H100, 49152, 32, optimized=True)
        assert s_opt > s_naive

    def test_optimized_l2_spill(self):
        # Working set beyond L2 falls back to DRAM bandwidth -> slower.
        dt_fit, _ = bc_task_time_gpu(H100, 32768, 32, optimized=True)
        dt_spill, _ = bc_task_time_gpu(H100, 300000, 32, optimized=True)
        assert dt_spill > dt_fit

    def test_cpu_llc_cliff(self):
        # The b = 64 -> 128 blow-up of Section 3.2.
        t64 = bc_task_time_cpu(CPU_8_CORE, 49152, 64)
        t128 = bc_task_time_cpu(CPU_8_CORE, 49152, 128)
        assert t128 > 2 * 4 * t64 / 2  # more than the pure 4x byte growth

    def test_4090_optimized_compute_bound(self):
        # On the 4090 the FP64 term matters (BC "more dependent on
        # parallelism than computing capacity", Section 6.1).
        dt, _ = bc_task_time_gpu(RTX4090, 32768, 32, optimized=True)
        per_warp_flops = RTX4090.fp64_tflops * 1e12 / (RTX4090.sm_count * 4)
        assert dt > 24.0 * 32 * 32 / per_warp_flops
