"""Unit tests for the discrete-event bulge-chasing pipeline executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bc_pipeline import pipeline_schedule
from repro.core.bulge_chasing import num_tasks_in_sweep
from repro.gpusim.executor import simulate_bc_pipeline, tasks_per_sweep


class TestTasksPerSweep:
    def test_matches_task_generator(self):
        for n, b in [(30, 3), (50, 4), (20, 8), (100, 16)]:
            counts = tasks_per_sweep(n, b)
            expect = [num_tasks_in_sweep(n, b, i) for i in range(n - 2)]
            expect = [c for c in expect if c > 0]
            assert counts.tolist() == expect

    def test_trivial_cases(self):
        assert tasks_per_sweep(2, 4).size == 0
        assert tasks_per_sweep(100, 1).size == 0


class TestSimulation:
    def test_serial_time_is_total_tasks(self):
        res = simulate_bc_pipeline(50, 4, 1, task_time_s=1.0)
        assert res.total_time_s == pytest.approx(res.total_tasks)

    def test_unbounded_faster_than_serial(self):
        serial = simulate_bc_pipeline(200, 4, 1, 1.0)
        free = simulate_bc_pipeline(200, 4, None, 1.0)
        assert free.total_time_s < serial.total_time_s / 3

    def test_monotone_in_s(self):
        times = [
            simulate_bc_pipeline(80, 4, S, 1.0).total_time_s
            for S in [1, 2, 4, 8, 16, 1000]
        ]
        assert all(t1 >= t2 for t1, t2 in zip(times, times[1:]))

    def test_critical_path_bound(self):
        # Fully pipelined completion is bounded below by ~3n cycles (the
        # paper's "3n - 2 successive bulges") and by the longest sweep.
        n, b = 100, 4
        res = simulate_bc_pipeline(n, b, None, 1.0)
        longest = int(tasks_per_sweep(n, b)[0])
        assert res.total_time_s >= longest
        assert res.total_time_s <= 3.0 * n

    def test_matches_lockstep_scheduler(self):
        # The asynchronous event simulation can only beat (or tie) the
        # lockstep rounds of the numeric pipeline driver.
        n, b, S = 40, 3, 4
        _, stats = pipeline_schedule(n, b, max_sweeps=S)
        sim = simulate_bc_pipeline(n, b, S, 1.0)
        assert sim.total_time_s <= stats.rounds
        assert sim.total_time_s >= stats.rounds / 3

    def test_sweep_spans_ordered(self):
        res = simulate_bc_pipeline(60, 4, 8, 1.0)
        assert np.all(np.diff(res.sweep_start) >= 0)
        assert np.all(res.sweep_end > res.sweep_start)

    def test_throughput_accounting(self):
        res = simulate_bc_pipeline(60, 4, 8, 1e-6, bytes_per_task=1000.0)
        assert res.total_bytes == res.total_tasks * 1000.0
        assert res.throughput_gbs == pytest.approx(
            res.total_bytes / res.total_time_s / 1e9
        )

    def test_throughput_grows_with_parallelism(self):
        # The Figure 12 claim.
        th = [
            simulate_bc_pipeline(200, 4, S, 1e-6, bytes_per_task=1.0).throughput_gbs
            for S in [1, 4, 16, 64]
        ]
        assert th == sorted(th)

    def test_concurrency_profile(self):
        res = simulate_bc_pipeline(80, 4, 8, 1.0)
        ts, active = res.concurrency_profile(samples=64)
        assert active.max() <= 8 + 1  # sampling slack at boundaries
        assert active.max() >= 2

    def test_mean_parallel_bounded_by_s(self):
        res = simulate_bc_pipeline(100, 4, 6, 1.0)
        assert res.mean_parallel_sweeps <= 6.0 + 1e-9

    def test_empty_problem(self):
        res = simulate_bc_pipeline(2, 4, 4, 1.0)
        assert res.total_tasks == 0 and res.total_time_s == 0.0

    def test_invalid_s(self):
        with pytest.raises(ValueError):
            simulate_bc_pipeline(20, 3, 0, 1.0)

    def test_paper_scale_runs_fast(self):
        # n = 65536, b = 32: hundreds of millions of tasks, vectorized.
        import time

        t0 = time.perf_counter()
        res = simulate_bc_pipeline(65536, 32, 128, 10e-6)
        elapsed = time.perf_counter() - t0
        assert elapsed < 30.0
        assert res.total_tasks > 6e7
