"""API-surface stability: every documented public name exists and the
package-level ``__all__`` lists are importable.

This is the contract of README's "Architecture" section — accidental
removals or renames fail here before any downstream user notices.
"""

from __future__ import annotations

import importlib

import pytest

PUBLIC_API = {
    "repro": [
        "eigh", "eigh_partial", "eigh_hermitian", "eigh_generalized",
        "eigh_stacked", "matrix_fingerprint",
        "tridiagonalize", "dbbr", "sbr",
        "dc_eigh", "tridiag_qr_eigh", "eigh_bisect",
        "SolverService", "ServiceConfig",
        "EVDResult", "TridiagResult", "__version__",
        "EVDPlan", "PlanError", "plan_evd", "execute_plan", "explain_plan",
        "ReproError", "ConvergenceError", "VerificationError",
        "verify_evd", "verify_tridiag", "execute_plan_with_fallback",
    ],
    "repro.resilience": [
        "ReproError", "ConvergenceError", "VerificationError",
        "WorkerCrashError", "DeadlineExceeded", "BackendFault",
        "FallbackExhausted", "FaultInjectionError", "InjectedWorkerCrash",
        "VerificationReport", "verify_evd", "verify_tridiag",
        "default_tolerances",
        "FAULT_SITES", "FAULT_KINDS", "FaultSpec", "FaultPlan",
        "install_faults", "clear_faults", "injected_faults", "active_plan",
        "faults_from_env", "parse_fault_specs", "maybe_raise", "maybe_corrupt",
        "CircuitBreaker", "BreakerRegistry",
        "EscalationRecord", "FallbackOutcome",
        "resolve_fallback_chain", "execute_plan_with_fallback",
    ],
    "repro.plan": [
        "EVDPlan", "TridiagConfig", "BulgeChaseConfig", "SolverConfig",
        "BackTransformConfig", "PlanError",
        "plan_evd", "plan_tridiag", "auto_params", "make_solver_config",
        "execute_plan", "execute_plan_partial", "solve_tridiagonal_planned",
        "explain_plan", "predicted_stage_times",
        "PRESETS", "PIPELINE_KNOBS",
    ],
    "repro.core": [
        "make_householder", "WYAccumulator", "accumulate_wy", "merge_wy",
        "larft", "panel_qr", "panel_qr_wy", "panel_qr_compact",
        "syr2k_reference", "syr2k_square_blocked", "syr2k_rect_blocked",
        "square_schedule", "rect_schedule",
        "sbr", "dbbr", "direct_tridiagonalize",
        "bulge_chase", "bulge_chase_band", "bulge_chase_pipelined",
        "pipeline_schedule", "sweep_tasks", "apply_bc_task",
        "apply_sbr_q", "assemble_eigenvectors", "q_from_blocks",
        "merge_blocks_recursive", "merge_blocks_grouped",
        "blocked_q1_blocks", "apply_q1_blocked",
        "tridiagonalize", "eigh", "eigh_partial", "eigh_stacked",
        "auto_params", "save_tridiag", "load_tridiag",
        "save_evd", "load_evd",
        "matrix_fingerprint", "check_symmetric",
        "SymmetryError", "NonSquareError", "NonFiniteError",
        "EmptyMatrixError",
        "eigh_hermitian", "eigh_generalized", "cholesky_lower",
    ],
    "repro.eig": [
        "dc_eigh", "tridiag_qr_eigh", "eigh_bisect", "eigvals_bisect",
        "sturm_count", "inverse_iteration", "tridiag_solve_shifted",
        "solve_all_roots", "solve_secular_root", "refine_z",
        "secular_eigenvectors", "jacobi_eigh", "DCStats",
    ],
    "repro.band": [
        "LowerBandStorage", "PackedBandStorage", "dense_from_band",
        "bandwidth_of", "is_banded", "extract_tridiagonal",
        "sbmv", "band_frobenius_norm", "band_gershgorin", "tridiag_matvec",
        "random_symmetric_band",
    ],
    "repro.gpusim": [
        "H100", "RTX4090", "CPU_8_CORE", "DeviceSpec", "device_by_name",
        "sustained_gemm_tflops", "gemm_time", "syr2k_tflops",
        "simulate_bc_pipeline", "bc_task_time_gpu", "bc_task_time_cpu",
        "bc_memory_summary", "simulate_layout_misses",
        "throughput_timeline", "ascii_gantt",
    ],
    "repro.models": [
        "flops", "table1_rows", "figure8_series", "figure5_series",
        "bc_time_model", "total_cycles", "stall_cycles",
        "cusolver_sytrd_time", "magma_sy2sb_time", "magma_sb2st_time",
        "proposed_tridiag_times", "proposed_evd_times",
        "make_figure", "figure_registry",
        "headline_metrics", "conclusions_hold",
    ],
    "repro.bench": [
        "goe", "symmetric_with_spectrum", "wilkinson_tridiagonal",
        "print_table", "print_series", "banner", "measure",
    ],
    "repro.serve": [
        "SolverService", "ServiceConfig", "ServiceMetrics", "ResultCache",
        "CacheEntry",
        "RequestQueue", "BatchPolicy", "make_cache_key", "plan_cache_key",
        "ServiceClosed", "ServiceOverloaded", "SubmitTimeout",
        "WorkloadSpec", "make_workload", "run_loadgen",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_documented_names_exist(module_name):
    mod = importlib.import_module(module_name)
    missing = [n for n in PUBLIC_API[module_name] if not hasattr(mod, n)]
    assert not missing, f"{module_name} is missing {missing}"


@pytest.mark.parametrize(
    "module_name",
    ["repro", "repro.core", "repro.eig", "repro.band", "repro.gpusim",
     "repro.models", "repro.bench", "repro.serve", "repro.plan",
     "repro.resilience"],
)
def test_all_lists_are_importable(module_name):
    mod = importlib.import_module(module_name)
    assert hasattr(mod, "__all__")
    broken = [n for n in mod.__all__ if not hasattr(mod, n)]
    assert not broken, f"{module_name}.__all__ lists missing names {broken}"


def test_version_is_semver():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
