"""Unit tests for the secular equation solver and Gu-Eisenstat refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig.secular import (
    refine_z,
    secular_eigenvectors,
    secular_f,
    solve_all_roots,
    solve_secular_root,
)


def random_problem(rng, N=20, zscale=1.0):
    d = np.sort(rng.standard_normal(N))
    d += np.arange(N) * 1e-6  # ensure distinct poles
    z = rng.standard_normal(N) * zscale
    z[np.abs(z) < 1e-3 * zscale] = 1e-3 * zscale
    rho = float(abs(rng.standard_normal()) + 0.1)
    return d, z, rho


class TestRoots:
    def test_interlacing(self, rng):
        d, z, rho = random_problem(rng)
        roots = solve_all_roots(d, z, rho)
        lam = roots.values
        # rho > 0: d_i < lam_i < d_{i+1} (lam_N beyond d_N).
        assert np.all(lam[:-1] > d[:-1]) and np.all(lam[:-1] < d[1:])
        assert lam[-1] > d[-1]

    def test_matches_dense_eigensolver(self, rng):
        d, z, rho = random_problem(rng, N=30)
        lam = solve_all_roots(d, z, rho).values
        lam_ref = np.linalg.eigvalsh(np.diag(d) + rho * np.outer(z, z))
        assert np.max(np.abs(np.sort(lam) - lam_ref) / (1 + np.abs(lam_ref))) < 1e-13

    def test_residual_of_each_root(self, rng):
        d, z, rho = random_problem(rng, N=15)
        z2 = z * z
        roots = solve_all_roots(d, z, rho)
        for lam in roots.values:
            # |f| should be at roundoff of its own evaluation.
            scale = 1.0 + rho * float(np.sum(np.abs(z2 / (d - lam))))
            assert abs(secular_f(lam, d, z2, rho)) < 1e-11 * scale

    def test_trace_identity(self, rng):
        # sum lam = sum d + rho ||z||^2.
        d, z, rho = random_problem(rng, N=25)
        lam = solve_all_roots(d, z, rho).values
        assert abs(np.sum(lam) - (np.sum(d) + rho * float(z @ z))) < 1e-10

    def test_large_z_scale(self, rng):
        d, z, rho = random_problem(rng, N=20, zscale=1e4)
        M = np.diag(d) + rho * np.outer(z, z)
        lam = solve_all_roots(d, z, rho).values
        lam_ref = np.linalg.eigvalsh(M)
        # Backward-error normalization: absolute errors scale with ||M||.
        scale = np.linalg.norm(M)
        assert np.max(np.abs(np.sort(lam) - lam_ref)) < 1e-13 * scale

    def test_tiny_z_component_root_hugs_pole(self, rng):
        d = np.array([0.0, 1.0, 2.0])
        z = np.array([1.0, 1e-10, 1.0])
        rho = 0.5
        roots = solve_all_roots(d, z, rho)
        lam = roots.values
        # Root 1 sits within ~rho*z^2 of its pole.
        assert abs(lam[1] - 1.0) < 1e-18

    def test_root_index_bounds(self, rng):
        d, z, rho = random_problem(rng, N=5)
        with pytest.raises(IndexError):
            solve_secular_root(d, z**2, rho, 5)

    def test_negative_rho_rejected(self, rng):
        d, z, rho = random_problem(rng, N=5)
        with pytest.raises(ValueError):
            solve_secular_root(d, z**2, -rho, 0)

    def test_anchor_offset_consistency(self, rng):
        d, z, rho = random_problem(rng, N=12)
        roots = solve_all_roots(d, z, rho)
        lam = roots.values
        for i in range(12):
            assert abs(lam[i] - (d[roots.anchors[i]] + roots.offsets[i])) == 0.0


class TestRefineZ:
    def test_refined_close_to_original(self, rng):
        d, z, rho = random_problem(rng, N=20)
        roots = solve_all_roots(d, z, rho)
        zhat = refine_z(roots, z, rho)
        assert np.max(np.abs(zhat - z) / np.abs(z)) < 1e-8

    def test_signs_preserved(self, rng):
        d, z, rho = random_problem(rng, N=16)
        roots = solve_all_roots(d, z, rho)
        zhat = refine_z(roots, z, rho)
        assert np.all(np.sign(zhat) == np.sign(z))

    def test_roots_exact_for_refined_problem(self, rng):
        d, z, rho = random_problem(rng, N=12)
        roots = solve_all_roots(d, z, rho)
        zhat = refine_z(roots, z, rho)
        lam_hat = np.linalg.eigvalsh(np.diag(d) + rho * np.outer(zhat, zhat))
        assert np.max(np.abs(np.sort(roots.values) - lam_hat)) < 1e-11


class TestEigenvectors:
    def test_orthonormal(self, rng):
        d, z, rho = random_problem(rng, N=25)
        roots = solve_all_roots(d, z, rho)
        U = secular_eigenvectors(roots, refine_z(roots, z, rho))
        assert np.linalg.norm(U.T @ U - np.eye(25)) < 1e-12

    def test_residual(self, rng):
        d, z, rho = random_problem(rng, N=25)
        M = np.diag(d) + rho * np.outer(z, z)
        roots = solve_all_roots(d, z, rho)
        U = secular_eigenvectors(roots, refine_z(roots, z, rho))
        lam = roots.values
        assert np.linalg.norm(M @ U - U * lam) / np.linalg.norm(M) < 1e-11

    def test_clustered_poles_stay_orthogonal(self, rng):
        # Poles separated by barely more than deflation tolerances.
        N = 10
        d = np.sort(np.concatenate([np.zeros(5), np.ones(5)]) + 1e-7 * np.arange(N))
        z = rng.standard_normal(N)
        rho = 1.0
        roots = solve_all_roots(d, z, rho)
        U = secular_eigenvectors(roots, refine_z(roots, z, rho))
        assert np.linalg.norm(U.T @ U - np.eye(N)) < 1e-10
