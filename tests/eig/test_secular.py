"""Unit tests for the secular equation solver and Gu-Eisenstat refinement.

Every numerical test runs twice — once per ``mode`` — so the vectorized
batched kernels and the scalar oracle loops are exercised identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig.secular import (
    refine_z,
    secular_eigenvectors,
    secular_f,
    solve_all_roots,
    solve_secular_root,
)

pytestmark = pytest.mark.parametrize("mode", ["scalar", "batched"])

_EPS = np.finfo(np.float64).eps


def random_problem(rng, N=20, zscale=1.0):
    d = np.sort(rng.standard_normal(N))
    d += np.arange(N) * 1e-6  # ensure distinct poles
    z = rng.standard_normal(N) * zscale
    z[np.abs(z) < 1e-3 * zscale] = 1e-3 * zscale
    rho = float(abs(rng.standard_normal()) + 0.1)
    return d, z, rho


class TestRoots:
    def test_interlacing(self, rng, mode):
        d, z, rho = random_problem(rng)
        roots = solve_all_roots(d, z, rho, mode=mode)
        lam = roots.values
        # rho > 0: d_i < lam_i < d_{i+1} (lam_N beyond d_N).
        assert np.all(lam[:-1] > d[:-1]) and np.all(lam[:-1] < d[1:])
        assert lam[-1] > d[-1]

    def test_matches_dense_eigensolver(self, rng, mode):
        d, z, rho = random_problem(rng, N=30)
        lam = solve_all_roots(d, z, rho, mode=mode).values
        lam_ref = np.linalg.eigvalsh(np.diag(d) + rho * np.outer(z, z))
        assert np.max(np.abs(np.sort(lam) - lam_ref) / (1 + np.abs(lam_ref))) < 1e-13

    def test_residual_of_each_root(self, rng, mode):
        d, z, rho = random_problem(rng, N=15)
        z2 = z * z
        roots = solve_all_roots(d, z, rho, mode=mode)
        for lam in roots.values:
            # |f| should be at roundoff of its own evaluation.
            scale = 1.0 + rho * float(np.sum(np.abs(z2 / (d - lam))))
            assert abs(secular_f(lam, d, z2, rho)) < 1e-11 * scale

    def test_trace_identity(self, rng, mode):
        # sum lam = sum d + rho ||z||^2.
        d, z, rho = random_problem(rng, N=25)
        lam = solve_all_roots(d, z, rho, mode=mode).values
        assert abs(np.sum(lam) - (np.sum(d) + rho * float(z @ z))) < 1e-10

    def test_large_z_scale(self, rng, mode):
        d, z, rho = random_problem(rng, N=20, zscale=1e4)
        M = np.diag(d) + rho * np.outer(z, z)
        lam = solve_all_roots(d, z, rho, mode=mode).values
        lam_ref = np.linalg.eigvalsh(M)
        # Backward-error normalization: absolute errors scale with ||M||.
        scale = np.linalg.norm(M)
        assert np.max(np.abs(np.sort(lam) - lam_ref)) < 1e-13 * scale

    def test_tiny_z_component_root_hugs_pole(self, rng, mode):
        d = np.array([0.0, 1.0, 2.0])
        z = np.array([1.0, 1e-10, 1.0])
        rho = 0.5
        roots = solve_all_roots(d, z, rho, mode=mode)
        lam = roots.values
        # Root 1 sits within ~rho*z^2 of its pole.
        assert abs(lam[1] - 1.0) < 1e-18

    def test_root_index_bounds(self, rng, mode):
        d, z, rho = random_problem(rng, N=5)
        with pytest.raises(IndexError):
            solve_secular_root(d, z**2, rho, 5)

    def test_negative_rho_rejected(self, rng, mode):
        d, z, rho = random_problem(rng, N=5)
        with pytest.raises(ValueError):
            solve_secular_root(d, z**2, -rho, 0)
        with pytest.raises(ValueError):
            solve_all_roots(d, z, -rho, mode=mode)

    def test_anchor_offset_consistency(self, rng, mode):
        d, z, rho = random_problem(rng, N=12)
        roots = solve_all_roots(d, z, rho, mode=mode)
        lam = roots.values
        for i in range(12):
            assert abs(lam[i] - (d[roots.anchors[i]] + roots.offsets[i])) == 0.0

    def test_unknown_mode_rejected(self, rng, mode):
        d, z, rho = random_problem(rng, N=5)
        with pytest.raises(ValueError):
            solve_all_roots(d, z, rho, mode="vectorised")


class TestRefineZ:
    def test_refined_close_to_original(self, rng, mode):
        d, z, rho = random_problem(rng, N=20)
        roots = solve_all_roots(d, z, rho, mode=mode)
        zhat = refine_z(roots, z, rho, mode=mode)
        assert np.max(np.abs(zhat - z) / np.abs(z)) < 1e-8

    def test_signs_preserved(self, rng, mode):
        d, z, rho = random_problem(rng, N=16)
        roots = solve_all_roots(d, z, rho, mode=mode)
        zhat = refine_z(roots, z, rho, mode=mode)
        assert np.all(np.sign(zhat) == np.sign(z))

    def test_roots_exact_for_refined_problem(self, rng, mode):
        d, z, rho = random_problem(rng, N=12)
        roots = solve_all_roots(d, z, rho, mode=mode)
        zhat = refine_z(roots, z, rho, mode=mode)
        lam_hat = np.linalg.eigvalsh(np.diag(d) + rho * np.outer(zhat, zhat))
        assert np.max(np.abs(np.sort(roots.values) - lam_hat)) < 1e-11


class TestEigenvectors:
    def test_orthonormal(self, rng, mode):
        d, z, rho = random_problem(rng, N=25)
        roots = solve_all_roots(d, z, rho, mode=mode)
        U = secular_eigenvectors(roots, refine_z(roots, z, rho, mode=mode), mode=mode)
        assert np.linalg.norm(U.T @ U - np.eye(25)) < 1e-12

    def test_residual(self, rng, mode):
        d, z, rho = random_problem(rng, N=25)
        M = np.diag(d) + rho * np.outer(z, z)
        roots = solve_all_roots(d, z, rho, mode=mode)
        U = secular_eigenvectors(roots, refine_z(roots, z, rho, mode=mode), mode=mode)
        lam = roots.values
        assert np.linalg.norm(M @ U - U * lam) / np.linalg.norm(M) < 1e-11

    def test_clustered_poles_stay_orthogonal(self, rng, mode):
        # Poles separated by barely more than deflation tolerances.
        N = 10
        d = np.sort(np.concatenate([np.zeros(5), np.ones(5)]) + 1e-7 * np.arange(N))
        z = rng.standard_normal(N)
        rho = 1.0
        roots = solve_all_roots(d, z, rho, mode=mode)
        U = secular_eigenvectors(roots, refine_z(roots, z, rho, mode=mode), mode=mode)
        assert np.linalg.norm(U.T @ U - np.eye(N)) < 1e-10


class TestBatchedOracleAgreement:
    """The batched kernels against the scalar oracle on hostile inputs."""

    def _full_stack(self, d, z, rho, mode):
        roots = solve_all_roots(d, z, rho, mode=mode)
        zhat = refine_z(roots, z, rho, mode=mode)
        U = secular_eigenvectors(roots, zhat, mode=mode)
        return roots, zhat, U

    def assert_modes_agree(self, d, z, rho, mode):
        del mode  # both run explicitly; keeps the shared parametrization
        rs, zs, Us = self._full_stack(d, z, rho, "scalar")
        rb, zb, Ub = self._full_stack(d, z, rho, "batched")
        assert np.array_equal(rs.anchors, rb.anchors)
        scale = max(float(np.max(np.abs(d))) + rho * float(z @ z), 1.0)
        assert np.max(np.abs(rs.values - rb.values)) <= 4.0 * _EPS * scale
        assert np.max(np.abs(zs - zb)) <= 1e-12 * max(float(np.max(np.abs(zs))), 1.0)
        # Columns are sign-fixed by zhat, so they compare directly.
        assert np.max(np.abs(Us - Ub)) < 1e-11

    def test_random(self, rng, mode):
        d, z, rho = random_problem(rng, N=40)
        self.assert_modes_agree(d, z, rho, mode)

    def test_clustered_poles_8eps(self, rng, mode):
        # Pole spacing of ~8*eps*scale: just above what dlaed2-style
        # deflation removes, the hardest surviving geometry.
        N = 24
        d = 1.0 + 8.0 * _EPS * np.arange(N)
        z = rng.standard_normal(N)
        z[np.abs(z) < 1e-3] = 1e-3
        self.assert_modes_agree(d, z, 1.0, mode)

    def test_degenerate_n1(self, rng, mode):
        self.assert_modes_agree(np.array([0.3]), np.array([0.9]), 0.8, mode)

    def test_degenerate_n2(self, rng, mode):
        self.assert_modes_agree(
            np.array([-0.5, 0.25]), np.array([0.6, -0.7]), 1.3, mode
        )

    def test_wide_dynamic_range(self, rng, mode):
        d = np.geomspace(1e-8, 1e8, 30)
        z = rng.standard_normal(30)
        z[np.abs(z) < 1e-3] = 1e-3
        self.assert_modes_agree(d, z, 0.5, mode)


class TestWorkspacePooling:
    def test_pool_backed_results_match_fresh(self, rng, mode):
        from repro.backend.context import ExecutionContext

        d, z, rho = random_problem(rng, N=30)
        pool = ExecutionContext().workspace
        roots_p = solve_all_roots(d, z, rho, mode=mode, workspace=pool)
        roots_f = solve_all_roots(d, z, rho, mode=mode)
        assert np.array_equal(roots_p.values, roots_f.values)
        zh_p = refine_z(roots_p, z, rho, mode=mode, workspace=pool)
        zh_f = refine_z(roots_f, z, rho, mode=mode)
        assert np.array_equal(zh_p, zh_f)
        U_p = secular_eigenvectors(roots_p, zh_p, mode=mode, workspace=pool)
        U_f = secular_eigenvectors(roots_f, zh_f, mode=mode)
        assert np.array_equal(np.asarray(U_p), U_f)

    def test_pool_reuse_across_shrinking_sizes(self, rng, mode):
        from repro.backend.context import ExecutionContext

        pool = ExecutionContext().workspace
        for N in (40, 24, 8):
            d, z, rho = random_problem(rng, N=N)
            roots = solve_all_roots(d, z, rho, mode=mode, workspace=pool)
            U = secular_eigenvectors(
                roots, refine_z(roots, z, rho, mode=mode, workspace=pool),
                mode=mode, workspace=pool,
            )
            assert np.linalg.norm(np.asarray(U).T @ U - np.eye(N)) < 1e-12
