"""Unit tests for the cyclic Jacobi eigensolver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import goe, symmetric_with_spectrum
from repro.eig.jacobi import jacobi_eigh


class TestJacobi:
    @pytest.mark.parametrize("n", [1, 2, 5, 20, 60])
    def test_matches_numpy(self, n):
        A = goe(n, seed=n)
        lam, V = jacobi_eigh(A)
        lam_ref = np.linalg.eigvalsh(A)
        assert np.max(np.abs(lam - lam_ref)) < 1e-11 * max(1, np.max(np.abs(lam_ref)))
        assert np.linalg.norm(A @ V - V * lam) / max(np.linalg.norm(A), 1) < 1e-12
        assert np.linalg.norm(V.T @ V - np.eye(n)) < 1e-12

    def test_eigenvalues_only(self):
        A = goe(25, seed=1)
        lam, V = jacobi_eigh(A, compute_vectors=False)
        assert V is None
        assert np.max(np.abs(lam - np.linalg.eigvalsh(A))) < 1e-11

    def test_diagonal_input_is_fixed_point(self):
        d = np.array([3.0, -1.0, 2.0, 0.0])
        lam, V = jacobi_eigh(np.diag(d))
        assert np.allclose(lam, np.sort(d))
        assert np.allclose(np.abs(V), np.eye(4)[:, np.argsort(d)])

    def test_high_relative_accuracy_on_graded_spd(self):
        # Jacobi's specialty: graded positive definite matrices.
        lam_true = np.geomspace(1e-12, 1.0, 30)
        A = symmetric_with_spectrum(lam_true, seed=2)
        lam, _ = jacobi_eigh(A, compute_vectors=False)
        # Small eigenvalues to good *absolute* accuracy at least.
        assert np.max(np.abs(lam - lam_true)) < 1e-13

    def test_agreement_with_two_stage_pipeline(self):
        import repro

        A = goe(40, seed=3)
        lam_j, _ = jacobi_eigh(A, compute_vectors=False)
        res = repro.eigh(A, compute_vectors=False, bandwidth=4, second_block=8)
        assert np.max(np.abs(lam_j - res.eigenvalues)) < 1e-11

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            jacobi_eigh(np.zeros((3, 4)))

    def test_input_not_modified(self):
        A = goe(10, seed=4)
        A0 = A.copy()
        jacobi_eigh(A)
        assert np.array_equal(A, A0)

    def test_ascending_output(self):
        lam, _ = jacobi_eigh(goe(30, seed=5))
        assert np.all(np.diff(lam) >= 0)
