"""Convergence guards: iterative kernels raise a typed, contextful
:class:`~repro.resilience.ConvergenceError` instead of spinning or
silently returning unconverged roots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig import solve_all_roots, tridiag_qr_eigh
from repro.eig.jacobi import jacobi_eigh
from repro.resilience import (
    ConvergenceError,
    FaultSpec,
    clear_faults,
    injected_faults,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_faults()
    yield
    clear_faults()


def secular_problem(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    d = np.sort(rng.standard_normal(n))
    z = rng.standard_normal(n)
    z /= np.linalg.norm(z)
    return d, z, 1.0


class TestSecularGuard:
    @pytest.mark.parametrize("mode", ["batched", "scalar"])
    def test_starved_iteration_budget_raises_typed(self, mode):
        d, z, rho = secular_problem(64, seed=1)
        with pytest.raises(ConvergenceError) as info:
            solve_all_roots(d, z, rho, mode=mode, max_iter=1)
        exc = info.value
        assert exc.site == "secular.newton"
        assert exc.iterations == 1
        assert exc.indices  # names the offending roots

    @pytest.mark.parametrize("mode", ["batched", "scalar"])
    def test_default_budget_converges(self, mode):
        d, z, rho = secular_problem(64, seed=2)
        lam = solve_all_roots(d, z, rho, mode=mode).values
        # Interlacing: d_i < lam_i < d_{i+1} (rho > 0).
        assert np.all(lam[:-1] >= d[:-1])
        assert np.all(np.isfinite(lam))

    def test_guard_is_catchable_as_linalgerror(self):
        d, z, rho = secular_problem(32, seed=3)
        with pytest.raises(np.linalg.LinAlgError):
            solve_all_roots(d, z, rho, max_iter=1)


class TestInjectedGuards:
    def test_qr_sweep_site_raises_in_context(self):
        rng = np.random.default_rng(4)
        d, e = rng.standard_normal(16), rng.standard_normal(15)
        with injected_faults(FaultSpec("qr.sweep", "convergence")):
            with pytest.raises(ConvergenceError) as info:
                tridiag_qr_eigh(d, e)
        assert info.value.site == "qr.sweep"

    def test_jacobi_sweep_site_raises_in_context(self):
        A = np.random.default_rng(5).standard_normal((8, 8))
        A = (A + A.T) / 2
        with injected_faults(FaultSpec("jacobi.sweep", "convergence")):
            with pytest.raises(ConvergenceError) as info:
                jacobi_eigh(A)
        assert info.value.site == "jacobi.sweep"

    def test_secular_site_fires_before_any_work(self):
        d, z, rho = secular_problem(16, seed=6)
        with injected_faults(FaultSpec("secular.newton", "convergence")):
            with pytest.raises(ConvergenceError):
                solve_all_roots(d, z, rho)
