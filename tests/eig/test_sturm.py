"""Unit tests for Sturm counts, bisection, and inverse iteration."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import eigh_tridiagonal

from repro.band.storage import dense_from_band
from repro.bench.workloads import wilkinson_tridiagonal
from repro.eig.sturm import (
    eigh_bisect,
    eigvals_bisect,
    inverse_iteration,
    sturm_count,
    tridiag_solve_shifted,
)


class TestSturmCount:
    def test_counts_match_reference(self, rng):
        n = 30
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        lam = eigh_tridiagonal(d, e, eigvals_only=True)
        shifts = np.array([-10.0, lam[10] + 1e-9, lam[20] + 1e-9, 10.0])
        counts = sturm_count(d, e, shifts)
        assert counts[0] == 0
        assert counts[1] == 11
        assert counts[2] == 21
        assert counts[3] == n

    def test_monotone_in_shift(self, rng):
        d = rng.standard_normal(20)
        e = rng.standard_normal(19)
        xs = np.linspace(-5, 5, 40)
        counts = sturm_count(d, e, xs)
        assert np.all(np.diff(counts) >= 0)

    def test_scalar_shift(self, rng):
        d = rng.standard_normal(10)
        e = rng.standard_normal(9)
        c = sturm_count(d, e, 0.0)
        assert c.shape == (1,)


class TestBisection:
    @pytest.mark.parametrize("n", [1, 2, 20, 100])
    def test_all_eigenvalues(self, rng, n):
        d = rng.standard_normal(n)
        e = rng.standard_normal(max(n - 1, 0))
        lam = eigvals_bisect(d, e)
        lref = eigh_tridiagonal(d, e, eigvals_only=True) if n > 1 else np.sort(d)
        assert np.max(np.abs(np.sort(lam) - lref)) < 1e-11

    def test_selected_indices(self, rng):
        n = 40
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        lref = eigh_tridiagonal(d, e, eigvals_only=True)
        lam = eigvals_bisect(d, e, indices=np.array([0, 5, n - 1]))
        assert np.max(np.abs(lam - lref[[0, 5, n - 1]])) < 1e-11

    def test_clustered_eigenvalues_resolved(self):
        d, e = wilkinson_tridiagonal(21)
        lam = eigvals_bisect(d, e)
        lref = eigh_tridiagonal(d, e, eigvals_only=True)
        assert np.max(np.abs(lam - lref)) < 1e-11


class TestShiftedSolve:
    def test_solves_linear_system(self, rng):
        n = 25
        d = rng.standard_normal(n) + 5.0
        e = rng.standard_normal(n - 1)
        sigma = 0.3
        x_true = rng.standard_normal(n)
        T = dense_from_band(d, e)
        rhs = (T - sigma * np.eye(n)) @ x_true
        x = tridiag_solve_shifted(d, e, sigma, rhs)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-10

    def test_pivoting_handles_zero_diagonal(self):
        # Nonsingular but with zero pivots in the unpivoted elimination.
        d = np.array([0.0, 0.0, 1.0])
        e = np.array([1.0, 2.0])
        T = dense_from_band(d, e)
        x_true = np.array([0.5, -1.0, 2.0])
        x = tridiag_solve_shifted(d, e, 0.0, T @ x_true)
        assert np.linalg.norm(x - x_true) < 1e-12

    def test_near_singular_shift_returns_large_vector(self, rng):
        n = 12
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        lam = eigh_tridiagonal(d, e, eigvals_only=True)
        x = tridiag_solve_shifted(d, e, float(lam[3]), np.ones(n))
        assert np.linalg.norm(x) > 1e3  # blow-up toward the eigenvector


class TestInverseIteration:
    def test_recovers_eigenvector(self, rng):
        n = 30
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        lam, U = eigh_tridiagonal(d, e)
        v = inverse_iteration(d, e, float(lam[7]))
        overlap = abs(float(v @ U[:, 7]))
        assert overlap > 1.0 - 1e-10

    def test_full_decomposition(self, rng):
        n = 40
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        lam, U = eigh_bisect(d, e)
        T = dense_from_band(d, e)
        assert np.linalg.norm(T @ U - U * lam) / np.linalg.norm(T) < 1e-9
        assert np.linalg.norm(U.T @ U - np.eye(n)) < 1e-8

    def test_wilkinson_orthogonality(self):
        d, e = wilkinson_tridiagonal(21)
        lam, U = eigh_bisect(d, e)
        assert np.linalg.norm(U.T @ U - np.eye(21)) < 1e-9

    def test_novec_mode(self, rng):
        lam, U = eigh_bisect(rng.standard_normal(10), rng.standard_normal(9),
                             compute_vectors=False)
        assert U is None and lam.size == 10
