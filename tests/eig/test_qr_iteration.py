"""Unit tests for the implicit-shift QL/QR iteration."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import eigh_tridiagonal

from repro.band.storage import dense_from_band
from repro.bench.workloads import laplacian_1d, wilkinson_tridiagonal
from repro.eig.qr_iteration import tridiag_qr_eigh


class TestEigenvalues:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 64, 150])
    def test_matches_scipy(self, rng, n):
        d = rng.standard_normal(n)
        e = rng.standard_normal(max(n - 1, 0))
        lam, _ = tridiag_qr_eigh(d, e, compute_vectors=False)
        lref = eigh_tridiagonal(d, e, eigvals_only=True) if n > 1 else d
        assert np.max(np.abs(lam - np.sort(lref))) < 1e-12 * max(
            1, np.max(np.abs(lref))
        )

    def test_laplacian_analytic_spectrum(self):
        n = 50
        d, e = laplacian_1d(n)
        lam, _ = tridiag_qr_eigh(d, e, compute_vectors=False)
        expect = 2.0 - 2.0 * np.cos(np.arange(1, n + 1) * np.pi / (n + 1))
        assert np.max(np.abs(np.sort(lam) - np.sort(expect))) < 1e-12

    def test_wilkinson_pairs(self):
        d, e = wilkinson_tridiagonal(21)
        lam, _ = tridiag_qr_eigh(d, e, compute_vectors=False)
        lref = eigh_tridiagonal(d, e, eigvals_only=True)
        assert np.max(np.abs(lam - lref)) < 1e-12

    def test_zero_offdiagonal_splits(self):
        d = np.array([3.0, 1.0, 2.0, 0.5])
        e = np.array([0.0, 1.0, 0.0])
        lam, _ = tridiag_qr_eigh(d, e, compute_vectors=False)
        M = dense_from_band(d, e)
        assert np.max(np.abs(lam - np.linalg.eigvalsh(M))) < 1e-13

    def test_ascending_order(self, rng):
        lam, _ = tridiag_qr_eigh(rng.standard_normal(30), rng.standard_normal(29))
        assert np.all(np.diff(lam) >= 0)


class TestEigenvectors:
    def test_residual_and_orthogonality(self, rng):
        n = 60
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        lam, U = tridiag_qr_eigh(d, e)
        T = dense_from_band(d, e)
        assert np.linalg.norm(T @ U - U * lam) / np.linalg.norm(T) < 1e-13
        assert np.linalg.norm(U.T @ U - np.eye(n)) < 1e-12

    def test_novec_returns_none(self, rng):
        _, U = tridiag_qr_eigh(rng.standard_normal(10), rng.standard_normal(9),
                               compute_vectors=False)
        assert U is None

    def test_input_not_modified(self, rng):
        d = rng.standard_normal(12)
        e = rng.standard_normal(11)
        d0, e0 = d.copy(), e.copy()
        tridiag_qr_eigh(d, e)
        assert np.array_equal(d, d0) and np.array_equal(e, e0)

    def test_diagonal_input_identity_vectors(self):
        d = np.array([5.0, 1.0, 3.0])
        e = np.zeros(2)
        lam, U = tridiag_qr_eigh(d, e)
        assert np.allclose(lam, [1.0, 3.0, 5.0])
        assert np.allclose(np.abs(U), np.eye(3)[:, [1, 2, 0]])
