"""Unit tests for the Cuppen divide-and-conquer eigensolver."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import eigh_tridiagonal

from repro.band.storage import dense_from_band
from repro.bench.workloads import laplacian_1d, wilkinson_tridiagonal
from repro.eig.dc import dc_eigh


def check_decomposition(d, e, atol=5e-13):
    n = d.size
    lam, U = dc_eigh(d, e)
    lref = eigh_tridiagonal(d, e, eigvals_only=True) if n > 1 else np.sort(d)
    scale = max(float(np.max(np.abs(lref))), 1.0)
    assert np.max(np.abs(lam - lref)) < atol * scale
    T = dense_from_band(d, e)
    assert np.linalg.norm(T @ U - U * lam) < atol * max(np.linalg.norm(T), 1.0)
    assert np.linalg.norm(U.T @ U - np.eye(n)) < 1e-11
    return lam, U


class TestRandomMatrices:
    @pytest.mark.parametrize("n", [3, 24, 25, 47, 100, 200])
    def test_random(self, rng, n):
        check_decomposition(rng.standard_normal(n), rng.standard_normal(n - 1))

    def test_eigenvalues_only_matches_vector_path(self, rng):
        d = rng.standard_normal(90)
        e = rng.standard_normal(89)
        lam_v, _ = dc_eigh(d, e, compute_vectors=True)
        lam_n, U = dc_eigh(d, e, compute_vectors=False)
        assert U is None
        assert np.max(np.abs(lam_v - lam_n)) < 1e-13

    def test_base_size_invariance(self, rng):
        d = rng.standard_normal(70)
        e = rng.standard_normal(69)
        lam1, _ = dc_eigh(d, e, base_size=5)
        lam2, _ = dc_eigh(d, e, base_size=48)
        assert np.max(np.abs(lam1 - lam2)) < 1e-12


class TestStructuredMatrices:
    def test_laplacian(self):
        d, e = laplacian_1d(128)
        check_decomposition(d, e)

    def test_wilkinson(self):
        d, e = wilkinson_tridiagonal(41)
        check_decomposition(d, e)

    def test_zero_coupling_splits_cleanly(self, rng):
        # rho = 0 at the tear point: subproblems are independent.
        d = rng.standard_normal(50)
        e = rng.standard_normal(49)
        e[24] = 0.0  # exactly the n//2 tear position
        check_decomposition(d, e)

    def test_identity(self):
        lam, U = dc_eigh(np.ones(64), np.zeros(63))
        assert np.allclose(lam, 1.0)
        assert np.linalg.norm(U.T @ U - np.eye(64)) < 1e-12

    def test_heavy_deflation_counted(self, rng):
        d = np.ones(80)
        d[40:] = 2.0
        e = np.full(79, 1e-14)
        lam, U, stats = dc_eigh(d, e, return_stats=True)
        assert stats.deflation_fraction > 0.5
        check_decomposition(d, e)

    def test_graded_spectrum(self, rng):
        d = np.geomspace(1.0, 1e10, 60)
        e = rng.standard_normal(59)
        lam, _ = dc_eigh(d, e)
        lref = eigh_tridiagonal(d, e, eigvals_only=True)
        assert np.max(np.abs(lam - lref) / (1 + np.abs(lref))) < 1e-12

    def test_negative_couplings(self, rng):
        # All-negative off-diagonal exercises the rho < 0 reflection.
        d = rng.standard_normal(40)
        e = -np.abs(rng.standard_normal(39)) - 0.1
        check_decomposition(d, e)


class TestValidation:
    def test_wrong_e_length(self):
        with pytest.raises(ValueError):
            dc_eigh(np.zeros(5), np.zeros(5))

    def test_base_size_too_small(self):
        with pytest.raises(ValueError):
            dc_eigh(np.zeros(10), np.zeros(9), base_size=2)

    def test_stats_fields(self, rng):
        d = rng.standard_normal(100)
        e = rng.standard_normal(99)
        _, _, stats = dc_eigh(d, e, return_stats=True, base_size=10)
        assert stats.merges >= 3
        assert stats.gemm_flops > 0
        assert all(s > 10 for s in stats.sizes)
