"""Batched vs scalar secular modes through the full divide-and-conquer tree.

The acceptance grid of the batched rewrite: clustered spectra, heavy and
*full* deflation, ``rho < 0`` reflection, and degenerate merge sizes —
each solved with both ``secular_mode`` settings and held to the scalar
oracle at machine-precision scale (eigenvalues to ``~4*eps*||T||``,
eigenvector orthogonality/residual at roundoff).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import eigh_tridiagonal

from repro.backend.context import ExecutionContext
from repro.band.storage import dense_from_band
from repro.eig.dc import dc_eigh

_EPS = np.finfo(np.float64).eps


def tridiag_scale(d, e):
    T = dense_from_band(d, e)
    return max(float(np.linalg.norm(T, ord=1)), 1.0), T


def solve_both(d, e, **kwargs):
    lam_s, U_s = dc_eigh(d, e, secular_mode="scalar", **kwargs)
    lam_b, U_b = dc_eigh(d, e, secular_mode="batched", **kwargs)
    return lam_s, U_s, lam_b, U_b


def assert_oracle_agreement(d, e, base_size=24):
    n = d.size
    scale, T = tridiag_scale(d, e)
    lam_s, U_s, lam_b, U_b = solve_both(d, e, base_size=base_size)
    # Eigenvalues: batched tracks the scalar oracle to a few eps of ||T||.
    assert np.max(np.abs(lam_s - lam_b)) <= 4.0 * _EPS * scale
    # Both factorizations stand on their own at machine precision.
    for lam, U in ((lam_s, U_s), (lam_b, U_b)):
        assert np.linalg.norm(U.T @ U - np.eye(n)) < n * 2e-14
        assert np.linalg.norm(T @ U - U * lam) < 5e-13 * max(np.linalg.norm(T), 1.0)
    # And against an independent reference.
    lref = eigh_tridiagonal(d, e, eigvals_only=True) if n > 1 else np.sort(d)
    assert np.max(np.abs(lam_b - lref)) < 5e-13 * scale


class TestOracleGrid:
    def test_random_dense_spectrum(self, rng):
        assert_oracle_agreement(rng.standard_normal(150), rng.standard_normal(149))

    def test_clustered_spectrum(self, rng):
        # Blocks of (near-)equal diagonal entries with weak coupling:
        # merge poles land in tight clusters and deflation fires heavily.
        d = np.repeat([1.0, 1.0 + 1e-9, 2.0], 40)
        e = np.full(d.size - 1, 1e-8)
        assert_oracle_agreement(d, e)

    def test_full_deflation_merges(self, rng):
        # Constant diagonal + negligible coupling: every z entry deflates,
        # so merges hit the nd.size == 0 early-out in both modes.
        d = np.ones(96)
        e = np.full(95, 1e-16)
        lam_s, U_s, lam_b, U_b = solve_both(d, e)
        assert np.array_equal(lam_s, lam_b)
        assert np.allclose(lam_b, 1.0)
        assert np.linalg.norm(U_b.T @ U_b - np.eye(96)) < 1e-12

    def test_negative_rho_reflection(self, rng):
        # All-negative couplings force the rho < 0 reflection every merge.
        d = rng.standard_normal(120)
        e = -np.abs(rng.standard_normal(119)) - 0.1
        assert_oracle_agreement(d, e)

    def test_mixed_sign_couplings(self, rng):
        d = rng.standard_normal(130)
        e = rng.standard_normal(129)
        e[::3] *= -1.0
        assert_oracle_agreement(d, e)

    def test_wilkinson_pairs(self, rng):
        # Wilkinson W21+: eigenvalues in near-degenerate pairs.
        m = 10
        d = np.abs(np.arange(-m, m + 1)).astype(np.float64)
        e = np.ones(2 * m)
        assert_oracle_agreement(d, e, base_size=5)

    def test_graded_spectrum(self, rng):
        d = np.geomspace(1.0, 1e10, 100)
        e = rng.standard_normal(99)
        lam_s, _, lam_b, _ = solve_both(d, e)
        assert np.max(np.abs(lam_s - lam_b) / (1.0 + np.abs(lam_s))) < 1e-13


class TestDegenerateMerges:
    """Tiny secular problems: N = 1 and N = 2 non-deflated survivors."""

    def test_n4_base3_forces_tiny_merges(self, rng):
        # n=4 with base_size=3 splits 2+2: a single merge of size 4.
        d = rng.standard_normal(4)
        e = rng.standard_normal(3)
        assert_oracle_agreement(d, e, base_size=3)

    def test_merge_with_single_survivor(self, rng):
        # Deflation wipes out all but ~one z entry: secular size 1-2.
        d = np.concatenate([np.ones(24), np.full(24, 2.0)])
        e = np.full(47, 1e-16)
        e[23] = 0.3  # one real coupling at the top tear
        lam_s, _, lam_b, U_b = solve_both(d, e)
        assert np.max(np.abs(lam_s - lam_b)) <= 4.0 * _EPS * 3.0
        assert np.linalg.norm(U_b.T @ U_b - np.eye(48)) < 1e-12

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_tiny_problems(self, rng, n):
        d = rng.standard_normal(n)
        e = rng.standard_normal(max(n - 1, 0))
        assert_oracle_agreement(d, e, base_size=3)


class TestLevelOrderExecution:
    def test_stats_expose_tree_shape(self, rng):
        d = rng.standard_normal(200)
        e = rng.standard_normal(199)
        _, _, stats = dc_eigh(d, e, return_stats=True, base_size=10)
        assert stats.leaves >= 2
        assert stats.levels >= 3
        assert stats.merges == stats.leaves - 1
        # Merge sizes are recorded bottom-up: never decreasing level sums.
        assert max(stats.sizes) == 200

    def test_stage_events_emitted_per_substage(self, rng):
        events = []
        ctx = ExecutionContext(hooks=[events.append])
        d = rng.standard_normal(80)
        e = rng.standard_normal(79)
        dc_eigh(d, e, ctx=ctx)
        stages = {ev.stage for ev in events}
        assert {"dc_leaf", "dc_deflate", "dc_secular", "dc_gemm"} <= stages
        assert {"dc_leaf", "dc_deflate", "dc_secular", "dc_gemm"} <= set(
            ctx.stage_times
        )
        # Secular events carry the mode and problem size for attribution.
        sec = [ev for ev in events if ev.stage == "dc_secular" and ev.phase == "end"]
        assert sec and all(ev.meta["mode"] == "batched" for ev in sec)
        assert all(ev.duration_s >= 0.0 for ev in sec)

    def test_eigenvalues_only_matches_vector_path_both_modes(self, rng):
        d = rng.standard_normal(90)
        e = rng.standard_normal(89)
        for mode in ("scalar", "batched"):
            lam_v, _ = dc_eigh(d, e, compute_vectors=True, secular_mode=mode)
            lam_n, U = dc_eigh(d, e, compute_vectors=False, secular_mode=mode)
            assert U is None
            assert np.max(np.abs(lam_v - lam_n)) < 1e-13

    def test_unknown_secular_mode_rejected(self, rng):
        with pytest.raises(ValueError):
            dc_eigh(np.zeros(8), np.zeros(7), secular_mode="turbo")

    def test_workspace_pool_reused_across_merges(self, rng):
        ctx = ExecutionContext()
        d = rng.standard_normal(256)
        e = rng.standard_normal(255)
        dc_eigh(d, e, ctx=ctx)
        first = ctx.workspace.nbytes
        assert first > 0  # batched secular scratch lives in the pool
        dc_eigh(d, e, ctx=ctx)
        assert ctx.workspace.nbytes == first  # steady state: no growth
