#!/usr/bin/env python
"""Golden-snapshot check for the EVD plan layer.

The resolved plans for the four paper presets at n in {64, 512, 2048}
are serialized to ``tests/plan/golden_plans.json``.  CI runs this script
in verify mode: any drift in preset expansion, ``auto_params``, knob
clamping, or cache-token format fails loudly with a diff, so an
accidental planner change cannot silently re-key the serving cache or
re-block every solve.

Usage::

    PYTHONPATH=src python scripts/check_plan_snapshots.py          # verify
    PYTHONPATH=src python scripts/check_plan_snapshots.py --write  # regenerate
"""

from __future__ import annotations

import argparse
import difflib
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.plan import plan_evd  # noqa: E402

GOLDEN = pathlib.Path(__file__).resolve().parents[1] / "tests" / "plan" / "golden_plans.json"
PRESETS = ("proposed", "magma", "cusolver", "plasma")
SIZES = (64, 512, 2048)


def current_snapshots() -> dict:
    return {
        f"{preset}/n={n}": plan_evd(n, preset).to_dict()
        for preset in PRESETS
        for n in SIZES
    }


def render(snapshots: dict) -> str:
    return json.dumps(snapshots, indent=2, sort_keys=True) + "\n"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--write", action="store_true",
                    help="regenerate the golden file instead of verifying")
    args = ap.parse_args(argv)

    text = render(current_snapshots())
    if args.write:
        GOLDEN.write_text(text)
        print(f"wrote {GOLDEN} ({len(PRESETS) * len(SIZES)} plans)")
        return 0
    if not GOLDEN.exists():
        print(f"missing golden file {GOLDEN}; run with --write", file=sys.stderr)
        return 1
    golden = GOLDEN.read_text()
    if golden == text:
        print(f"plan snapshots OK ({len(PRESETS) * len(SIZES)} plans)")
        return 0
    diff = difflib.unified_diff(
        golden.splitlines(keepends=True),
        text.splitlines(keepends=True),
        fromfile="golden_plans.json",
        tofile="current",
    )
    sys.stderr.writelines(diff)
    print(
        "\nplan snapshots drifted — if intentional, regenerate with "
        "`python scripts/check_plan_snapshots.py --write`",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
