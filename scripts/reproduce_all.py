"""Regenerate every paper table/figure and write REPORT.md.

A standalone (no pytest) reproduction driver: runs each figure generator
from ``repro.models.figures``, formats the series next to the paper's
published anchors where available, appends the calibration-sensitivity
verdicts, and writes everything to ``REPORT.md`` at the repo root.

    python scripts/reproduce_all.py [output.md]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.models.figures import figure_registry
from repro.models.sensitivity import conclusions_hold, headline_metrics
from repro.models.syr2k_model import PAPER_TABLE1

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def render_figure(name: str, gen) -> list[str]:
    t0 = time.perf_counter()
    data = gen()
    dt = time.perf_counter() - t0
    lines = [f"## {data.figure}", ""]
    if data.notes:
        lines.append(f"*{data.notes}*  ")
    lines.append(f"*(generated in {dt:.1f} s, simulated device scale)*")
    lines.append("")
    xs = sorted({x for s in data.series for x, _ in s.points})
    header = f"| {data.xlabel} | " + " | ".join(s.name for s in data.series) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(data.series) + 1))
    for x in xs:
        row = [f"{x:g}"]
        for s in data.series:
            match = [y for px, y in s.points if px == x]
            row.append(f"{match[0]:.4g}" if match else "—")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return lines


def render_headlines() -> list[str]:
    m = headline_metrics()
    lines = [
        "## Headline reproduction (H100 model, n = 49152)",
        "",
        "| Quantity | Paper | Reproduced |",
        "|---|---|---|",
        f"| Proposed tridiagonalization rate | 19.6 TFLOPs | {m.tridiag_tflops:.1f} TFLOPs |",
        f"| Speedup vs cuSOLVER | up to 9.3x | {m.speedup_vs_cusolver:.1f}x |",
        f"| Speedup vs MAGMA | up to 5.2x | {m.speedup_vs_magma:.1f}x |",
        f"| Optimized GPU BC vs MAGMA | 12.5x | {m.bc_speedup_optimized:.1f}x |",
        f"| EVD (eigenvalues) vs cuSOLVER | up to 6.1x | {m.evd_novec_speedup:.1f}x |",
        f"| EVD (vectors) vs cuSOLVER | slight edge | {m.evd_vec_speedup:.1f}x |",
        "",
    ]
    return lines


def render_sensitivity() -> list[str]:
    verdicts = conclusions_hold(factor=0.75)
    lines = [
        "## Calibration robustness (every fitted constant perturbed ±25%)",
        "",
        "| Ordinal claim | survives |",
        "|---|---|",
    ]
    for claim, ok in sorted(verdicts.items()):
        lines.append(f"| {claim.replace('_', ' ')} | {'yes' if ok else 'NO'} |")
    lines.append("")
    return lines


def render_autotuning() -> list[str]:
    """Run the measured autotuning benchmark (smoke scale) and summarize.

    Unlike the figures above this is a *measurement* on the machine
    running the script, so it is kept at smoke scale here; the full
    ``benchmarks/bench_tune.py`` run produces the checked-in
    ``BENCH_tune.json`` artifact.
    """
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        import bench_tune
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    payload = bench_tune.run(smoke=True, reps=2, budget=12, write_json=False)
    lines = [
        "## Autotuning: model-tuned vs store-tuned (measured, this machine)",
        "",
        "| n | strategy | model | store-tuned | speedup | within noise guard |",
        "|---|---|---|---|---|---|",
    ]
    for r in payload["cases"]:
        lines.append(
            f"| {r['n']} | {r['strategy']} | {r['model_s'] * 1e3:.1f} ms "
            f"| {r['tuned_s'] * 1e3:.1f} ms | {r['speedup']:.2f}x "
            f"| {'yes' if r['tuned_within_noise_guard'] else 'NO'} |"
        )
    lines.append("")
    return lines


def render_precision() -> list[str]:
    """Run the mixed-precision benchmark (smoke scale) and summarize.

    Measured on this machine; the full ``benchmarks/bench_precision.py``
    run produces the checked-in ``BENCH_precision.json`` artifact with
    the 1.5x tridiag-stage gate at n = 1024.
    """
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        import bench_precision
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    payload = bench_precision.run(smoke=True, write_json=False)
    lines = [
        "## Mixed precision: fp32 pipeline + refinement vs fp64 (measured, this machine)",
        "",
        "| n | fp64 tridiag | mixed tridiag | speedup | mixed residual | sweeps | verify |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in payload["rows"]:
        r64, rmx = row["fp64"], row["mixed"]
        lines.append(
            f"| {r64['n']} | {r64['tridiag_s'] * 1e3:.1f} ms "
            f"| {rmx['tridiag_s'] * 1e3:.1f} ms | {row['tridiag_speedup']:.2f}x "
            f"| {rmx['residual']:.2e} | {rmx['refine_iterations']} "
            f"| {'OK' if rmx['verify_ok'] else 'FAILED'} |"
        )
    lines.append("")
    return lines


def main(out_path: str = "REPORT.md") -> None:
    lines = [
        "# Reproduction report",
        "",
        "Auto-generated by `scripts/reproduce_all.py`.  All numbers below",
        "are **simulated** at device scale by the calibrated model",
        "(see docs/simulator.md); the numerics behind them are verified",
        "separately by the test suite.  Paper anchors: see EXPERIMENTS.md.",
        "",
    ]
    lines += render_headlines()
    for name, gen in figure_registry().items():
        print(f"generating {name} ...")
        lines += render_figure(name, gen)
    lines += render_sensitivity()
    print("running autotuning benchmark (smoke) ...")
    lines += render_autotuning()
    print("running mixed-precision benchmark (smoke) ...")
    lines += render_precision()
    n_cells = sum(len(v) for v in PAPER_TABLE1.values())
    lines.append(f"*Table 1 calibration: {n_cells} published cells, "
                 "all within 35% (test-enforced).*")
    Path(out_path).write_text("\n".join(lines) + "\n")
    print(f"wrote {out_path} ({len(lines)} lines)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "REPORT.md")
