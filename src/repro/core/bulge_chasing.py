"""Bulge chasing: reduce a symmetric band matrix to tridiagonal form.

One *sweep* (paper Figure 3 / Algorithm 2) annihilates the off-tridiagonal
entries of a single column and then chases the resulting bulge down the
band until it falls off the matrix.  Sweep ``i`` consists of *tasks*
``t = 0, 1, 2, ...``:

* ``t = 0`` — a Householder reflector on rows ``[i+1, i+1+b)`` annihilates
  ``A[i+2 : i+1+b, i]``.  Its two-sided application fills a *bulge* below
  the band.
* ``t >= 1`` — the bulge's leading column ``c_t = i + 1 + (t-1) b`` is
  re-annihilated by a reflector on rows ``[c_t + b, c_t + 2b)``.  The
  diagonal block ``B_d`` is updated from both sides, the off-band block
  ``B_ol`` to its left from the left only, and the block below creates the
  next bulge ``b`` rows further down — exactly the three updates of
  Algorithm 2 (lines 11-13).

Tasks of *different* sweeps may interleave as long as sweep ``i+1``'s task
``t`` runs after sweep ``i``'s task ``t+2`` (the ``gCom + 2b`` spin-lock
rule); :mod:`repro.core.bc_pipeline` exploits that.  This module provides
the task geometry (:func:`sweep_tasks`, :func:`task_window`), the numeric
kernel (:func:`apply_bc_task`) shared by the sequential and pipelined
drivers, and the sequential driver (:func:`bulge_chase`).

Every reflector is logged with a global commit sequence number so that the
orthogonal factor ``Q1`` (``B = Q1 T Q1^T``) can be applied afterwards —
the "back transformation in BC" whose cost dominates the eigenvector path
(Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from .householder import make_householder

__all__ = [
    "BCReflector",
    "BCTask",
    "BulgeChasingResult",
    "sweep_tasks",
    "num_tasks_in_sweep",
    "task_window",
    "bc_task_flops",
    "apply_bc_task",
    "bulge_chase",
]


@dataclass(frozen=True)
class BCTask:
    """Geometry of one bulge-chasing task (sweep ``i``, step ``t``).

    ``col`` is the column being annihilated, ``row0``/``row1`` the reflector
    row window ``[row0, row1)``.
    """

    sweep: int
    step: int
    col: int
    row0: int
    row1: int

    @property
    def length(self) -> int:
        return self.row1 - self.row0


@dataclass
class BCReflector:
    """A committed reflector: ``H = I - tau v v^T`` acting on global rows
    ``[offset, offset + len(v))``; ``seq`` is the commit order (a valid
    topological order of the task DAG)."""

    sweep: int
    step: int
    offset: int
    v: np.ndarray
    tau: float
    seq: int


@dataclass
class BulgeChasingResult:
    """Tridiagonal output ``(d, e)`` plus the reflector log.

    The input band matrix ``B`` satisfies ``B = Q1 @ T @ Q1.T`` where
    ``T = tridiag(d, e)`` and ``Q1`` is the ordered product of the logged
    reflectors (``seq`` ascending, leftmost first).
    """

    d: np.ndarray
    e: np.ndarray
    reflectors: list[BCReflector] = field(default_factory=list)
    flops: float = 0.0

    @property
    def n(self) -> int:
        return self.d.size

    def _committed(self) -> list[BCReflector]:
        """The reflector log, verified to already be in ``seq`` order.

        Every driver commits reflectors in ascending ``seq`` order, so the
        back transformation can walk the list directly instead of
        re-sorting the full log on every call.  The monotonicity contract
        is asserted once per result and cached.
        """
        if not getattr(self, "_seq_checked", False):
            seqs = [r.seq for r in self.reflectors]
            if any(b <= a for a, b in zip(seqs, seqs[1:])):
                raise AssertionError(
                    "reflector log is not in commit (seq) order"
                )
            self._seq_checked = True
        return self.reflectors

    def apply_q1(self, X: np.ndarray) -> None:
        """In place ``X <- Q1 X``.

        ``Q1 = H_1 H_2 ... H_K`` (seq order), so reflectors are applied to
        ``X`` in *reverse* commit order.  This is the BC back
        transformation: cost ``O(n^2 * n/b)`` fused small updates, the
        bottleneck the paper leaves as future work.
        """
        for r in reversed(self._committed()):
            sub = X[r.offset : r.offset + r.v.size, :]
            sub -= np.outer(r.tau * r.v, r.v @ sub)

    def apply_q1_transpose(self, X: np.ndarray) -> None:
        """In place ``X <- Q1^T X`` (forward commit order)."""
        for r in self._committed():
            sub = X[r.offset : r.offset + r.v.size, :]
            sub -= np.outer(r.tau * r.v, r.v @ sub)

    def q1(self) -> np.ndarray:
        """Materialize ``Q1`` (tests / small matrices)."""
        Q = np.eye(self.n)
        self.apply_q1(Q)
        return Q

    def tridiagonal(self) -> tuple[np.ndarray, np.ndarray]:
        return self.d, self.e


def num_tasks_in_sweep(n: int, b: int, i: int) -> int:
    """Number of tasks in sweep ``i`` for an ``n x n`` band of width ``b``.

    A task exists whenever its reflector window holds at least 2 rows
    (there is something to annihilate).
    """
    if b < 2 or i > n - 3:
        return 0
    count = 0
    t = 0
    while True:
        c = i if t == 0 else i + 1 + (t - 1) * b
        s = i + 1 if t == 0 else c + b
        if min(s + b, n) - s < 2:
            break
        count += 1
        t += 1
    return count


def sweep_tasks(n: int, b: int, i: int) -> list[BCTask]:
    """All tasks of sweep ``i``, in chase order."""
    tasks: list[BCTask] = []
    t = 0
    while True:
        c = i if t == 0 else i + 1 + (t - 1) * b
        s = i + 1 if t == 0 else c + b
        e = min(s + b, n)
        if e - s < 2:
            break
        tasks.append(BCTask(sweep=i, step=t, col=c, row0=s, row1=e))
        t += 1
    return tasks


def task_window(task: BCTask, n: int, b: int) -> tuple[int, int]:
    """Inclusive-exclusive index range of every entry the task touches.

    Rows/columns ``[col, min(row1 + b, n))`` — used by the pipeline
    scheduler and the cache model to reason about overlap and footprint.
    """
    return task.col, min(task.row1 + b, n)


def bc_task_flops(task: BCTask, n: int, b: int) -> float:
    """Flop count charged for one chase task: ``8 * len * window``.

    One reflector generation plus the two-sided rank-1 update over the
    task's ``window = hi - lo`` columns (see :func:`task_window`).  All
    drivers — sequential, band-resident, per-task pipelined, and
    wavefront-batched — charge exactly this amount, so their reported
    ``flops`` are comparable (and asserted identical by the tests).
    """
    lo, hi = task_window(task, n, b)
    return 8.0 * task.length * (hi - lo)


def apply_bc_task(A: np.ndarray, b: int, task: BCTask) -> tuple[int, np.ndarray, float]:
    """Execute one bulge-chasing task on the dense symmetric array ``A``.

    Annihilates ``A[row0+1 : row1, col]`` and applies the reflector
    two-sidedly to the window, updating the diagonal block from both sides,
    the left off-band (bulge remnant) block from the left, and creating the
    next bulge below.  Returns ``(offset, v, tau)``.
    """
    n = A.shape[0]
    c, s, e = task.col, task.row0, task.row1
    x = A[s:e, c]
    v, tau, beta = make_householder(x)
    A[s:e, c] = 0.0
    A[s, c] = beta
    A[c, s:e] = 0.0
    A[c, s] = beta

    if tau != 0.0:
        ce = min(e + b, n)
        # Left update of rows [s, e) over every column they own to the
        # right of c (bulge remnant B_ol + diagonal block + band cols).
        blk = A[s:e, c + 1 : ce]
        blk -= np.outer(tau * v, v @ blk)
        # Right update (symmetric image) — together with the left update the
        # diagonal square receives the full two-sided H B H, while B_od
        # below gets the bulge-creating one-sided update.
        blk2 = A[c + 1 : ce, s:e]
        blk2 -= np.outer(blk2 @ v, tau * v)
    return s, v, float(tau)


def bulge_chase(
    band: np.ndarray, b: int, ctx: ExecutionContext | None = None
) -> BulgeChasingResult:
    """Sequential bulge chasing of a dense symmetric band matrix.

    Parameters
    ----------
    band : (n, n) ndarray
        Symmetric matrix with (half-)bandwidth ``b`` (entries outside the
        band must be zero; use :func:`repro.band.ops.is_banded` to check).
        Not modified.
    b : int
        The bandwidth.  ``b == 1`` returns immediately (already
        tridiagonal).
    ctx : ExecutionContext, optional
        Accepted for pipeline uniformity.  This driver is the **host
        oracle**: a scalar task-at-a-time loop with no batched work to
        dispatch, so a device operand is staged to the host and the chase
        runs in NumPy (the wavefront driver is the backend-resident one).

    Returns
    -------
    BulgeChasingResult
        ``band == Q1 @ tridiag(d, e) @ Q1.T``.
    """
    ctx = resolve_context(ctx)
    if not ctx.is_numpy and ctx.backend.owns(band):
        band = ctx.to_numpy(band)
    band = np.asarray(band)
    dt = band.dtype if band.dtype in (np.float32, np.float64) else np.float64
    A = np.array(band, dtype=dt, copy=True)
    n = A.shape[0]
    if b < 1:
        raise ValueError("bandwidth must be >= 1")
    reflectors: list[BCReflector] = []
    flops = 0.0
    seq = 0
    if b >= 2:
        for i in range(n - 2):
            for task in sweep_tasks(n, b, i):
                off, v, tau = apply_bc_task(A, b, task)
                reflectors.append(
                    BCReflector(
                        sweep=i, step=task.step, offset=off, v=v, tau=tau, seq=seq
                    )
                )
                flops += bc_task_flops(task, n, b)
                seq += 1
    d = np.diagonal(A).copy()
    e = np.diagonal(A, -1).copy()
    return BulgeChasingResult(d=d, e=e, reflectors=reflectors, flops=flops)
