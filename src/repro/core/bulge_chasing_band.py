"""Bulge chasing directly on band storage — ``O(n b)`` memory.

The dense driver in :mod:`repro.core.bulge_chasing` is the correctness
reference, but a real implementation never materializes the ``n x n``
matrix: during a chase the working matrix stays within bandwidth ``2b``
(band + transient bulge), so a ``(2b+1) x n`` lower-band array suffices —
this is the working set the paper parks in the H100's L2 via the packed
layout (Figure 10).

This module provides that band-resident driver.  Each task gathers its
``<= 3b``-wide symmetric window from band storage into a small dense
scratch block, runs the *same* kernel as the dense driver, and scatters
the result back — so the two drivers are identical in exact arithmetic
(asserted by the tests), while this one runs in ``O(n b)`` memory and
``O(b^2)`` work per task.
"""

from __future__ import annotations

import numpy as np

from ..band.storage import LowerBandStorage, PackedBandStorage
from .bulge_chasing import (
    BCReflector,
    BCTask,
    BulgeChasingResult,
    apply_bc_task,
    bc_task_flops,
    sweep_tasks,
    task_window,
)

__all__ = [
    "WorkingBand",
    "bulge_chase_band",
]


class WorkingBand:
    """A ``(2b+1) x n`` lower-band scratch matrix holding band + bulge.

    Entry ``A[i, j]`` (``0 <= i - j <= 2b``) lives at ``data[i - j, j]``.
    The doubled bandwidth is exactly the transient fill bulge chasing
    creates (fill never reaches deeper than ``2b``; see the test
    ``test_one_sweep_restores_band_beyond_column``).
    """

    def __init__(self, band: LowerBandStorage):
        self.n = band.n
        self.b = band.b
        self.depth = 2 * band.b  # max sub-diagonal index with fill
        self.data = np.zeros((self.depth + 1, self.n), dtype=band.ab.dtype)
        self.data[: band.b + 1] = band.ab

    def window_to_dense(self, lo: int, hi: int) -> np.ndarray:
        """Materialize the symmetric window ``A[lo:hi, lo:hi]`` densely."""
        w = hi - lo
        D = np.zeros((w, w), dtype=self.data.dtype)
        for ddiag in range(min(self.depth, w - 1) + 1):
            cols = np.arange(lo, hi - ddiag)
            vals = self.data[ddiag, cols]
            idx = cols - lo
            D[idx + ddiag, idx] = vals
            if ddiag > 0:
                D[idx, idx + ddiag] = vals
        return D

    def dense_to_window(self, D: np.ndarray, lo: int, hi: int) -> None:
        """Scatter a dense symmetric window back into band storage."""
        w = hi - lo
        for ddiag in range(min(self.depth, w - 1) + 1):
            idx = np.arange(w - ddiag)
            self.data[ddiag, lo : hi - ddiag] = D[idx + ddiag, idx]

    def tridiagonal(self) -> tuple[np.ndarray, np.ndarray]:
        return self.data[0].copy(), self.data[1, : self.n - 1].copy()

    def max_fill_depth(self, tol: float = 0.0) -> int:
        """Deepest sub-diagonal with an entry above ``tol`` in magnitude
        (diagnostic: must never exceed ``2b`` during a chase)."""
        for ddiag in range(self.depth, 0, -1):
            if np.max(np.abs(self.data[ddiag, : self.n - ddiag]), initial=0.0) > tol:
                return ddiag
        return 0


def _coerce_band(band, b: int | None) -> LowerBandStorage:
    if isinstance(band, LowerBandStorage):
        return band
    if isinstance(band, PackedBandStorage):
        return band.to_lower_band()
    A = np.asarray(band)
    if A.dtype not in (np.float32, np.float64):
        A = A.astype(np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("band must be LowerBandStorage, PackedBandStorage, "
                         "or a square dense array")
    if b is None:
        raise ValueError("bandwidth required for dense input")
    return LowerBandStorage.from_dense(A, b)


def bulge_chase_band(band, b: int | None = None) -> BulgeChasingResult:
    """Bulge chasing in band storage (sequential sweep order).

    Parameters
    ----------
    band : LowerBandStorage | PackedBandStorage | (n, n) ndarray
        The symmetric band matrix (dense input requires ``b``).
    b : int, optional
        Bandwidth (taken from the storage object when given).

    Returns
    -------
    BulgeChasingResult
        Identical (bit-for-bit, up to task-local roundoff) to the dense
        :func:`repro.core.bulge_chasing.bulge_chase`.
    """
    lb = _coerce_band(band, b)
    bw = lb.b
    n = lb.n
    if bw < 1:
        raise ValueError("bandwidth must be >= 1")
    work = WorkingBand(lb)
    reflectors: list[BCReflector] = []
    flops = 0.0
    seq = 0
    if bw >= 2:
        for i in range(n - 2):
            for task in sweep_tasks(n, bw, i):
                lo, hi = task_window(task, n, bw)
                D = work.window_to_dense(lo, hi)
                local = BCTask(
                    sweep=task.sweep,
                    step=task.step,
                    col=task.col - lo,
                    row0=task.row0 - lo,
                    row1=task.row1 - lo,
                )
                off, v, tau = apply_bc_task(D, bw, local)
                work.dense_to_window(D, lo, hi)
                reflectors.append(
                    BCReflector(
                        sweep=i,
                        step=task.step,
                        offset=off + lo,
                        v=v,
                        tau=tau,
                        seq=seq,
                    )
                )
                flops += bc_task_flops(task, n, bw)
                seq += 1
    d, e = work.tridiagonal()
    return BulgeChasingResult(d=d, e=e, reflectors=reflectors, flops=flops)
