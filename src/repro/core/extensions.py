"""Problem-class extensions on top of the symmetric pipeline.

Two eigenproblem classes adjacent to the paper's scope, both reduced to
the real-symmetric pipeline this repository implements:

* **Hermitian** (:func:`eigh_hermitian`): cuSOLVER/ELPA expose ``zheevd``;
  we reduce a complex Hermitian ``A = X + iY`` to the real symmetric
  embedding ``[[X, -Y], [Y, X]]`` whose spectrum is that of ``A`` with
  every eigenvalue doubled, and whose eigenvectors encode the complex
  ones as ``[Re(v); Im(v)]`` (with ``[-Im(v); Re(v)]`` spanning the same
  pair).  One real ``2n`` solve per complex ``n`` problem — 4x the flops
  of a native complex pipeline, but exactly the machinery the paper
  accelerates.
* **Generalized symmetric-definite** (:func:`eigh_generalized`):
  ``A x = lambda B x`` with SPD ``B`` (the Ltaief et al. problem the
  paper's related work cites), reduced via our own Cholesky
  ``B = L L^T`` to the standard problem ``(L^{-1} A L^{-T}) y = lambda y``
  and back-substituted ``x = L^{-T} y`` (B-orthonormal eigenvectors).

Both return :class:`~repro.core.evd.EVDResult`-compatible output and run
every flop through the reproduced pipeline.
"""

from __future__ import annotations

import numpy as np

from .evd import EVDResult, eigh

__all__ = [
    "eigh_hermitian",
    "eigh_generalized",
    "cholesky_lower",
    "solve_triangular_lower",
]


def eigh_hermitian(
    A: np.ndarray,
    compute_vectors: bool = True,
    **eigh_kwargs,
):
    """Eigendecomposition of a complex Hermitian matrix.

    Parameters
    ----------
    A : (n, n) complex ndarray
        Hermitian input (``A == A^H`` to roundoff).
    compute_vectors : bool
        Return complex eigenvectors.
    **eigh_kwargs
        Forwarded to :func:`repro.core.evd.eigh` (method, bandwidth, ...).

    Returns
    -------
    (lam, V)
        Real ascending eigenvalues (length ``n``) and, optionally, a
        complex unitary eigenvector matrix.
    """
    A = np.asarray(A, dtype=np.complex128)
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError("A must be square")
    herm_err = np.linalg.norm(A - A.conj().T)
    if herm_err > 1e-8 * max(np.linalg.norm(A), 1e-300):
        raise ValueError(f"input is not Hermitian (||A - A^H|| = {herm_err:.2e})")
    A = (A + A.conj().T) / 2.0
    X, Y = A.real, A.imag
    # Real symmetric embedding: spectrum of A, each eigenvalue twice.
    M = np.block([[X, -Y], [Y, X]])
    res = eigh(M, compute_vectors=compute_vectors, **eigh_kwargs)
    lam_all = res.eigenvalues
    # Ascending pairs (lam_0, lam_0, lam_1, lam_1, ...): take one of each.
    lam = lam_all[0::2].copy()
    if not compute_vectors:
        return lam, None
    W = res.eigenvectors
    V = np.zeros((n, n), dtype=np.complex128)
    # Any real embedding eigenvector w maps to a complex eigenvector
    # v = w[:n] + i w[n:], but within a degenerate eigenvalue the pair
    # vectors can alias (map onto the same complex direction).  Process
    # eigenvalues cluster by cluster: collect every candidate from the
    # cluster's real eigenspace and keep an orthonormal complex basis via
    # rank-revealing modified Gram-Schmidt.
    scale = max(float(np.max(np.abs(lam))), 1.0)
    j = 0
    while j < n:
        j_end = j + 1
        while j_end < n and lam[j_end] - lam[j_end - 1] <= 1e-9 * scale:
            j_end += 1
        m = j_end - j
        cand = W[:, 2 * j : 2 * j_end]  # 2m real vectors
        complex_cand = cand[:n] + 1j * cand[n:]
        basis: list[np.ndarray] = []
        for c in range(complex_cand.shape[1]):
            v = complex_cand[:, c].copy()
            for u in basis:
                v -= (u.conj() @ v) * u
            nv = np.linalg.norm(v)
            if nv > 1e-6:
                basis.append(v / nv)
            if len(basis) == m:
                break
        if len(basis) < m:  # pragma: no cover - candidates always span
            raise np.linalg.LinAlgError(
                "failed to extract a complex eigenbasis from the embedding"
            )
        for t, v in enumerate(basis):
            V[:, j + t] = v
        j = j_end
    return lam, V


def cholesky_lower(B: np.ndarray) -> np.ndarray:
    """Cholesky factor ``L`` with ``B = L L^T`` (blocked, right-looking).

    Raises ``LinAlgError`` if ``B`` is not positive definite.
    """
    B = np.array(B, dtype=np.float64, copy=True)
    n = B.shape[0]
    if B.shape != (n, n):
        raise ValueError("B must be square")
    nb = 32
    for j0 in range(0, n, nb):
        j1 = min(j0 + nb, n)
        # Unblocked factorization of the diagonal block; rows carry their
        # already-computed L prefix (columns < j), which must be subtracted
        # in full — not just the within-panel part.
        for j in range(j0, j1):
            d = B[j, j] - B[j, :j] @ B[j, :j]
            if d <= 0.0 or not np.isfinite(d):
                raise np.linalg.LinAlgError(
                    f"matrix is not positive definite (pivot {j})"
                )
            B[j, j] = np.sqrt(d)
            if j + 1 < j1:
                B[j + 1 : j1, j] = (
                    B[j + 1 : j1, j] - B[j + 1 : j1, :j] @ B[j, :j]
                ) / B[j, j]
        # Panel solve: L21 = B21 * L11^{-T}.
        if j1 < n:
            B21 = B[j1:, j0:j1] - B[j1:, :j0] @ B[j0:j1, :j0].T
            L11 = B[j0:j1, j0:j1]
            # Solve X L11^T = B21 column-by-column (forward in k).
            for k in range(j1 - j0):
                B21[:, k] = (
                    B21[:, k] - B21[:, :k] @ L11[k, :k]
                ) / L11[k, k]
            B[j1:, j0:j1] = B21
    return np.tril(B)


def solve_triangular_lower(
    L: np.ndarray, rhs: np.ndarray, transpose: bool = False
) -> np.ndarray:
    """Solve ``L x = rhs`` (or ``L^T x = rhs``) for lower-triangular ``L``."""
    L = np.asarray(L, dtype=np.float64)
    x = np.array(rhs, dtype=np.float64, copy=True)
    n = L.shape[0]
    if transpose:
        for i in range(n - 1, -1, -1):
            if i + 1 < n:
                x[i] -= L[i + 1 :, i] @ x[i + 1 :]
            x[i] /= L[i, i]
    else:
        for i in range(n):
            if i > 0:
                x[i] -= L[i, :i] @ x[:i]
            x[i] /= L[i, i]
    return x


def eigh_generalized(
    A: np.ndarray,
    B: np.ndarray,
    compute_vectors: bool = True,
    **eigh_kwargs,
):
    """Generalized symmetric-definite eigenproblem ``A x = lambda B x``.

    ``B`` must be symmetric positive definite.  Reduction: ``B = L L^T``,
    ``C = L^{-1} A L^{-T}`` (standard symmetric problem), eigenvectors
    back-substituted as ``x = L^{-T} y`` — giving ``X^T B X = I``.

    Returns ``(lam, X)`` with ascending ``lam``; ``X`` is None without
    vectors.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n):
        raise ValueError("A and B must be square and equally sized")
    L = cholesky_lower((B + B.T) / 2.0)
    # C = L^{-1} A L^{-T}: two triangular solves on block columns.
    C = solve_triangular_lower(L, (A + A.T) / 2.0)  # L^{-1} A
    C = solve_triangular_lower(L, C.T).T  # (L^{-1} (L^{-1} A)^T)^T = L^{-1} A L^{-T}
    C = (C + C.T) / 2.0
    res: EVDResult = eigh(C, compute_vectors=compute_vectors, **eigh_kwargs)
    if not compute_vectors:
        return res.eigenvalues, None
    X = solve_triangular_lower(L, res.eigenvectors, transpose=True)
    return res.eigenvalues, X
