"""Tile-algorithm band reduction — the PLASMA lineage baseline.

Before MAGMA's panel-based ``sy2sb``, two-stage tridiagonalization was
pioneered with *tile algorithms* on multicore CPUs (Luszczek/Ltaief/
Dongarra 2011; the PLASMA library — the paper's references [7], [16],
[17]).  The matrix is partitioned into ``b x b`` tiles; band reduction
proceeds one tile column at a time:

* **GEQRT** — QR-factorize the first subdiagonal tile ``A[k+1][k]``
  (leaving an in-band upper-triangular tile), and apply the factor
  two-sidedly to tile row/column ``k+1``;
* **TSQRT** — for each lower tile ``A[i][k]``, QR the stacked pair
  ``[R; A[i][k]]`` (triangle-on-top-of-square), annihilating the tile,
  and apply the pair factor two-sidedly to tile rows/columns
  ``{k+1, i}`` (the TSMQR updates).

Every factor acts on an explicit (possibly non-contiguous) row set, so
the similarity transform is recorded as a list of
:class:`TileReflector`\\ s rather than offset-embedded WY blocks.  The
result satisfies the same contract as SBR/DBBR — ``A = Q B Q^T`` with
bandwidth ``b`` — and the tests pin spectrum, orthogonality and band
structure against the panel-based reductions.

The tile decomposition's selling point (and why PLASMA used it) is the
task graph: each kernel touches at most two tile rows, giving abundant
independent tasks for dynamic multicore scheduling.  :func:`tile_task_dag`
exposes that graph for the scheduling-oriented tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from .householder import WYAccumulator, make_householder

__all__ = ["TileReflector", "TileBandReductionResult", "tile_sbr", "tile_task_dag"]


@dataclass
class TileReflector:
    """Orthogonal factor ``Q = I - W Y^T`` acting on explicit ``rows``."""

    rows: np.ndarray
    W: np.ndarray
    Y: np.ndarray
    kind: str  # "geqrt" | "tsqrt"

    def apply_left(self, X: np.ndarray) -> None:
        """``X[rows] <- (I - W Y^T) X[rows]``."""
        sub = X[self.rows, :]
        sub -= self.W @ (self.Y.T @ sub)
        X[self.rows, :] = sub

    def apply_left_transpose(self, X: np.ndarray) -> None:
        sub = X[self.rows, :]
        sub -= self.Y @ (self.W.T @ sub)
        X[self.rows, :] = sub


@dataclass
class TileBandReductionResult:
    """``A = Q @ band @ Q^T`` with ``Q`` the ordered tile-factor product."""

    band: np.ndarray
    bandwidth: int
    reflectors: list[TileReflector] = field(default_factory=list)

    @property
    def n(self) -> int:
        return self.band.shape[0]

    def q(self) -> np.ndarray:
        Q = np.eye(self.n)
        for refl in reversed(self.reflectors):
            refl.apply_left(Q)
        return Q

    def reconstruct(self) -> np.ndarray:
        Q = self.q()
        return Q @ self.band @ Q.T


def _qr_wy(P: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """WY-form Householder QR of an arbitrary-shape block.

    Factorizes ``min(m-?, w)`` columns (every column whose below-diagonal
    part exists), returning ``(W, Y, R_block)`` with ``R_block`` the
    transformed block (upper trapezoidal).
    """
    P = np.asarray(P)
    dt = P.dtype if P.dtype in (np.float32, np.float64) else np.float64
    A = np.array(P, dtype=dt, copy=True)
    m, w = A.shape
    acc = WYAccumulator(m, dtype=dt)
    for j in range(min(m - 1, w)):
        v, tau, beta = make_householder(A[j:, j])
        A[j, j] = beta
        A[j + 1 :, j] = 0.0
        if tau != 0.0 and j + 1 < w:
            C = A[j:, j + 1 :]
            C -= np.outer(tau * v, v @ C)
        vg = np.zeros(m, dtype=dt)
        vg[j:] = v
        acc.append(vg, tau)
    return acc.W.copy(), acc.Y.copy(), A


def _apply_two_sided(A: np.ndarray, rows: np.ndarray, W: np.ndarray, Y: np.ndarray) -> None:
    """Symmetric two-sided update ``A <- Q^T A Q`` for ``Q = I - W Y^T``
    acting on the (possibly non-contiguous) index set ``rows``."""
    # Left: A[rows, :] <- (I - Y W^T) A[rows, :].
    sub = A[rows, :]
    sub -= Y @ (W.T @ sub)
    A[rows, :] = sub
    # Right: A[:, rows] <- A[:, rows] (I - W Y^T).
    sub = A[:, rows]
    sub -= (sub @ W) @ Y.T
    A[:, rows] = sub


def _tile_bounds(n: int, b: int) -> list[tuple[int, int]]:
    return [(t, min(t + b, n)) for t in range(0, n, b)]


def tile_sbr(
    A: np.ndarray, b: int, ctx: ExecutionContext | None = None
) -> TileBandReductionResult:
    """Reduce symmetric ``A`` to bandwidth ``b`` with tile kernels.

    Parameters
    ----------
    A : (n, n) ndarray
        Symmetric input (not modified).
    b : int
        Tile size = resulting bandwidth.
    ctx : ExecutionContext, optional
        Execution context; the two-sided TSMQR-style GEMM updates run on
        its backend, the tile QR factorizations stay on the host.
    """
    ctx = resolve_context(ctx)
    xp = ctx.xp
    A = xp.array(ctx.asarray(A), copy=True)
    n = A.shape[0]
    if tuple(A.shape) != (n, n):
        raise ValueError("A must be square")
    if b < 1:
        raise ValueError("tile size must be >= 1")
    tiles = _tile_bounds(n, b)
    nt = len(tiles)
    reflectors: list[TileReflector] = []

    for k in range(nt - 1):
        c0, c1 = tiles[k]
        r0, r1 = tiles[k + 1]
        # GEQRT: QR of the first subdiagonal tile (host-side).
        W, Y, R = _qr_wy(ctx.to_numpy(A[r0:r1, c0:c1]))
        if W.shape[1] > 0:
            rows = np.arange(r0, r1)
            A[r0:r1, c0:c1] = ctx.from_numpy(R)
            A[c0:c1, r0:r1] = A[r0:r1, c0:c1].T
            # Two-sided on the trailing rows/cols (everything >= r0 except
            # the already-written panel columns).
            _apply_two_sided_trailing(
                A, rows, ctx.from_numpy(W), ctx.from_numpy(Y), r0, xp
            )
            reflectors.append(TileReflector(rows=rows, W=W, Y=Y, kind="geqrt"))
        # TSQRT: annihilate each lower tile against the triangle.
        for i in range(k + 2, nt):
            s0, s1 = tiles[i]
            top = ctx.to_numpy(A[r0:r1, c0:c1])
            bot = ctx.to_numpy(A[s0:s1, c0:c1])
            stacked = np.vstack([top, bot])
            W, Y, R = _qr_wy(stacked)
            if W.shape[1] == 0:
                continue
            rows = np.concatenate([np.arange(r0, r1), np.arange(s0, s1)])
            A[r0:r1, c0:c1] = ctx.from_numpy(R[: r1 - r0])
            A[s0:s1, c0:c1] = 0.0
            A[c0:c1, r0:r1] = A[r0:r1, c0:c1].T
            A[c0:c1, s0:s1] = 0.0
            _apply_two_sided_trailing(
                A, rows, ctx.from_numpy(W), ctx.from_numpy(Y), r0, xp
            )
            reflectors.append(TileReflector(rows=rows, W=W, Y=Y, kind="tsqrt"))

    _zero_off_band(A, b, xp)
    return TileBandReductionResult(
        band=ctx.to_numpy(A), bandwidth=b, reflectors=reflectors
    )


def _apply_two_sided_trailing(
    A: np.ndarray, rows: np.ndarray, W: np.ndarray, Y: np.ndarray, t0: int, xp=np
) -> None:
    """Two-sided update restricted to the trailing region ``[t0:, t0:]``.

    The panel columns (< t0) were just overwritten with their final
    ``[R; 0]`` values, so only the trailing block may move; restricting
    the update also keeps earlier (finalized) columns untouched.
    """
    sub = A[xp.ix_(rows, np.arange(t0, A.shape[0]))]
    sub -= Y @ (W.T @ sub)
    A[xp.ix_(rows, np.arange(t0, A.shape[0]))] = sub
    sub = A[xp.ix_(np.arange(t0, A.shape[0]), rows)]
    sub -= (sub @ W) @ Y.T
    A[xp.ix_(np.arange(t0, A.shape[0]), rows)] = sub


def _zero_off_band(A, b: int, xp=np) -> None:
    n = A.shape[0]
    i = xp.arange(n)
    A[xp.abs(i[:, None] - i[None, :]) > b] = 0.0


def tile_task_dag(n: int, b: int) -> list[tuple[str, int, int]]:
    """The tile task list in execution order: ``(kind, k, i)`` tuples.

    ``("geqrt", k, k+1)`` then ``("tsqrt", k, i)`` for ``i > k+1`` — the
    graph PLASMA's dynamic scheduler mines for parallelism (tasks of
    different ``k`` overlap once their tile rows are disjoint).
    """
    nt = len(_tile_bounds(n, b))
    out: list[tuple[str, int, int]] = []
    for k in range(nt - 1):
        out.append(("geqrt", k, k + 1))
        for i in range(k + 2, nt):
            out.append(("tsqrt", k, i))
    return out
