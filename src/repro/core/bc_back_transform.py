"""Blocked bulge-chasing back transformation — the paper's future work.

Section 6.2/8: applying the bulge-chasing reflectors to the eigenvector
matrix ("the back transformation in BC") dominates the eigenvector path
(61% of the proposed EVD) and is left as future work.  The inefficiency is
structural: ``~n^2/(2b)`` rank-1 updates of length ``b``, each touching
``n`` columns — pure BLAS2.

This module implements the natural fix: **WY-block the reflectors**.
Within one sweep, consecutive chase reflectors act on *disjoint* row
windows (task ``t`` covers rows ``[c_t + b, c_t + 2b)`` and task ``t+1``
starts exactly ``b`` rows later), so any run of ``g`` consecutive same-
sweep reflectors accumulates into a single WY block spanning ``g*b`` rows
— and the application becomes a pair of width-``g`` GEMMs.  Because the
grouped reflectors are consecutive in the global application order, the
grouping is *exactly* order-preserving: the result is bit-compatible with
the scalar loop (asserted by the tests).

``blocked_q1_blocks`` builds the block list once; ``apply_q1_blocked``
replays it (forward = ``Q1^T``, reverse = ``Q1``).  The companion model
``blocked_bc_back_time`` prices the scheme at device scale for the
future-work benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.device import DeviceSpec
from ..gpusim.roofline import sustained_gemm_tflops
from .bulge_chasing import BCReflector, BulgeChasingResult
from .householder import WYAccumulator

__all__ = [
    "BCWyBlock",
    "blocked_q1_blocks",
    "apply_q1_blocked",
    "blocked_bc_back_time",
]


@dataclass
class BCWyBlock:
    """One WY-accumulated run of consecutive same-sweep reflectors.

    ``Q_blk = I - W Y^T`` acting on global rows ``[offset, offset + rows)``.
    """

    W: np.ndarray
    Y: np.ndarray
    offset: int

    @property
    def width(self) -> int:
        return self.W.shape[1]

    @property
    def rows(self) -> int:
        return self.W.shape[0]


def _runs(reflectors: list[BCReflector], group: int):
    """Split the reflector log into runs of up to ``group`` consecutive
    same-sweep chase steps.

    The log is first re-sorted into sweep-major (sequential) order.  That
    is a valid re-ordering even for logs recorded by the *pipelined*
    chase: both are topological orders of the same task DAG, and any two
    such orders differ only by swaps of data-disjoint — hence commuting —
    reflectors, so the operator product is unchanged.
    """
    run: list[BCReflector] = []
    for r in sorted(reflectors, key=lambda r: (r.sweep, r.step)):
        if (
            run
            and (
                r.sweep != run[-1].sweep
                or r.step != run[-1].step + 1
                or len(run) >= group
            )
        ):
            yield run
            run = []
        run.append(r)
    if run:
        yield run


def blocked_q1_blocks(
    bc: BulgeChasingResult, group: int = 8
) -> list[BCWyBlock]:
    """Accumulate the reflector log into WY blocks of width <= ``group``.

    The blocks, applied in list order, reproduce ``Q1^T``; applied in
    reverse order they reproduce ``Q1``.
    """
    if group < 1:
        raise ValueError("group must be >= 1")
    blocks: list[BCWyBlock] = []
    for run in _runs(bc.reflectors, group):
        lo = min(r.offset for r in run)
        hi = max(r.offset + r.v.size for r in run)
        acc = WYAccumulator(hi - lo, capacity=len(run))
        for r in run:
            v = np.zeros(hi - lo, dtype=np.float64)
            v[r.offset - lo : r.offset - lo + r.v.size] = r.v
            acc.append(v, r.tau)
        blocks.append(BCWyBlock(W=acc.W.copy(), Y=acc.Y.copy(), offset=lo))
    return blocks


def apply_q1_blocked(
    blocks: list[BCWyBlock], X: np.ndarray, transpose: bool = False
) -> None:
    """In place ``X <- Q1 X`` (or ``Q1^T X``) through the WY blocks.

    Each block is two GEMMs of inner width ``group`` instead of ``group``
    rank-1 updates — the BLAS3 conversion the paper's future work asks for.
    """
    ordered = blocks if transpose else reversed(blocks)
    for blk in ordered:
        sub = X[blk.offset : blk.offset + blk.rows, :]
        if transpose:
            sub -= blk.Y @ (blk.W.T @ sub)
        else:
            sub -= blk.W @ (blk.Y.T @ sub)


def blocked_bc_back_time(
    device: DeviceSpec,
    n: int,
    b: int,
    group: int = 8,
    ncols: int | None = None,
) -> float:
    """Device-scale cost of the blocked BC back transformation.

    Same ``~2 n^2 ncols`` useful flops as the scalar scheme (plus the
    small WY-accumulation overhead), but executed as inner-dimension
    ``group`` GEMMs over ``(group*b + b)``-row windows — rated by the
    sustained-GEMM curve instead of the rank-1 (k = 1 .. b) rate.
    """
    m_cols = ncols if ncols is not None else n
    width = group
    rows = group * b + b
    rate = sustained_gemm_tflops(device, rows, m_cols, width) * 1e12
    useful = 2.0 * float(n) ** 2 * m_cols
    # WY accumulation: ~2 rows * width^2 per block, n^2/(2 b group) blocks.
    accum = 2.0 * rows * width * width * (float(n) ** 2 / (2.0 * b * max(group, 1)))
    accum_rate = sustained_gemm_tflops(device, rows, width, width) * 1e12
    return useful / rate + accum / max(accum_rate, 1.0)
