"""Symmetric rank-2k update (``syr2k``) with the paper's blocking schedules.

The trailing-matrix update of band reduction is ``C <- C - Z Y^T - Y Z^T``
(Equation 1), i.e. a ``syr2k`` with ``alpha = -1``.  Section 5.1 of the paper
shows that cuBLAS's rectangular row-panel blocking produces skinny GEMMs that
underutilize H100-class GPUs, and proposes a *square-block* schedule
(Figure 7): the diagonal blocks first, then the lower triangle decomposed
into independent square tiles, which yields squarer (higher-rate) GEMMs and
a fully independent task list that can be reordered to hide latency.

This module implements, **numerically**, three equivalent schedules:

* :func:`syr2k_reference` — the textbook two-GEMM formula (oracle);
* :func:`syr2k_rect_blocked` — cuBLAS-style row-panel blocking;
* :func:`syr2k_square_blocked` — the paper's Figure-7 schedule, driven by
  the same task list that :func:`square_schedule` hands to the GPU
  simulator (`repro.gpusim`) for device-scale timing.

All variants update only the lower triangle (the upper triangle is mirrored
on request) and are tested to agree to machine precision.

Every kernel here is expressed in terms of the execution context's ``xp``
namespace, so the blocked schedules run unchanged on any
:mod:`repro.backend` array backend (the operands must already live on
that backend; the schedules themselves are host-side metadata).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.context import ExecutionContext, resolve_context

__all__ = [
    "Syr2kTask",
    "syr2k_reference",
    "syr2k_rect_blocked",
    "syr2k_square_blocked",
    "square_schedule",
    "rect_schedule",
    "symmetrize_lower",
]


@dataclass(frozen=True)
class Syr2kTask:
    """One independent tile update ``C[r0:r1, c0:c1] += alpha*(A_r B_c^T + B_r A_c^T)``.

    ``diagonal`` marks tiles that sit on the block diagonal (only their lower
    triangle is meaningful).  ``level`` is the schedule wave the tile belongs
    to (0 = diagonal pass, then growing square tiles), which the simulator
    uses to reason about reordering/latency hiding.
    """

    r0: int
    r1: int
    c0: int
    c1: int
    diagonal: bool
    level: int

    @property
    def m(self) -> int:
        return self.r1 - self.r0

    @property
    def n(self) -> int:
        return self.c1 - self.c0


def symmetrize_lower(C: np.ndarray, xp=np) -> None:
    """Mirror the (strict) lower triangle of ``C`` onto the upper, in place."""
    n = C.shape[0]
    il = xp.tril_indices(n, -1)
    C[(il[1], il[0])] = C[il]


def syr2k_reference(
    C: np.ndarray,
    A: np.ndarray,
    B: np.ndarray,
    alpha: float = -1.0,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """Dense oracle: ``C + alpha * (A B^T + B A^T)`` (returns a new array).

    Built entirely from operators, so it is backend-generic by
    construction: the output lives wherever the operands do.  ``ctx`` is
    accepted for call-site uniformity with the blocked variants.
    """
    del ctx  # operator-only kernel; nothing to dispatch
    P = A @ B.T
    return C + alpha * (P + P.T)


def rect_schedule(n: int, block: int) -> list[Syr2kTask]:
    """cuBLAS-style schedule: one wide row panel per block row.

    Block row ``i`` updates ``C[i*nb:(i+1)*nb, 0:(i+1)*nb]`` — an
    ``nb x (i+1)nb`` tile whose aspect ratio degrades as ``i`` grows.  This
    is the shape responsible for the skinny-GEMM inefficiency analyzed in
    Section 5.1.
    """
    tasks: list[Syr2kTask] = []
    nblk = (n + block - 1) // block
    for i in range(nblk):
        r0, r1 = i * block, min((i + 1) * block, n)
        tasks.append(Syr2kTask(r0, r1, 0, r1, diagonal=True, level=i))
    return tasks


def _square_tiles(lo: int, hi: int, block: int, level: int, out: list[Syr2kTask]) -> None:
    """Recursively decompose the strict lower triangle of ``[lo, hi)`` into
    independent square tiles (triangle = 2 half triangles + 1 square)."""
    size = hi - lo
    if size <= block:
        return
    mid = lo + (size // (2 * block)) * block  # split on a block boundary
    if mid == lo or mid == hi:
        mid = lo + block
    # The big square tile: rows [mid, hi), cols [lo, mid).
    out.append(Syr2kTask(mid, hi, lo, mid, diagonal=False, level=level))
    _square_tiles(lo, mid, block, level + 1, out)
    _square_tiles(mid, hi, block, level + 1, out)


def square_schedule(n: int, block: int) -> list[Syr2kTask]:
    """The paper's Figure-7 schedule.

    Wave 0 computes every ``nb x nb`` diagonal block; subsequent waves cover
    the strict lower triangle with the *largest possible square* tiles via
    the classic triangle = (square + 2 sub-triangles) recursion.  For a
    4 x 4 block grid this yields exactly the figure: 4 diagonal blocks,
    then the two unit off-diagonal blocks, then one 2 x 2-block square.

    Every task is independent of every other (each writes a disjoint tile of
    ``C`` and only reads ``A``/``B`` row panels), so the executor is free to
    reorder them — the property Section 5.1 exploits to hide latency.
    """
    if block <= 0:
        raise ValueError("block must be positive")
    tasks: list[Syr2kTask] = []
    nblk = (n + block - 1) // block
    for i in range(nblk):
        r0, r1 = i * block, min((i + 1) * block, n)
        tasks.append(Syr2kTask(r0, r1, r0, r1, diagonal=True, level=0))
    _square_tiles(0, n, block, 1, tasks)
    return tasks


def _apply_task(
    C: np.ndarray, A: np.ndarray, B: np.ndarray, alpha: float, t: Syr2kTask, xp=np
) -> None:
    Ar, Br = A[t.r0 : t.r1], B[t.r0 : t.r1]
    Ac, Bc = A[t.c0 : t.c1], B[t.c0 : t.c1]
    tile = C[t.r0 : t.r1, t.c0 : t.c1]
    upd = Ar @ Bc.T + Br @ Ac.T
    if t.diagonal:
        # A tile touching the diagonal only owns entries with
        # global_row >= global_col, i.e. tril with offset r0 - c0.
        upd = xp.tril(upd, k=t.r0 - t.c0)
    tile += alpha * upd


def syr2k_rect_blocked(
    C: np.ndarray,
    A: np.ndarray,
    B: np.ndarray,
    alpha: float = -1.0,
    block: int = 256,
    ctx: ExecutionContext | None = None,
) -> None:
    """In-place cuBLAS-style syr2k on the lower triangle of ``C``."""
    _run_schedule(C, A, B, alpha, rect_schedule(C.shape[0], block), ctx)


def syr2k_square_blocked(
    C: np.ndarray,
    A: np.ndarray,
    B: np.ndarray,
    alpha: float = -1.0,
    block: int = 256,
    ctx: ExecutionContext | None = None,
) -> None:
    """In-place Figure-7 square-block syr2k on the lower triangle of ``C``."""
    _run_schedule(C, A, B, alpha, square_schedule(C.shape[0], block), ctx)


def _run_schedule(
    C: np.ndarray,
    A: np.ndarray,
    B: np.ndarray,
    alpha: float,
    tasks: list[Syr2kTask],
    ctx: ExecutionContext | None = None,
) -> None:
    xp = resolve_context(ctx).xp
    n = C.shape[0]
    if tuple(C.shape) != (n, n) or A.shape[0] != n or tuple(B.shape) != tuple(A.shape):
        raise ValueError(
            f"shape mismatch: C {C.shape}, A {A.shape}, B {B.shape}"
        )
    for t in tasks:
        _apply_task(C, A, B, alpha, t, xp)
    symmetrize_lower(C, xp)
