"""End-to-end symmetric eigenvalue decomposition (Section 6.2).

:func:`eigh` composes the tridiagonalization of :mod:`repro.core.tridiag`
with a tridiagonal eigensolver and the back transformation:

    A = Q T Q^T,   T = U Lambda U^T   =>   A = (Q U) Lambda (Q U)^T.

Four presets mirror the paper's comparison and its lineage:

* ``method="proposed"`` — DBBR + pipelined GPU-style bulge chasing
  (wavefront-batched engine) + divide & conquer + incremental
  (Figure 13) back transformation;
* ``method="magma"`` — single-blocking SBR + sequential bulge chasing +
  divide & conquer + blocked (`ormqr`) back transformation;
* ``method="cusolver"`` — direct one-stage tridiagonalization + divide &
  conquer;
* ``method="plasma"`` — tile-kernel (GEQRT/TSQRT) band reduction +
  sequential bulge chasing + divide & conquer (the multicore lineage of
  references [7]/[16]/[17]).

The tridiagonal solver is pluggable (``"dc"``, ``"qr"``, ``"bisect"``) so
the three independent solvers can cross-check each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..precision.refine import RefinementReport

from ..backend.base import ArrayBackend
from ..backend.context import ExecutionContext, resolve_context
from ..plan.planner import plan_evd
from ..plan.runner import execute_plan, execute_plan_partial
from .tridiag import TridiagResult
from .validation import EmptyMatrixError, NonSquareError, check_symmetric

__all__ = ["EVDResult", "eigh", "eigh_partial", "eigh_stacked"]


@dataclass
class EVDResult:
    """Eigenvalues (ascending) and, optionally, orthonormal eigenvectors
    (columns), plus the tridiagonalization artifacts for inspection.

    ``tridiag`` is ``None`` for the ``method="dense"`` tier, which never
    forms an explicit tridiagonal factorization.

    ``refinement`` is populated only by the mixed-precision execution path
    (``precision != "fp64"``): the :class:`repro.precision.RefinementReport`
    of the iterative eigenpair refinement that promoted the low-precision
    pipeline output back to fp64 accuracy."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray | None
    tridiag: TridiagResult | None
    solver: str
    refinement: RefinementReport | None = None

    @property
    def n(self) -> int:
        return self.eigenvalues.size

    def residual(self, A: np.ndarray) -> float:
        """``||A V - V diag(lam)||_F / ||A||_F`` (requires eigenvectors)."""
        if self.eigenvectors is None:
            raise ValueError("eigenvectors were not computed")
        V = self.eigenvectors
        return float(
            np.linalg.norm(A @ V - V * self.eigenvalues) / max(np.linalg.norm(A), 1e-300)
        )


def eigh_stacked(
    As: np.ndarray,
    compute_vectors: bool = True,
    backend: str | ArrayBackend | ExecutionContext | None = None,
) -> list[EVDResult]:
    """Solve ``m`` independent small eigenproblems in one stacked call.

    ``As`` is an ``(m, n, n)`` stack of symmetric matrices; the whole
    stack is handed to the backend's dense ``eigh`` in a single batched
    call (LAPACK ``dsyevd`` per slice under NumPy, genuinely batched
    ``syevj``-style kernels under torch/cupy) — the serving layer's
    small-``n`` fast path, aggregating many tiny solves into one fat
    launch exactly as the paper aggregates panel updates into one
    ``syr2k``.

    Each item is validated and symmetrized independently with the same
    arithmetic as a single :func:`eigh` call, and the batched kernel is
    *batch-invariant*: item ``i``'s result is bitwise independent of the
    other slices in the stack, so ``eigh_stacked(As)[i]`` is bit-identical
    to ``eigh(As[i], method="dense")`` (the determinism contract of
    :class:`repro.serve.SolverService`; property-tested).

    Returns one :class:`EVDResult` per slice (``tridiag`` is ``None`` —
    no tridiagonal factorization exists on this path).
    """
    As = np.asarray(As)
    if As.ndim != 3 or As.shape[1] != As.shape[2]:
        raise NonSquareError(
            f"expected an (m, n, n) stack of square matrices, got shape {As.shape}"
        )
    if As.shape[0] == 0:
        raise EmptyMatrixError("expected a non-empty stack, got zero matrices")
    ctx = resolve_context(backend)
    m, n = As.shape[0], As.shape[1]
    # Per-item validation/symmetrization: identical arithmetic to the
    # single-call path (stacked norms would change summation order).
    clean = np.empty((m, n, n), dtype=np.float64)
    for i in range(m):
        clean[i] = check_symmetric(As[i])
    with ctx.stage("dense_eigh", m=m, n=n):
        w, V = ctx.backend.eigh(ctx.from_numpy(clean))
        lam = ctx.to_numpy(w)
        vecs = ctx.to_numpy(V) if compute_vectors else None
    return [
        EVDResult(
            eigenvalues=np.array(lam[i], copy=True),
            eigenvectors=(
                np.array(vecs[i], dtype=np.float64, copy=True)
                if vecs is not None
                else None
            ),
            tridiag=None,
            solver="dense",
        )
        for i in range(m)
    ]


def eigh(
    A: np.ndarray,
    method: str = "proposed",
    compute_vectors: bool = True,
    solver: str = "dc",
    backend: str | ArrayBackend | ExecutionContext | None = None,
    secular_mode: str = "batched",
    fallback: str = "none",
    precision: str = "fp64",
    **tridiag_kwargs,
) -> EVDResult:
    """Full symmetric EVD of ``A``.

    Parameters
    ----------
    A : (n, n) ndarray
        Symmetric input (not modified).
    method : {"proposed", "magma", "cusolver", "plasma", "dense"} or tridiagonalize method
        Pipeline preset (see module docstring); ``"dbbr"``/``"sbr"``/
        ``"direct"`` are also accepted and passed straight through.
        ``"dense"`` bypasses the tridiagonalization pipeline entirely and
        calls the backend's batched dense solver via :func:`eigh_stacked`
        — the small-``n`` serving tier (``result.tridiag`` is ``None``).
    compute_vectors : bool
        Compute eigenvectors (the expensive back-transformation path).
    solver : {"dc", "qr", "bisect"}
        Tridiagonal eigensolver.
    secular_mode : {"batched", "scalar"}
        Secular-equation execution mode of the ``"dc"`` solver:
        ``"batched"`` (default) iterates all roots of each merge as
        stacked array sweeps, ``"scalar"`` is the original per-root loop
        kept as a cross-check oracle (ignored by other solvers).
    backend : str, ArrayBackend or ExecutionContext, optional
        Execution substrate for the whole pipeline (see
        :func:`repro.core.tridiag.tridiagonalize`); stage times land in
        ``result.tridiag.ctx.stage_times`` under ``"tridiagonalize"``,
        ``"tridiag_solver"`` and ``"back_transform"``, with the D&C
        sub-stages ``"dc_leaf"``, ``"dc_deflate"``, ``"dc_secular"`` and
        ``"dc_gemm"`` nested inside the solver time.
    fallback : {"none", "chain"}
        ``"chain"`` executes through
        :func:`repro.resilience.execute_plan_with_fallback`: the result
        is verified (:func:`repro.resilience.verify_evd`) and on a typed
        convergence or verification failure the dense LAPACK tier and
        then the tridiagonal QR iteration are tried in order.
    precision : {"fp64", "mixed", "fp32"}
        Working-precision policy (see :mod:`repro.precision`).  ``"fp64"``
        is the historical bit-identical path.  ``"mixed"`` runs the
        two-stage reduction and the D&C eigenvector GEMMs in float32,
        then promotes and iteratively refines the eigenpairs back to
        fp64 accuracy (escalating to the full fp64 pipeline if the
        refinement stalls).  ``"fp32"`` runs in float32 and refines, but
        accepts float32-level tolerances.  Non-fp64 policies require the
        NumPy backend and ``compute_vectors=True`` for ``"mixed"``.
    **tridiag_kwargs
        The pipeline knob surface (``bandwidth``, ``second_block``,
        ``max_sweeps``, ``tuning``, ...) — parsed into a typed
        :class:`repro.plan.EVDPlan` at this boundary, so an unknown or
        misspelled knob raises :class:`repro.plan.PlanError` here,
        naming the valid knobs, instead of a late ``TypeError`` deep
        inside the pipeline.

    Returns
    -------
    EVDResult
    """
    ctx = resolve_context(backend)
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise NonSquareError(f"expected a square matrix, got shape {A.shape}")
    plan = plan_evd(
        A.shape[0],
        method,
        compute_vectors=compute_vectors,
        solver=solver,
        secular_mode=secular_mode,
        backend=ctx.backend.name,
        fallback=fallback,
        precision=precision,
        **tridiag_kwargs,
    )
    if plan.fallback == "chain":
        from ..resilience.fallback import execute_plan_with_fallback

        return execute_plan_with_fallback(A, plan, ctx=ctx).result
    return execute_plan(A, plan, ctx=ctx)


def eigh_partial(
    A: np.ndarray,
    indices: tuple[int, int],
    method: str = "proposed",
    compute_vectors: bool = True,
    backend: str | ArrayBackend | ExecutionContext | None = None,
    **tridiag_kwargs,
) -> EVDResult:
    """Selected eigenpairs ``indices = (lo, hi)`` (inclusive, 0 = smallest).

    Tridiagonalizes once, then uses Sturm bisection for exactly the
    requested eigenvalues and inverse iteration + back transformation for
    their eigenvectors — the back transform touches only ``hi - lo + 1``
    columns, so a small window costs ``O(n^2 m)`` instead of ``O(n^3)``
    (the expensive path Section 6.2 laments).

    Returns an :class:`EVDResult` whose arrays have ``hi - lo + 1``
    entries/columns.
    """
    lo, hi = int(indices[0]), int(indices[1])
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise NonSquareError(f"expected a square matrix, got shape {A.shape}")
    if A.shape[0] == 0:
        raise EmptyMatrixError("expected a non-empty matrix, got shape (0, 0)")
    A = np.asarray(A, dtype=np.float64)
    n = A.shape[0]
    if not (0 <= lo <= hi < n):
        raise ValueError(f"indices {indices} out of range for n = {n}")
    ctx = resolve_context(backend)
    plan = plan_evd(
        n,
        method,
        compute_vectors=compute_vectors,
        solver="bisect",
        backend=ctx.backend.name,
        **tridiag_kwargs,
    )
    return execute_plan_partial(A, plan, (lo, hi), ctx=ctx)
