"""Panel QR factorization producing Householder factors for band reduction.

Both SBR and DBBR start every step by QR-factorizing a tall, skinny *panel*
(the red block in Figure 2 of the paper): ``QR(Panel) = (I - W Y^T) R``.
The reflectors annihilate everything below the top ``b x b`` triangle of the
panel, which is exactly what pushes the off-band entries of the symmetric
matrix to zero.

The routines here are unblocked within the panel (the panel is narrow, so
this is the BLAS2-bounded part the paper accepts) and return the factors in
whichever representation the caller wants:

* :func:`panel_qr` — raw reflectors ``(V, taus, R)``;
* :func:`panel_qr_wy` — paper-style ``(W, Y, R)`` with ``Q = I - W Y^T``;
* :func:`panel_qr_compact` — LAPACK-style ``(V, T, R)`` with
  ``Q = I - V T V^T``.
"""

from __future__ import annotations

import numpy as np

from .householder import accumulate_wy, larft, make_householder

__all__ = ["panel_qr", "panel_qr_wy", "panel_qr_compact", "explicit_q"]


def panel_qr(panel: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Householder QR of an ``m x b`` panel (``m >= b``).

    Returns ``(V, taus, R)`` where ``V`` is ``m x b`` unit-lower-trapezoidal
    (``V[j, j] == 1``, zeros above), ``taus`` has length ``b``, and ``R`` is
    the ``b x b`` upper-triangular factor, such that

        H_b ... H_2 H_1 @ panel = [R; 0],   H_j = I - tau_j v_j v_j^T.

    Equivalently ``panel = (I - W Y^T) [R; 0]`` with ``(W, Y)`` from
    :func:`repro.core.householder.accumulate_wy`.
    """
    panel = np.asarray(panel)
    # Preserve a float32/float64 working precision; anything else (int
    # test inputs, lists) is promoted to the historical float64.
    dt = panel.dtype if panel.dtype in (np.float32, np.float64) else np.float64
    A = np.array(panel, dtype=dt, copy=True)
    m, b = A.shape
    if m < b:
        raise ValueError(f"panel must be tall: got {m} x {b}")
    V = np.zeros((m, b), dtype=dt)
    taus = np.zeros(b, dtype=dt)
    for j in range(b):
        v, tau, beta = make_householder(A[j:, j])
        V[j:, j] = v
        taus[j] = tau
        A[j, j] = beta
        A[j + 1 :, j] = 0.0
        if tau != 0.0 and j + 1 < b:
            # Apply H_j to the remaining columns of the panel.
            C = A[j:, j + 1 :]
            w = tau * (v @ C)
            C -= np.outer(v, w)
    R = np.triu(A[:b, :])
    return V, taus, R


def panel_qr_wy(panel: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Panel QR returning the paper's WY factors ``(W, Y, R)``.

    ``panel == (I - W Y^T) @ vstack([R, 0])`` and ``I - W Y^T`` is orthogonal.
    """
    V, taus, R = panel_qr(panel)
    W, Y = accumulate_wy(V, taus)
    return W, Y, R


def panel_qr_compact(panel: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Panel QR returning compact-WY factors ``(V, T, R)``.

    ``Q = I - V T V^T``; note ``W = V @ T`` recovers the plain WY form.
    """
    V, taus, R = panel_qr(panel)
    T = larft(V, taus)
    return V, T, R


def explicit_q(V: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Materialize the full ``m x m`` orthogonal ``Q = H_1 H_2 ... H_b``.

    Applies reflectors in reverse to the identity (LAPACK ``orgqr``-style);
    intended for tests and small problems.
    """
    m, b = V.shape
    Q = np.eye(m, dtype=V.dtype if V.dtype in (np.float32, np.float64) else None)
    for j in range(b - 1, -1, -1):
        tau = float(taus[j])
        if tau == 0.0:
            continue
        v = V[j:, j]
        C = Q[j:, :]
        w = tau * (v @ C)
        C -= np.outer(v, w)
    return Q
