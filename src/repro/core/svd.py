"""Singular value decomposition through the reproduced eigensolver stack.

The paper's closest relative ([10], Gates/Tomov/Dongarra 2018) is the SVD
twin of this work: two-stage *bidiagonal* reduction plus divide & conquer.
This module provides the SVD pipeline on top of our substrate:

1. **Householder bidiagonalization** (`bidiagonalize`): alternating left /
   right reflectors reduce ``A`` to upper bidiagonal ``B`` (LAPACK
   ``gebrd``);
2. **Golub–Kahan embedding** (`golub_kahan_tridiagonal`): the permuted
   symmetric matrix ``[[0, B^T], [B, 0]]`` is, under the perfect shuffle,
   a symmetric *tridiagonal* with zero diagonal and the interleaved
   entries of ``B`` off the diagonal — exactly the input our
   divide-and-conquer solver eats;
3. **`svd`**: eigenpairs of the GK tridiagonal map to singular triplets
   (``lam = ±sigma``; the eigenvector's shuffled halves are the left /
   right singular vectors scaled by ``1/sqrt(2)``), back-transformed
   through the bidiagonalization reflectors.

Everything — reflectors, the tridiagonal eigensolve, back transformation —
runs through the code paths this repository reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.base import ArrayBackend
from ..backend.context import ExecutionContext, resolve_context
from ..plan.planner import make_solver_config
from ..plan.runner import solve_tridiagonal_planned
from .householder import make_householder

__all__ = ["BidiagResult", "bidiagonalize", "golub_kahan_tridiagonal", "svd"]


@dataclass
class BidiagResult:
    """``A = U B V^T`` with upper-bidiagonal ``B`` (diag ``d``, superdiag
    ``f``) and reflector logs for applying ``U`` / ``V``."""

    d: np.ndarray
    f: np.ndarray
    left_v: list[np.ndarray]
    left_tau: list[float]
    right_v: list[np.ndarray]
    right_tau: list[float]
    m: int
    n: int

    def apply_u(self, X: np.ndarray) -> None:
        """In place ``X <- U X`` (left reflectors, reverse order)."""
        for j in range(len(self.left_v) - 1, -1, -1):
            tau, v = self.left_tau[j], self.left_v[j]
            if tau == 0.0:
                continue
            sub = X[j:, :]
            sub -= np.outer(tau * v, v @ sub)

    def apply_v(self, X: np.ndarray) -> None:
        """In place ``X <- V X`` (right reflectors, reverse order)."""
        for j in range(len(self.right_v) - 1, -1, -1):
            tau, v = self.right_tau[j], self.right_v[j]
            if tau == 0.0:
                continue
            sub = X[j + 1 :, :]
            sub -= np.outer(tau * v, v @ sub)


def bidiagonalize(A: np.ndarray) -> BidiagResult:
    """Householder bidiagonalization of ``A`` (``m >= n``; tall or square).

    Column ``j``: a left reflector annihilates ``A[j+1:, j]``, then a
    right reflector annihilates ``A[j, j+2:]`` — the classic ``gebrd``
    alternation that keeps the bidiagonal structure intact.
    """
    A = np.array(A, dtype=np.float64, copy=True)
    m, n = A.shape
    if m < n:
        raise ValueError("bidiagonalize expects m >= n (pass A.T and swap U/V)")
    left_v: list[np.ndarray] = []
    left_tau: list[float] = []
    right_v: list[np.ndarray] = []
    right_tau: list[float] = []
    for j in range(n):
        v, tau, beta = make_householder(A[j:, j])
        left_v.append(v)
        left_tau.append(tau)
        if tau != 0.0:
            C = A[j:, j + 1 :]
            C -= np.outer(tau * v, v @ C)
        A[j, j] = beta
        A[j + 1 :, j] = 0.0
        if j + 2 < n:
            v, tau, beta = make_householder(A[j, j + 1 :])
            right_v.append(v)
            right_tau.append(tau)
            if tau != 0.0:
                C = A[j + 1 :, j + 1 :]
                C -= np.outer(C @ v, tau * v)
            A[j, j + 1] = beta
            A[j, j + 2 :] = 0.0
        elif j + 1 < n:
            right_v.append(np.ones(n - j - 1))
            right_tau.append(0.0)
    d = np.diagonal(A)[:n].copy()
    f = np.array([A[j, j + 1] for j in range(n - 1)])
    return BidiagResult(
        d=d, f=f, left_v=left_v, left_tau=left_tau,
        right_v=right_v, right_tau=right_tau, m=m, n=n,
    )


def golub_kahan_tridiagonal(d: np.ndarray, f: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The Golub–Kahan tridiagonal of an upper bidiagonal ``(d, f)``.

    The symmetric embedding ``[[0, B^T], [B, 0]]`` permuted by the perfect
    shuffle is tridiagonal with zero diagonal and off-diagonal
    ``(d_0, f_0, d_1, f_1, ..., d_{n-1})`` — size ``2n``.
    """
    d = np.asarray(d, dtype=np.float64)
    f = np.asarray(f, dtype=np.float64)
    n = d.size
    e = np.zeros(2 * n - 1)
    e[0::2] = d
    if n > 1:
        e[1::2] = f
    return np.zeros(2 * n), e


def svd(
    A: np.ndarray,
    compute_vectors: bool = True,
    backend: str | ArrayBackend | ExecutionContext | None = None,
    secular_mode: str = "batched",
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
    """Full SVD ``A = U diag(s) V^T`` via the reproduced pipeline.

    Parameters
    ----------
    A : (m, n) ndarray, ``m >= n``
        Input matrix (tall or square; for wide inputs pass ``A.T`` and
        swap the returned factors).
    compute_vectors : bool
        Return ``U`` (m x n, thin) and ``V`` (n x n).
    backend : str, ArrayBackend or ExecutionContext, optional
        Execution context threaded into the divide-and-conquer solve of
        the Golub–Kahan tridiagonal, exactly as :func:`repro.core.eigh`
        does — the caller's backend, workspace pool, and stage-event
        hooks (``bidiagonalize``, ``tridiag_solver`` and the ``dc_*``
        sub-stages) all apply.
    secular_mode : {"batched", "scalar"}
        Secular-equation mode of the divide-and-conquer solve (see
        :func:`repro.eig.dc_eigh`).

    Returns
    -------
    (s, U, V)
        Singular values descending; ``U``/``V`` are None without vectors.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"svd expects a 2-D matrix, got shape {A.shape}")
    m, n = A.shape
    if m < n:
        raise ValueError("svd expects m >= n; pass A.T and swap U/V")
    # The same validated SolverConfig + shared stage runner the EVD plan
    # layer uses — a bad secular_mode fails here, at the entry point,
    # with a PlanError naming the valid choices.
    solver_cfg = make_solver_config("dc", compute_vectors, secular_mode)
    if n == 0:
        return np.zeros(0), None, None
    ctx = resolve_context(backend)
    with ctx.stage("bidiagonalize", m=m, n=n):
        bd = bidiagonalize(A)
    dt, et = golub_kahan_tridiagonal(bd.d, bd.f)
    with ctx.stage("tridiag_solver", solver="dc"):
        lam, W = solve_tridiagonal_planned(dt, et, solver_cfg, ctx=ctx)
    # Eigenvalues come in ±sigma pairs (ascending); the top n are +sigma.
    s = lam[2 * n - 1 : n - 1 : -1].copy()
    s[s < 0] = 0.0  # roundoff on zero singular values
    if not compute_vectors:
        return s, None, None
    # Under the perfect shuffle, eigenvector w of eigenvalue +sigma holds
    # v/sqrt(2) on even indices and u/sqrt(2) on odd indices.
    U_b = np.zeros((n, n))
    V_b = np.zeros((n, n))
    tol = 1e-12 * max(float(s[0]) if s.size else 0.0, 1.0)
    for i in range(n):
        w = W[:, 2 * n - 1 - i]
        v = w[0::2]
        u = w[1::2]
        # Normalize and fix the sign pairing (u, v defined up to joint sign).
        nu, nv = np.linalg.norm(u), np.linalg.norm(v)
        if nu > 1e-8 and nv > 1e-8:
            U_b[:, i] = u / nu
            V_b[:, i] = v / nv
        # else: zero singular value — the GK eigenvector may put all its
        # mass in one half; the column is completed below.
    # Null-space completion: for sigma ~ 0 the eigenvector halves decouple
    # and need not be orthonormal; rebuild those columns as an orthonormal
    # complement of the well-determined ones.
    suspect = np.flatnonzero(s <= tol)
    for Q in (U_b, V_b):
        if suspect.size == 0:
            break
        basis = [Q[:, i] for i in range(n) if i not in set(suspect)]
        for i in suspect:
            # Candidates: the computed column, then every coordinate
            # vector; keep the one with the largest projection residual
            # (>= 1/sqrt(n) exists by a counting argument) and
            # re-orthogonalize twice — accepting a tiny residual would
            # amplify roundoff into visible non-orthogonality.
            best = None
            best_norm = 0.0
            for cand in [Q[:, i]] + [np.eye(n)[:, c] for c in range(n)]:
                vcol = cand.copy()
                for _ in range(2):
                    for b_vec in basis:
                        vcol -= (b_vec @ vcol) * b_vec
                norm = np.linalg.norm(vcol)
                if norm > best_norm:
                    best, best_norm = vcol, norm
                if norm > 0.5:
                    break
            assert best is not None and best_norm > 0.0
            Q[:, i] = best / best_norm
            basis.append(Q[:, i])
    # Back-transform through the bidiagonalization reflectors.
    U = np.zeros((m, n))
    U[:n, :] = U_b
    bd.apply_u(U)
    V = V_b
    bd.apply_v(V)
    return s, U, V
