"""Classic single-blocking successive band reduction (SBR).

This is the MAGMA ``Dsy2sb`` analogue and the baseline of the paper's
Figure 9: panels of width exactly ``b`` (the target bandwidth) are
QR-factorized and the trailing matrix is updated immediately with the
two-sided ZY form of Equation 1,

    Z = A W - (1/2) Y (W^T A W)
    A_trailing <- A_trailing - Y Z^T - Z Y^T        (a syr2k)

so the ``syr2k`` inner dimension equals the bandwidth ``b`` — the very
coupling (``k == b``) that the paper's DBBR breaks.

The implementation is in-place on a copy of the input and records the WY
block of every panel for back transformation.  The trailing-matrix BLAS3
work runs on the :class:`~repro.backend.context.ExecutionContext`'s
backend; the skinny panel QR is factorized on the host (the hybrid
CPU-panel / device-update split MAGMA uses).
"""

from __future__ import annotations

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from .blocks import BandReductionResult, WYBlock
from .panel_qr import panel_qr_wy
from .syr2k import syr2k_reference

__all__ = ["sbr"]


def sbr(
    A: np.ndarray, bandwidth: int, ctx: ExecutionContext | None = None
) -> BandReductionResult:
    """Reduce symmetric ``A`` to band form with the classic SBR sweep.

    Parameters
    ----------
    A : (n, n) ndarray
        Symmetric input (only required to be symmetric; not modified).
    bandwidth : int
        Target half-bandwidth ``b >= 1``.
    ctx : ExecutionContext, optional
        Execution context; hot-path array ops run on its backend
        (host NumPy by default).

    Returns
    -------
    BandReductionResult
        ``A == Q @ band @ Q.T`` with ``band`` symmetric of bandwidth ``b``
        (host arrays regardless of backend).
    """
    ctx = resolve_context(ctx)
    xp = ctx.xp
    A = xp.array(ctx.asarray(A), copy=True)
    n = A.shape[0]
    b = int(bandwidth)
    if b < 1:
        raise ValueError("bandwidth must be >= 1")
    if tuple(A.shape) != (n, n):
        raise ValueError("A must be square")
    blocks: list[WYBlock] = []
    flops = 0.0

    nelim = max(0, n - b - 1)  # columns that have off-band entries
    j = 0
    while j < nelim:
        bw = min(b, nelim - j)
        r0 = j + b  # first row of the panel
        m = n - r0
        # Host-side panel factorization (BLAS2-bound, narrow).
        W, Y, R = panel_qr_wy(ctx.to_numpy(A[r0:, j : j + bw]))
        flops += 2.0 * m * bw * bw  # panel QR ~ 2 m b^2
        Wd, Yd = ctx.from_numpy(W), ctx.from_numpy(Y)

        # Write back [R; 0] and its symmetric image.
        A[r0:, j : j + bw] = 0.0
        A[r0 : r0 + bw, j : j + bw] = ctx.from_numpy(R)
        A[j : j + bw, r0:] = A[r0:, j : j + bw].T

        # Two-sided trailing update via the ZY representation (Equation 1).
        B = A[r0:, r0:]
        P = B @ Wd  # symm-gemm
        Z = P - 0.5 * Yd @ (Wd.T @ P)
        A[r0:, r0:] = syr2k_reference(B, Yd, Z, alpha=-1.0, ctx=ctx)
        flops += 2.0 * m * m * bw  # A W
        flops += 2.0 * m * m * bw  # syr2k (2 m^2 k for the symmetric half x2)

        if bw < b:
            # Short (final) panel: the in-band columns j+bw .. j+b-1 sit to
            # the left of the reflector window, so they receive only the
            # left-side update Q^T S (their column index is below r0).
            S = A[r0:, j + bw : r0]
            S -= Yd @ (Wd.T @ S)
            A[j + bw : r0, r0:] = S.T

        blocks.append(WYBlock(W=W, Y=Y, offset=r0))
        j += bw

    # Scrub roundoff outside the band so the output is an exact band matrix.
    _zero_off_band(A, b, xp)
    return BandReductionResult(
        band=ctx.to_numpy(A), bandwidth=b, blocks=blocks, flops=flops
    )


def _zero_off_band(A, b: int, xp=np) -> None:
    """Zero entries strictly outside bandwidth ``b`` (roundoff residue)."""
    n = A.shape[0]
    i = xp.arange(n)
    A[xp.abs(i[:, None] - i[None, :]) > b] = 0.0
