"""Two-stage (and direct) tridiagonalization drivers — the paper's headline
routine.

:func:`tridiagonalize` reduces a symmetric matrix to tridiagonal form
``A = Q T Q^T`` by one of four methods:

* ``"dbbr"`` (proposed) — double-blocking band reduction to bandwidth ``b``
  with deferred rank-``2k`` updates, followed by pipelined (GPU-style)
  bulge chasing — executed by the wavefront-batched engine
  (:mod:`repro.core.bc_wavefront`) by default;
* ``"sbr"`` (MAGMA-like) — classic single-blocking band reduction followed
  by sequential bulge chasing;
* ``"direct"`` (cuSOLVER-like) — one-stage blocked Householder
  tridiagonalization;
* ``"tile"`` (PLASMA-like) — tile-kernel band reduction (GEQRT/TSQRT)
  followed by sequential bulge chasing.

The result object hides which path produced it: ``apply_q`` composes
``Q = Q_sbr Q1`` (two-stage) or the reflector product (direct), so
downstream EVD code is method-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.base import ArrayBackend
from ..backend.context import ExecutionContext, resolve_context
from ..plan.config import (
    BackTransformConfig,
    BulgeChaseConfig,
    EVDPlan,
    TridiagConfig,
)
from ..plan.planner import auto_params, plan_tridiag
from .bc_pipeline import PipelineStats, bulge_chase_pipelined
from .bc_wavefront import bulge_chase_wavefront
from .blocks import BandReductionResult
from .bulge_chasing import BulgeChasingResult, bulge_chase
from .back_transform import apply_sbr_q, apply_sbr_q_transpose
from .dbbr import dbbr
from .direct_tridiag import DirectTridiagResult, direct_tridiagonalize
from .sbr import sbr
from .tile_sbr import TileBandReductionResult, tile_sbr

__all__ = [
    "TridiagResult",
    "tridiagonalize",
    "tridiagonalize_planned",
    "auto_params",
]


@dataclass
class TridiagResult:
    """Output of :func:`tridiagonalize`: ``A = Q @ tridiag(d, e) @ Q^T``.

    For two-stage methods ``Q = Q_sbr @ Q1``; ``band_result``/``bc_result``
    expose the stage outputs (``direct_result`` for the one-stage path).
    """

    d: np.ndarray
    e: np.ndarray
    method: str
    bandwidth: int
    band_result: BandReductionResult | None = None
    tile_result: TileBandReductionResult | None = None
    bc_result: BulgeChasingResult | None = None
    direct_result: DirectTridiagResult | None = None
    pipeline_stats: PipelineStats | None = None
    back_transform_method: str = "blocked"
    back_transform_group: int = 128
    backend: str = "numpy"
    ctx: ExecutionContext | None = field(default=None, repr=False, compare=False)

    @property
    def n(self) -> int:
        return self.d.size

    def apply_q(self, X: np.ndarray) -> None:
        """In place ``X <- Q X`` — the full back transformation."""
        if self.direct_result is not None:
            self.direct_result.apply_q(X)
            return
        assert self.bc_result is not None
        if self.tile_result is not None:
            self.bc_result.apply_q1(X)
            for refl in reversed(self.tile_result.reflectors):
                refl.apply_left(X)
            return
        assert self.band_result is not None
        self.bc_result.apply_q1(X)
        apply_sbr_q(
            self.band_result.blocks,
            X,
            method=self.back_transform_method,
            group_width=self.back_transform_group,
            ctx=self.ctx,
        )

    def apply_q_transpose(self, X: np.ndarray) -> None:
        """In place ``X <- Q^T X``."""
        if self.direct_result is not None:
            self.direct_result.apply_q_transpose(X)
            return
        assert self.bc_result is not None
        if self.tile_result is not None:
            for refl in self.tile_result.reflectors:
                refl.apply_left_transpose(X)
            self.bc_result.apply_q1_transpose(X)
            return
        assert self.band_result is not None
        apply_sbr_q_transpose(
            self.band_result.blocks,
            X,
            method=self.back_transform_method,
            group_width=self.back_transform_group,
            ctx=self.ctx,
        )
        self.bc_result.apply_q1_transpose(X)

    def q(self) -> np.ndarray:
        Q = np.eye(self.n)
        self.apply_q(Q)
        return Q

    def tridiagonal(self) -> tuple[np.ndarray, np.ndarray]:
        return self.d, self.e


def tridiagonalize(
    A: np.ndarray,
    method: str = "dbbr",
    bandwidth: int | None = None,
    second_block: int | None = None,
    pipelined: bool = True,
    bc_driver: str = "wavefront",
    max_sweeps: int | None = None,
    syr2k_kind: str = "square",
    direct_block: int = 32,
    back_transform: str = "incremental",
    back_transform_group: int | None = None,
    backend: str | ArrayBackend | ExecutionContext | None = None,
    tuning: str = "manual",
    device: str = "h100",
) -> TridiagResult:
    """Tridiagonalize symmetric ``A``.

    Parameters
    ----------
    A : (n, n) ndarray
        Symmetric input (not modified).
    method : {"dbbr", "sbr", "tile", "direct"}
        Algorithm; see module docstring.
    bandwidth : int, optional
        Intermediate bandwidth ``b`` for two-stage methods (auto if None).
    second_block : int, optional
        DBBR second block size ``k`` (auto if None; must be a multiple of
        ``bandwidth``).
    pipelined : bool
        Use the multi-sweep pipelined bulge chasing (DBBR default); the
        sequential chase is used otherwise.
    bc_driver : {"wavefront", "pipelined"}
        Execution engine for the pipelined chase.  ``"wavefront"``
        (default) batches each pipeline round into stacked numpy
        operations over band storage (:mod:`repro.core.bc_wavefront`);
        ``"pipelined"`` runs the per-task dense driver, which is
        bit-identical to the sequential chase.  Ignored when
        ``pipelined`` is False.
    max_sweeps : int, optional
        Cap on concurrently in-flight sweeps ``S`` (None = unbounded).
    syr2k_kind : {"square", "rect", "reference"}
        Trailing-update schedule for DBBR.
    direct_block : int
        Panel width for the direct method.
    back_transform : {"incremental", "blocked", "recursive"}
        SBR back-transformation flavour used by ``apply_q``.
    back_transform_group : int, optional
        Group width for the incremental back transform (defaults to the
        DBBR ``second_block``).
    backend : str, ArrayBackend or ExecutionContext, optional
        Where the hot-path array work executes: a backend name
        (``"numpy"``/``"cupy"``/``"torch"``/``"auto"``), a backend
        instance, or a prepared :class:`~repro.backend.ExecutionContext`
        (e.g. carrying stage-timing hooks).  Default is host NumPy, which
        is bit-identical to the historical implementation.  Dtype
        coercion to float64 happens here, once — kernels below assert
        float64 instead of converting.
    tuning : {"manual", "model"}
        ``"model"`` lets the calibrated cost models pick ``bandwidth``/
        ``second_block`` for ``device`` where the caller left them unset
        (see :func:`repro.plan.plan_evd`).
    device : str
        Device preset consulted when ``tuning="model"``.

    Raises
    ------
    PlanError
        Unknown method or invalid knob value, at the entry point, naming
        the valid choices (a ``ValueError`` subclass).
    ValueError / SymmetryError
        Non-square input, NaN/Inf entries, or asymmetry beyond roundoff
        (see :mod:`repro.core.validation`).
    """
    from .validation import NonSquareError

    ctx = resolve_context(backend)
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise NonSquareError(f"expected a square matrix, got shape {A.shape}")
    tcfg, bcfg, btcfg = plan_tridiag(
        A.shape[0],
        method,
        tuning=tuning,
        device=device,
        bandwidth=bandwidth,
        second_block=second_block,
        pipelined=pipelined,
        bc_driver=bc_driver,
        max_sweeps=max_sweeps,
        syr2k_kind=syr2k_kind,
        direct_block=direct_block,
        back_transform=back_transform,
        back_transform_group=back_transform_group,
    )
    return _run_tridiag(A, tcfg, bcfg, btcfg, ctx)


def tridiagonalize_planned(
    A: np.ndarray,
    plan: EVDPlan,
    ctx: ExecutionContext | None = None,
    dtype: np.dtype | None = None,
) -> TridiagResult:
    """Execute the tridiagonalization branch of a resolved plan.

    The planned twin of :func:`tridiagonalize`: no knob parsing, no
    ``auto_params`` — the plan already carries the resolved block sizes.
    This is the driver :func:`repro.plan.execute_plan` runs.

    ``dtype`` sets the working precision of the reduction (``None`` =
    float64, the historical bit-identical contract); the mixed-precision
    driver passes float32 here to run the whole two-stage reduction in
    single precision.
    """
    if plan.tridiag is None:
        raise ValueError("plan has no tridiagonalization stage (dense tier)")
    return _run_tridiag(
        A,
        plan.tridiag,
        plan.bulge_chase,
        plan.back_transform,
        resolve_context(ctx),
        dtype=dtype,
    )


def _run_tridiag(
    A: np.ndarray,
    tcfg: TridiagConfig,
    bcfg: BulgeChaseConfig | None,
    btcfg: BackTransformConfig | None,
    ctx: ExecutionContext,
    dtype: np.dtype | None = None,
) -> TridiagResult:
    """Resolved-config execution body (identical arithmetic and stage
    structure to the historical ``tridiagonalize``)."""
    from .validation import check_symmetric

    # The single dtype-coercion point of the pipeline: check_symmetric
    # hands back a working copy in the requested precision (float64 by
    # default), everything below follows the input dtype.
    A = check_symmetric(A, dtype=dtype)
    n = A.shape[0]

    if tcfg.method == "direct":
        with ctx.stage("tridiag_direct", n=n):
            res = direct_tridiagonalize(A, block=tcfg.direct_block or 32)
        return TridiagResult(
            d=res.d,
            e=res.e,
            method="direct",
            bandwidth=1,
            direct_result=res,
            backend=ctx.backend.name,
            ctx=ctx,
        )

    assert bcfg is not None and btcfg is not None
    b = tcfg.bandwidth if tcfg.bandwidth is not None else auto_params(n)[0]
    b = max(1, min(b, max(n - 2, 1)))

    tile_res: TileBandReductionResult | None = None
    with ctx.stage("band_reduction", n=n, method=tcfg.method, bandwidth=b):
        if tcfg.method == "dbbr":
            k = tcfg.second_block if tcfg.second_block is not None else b
            band_res = dbbr(A, b, k, syr2k_kind=tcfg.syr2k_kind or "square", ctx=ctx)
        elif tcfg.method == "sbr":
            band_res = sbr(A, b, ctx=ctx)
        elif tcfg.method == "tile":
            tile_res = tile_sbr(A, b, ctx=ctx)
            band_res = None
        else:
            raise ValueError(f"unknown tridiagonalization method {tcfg.method!r}")

    band_matrix = tile_res.band if tile_res is not None else band_res.band
    stats: PipelineStats | None = None
    with ctx.stage("bulge_chasing", n=n, bandwidth=b, pipelined=bcfg.pipelined):
        if bcfg.pipelined:
            if bcfg.bc_driver == "wavefront":
                bc_res, stats = bulge_chase_wavefront(
                    band_matrix, b, max_sweeps=bcfg.max_sweeps, ctx=ctx
                )
            elif bcfg.bc_driver == "pipelined":
                bc_res, stats = bulge_chase_pipelined(
                    band_matrix, b, max_sweeps=bcfg.max_sweeps, ctx=ctx
                )
            else:
                raise ValueError(f"unknown bc_driver {bcfg.bc_driver!r}")
        else:
            bc_res = bulge_chase(band_matrix, b, ctx=ctx)

    return TridiagResult(
        d=bc_res.d,
        e=bc_res.e,
        method=tcfg.method,
        bandwidth=b,
        band_result=band_res,
        tile_result=tile_res,
        bc_result=bc_res,
        pipeline_stats=stats,
        back_transform_method=btcfg.method,
        back_transform_group=btcfg.group,
        backend=ctx.backend.name,
        ctx=ctx,
    )
