"""Blocked direct (one-stage) tridiagonalization — the cuSOLVER ``Dsytrd``
baseline.

This is the classic LAPACK ``sytrd``/``latrd`` algorithm (Dongarra,
Sorensen, Hammarling 1989): panels of ``block`` columns are reduced with
Householder reflectors; within a panel each column update needs a symmetric
matrix-vector product against the *virtually updated* trailing matrix
(``p = (A - V W^T - W V^T) v``), and at the end of the panel the trailing
matrix receives one rank-``2*block`` update.

Roughly half the floating-point work sits in the per-column ``symv`` —
a BLAS2, memory-bound operation.  That is exactly why direct
tridiagonalization tops out near ~2 TFLOPs on an H100 (Figure 4, left pie)
and why the two-stage approach exists.  We implement it both as the
correctness baseline and as the algorithm whose cost decomposition
``models.baselines`` prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .householder import make_householder

__all__ = ["DirectTridiagResult", "direct_tridiagonalize"]


@dataclass
class DirectTridiagResult:
    """``A = Q @ tridiag(d, e) @ Q.T`` with ``Q = H_0 H_1 ... H_{n-3}``.

    Reflector ``j`` lives in ``V[j+1:, j]`` (unit first element) with scale
    ``taus[j]`` and acts on rows ``j+1:``.
    """

    d: np.ndarray
    e: np.ndarray
    V: np.ndarray
    taus: np.ndarray
    flops: float = 0.0
    blas2_flops: float = 0.0

    @property
    def n(self) -> int:
        return self.d.size

    def apply_q(self, X: np.ndarray) -> None:
        """In place ``X <- Q X`` (reflectors in reverse order)."""
        for j in range(self.n - 3, -1, -1):
            tau = float(self.taus[j])
            if tau == 0.0:
                continue
            v = self.V[j + 1 :, j]
            sub = X[j + 1 :, :]
            sub -= np.outer(tau * v, v @ sub)

    def apply_q_transpose(self, X: np.ndarray) -> None:
        """In place ``X <- Q^T X`` (forward order; ``H_j`` symmetric)."""
        for j in range(self.n - 2):
            tau = float(self.taus[j])
            if tau == 0.0:
                continue
            v = self.V[j + 1 :, j]
            sub = X[j + 1 :, :]
            sub -= np.outer(tau * v, v @ sub)

    def q(self) -> np.ndarray:
        Q = np.eye(self.n)
        self.apply_q(Q)
        return Q


def direct_tridiagonalize(A: np.ndarray, block: int = 32) -> DirectTridiagResult:
    """Reduce symmetric ``A`` directly to tridiagonal form.

    Parameters
    ----------
    A : (n, n) ndarray
        Symmetric input (not modified).
    block : int
        Panel width ``nb`` (cuSOLVER/LAPACK typically use 32-64).

    Returns
    -------
    DirectTridiagResult
    """
    A = np.asarray(A)
    dt = A.dtype if A.dtype in (np.float32, np.float64) else np.float64
    A = np.array(A, dtype=dt, copy=True)
    n = A.shape[0]
    nb = max(1, int(block))
    V = np.zeros((n, max(n - 2, 0)), dtype=dt)
    taus = np.zeros(max(n - 2, 0), dtype=dt)
    flops = 0.0
    blas2 = 0.0

    j0 = 0
    while j0 < n - 2:
        jb = min(nb, n - 2 - j0)
        # Global-row, zero-padded panel factors (the latrd V and W).
        Vp = np.zeros((n, jb), dtype=dt)
        Wp = np.zeros((n, jb), dtype=dt)
        for jj in range(jb):
            c = j0 + jj
            if jj > 0:
                # Bring column c up to date with the panel's earlier pairs
                # (zero padding masks each pair to its own window).
                A[c:, c] -= Vp[c:, :jj] @ Wp[c, :jj] + Wp[c:, :jj] @ Vp[c, :jj]
                A[c, c + 1 :] = A[c + 1 :, c]
            v, tau, beta = make_householder(A[c + 1 :, c])
            A[c + 1 :, c] = 0.0
            A[c + 1, c] = beta
            A[c, c + 1 :] = 0.0
            A[c, c + 1] = beta
            Vp[c + 1 :, jj] = v
            V[c + 1 :, c] = v
            taus[c] = tau
            # w = tau * B v against the virtually updated trailing matrix.
            p = A[c + 1 :, c + 1 :] @ v
            blas2 += 2.0 * (n - c - 1) ** 2
            if jj > 0:
                p -= Vp[c + 1 :, :jj] @ (Wp[c + 1 :, :jj].T @ v)
                p -= Wp[c + 1 :, :jj] @ (Vp[c + 1 :, :jj].T @ v)
                flops += 8.0 * (n - c - 1) * jj
            w = tau * p
            w -= (0.5 * tau * float(w @ v)) * v
            Wp[c + 1 :, jj] = w
        t0 = j0 + jb
        mt = n - t0
        A[t0:, t0:] -= Vp[t0:] @ Wp[t0:].T + Wp[t0:] @ Vp[t0:].T
        flops += 4.0 * mt * mt * jb
        j0 += jb

    d = np.diagonal(A).copy()
    e = np.diagonal(A, -1).copy()
    total = flops + blas2
    return DirectTridiagResult(
        d=d, e=e, V=V, taus=taus, flops=total, blas2_flops=blas2
    )
