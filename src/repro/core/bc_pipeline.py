"""Pipelined multi-sweep bulge chasing — the GPU execution of Algorithm 2.

On the GPU the paper launches one thread block per sweep; sweep ``i+1``
spins on a volatile flag array until sweep ``i``'s working row is at least
``2b`` rows ahead (``gCom[i] + 2b > gCom[i-1]`` → wait).  In task terms,
sweep ``i``'s task ``t`` may execute once sweep ``i-1`` has completed task
``t + 2`` — i.e. a sweep starts after its predecessor has chased its first
**three** bulges (law ① of the Section 3.3 performance model).  Law ③ caps
the number of in-flight sweeps at the hardware's capacity ``S``.

This module executes that schedule **numerically**: tasks from up to ``S``
sweeps are interleaved in lockstep *rounds* (one bulge per active sweep per
round — a round is the "cycle" of the paper's performance model), using the
same kernel as the sequential driver.  Because interleaving only reorders
commuting (data-disjoint) tasks, the result is identical to sequential
bulge chasing — which the test suite asserts — while the recorded schedule
(rounds, occupancy, stalls) is what :mod:`repro.gpusim` prices and what the
Figure 5 / Figure 12 benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from .bulge_chasing import (
    BCReflector,
    BCTask,
    BulgeChasingResult,
    apply_bc_task,
    bc_task_flops,
    sweep_tasks,
)

__all__ = ["PipelineStats", "pipeline_schedule", "bulge_chase_pipelined"]

#: A sweep may start only after its predecessor chased this many bulges
#: (law 1 in Section 3.3; the 2b spin-lock distance of Algorithm 2).
SAFETY_TASKS = 3


@dataclass
class PipelineStats:
    """Schedule statistics of one pipelined bulge-chasing run.

    ``rounds``
        Total lockstep rounds = the "total cycles" of the Section 3.3
        model (each active sweep chases one bulge per round).
    ``occupancy``
        Number of tasks executed in each round (len == rounds).
    ``stall_rounds``
        Rounds in which at least one startable sweep was blocked by the
        in-flight cap ``S`` (law 3).
    ``task_rounds``
        Mapping ``(sweep, step) -> round`` for trace/timing consumers.
    """

    rounds: int = 0
    occupancy: list[int] = field(default_factory=list)
    stall_rounds: int = 0
    max_parallel: int = 0
    total_tasks: int = 0
    task_rounds: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def mean_parallel(self) -> float:
        return self.total_tasks / self.rounds if self.rounds else 0.0


def pipeline_schedule(
    n: int, b: int, max_sweeps: int | None = None
) -> tuple[list[list[BCTask]], PipelineStats]:
    """Compute the round-by-round pipelined schedule (no numerics).

    Parameters
    ----------
    n, b : int
        Matrix size and bandwidth.
    max_sweeps : int or None
        The in-flight sweep cap ``S`` (None = unbounded, i.e. hardware big
        enough for every sweep — the ``3n-2`` regime of the paper's model).

    Returns
    -------
    (rounds, stats)
        ``rounds[r]`` is the list of tasks executed in round ``r``; within
        a round tasks are ordered by sweep (a valid topological order).
    """
    all_sweeps = [sweep_tasks(n, b, i) for i in range(max(n - 2, 0))]
    all_sweeps = [s for s in all_sweeps if s]
    nsweeps = len(all_sweeps)
    ntasks = [len(s) for s in all_sweeps]
    S = max_sweeps if max_sweeps is not None else nsweeps
    if S < 1:
        raise ValueError("max_sweeps must be >= 1")

    completed = [0] * nsweeps  # tasks committed per sweep
    rounds: list[list[BCTask]] = []
    stats = PipelineStats(total_tasks=sum(ntasks))
    done_tasks = 0

    # Sweeps start strictly in order (sweep i's task 0 is blocked until
    # sweep i-1 is >= SAFETY_TASKS ahead, which implies it started), so the
    # live region is the window [first_active, started_count]: everything
    # below is finished, everything above cannot move yet.  Scanning only
    # that window makes the scheduler O(total_tasks + rounds * in_flight)
    # instead of O(rounds * nsweeps) — the difference between milliseconds
    # and seconds at n ~ 1000, for identical output.
    first_active = 0  # every sweep below this index is finished
    started_count = 0  # sweeps 0..started_count-1 have started
    in_flight = 0  # started and unfinished, as of the round snapshot

    while done_tasks < stats.total_tasks:
        lo = first_active
        hi = min(started_count + 1, nsweeps)  # only sweep started_count may start
        snapshot = completed[lo:hi]
        this_round: list[BCTask] = []
        stalled = False
        finished_this_round = 0
        for i in range(lo, hi):
            t = snapshot[i - lo]
            if t >= ntasks[i]:
                continue
            # Dependency on the predecessor sweep (law 1 / gCom rule);
            # predecessors below the window are finished and impose none.
            if i > lo or lo > 0:
                prev_done = snapshot[i - 1 - lo] if i > lo else ntasks[i - 1]
                if prev_done < ntasks[i - 1] and prev_done < t + SAFETY_TASKS:
                    continue
            # In-flight cap (law 3).
            if i == started_count:
                if in_flight >= S:
                    stalled = True
                    continue
                started_count += 1
                in_flight += 1
            this_round.append(all_sweeps[i][t])
            stats.task_rounds[(all_sweeps[i][t].sweep, t)] = len(rounds)
            completed[i] += 1
            if completed[i] == ntasks[i]:
                finished_this_round += 1
            done_tasks += 1
        if not this_round:  # pragma: no cover - schedule is deadlock-free
            raise RuntimeError("pipeline schedule deadlocked")
        # Finishes take effect at the next round's snapshot (law-3 slots
        # free up only once the flag array shows the sweep done).
        in_flight -= finished_this_round
        while first_active < nsweeps and completed[first_active] >= ntasks[first_active]:
            first_active += 1
        rounds.append(this_round)
        stats.occupancy.append(len(this_round))
        if stalled:
            stats.stall_rounds += 1

    stats.rounds = len(rounds)
    stats.max_parallel = max(stats.occupancy, default=0)
    return rounds, stats


def bulge_chase_pipelined(
    band: np.ndarray,
    b: int,
    max_sweeps: int | None = None,
    ctx: ExecutionContext | None = None,
) -> tuple[BulgeChasingResult, PipelineStats]:
    """Numerically execute bulge chasing in the pipelined schedule.

    Produces the same ``(d, e)`` and an equivalent reflector product as
    :func:`repro.core.bulge_chasing.bulge_chase` (the interleaving only
    swaps commuting tasks), plus the schedule statistics.

    Like the sequential driver this is a **host oracle** (scalar task
    loop); a ``ctx`` on a device backend stages the operand to the host.
    The backend-resident execution of the same schedule is
    :func:`repro.core.bc_wavefront.bulge_chase_wavefront`.
    """
    ctx = resolve_context(ctx)
    if not ctx.is_numpy and ctx.backend.owns(band):
        band = ctx.to_numpy(band)
    band = np.asarray(band)
    dt = band.dtype if band.dtype in (np.float32, np.float64) else np.float64
    A = np.array(band, dtype=dt, copy=True)
    n = A.shape[0]
    if b < 1:
        raise ValueError("bandwidth must be >= 1")
    reflectors: list[BCReflector] = []
    flops = 0.0
    if b >= 2 and n >= 3:
        rounds, stats = pipeline_schedule(n, b, max_sweeps)
        seq = 0
        for round_tasks in rounds:
            for task in round_tasks:
                off, v, tau = apply_bc_task(A, b, task)
                reflectors.append(
                    BCReflector(
                        sweep=task.sweep,
                        step=task.step,
                        offset=off,
                        v=v,
                        tau=tau,
                        seq=seq,
                    )
                )
                flops += bc_task_flops(task, n, b)
                seq += 1
    else:
        stats = PipelineStats()
    d = np.diagonal(A).copy()
    e = np.diagonal(A, -1).copy()
    return BulgeChasingResult(d=d, e=e, reflectors=reflectors, flops=flops), stats
