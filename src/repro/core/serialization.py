"""Save/load tridiagonalization results (NumPy ``.npz`` archives).

A factorization ``A = Q T Q^T`` is expensive; downstream workflows often
want to reuse the same ``Q`` (e.g. compute more eigenvector windows later
with :func:`repro.core.evd.eigh_partial`-style back transforms).  This
module round-trips a full :class:`~repro.core.tridiag.TridiagResult` —
including the SBR WY blocks and the bulge-chasing reflector log (kept in
stacked per-round form for wavefront-batched results, so a reloaded ``Q``
application is bit-identical) — through a single compressed ``.npz`` file.
"""

from __future__ import annotations

import pathlib

import numpy as np

from .bc_wavefront import BCWavefrontGroup, WavefrontBCResult
from .blocks import BandReductionResult, WYBlock
from .bulge_chasing import BCReflector, BulgeChasingResult
from .direct_tridiag import DirectTridiagResult
from .tile_sbr import TileBandReductionResult, TileReflector
from .tridiag import TridiagResult

__all__ = ["save_tridiag", "load_tridiag", "save_evd", "load_evd"]

_FORMAT_VERSION = 1
_EVD_FORMAT_VERSION = 1


def save_tridiag(path, result: TridiagResult) -> None:
    """Serialize ``result`` to ``path`` (``.npz``, compressed)."""
    data: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "d": result.d,
        "e": result.e,
        "method": np.array(result.method),
        "bandwidth": np.array(result.bandwidth),
        "bt_method": np.array(result.back_transform_method),
        "bt_group": np.array(result.back_transform_group),
    }
    if result.band_result is not None:
        br = result.band_result
        data["band"] = br.band
        data["band_flops"] = np.array(br.flops)
        data["block_offsets"] = np.array([b.offset for b in br.blocks], dtype=np.int64)
        data["block_widths"] = np.array([b.width for b in br.blocks], dtype=np.int64)
        data["block_rows"] = np.array([b.rows for b in br.blocks], dtype=np.int64)
        if br.blocks:
            data["block_W"] = np.concatenate([b.W.ravel() for b in br.blocks])
            data["block_Y"] = np.concatenate([b.Y.ravel() for b in br.blocks])
    if isinstance(result.bc_result, WavefrontBCResult):
        # Keep the stacked (per-round) form: a reloaded result then
        # replays ``apply_q1`` through the identical batched kernels,
        # so the round trip stays bit-exact.
        wf = result.bc_result
        groups = wf.round_groups
        data["bc_flops"] = np.array(wf.flops)
        data["wf_row_pad"] = np.array(wf.row_pad)
        data["wf_sizes"] = np.array([g.size for g in groups], dtype=np.int64)
        if groups:
            data["wf_offsets"] = np.concatenate([g.offsets for g in groups])
            data["wf_sweeps"] = np.concatenate([g.sweeps for g in groups])
            data["wf_steps"] = np.concatenate([g.steps for g in groups])
            data["wf_tau"] = np.concatenate([g.tau for g in groups])
            data["wf_V"] = np.concatenate([g.V for g in groups], axis=0)
    elif result.bc_result is not None:
        bc = result.bc_result
        refl = sorted(bc.reflectors, key=lambda r: r.seq)
        data["bc_flops"] = np.array(bc.flops)
        data["refl_sweep"] = np.array([r.sweep for r in refl], dtype=np.int64)
        data["refl_step"] = np.array([r.step for r in refl], dtype=np.int64)
        data["refl_offset"] = np.array([r.offset for r in refl], dtype=np.int64)
        data["refl_tau"] = np.array([r.tau for r in refl])
        data["refl_len"] = np.array([r.v.size for r in refl], dtype=np.int64)
        if refl:
            data["refl_v"] = np.concatenate([r.v for r in refl])
    if result.direct_result is not None:
        dr = result.direct_result
        data["direct_V"] = dr.V
        data["direct_taus"] = dr.taus
        data["direct_flops"] = np.array(dr.flops)
        data["direct_blas2"] = np.array(dr.blas2_flops)
    if result.tile_result is not None:
        tr = result.tile_result
        data["tile_band"] = tr.band
        refl = tr.reflectors
        data["tile_kinds"] = np.array([r.kind for r in refl])
        data["tile_row_lens"] = np.array([r.rows.size for r in refl], dtype=np.int64)
        data["tile_widths"] = np.array([r.W.shape[1] for r in refl], dtype=np.int64)
        if refl:
            data["tile_rows"] = np.concatenate([r.rows for r in refl])
            data["tile_W"] = np.concatenate([r.W.ravel() for r in refl])
            data["tile_Y"] = np.concatenate([r.Y.ravel() for r in refl])
    np.savez_compressed(pathlib.Path(path), **data)


def save_evd(path, result, A: np.ndarray | None = None) -> None:
    """Serialize an :class:`~repro.core.evd.EVDResult` to a compressed
    ``.npz`` archive: eigenvalues, eigenvectors (when computed), the
    solver tag, and — when given — the source matrix ``A`` so the file
    is self-contained for ``repro verify``.

    The tridiagonalization artifacts are intentionally *not* included
    (use :func:`save_tridiag` for those); an EVD archive carries exactly
    what re-verification needs.
    """
    data: dict[str, np.ndarray] = {
        "evd_format_version": np.array(_EVD_FORMAT_VERSION),
        "eigenvalues": np.asarray(result.eigenvalues),
        "solver": np.array(result.solver),
    }
    if result.eigenvectors is not None:
        data["eigenvectors"] = np.asarray(result.eigenvectors)
    if A is not None:
        data["source_matrix"] = np.asarray(A)
    np.savez_compressed(pathlib.Path(path), **data)


def load_evd(path):
    """Load an archive written by :func:`save_evd`.

    Returns ``(result, A)`` — the reconstructed
    :class:`~repro.core.evd.EVDResult` (``tridiag`` is always ``None``)
    and the stored source matrix, or ``None`` when the archive was saved
    without one.
    """
    from .evd import EVDResult

    with np.load(pathlib.Path(path), allow_pickle=False) as z:
        if "evd_format_version" not in z:
            raise ValueError(
                f"{path}: not an EVD archive (missing 'evd_format_version'; "
                "tridiagonalization archives load via load_tridiag)"
            )
        version = int(z["evd_format_version"])
        if version != _EVD_FORMAT_VERSION:
            raise ValueError(f"unsupported EVD format version {version}")
        result = EVDResult(
            eigenvalues=z["eigenvalues"].copy(),
            eigenvectors=z["eigenvectors"].copy() if "eigenvectors" in z else None,
            tridiag=None,
            solver=str(z["solver"]),
        )
        A = z["source_matrix"].copy() if "source_matrix" in z else None
    return result, A


def _load_blocks(z) -> list[WYBlock]:
    offsets = z["block_offsets"]
    widths = z["block_widths"]
    rows = z["block_rows"]
    blocks: list[WYBlock] = []
    if offsets.size == 0:
        return blocks
    flat_w = z["block_W"]
    flat_y = z["block_Y"]
    pos = 0
    for off, w, r in zip(offsets, widths, rows):
        size = int(w) * int(r)
        W = flat_w[pos : pos + size].reshape(int(r), int(w))
        Y = flat_y[pos : pos + size].reshape(int(r), int(w))
        blocks.append(WYBlock(W=W.copy(), Y=Y.copy(), offset=int(off)))
        pos += size
    return blocks


def _load_reflectors(z) -> list[BCReflector]:
    sweeps = z["refl_sweep"]
    if sweeps.size == 0:
        return []
    steps = z["refl_step"]
    offsets = z["refl_offset"]
    taus = z["refl_tau"]
    lens = z["refl_len"]
    flat_v = z["refl_v"]
    out: list[BCReflector] = []
    pos = 0
    for i in range(sweeps.size):
        length = int(lens[i])
        out.append(
            BCReflector(
                sweep=int(sweeps[i]),
                step=int(steps[i]),
                offset=int(offsets[i]),
                v=flat_v[pos : pos + length].copy(),
                tau=float(taus[i]),
                seq=i,
            )
        )
        pos += length
    return out


def load_tridiag(path) -> TridiagResult:
    """Reconstruct a :class:`TridiagResult` saved by :func:`save_tridiag`."""
    with np.load(pathlib.Path(path), allow_pickle=False) as z:
        version = int(z["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported format version {version}")
        d = z["d"]
        e = z["e"]
        method = str(z["method"])
        bandwidth = int(z["bandwidth"])
        band_result = None
        bc_result = None
        direct_result = None
        if "band" in z:
            band_result = BandReductionResult(
                band=z["band"],
                bandwidth=bandwidth,
                blocks=_load_blocks(z),
                flops=float(z["band_flops"]),
            )
        if "wf_sizes" in z:
            groups: list[BCWavefrontGroup] = []
            pos = 0
            for s in z["wf_sizes"]:
                s = int(s)
                groups.append(
                    BCWavefrontGroup(
                        offsets=z["wf_offsets"][pos : pos + s].copy(),
                        V=z["wf_V"][pos : pos + s].copy(),
                        tau=z["wf_tau"][pos : pos + s].copy(),
                        sweeps=z["wf_sweeps"][pos : pos + s].copy(),
                        steps=z["wf_steps"][pos : pos + s].copy(),
                    )
                )
                pos += s
            bc_result = WavefrontBCResult(
                d=d.copy(),
                e=e.copy(),
                round_groups=groups,
                flops=float(z["bc_flops"]),
                row_pad=int(z["wf_row_pad"]),
            )
        elif "refl_sweep" in z:
            bc_result = BulgeChasingResult(
                d=d.copy(),
                e=e.copy(),
                reflectors=_load_reflectors(z),
                flops=float(z["bc_flops"]),
            )
        if "direct_V" in z:
            direct_result = DirectTridiagResult(
                d=d.copy(),
                e=e.copy(),
                V=z["direct_V"],
                taus=z["direct_taus"],
                flops=float(z["direct_flops"]),
                blas2_flops=float(z["direct_blas2"]),
            )
        tile_result = None
        if "tile_band" in z:
            refl = []
            row_lens = z["tile_row_lens"]
            widths = z["tile_widths"]
            kinds = z["tile_kinds"]
            rpos = wpos = 0
            for i in range(row_lens.size):
                rl, w = int(row_lens[i]), int(widths[i])
                rows = z["tile_rows"][rpos : rpos + rl].copy()
                size = rl * w
                W = z["tile_W"][wpos : wpos + size].reshape(rl, w).copy()
                Y = z["tile_Y"][wpos : wpos + size].reshape(rl, w).copy()
                refl.append(TileReflector(rows=rows, W=W, Y=Y, kind=str(kinds[i])))
                rpos += rl
                wpos += size
            tile_result = TileBandReductionResult(
                band=z["tile_band"], bandwidth=bandwidth, reflectors=refl
            )
        return TridiagResult(
            d=d.copy(),
            e=e.copy(),
            method=method,
            bandwidth=bandwidth,
            band_result=band_result,
            tile_result=tile_result,
            bc_result=bc_result,
            direct_result=direct_result,
            back_transform_method=str(z["bt_method"]),
            back_transform_group=int(z["bt_group"]),
        )
