"""Shared result types for the band-reduction stage (SBR and DBBR).

Both reductions produce (a) a symmetric band matrix orthogonally similar to
the input and (b) an ordered list of embedded WY blocks whose product is the
similarity transform.  The back-transformation routines
(:mod:`repro.core.back_transform`) consume exactly this representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WYBlock", "BandReductionResult"]


@dataclass
class WYBlock:
    """One panel's orthogonal factor ``Q_p = I - W Y^T`` embedded at
    rows/columns ``offset .. n`` of the full matrix.

    ``W`` and ``Y`` are ``(n - offset) x width`` with ``Y`` unit lower
    trapezoidal (the Householder vectors) and ``W`` the forward-accumulated
    WY factor, so ``Q_p`` restricted to the trailing window is orthogonal.
    """

    W: np.ndarray
    Y: np.ndarray
    offset: int

    @property
    def width(self) -> int:
        return self.W.shape[1]

    @property
    def rows(self) -> int:
        return self.W.shape[0]

    def embed(self, n: int) -> np.ndarray:
        """Materialize the full ``n x n`` orthogonal matrix (tests only)."""
        Q = np.eye(n)
        Q[self.offset :, self.offset :] -= self.W @ self.Y.T
        return Q

    def apply_left(self, X: np.ndarray) -> None:
        """In place ``X <- Q_p X`` (rows ``offset:`` only are touched)."""
        sub = X[self.offset :, :]
        sub -= self.W @ (self.Y.T @ sub)

    def apply_left_transpose(self, X: np.ndarray) -> None:
        """In place ``X <- Q_p^T X``."""
        sub = X[self.offset :, :]
        sub -= self.Y @ (self.W.T @ sub)


@dataclass
class BandReductionResult:
    """Output of :func:`repro.core.sbr.sbr` / :func:`repro.core.dbbr.dbbr`.

    Satisfies ``A = Q @ band @ Q.T`` with ``Q = prod(blocks in order)``
    (block 0 leftmost), where ``band`` is symmetric with bandwidth
    ``bandwidth``.
    """

    band: np.ndarray
    bandwidth: int
    blocks: list[WYBlock] = field(default_factory=list)
    flops: float = 0.0

    @property
    def n(self) -> int:
        return self.band.shape[0]

    def q(self) -> np.ndarray:
        """Materialize the full similarity transform ``Q`` (for tests /
        small problems): ``Q = Q_0 Q_1 ... Q_{p-1}``."""
        Q = np.eye(self.n)
        # Q = Q_0 (Q_1 (... Q_{p-1} I)): apply rightmost block first.
        for blk in reversed(self.blocks):
            blk.apply_left(Q)
        return Q

    def reconstruct(self) -> np.ndarray:
        """``Q @ band @ Q^T`` — should reproduce the original matrix."""
        Q = self.q()
        return Q @ self.band @ Q.T
