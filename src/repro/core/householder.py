"""Householder reflectors and their blocked (WY / compact-WY) accumulations.

Everything in the two-stage tridiagonalization pipeline is built from
Householder transformations.  This module provides the scalar reflector
(`make_householder`), the three application kernels (left, right, symmetric
two-sided), and the two standard block accumulations:

* the **WY representation** ``H_1 H_2 ... H_k = I - W Y^T`` used by the paper
  (Section 2.1), built with the forward recurrence
  ``W_{k+1} = [W_k | tau (v - W_k Y_k^T v)]``;
* the **compact WY representation** ``I - V T V^T`` (LAPACK ``larft``),
  related to the former by ``W = V T`` when ``Y = V``.

Conventions follow LAPACK: a reflector is ``H = I - tau v v^T`` with
``v[0] == 1`` and ``H x = [beta, 0, ..., 0]^T``; ``tau == 0`` encodes the
identity (already-annihilated columns, important for deflation-heavy
matrices).  All kernels operate in FP64 — and *assert* it rather than
coercing: dtype conversion happens exactly once, at the
``tridiagonalize``/``eigh`` entry points, so per-call ``asarray`` copies
never hide a dtype bug in an inner loop.

:func:`make_householder` is the **scalar reference path** — by design the
one place in the hot pipeline that computes directly in host NumPy.  The
batched kernel takes an optional ``xp`` namespace
(:mod:`repro.backend.base`) so the wavefront engine can generate a whole
round's reflectors on any array backend.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import assert_f64

# make_householder squares entries directly (no scale-safe dnrm2), so the
# guard must fire while the *squares* are still full-precision normals:
# ||x|| below sqrt(tiny)/eps puts alpha^2 + sigma in the denormal range.
# The rescale factor itself is LAPACK dlarfg's 1/safmin.  The thresholds
# are per working precision (slarfg vs dlarfg): judging an fp32 vector
# against the fp64 threshold would never fire — fp32 squares underflow
# around 1e-38, ~100 orders of magnitude above the fp64 guard.
_RESCALE_BELOW = np.sqrt(np.finfo(np.float64).tiny) / np.finfo(np.float64).eps
_SAFE_MIN = np.finfo(np.float64).tiny / np.finfo(np.float64).eps
_INV_SAFE_MIN = 1.0 / _SAFE_MIN
_RESCALE_BELOW_F32 = float(
    np.sqrt(np.finfo(np.float32).tiny) / np.finfo(np.float32).eps
)
_SAFE_MIN_F32 = float(np.finfo(np.float32).tiny / np.finfo(np.float32).eps)
_INV_SAFE_MIN_F32 = 1.0 / _SAFE_MIN_F32


def _rescale_constants(dtype) -> tuple[float, float, float]:
    """(rescale_below, safe_min, 1/safe_min) for the working precision."""
    if np.dtype(dtype) == np.float32:
        return _RESCALE_BELOW_F32, _SAFE_MIN_F32, _INV_SAFE_MIN_F32
    return float(_RESCALE_BELOW), float(_SAFE_MIN), float(_INV_SAFE_MIN)

__all__ = [
    "make_householder",
    "batched_make_householder",
    "apply_householder_left",
    "apply_householder_right",
    "apply_householder_two_sided",
    "WYAccumulator",
    "accumulate_wy",
    "merge_wy",
    "larft",
    "build_q_from_wy",
    "build_q_from_compact_wy",
]


def make_householder(x: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Compute a Householder reflector annihilating ``x[1:]``.

    Returns ``(v, tau, beta)`` such that ``(I - tau v v^T) x = beta e_1``
    with ``v[0] == 1``.  Uses the sign convention ``beta = -sign(x[0])*||x||``
    to avoid cancellation.  If ``x[1:]`` is already (numerically) zero, the
    reflector is the identity: ``tau = 0`` and ``beta = x[0]``.

    Parameters
    ----------
    x : ndarray, shape (m,)
        The vector to reflect (float64; asserted, not converted).  Not
        modified.
    """
    x = np.asarray(x)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("make_householder expects a non-empty 1-D array")
    assert_f64(x, "make_householder input")
    m = x.size
    v = np.zeros(m, dtype=x.dtype)
    v[0] = 1.0
    if m == 1:
        return v, 0.0, float(x[0])
    sigma = float(np.dot(x[1:], x[1:]))
    alpha = float(x[0])
    if sigma == 0.0:
        return v, 0.0, alpha
    rescale_below, safe_min, inv_safe_min = _rescale_constants(x.dtype)
    beta = -np.copysign(np.sqrt(alpha * alpha + sigma), alpha)
    if abs(beta) < rescale_below:
        # ||x|| is in the range where the squared terms above lose their
        # precision to denormals.  LAPACK dlarfg's escape hatch: scale the
        # vector up into the safe range, build the (scale-invariant)
        # reflector there, and rescale only beta back down.
        tail = x[1:].copy()
        knt = 0
        while abs(beta) < rescale_below and knt < 20:
            tail *= inv_safe_min
            alpha *= inv_safe_min
            beta *= inv_safe_min
            knt += 1
        sigma = float(np.dot(tail, tail))
        beta = -np.copysign(np.sqrt(alpha * alpha + sigma), alpha)
        v0 = alpha - beta
        v[1:] = tail / v0
        tau = (beta - alpha) / beta
        for _ in range(knt):
            beta *= safe_min
        return v, float(tau), float(beta)
    v0 = alpha - beta
    v[1:] = x[1:] / v0
    tau = (beta - alpha) / beta
    return v, float(tau), float(beta)


def batched_make_householder(
    X: np.ndarray, xp=np
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute ``S`` independent Householder reflectors at once.

    The batched form of :func:`make_householder`, vectorized over the
    leading axis: row ``s`` of ``X`` yields ``(V[s], tau[s], beta[s])``
    with ``(I - tau[s] V[s] V[s]^T) X[s] = beta[s] e_1`` and
    ``V[s, 0] == 1``.  Same conventions and same stability choices as the
    scalar kernel (``beta`` sign against cancellation, ``tau == 0`` for
    already-annihilated rows); results agree with the scalar kernel to the
    last ulp up to the summation order of the inner products.

    This is the generation kernel of the wavefront-batched bulge chase
    (:mod:`repro.core.bc_wavefront`): every task of a pipeline round emits
    its reflector from one stacked call instead of ``S`` scalar ones.

    Parameters
    ----------
    X : ndarray, shape (S, m)
        One vector to reflect per row (float64; asserted, not converted).
        Not modified.
    xp : array namespace, optional
        Backend operation namespace (defaults to NumPy).  ``X`` must be a
        native array of the corresponding backend; the outputs are too.

    Returns
    -------
    (V, tau, beta) : arrays of shape (S, m), (S,), (S,)
    """
    if X.ndim != 2 or X.shape[1] == 0:
        raise ValueError("batched_make_householder expects a non-empty (S, m) array")
    assert_f64(X, "batched_make_householder input")
    S, m = X.shape
    V = xp.zeros((S, m), dtype=X.dtype)
    V[:, 0] = 1.0
    if m == 1:
        return V, xp.zeros(S, dtype=X.dtype), xp.copy(X[:, 0])
    sigma = xp.einsum("ij,ij->i", X[:, 1:], X[:, 1:])
    alpha = xp.copy(X[:, 0])
    nz = sigma != 0.0
    if nz.all():
        # Common case: no row is already annihilated, no guards needed.
        beta = -xp.copysign(xp.sqrt(alpha * alpha + sigma), alpha)
        V[:, 1:] = X[:, 1:] / (alpha - beta)[:, None]
        tau = (beta - alpha) / beta
        return V, tau, beta
    beta = xp.where(
        nz, -xp.copysign(xp.sqrt(alpha * alpha + sigma), alpha), alpha
    )
    # v0 = alpha - beta is nonzero exactly when sigma != 0; guard the
    # identity rows so the division stays silent (their numerators are 0).
    v0 = xp.where(nz, alpha - beta, 1.0)
    V[:, 1:] = X[:, 1:] / v0[:, None]
    tau = xp.where(nz, (beta - alpha) / xp.where(nz, beta, 1.0), 0.0)
    return V, tau, beta


def apply_householder_left(C: np.ndarray, v: np.ndarray, tau: float) -> None:
    """In-place ``C <- (I - tau v v^T) C`` (a rank-1 BLAS2 update)."""
    if tau == 0.0:
        return
    # w = tau * v^T C  (row vector); C -= outer(v, w)
    w = tau * (v @ C)
    C -= np.outer(v, w)


def apply_householder_right(C: np.ndarray, v: np.ndarray, tau: float) -> None:
    """In-place ``C <- C (I - tau v v^T)``."""
    if tau == 0.0:
        return
    w = tau * (C @ v)
    C -= np.outer(w, v)


def apply_householder_two_sided(B: np.ndarray, v: np.ndarray, tau: float) -> None:
    """In-place symmetric two-sided update ``B <- H B H`` for symmetric ``B``.

    Uses the symmetric rank-2 form (LAPACK ``latrd``-style):

        p = tau * B v
        w = p - (tau/2) (p^T v) v
        B <- B - v w^T - w v^T

    which costs one symv + one syr2 instead of two full GEMMs, and keeps
    ``B`` exactly symmetric in exact arithmetic.
    """
    if tau == 0.0:
        return
    p = tau * (B @ v)
    w = p - (0.5 * tau * float(p @ v)) * v
    B -= np.outer(v, w)
    B -= np.outer(w, v)


class WYAccumulator:
    """Incrementally build ``H_1 ... H_k = I - W Y^T`` (paper Section 2.1).

    ``append(v, tau)`` folds one reflector into the product using the
    recurrence ``W <- [W | tau (v - W (Y^T v))]``, ``Y <- [Y | v]``.

    Parameters
    ----------
    m : int
        Length of the reflector vectors.
    capacity : int, optional
        Pre-allocated number of columns (grows automatically otherwise).
    """

    def __init__(self, m: int, capacity: int = 8, dtype=np.float64):
        self.m = int(m)
        self.dtype = np.dtype(dtype)
        self._W = np.zeros((m, capacity), dtype=self.dtype)
        self._Y = np.zeros((m, capacity), dtype=self.dtype)
        self.k = 0

    def _grow(self) -> None:
        cap = self._W.shape[1]
        newW = np.zeros((self.m, 2 * cap), dtype=self.dtype)
        newY = np.zeros((self.m, 2 * cap), dtype=self.dtype)
        newW[:, :cap] = self._W
        newY[:, :cap] = self._Y
        self._W, self._Y = newW, newY

    def append(self, v: np.ndarray, tau: float) -> None:
        """Fold reflector ``I - tau v v^T`` onto the right of the product."""
        if v.shape != (self.m,):
            raise ValueError(f"reflector length {v.shape} != accumulator size {self.m}")
        if self.k == self._W.shape[1]:
            self._grow()
        k = self.k
        if k == 0:
            self._W[:, 0] = tau * v
        else:
            coeff = self._Y[:, :k].T @ v  # Y^T v
            self._W[:, k] = tau * (v - self._W[:, :k] @ coeff)
        self._Y[:, k] = v
        self.k += 1

    @property
    def W(self) -> np.ndarray:
        """The current ``W`` factor, shape ``(m, k)`` (a view)."""
        return self._W[:, : self.k]

    @property
    def Y(self) -> np.ndarray:
        """The current ``Y`` factor, shape ``(m, k)`` (a view)."""
        return self._Y[:, : self.k]

    def q(self) -> np.ndarray:
        """Materialize the full orthogonal factor ``I - W Y^T``."""
        return build_q_from_wy(self.W, self.Y)


def accumulate_wy(V: np.ndarray, taus: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate reflectors ``(V, taus)`` into WY form ``(W, Y)``.

    ``V`` holds the reflector vectors as columns (``v[0] == 1`` each), so
    ``Y == V`` and ``W`` follows the forward recurrence.  Equivalent to
    repeatedly calling :meth:`WYAccumulator.append` but returned as fresh
    arrays.
    """
    V = np.asarray(V)
    if V.dtype not in (np.float32, np.float64):
        V = V.astype(np.float64)
    m, k = V.shape
    acc = WYAccumulator(m, capacity=max(k, 1), dtype=V.dtype)
    for j in range(k):
        acc.append(V[:, j], float(taus[j]))
    return acc.W.copy(), acc.Y.copy()


def merge_wy(
    W1: np.ndarray, Y1: np.ndarray, W2: np.ndarray, Y2: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two WY blocks: ``(I - W1 Y1^T)(I - W2 Y2^T) = I - W Y^T``.

    This is the kernel of the paper's Algorithm 3 (recursive back
    transformation):

        W = [W1 | W2 - W1 (Y1^T W2)],   Y = [Y1 | Y2].
    """
    cross = Y1.T @ W2
    W = np.hstack([W1, W2 - W1 @ cross])
    Y = np.hstack([Y1, Y2])
    return W, Y


def larft(V: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Form the compact-WY triangular factor ``T`` with ``Q = I - V T V^T``.

    LAPACK ``larft`` forward/columnwise: ``T`` is ``k x k`` upper triangular,

        T[:j, j] = -tau_j * T[:j, :j] @ (V[:, :j]^T V[:, j])
        T[j, j]  = tau_j
    """
    V = np.asarray(V)
    if V.dtype not in (np.float32, np.float64):
        V = V.astype(np.float64)
    k = V.shape[1]
    T = np.zeros((k, k), dtype=V.dtype)
    for j in range(k):
        tau = float(taus[j])
        T[j, j] = tau
        if j > 0 and tau != 0.0:
            T[:j, j] = -tau * (T[:j, :j] @ (V[:, :j].T @ V[:, j]))
    return T


def build_q_from_wy(W: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Materialize ``Q = I - W Y^T`` (mostly for tests / small matrices)."""
    m = W.shape[0]
    return np.eye(m, dtype=W.dtype) - W @ Y.T


def build_q_from_compact_wy(V: np.ndarray, T: np.ndarray) -> np.ndarray:
    """Materialize ``Q = I - V T V^T`` from compact-WY factors."""
    m = V.shape[0]
    return np.eye(m, dtype=V.dtype) - V @ (T @ V.T)
