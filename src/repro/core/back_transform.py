"""Back transformation: assembling eigenvectors from the reduction factors.

After the two-stage reduction ``A = Q_sbr (Q1 T Q1^T) Q_sbr^T`` and the
tridiagonal solve ``T = U Lambda U^T``, the eigenvectors of ``A`` are

    V = Q_sbr @ Q1 @ U.

``Q1`` (bulge chasing) is applied reflector-by-reflector
(:meth:`repro.core.bulge_chasing.BulgeChasingResult.apply_q1`); this module
provides the **SBR back transformation** ``X <- Q_sbr X`` in the three
flavours the paper compares:

* ``"blocked"`` — the conventional ``ormqr`` order: one width-``b`` GEMM
  pair per panel (``Q = Q x (I - W_i Y_i^T)`` in sequence).  On a GPU every
  GEMM has inner dimension ``b`` — the skinny shape of Section 4.3.
* ``"recursive"`` — Algorithm 3: recursively merge *all* WY blocks into a
  single ``(W, Y)`` with ``W = [W1 | W2 - W1 Y1^T W2]``, then apply once.
  Squarest GEMMs, but forms the entire ``n x n_b`` ``W`` (extra flops).
* ``"incremental"`` — the optimized scheme of Figure 13: merge blocks
  pairwise (a batched-GEMM tree) only until each group reaches width
  ``group_width`` (the paper uses ``k = 2048``), then apply the groups in
  sequence.  This bounds the extra flops while keeping the GEMM inner
  dimension large.

All three produce the same ``Q_sbr`` to machine precision; the tests assert
it and the Figure 14 bench prices them.
"""

from __future__ import annotations

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from .blocks import WYBlock
from .bulge_chasing import BulgeChasingResult

__all__ = [
    "apply_sbr_q",
    "apply_sbr_q_transpose",
    "q_from_blocks",
    "merge_blocks_recursive",
    "merge_blocks_grouped",
    "assemble_eigenvectors",
]


def _embed(
    block: WYBlock, n: int, ctx: ExecutionContext
) -> tuple[np.ndarray, np.ndarray]:
    """Zero-pad a block's (W, Y) to full ``n`` rows so blocks with different
    trailing windows share one row space (the padding preserves the
    product algebra exactly)."""
    xp = ctx.xp
    dt = block.W.dtype if block.W.dtype in (np.float32, np.float64) else np.float64
    W = xp.zeros((n, block.width), dtype=dt)
    Y = xp.zeros((n, block.width), dtype=dt)
    W[block.offset :] = ctx.from_numpy(block.W)
    Y[block.offset :] = ctx.from_numpy(block.Y)
    return W, Y


def _merge(
    W1: np.ndarray, Y1: np.ndarray, W2: np.ndarray, Y2: np.ndarray, xp=np
) -> tuple[np.ndarray, np.ndarray]:
    """(I - W1 Y1^T)(I - W2 Y2^T) = I - [W1 | W2 - W1 (Y1^T W2)] [Y1 | Y2]^T."""
    return (
        xp.hstack([W1, W2 - W1 @ (Y1.T @ W2)]),
        xp.hstack([Y1, Y2]),
    )


def merge_blocks_recursive(
    blocks: list[WYBlock], n: int, ctx: ExecutionContext | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 3: merge every WY block into one ``(W, Y)`` pair.

    Returns global-row factors with ``Q_sbr = I - W Y^T``, allocated on
    the context's backend.  Divide and conquer over the block list keeps
    the merge GEMMs as square as possible (the paper's ``ComputeW``).
    """
    ctx = resolve_context(ctx)
    xp = ctx.xp
    if not blocks:
        return xp.zeros((n, 0)), xp.zeros((n, 0))

    def rec(lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        if hi - lo == 1:
            return _embed(blocks[lo], n, ctx)
        mid = (lo + hi) // 2
        Wl, Yl = rec(lo, mid)
        Wr, Yr = rec(mid, hi)
        return _merge(Wl, Yl, Wr, Yr, xp)

    return rec(0, len(blocks))


def merge_blocks_grouped(
    blocks: list[WYBlock],
    n: int,
    group_width: int,
    ctx: ExecutionContext | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Figure 13: merge consecutive blocks pairwise until each group's WY
    width reaches ``group_width`` (e.g. 2048), never forming the full W.

    Returns the group list in product order:
    ``Q_sbr = prod_g (I - W_g Y_g^T)``, with each pair allocated on the
    context's backend.  Each merge level is a batch of independent GEMMs
    — the "batched GEMM" the paper calls out.
    """
    if group_width < 1:
        raise ValueError("group_width must be >= 1")
    ctx = resolve_context(ctx)
    xp = ctx.xp
    groups = [_embed(b, n, ctx) for b in blocks]
    while len(groups) > 1:
        widths = [w.shape[1] for w, _ in groups]
        if all(w >= group_width for w in widths[:-1]):
            break
        nxt: list[tuple[np.ndarray, np.ndarray]] = []
        i = 0
        while i < len(groups):
            if (
                i + 1 < len(groups)
                and groups[i][0].shape[1] < group_width
            ):
                nxt.append(_merge(*groups[i], *groups[i + 1], xp))
                i += 2
            else:
                nxt.append(groups[i])
                i += 1
        groups = nxt
    return groups


def apply_sbr_q(
    blocks: list[WYBlock],
    X: np.ndarray,
    method: str = "blocked",
    group_width: int = 128,
    ctx: ExecutionContext | None = None,
) -> None:
    """In place ``X <- Q_sbr X`` with ``Q_sbr = Q_0 Q_1 ... Q_{p-1}``.

    ``method`` selects the schedule (see module docstring); all methods are
    numerically equivalent.  ``X`` is a host array; with a non-host
    backend it is staged to the device for the GEMMs and written back.
    """
    ctx = resolve_context(ctx)
    n = X.shape[0]
    Xd = X if ctx.is_numpy else ctx.from_numpy(np.ascontiguousarray(X))
    if method == "blocked":
        if ctx.is_numpy:
            for blk in reversed(blocks):
                blk.apply_left(X)
        else:
            for blk in reversed(blocks):
                W, Y = ctx.from_numpy(blk.W), ctx.from_numpy(blk.Y)
                sub = Xd[blk.offset :]
                sub -= W @ (Y.T @ sub)
    elif method == "recursive":
        W, Y = merge_blocks_recursive(blocks, n, ctx=ctx)
        Xd -= W @ (Y.T @ Xd)
    elif method == "incremental":
        for W, Y in reversed(merge_blocks_grouped(blocks, n, group_width, ctx=ctx)):
            Xd -= W @ (Y.T @ Xd)
    else:
        raise ValueError(f"unknown back-transform method {method!r}")
    if Xd is not X:
        X[...] = ctx.to_numpy(Xd)


def apply_sbr_q_transpose(
    blocks: list[WYBlock],
    X: np.ndarray,
    method: str = "blocked",
    group_width: int = 128,
    ctx: ExecutionContext | None = None,
) -> None:
    """In place ``X <- Q_sbr^T X`` (forward block order)."""
    ctx = resolve_context(ctx)
    n = X.shape[0]
    Xd = X if ctx.is_numpy else ctx.from_numpy(np.ascontiguousarray(X))
    if method == "blocked":
        if ctx.is_numpy:
            for blk in blocks:
                blk.apply_left_transpose(X)
        else:
            for blk in blocks:
                W, Y = ctx.from_numpy(blk.W), ctx.from_numpy(blk.Y)
                sub = Xd[blk.offset :]
                sub -= Y @ (W.T @ sub)
    elif method == "recursive":
        W, Y = merge_blocks_recursive(blocks, n, ctx=ctx)
        Xd -= Y @ (W.T @ Xd)
    elif method == "incremental":
        for W, Y in merge_blocks_grouped(blocks, n, group_width, ctx=ctx):
            Xd -= Y @ (W.T @ Xd)
    else:
        raise ValueError(f"unknown back-transform method {method!r}")
    if Xd is not X:
        X[...] = ctx.to_numpy(Xd)


def q_from_blocks(
    blocks: list[WYBlock],
    n: int,
    method: str = "blocked",
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """Materialize ``Q_sbr`` (tests / small problems)."""
    Q = np.eye(n)
    apply_sbr_q(blocks, Q, method=method, ctx=ctx)
    return Q


def assemble_eigenvectors(
    blocks: list[WYBlock],
    bc: BulgeChasingResult,
    U: np.ndarray,
    method: str = "blocked",
    group_width: int = 128,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """Full eigenvector back transformation ``V = Q_sbr (Q1 U)``.

    ``U`` holds the tridiagonal eigenvectors (columns).  Returns a new
    host array; ``U`` is not modified.  ``Q1`` is applied on the host
    (scalar reflector replay); the SBR factor runs on the context's
    backend.
    """
    ctx = resolve_context(ctx)
    U = np.asarray(U)
    dt = U.dtype if U.dtype in (np.float32, np.float64) else np.float64
    V = np.array(U, dtype=dt, copy=True)
    bc.apply_q1(V)
    apply_sbr_q(blocks, V, method=method, group_width=group_width, ctx=ctx)
    return V
