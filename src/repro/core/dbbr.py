"""Double-blocking band reduction (DBBR) — the paper's Algorithm 1.

DBBR decouples the ``syr2k`` inner dimension from the bandwidth by using
*two* block sizes:

* ``b`` — the target bandwidth (kept small, e.g. 32, so the subsequent
  bulge chasing is fast);
* ``k`` — the *second* block size (large, e.g. 1024): the trailing-matrix
  update is deferred across ``k / b`` consecutive panels and then applied
  as a single rank-``2k`` update, where the GPU's ``syr2k`` is efficient
  (Table 1: on H100, k=64 → ~13 TFLOPs but k=1024 → ~43 TFLOPs).

Within an outer block, after each width-``b`` panel QR we only bring the
*next* panel up to date (Algorithm 1 lines 8–12, the "green panel"), using
the accumulated ``(Z, Y)`` pairs; the full trailing matrix beyond column
``i + k`` receives one accumulated update at the end of the outer block
(line 15).  Because later panels are factorized against a matrix that has
not yet received earlier panels' two-sided updates, the ``Z`` vector of a
later panel is computed against the *virtually updated* trailing matrix:

    B_cur = A_stored - Y_acc Z_acc^T - Z_acc Y_acc^T
    P     = B_cur W = A_stored W - Y_acc (Z_acc^T W) - Z_acc (Y_acc^T W)
    Z     = P - (1/2) Y (W^T P)

— three extra skinny GEMMs per panel, which is exactly the look-ahead
arithmetic MAGMA's two-stage reduction performs and the paper folds into
the DBBR cost.

The deferred update may be executed with any of the syr2k schedules from
:mod:`repro.core.syr2k`; the paper pairs DBBR with the Figure-7
square-block schedule.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from .blocks import BandReductionResult, WYBlock
from .panel_qr import panel_qr_wy
from .syr2k import syr2k_rect_blocked, syr2k_reference, syr2k_square_blocked

__all__ = ["dbbr"]

Syr2kKind = Literal["reference", "rect", "square"]


def _syr2k_apply(
    kind: Syr2kKind,
    C: np.ndarray,
    Y: np.ndarray,
    Z: np.ndarray,
    ctx: ExecutionContext,
) -> np.ndarray:
    """Dispatch ``C - Y Z^T - Z Y^T`` to the requested schedule."""
    if kind == "reference":
        return syr2k_reference(C, Y, Z, alpha=-1.0, ctx=ctx)
    out = ctx.xp.array(C, copy=True)
    if kind == "rect":
        syr2k_rect_blocked(out, Y, Z, alpha=-1.0, ctx=ctx)
    elif kind == "square":
        syr2k_square_blocked(out, Y, Z, alpha=-1.0, ctx=ctx)
    else:  # pragma: no cover - guarded by Literal
        raise ValueError(f"unknown syr2k kind {kind!r}")
    return out


def dbbr(
    A: np.ndarray,
    bandwidth: int,
    second_block: int,
    syr2k_kind: Syr2kKind = "square",
    ctx: ExecutionContext | None = None,
) -> BandReductionResult:
    """Reduce symmetric ``A`` to bandwidth ``b`` with double blocking.

    Parameters
    ----------
    A : (n, n) ndarray
        Symmetric input (not modified).
    bandwidth : int
        First block size ``b`` = target bandwidth.
    second_block : int
        Second block size ``k``; the deferred update spans ``k`` columns.
        Must be a positive multiple of ``bandwidth`` (the paper uses
        ``b = 32, k = 1024``).  ``k == b`` degenerates to classic SBR.
    syr2k_kind : {"square", "rect", "reference"}
        Which schedule executes the deferred rank-2k update.
    ctx : ExecutionContext, optional
        Execution context; BLAS3 work (accumulated GEMMs and the deferred
        rank-2k update) runs on its backend, panel QR stays on the host.

    Returns
    -------
    BandReductionResult
        ``A == Q @ band @ Q.T``; WY blocks are recorded per panel, in
        factorization order, exactly as SBR records them (so the two are
        interchangeable for back transformation; host arrays regardless
        of backend).
    """
    ctx = resolve_context(ctx)
    xp = ctx.xp
    A = xp.array(ctx.asarray(A), copy=True)
    n = A.shape[0]
    b = int(bandwidth)
    k = int(second_block)
    if b < 1:
        raise ValueError("bandwidth must be >= 1")
    if k < b or k % b != 0:
        raise ValueError(f"second_block ({k}) must be a positive multiple of bandwidth ({b})")

    blocks: list[WYBlock] = []
    flops = 0.0
    nelim = max(0, n - b - 1)

    i = 0
    while i < nelim:
        kk = min(k, nelim - i)
        # Global-row accumulators for this outer block (zero above each
        # panel's own starting row, so one GEMM covers all panels).
        Yacc = xp.zeros((n, 0), dtype=A.dtype)
        Zacc = xp.zeros((n, 0), dtype=A.dtype)

        j = i
        while j < i + kk:
            bw = min(b, i + kk - j)
            r0 = j + b
            m = n - r0
            rows = slice(r0, n)

            if Yacc.shape[1] > 0:
                # Lazy "green panel" update: bring the about-to-be-
                # factorized panel columns up to date with every
                # accumulated (Z, Y) pair (Algorithm 1 lines 8-12).  Rows
                # start at ``j`` (not ``j+b``) so the in-band diagonal
                # block receives its update too; the zero padding of the
                # global accumulators masks each pair to its own trailing
                # window automatically.
                urows = slice(j, n)
                cols = slice(j, j + bw)
                upd = Yacc[urows] @ Zacc[cols].T + Zacc[urows] @ Yacc[cols].T
                A[urows, cols] -= upd
                A[cols, urows] = xp.copy(A[urows, cols].T)
                flops += 4.0 * (n - j) * bw * Yacc.shape[1]

            # Host-side panel factorization (BLAS2-bound, narrow).
            W, Y, R = panel_qr_wy(ctx.to_numpy(A[rows, j : j + bw]))
            flops += 2.0 * m * bw * bw
            Wd, Yd = ctx.from_numpy(W), ctx.from_numpy(Y)

            A[rows, j : j + bw] = 0.0
            A[r0 : r0 + bw, j : j + bw] = ctx.from_numpy(R)
            A[j : j + bw, rows] = A[rows, j : j + bw].T

            # Z against the virtually updated trailing matrix.
            P = A[rows, rows] @ Wd
            flops += 2.0 * m * m * bw
            if Yacc.shape[1] > 0:
                P -= Yacc[rows] @ (Zacc[rows].T @ Wd)
                P -= Zacc[rows] @ (Yacc[rows].T @ Wd)
                flops += 8.0 * m * bw * Yacc.shape[1]
            Z = P - 0.5 * Yd @ (Wd.T @ P)
            flops += 4.0 * m * bw * bw

            Yg = xp.zeros((n, bw), dtype=A.dtype)
            Zg = xp.zeros((n, bw), dtype=A.dtype)
            Yg[rows] = Yd
            Zg[rows] = Z
            Yacc = xp.hstack([Yacc, Yg])
            Zacc = xp.hstack([Zacc, Zg])

            blocks.append(WYBlock(W=W, Y=Y, offset=r0))
            last_panel = (Wd, Yd, r0, bw)
            j += bw

        # Deferred rank-2k trailing update (Algorithm 1 line 15) — the
        # syr2k now runs with inner dimension kk instead of b.  The zero
        # padding of the accumulators masks each pair to its own trailing
        # window, so one accumulated update is exact.
        t0 = i + kk
        mt = n - t0
        if mt > 0 and Yacc.shape[1] > 0:
            A[t0:, t0:] = _syr2k_apply(
                syr2k_kind, A[t0:, t0:], Yacc[t0:], Zacc[t0:], ctx
            )
            flops += 2.0 * mt * mt * Yacc.shape[1]

        Wl, Yl, r0l, bwl = last_panel
        if bwl < b:
            # Short (final) panel: the in-band columns t0 .. r0l-1 lie to
            # the left of the last reflector window and receive only its
            # left-side update Q^T S.  Earlier pairs' (two-sided, masked)
            # contributions were just applied by the accumulated syr2k, so
            # applying the left factor now preserves the operator order.
            S = A[r0l:, t0:r0l]
            S -= Yl @ (Wl.T @ S)
            A[t0:r0l, r0l:] = S.T
        i += kk

    _zero_off_band(A, b, xp)
    return BandReductionResult(
        band=ctx.to_numpy(A), bandwidth=b, blocks=blocks, flops=flops
    )


def _zero_off_band(A, b: int, xp=np) -> None:
    n = A.shape[0]
    i = xp.arange(n)
    A[xp.abs(i[:, None] - i[None, :]) > b] = 0.0
