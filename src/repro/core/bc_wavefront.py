"""Wavefront-batched bulge chasing — each pipeline round as one stacked op.

The pipelined schedule of :mod:`repro.core.bc_pipeline` proves that many
sweeps can chase bulges concurrently under the ``2b`` spin-lock rule, but
executing that schedule one task at a time in Python leaves all the
parallelism on the table: the "pipelined" driver performs the same number
of tiny NumPy calls as the sequential one and BC dominates every
wall-clock benchmark (the Figure 4 pathology the paper sets out to fix).

This module executes the schedule the way the paper's GPU does — one wide
operation per round — on a ``(2b+1) x (n + 3b)`` band-plus-bulge working
array (:class:`repro.band.storage.LowerBandStorage` convention, with
``3b`` zero padding columns so edge-clipped tasks keep full geometry).
The tasks of a round are pairwise data-disjoint (the spin-lock distance
separates their windows), so each round:

1. **gathers** the entries each task actually touches — the annihilated
   column and the ``b x (w-1)`` *parallelogram* ``A[row0:row0+b,
   col:col+w)`` — straight out of the packed band with one flat-index
   take (symmetric single-copy storage: no mirrored second copy ever
   moves);
2. generates the round's reflectors with one **batched Householder**
   (same arithmetic as
   :func:`repro.core.householder.batched_make_householder`);
3. applies the left update to the whole parallelogram stack and the
   right update to the diagonal-block slice (reading the left-updated
   values, as the dense kernel's aliased views do) as batched matmuls —
   the one-kernel-per-round execution of the paper's Algorithm 2, in
   NumPy dress; and
4. **scatters** the stacks back through the same cached index template.

Chase tasks (``t >= 1``) and the round's (at most one) sweep-start task
(``t = 0``) have different window shapes, but both are normalized onto a
single ``(b, 3b)`` index template — annihilated column first, diagonal
block last, the narrower start window padded with *dump* columns aimed
at the never-touched row ``2b`` of the working array — so the whole
round really is **one** gather / Householder / update / scatter.  Index
templates are built once, every workspace is preallocated and reused,
and steady-state rounds allocate almost nothing.

Reflectors stay in stacked form (:class:`BCWavefrontGroup`, one group
per round), which makes the BC back transformation — the Section 6.2
bottleneck — batch identically: a round's reflectors act on pairwise
disjoint row windows, so ``apply_q1`` applies a whole round to the
eigenvector matrix in one batched rank-1 update instead of ``S`` scalar
ones.

The result is numerically the same chase as the sequential oracle
(:func:`repro.core.bulge_chasing.bulge_chase`): the schedule only
reorders commuting tasks and the batched kernels perform the same
floating-point work per task up to summation order of the inner products
(``allclose`` at 1e-12; asserted over the test grid).  The sequential
driver remains the correctness reference the tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from .bc_pipeline import SAFETY_TASKS, PipelineStats, pipeline_schedule
from .bulge_chasing import BCReflector, BulgeChasingResult
from .householder import batched_make_householder

__all__ = [
    "BCWavefrontGroup",
    "WavefrontBCResult",
    "bulge_chase_wavefront",
]


@dataclass
class BCWavefrontGroup:
    """Reflectors of one pipeline round, in stacked form.

    Row ``s`` encodes ``H_s = I - tau[s] V[s] V[s]^T`` acting on global
    rows ``[offsets[s], offsets[s] + V.shape[1])``.  All row windows of a
    round are pairwise disjoint (the spin-lock rule separates in-flight
    sweeps by ``>= 2b - 1`` rows), so the ``H_s`` commute and the whole
    round can be applied as one stacked update.

    Edge-clipped reflectors are zero-padded to the group length, so
    ``offsets[s] + length`` may exceed ``n``; callers apply groups to a
    row-padded target (see :meth:`WavefrontBCResult.apply_q1`).
    """

    offsets: np.ndarray  # (S,) int64 — global first row of each reflector
    V: np.ndarray  # (S, m) — reflector vectors, V[:, 0] == 1
    tau: np.ndarray  # (S,)
    sweeps: np.ndarray  # (S,) int64
    steps: np.ndarray  # (S,) int64

    @property
    def size(self) -> int:
        return self.offsets.size

    @property
    def length(self) -> int:
        return self.V.shape[1]

    def apply(self, X: np.ndarray) -> None:
        """In place ``X <- (prod_s H_s) X`` (order irrelevant: disjoint rows).

        ``X`` must have at least ``offsets.max() + length`` rows.
        """
        m = self.V.shape[1]
        if self.size == 1:
            off = int(self.offsets[0])
            v = self.V[0]
            sub = X[off : off + m, :]
            sub -= np.outer(float(self.tau[0]) * v, v @ sub)
            return
        rows = self.offsets[:, None] + np.arange(m)[None, :]
        sub = X[rows]  # (S, m, k) gather
        w = np.matmul(self.V[:, None, :], sub)  # (S, 1, k)
        sub -= (self.tau[:, None] * self.V)[:, :, None] * w
        X[rows] = sub


class WavefrontBCResult(BulgeChasingResult):
    """Bulge-chasing result in stacked (wavefront) reflector form.

    Drop-in compatible with :class:`BulgeChasingResult` — ``reflectors``
    materializes the scalar log lazily (round-major commit order, a valid
    topological order of the task DAG, with the zero padding of
    edge-clipped reflectors trimmed off) — while ``apply_q1`` /
    ``apply_q1_transpose`` replay the stacked groups directly: one batched
    update per round instead of one rank-1 update per reflector.
    """

    def __init__(
        self,
        d: np.ndarray,
        e: np.ndarray,
        round_groups: list[BCWavefrontGroup],
        flops: float = 0.0,
        row_pad: int = 0,
    ):
        self.d = d
        self.e = e
        self.flops = flops
        self.round_groups = round_groups
        self.row_pad = row_pad  # max rows a padded reflector hangs past n
        self._materialized: list[BCReflector] | None = None

    @property
    def reflectors(self) -> list[BCReflector]:  # type: ignore[override]
        if self._materialized is None:
            n = self.d.size
            refl: list[BCReflector] = []
            seq = 0
            for g in self.round_groups:
                m = g.length
                for s in range(g.size):
                    off = int(g.offsets[s])
                    refl.append(
                        BCReflector(
                            sweep=int(g.sweeps[s]),
                            step=int(g.steps[s]),
                            offset=off,
                            v=g.V[s, : min(m, n - off)].copy(),
                            tau=float(g.tau[s]),
                            seq=seq,
                        )
                    )
                    seq += 1
            self._materialized = refl
        return self._materialized

    @reflectors.setter
    def reflectors(self, value) -> None:
        self._materialized = list(value) if value is not None else None

    @property
    def num_reflectors(self) -> int:
        """Reflector count without materializing the scalar log."""
        return sum(g.size for g in self.round_groups)

    def _replay(self, X: np.ndarray, reverse: bool) -> None:
        n = X.shape[0]
        pad = self.row_pad
        if pad:
            Xw = np.zeros((n + pad, X.shape[1]), dtype=X.dtype)
            Xw[:n] = X
        else:
            Xw = X
        groups = reversed(self.round_groups) if reverse else self.round_groups
        for g in groups:
            g.apply(Xw)
        if pad:
            X[:] = Xw[:n]

    def apply_q1(self, X: np.ndarray) -> None:
        """In place ``X <- Q1 X``, one batched update per round.

        ``Q1`` is the seq-ordered reflector product, so rounds are applied
        in reverse; within a round the reflectors commute (disjoint rows)
        and go on in one stacked operation — the wavefront batching of the
        BC back transformation.
        """
        self._replay(X, reverse=True)

    def apply_q1_transpose(self, X: np.ndarray) -> None:
        """In place ``X <- Q1^T X`` (forward round order)."""
        self._replay(X, reverse=False)


class _RoundKernel:
    """Index templates + reused workspaces for one round's stacked tasks.

    A task's window, relative to its annihilated column ``col``, is the
    reflector-row strip ``[col+sl, col+sl+b)`` over columns ``[col,
    col+wn)``: sweep-start tasks have ``(sl, wn) = (1, 2b+1)``, chase
    tasks ``(b, 3b)`` — uniform at every edge because the working band
    carries ``3b`` zero padding columns, so clipped tasks read/write
    zeros beyond ``n`` with no effect (their reflector tails come out
    zero).

    Window entry ``(i, j) = A[col+sl+i, col+j]``; by symmetry the stored
    copy sits at flat ``|sl+i-j| * npad + col + min(sl+i, j)``.  Both
    geometries are normalized onto one ``(b, 3b)`` template so a round is
    one stacked call:

    * column 0 is the annihilated column (one gather serves the batched
      Householder and the update);
    * the diagonal-block columns are permuted to the *end* — the right
      update then hits a contiguous trailing slice (the gather does not
      care about column order);
    * the narrower start template is padded with *dump* columns aimed at
      row ``2b`` of the working array, which no task ever touches (fill
      depth is at most ``2b - 1``): they gather zeros, update to zeros,
      and scatter zeros back.

    Templates are int64 — fancy indexing recasts anything narrower to
    intp on every call — and all workspaces are preallocated and reused
    (served from the execution context's :class:`~repro.backend.context.
    WorkspacePool`, so they live on the backend).  Schedule/index math
    stays host NumPy; only the per-round index stack crosses to the
    backend, together with the gathered values it addresses.
    """

    def __init__(self, b: int, npad: int, ctx: ExecutionContext, dtype=np.float64):
        self.b = b
        self.w = 3 * b
        self.ctx = ctx
        self.xp = ctx.xp
        # Host-side working dtype of the band values: the round buffers
        # and reflector stacks must match the band's precision.
        self.dtype = np.dtype(dtype)
        self._dump = 2 * b * npad  # flat slot in the never-touched row 2b
        self.chase_tmpl = self._template(npad, sl=b, wn=3 * b)
        self.start_tmpl = self._template(npad, sl=1, wn=2 * b + 1)
        self._cap = 0

    def _template(self, npad: int, sl: int, wn: int) -> np.ndarray:
        b, w = self.b, self.w
        i = np.arange(b, dtype=np.int64)[:, None]
        j = np.arange(wn, dtype=np.int64)[None, :]
        tm = np.abs(sl + i - j) * npad + np.minimum(sl + i, j)
        cols = [0] + [c for c in range(1, wn) if not sl <= c < sl + b]
        full = np.full((b, w), self._dump, dtype=np.int64)
        full[:, : len(cols)] = tm[:, cols]
        full[:, w - b :] = tm[:, sl : sl + b]  # diagonal block, last
        return full

    def _grow(self, S: int) -> None:
        if S > self._cap:
            b, w = self.b, self.w
            pool = self.ctx.workspace
            # Host index stack (schedule math is host-side by design).
            self._pi = np.empty((S, b, w), dtype=np.int64)
            # Value stacks on the backend, pooled across rounds.
            dt = self.dtype
            self._pv = pool.stack("bc.pv", (S, b, w), dtype=dt)
            self._wr = pool.stack("bc.wr", (S, 1, w), dtype=dt)
            self._u = pool.stack("bc.u", (S, b, 1), dtype=dt)
            self._tmp = pool.stack("bc.tmp", (S, b, w), dtype=dt)
            self._hv = pool.stack("bc.hv", (S, b), dtype=dt)
            self._hv[:, 0] = 1.0
            self._tv = pool.stack("bc.tv", (S, b), dtype=dt)
            self._sg = pool.stack("bc.sg", (S, 1, 1), dtype=dt)
            self._cap = S

    def run(
        self, flat: np.ndarray, chase_los: np.ndarray, start_lo: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Execute one round — chase stack plus optional start task.

        Returns ``(V, tau)`` with the chase reflectors first (sweep
        ascending, as the scheduler orders them) and the start reflector
        last.  Mirrors :func:`repro.core.bulge_chasing.apply_bc_task`:
        annihilate the column, left-update the full parallelogram, then
        right-update the diagonal block reading the left-updated values.
        (The left update also touches gathered column 0, whose final
        value — ``beta e_1`` — is simply written over it before the
        scatter.)
        """
        nc = chase_los.size
        S = nc + (start_lo is not None)
        if S == 1:
            if nc:
                return self._run_one(flat, self.chase_tmpl, int(chase_los[0]))
            return self._run_one(flat, self.start_tmpl, start_lo)
        self._grow(S)
        b, w = self.b, self.w
        xp = self.xp

        pi = self._pi[:S]
        np.add(self.chase_tmpl[None, :, :], chase_los[:, None, None], out=pi[:nc])
        if start_lo is not None:
            np.add(self.start_tmpl, start_lo, out=pi[nc])
        # The only per-round host->backend crossing: the index stack.
        pix = pi if self.ctx.is_numpy else self.ctx.from_numpy(pi)
        P = self._pv[:S]
        xp.take(flat, pix, out=P)

        # Batched Householder on the gathered columns, on preallocated
        # buffers; the guarded general kernel handles the rare
        # already-annihilated (sigma == 0) rows.
        X1 = P[:, 1:, 0]
        sg = self._sg[:S]
        xp.matmul(X1[:, None, :], X1[:, :, None], out=sg)  # batched dot
        sigma = sg[:, 0, 0]
        alpha = xp.copy(P[:, 0, 0])
        if sigma.all():
            beta = -xp.copysign(xp.sqrt(alpha * alpha + sigma), alpha)
            Vbuf = self._hv[:S]  # Vbuf[:, 0] stays 1.0 from _grow
            xp.divide(X1, (alpha - beta)[:, None], out=Vbuf[:, 1:])
            tau = (beta - alpha) / beta
            # Groups keep the reflectors past this round: hand out a copy,
            # use the buffer for the in-round math.
            V = xp.copy(Vbuf)
        else:
            V, tau, beta = batched_make_householder(xp.copy(P[:, :, 0]), xp=xp)
        tv = self._tv[:S]
        xp.multiply(tau[:, None], V, out=tv)

        wr = self._wr[:S]
        xp.matmul(V[:, None, :], P, out=wr)  # (S, 1, w)
        tmp = self._tmp[:S]
        xp.multiply(tv[:, :, None], wr, out=tmp)
        xp.subtract(P, tmp, out=P)

        D = P[:, :, w - b :]  # diagonal block, contiguous tail
        u = self._u[:S]
        xp.matmul(D, V[:, :, None], out=u)  # (S, b, 1)
        tmpD = tmp[:, :, w - b :]
        xp.multiply(u, tv[:, None, :], out=tmpD)
        xp.subtract(D, tmpD, out=D)

        P[:, :, 0] = 0.0
        P[:, 0, 0] = beta
        flat[pix] = P
        return V, tau

    def _run_one(
        self, flat: np.ndarray, tmpl: np.ndarray, lo: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scalar fast path: one task, plain 2-D ops, no stacked machinery."""
        b, w = self.b, self.w
        xp = self.xp
        pi = tmpl + lo
        pix = pi if self.ctx.is_numpy else self.ctx.from_numpy(pi)
        P = flat[pix]
        # Scalar Householder on column 0 (same arithmetic as
        # :func:`repro.core.householder.make_householder`); the scalars
        # stay 0-dim backend arrays so nothing round-trips to the host.
        x1 = P[1:, 0]
        sigma = x1 @ x1
        alpha = P[0, 0]
        v = xp.empty(b, dtype=self.dtype)
        v[0] = 1.0
        if sigma != 0.0:
            beta = -xp.copysign(xp.sqrt(alpha * alpha + sigma), alpha)
            xp.divide(x1, alpha - beta, out=v[1:])
            tau = (beta - alpha) / beta
        else:
            v[1:] = 0.0
            tau, beta = xp.zeros((), dtype=self.dtype), alpha
        tv = tau * v
        P -= tv[:, None] * (v @ P)[None, :]
        D = P[:, w - b :]
        D -= (D @ v)[:, None] * tv[None, :]
        P[:, 0] = 0.0
        P[0, 0] = beta
        flat[pix] = P
        return v[None, :], xp.asarray(tau).reshape(1)


def _total_chase_flops(n: int, b: int) -> float:
    """Flop total of a full chase — ``sum(bc_task_flops)`` vectorized.

    Every driver charges ``8 * length * (hi - lo)`` per task
    (:func:`repro.core.bulge_chasing.bc_task_flops`); the terms are small
    integers, so the float64 sum is exact and order-independent — the
    drivers' reported ``flops`` compare equal.
    """
    if b < 2 or n < 3:
        return 0.0
    i = np.arange(n - 2, dtype=np.int64)
    # t = 0: reflector rows [i+1, min(i+1+b, n)), window [i, min(row1+b, n)).
    row1 = np.minimum(i + 1 + b, n)
    total = np.sum(8.0 * (row1 - (i + 1)) * (np.minimum(row1 + b, n) - i))
    # t >= 1: col = i+1+(t-1)b exists while length >= 2, i.e. i <= n-3-t*b.
    for t in range(1, (n - 3) // b + 1):
        i = np.arange(n - 2 - t * b, dtype=np.int64)
        col = i + 1 + (t - 1) * b
        row1 = np.minimum(col + 2 * b, n)
        total += np.sum(8.0 * (row1 - (col + b)) * (np.minimum(row1 + b, n) - col))
    return float(total)


def _unbounded_schedule_arrays(
    n: int, b: int
) -> tuple[np.ndarray, np.ndarray, int, PipelineStats]:
    """Closed form of ``pipeline_schedule(n, b, None)``.

    With no in-flight cap a sweep never stalls, so sweep ``i`` runs task
    ``t`` in round ``starts[i] + t`` where ``starts[i] - starts[i-1]`` is
    the safety distance ``min(SAFETY_TASKS, ntasks[i-1])`` (a predecessor
    that finishes early releases its successor early).  Returns
    ``(starts, ntasks, total_rounds, stats)``; equality with the generic
    scheduler is asserted by the tests.
    """
    nsweeps = n - 2
    ntasks = 1 + (n - 3 - np.arange(nsweeps, dtype=np.int64)) // b
    starts = np.zeros(nsweeps, dtype=np.int64)
    np.cumsum(np.minimum(SAFETY_TASKS, ntasks)[:-1], out=starts[1:])
    total_rounds = int(starts[-1] + ntasks[-1])
    stats = PipelineStats(total_tasks=int(ntasks.sum()))
    return starts, ntasks, total_rounds, stats


def bulge_chase_wavefront(
    band,
    b: int | None = None,
    max_sweeps: int | None = None,
    ctx: ExecutionContext | None = None,
) -> tuple[WavefrontBCResult, PipelineStats]:
    """Wavefront-batched bulge chasing of a symmetric band matrix.

    Executes the pipelined multi-sweep schedule with each round's tasks
    gathered, reflected, updated and scattered as one stacked NumPy
    operation over the ``(2b+1) x n`` working band — the default BC path
    of :func:`repro.core.tridiag.tridiagonalize`.

    Parameters
    ----------
    band : LowerBandStorage | PackedBandStorage | (n, n) ndarray
        Symmetric band matrix (dense input requires ``b``).
    b : int, optional
        Bandwidth (taken from the storage object when given).
    max_sweeps : int, optional
        In-flight sweep cap ``S`` (None = unbounded).  The unbounded
        schedule is generated in closed form; a cap routes through
        :func:`repro.core.bc_pipeline.pipeline_schedule`.
    ctx : ExecutionContext, optional
        Execution context: the working band lives on its backend and
        every round's gather / batched-Householder / update / scatter
        executes there (round workspaces come from the context's pool).
        Schedule construction and the reflector groups handed back stay
        on the host.

    Returns
    -------
    (result, stats)
        ``result`` matches the sequential oracle
        :func:`repro.core.bulge_chasing.bulge_chase` to 1e-12 and carries
        the reflectors in stacked form; ``stats`` is the same pipeline
        schedule statistic the per-task driver reports.
    """
    from .bulge_chasing_band import _coerce_band

    ctx = resolve_context(ctx)
    xp = ctx.xp
    lb = _coerce_band(band, b)
    bw, n = lb.b, lb.n
    if bw < 1:
        raise ValueError("bandwidth must be >= 1")
    # 3b zero padding columns give every task full uniform geometry; the
    # padded region only ever sees zero arithmetic, so it stays zero.
    # The working band is backend-resident: every round executes in place
    # on it and only the reflector stacks come back to the host.
    npad = n + 3 * bw
    # lb.ab is always a host array, so its dtype is the working precision
    # (np.float64 historically, np.float32 under a mixed policy).
    band_dtype = lb.ab.dtype
    work = xp.zeros((2 * bw + 1, npad), dtype=band_dtype)
    work[: bw + 1, :n] = ctx.from_numpy(np.ascontiguousarray(lb.ab))
    # The kernels rely on out-of-matrix slots reading 0; enforce the
    # storage contract on the trailing entries (ab[i, j], i + j >= n).
    for i in range(1, bw + 1):
        work[i, n - i : n] = 0.0
    flat = work.reshape(-1)

    round_groups: list[BCWavefrontGroup] = []
    flops = 0.0
    if bw >= 2 and n >= 3:
        flops = _total_chase_flops(n, bw)
        kernel = _RoundKernel(bw, npad, ctx, dtype=band_dtype)

        def run_round(
            chase_los: np.ndarray,
            chase_sweeps: np.ndarray,
            chase_steps: np.ndarray,
            start_sweep: int | None,
        ) -> None:
            V, tau = kernel.run(flat, chase_los, start_sweep)
            # Groups are host-side (the replay path and downstream
            # consumers expect NumPy); on NumPy this is the identity.
            V, tau = ctx.to_numpy(V), ctx.to_numpy(tau)
            nc = chase_los.size
            if start_sweep is not None:
                # Start task rides last in the stack — the commit order
                # within a round stays sweep-ascending.
                offsets = np.empty(nc + 1, dtype=np.int64)
                offsets[:nc] = chase_los
                offsets[:nc] += bw
                offsets[nc] = start_sweep + 1
                sweeps = np.empty(nc + 1, dtype=np.int64)
                sweeps[:nc] = chase_sweeps
                sweeps[nc] = start_sweep
                steps = np.empty(nc + 1, dtype=np.int64)
                steps[:nc] = chase_steps
                steps[nc] = 0
            else:
                offsets = chase_los + bw
                sweeps = chase_sweeps
                steps = chase_steps
            round_groups.append(
                BCWavefrontGroup(
                    offsets=offsets, V=V, tau=tau, sweeps=sweeps, steps=steps
                )
            )

        if max_sweeps is None:
            starts, ntasks, total_rounds, stats = _unbounded_schedule_arrays(n, bw)
            nsweeps = starts.size
            fin = starts + ntasks - 1
            # Active sweeps of round r are the contiguous run with
            # starts[i] <= r <= fin[i] (both arrays increase); the round
            # sizes fall out of two vectorized searchsorted passes.
            r_idx = np.arange(total_rounds)
            occ = np.searchsorted(starts, r_idx, side="right") - np.searchsorted(
                fin, r_idx
            )
            # start_of[r] = the sweep starting in round r, else -1.
            start_of = np.full(total_rounds, -1, dtype=np.int64)
            start_of[starts] = np.arange(nsweeps)
            start_of = start_of.tolist()
            # Flat sweep-major task arrays (sweep, step, round, col), then
            # a stable sort by round: per-round inputs become views of the
            # sorted arrays — the loop itself allocates nothing.  Stable
            # keeps sweeps ascending within a round, so the (at most one)
            # start task — the newest, largest active sweep — lands last
            # in its segment.
            reps = np.repeat(np.arange(nsweeps, dtype=np.int64), ntasks)
            steps = np.arange(reps.size) - np.repeat(
                np.cumsum(ntasks) - ntasks, ntasks
            )
            rounds_rep = np.repeat(starts, ntasks) + steps
            order = np.argsort(rounds_rep, kind="stable")
            sw_sorted = reps[order]
            st_sorted = steps[order]
            co_sorted = (reps + 1 + (steps - 1) * bw)[order]  # chase columns
            bounds = np.zeros(total_rounds + 1, dtype=np.int64)
            np.cumsum(occ, out=bounds[1:])
            bounds = bounds.tolist()
            for r in range(total_rounds):
                lo_t = bounds[r]
                hi_t = bounds[r + 1]
                start_sweep = start_of[r]
                hi_c = hi_t - 1 if start_sweep >= 0 else hi_t
                run_round(
                    co_sorted[lo_t:hi_c],
                    sw_sorted[lo_t:hi_c],
                    st_sorted[lo_t:hi_c],
                    start_sweep if start_sweep >= 0 else None,
                )
            stats.rounds = total_rounds
            stats.occupancy = occ.tolist()
            stats.max_parallel = int(occ.max(initial=0))
            # task_rounds[(i, t)] = starts[i] + t, built in one shot.
            stats.task_rounds = dict(
                zip(
                    zip(reps.tolist(), steps.tolist()),
                    rounds_rep.tolist(),
                )
            )
        else:
            rounds, stats = pipeline_schedule(n, bw, max_sweeps)
            for round_tasks in rounds:
                chase = [t for t in round_tasks if t.step > 0]
                nc = len(chase)
                start = [t for t in round_tasks if t.step == 0]
                run_round(
                    np.fromiter((t.col for t in chase), np.int64, count=nc),
                    np.fromiter((t.sweep for t in chase), np.int64, count=nc),
                    np.fromiter((t.step for t in chase), np.int64, count=nc),
                    start[0].sweep if start else None,
                )
    else:
        stats = PipelineStats()

    d = ctx.to_numpy_copy(work[0, :n])
    e = ctx.to_numpy_copy(work[1, : n - 1])
    return (
        WavefrontBCResult(
            d=d, e=e, round_groups=round_groups, flops=flops, row_pad=bw
        ),
        stats,
    )
