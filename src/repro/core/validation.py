"""Input validation shared by the public entry points.

Real-world matrices arrive slightly asymmetric (accumulated roundoff from
whoever built them) or outright broken (NaN/Inf).  The drivers accept the
former — the pipeline only reads the lower triangle anyway, and we
symmetrize — but refuse quietly wrong inputs: non-finite entries, a
non-square array, an empty matrix, or asymmetry large enough that "the
symmetric eigenproblem of A" is not a well-posed request.

Every rejection is a *typed* ``ValueError`` subclass (also rooted at
:class:`~repro.resilience.ReproError`, the base of every deliberate
failure in the stack) so callers (and the serving layer, which must map
a bad request to a failed future without tearing down the worker) can
distinguish the failure modes without string-matching messages.

:func:`matrix_fingerprint` is the content-addressing primitive of the
result cache in :mod:`repro.serve`: a stable hash over shape, dtype and
raw bytes, so two bitwise-identical inputs share a cache entry and any
single-bit difference does not.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..resilience.errors import ReproError

__all__ = [
    "check_symmetric",
    "matrix_fingerprint",
    "SymmetryError",
    "NonSquareError",
    "NonFiniteError",
    "EmptyMatrixError",
]

#: Relative asymmetry beyond which the input is rejected rather than
#: symmetrized (||A - A^T|| / ||A||).
DEFAULT_SYMMETRY_TOL = 1e-8


class SymmetryError(ReproError, ValueError):
    """The input is too far from symmetric to treat as a symmetric
    eigenproblem."""


class NonSquareError(ReproError, ValueError):
    """The input is not a 2-D square matrix."""


class NonFiniteError(ReproError, ValueError):
    """The input contains NaN or Inf entries."""


class EmptyMatrixError(ReproError, ValueError):
    """The input has zero rows/columns — there is no eigenproblem to
    solve (and the kernels' ``n >= 1`` assumptions would trip)."""


def check_symmetric(
    A: np.ndarray,
    tol: float = DEFAULT_SYMMETRY_TOL,
    symmetrize: bool = True,
) -> np.ndarray:
    """Validate a symmetric-matrix input and return a clean FP64 copy.

    Raises
    ------
    NonSquareError
        Not a 2-D square array.
    EmptyMatrixError
        Square but with zero rows/columns.
    NonFiniteError
        Contains NaN or Inf.
    SymmetryError
        ``||A - A^T||_F > tol * ||A||_F``.

    Returns
    -------
    ndarray
        ``(A + A^T)/2`` as float64 (or ``A`` itself when already exactly
        symmetric), never aliasing the input.
    """
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise NonSquareError(f"expected a square matrix, got shape {A.shape}")
    if A.shape[0] == 0:
        raise EmptyMatrixError("expected a non-empty matrix, got shape (0, 0)")
    A = np.array(A, dtype=np.float64, copy=True)
    if not np.all(np.isfinite(A)):
        raise NonFiniteError("matrix contains NaN or Inf entries")
    norm = np.linalg.norm(A)
    asym = np.linalg.norm(A - A.T)
    if asym > tol * max(norm, np.finfo(np.float64).tiny):
        raise SymmetryError(
            f"input is not symmetric: ||A - A^T||/||A|| = {asym / max(norm, 1e-300):.2e}"
            f" exceeds tol = {tol:g}"
        )
    if asym > 0.0 and symmetrize:
        A = (A + A.T) / 2.0
    return A


def matrix_fingerprint(A: np.ndarray) -> str:
    """Stable content hash of an array: shape + dtype + raw bytes.

    Two arrays fingerprint identically iff they are bitwise identical
    (same dtype, same shape, same element bytes) — the property the serve
    result cache needs for deterministic replay.  Note that dtype is part
    of the identity: a float32 matrix and its float64 widening hash
    differently even when numerically equal, which errs on the side of
    recomputing rather than conflating.

    Returns a short hex digest (BLAKE2b-128), cheap enough to compute per
    request at serving sizes.
    """
    A = np.asarray(A)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(A.dtype).encode())
    h.update(np.asarray(A.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A).tobytes())
    return h.hexdigest()
