"""Input validation shared by the public entry points.

Real-world matrices arrive slightly asymmetric (accumulated roundoff from
whoever built them) or outright broken (NaN/Inf).  The drivers accept the
former — the pipeline only reads the lower triangle anyway, and we
symmetrize — but refuse quietly wrong inputs: non-finite entries, a
non-square array, or asymmetry large enough that "the symmetric
eigenproblem of A" is not a well-posed request.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_symmetric", "SymmetryError"]

#: Relative asymmetry beyond which the input is rejected rather than
#: symmetrized (||A - A^T|| / ||A||).
DEFAULT_SYMMETRY_TOL = 1e-8


class SymmetryError(ValueError):
    """The input is too far from symmetric to treat as a symmetric
    eigenproblem."""


def check_symmetric(
    A: np.ndarray,
    tol: float = DEFAULT_SYMMETRY_TOL,
    symmetrize: bool = True,
) -> np.ndarray:
    """Validate a symmetric-matrix input and return a clean FP64 copy.

    Raises
    ------
    ValueError
        Not 2-D square, or contains NaN/Inf.
    SymmetryError
        ``||A - A^T||_F > tol * ||A||_F``.

    Returns
    -------
    ndarray
        ``(A + A^T)/2`` as float64 (or ``A`` itself when already exactly
        symmetric), never aliasing the input.
    """
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {A.shape}")
    A = np.array(A, dtype=np.float64, copy=True)
    if not np.all(np.isfinite(A)):
        raise ValueError("matrix contains NaN or Inf entries")
    norm = np.linalg.norm(A)
    asym = np.linalg.norm(A - A.T)
    if asym > tol * max(norm, np.finfo(np.float64).tiny):
        raise SymmetryError(
            f"input is not symmetric: ||A - A^T||/||A|| = {asym / max(norm, 1e-300):.2e}"
            f" exceeds tol = {tol:g}"
        )
    if asym > 0.0 and symmetrize:
        A = (A + A.T) / 2.0
    return A
