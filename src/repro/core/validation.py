"""Input validation shared by the public entry points.

Real-world matrices arrive slightly asymmetric (accumulated roundoff from
whoever built them) or outright broken (NaN/Inf).  The drivers accept the
former — the pipeline only reads the lower triangle anyway, and we
symmetrize — but refuse quietly wrong inputs: non-finite entries, a
non-square array, an empty matrix, or asymmetry large enough that "the
symmetric eigenproblem of A" is not a well-posed request.

Every rejection is a *typed* ``ValueError`` subclass (also rooted at
:class:`~repro.resilience.ReproError`, the base of every deliberate
failure in the stack) so callers (and the serving layer, which must map
a bad request to a failed future without tearing down the worker) can
distinguish the failure modes without string-matching messages.

:func:`matrix_fingerprint` is the content-addressing primitive of the
result cache in :mod:`repro.serve`: a stable hash over shape, dtype and
raw bytes, so two bitwise-identical inputs share a cache entry and any
single-bit difference does not.
"""

from __future__ import annotations

import hashlib
import warnings

import numpy as np

from ..resilience.errors import ReproError

__all__ = [
    "check_symmetric",
    "matrix_fingerprint",
    "PrecisionWarning",
    "SymmetryError",
    "NonSquareError",
    "NonFiniteError",
    "EmptyMatrixError",
]

#: Relative asymmetry beyond which the input is rejected rather than
#: symmetrized (||A - A^T|| / ||A||).
DEFAULT_SYMMETRY_TOL = 1e-8


class SymmetryError(ReproError, ValueError):
    """The input is too far from symmetric to treat as a symmetric
    eigenproblem."""


class NonSquareError(ReproError, ValueError):
    """The input is not a 2-D square matrix."""


class NonFiniteError(ReproError, ValueError):
    """The input contains NaN or Inf entries."""


class EmptyMatrixError(ReproError, ValueError):
    """The input has zero rows/columns — there is no eigenproblem to
    solve (and the kernels' ``n >= 1`` assumptions would trip)."""


class PrecisionWarning(UserWarning):
    """A float32 input was silently widened to float64 at an entry point.

    The pipeline's working precision defaults to float64, so a float32
    matrix is upcast on entry — it costs the fp64 compute rate without
    gaining fp64 input accuracy.  Callers who *meant* to trade precision
    for speed should request ``precision="mixed"`` (fp32 pipeline with
    refinement back to fp64 tolerances, see :mod:`repro.precision`),
    which suppresses this warning.
    """


def check_symmetric(
    A: np.ndarray,
    tol: float = DEFAULT_SYMMETRY_TOL,
    symmetrize: bool = True,
    dtype: np.dtype | None = None,
    warn_on_upcast: bool = True,
) -> np.ndarray:
    """Validate a symmetric-matrix input and return a clean working copy.

    ``dtype`` is the working precision of the returned copy — float64
    by default (the historical contract, bit-identical); a
    mixed-precision policy passes float32 here, the *single*
    dtype-coercion point of the pipeline.  A float32 input silently
    widened to float64 emits :class:`PrecisionWarning` (disable with
    ``warn_on_upcast=False`` — the precision driver does, because under
    an explicit policy the upcast is intentional).

    Raises
    ------
    NonSquareError
        Not a 2-D square array.
    EmptyMatrixError
        Square but with zero rows/columns.
    NonFiniteError
        Contains NaN or Inf.
    SymmetryError
        ``||A - A^T||_F > tol * ||A||_F``.

    Returns
    -------
    ndarray
        ``(A + A^T)/2`` in the working dtype (or the coerced copy
        itself when already exactly symmetric), never aliasing the
        input.
    """
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise NonSquareError(f"expected a square matrix, got shape {A.shape}")
    if A.shape[0] == 0:
        raise EmptyMatrixError("expected a non-empty matrix, got shape (0, 0)")
    target = np.dtype(np.float64) if dtype is None else np.dtype(dtype)
    if (
        warn_on_upcast
        and A.dtype == np.float32
        and target == np.float64
    ):
        warnings.warn(
            "float32 input is being widened to float64: the solve pays the "
            "fp64 compute rate without fp64 input accuracy; pass "
            "precision='mixed' to run the pipeline in fp32 with refinement "
            "back to fp64 tolerances (see repro.precision)",
            PrecisionWarning,
            stacklevel=3,
        )
    A = np.array(A, dtype=target, copy=True)
    if not np.all(np.isfinite(A)):
        raise NonFiniteError("matrix contains NaN or Inf entries")
    # The symmetry gate is always judged in fp64: a float32 working copy
    # must not loosen (or re-randomize) the acceptance threshold.
    A64 = np.asarray(A, dtype=np.float64)
    norm = np.linalg.norm(A64)
    asym = np.linalg.norm(A64 - A64.T)
    if asym > tol * max(norm, np.finfo(np.float64).tiny):
        raise SymmetryError(
            f"input is not symmetric: ||A - A^T||/||A|| = {asym / max(norm, 1e-300):.2e}"
            f" exceeds tol = {tol:g}"
        )
    if asym > 0.0 and symmetrize:
        A = (A + A.T) / np.asarray(2.0, dtype=target)
    return A


def matrix_fingerprint(A: np.ndarray) -> str:
    """Stable content hash of an array: shape + dtype + raw bytes.

    Two arrays fingerprint identically iff they are bitwise identical
    (same dtype, same shape, same element bytes) — the property the serve
    result cache needs for deterministic replay.  Note that dtype is part
    of the identity: a float32 matrix and its float64 widening hash
    differently even when numerically equal, which errs on the side of
    recomputing rather than conflating.

    Returns a short hex digest (BLAKE2b-128), cheap enough to compute per
    request at serving sizes.
    """
    A = np.asarray(A)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(A.dtype).encode())
    h.update(np.asarray(A.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A).tobytes())
    return h.hexdigest()
