"""Core algorithms: the paper's contribution and its numerical baselines."""

from .back_transform import (
    apply_sbr_q,
    apply_sbr_q_transpose,
    assemble_eigenvectors,
    merge_blocks_grouped,
    merge_blocks_recursive,
    q_from_blocks,
)
from .bc_back_transform import (
    BCWyBlock,
    apply_q1_blocked,
    blocked_bc_back_time,
    blocked_q1_blocks,
)
from .bc_pipeline import PipelineStats, bulge_chase_pipelined, pipeline_schedule
from .bc_wavefront import (
    BCWavefrontGroup,
    WavefrontBCResult,
    bulge_chase_wavefront,
)
from .blocks import BandReductionResult, WYBlock
from .bulge_chasing_band import WorkingBand, bulge_chase_band
from .bulge_chasing import (
    BCReflector,
    BCTask,
    BulgeChasingResult,
    apply_bc_task,
    bc_task_flops,
    bulge_chase,
    num_tasks_in_sweep,
    sweep_tasks,
    task_window,
)
from .dbbr import dbbr
from .direct_tridiag import DirectTridiagResult, direct_tridiagonalize
from .evd import EVDResult, eigh, eigh_partial, eigh_stacked
from .extensions import (
    cholesky_lower,
    eigh_generalized,
    eigh_hermitian,
    solve_triangular_lower,
)
from .householder import (
    WYAccumulator,
    accumulate_wy,
    apply_householder_left,
    apply_householder_right,
    apply_householder_two_sided,
    batched_make_householder,
    build_q_from_compact_wy,
    build_q_from_wy,
    larft,
    make_householder,
    merge_wy,
)
from .panel_qr import explicit_q, panel_qr, panel_qr_compact, panel_qr_wy
from .sbr import sbr
from .serialization import load_evd, load_tridiag, save_evd, save_tridiag
from .svd import BidiagResult, bidiagonalize, golub_kahan_tridiagonal, svd
from .tile_sbr import TileBandReductionResult, TileReflector, tile_sbr, tile_task_dag
from .syr2k import (
    Syr2kTask,
    rect_schedule,
    square_schedule,
    symmetrize_lower,
    syr2k_rect_blocked,
    syr2k_reference,
    syr2k_square_blocked,
)
from .tridiag import (
    TridiagResult,
    auto_params,
    tridiagonalize,
    tridiagonalize_planned,
)
from .validation import (
    EmptyMatrixError,
    NonFiniteError,
    NonSquareError,
    SymmetryError,
    check_symmetric,
    matrix_fingerprint,
)

__all__ = [
    "BCWavefrontGroup",
    "BCWyBlock",
    "BandReductionResult",
    "BidiagResult",
    "BCReflector",
    "BCTask",
    "BulgeChasingResult",
    "DirectTridiagResult",
    "EVDResult",
    "PipelineStats",
    "Syr2kTask",
    "TileBandReductionResult",
    "TileReflector",
    "TridiagResult",
    "WavefrontBCResult",
    "WYAccumulator",
    "WYBlock",
    "accumulate_wy",
    "apply_bc_task",
    "apply_q1_blocked",
    "apply_householder_left",
    "apply_householder_right",
    "apply_householder_two_sided",
    "batched_make_householder",
    "bc_task_flops",
    "apply_sbr_q",
    "apply_sbr_q_transpose",
    "assemble_eigenvectors",
    "auto_params",
    "build_q_from_compact_wy",
    "blocked_bc_back_time",
    "blocked_q1_blocks",
    "build_q_from_wy",
    "bidiagonalize",
    "bulge_chase",
    "bulge_chase_band",
    "bulge_chase_pipelined",
    "bulge_chase_wavefront",
    "cholesky_lower",
    "dbbr",
    "direct_tridiagonalize",
    "check_symmetric",
    "eigh",
    "eigh_generalized",
    "eigh_hermitian",
    "eigh_partial",
    "eigh_stacked",
    "EmptyMatrixError",
    "explicit_q",
    "matrix_fingerprint",
    "NonFiniteError",
    "NonSquareError",
    "SymmetryError",
    "golub_kahan_tridiagonal",
    "larft",
    "load_evd",
    "load_tridiag",
    "make_householder",
    "merge_blocks_grouped",
    "merge_blocks_recursive",
    "merge_wy",
    "num_tasks_in_sweep",
    "panel_qr",
    "panel_qr_compact",
    "panel_qr_wy",
    "pipeline_schedule",
    "q_from_blocks",
    "rect_schedule",
    "save_evd",
    "save_tridiag",
    "sbr",
    "solve_triangular_lower",
    "square_schedule",
    "svd",
    "sweep_tasks",
    "symmetrize_lower",
    "syr2k_rect_blocked",
    "syr2k_reference",
    "syr2k_square_blocked",
    "task_window",
    "tile_sbr",
    "tile_task_dag",
    "tridiagonalize",
    "tridiagonalize_planned",
    "WorkingBand",
]
