"""Pluggable array backends + the ExecutionContext threaded through the
EVD pipeline.

``repro.backend.get_backend("numpy"|"cupy"|"torch"|"auto")`` resolves an
execution substrate; :class:`ExecutionContext` bundles it with a
workspace pool and stage-timing hooks and rides down through every stage
of :func:`repro.core.tridiag.tridiagonalize` / :func:`repro.core.evd.eigh`.
See ``docs/backends.md`` for the backend matrix and the protocol an
implementation must cover.
"""

from .base import ArrayBackend, BackendUnavailable, assert_f64
from .context import (
    ExecutionContext,
    StageEvent,
    WorkspacePool,
    resolve_context,
)
from .cupy_backend import CupyBackend
from .numpy_backend import NumpyBackend
from .registry import AUTO_ORDER, available_backends, get_backend
from .torch_backend import TorchBackend

__all__ = [
    "AUTO_ORDER",
    "ArrayBackend",
    "BackendUnavailable",
    "CupyBackend",
    "ExecutionContext",
    "NumpyBackend",
    "StageEvent",
    "TorchBackend",
    "WorkspacePool",
    "assert_f64",
    "available_backends",
    "get_backend",
    "resolve_context",
]
