"""The default (bit-exact) NumPy backend.

``NumpyBackend.xp`` is literally the ``numpy`` module, so every kernel
that writes ``xp.matmul(...)`` under this backend executes the exact
instruction stream it executed before the backend seam existed — the
tier-1 suite pins the ``d``/``e`` outputs bit-identical.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Host NumPy execution — the correctness reference substrate."""

    name = "numpy"
    xp = np
    is_host = True

    def asarray(self, x) -> np.ndarray:
        # Preserve an explicit float32/float64 working precision (the
        # mixed-precision pipeline runs fp32 on this backend); any other
        # dtype is coerced to the historical float64.
        x = np.asarray(x)
        if x.dtype in (np.float32, np.float64):
            return x
        return np.asarray(x, dtype=np.float64)

    def from_numpy(self, x: np.ndarray) -> np.ndarray:
        return x

    def to_numpy(self, x) -> np.ndarray:
        return np.asarray(x)

    def owns(self, x) -> bool:
        return isinstance(x, np.ndarray)

    def solve_triangular(self, L, B, lower: bool = True,
                         transpose: bool = False) -> np.ndarray:
        from ..core.extensions import solve_triangular_lower

        if not lower:  # pragma: no cover - pipeline only solves lower
            return np.asarray(
                np.linalg.solve(np.asarray(L), np.asarray(B))
            )
        return solve_triangular_lower(L, B, transpose=transpose)

    def eigh(self, A) -> tuple[np.ndarray, np.ndarray]:
        return np.linalg.eigh(A)
