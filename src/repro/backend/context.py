"""ExecutionContext: backend + workspace pool + stage-event hooks.

One :class:`ExecutionContext` is constructed per top-level call
(:func:`repro.core.tridiag.tridiagonalize` / :func:`repro.core.evd.eigh`)
and threaded down through every stage — band reduction, bulge chasing,
tridiagonal solve, back transformation.  It carries the three things a
stage needs from its environment:

* **backend** — where array operations execute (see
  :mod:`repro.backend.base`);
* **workspace pool** — named, grow-only scratch buffers allocated on the
  backend, so steady-state inner loops allocate nothing (the wavefront
  kernel's round buffers and the band window batcher's gather stacks
  live here);
* **event hooks** — callbacks receiving :class:`StageEvent`\\ s, the
  timing seam the benchmarks use instead of sprinkling
  ``perf_counter()`` calls through the kernels.  Per-stage wall time is
  also accumulated on the context (:attr:`ExecutionContext.stage_times`).

Passing ``ctx=None`` anywhere resolves to a fresh NumPy-backed context,
so every kernel keeps working standalone exactly as before.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .base import ArrayBackend
from .numpy_backend import NumpyBackend
from .registry import get_backend

__all__ = [
    "StageEvent",
    "WorkspacePool",
    "ExecutionContext",
    "resolve_context",
]

# One stateless instance serves every default context.
_NUMPY_BACKEND = NumpyBackend()


@dataclass(frozen=True)
class StageEvent:
    """One stage lifecycle notification delivered to context hooks.

    ``phase`` is ``"start"`` or ``"end"``; ``duration_s`` is set only on
    the end event.  ``meta`` carries stage-specific payload (problem
    size, method name, ...).
    """

    stage: str
    phase: str
    backend: str
    duration_s: float | None = None
    meta: dict = field(default_factory=dict)


class WorkspacePool:
    """Named grow-only scratch buffers on a backend.

    ``stack(tag, shape)`` returns a buffer of exactly ``shape`` served
    from a cached allocation: the cache entry is reused when its trailing
    dimensions match and its leading dimension is large enough (the
    wavefront kernel's stacks shrink with round occupancy, so the
    leading dimension is a high-water mark).  Buffers are *uninitialized*
    — callers must fully overwrite what they read, exactly as with
    ``np.empty``.

    A pool (and the :class:`ExecutionContext` that owns it) is **not**
    thread-safe: two threads sharing one pool would hand out overlapping
    scratch buffers and silently corrupt each other's intermediates.  The
    pool therefore binds to the first thread that uses it and raises a
    :class:`RuntimeError` on use from any other thread — give each thread
    its own context (what :class:`repro.serve.SolverService` workers do).
    """

    def __init__(self, backend: ArrayBackend):
        self._backend = backend
        self._buffers: dict[str, Any] = {}
        self._owner_thread: int | None = None
        self._owner_name: str = ""

    def _assert_owner(self, what: str = "WorkspacePool") -> None:
        """Bind to the calling thread on first use; fail loudly after."""
        ident = threading.get_ident()
        if self._owner_thread is None:
            self._owner_thread = ident
            self._owner_name = threading.current_thread().name
        elif self._owner_thread != ident:
            raise RuntimeError(
                f"{what} is owned by thread {self._owner_name!r} "
                f"(id {self._owner_thread}) but was used from thread "
                f"{threading.current_thread().name!r} (id {ident}). "
                "ExecutionContext and its WorkspacePool are not thread-safe "
                "— construct one context per thread (repro.serve workers do "
                "exactly this; see docs/serve.md)."
            )

    def stack(self, tag: str, shape: tuple[int, ...], dtype=np.float64) -> Any:
        self._assert_owner()
        # Buffers are keyed by (tag, dtype): a mixed-precision pipeline
        # interleaving fp32 kernel scratch with fp64 secular scratch must
        # never be handed a buffer of the other width.
        key = f"{tag}|{np.dtype(dtype).name}"
        buf = self._buffers.get(key)
        if (
            buf is None
            or tuple(buf.shape[1:]) != tuple(shape[1:])
            or buf.shape[0] < shape[0]
        ):
            buf = self._backend.xp.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf[: shape[0]]

    def matrix(self, tag: str, shape: tuple[int, ...], dtype=np.float64) -> Any:
        """Scratch matrix served from a *flat* high-water-mark buffer.

        Unlike :meth:`stack`, whose cache keys on the trailing dimensions
        matching exactly, this reshapes a 1-D buffer sized to the element
        count — so a sequence of ``(N, N)`` requests with varying ``N``
        (the divide-and-conquer merge wave) reuses one allocation once the
        largest merge has been seen.
        """
        count = 1
        for dim in shape:
            count *= int(dim)
        return self.stack(tag, (count,), dtype=dtype).reshape(shape)

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held (host backends only report exact)."""
        total = 0
        for buf in self._buffers.values():
            nb = getattr(buf, "nbytes", None)
            if nb is None:  # torch tensors
                nb = buf.numel() * buf.element_size()
            total += int(nb)
        return total


class ExecutionContext:
    """Execution environment threaded through the EVD pipeline.

    Parameters
    ----------
    backend : str or ArrayBackend or None
        Resolved through :func:`repro.backend.get_backend`.
    hooks : iterable of callables, optional
        Each is invoked with a :class:`StageEvent` at stage start/end.

    A context is single-threaded: it binds to the first thread that runs
    a stage or draws a workspace buffer, and any use from another thread
    raises ``RuntimeError`` (see :class:`WorkspacePool`).  Concurrent
    callers each construct their own context.
    """

    def __init__(
        self,
        backend: str | ArrayBackend | None = None,
        hooks: list[Callable[[StageEvent], None]] | None = None,
    ):
        self.backend = get_backend(backend)
        self.workspace = WorkspacePool(self.backend)
        self.hooks: list[Callable[[StageEvent], None]] = list(hooks or [])
        self.stage_times: dict[str, float] = {}

    # -- backend delegation -------------------------------------------
    @property
    def xp(self) -> Any:
        """The backend's NumPy-compatible operation namespace."""
        return self.backend.xp

    @property
    def is_numpy(self) -> bool:
        return self.backend.name == "numpy"

    def asarray(self, x) -> Any:
        return self.backend.asarray(x)

    def from_numpy(self, x: np.ndarray) -> Any:
        return self.backend.from_numpy(x)

    def to_numpy(self, x) -> np.ndarray:
        return self.backend.to_numpy(x)

    def to_numpy_copy(self, x) -> np.ndarray:
        """Host copy that never aliases backend storage (result arrays)."""
        out = self.backend.to_numpy(x)
        return np.array(out, dtype=np.float64, copy=True)

    # -- stage events --------------------------------------------------
    def emit(self, event: StageEvent) -> None:
        for hook in self.hooks:
            hook(event)

    @contextmanager
    def stage(self, name: str, **meta):
        """Time a pipeline stage and notify hooks.

        Device backends are synchronized before the end timestamp so
        asynchronous kernels are not under-counted.
        """
        self.workspace._assert_owner("ExecutionContext")
        self.emit(StageEvent(name, "start", self.backend.name, meta=meta))
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.backend.synchronize()
            dt = time.perf_counter() - t0
            self.stage_times[name] = self.stage_times.get(name, 0.0) + dt
            self.emit(
                StageEvent(name, "end", self.backend.name, duration_s=dt, meta=meta)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExecutionContext backend={self.backend.name!r}>"


def resolve_context(
    ctx: ExecutionContext | ArrayBackend | str | None,
) -> ExecutionContext:
    """Coerce a user-facing ``backend=``/``ctx=`` argument to a context.

    Accepts an existing context (returned unchanged), a backend instance,
    a backend name, or ``None`` (fresh NumPy-backed context).  Keeping the
    ``None`` path allocation-light matters: every kernel calls this.
    """
    if isinstance(ctx, ExecutionContext):
        return ctx
    if ctx is None:
        fresh = ExecutionContext.__new__(ExecutionContext)
        fresh.backend = _NUMPY_BACKEND
        fresh.workspace = WorkspacePool(_NUMPY_BACKEND)
        fresh.hooks = []
        fresh.stage_times = {}
        return fresh
    return ExecutionContext(backend=ctx)
