"""Backend registry: ``get_backend("numpy"|"cupy"|"torch"|"auto")``.

``"auto"`` probes for a GPU-capable substrate and falls back to NumPy:
CuPy first (CUDA-native, NumPy-API-compatible), then torch *with a CUDA
device* (torch on CPU loses to NumPy for this FP64 workload, so it is
never auto-selected — request ``"torch"`` explicitly to get it), then
NumPy.  The probe order is :data:`AUTO_ORDER`; tests monkeypatch the
``_PROBES`` table to pin the fallback behaviour without needing the
optional libraries installed.
"""

from __future__ import annotations

from .base import ArrayBackend, BackendUnavailable
from .cupy_backend import CupyBackend
from .numpy_backend import NumpyBackend
from .torch_backend import TorchBackend

__all__ = ["get_backend", "available_backends", "AUTO_ORDER"]

#: Probe order of ``get_backend("auto")`` — GPU substrates first.
AUTO_ORDER = ("cupy", "torch", "numpy")


def _make_numpy() -> ArrayBackend:
    return NumpyBackend()


def _make_cupy() -> ArrayBackend:
    return CupyBackend()


def _make_torch() -> ArrayBackend:
    return TorchBackend()


def _make_torch_auto() -> ArrayBackend:
    """Auto-probe flavour of torch: only usable when CUDA is present."""
    try:
        import torch
    except ImportError as exc:
        raise BackendUnavailable(str(exc))
    if not torch.cuda.is_available():
        raise BackendUnavailable(
            "torch is installed but has no CUDA device; auto-selection "
            "prefers numpy on the host (request 'torch' explicitly)"
        )
    return TorchBackend(device="cuda")  # pragma: no cover - needs a GPU


#: name -> (explicit factory, auto-probe factory)
_PROBES = {
    "numpy": (_make_numpy, _make_numpy),
    "cupy": (_make_cupy, _make_cupy),
    "torch": (_make_torch, _make_torch_auto),
}


def get_backend(name: str | ArrayBackend | None = "numpy") -> ArrayBackend:
    """Resolve a backend by name (or pass an instance through).

    Parameters
    ----------
    name : {"numpy", "cupy", "torch", "auto"} or ArrayBackend or None
        ``None`` means the default (``"numpy"``).  An
        :class:`~repro.backend.base.ArrayBackend` instance is returned
        unchanged, so callers can inject configured backends (e.g.
        ``TorchBackend(device="cuda:1")``).

    Raises
    ------
    BackendUnavailable
        The named backend's library is missing (never raised for
        ``"numpy"`` or ``"auto"``).
    ValueError
        Unknown backend name.
    """
    if name is None:
        name = "numpy"
    if isinstance(name, ArrayBackend):
        return name
    name = str(name).lower()
    if name == "auto":
        for candidate in AUTO_ORDER:
            try:
                return _PROBES[candidate][1]()
            except BackendUnavailable:
                continue
        return NumpyBackend()  # pragma: no cover - numpy probe never fails
    try:
        factory = _PROBES[name][0]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{sorted(_PROBES)} or 'auto'"
        ) from None
    return factory()


def available_backends() -> list[str]:
    """Names of backends constructible in this environment."""
    out = []
    for name, (factory, _) in _PROBES.items():
        try:
            factory()
        except BackendUnavailable:
            continue
        out.append(name)
    return sorted(out)
