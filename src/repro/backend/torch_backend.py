"""PyTorch backend: the pipeline's kernels on ``torch.Tensor`` storage.

The interesting property of this backend is not CPU torch (which is what
CI exercises) but that the *identical* kernel code paths run on a CUDA
device when one is present — the retargeting the paper's follow-up work
(multi-GPU EVD, memory-aware bulge chasing) builds on.

``torch`` is an optional dependency: importing this module never fails,
but constructing :class:`TorchBackend` without torch installed raises
:class:`~repro.backend.base.BackendUnavailable`.

The :class:`_TorchNamespace` shim exposes the NumPy-compatible operation
subset the kernels use (see :mod:`repro.backend.base` for the list).  It
is deliberately forgiving about mixed operands — schedule metadata stays
host-side NumPy, so binary ops coerce ndarray operands with
``torch.as_tensor`` (zero-copy on CPU).
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend, BackendUnavailable

try:  # pragma: no cover - exercised only when torch is installed
    import torch as _torch
except ImportError:  # pragma: no cover
    _torch = None

__all__ = ["TorchBackend"]


def _dtype(dt):
    """Map a NumPy dtype request onto a torch dtype (float64 default)."""
    if dt is None:
        return _torch.float64
    name = getattr(dt, "__name__", None) or str(np.dtype(dt))
    return {
        "float64": _torch.float64,
        "int64": _torch.int64,
        "bool": _torch.bool,
    }.get(name, _torch.float64)


class _TorchLinalg:
    """The ``xp.linalg`` sub-namespace subset."""

    @staticmethod
    def norm(x):
        return _torch.linalg.norm(_torch.as_tensor(x))


class _TorchNamespace:
    """NumPy-compatible operation namespace over ``torch.Tensor``.

    Every function accepts tensors or host ndarrays (coerced zero-copy on
    CPU) and returns tensors; ``out=`` arguments must be tensors.
    """

    linalg = _TorchLinalg()
    float64 = np.float64  # kernels pass dtype=xp.float64; mapped by _dtype
    int64 = np.int64

    # -- creation -----------------------------------------------------
    @staticmethod
    def asarray(x, dtype=None):
        t = _torch.as_tensor(x)
        want = _dtype(dtype) if dtype is not None else (
            t.dtype if t.dtype in (_torch.int64, _torch.bool) else _torch.float64
        )
        return t.to(want) if t.dtype != want else t

    @staticmethod
    def array(x, dtype=None, copy=True):
        t = _TorchNamespace.asarray(x, dtype)
        return t.clone() if copy else t

    @staticmethod
    def copy(x):
        return _torch.as_tensor(x).clone()

    @staticmethod
    def empty(shape, dtype=None):
        return _torch.empty(shape, dtype=_dtype(dtype))

    @staticmethod
    def zeros(shape, dtype=None):
        return _torch.zeros(shape, dtype=_dtype(dtype))

    @staticmethod
    def full(shape, fill, dtype=None):
        return _torch.full(shape, fill, dtype=_dtype(dtype))

    @staticmethod
    def eye(n, dtype=None):
        return _torch.eye(n, dtype=_dtype(dtype))

    @staticmethod
    def arange(*args, dtype=None):
        t = _torch.arange(*args)
        return t.to(_dtype(dtype)) if dtype is not None else t

    # -- structure ----------------------------------------------------
    @staticmethod
    def hstack(arrs):
        arrs = [_torch.as_tensor(a) for a in arrs]
        return _torch.cat(arrs, dim=1 if arrs[0].dim() > 1 else 0)

    @staticmethod
    def vstack(arrs):
        return _torch.cat([_torch.atleast_2d(_torch.as_tensor(a)) for a in arrs], dim=0)

    @staticmethod
    def concatenate(arrs, axis=0):
        return _torch.cat([_torch.as_tensor(a) for a in arrs], dim=axis)

    @staticmethod
    def outer(a, b):
        return _torch.outer(_torch.as_tensor(a), _torch.as_tensor(b))

    @staticmethod
    def tril(a, k=0):
        return _torch.tril(_torch.as_tensor(a), diagonal=k)

    @staticmethod
    def triu(a, k=0):
        return _torch.triu(_torch.as_tensor(a), diagonal=k)

    @staticmethod
    def tril_indices(n, k=0):
        idx = _torch.tril_indices(n, n, offset=k)
        return idx[0], idx[1]

    @staticmethod
    def ix_(rows, cols):
        return (
            _torch.as_tensor(rows).reshape(-1, 1),
            _torch.as_tensor(cols).reshape(1, -1),
        )

    @staticmethod
    def diagonal(a, offset=0):
        return _torch.diagonal(_torch.as_tensor(a), offset=offset)

    # -- elementwise (out=-capable where the kernels need it) ----------
    @staticmethod
    def add(a, b, out=None):
        return _torch.add(_torch.as_tensor(a), _torch.as_tensor(b), out=out)

    @staticmethod
    def subtract(a, b, out=None):
        return _torch.sub(_torch.as_tensor(a), _torch.as_tensor(b), out=out)

    @staticmethod
    def multiply(a, b, out=None):
        return _torch.mul(_torch.as_tensor(a), _torch.as_tensor(b), out=out)

    @staticmethod
    def divide(a, b, out=None):
        return _torch.div(_torch.as_tensor(a), _torch.as_tensor(b), out=out)

    @staticmethod
    def sqrt(x):
        return _torch.sqrt(_torch.as_tensor(x))

    @staticmethod
    def abs(x):
        return _torch.abs(_torch.as_tensor(x))

    @staticmethod
    def copysign(a, b):
        return _torch.copysign(_torch.as_tensor(a), _torch.as_tensor(b))

    @staticmethod
    def minimum(a, b):
        return _torch.minimum(_torch.as_tensor(a), _torch.as_tensor(b))

    @staticmethod
    def maximum(a, b):
        return _torch.maximum(_torch.as_tensor(a), _torch.as_tensor(b))

    @staticmethod
    def where(cond, a, b):
        return _torch.where(
            _torch.as_tensor(cond), _torch.as_tensor(a), _torch.as_tensor(b)
        )

    @staticmethod
    def sum(x, axis=None):
        t = _torch.as_tensor(x)
        return t.sum() if axis is None else t.sum(dim=axis)

    # -- BLAS3 / reductions / gather ----------------------------------
    @staticmethod
    def matmul(a, b, out=None):
        return _torch.matmul(_torch.as_tensor(a), _torch.as_tensor(b), out=out)

    @staticmethod
    def einsum(spec, *ops):
        return _torch.einsum(spec, *[_torch.as_tensor(o) for o in ops])

    @staticmethod
    def dot(a, b):
        return _torch.dot(_torch.as_tensor(a), _torch.as_tensor(b))

    @staticmethod
    def take(a, idx, out=None):
        r = _torch.take(_torch.as_tensor(a), _torch.as_tensor(idx))
        if out is not None:
            out.copy_(r)
            return out
        return r


class TorchBackend(ArrayBackend):
    """Execute the hot paths on torch tensors (CPU or CUDA).

    Parameters
    ----------
    device : str
        Torch device string (``"cpu"`` default; ``"cuda"`` when available).
    """

    name = "torch"

    def __init__(self, device: str = "cpu"):
        if _torch is None:
            raise BackendUnavailable(
                "torch backend requested but PyTorch is not installed"
            )
        self.device = _torch.device(device)
        self.is_host = self.device.type == "cpu"
        self.xp = _TorchNamespace()

    def asarray(self, x):
        t = _torch.as_tensor(x, dtype=_torch.float64)
        return t.to(self.device) if t.device != self.device else t

    def from_numpy(self, x: np.ndarray):
        return _torch.as_tensor(np.ascontiguousarray(x), dtype=_torch.float64).to(
            self.device
        )

    def to_numpy(self, x) -> np.ndarray:
        if isinstance(x, np.ndarray):
            return x
        return x.detach().cpu().numpy()

    def owns(self, x) -> bool:
        return _torch is not None and isinstance(x, _torch.Tensor)

    def solve_triangular(self, L, B, lower: bool = True, transpose: bool = False):
        L = self.asarray(L)
        B = self.asarray(B)
        if transpose:
            L = L.mT if L.dim() > 1 else L
            lower = not lower
        B2 = B if B.dim() > 1 else B.reshape(-1, 1)
        X = _torch.linalg.solve_triangular(L, B2, upper=not lower)
        return X if B.dim() > 1 else X.reshape(-1)

    def eigh(self, A):
        return _torch.linalg.eigh(self.asarray(A))

    def synchronize(self) -> None:
        if self.device.type == "cuda":  # pragma: no cover - needs a GPU
            _torch.cuda.synchronize(self.device)
