"""CuPy backend: the kernels unchanged on a CUDA device.

CuPy mirrors the NumPy API closely enough that ``CupyBackend.xp`` is the
``cupy`` module itself — the same property that makes ``NumpyBackend``
bit-exact makes CuPy a near-drop-in GPU substrate.  The only extra
machinery is host/device transfer and the structured solver hooks.

Optional dependency: importing this module never fails; constructing
:class:`CupyBackend` without cupy (or without a visible CUDA device)
raises :class:`~repro.backend.base.BackendUnavailable`.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend, BackendUnavailable

try:  # pragma: no cover - exercised only when cupy is installed
    import cupy as _cupy
except ImportError:  # pragma: no cover
    _cupy = None

__all__ = ["CupyBackend"]


class CupyBackend(ArrayBackend):
    """Execute the hot paths on CuPy arrays (CUDA)."""

    name = "cupy"
    is_host = False

    def __init__(self):
        if _cupy is None:
            raise BackendUnavailable(
                "cupy backend requested but CuPy is not installed"
            )
        try:
            _cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:  # pragma: no cover - no CUDA in CI
            raise BackendUnavailable(f"cupy installed but no CUDA device: {exc}")
        self.xp = _cupy

    def asarray(self, x):
        return _cupy.asarray(x, dtype=_cupy.float64)

    def from_numpy(self, x: np.ndarray):
        return _cupy.asarray(x, dtype=_cupy.float64)

    def to_numpy(self, x) -> np.ndarray:
        if isinstance(x, np.ndarray):
            return x
        return _cupy.asnumpy(x)

    def owns(self, x) -> bool:
        return _cupy is not None and isinstance(x, _cupy.ndarray)

    def solve_triangular(self, L, B, lower: bool = True, transpose: bool = False):
        import cupyx.scipy.linalg as cpx_linalg  # pragma: no cover

        return cpx_linalg.solve_triangular(  # pragma: no cover
            self.asarray(L), self.asarray(B), lower=lower,
            trans="T" if transpose else "N",
        )

    def eigh(self, A):  # pragma: no cover - needs a GPU
        return _cupy.linalg.eigh(self.asarray(A))

    def synchronize(self) -> None:  # pragma: no cover - needs a GPU
        _cupy.cuda.runtime.deviceSynchronize()
