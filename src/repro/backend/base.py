"""The array-backend protocol: the ~20 ops the hot paths actually use.

The whole point of the paper is that one algorithm (DBBR + pipelined
bulge chasing) runs at wildly different speeds depending on *where* its
BLAS3 operations execute.  :class:`ArrayBackend` is the seam that makes
the execution substrate pluggable: every kernel in :mod:`repro.core`
performs its hot-path array operations through a backend's ``xp``
namespace (a NumPy-compatible module view) and the few structured
operations listed below, never through ``numpy`` directly.

Contract
--------
A backend owns arrays of one *native* type (``numpy.ndarray``,
``torch.Tensor``, ``cupy.ndarray``, ...), always in float64 — the
pipeline is an FP64 algorithm and backends must not silently downcast.
The required surface is:

=====================  =====================================================
group                  operations
=====================  =====================================================
creation               ``xp.empty``, ``xp.zeros``, ``xp.eye``,
                       ``xp.arange``, ``xp.full``, ``asarray``
conversion             ``to_numpy``, ``from_numpy`` (host <-> device)
elementwise            ``xp.add/subtract/multiply/divide`` (with ``out=``),
                       ``xp.sqrt``, ``xp.copysign``, ``xp.abs``,
                       ``xp.where``, ``xp.minimum``/``xp.maximum``
BLAS3 / batched        ``xp.matmul`` (2-D and stacked 3-D, with ``out=``),
                       the ``@`` operator on native arrays
reductions             ``xp.dot`` / batched inner products, ``norm``
gather / scatter       ``xp.take`` (flat-index, with ``out=``), fancy
                       integer indexing for flat-index scatter
structure              ``xp.hstack``/``xp.vstack``, ``xp.tril``/``xp.triu``
                       (with ``k=``/offset), ``xp.outer``, ``xp.copy``
solvers                ``solve_triangular`` (lower), ``eigh`` (fallback
                       dense solver for cross-checks)
=====================  =====================================================

Host/device split
-----------------
Only *data-plane* operations go through the backend.  Control-plane work
— pipeline schedules, index templates, flop accounting, scalar
Householder generation inside the panel QR (the BLAS2-bound part the
paper accepts on the host, exactly like MAGMA's hybrid CPU-panel/GPU-
update design) — stays in host NumPy.  The boundary is the same one a
real GPU implementation draws between kernel launches and the driver
loop that computes launch geometry.

``NumpyBackend`` is the bit-exact default: its ``xp`` *is* the ``numpy``
module, so threading a numpy-backed :class:`ExecutionContext` through the
pipeline changes no arithmetic whatsoever.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["ArrayBackend", "BackendUnavailable"]


class BackendUnavailable(RuntimeError):
    """Requested backend's underlying library is not importable (or has no
    usable device).  Raised by :func:`repro.backend.get_backend`."""


class ArrayBackend:
    """Base class for array backends.

    Subclasses must set :attr:`name` and :attr:`xp` and implement the
    conversion and solver hooks.  ``xp`` is a NumPy-compatible namespace:
    for the default backend it is literally the ``numpy`` module; for
    others it is a shim exposing the operation subset documented in the
    module docstring, operating on the backend's native array type.
    """

    #: Registry name ("numpy", "torch", "cupy").
    name: str = "abstract"
    #: NumPy-compatible operation namespace (module or shim object).
    xp: Any = None
    #: True when native arrays live in host memory shared with NumPy.
    is_host: bool = True

    # -- conversion ---------------------------------------------------
    def asarray(self, x: Any) -> Any:
        """Coerce ``x`` to a native float64 array (no copy if possible)."""
        raise NotImplementedError

    def from_numpy(self, x: np.ndarray) -> Any:
        """Host ndarray -> native array (zero-copy when is_host)."""
        raise NotImplementedError

    def to_numpy(self, x: Any) -> np.ndarray:
        """Native array -> host ndarray (zero-copy when is_host)."""
        raise NotImplementedError

    def owns(self, x: Any) -> bool:
        """True if ``x`` is this backend's native array type."""
        raise NotImplementedError

    # -- structured solvers (beyond the xp namespace) ------------------
    def solve_triangular(self, L: Any, B: Any, lower: bool = True,
                         transpose: bool = False) -> Any:
        """Solve ``L X = B`` (or ``L^T X = B``) for triangular ``L``."""
        raise NotImplementedError

    def eigh(self, A: Any) -> tuple[Any, Any]:
        """Dense symmetric eigendecomposition fallback (cross-checks)."""
        raise NotImplementedError

    # -- bookkeeping ---------------------------------------------------
    def synchronize(self) -> None:
        """Barrier for async devices (no-op on host backends); benchmark
        timers call this so device work is not under-counted."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


def assert_f64(x: Any, what: str = "array") -> None:
    """Kernel-side dtype contract: *assert*, never convert.

    Entry points (:func:`repro.core.tridiag.tridiagonalize`,
    :func:`repro.core.evd.eigh`) coerce inputs to the working precision
    exactly once — float64 by default, float32 under a mixed-precision
    policy; inner kernels only verify, so a dtype bug (an integer array,
    a complex leak) surfaces at its source instead of being papered over
    by per-call ``asarray`` copies.  The name is historical: the accepted
    working widths are float64 and float32.
    """
    dt = getattr(x, "dtype", None)
    if dt is None or str(dt) not in (
        "float64",
        "torch.float64",
        "float32",
        "torch.float32",
    ):
        raise TypeError(
            f"{what} must already be float64 or float32 (got dtype={dt!r}); "
            "coerce at the tridiagonalize/eigh entry point, not inside kernels"
        )
