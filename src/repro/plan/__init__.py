"""Typed EVD plan layer: one planner + one stage runner.

``plan_evd(n, method=..., **knobs)`` resolves presets, block sizes and
every pipeline knob into a frozen, validated :class:`EVDPlan`;
``execute_plan(A, plan, ctx)`` runs it.  ``eigh``, ``eigh_partial``,
``svd`` and the serving workers all parse their kwargs into a plan at
the boundary and execute through this one runner, and the serving layer
keys its result cache on :meth:`EVDPlan.cache_token` so equivalent
request spellings coalesce.  See ``docs/api.md`` ("Planning layer").
"""

from .config import (
    BackTransformConfig,
    BulgeChaseConfig,
    EVDPlan,
    SolverConfig,
    TridiagConfig,
)
from .errors import PlanError
from .explain import explain_plan, predicted_stage_times
from .planner import (
    PIPELINE_KNOBS,
    PRESETS,
    auto_params,
    make_solver_config,
    plan_evd,
    plan_tridiag,
)
from .runner import execute_plan, execute_plan_partial, solve_tridiagonal_planned

__all__ = [
    "BackTransformConfig",
    "BulgeChaseConfig",
    "EVDPlan",
    "PIPELINE_KNOBS",
    "PRESETS",
    "PlanError",
    "SolverConfig",
    "TridiagConfig",
    "auto_params",
    "make_solver_config",
    "execute_plan",
    "execute_plan_partial",
    "explain_plan",
    "plan_evd",
    "plan_tridiag",
    "predicted_stage_times",
    "solve_tridiagonal_planned",
]
