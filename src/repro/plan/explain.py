"""``explain_plan`` — a resolved plan plus its model-predicted cost.

Maps each plan to the calibrated analytical model that covers it
(:mod:`repro.models`) and renders the predicted per-stage wall time at
device scale — the ``repro plan --explain`` output.  The prediction is
the *model's* time on the named device preset (H100 by default), not a
measurement of the local NumPy execution; it is the same machinery that
regenerates the paper's figures.
"""

from __future__ import annotations

from .config import EVDPlan

__all__ = ["explain_plan", "predicted_stage_times"]


def predicted_stage_times(plan: EVDPlan, device: str = "h100") -> dict[str, float]:
    """Model-predicted seconds per pipeline stage on ``device``.

    Empty for the dense tier (the models cover the tridiagonalization
    pipelines, not the vendor dense kernel).  The PLASMA tile path is
    approximated by the MAGMA two-stage model (same band-reduction /
    chase structure; the models do not calibrate tile kernels
    separately).
    """
    from ..gpusim.device import device_by_name
    from ..models.baselines import cusolver_syevd_times, magma_evd_times
    from ..models.proposed import proposed_evd_times

    if plan.tridiag is None:
        return {}
    dev = device_by_name(device)
    vectors = plan.solver.compute_vectors
    t = plan.tridiag
    if t.method == "dbbr":
        assert t.bandwidth is not None and t.second_block is not None
        bt = plan.back_transform
        st = proposed_evd_times(
            dev,
            plan.n,
            vectors,
            b=t.bandwidth,
            k=t.second_block,
            back_k=bt.group if bt is not None else t.second_block,
        )
    elif t.method in ("sbr", "tile"):
        assert t.bandwidth is not None
        st = magma_evd_times(dev, plan.n, vectors, b=t.bandwidth)
    else:  # direct
        assert t.direct_block is not None
        st = cusolver_syevd_times(dev, plan.n, vectors, nb=t.direct_block)
    return dict(st.stages)


def explain_plan(plan: EVDPlan, device: str = "h100") -> str:
    """The resolved plan tree plus the predicted stage breakdown."""
    lines = [plan.describe()]
    stages = predicted_stage_times(plan, device=device)
    if not stages:
        lines.append(
            f"\npredicted stages ({device}): none — the dense tier runs a "
            "single vendor kernel the stage models do not decompose"
        )
        return "\n".join(lines)
    total = sum(stages.values())
    lines.append(f"\npredicted stage breakdown on {device} (model time):")
    for name, secs in stages.items():
        frac = secs / total if total > 0 else 0.0
        lines.append(f"  {name:<12} {secs * 1e3:12.3f} ms  {frac:6.1%}")
    lines.append(f"  {'total':<12} {total * 1e3:12.3f} ms")
    if plan.tridiag is not None and plan.tridiag.method == "tile":
        lines.append(
            "  (PLASMA tile path approximated by the MAGMA two-stage model)"
        )
    return "\n".join(lines)
