"""The frozen, validated EVD plan tree.

An :class:`EVDPlan` is the single source of truth for *how* a symmetric
eigenproblem will be executed: which tridiagonalization method with
which resolved block sizes (:class:`TridiagConfig`), how the band is
chased to tridiagonal (:class:`BulgeChaseConfig`), which tridiagonal
eigensolver runs (:class:`SolverConfig`), how eigenvectors are
back-transformed (:class:`BackTransformConfig`), and on which array
backend.  Plans are produced by :func:`repro.plan.plan_evd` — never
hand-assembled — so every field is already validated and every ``None``
default already resolved to a concrete integer for the plan's ``n``.

Because the tree is frozen and *normalized* (knobs that cannot affect
the computation are cleared — e.g. ``bc_driver`` when the chase is not
pipelined, or the whole band/bulge/back-transform branch for the dense
tier), two requests that would execute identically serialize to the
same :meth:`EVDPlan.cache_token`, which is what lets the serving layer
coalesce ``method="proposed"`` with its fully-expanded kwarg spelling.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

__all__ = [
    "TridiagConfig",
    "BulgeChaseConfig",
    "SolverConfig",
    "BackTransformConfig",
    "EVDPlan",
]


@dataclass(frozen=True)
class TridiagConfig:
    """Stage 1: how ``A`` is reduced to (band, then) tridiagonal form.

    ``bandwidth``/``second_block`` hold the *resolved* ``b``/``k`` (the
    planner has already run ``auto_params`` and the ``b | k`` clamping),
    so reading a plan tells you exactly what will execute.  Fields that
    do not apply to the method are ``None`` (``second_block`` outside
    DBBR, ``direct_block`` outside the one-stage path, ...).
    """

    method: str  # "dbbr" | "sbr" | "tile" | "direct"
    bandwidth: int | None = None
    second_block: int | None = None
    syr2k_kind: str | None = None
    direct_block: int | None = None


@dataclass(frozen=True)
class BulgeChaseConfig:
    """Stage 2: band -> tridiagonal chase (two-stage methods only).

    ``bc_driver``/``max_sweeps`` are meaningful only when ``pipelined``
    and are normalized to ``None`` otherwise.
    """

    pipelined: bool = True
    bc_driver: str | None = None  # "wavefront" | "pipelined"
    max_sweeps: int | None = None


@dataclass(frozen=True)
class SolverConfig:
    """Stage 3: the tridiagonal eigensolver (or the dense tier).

    ``secular_mode`` applies only to the divide-and-conquer solver and
    is ``None`` for every other kind.
    """

    kind: str  # "dc" | "qr" | "bisect" | "dense"
    compute_vectors: bool = True
    secular_mode: str | None = None  # "batched" | "scalar" (dc only)


@dataclass(frozen=True)
class BackTransformConfig:
    """Stage 4: the SBR back transformation used by ``apply_q``.

    ``group`` is the resolved group width of the incremental merge
    (Figure 13) — the planner defaults it to the DBBR ``second_block``
    exactly as :func:`repro.core.tridiagonalize` always has.
    """

    method: str = "incremental"  # "incremental" | "blocked" | "recursive"
    group: int = 128


@dataclass(frozen=True)
class EVDPlan:
    """A fully-resolved, validated execution plan for one eigenproblem.

    ``method`` keeps the user-facing spelling (a preset name like
    ``"proposed"`` or a raw method like ``"dbbr"``) for display; the
    semantics live entirely in the four config branches, which is why
    :meth:`cache_token` ignores ``method`` — equivalent spellings
    produce equal tokens.  ``tridiag``/``bulge_chase``/``back_transform``
    are ``None`` where the pipeline has no such stage (all three for the
    dense tier; the latter two for the one-stage direct method).

    ``fallback="chain"`` marks the plan for escalated execution through
    :func:`repro.resilience.execute_plan_with_fallback` (proposed ->
    dense -> QR iteration on convergence/verification failure).  The
    field is *not* part of :meth:`cache_token`: a chain that succeeds on
    its first link is bit-identical to running the plain plan, so the
    two must share cache entries — escalated results are instead keyed
    under the plan that actually produced them (see
    :mod:`repro.serve.cache`).

    ``precision`` names the :class:`~repro.precision.PrecisionPolicy`
    the plan executes under (``"fp64"`` — the historical path —
    ``"mixed"`` or ``"fp32"``).  Unlike ``fallback`` it *is* part of
    :meth:`cache_token` whenever it differs from ``"fp64"``: the policy
    changes the arithmetic, so fp32- and fp64-produced results must
    never alias in the serving cache.
    """

    n: int
    method: str
    backend: str
    solver: SolverConfig
    tridiag: TridiagConfig | None = None
    bulge_chase: BulgeChaseConfig | None = None
    back_transform: BackTransformConfig | None = None
    tuning: str = "manual"  # "manual" | "model"
    fallback: str = "none"  # "none" | "chain"
    precision: str = "fp64"  # "fp64" | "mixed" | "fp32"

    @property
    def is_dense(self) -> bool:
        """True for the dense LAPACK tier (no tridiagonal pipeline)."""
        return self.tridiag is None

    # -- canonical serialization --------------------------------------
    def cache_token(self) -> str:
        """Canonical string identity of the *computation* this plan runs.

        Two plans share a token iff they execute identically: the token
        is built from the resolved config branches (and ``n``/backend),
        not from the preset spelling or the tuning mode that produced
        them.  The serving layer keys its result cache and single-flight
        coalescing on ``matrix_fingerprint(A) + cache_token()``.
        """
        parts = [f"n={self.n}", f"backend={self.backend}"]
        t = self.tridiag
        if t is None:
            parts.append("tridiag=dense")
        else:
            parts.append(
                "tridiag="
                f"{t.method},b={t.bandwidth},k={t.second_block},"
                f"syr2k={t.syr2k_kind},direct_block={t.direct_block}"
            )
        bc = self.bulge_chase
        if bc is not None:
            parts.append(
                f"bc=pipelined={bc.pipelined},driver={bc.bc_driver},"
                f"max_sweeps={bc.max_sweeps}"
            )
        s = self.solver
        parts.append(
            f"solver={s.kind},vectors={s.compute_vectors},secular={s.secular_mode}"
        )
        bt = self.back_transform
        if bt is not None:
            parts.append(f"bt={bt.method},group={bt.group}")
        if self.precision != "fp64":
            # The default is omitted so every pre-precision token (and
            # cache entry) stays stable; any other policy changes the
            # arithmetic and must key separately.
            parts.append(f"precision={self.precision}")
        return ";".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-stable nested dict (golden-snapshot format)."""
        return {
            "n": self.n,
            "method": self.method,
            "backend": self.backend,
            "tuning": self.tuning,
            "fallback": self.fallback,
            "precision": self.precision,
            "tridiag": None if self.tridiag is None else asdict(self.tridiag),
            "bulge_chase": (
                None if self.bulge_chase is None else asdict(self.bulge_chase)
            ),
            "solver": asdict(self.solver),
            "back_transform": (
                None if self.back_transform is None else asdict(self.back_transform)
            ),
            "cache_token": self.cache_token(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EVDPlan":
        """Inverse of :meth:`to_dict` (``cache_token`` is recomputed)."""
        return cls(
            n=int(data["n"]),
            method=str(data["method"]),
            backend=str(data["backend"]),
            tuning=str(data.get("tuning", "manual")),
            fallback=str(data.get("fallback", "none")),
            precision=str(data.get("precision", "fp64")),
            tridiag=(
                None
                if data["tridiag"] is None
                else TridiagConfig(**data["tridiag"])
            ),
            bulge_chase=(
                None
                if data["bulge_chase"] is None
                else BulgeChaseConfig(**data["bulge_chase"])
            ),
            solver=SolverConfig(**data["solver"]),
            back_transform=(
                None
                if data["back_transform"] is None
                else BackTransformConfig(**data["back_transform"])
            ),
        )

    # -- display -------------------------------------------------------
    def describe(self) -> str:
        """Human-readable resolved-plan tree (``repro plan`` output)."""
        fb = f"  fallback={self.fallback}" if self.fallback != "none" else ""
        pr = f"  precision={self.precision}" if self.precision != "fp64" else ""
        lines = [
            f"EVDPlan  n={self.n}  method={self.method!r}  "
            f"backend={self.backend}  tuning={self.tuning}{fb}{pr}"
        ]
        t = self.tridiag
        if t is None:
            lines.append("  tridiag:        none (dense LAPACK tier)")
        elif t.method == "direct":
            lines.append(
                f"  tridiag:        direct one-stage (block={t.direct_block})"
            )
        else:
            extra = ""
            if t.method == "dbbr":
                extra = f", k={t.second_block}, syr2k={t.syr2k_kind}"
            lines.append(f"  tridiag:        {t.method} (b={t.bandwidth}{extra})")
        bc = self.bulge_chase
        if bc is not None:
            if bc.pipelined:
                cap = "unbounded" if bc.max_sweeps is None else str(bc.max_sweeps)
                lines.append(
                    f"  bulge chase:    pipelined/{bc.bc_driver} (max_sweeps={cap})"
                )
            else:
                lines.append("  bulge chase:    sequential")
        s = self.solver
        sec = f", secular={s.secular_mode}" if s.secular_mode is not None else ""
        lines.append(
            f"  solver:         {s.kind} (vectors={s.compute_vectors}{sec})"
        )
        bt = self.back_transform
        if bt is not None:
            lines.append(f"  back transform: {bt.method} (group={bt.group})")
        lines.append(f"  cache token:    {self.cache_token()}")
        return "\n".join(lines)
