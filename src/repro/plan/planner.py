"""``plan_evd`` — the one place pipeline configuration is resolved.

Historically every entry point re-plumbed its own kwargs subset:
``eigh`` merged stringly-typed preset dicts into ``**tridiag_kwargs``,
``tridiagonalize`` validated its twelve knobs one ``if`` at a time (and
only once execution reached them), and the serving layer canonicalized
raw dicts for cache keys.  The planner replaces all of that: presets are
expanded, ``auto_params`` runs, every knob is validated with a typed
:class:`~repro.plan.PlanError` naming the valid choices, knobs that
cannot affect the requested computation are normalized away, and the
result is a frozen :class:`~repro.plan.EVDPlan` that
:func:`repro.plan.execute_plan` runs verbatim.

``tuning="model"`` additionally consults the calibrated analytical
models (:mod:`repro.models` / :mod:`repro.gpusim`) to choose the DBBR
``(b, k)`` pair minimizing the predicted band-reduction + bulge-chasing
time on a named device, instead of the scale-based ``auto_params``
heuristic.  ``tuning="auto"`` goes one step further and consults the
*measured* per-device tuning database (:mod:`repro.tune`): a store hit
fills whatever knobs the caller left unset, a miss falls back to
``"model"`` — read-only either way, and always resolving into the same
frozen plan fields (and ``cache_token``) the explicit knob spelling
would produce.
"""

from __future__ import annotations

from typing import Any

from .config import (
    BackTransformConfig,
    BulgeChaseConfig,
    EVDPlan,
    SolverConfig,
    TridiagConfig,
)
from .errors import PlanError, bad_choice

__all__ = ["plan_evd", "plan_tridiag", "auto_params", "make_solver_config"]

#: Preset name -> expanded pipeline knobs (the paper's four comparisons).
PRESETS: dict[str, dict[str, Any]] = {
    "proposed": dict(
        method="dbbr",
        pipelined=True,
        bc_driver="wavefront",
        back_transform="incremental",
    ),
    "magma": dict(method="sbr", pipelined=False, back_transform="blocked"),
    "cusolver": dict(method="direct"),
    "plasma": dict(method="tile", pipelined=False),
}

TRIDIAG_METHODS = ("dbbr", "sbr", "tile", "direct")
EVD_METHODS = tuple(PRESETS) + TRIDIAG_METHODS + ("dense",)
SOLVERS = ("dc", "qr", "bisect")
SECULAR_MODES = ("batched", "scalar")
BC_DRIVERS = ("wavefront", "pipelined")
BACK_TRANSFORMS = ("incremental", "blocked", "recursive")
SYR2K_KINDS = ("square", "rect", "reference")
TUNINGS = ("manual", "model", "auto")
FALLBACKS = ("none", "chain")
PRECISIONS = ("fp64", "mixed", "fp32")

#: Every pipeline knob ``plan_evd``/``eigh`` accept beyond the named
#: parameters (the historical ``**tridiag_kwargs`` surface).
PIPELINE_KNOBS = (
    "bandwidth",
    "second_block",
    "pipelined",
    "bc_driver",
    "max_sweeps",
    "syr2k_kind",
    "direct_block",
    "back_transform",
    "back_transform_group",
)


def auto_params(n: int) -> tuple[int, int]:
    """Reasonable ``(bandwidth, second_block)`` for an ``n x n`` problem.

    The paper uses ``b = 32, k = 1024`` at H100 scale; at test scale we
    shrink both while preserving ``b | k``, ``k <= n`` and ``b << n``.
    """
    b = max(2, min(32, n // 8))
    groups = max(1, min(32, n // (4 * b)))
    k = b * groups
    if k > n:
        # Tiny problems: keep k a multiple of b that fits in the matrix
        # (k > n would make DBBR defer updates past the trailing edge).
        k = max(b, (n // b) * b)
    return b, k


def _as_int(knob: str, value: Any, minimum: int = 1) -> int:
    try:
        out = int(value)
    except (TypeError, ValueError) as exc:
        raise PlanError(f"{knob} must be an integer, got {value!r}") from exc
    if out < minimum:
        raise PlanError(f"{knob} must be >= {minimum}, got {out}")
    return out


def _check_unknown(knobs: dict[str, Any]) -> None:
    unknown = sorted(set(knobs) - set(PIPELINE_KNOBS))
    if unknown:
        raise PlanError(
            f"unknown pipeline knob(s) {', '.join(repr(k) for k in unknown)}: "
            f"valid knobs are {', '.join(PIPELINE_KNOBS)}"
        )


def make_solver_config(
    solver: str,
    compute_vectors: bool,
    secular_mode: str | None = "batched",
) -> SolverConfig:
    """Validated :class:`SolverConfig` (``secular_mode`` kept only where
    it matters — the divide-and-conquer solver)."""
    if solver not in SOLVERS + ("dense",):
        raise bad_choice("tridiagonal solver", solver, SOLVERS)
    if solver == "dc":
        if secular_mode not in SECULAR_MODES:
            raise bad_choice("secular_mode", secular_mode, SECULAR_MODES)
    else:
        secular_mode = None
    return SolverConfig(
        kind=solver, compute_vectors=bool(compute_vectors), secular_mode=secular_mode
    )


def _resolve_pipeline(
    n: int,
    method: str,
    knobs: dict[str, Any],
    tuning: str,
    device: str,
) -> tuple[TridiagConfig, BulgeChaseConfig | None, BackTransformConfig | None]:
    """Resolve + validate the tridiag/bulge/back-transform branch for a
    raw method name, reproducing ``tridiagonalize``'s historical clamps
    bit-for-bit (``auto_params``, ``b | k``, group defaulting)."""
    if method == "direct":
        # One-stage path: every band/bulge/back-transform knob is inert
        # (tridiagonalize has always ignored them here) — normalize away.
        block = _as_int("direct_block", knobs.get("direct_block", 32))
        return TridiagConfig(method="direct", direct_block=block), None, None

    bandwidth = knobs.get("bandwidth")
    second_block = knobs.get("second_block")
    if tuning == "model" and method == "dbbr":
        mb, mk = _model_tuned_dbbr(n, device)
        if bandwidth is None:
            bandwidth = mb
        if second_block is None and mk is not None:
            second_block = mk

    b_auto, k_auto = auto_params(n)
    b = _as_int("bandwidth", bandwidth) if bandwidth is not None else b_auto
    b = max(1, min(b, max(n - 2, 1)))

    k: int | None = None
    syr2k: str | None = None
    if method == "dbbr":
        syr2k = knobs.get("syr2k_kind", "square")
        if syr2k not in SYR2K_KINDS:
            raise bad_choice("syr2k_kind", syr2k, SYR2K_KINDS)
        k = (
            _as_int("second_block", second_block)
            if second_block is not None
            else max(k_auto, b)
        )
        k = max(b, (k // b) * b)
    tridiag = TridiagConfig(method=method, bandwidth=b, second_block=k, syr2k_kind=syr2k)

    pipelined = bool(knobs.get("pipelined", True))
    driver: str | None = None
    max_sweeps: int | None = None
    if pipelined:
        driver = knobs.get("bc_driver", "wavefront")
        if driver not in BC_DRIVERS:
            raise bad_choice("bc_driver", driver, BC_DRIVERS)
        raw_sweeps = knobs.get("max_sweeps")
        max_sweeps = (
            _as_int("max_sweeps", raw_sweeps) if raw_sweeps is not None else None
        )
    bulge = BulgeChaseConfig(pipelined=pipelined, bc_driver=driver, max_sweeps=max_sweeps)

    bt_method = knobs.get("back_transform", "incremental")
    if bt_method not in BACK_TRANSFORMS:
        raise bad_choice("back_transform", bt_method, BACK_TRANSFORMS)
    raw_group = knobs.get("back_transform_group")
    if raw_group is not None:
        group = _as_int("back_transform_group", raw_group)
    else:
        group = k if method == "dbbr" else 4 * b
    assert group is not None
    back = BackTransformConfig(method=bt_method, group=group)
    return tridiag, bulge, back


def _store_tuned_knobs(n: int, method: str, backend: str) -> dict[str, Any] | None:
    """The persistent tuning database's knobs for this problem, or
    ``None`` on a miss (which :mod:`repro.tune` records in its stats).

    Strictly read-only — ``tuning="auto"`` never touches the filesystem
    beyond reading the database, and a missing or corrupt database is
    just a miss.  Knobs are filtered to the known pipeline surface so a
    record written by a newer build cannot smuggle in an unknown knob.
    """
    from ..tune.store import lookup_tuned_knobs

    tuned = lookup_tuned_knobs(n, method, backend=backend)
    if not tuned:
        return None
    return {k: v for k, v in tuned.items() if k in PIPELINE_KNOBS}


def _resolve_auto_tuning(
    n: int, method: str, knobs: dict[str, Any], backend: str
) -> tuple[dict[str, Any], str]:
    """Resolve ``tuning="auto"``: on a store hit, fill unset knobs from
    the tuned record and proceed as the explicit (``"manual"``)
    spelling; on a miss, fall back to the ``"model"`` strategy."""
    tuned = _store_tuned_knobs(n, method, backend)
    if tuned is None:
        return knobs, "model"
    return {**tuned, **knobs}, "manual"


def _model_tuned_dbbr(n: int, device: str) -> tuple[int | None, int | None]:
    """Pick the DBBR ``(b, k)`` minimizing the calibrated model's
    band-reduction + bulge-chasing time on ``device``.

    Candidates keep the paper's constraints (``b | k``, ``k <= n``); ties
    break toward the smaller ``(b, k)`` so the choice is deterministic.
    Problems too small for any candidate fall back to ``auto_params``.
    """
    from ..gpusim.device import device_by_name
    from ..models.proposed import dbbr_time, gpu_bc_time

    dev = device_by_name(device)
    best: tuple[float, int, int] | None = None
    for b in (8, 16, 32, 64):
        if b > max(n - 2, 1):
            continue
        t_bc = gpu_bc_time(dev, n, b)
        for mult in (4, 8, 16, 32, 64):
            k = b * mult
            if k > n:
                continue
            t = dbbr_time(dev, n, b, k) + t_bc
            if best is None or t < best[0]:
                best = (t, b, k)
    if best is None:
        return None, None
    return best[1], best[2]


def plan_tridiag(
    n: int,
    method: str = "dbbr",
    *,
    tuning: str = "manual",
    device: str = "h100",
    **knobs: Any,
) -> tuple[TridiagConfig, BulgeChaseConfig | None, BackTransformConfig | None]:
    """Resolve the tridiagonalization branch for ``tridiagonalize``.

    Accepts the raw method names (``"dbbr"``/``"sbr"``/``"tile"``/
    ``"direct"``) plus the historical knob surface; raises
    :class:`PlanError` on anything unknown.
    """
    if method not in TRIDIAG_METHODS:
        raise bad_choice("tridiagonalization method", method, TRIDIAG_METHODS)
    if tuning not in TUNINGS:
        raise bad_choice("tuning", tuning, TUNINGS)
    _check_unknown(knobs)
    if tuning == "auto":
        knobs, tuning = _resolve_auto_tuning(int(n), method, dict(knobs), "numpy")
    return _resolve_pipeline(n, method, knobs, tuning, device)


def plan_evd(
    n: int,
    method: str = "proposed",
    *,
    compute_vectors: bool = True,
    solver: str = "dc",
    secular_mode: str = "batched",
    backend: str = "numpy",
    tuning: str = "manual",
    device: str = "h100",
    fallback: str = "none",
    precision: str = "fp64",
    **knobs: Any,
) -> EVDPlan:
    """Resolve a full EVD execution plan for an ``n x n`` problem.

    Parameters mirror :func:`repro.eigh`: ``method`` is a preset
    (``"proposed"``/``"magma"``/``"cusolver"``/``"plasma"``/``"dense"``)
    or a raw tridiagonalization method, ``**knobs`` is the historical
    ``**tridiag_kwargs`` surface (``bandwidth``, ``second_block``,
    ``pipelined``, ``bc_driver``, ``max_sweeps``, ``syr2k_kind``,
    ``direct_block``, ``back_transform``, ``back_transform_group``).
    ``tuning="model"`` lets the calibrated cost models pick the DBBR
    ``(b, k)`` for ``device`` where the caller left them unset;
    ``tuning="auto"`` first consults the persistent per-device tuning
    database (:mod:`repro.tune`, ``$REPRO_TUNE_DB``) and falls back to
    ``"model"`` on a miss.
    ``fallback="chain"`` marks the plan for escalated execution
    (:func:`repro.resilience.execute_plan_with_fallback`): on a typed
    convergence or verification failure the dense LAPACK tier and then
    the tridiagonal QR iteration are tried in order.
    ``precision`` selects the per-stage dtype policy
    (:mod:`repro.precision`): ``"fp64"`` (default, the historical
    bit-exact path), ``"mixed"`` (fp32 pipeline + Ogita–Aishima
    refinement back to fp64 tolerances) or ``"fp32"`` (raw single
    precision).  Non-default policies require the NumPy backend (the
    accelerator backends coerce to float64 at their boundary) and —
    when the policy refines — eigenvectors (``compute_vectors=True``),
    since refinement operates on eigenpairs.

    Raises
    ------
    PlanError
        Unknown method/solver/knob name, or an invalid knob value — at
        planning time, naming the valid choices, instead of a
        ``TypeError`` deep inside the pipeline.
    """
    try:
        n = int(n)
    except (TypeError, ValueError) as exc:
        raise PlanError(f"n must be an integer, got {n!r}") from exc
    if n < 0:
        raise PlanError(f"n must be >= 0, got {n}")
    if not isinstance(backend, str):
        raise PlanError(
            f"plan backend must be a backend name string, got {type(backend).__name__}"
        )
    if tuning not in TUNINGS:
        raise bad_choice("tuning", tuning, TUNINGS)
    if fallback not in FALLBACKS:
        raise bad_choice("fallback", fallback, FALLBACKS)
    if precision not in PRECISIONS:
        raise bad_choice("precision", precision, PRECISIONS)
    if method not in EVD_METHODS:
        raise bad_choice("method", method, EVD_METHODS)
    if precision != "fp64":
        if method == "dense":
            raise PlanError(
                f"precision={precision!r} applies to the tridiagonalization "
                "pipeline; the dense LAPACK tier has no low-precision path — "
                "use one of 'proposed', 'magma', 'cusolver', 'plasma'"
            )
        if backend != "numpy":
            raise PlanError(
                f"precision={precision!r} requires backend 'numpy' (the "
                f"accelerator backends coerce to float64 at their boundary), "
                f"got backend {backend!r}"
            )
        if precision == "mixed" and not compute_vectors:
            raise PlanError(
                "precision='mixed' refines eigen*pairs* and therefore needs "
                "compute_vectors=True; use precision='fp32' for a raw "
                "low-precision eigenvalues-only solve"
            )
    _check_unknown(knobs)

    if method == "dense":
        # The dense tier bypasses the pipeline entirely: every pipeline
        # knob and the solver choice are inert (eigh has always ignored
        # them here) — normalize so equivalent requests coalesce.
        return EVDPlan(
            n=n,
            method="dense",
            backend=backend,
            solver=SolverConfig(
                kind="dense", compute_vectors=bool(compute_vectors), secular_mode=None
            ),
            tuning=tuning,
            fallback=fallback,
            precision=precision,
        )

    preset = PRESETS.get(method)
    if preset is not None:
        merged = {**preset, **knobs}
        raw_method = str(merged.pop("method"))
    else:
        merged = dict(knobs)
        raw_method = method
    resolve_tuning = tuning
    if tuning == "auto":
        # Store hit: tuned knobs fill whatever the preset and the caller
        # left unset (explicit knobs always win), and resolution proceeds
        # exactly as the explicit spelling — same clamps, same frozen
        # fields, same cache_token.  Miss: pure fallback to "model".
        merged, resolve_tuning = _resolve_auto_tuning(n, raw_method, merged, backend)
    solver_cfg = make_solver_config(solver, compute_vectors, secular_mode)
    tridiag, bulge, back = _resolve_pipeline(
        n, raw_method, merged, resolve_tuning, device
    )
    return EVDPlan(
        n=n,
        method=method,
        backend=backend,
        solver=solver_cfg,
        tridiag=tridiag,
        bulge_chase=bulge,
        back_transform=back,
        tuning=tuning,
        fallback=fallback,
        precision=precision,
    )
