"""Typed validation errors for the plan layer.

Every rejection the planner produces is a :class:`PlanError` — a
``ValueError`` subclass (so code that caught the pipeline's historical
``ValueError``/``TypeError`` mix keeps working), also rooted at
:class:`~repro.resilience.ReproError` like every deliberate failure in
the stack, whose message always names the offending knob *and* the
valid choices.  The serving layer relies on the type to fail
misconfigured submissions fast, at ``submit()`` time, instead of deep
inside a worker thread.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..resilience.errors import ReproError

__all__ = ["PlanError"]


class PlanError(ReproError, ValueError):
    """A pipeline-plan knob is unknown, has an invalid value, or the
    requested combination cannot be executed."""


def bad_choice(knob: str, value: object, choices: Iterable[str]) -> PlanError:
    """A uniform "got X, expected one of ..." error for string knobs."""
    listed = ", ".join(repr(c) for c in choices)
    return PlanError(f"unknown {knob} {value!r}: valid choices are {listed}")
