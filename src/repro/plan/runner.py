"""``execute_plan`` — the single stage runner behind every entry point.

One function executes a resolved :class:`~repro.plan.EVDPlan` end to
end: tridiagonalize (via the resolved-config driver in
:mod:`repro.core.tridiag`), tridiagonal eigensolve, back transformation
— or the stacked dense tier when the plan has no pipeline.  ``eigh``,
``eigh_partial``, :func:`repro.core.svd.svd`'s tridiagonal solve, and
every :class:`repro.serve.SolverService` worker all route through here,
so adding a pipeline stage (look-ahead band reduction, multi-device
sharding) is a change to *one* dispatch site.

The runner is bit-identical to the historical per-entry-point dispatch:
stage boundaries, stage-event metadata, array copies and argument
defaulting are reproduced exactly (regression-tested over the full
preset x solver grid in ``tests/plan/test_runner_bitexact.py``).

Imports of :mod:`repro.core` are deferred to call time: ``core``
modules import the planner while they are being imported, so a
module-level back-edge here would cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from ..resilience.faults import maybe_corrupt
from .config import EVDPlan, SolverConfig
from .errors import PlanError, bad_choice

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.evd import EVDResult

__all__ = ["execute_plan", "execute_plan_partial", "solve_tridiagonal_planned"]


def _resolve_plan_context(
    plan: EVDPlan, ctx: ExecutionContext | Any | None
) -> ExecutionContext:
    return resolve_context(ctx if ctx is not None else plan.backend)


def _maybe_corrupt_result(result: "EVDResult") -> "EVDResult":
    """Fault-injection hook at site ``"runner.result"``: poison one entry
    of the assembled payload (eigenvectors when present, else
    eigenvalues).  A no-op returning ``result`` itself unless a ``nan``
    fault is installed — the bit-exactness contract with faults off."""
    if result.eigenvectors is not None:
        V = maybe_corrupt("runner.result", result.eigenvectors)
        if V is not result.eigenvectors:
            result.eigenvectors = V
    else:
        lam = maybe_corrupt("runner.result", result.eigenvalues)
        if lam is not result.eigenvalues:
            result.eigenvalues = lam
    return result


def _check_plan_matches(A: np.ndarray, plan: EVDPlan) -> None:
    """A plan resolved for the wrong ``n`` would silently run the wrong
    block sizes — fail loudly instead.  Non-square inputs pass through:
    the pipeline's own validation raises the typed shape errors."""
    if A.ndim == 2 and A.shape[0] == A.shape[1] and A.shape[0] != plan.n:
        raise PlanError(
            f"plan was resolved for n = {plan.n} but the matrix is "
            f"{A.shape[0]} x {A.shape[0]}; re-plan with plan_evd(n={A.shape[0]}, ...)"
        )


def solve_tridiagonal_planned(
    d: np.ndarray,
    e: np.ndarray,
    solver: SolverConfig,
    ctx: ExecutionContext | None = None,
    vector_dtype: np.dtype | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Run the plan's tridiagonal eigensolver on ``(d, e)``.

    The one dispatch point over ``"dc"``/``"qr"``/``"bisect"`` — shared
    by :func:`execute_plan` and :func:`repro.core.svd.svd` (which solves
    a Golub–Kahan tridiagonal through the same stage).

    ``vector_dtype`` (mixed-precision policies only) drops the D&C
    eigenvector carrying and merge GEMMs to the given dtype; the
    eigenvalue/secular machinery always runs fp64.  ``None`` — the
    default and the only value the fp64 path ever passes — is
    bit-identical to the historical solver.  The ``"qr"``/``"bisect"``
    solvers ignore it (their vectors are fp64 and the precision driver
    casts afterwards).
    """
    from ..eig.dc import dc_eigh
    from ..eig.qr_iteration import tridiag_qr_eigh
    from ..eig.sturm import eigh_bisect

    if solver.kind == "dc":
        lam, U = dc_eigh(
            d,
            e,
            compute_vectors=solver.compute_vectors,
            ctx=ctx,
            secular_mode=solver.secular_mode or "batched",
            vector_dtype=vector_dtype,
        )
        return lam, U
    if solver.kind == "qr":
        return tridiag_qr_eigh(d, e, compute_vectors=solver.compute_vectors)
    if solver.kind == "bisect":
        return eigh_bisect(d, e, compute_vectors=solver.compute_vectors)
    raise bad_choice("tridiagonal solver", solver.kind, ("dc", "qr", "bisect"))


def execute_plan(
    A: np.ndarray,
    plan: EVDPlan,
    ctx: ExecutionContext | Any | None = None,
) -> "EVDResult":
    """Execute a resolved plan on ``A`` and return the ``EVDResult``.

    ``ctx`` overrides the execution context (a warm serving-worker
    context, a hook-carrying benchmark context); when ``None`` a fresh
    context is resolved from ``plan.backend``.  Results are bit-identical
    to ``repro.eigh(A, **the kwargs the plan was built from)``.
    """
    from ..core.evd import EVDResult, eigh_stacked
    from ..core.tridiag import tridiagonalize_planned
    from ..core.validation import NonSquareError

    if plan.precision != "fp64":
        # Mixed/low-precision policies run through the precision driver
        # (fp32 pipeline, promote, refine, verify, escalate on stall).
        # Deferred import: repro.precision imports the plan layer.
        from ..precision.driver import execute_plan_precision

        return _maybe_corrupt_result(execute_plan_precision(A, plan, ctx=ctx))

    ctx = _resolve_plan_context(plan, ctx)
    if plan.is_dense:
        A = np.asarray(A)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise NonSquareError(f"expected a square matrix, got shape {A.shape}")
        _check_plan_matches(A, plan)
        return _maybe_corrupt_result(
            eigh_stacked(
                A[None], compute_vectors=plan.solver.compute_vectors, backend=ctx
            )[0]
        )
    A = np.asarray(A)
    _check_plan_matches(A, plan)
    with ctx.stage("tridiagonalize", method=plan.method):
        tri = tridiagonalize_planned(A, plan, ctx=ctx)
    with ctx.stage("tridiag_solver", solver=plan.solver.kind):
        lam, U = solve_tridiagonal_planned(tri.d, tri.e, plan.solver, ctx=ctx)
    V: np.ndarray | None = None
    if plan.solver.compute_vectors:
        assert U is not None
        with ctx.stage("back_transform"):
            V = np.array(U, copy=True)
            tri.apply_q(V)
    return _maybe_corrupt_result(
        EVDResult(
            eigenvalues=lam, eigenvectors=V, tridiag=tri, solver=plan.solver.kind
        )
    )


def execute_plan_partial(
    A: np.ndarray,
    plan: EVDPlan,
    indices: tuple[int, int],
    ctx: ExecutionContext | Any | None = None,
) -> "EVDResult":
    """Selected eigenpairs ``indices = (lo, hi)`` through the plan's
    tridiagonalization, Sturm bisection for exactly the requested
    eigenvalues, and inverse iteration + the plan's back transformation
    for their eigenvectors (the :func:`repro.eigh_partial` flow)."""
    from ..core.evd import EVDResult
    from ..core.tridiag import tridiagonalize_planned
    from ..eig.sturm import eigvals_bisect, inverse_iteration

    if plan.is_dense:
        raise PlanError(
            "method 'dense' has no tridiagonal factorization and cannot "
            "serve partial eigenproblems: use one of "
            "'proposed', 'magma', 'cusolver', 'plasma'"
        )
    ctx = _resolve_plan_context(plan, ctx)
    A = np.asarray(A)
    _check_plan_matches(A, plan)
    lo, hi = int(indices[0]), int(indices[1])
    n = plan.n
    if not (0 <= lo <= hi < n):
        raise ValueError(f"indices {(lo, hi)} out of range for n = {n}")
    with ctx.stage("tridiagonalize", method=plan.method):
        tri = tridiagonalize_planned(A, plan, ctx=ctx)
    idx = np.arange(lo, hi + 1)
    lam = eigvals_bisect(tri.d, tri.e, indices=idx)
    V: np.ndarray | None = None
    if plan.solver.compute_vectors:
        m = idx.size
        U = np.zeros((n, m))
        scale = max(float(np.max(np.abs(lam))), 1.0)
        cluster: list[np.ndarray] = []
        for j in range(m):
            against = cluster if (j > 0 and lam[j] - lam[j - 1] <= 1e-3 * scale) else None
            if against is None:
                cluster = []
            v = inverse_iteration(tri.d, tri.e, float(lam[j]), against=against)
            U[:, j] = v
            cluster.append(v)
        V = U
        tri.apply_q(V)
    return EVDResult(eigenvalues=lam, eigenvectors=V, tridiag=tri, solver="bisect")
