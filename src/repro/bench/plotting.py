"""Terminal plotting: render figure series as ASCII line/bar charts.

The CLI's ``figure`` command and the examples use this to *draw* the
paper's figures in a terminal — no plotting dependency, deterministic
output (testable), log-scale support for the wide dynamic ranges the
tridiagonalization comparisons span.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AsciiChart", "line_chart", "bar_chart"]

_MARKERS = "*o+x#@%&"


@dataclass
class AsciiChart:
    """A rendered chart: the text plus the legend mapping."""

    text: str
    legend: dict[str, str]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _scale(values, lo, hi, cells, log):
    if log:
        lo = math.log10(max(lo, 1e-300))
        hi = math.log10(max(hi, 1e-300))
        values = [math.log10(max(v, 1e-300)) for v in values]
    span = hi - lo if hi > lo else 1.0
    return [min(cells - 1, max(0, int((v - lo) / span * (cells - 1) + 0.5))) for v in values]


def line_chart(
    series: list[tuple[str, list[tuple[float, float]]]],
    width: int = 64,
    height: int = 18,
    logy: bool = False,
    logx: bool = False,
    title: str = "",
) -> AsciiChart:
    """Render ``[(name, [(x, y), ...]), ...]`` as an ASCII scatter/line grid.

    Points of each series get their own marker; collisions show the later
    series' marker.  Axes are annotated with min/max values.
    """
    pts = [(x, y) for _, p in series for x, y in p]
    if not pts:
        return AsciiChart(text="(no data)", legend={})
    xs = [x for x, _ in pts]
    ys = [y for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    legend: dict[str, str] = {}
    for idx, (name, p) in enumerate(series):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend[name] = marker
        if not p:
            continue
        cols = _scale([x for x, _ in p], x_lo, x_hi, width, logx)
        rows = _scale([y for _, y in p], y_lo, y_hi, height, logy)
        prev = None
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker
            if prev is not None:
                # Sparse interpolation between consecutive points.
                pc, pr = prev
                steps = max(abs(c - pc), abs(r - pr))
                for s in range(1, steps):
                    ic = pc + (c - pc) * s // steps
                    ir = pr + (r - pr) * s // steps
                    if grid[height - 1 - ir][ic] == " ":
                        grid[height - 1 - ir][ic] = "."
            prev = (c, r)
    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:.3g}"
    y_bot = f"{y_lo:.3g}"
    pad = max(len(y_top), len(y_bot))
    for i, row in enumerate(grid):
        label = y_top if i == 0 else (y_bot if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    x_axis = f"{x_lo:.3g}" + " " * max(1, width - len(f"{x_lo:.3g}") - len(f"{x_hi:.3g}")) + f"{x_hi:.3g}"
    lines.append(" " * (pad + 2) + x_axis)
    lines.append(
        " " * (pad + 2)
        + "  ".join(f"{m} {name}" for name, m in legend.items())
        + ("   [log y]" if logy else "")
    )
    return AsciiChart(text="\n".join(lines), legend=legend)


def bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> AsciiChart:
    """Horizontal bar chart (used for stage breakdowns like Figure 4)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return AsciiChart(text="(no data)", legend={})
    vmax = max(values) if max(values) > 0 else 1.0
    pad = max(len(str(l)) for l in labels)
    total = sum(values)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        bar = "#" * max(1 if v > 0 else 0, int(v / vmax * width))
        share = f" {v / total:6.1%}" if total > 0 else ""
        lines.append(f"{str(label):>{pad}} |{bar:<{width}} {v:.3g}{unit}{share}")
    return AsciiChart(text="\n".join(lines), legend={})
