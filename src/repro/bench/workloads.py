"""Workload generators for tests and benchmarks.

Symmetric matrices with controlled spectra: Gaussian orthogonal ensemble,
prescribed-eigenvalue constructions (clustered / geometric / uniform),
Wilkinson-style graded matrices, and band matrices.  All generators take
an explicit seed or Generator so every benchmark row is reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "goe",
    "symmetric_with_spectrum",
    "clustered_spectrum",
    "geometric_spectrum",
    "uniform_spectrum",
    "wilkinson_tridiagonal",
    "laplacian_1d",
    "random_band",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(0 if seed is None else seed)


def goe(n: int, seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Gaussian orthogonal ensemble: ``(G + G^T) / 2``."""
    g = _rng(seed).standard_normal((n, n))
    return (g + g.T) / 2.0


def symmetric_with_spectrum(
    eigenvalues: np.ndarray, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """``Q diag(lam) Q^T`` for a Haar-random orthogonal ``Q`` — the exact
    spectrum is known, which lets tests check eigenvalues directly."""
    lam = np.asarray(eigenvalues, dtype=np.float64)
    n = lam.size
    q, _ = np.linalg.qr(_rng(seed).standard_normal((n, n)))
    return (q * lam) @ q.T


def clustered_spectrum(
    n: int,
    clusters: int = 4,
    spread: float = 1e-10,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Eigenvalues in ``clusters`` tight groups — the deflation-heavy case
    for divide and conquer."""
    rng = _rng(seed)
    centers = np.sort(rng.uniform(-1.0, 1.0, size=clusters))
    lam = np.concatenate(
        [c + spread * rng.standard_normal(n // clusters + 1) for c in centers]
    )[:n]
    return np.sort(lam)


def geometric_spectrum(n: int, cond: float = 1e12) -> np.ndarray:
    """Geometrically spaced eigenvalues with condition number ``cond``."""
    return np.geomspace(1.0 / cond, 1.0, n)


def uniform_spectrum(n: int, lo: float = -1.0, hi: float = 1.0) -> np.ndarray:
    """Evenly spaced eigenvalues on ``[lo, hi]``."""
    return np.linspace(lo, hi, n)


def wilkinson_tridiagonal(n: int) -> tuple[np.ndarray, np.ndarray]:
    """The Wilkinson ``W_n^+`` matrix: ``d = |i - (n-1)/2|``, unit
    off-diagonals — famous for pathologically close eigenvalue pairs."""
    d = np.abs(np.arange(n) - (n - 1) / 2.0)
    e = np.ones(n - 1)
    return d, e


def laplacian_1d(n: int) -> tuple[np.ndarray, np.ndarray]:
    """The 1-D Dirichlet Laplacian tridiagonal (known analytic spectrum:
    ``2 - 2 cos(k pi / (n+1))``)."""
    return 2.0 * np.ones(n), -np.ones(n - 1)


def random_band(
    n: int, b: int, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Dense symmetric matrix with exact bandwidth ``b``."""
    rng = _rng(seed)
    A = np.zeros((n, n))
    for kdiag in range(b + 1):
        vals = rng.standard_normal(n - kdiag)
        idx = np.arange(n - kdiag)
        A[idx + kdiag, idx] = vals
        A[idx, idx + kdiag] = vals
    return A
