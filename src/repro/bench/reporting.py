"""Table/series printers shared by the benchmark harness.

Every benchmark prints the paper's reported values next to the reproduced
ones, with an explicit ``[measured]`` / ``[simulated]`` provenance tag —
the honesty contract of DESIGN.md §2.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field

__all__ = [
    "Series",
    "print_table",
    "print_series",
    "banner",
    "format_time",
    "write_json_artifact",
]


def banner(title: str, provenance: str) -> str:
    """Header line for a benchmark section.

    ``provenance`` is ``"measured"`` (real NumPy wall time at laptop
    scale) or ``"simulated"`` (device-scale performance model).
    """
    line = "=" * 78
    return f"{line}\n{title}   [{provenance}]\n{line}"


def format_time(seconds: float) -> str:
    """Human-scaled time: us / ms / s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f} ms"
    return f"{seconds:8.2f} s "


def write_json_artifact(
    out_dir, name: str, payload: dict, backend: str = "numpy"
) -> pathlib.Path:
    """Write a machine-readable benchmark artifact ``BENCH_<name>.json``.

    The document carries the benchmark name, a generation timestamp and an
    ``environment`` block (array backend the numbers were measured on plus
    the NumPy version) ahead of ``payload``, so checked-in artifacts record
    when — and on what substrate — their numbers came.  Returns the
    written path.
    """
    import numpy

    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    doc = {
        "name": name,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "environment": {
            "backend": backend,
            "numpy_version": numpy.__version__,
        },
        **payload,
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


@dataclass
class Series:
    """One plotted line: (x, y) pairs plus an optional paper reference."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)
    paper: dict[float, float] = field(default_factory=dict)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)


def print_table(
    headers: list[str], rows: list[list[str]], title: str = "", out=print
) -> None:
    """Fixed-width table printer."""
    widths = [
        max(len(str(headers[c])), *(len(str(r[c])) for r in rows)) if rows else len(str(headers[c]))
        for c in range(len(headers))
    ]
    if title:
        out(title)
    out("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    out("  ".join("-" * w for w in widths))
    for r in rows:
        out("  ".join(str(v).rjust(w) for v, w in zip(r, widths)))


def print_series(series: list[Series], xlabel: str = "x", out=print) -> None:
    """Print aligned multi-series data with paper references inline."""
    xs = sorted({x for s in series for x in s.xs})
    headers = [xlabel] + [s.name for s in series]
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for s in series:
            if x in s.xs:
                y = s.ys[s.xs.index(x)]
                ref = s.paper.get(x)
                row.append(f"{y:.3g}" + (f" (paper {ref:.3g})" if ref is not None else ""))
            else:
                row.append("-")
        rows.append(row)
    print_table(headers, rows, out=out)
