"""Small measurement helpers used by examples and ad-hoc studies.

(pytest-benchmark drives the real benchmark suite; these helpers serve the
examples and the EXPERIMENTS.md generation scripts.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["Timing", "measure"]


@dataclass
class Timing:
    """Repeated-measurement summary (seconds)."""

    best: float
    mean: float
    reps: int


def measure(fn: Callable[[], object], reps: int = 3, warmup: int = 1) -> Timing:
    """Best/mean wall time of ``fn`` over ``reps`` runs after ``warmup``."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return Timing(best=min(times), mean=sum(times) / len(times), reps=reps)
