"""Benchmark-harness support: workload generators, timing helpers, and the
table/series printers every benchmark uses to show paper-vs-reproduced
values with explicit measured/simulated provenance."""

from .plotting import AsciiChart, bar_chart, line_chart
from .reporting import (
    Series,
    banner,
    format_time,
    print_series,
    print_table,
    write_json_artifact,
)
from .timing import Timing, measure
from .workloads import (
    clustered_spectrum,
    geometric_spectrum,
    goe,
    laplacian_1d,
    random_band,
    symmetric_with_spectrum,
    uniform_spectrum,
    wilkinson_tridiagonal,
)

__all__ = [
    "AsciiChart",
    "Series",
    "Timing",
    "banner",
    "bar_chart",
    "clustered_spectrum",
    "format_time",
    "geometric_spectrum",
    "goe",
    "laplacian_1d",
    "line_chart",
    "measure",
    "print_series",
    "print_table",
    "random_band",
    "symmetric_with_spectrum",
    "uniform_spectrum",
    "wilkinson_tridiagonal",
    "write_json_artifact",
]
