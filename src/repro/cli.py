"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``evd``          run a full symmetric EVD on a random matrix and verify it
                 (``--save`` writes the result + matrix to a ``.npz``,
                 ``--faults`` injects deterministic faults, ``--fallback
                 chain`` escalates failures down the fallback chain)
``verify``       re-verify a saved ``.npz`` EVD result against its source
                 matrix (residual + orthogonality, exit 1 on failure)
``plan``         resolve an EVD plan and print it (``--explain`` adds the
                 model-predicted per-stage time breakdown)
``tridiag``      run just the tridiagonalization (any of the 4 methods)
``figure``       regenerate a paper figure's data from the calibrated model
``simulate-bc``  simulate the GPU bulge-chasing pipeline at any scale
``serve-bench``  load-test the async solver service against a serial loop
``tune``         empirical autotuning: ``search`` measures candidate
                 configurations and records the winner in the persistent
                 per-device tuning database (``$REPRO_TUNE_DB``);
                 ``show`` / ``export`` / ``import`` manage the database;
                 consumed by ``--tuning auto`` / ``plan_evd(tuning="auto")``
``devices``      list the calibrated device presets

Examples
--------
::

    python -m repro evd --n 400 --method proposed
    python -m repro evd --n 400 --save result.npz && python -m repro verify result.npz
    python -m repro evd --n 200 --faults "dc.merge:convergence" --fallback chain
    python -m repro plan --n 4096 --method proposed --explain
    python -m repro tridiag --n 300 --method dbbr --bandwidth 8 --second-block 32
    python -m repro figure fig15
    python -m repro simulate-bc --n 65536 --bandwidth 32 --sweeps 128
    python -m repro serve-bench --requests 200 --workers 4
    python -m repro tune search --n 256 --budget 16 && python -m repro tune show
    python -m repro plan --n 256 --method proposed --tuning auto
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Improving Tridiagonalization Performance "
        "on GPU Architectures' (PPoPP 2025)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    evd = sub.add_parser("evd", help="full symmetric EVD on a random matrix")
    evd.add_argument("--n", type=int, default=300)
    evd.add_argument("--method", default="proposed",
                     choices=["proposed", "magma", "cusolver", "plasma"])
    evd.add_argument("--solver", default="dc", choices=["dc", "qr", "bisect"])
    evd.add_argument("--no-vectors", action="store_true")
    evd.add_argument("--seed", type=int, default=0)
    evd.add_argument("--backend", default="numpy",
                     choices=["numpy", "cupy", "torch", "auto"],
                     help="array backend for the hot-path kernels")
    evd.add_argument("--precision", default="fp64",
                     choices=["fp64", "mixed", "fp32"],
                     help="working-precision policy: fp64 (bit-identical "
                          "default), mixed (fp32 pipeline + fp64 iterative "
                          "refinement), fp32 (fp32 throughout, relaxed "
                          "tolerances)")
    evd.add_argument("--fallback", default="none", choices=["none", "chain"],
                     help="'chain' escalates a failed or unverifiable solve "
                          "down the fallback chain (dense, then QR iteration)")
    evd.add_argument("--save", metavar="PATH", default=None,
                     help="write the result and source matrix to a .npz "
                          "archive readable by 'repro verify'")
    evd.add_argument("--faults", metavar="SPECS", default=None,
                     help="inject deterministic faults: "
                          "'site:kind[:times[:probability[:seed]]][;...]' "
                          "(see repro.resilience; overrides REPRO_FAULTS)")

    ver = sub.add_parser(
        "verify",
        help="re-verify a saved .npz EVD result against its source matrix",
    )
    ver.add_argument("result", help=".npz archive written by 'repro evd --save' "
                                    "or repro.core.save_evd")
    ver.add_argument("--matrix", metavar="PATH", default=None,
                     help="source matrix (.npy/.npz with 'source_matrix' or "
                          "'A') when the archive does not embed one")
    ver.add_argument("--tol-residual", type=float, default=None,
                     help="relative residual tolerance (default: 200*n*eps)")
    ver.add_argument("--tol-orth", type=float, default=None,
                     help="orthogonality tolerance (default: 200*n*eps)")

    pl = sub.add_parser(
        "plan",
        help="resolve an EVD plan and print it (no matrix is solved)",
    )
    pl.add_argument("--n", type=int, default=1024)
    pl.add_argument("--method", default="proposed",
                    help="pipeline preset or tridiagonalization method "
                         "(proposed, magma, cusolver, plasma, dense, "
                         "dbbr, sbr, tile, direct)")
    pl.add_argument("--solver", default="dc", choices=["dc", "qr", "bisect"])
    pl.add_argument("--no-vectors", action="store_true")
    pl.add_argument("--backend", default="numpy",
                    choices=["numpy", "cupy", "torch", "auto"])
    pl.add_argument("--precision", default="fp64",
                    choices=["fp64", "mixed", "fp32"],
                    help="working-precision policy (see 'repro evd')")
    pl.add_argument("--bandwidth", type=int, default=None)
    pl.add_argument("--second-block", type=int, default=None)
    pl.add_argument("--max-sweeps", type=int, default=None)
    pl.add_argument("--tuning", default="manual",
                    choices=["manual", "model", "auto"],
                    help="'model' picks b/k by minimizing the calibrated "
                         "analytical cost model instead of auto_params; "
                         "'auto' consults the persistent tuning database "
                         "(see 'repro tune') and falls back to 'model'")
    pl.add_argument("--device", default="h100",
                    help="device preset for --tuning model and --explain")
    pl.add_argument("--explain", action="store_true",
                    help="add the model-predicted per-stage time breakdown")
    pl.add_argument("--json", action="store_true",
                    help="emit the resolved plan as JSON (plan.to_dict())")

    tri = sub.add_parser("tridiag", help="tridiagonalization only")
    tri.add_argument("--n", type=int, default=300)
    tri.add_argument("--method", default="dbbr", choices=["dbbr", "sbr", "direct", "tile"])
    tri.add_argument("--bandwidth", type=int, default=None)
    tri.add_argument("--second-block", type=int, default=None)
    tri.add_argument("--serial", action="store_true",
                     help="disable the sweep pipeline")
    tri.add_argument("--seed", type=int, default=0)
    tri.add_argument("--backend", default="numpy",
                     choices=["numpy", "cupy", "torch", "auto"],
                     help="array backend for the hot-path kernels")

    fig = sub.add_parser("figure", help="regenerate a paper figure's data")
    fig.add_argument("name", help="table1, fig4, fig5, fig8, fig9, fig11, "
                                  "fig12, fig14, fig15, fig16")
    fig.add_argument("--plot", action="store_true",
                     help="draw an ASCII chart instead of listing values")
    fig.add_argument("--log", action="store_true", help="log-scale y axis")

    bc = sub.add_parser("simulate-bc", help="simulate the BC pipeline")
    bc.add_argument("--n", type=int, default=65536)
    bc.add_argument("--bandwidth", type=int, default=32)
    bc.add_argument("--sweeps", type=int, default=None,
                    help="pipeline cap S (default: hardware limit)")
    bc.add_argument("--device", default="h100")
    bc.add_argument("--naive", action="store_true",
                    help="one thread block per sweep, no L2 packing")

    sv = sub.add_parser("serve-bench",
                        help="load-test the async solver service")
    sv.add_argument("--requests", type=int, default=200)
    sv.add_argument("--sizes", type=int, nargs="+", default=[32, 64, 128])
    sv.add_argument("--unique", type=int, default=80)
    sv.add_argument("--dense-fraction", type=float, default=0.5)
    sv.add_argument("--workers", type=int, default=4)
    sv.add_argument("--queue-limit", type=int, default=32)
    sv.add_argument("--backpressure", default="block",
                    choices=["block", "reject", "timeout"])
    sv.add_argument("--max-batch", type=int, default=16)
    sv.add_argument("--batch-window-ms", type=float, default=2.0)
    sv.add_argument("--backend", default="numpy",
                    choices=["numpy", "cupy", "torch", "auto"])
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument("--json", metavar="PATH", default=None,
                    help="also write a BENCH_serve-style JSON artifact here")

    tu = sub.add_parser(
        "tune",
        help="empirical autotuning: search knobs, manage the tuning DB",
    )
    tsub = tu.add_subparsers(dest="tune_command", required=True)

    ts = tsub.add_parser(
        "search",
        help="measure candidate configurations and record the winner",
    )
    ts.add_argument("--n", type=int, default=256,
                    help="problem size to tune (records under its "
                         "power-of-two bucket)")
    ts.add_argument("--method", default="proposed",
                    help="preset or tridiagonalization method to tune, or "
                         "'serve' for the dense-crossover batch threshold")
    ts.add_argument("--backend", default="numpy",
                    choices=["numpy", "cupy", "torch"])
    ts.add_argument("--budget", type=int, default=32,
                    help="max unique candidates measured (larger grids use "
                         "model-pruned coordinate descent)")
    ts.add_argument("--reps", type=int, default=5, help="timed reps per candidate")
    ts.add_argument("--warmup", type=int, default=1)
    ts.add_argument("--seed", type=int, default=1234, help="workload seed")
    ts.add_argument("--device", default="h100",
                    help="device preset for the model prior")
    ts.add_argument("--include-dense", action="store_true",
                    help="also consider the dense LAPACK tier as a candidate")
    ts.add_argument("--sizes", type=int, nargs="+", default=None,
                    help="probe sizes for --method serve")
    ts.add_argument("--db", metavar="PATH", default=None,
                    help="tuning database (default: $REPRO_TUNE_DB or "
                         "~/.cache/repro/tune_db.json)")
    ts.add_argument("--dry-run", action="store_true",
                    help="search without writing the database")

    tw = tsub.add_parser("show", help="list the tuning database's records")
    tw.add_argument("--db", metavar="PATH", default=None)

    te = tsub.add_parser("export", help="write the database as JSON")
    te.add_argument("path", nargs="?", default="-",
                    help="output file ('-' = stdout)")
    te.add_argument("--db", metavar="PATH", default=None)

    ti = tsub.add_parser("import", help="merge records from a JSON export")
    ti.add_argument("path", help="JSON document written by 'repro tune export'")
    ti.add_argument("--db", metavar="PATH", default=None)
    ti.add_argument("--replace", action="store_true",
                    help="replace the database instead of merging")

    sub.add_parser("devices", help="list calibrated device presets")
    return p


def _cmd_evd(args) -> int:
    import repro
    from repro.resilience import clear_faults, install_faults, parse_fault_specs

    if args.faults:
        install_faults(parse_fault_specs(args.faults))
    rng = np.random.default_rng(args.seed)
    A = rng.standard_normal((args.n, args.n))
    A = (A + A.T) / 2.0
    t0 = time.perf_counter()
    try:
        res = repro.eigh(A, method=args.method, solver=args.solver,
                         compute_vectors=not args.no_vectors,
                         backend=args.backend, fallback=args.fallback,
                         precision=args.precision)
    except repro.ReproError as exc:
        print(f"EVD failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    finally:
        if args.faults:
            clear_faults()
    dt = time.perf_counter() - t0
    tri_backend = res.tridiag.backend if res.tridiag is not None else args.backend
    print(f"EVD ({args.method}/{args.solver}) of {args.n} x {args.n} "
          f"in {dt:.2f} s  [backend: {tri_backend}]")
    if res.refinement is not None:
        ref = res.refinement
        state = "escalated to fp64" if ref.escalated else (
            "converged" if ref.converged else "stalled")
        print(f"  precision {args.precision}: {ref.iterations} refinement "
              f"sweep(s), {state}")
    print(f"  eigenvalue range: [{res.eigenvalues[0]:.6g}, "
          f"{res.eigenvalues[-1]:.6g}]")
    err = np.max(np.abs(res.eigenvalues - np.linalg.eigvalsh(A)))
    print(f"  max eigenvalue error vs numpy: {err:.2e}")
    if res.eigenvectors is not None:
        print(f"  residual ||AV - VL||/||A||: {res.residual(A):.2e}")
        n = args.n
        orth = np.linalg.norm(res.eigenvectors.T @ res.eigenvectors - np.eye(n))
        print(f"  orthogonality: {orth:.2e}")
    if args.save:
        from repro.core import save_evd

        save_evd(args.save, res, A=A)
        print(f"wrote {args.save}")
    return 0


def _cmd_verify(args) -> int:
    from repro.core import load_evd
    from repro.resilience import verify_evd

    result, A = load_evd(args.result)
    if args.matrix is not None:
        loaded = np.load(args.matrix, allow_pickle=False)
        if isinstance(loaded, np.ndarray):
            A = loaded
        else:
            with loaded as z:
                for key in ("source_matrix", "A"):
                    if key in z:
                        A = z[key]
                        break
                else:
                    print(f"{args.matrix}: no 'source_matrix' or 'A' array",
                          file=sys.stderr)
                    return 2
    if A is None:
        print(f"{args.result} embeds no source matrix; pass --matrix",
              file=sys.stderr)
        return 2
    report = verify_evd(A, result, tol_residual=args.tol_residual,
                        tol_orth=args.tol_orth)
    print(f"verify {args.result}: n={report.n}  "
          f"{'OK' if report.ok else 'FAILED'}")
    if report.residual is not None:
        print(f"  residual ||AV - VL||/||A||: {report.residual:.3e} "
              f"(tol {report.tol_residual:.3e})")
    if report.orth_error is not None:
        print(f"  orthogonality ||V'V - I||:  {report.orth_error:.3e} "
              f"(tol {report.tol_orth:.3e})")
    print(f"  trace error: {report.trace_error:.3e}")
    for name, ok in sorted(report.checks.items()):
        print(f"  check {name}: {'pass' if ok else 'FAIL'}")
    return 0 if report.ok else 1


def _cmd_plan(args) -> int:
    from repro.plan import PlanError, explain_plan, plan_evd

    knobs = {}
    if args.bandwidth is not None:
        knobs["bandwidth"] = args.bandwidth
    if args.second_block is not None:
        knobs["second_block"] = args.second_block
    if args.max_sweeps is not None:
        knobs["max_sweeps"] = args.max_sweeps
    try:
        plan = plan_evd(
            args.n,
            args.method,
            compute_vectors=not args.no_vectors,
            solver=args.solver,
            backend=args.backend,
            tuning=args.tuning,
            device=args.device,
            precision=args.precision,
            **knobs,
        )
    except PlanError as exc:
        print(f"plan error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(plan.to_dict(), indent=2))
        return 0
    if args.explain:
        print(explain_plan(plan, device=args.device))
    else:
        print(plan.describe())
    return 0


def _cmd_tridiag(args) -> int:
    import repro

    rng = np.random.default_rng(args.seed)
    A = rng.standard_normal((args.n, args.n))
    A = (A + A.T) / 2.0
    t0 = time.perf_counter()
    res = repro.tridiagonalize(
        A,
        method=args.method,
        bandwidth=args.bandwidth,
        second_block=args.second_block,
        pipelined=not args.serial,
        backend=args.backend,
    )
    dt = time.perf_counter() - t0
    print(f"tridiagonalize ({args.method}) of {args.n} x {args.n} in {dt:.2f} s"
          f"  [backend: {res.backend}]")
    print(f"  intermediate bandwidth: {res.bandwidth}")
    if res.pipeline_stats is not None:
        s = res.pipeline_stats
        print(f"  BC pipeline: {s.total_tasks} tasks in {s.rounds} rounds "
              f"(mean parallel {s.mean_parallel:.1f})")
    from scipy.linalg import eigh_tridiagonal

    lam = eigh_tridiagonal(res.d, res.e, eigvals_only=True)
    err = np.max(np.abs(lam - np.linalg.eigvalsh(A)))
    print(f"  spectrum error vs numpy: {err:.2e}")
    return 0


def _cmd_figure(args) -> int:
    from repro.models.figures import make_figure

    data = make_figure(args.name)
    print(f"{data.figure}  ({data.xlabel} vs {data.ylabel})")
    if data.notes:
        print(f"  {data.notes}")
    if getattr(args, "plot", False):
        from repro.bench.plotting import line_chart

        chart = line_chart(
            [(s.name, s.points) for s in data.series],
            logy=getattr(args, "log", False),
            title="",
        )
        print(chart.text)
        return 0
    for s in data.series:
        print(f"\n  {s.name}:")
        for x, y in s.points:
            print(f"    {x:>12g}  {y:.4g}")
    return 0


def _cmd_simulate_bc(args) -> int:
    from repro.gpusim import (
        bc_task_bytes,
        bc_task_time_gpu,
        device_by_name,
        simulate_bc_pipeline,
    )
    from repro.gpusim.trace import utilization

    dev = device_by_name(args.device)
    dt, s_hw = bc_task_time_gpu(dev, args.n, args.bandwidth,
                                optimized=not args.naive)
    S = min(args.sweeps, s_hw) if args.sweeps else s_hw
    sim = simulate_bc_pipeline(args.n, args.bandwidth, S, dt,
                               bc_task_bytes(args.bandwidth))
    mode = "naive" if args.naive else "optimized"
    print(f"{mode} GPU bulge chasing on {dev.name}: n={args.n}, "
          f"b={args.bandwidth}, S={S}")
    print(f"  per-task time:   {dt * 1e6:8.2f} us")
    print(f"  total tasks:     {sim.total_tasks}")
    print(f"  makespan:        {sim.total_time_s:8.3f} s")
    print(f"  mean parallel:   {sim.mean_parallel_sweeps:8.1f} sweeps")
    print(f"  throughput:      {sim.throughput_gbs:8.0f} GB/s")
    print(f"  slot utilization {utilization(sim):8.1%}")
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.serve import ServiceConfig, WorkloadSpec, run_loadgen
    from repro.serve.loadgen import print_report

    spec = WorkloadSpec(
        requests=args.requests,
        sizes=tuple(args.sizes),
        unique=args.unique,
        dense_fraction=args.dense_fraction,
        seed=args.seed,
    )
    config = ServiceConfig(
        workers=args.workers,
        backend=args.backend,
        queue_limit=args.queue_limit,
        backpressure=args.backpressure,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1e3,
    )
    payload = run_loadgen(spec, config)
    print_report(payload)
    if args.json:
        import json
        import pathlib

        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    return 0 if payload["determinism"]["bit_identical_to_serial"] else 1


def _cmd_tune(args) -> int:
    from repro.tune import (
        MeasureProtocol,
        TuneStoreError,
        TuningStore,
        search,
        search_serve_threshold,
    )

    if args.tune_command == "search":
        protocol = MeasureProtocol(
            warmup=args.warmup, reps=args.reps, seed=args.seed
        )
        store = TuningStore.load(args.db)
        save = not args.dry_run
        if args.method == "serve":
            st = search_serve_threshold(
                backend=args.backend, protocol=protocol, sizes=args.sizes,
                store=store, save=save,
            )
            for probe in st.probes:
                verdict = "dense" if probe["dense_wins"] else "pipeline"
                print(f"  n={probe['n']:>5}  dense {probe['dense_s'] * 1e3:8.2f} ms  "
                      f"pipeline {probe['pipeline_s'] * 1e3:8.2f} ms  -> {verdict}")
            print(f"serve dense-crossover threshold: {st.threshold} "
                  f"[{'recorded' if save else 'dry run'}: {store.path}]")
            return 0
        try:
            res = search(
                args.n, args.method, backend=args.backend, budget=args.budget,
                protocol=protocol, device=args.device,
                include_dense=args.include_dense, store=store, save=save,
            )
        except TuneStoreError as exc:
            print(f"tune error: {exc}", file=sys.stderr)
            return 2
        print(f"tuned {args.method} at n={args.n} on {args.backend} "
              f"({res.strategy}: {len(res.trials)} of {res.space_size} "
              f"candidates measured)")
        for t in res.trials:
            mark = " <== best" if t.cache_token == res.best.cache_token else ""
            prior = f"  model {t.prior_s * 1e3:8.2f} ms" if t.prior_s else ""
            noisy = " (noisy)" if t.measurement.noisy else ""
            print(f"  {t.candidate.label:<44} "
                  f"{t.measurement.time_s * 1e3:8.2f} ms{prior}{noisy}{mark}")
        if save:
            print(f"recorded {res.store_key!r} -> {store.path}")
        else:
            print("dry run: database not written")
        return 0

    if args.tune_command == "show":
        store = TuningStore.load(args.db)
        if not len(store):
            print(f"tuning database {store.path}: empty")
            return 0
        print(f"tuning database {store.path}: {len(store)} record(s)")
        for key, rec in store:
            knobs = ", ".join(f"{k}={v}" for k, v in sorted(rec.knobs.items()))
            timing = f"  {rec.time_s * 1e3:8.2f} ms" if rec.time_s else ""
            print(f"  {key:<60} {rec.method}: {knobs or '(defaults)'}{timing}")
        return 0

    if args.tune_command == "export":
        store = TuningStore.load(args.db)
        text = store.export_json()
        if args.path == "-":
            sys.stdout.write(text)
        else:
            import pathlib

            pathlib.Path(args.path).write_text(text)
            print(f"wrote {args.path} ({len(store)} record(s))")
        return 0

    # import
    import pathlib

    store = TuningStore.load(args.db)
    try:
        count = store.import_json(
            pathlib.Path(args.path).read_text(), replace=args.replace
        )
        store.save()
    except (OSError, TuneStoreError) as exc:
        print(f"tune import failed: {exc}", file=sys.stderr)
        return 2
    print(f"imported {count} record(s) into {store.path} "
          f"({'replaced' if args.replace else 'merged'}; now {len(store)})")
    return 0


def _cmd_devices(args) -> int:
    from repro.gpusim import CPU_8_CORE, H100, RTX4090

    for d in (H100, RTX4090):
        print(f"{d.name}: {d.sm_count} SMs, {d.fp64_tflops} TFLOPs FP64, "
              f"{d.mem_bw_gbs:.0f} GB/s, L2 {d.l2_mb:.0f} MB "
              f"(ridge {d.ridge_flops_per_byte:.1f} flops/byte)")
    c = CPU_8_CORE
    print(f"{c.name}: {c.threads} threads, LLC {c.llc_mb:.0f} MB")
    return 0


_COMMANDS = {
    "evd": _cmd_evd,
    "verify": _cmd_verify,
    "plan": _cmd_plan,
    "tridiag": _cmd_tridiag,
    "figure": _cmd_figure,
    "simulate-bc": _cmd_simulate_bc,
    "serve-bench": _cmd_serve_bench,
    "tune": _cmd_tune,
    "devices": _cmd_devices,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # REPRO_FAULTS in the environment arms the deterministic fault
    # harness for any command (an explicit `evd --faults` overrides it).
    from repro.resilience import faults_from_env, install_faults

    env_plan = faults_from_env()
    if env_plan is not None and getattr(args, "faults", None) is None:
        install_faults(env_plan)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:  # e.g. `python -m repro figure fig15 | head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
