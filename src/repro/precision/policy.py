"""Frozen, validated per-stage precision policies.

A :class:`PrecisionPolicy` names the floating dtype each pipeline stage
runs in — tridiagonalization, tridiagonal eigensolver, back
transformation — plus whether the result is refined back to fp64
accuracy (:mod:`repro.precision.refine`) before verification.

Policies are identified by a canonical string token (what
:class:`~repro.plan.EVDPlan` stores and what participates in
``cache_token()``), resolved here by :func:`resolve_policy`:

* ``"fp64"`` — every stage in float64, no refinement.  The historical
  path, bit-identical to a plan with no precision knob at all.
* ``"mixed"`` — fp32 reduction + fp32 D&C eigenvector carrying + fp32
  back transformation, then promotion to fp64 and Ogita–Aishima
  refinement down to fp64 ``verify_evd`` tolerances.  Eigen*values*
  stay fp64 throughout: the D&C secular machinery is scalar-sensitive
  and cheap (``O(n^2)``), so only the ``O(n^3)`` BLAS-3 work drops to
  fp32 — the same staging the multi-GPU pipelined-EVD and GPU-D&C-SVD
  lineages use.
* ``"fp32"`` — every vector stage in float32, no refinement: the raw
  speed tier for callers that accept single-precision accuracy.

The solver stage's dtype governs the D&C *eigenvector* arithmetic (leaf
rotations, Givens ordering, the merge GEMM); the secular root finding
always runs in fp64.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..plan.errors import PlanError, bad_choice

__all__ = [
    "PRECISION_PRESETS",
    "STAGE_DTYPES",
    "PrecisionPolicy",
    "resolve_policy",
]

#: Stage-dtype spellings accepted in a policy token.
STAGE_DTYPES = ("fp32", "fp64")

_NUMPY_DTYPES = {"fp32": np.float32, "fp64": np.float64}


@dataclass(frozen=True)
class PrecisionPolicy:
    """Per-stage dtype assignment, resolved and validated.

    ``tridiag`` / ``solver`` / ``back_transform`` are the stage dtype
    tokens (``"fp32"`` or ``"fp64"``); ``refine`` marks the result for
    Ogita–Aishima refinement back to fp64 tolerances after the pipeline
    runs.  ``name`` is the canonical token the policy resolves from —
    the identity used by :meth:`repro.plan.EVDPlan.cache_token`.
    """

    name: str
    tridiag: str = "fp64"
    solver: str = "fp64"
    back_transform: str = "fp64"
    refine: bool = False

    def __post_init__(self) -> None:
        for stage, token in (
            ("tridiag", self.tridiag),
            ("solver", self.solver),
            ("back_transform", self.back_transform),
        ):
            if token not in STAGE_DTYPES:
                raise PlanError(
                    f"precision policy {self.name!r}: {stage} dtype must be "
                    f"one of {STAGE_DTYPES}, got {token!r}"
                )

    @property
    def is_fp64(self) -> bool:
        """True when the policy is the historical all-fp64 path (no
        low-precision stage, no refinement) — the plan runner skips the
        precision driver entirely."""
        return (
            self.tridiag == "fp64"
            and self.solver == "fp64"
            and self.back_transform == "fp64"
            and not self.refine
        )

    @property
    def tridiag_dtype(self) -> np.dtype:
        return np.dtype(_NUMPY_DTYPES[self.tridiag])

    @property
    def solver_dtype(self) -> np.dtype:
        return np.dtype(_NUMPY_DTYPES[self.solver])

    @property
    def back_transform_dtype(self) -> np.dtype:
        return np.dtype(_NUMPY_DTYPES[self.back_transform])

    def describe(self) -> str:
        ref = "refine to fp64" if self.refine else "no refinement"
        return (
            f"precision {self.name!r}: tridiag={self.tridiag}, "
            f"solver={self.solver}, bt={self.back_transform}, {ref}"
        )


#: The canonical presets (token -> policy).
PRECISION_PRESETS: dict[str, PrecisionPolicy] = {
    "fp64": PrecisionPolicy(name="fp64"),
    "mixed": PrecisionPolicy(
        name="mixed",
        tridiag="fp32",
        solver="fp32",
        back_transform="fp32",
        refine=True,
    ),
    "fp32": PrecisionPolicy(
        name="fp32",
        tridiag="fp32",
        solver="fp32",
        back_transform="fp32",
        refine=False,
    ),
}


def resolve_policy(precision: str | PrecisionPolicy) -> PrecisionPolicy:
    """Resolve a precision token (or pass a policy through) to a frozen
    :class:`PrecisionPolicy`, raising :class:`~repro.plan.PlanError` for
    an unknown preset name — at planning time, naming the valid
    choices, the same failure style as every other plan knob."""
    if isinstance(precision, PrecisionPolicy):
        return precision
    policy = PRECISION_PRESETS.get(precision)
    if policy is None:
        raise bad_choice("precision", precision, tuple(PRECISION_PRESETS))
    return policy
