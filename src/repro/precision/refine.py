"""Vectorized Ogita–Aishima eigenpair refinement.

A low-precision eigendecomposition ``A ≈ Ṽ Λ̃ Ṽᵀ`` (fp32 pipeline
output, promoted) carries ``O(eps_fp32)`` residual and orthogonality
error.  One Ogita–Aishima iteration [Ogita & Aishima, *Iterative
refinement for symmetric eigenvalue decomposition*, JJIAM 2018] squares
that error using only fp64 BLAS-3:

.. math::

    G &= ṼᵀṼ, \\qquad  S = Ṽᵀ A Ṽ, \\qquad  R = I - G \\\\
    λ̃_i &= S_{ii} / G_{ii}  \\quad\\text{(Rayleigh quotients)} \\\\
    E_{ij} &= (S_{ij} + λ̃_j R_{ij}) / (λ̃_j - λ̃_i)
        \\quad (i \\ne j,\\ \\text{well separated}) \\\\
    E_{ii} &= R_{ii} / 2, \\qquad  Ṽ \\leftarrow Ṽ (I + E)

so two to three iterations take an fp32-accurate start (``~1e-6``) to
fp64 ``verify_evd`` tolerances.  The whole update is a handful of
``n×n`` GEMMs — exactly the shape the paper's pipeline is built to
feed.

**Clusters.**  The division blows up when ``λ̃_j - λ̃_i`` is of the
order of the current error, so nearly-degenerate eigenvalues are
grouped (connected components of the gap graph at an error-scaled
threshold).  Within a group the update falls back to the Newton–Schulz
orthogonalization correction ``E_{ij} = R_{ij}/2`` — which restores
orthogonality but not the invariant subspace mixing — and each group is
then resolved exactly by a small Rayleigh–Ritz rotation: diagonalize
``V_cᵀ A V_c`` (``|c| × |c|``, fp64) and rotate the cluster's columns.

**Failure.**  Refinement that stops making progress (a wildly wrong
start, an injected fault at site ``"precision.refine"``) raises the
typed :class:`RefinementStalled` — a
:class:`~repro.resilience.ConvergenceError`, so the existing fallback
chain recognizes it as recoverable and escalates to full fp64.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..resilience.errors import ConvergenceError
from ..resilience.faults import maybe_raise
from ..resilience.verify import default_tolerances

__all__ = ["RefinementReport", "RefinementStalled", "refine_eigh"]

_EPS64 = float(np.finfo(np.float64).eps)

#: Give up when an iteration improves the residual by less than this
#: factor while still above tolerance (quadratic convergence should gain
#: orders of magnitude per step; anything below 2x is a stall).
STALL_FACTOR = 2.0

#: Eigenvalue pairs closer than ``CLUSTER_FACTOR * err_scale`` are
#: grouped (the division in the update cannot resolve them).
CLUSTER_FACTOR = 10.0


class RefinementStalled(ConvergenceError):
    """Eigenpair refinement failed to reach fp64 tolerances.

    A :class:`~repro.resilience.ReproError` (via
    :class:`~repro.resilience.ConvergenceError`), recognized by the
    fallback chain as recoverable: the mixed-precision driver escalates
    a stalled refinement to full fp64 execution."""


@dataclass
class RefinementReport:
    """Per-iteration accounting of one :func:`refine_eigh` run.

    ``residuals`` / ``orth_errors`` hold the measured values *entering*
    each iteration (index 0 = the unrefined input), so the quadratic
    contraction is visible in the history.  ``escalated`` /
    ``escalations`` are filled by the mixed-precision driver when a
    stall forced fp64 re-execution."""

    iterations: int = 0
    converged: bool = False
    residuals: list[float] = field(default_factory=list)
    orth_errors: list[float] = field(default_factory=list)
    tol_residual: float = 0.0
    tol_orth: float = 0.0
    clusters: int = 0
    escalated: bool = False
    escalations: list[Any] = field(default_factory=list)

    @property
    def residual(self) -> float | None:
        return self.residuals[-1] if self.residuals else None

    @property
    def orth_error(self) -> float | None:
        return self.orth_errors[-1] if self.orth_errors else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "iterations": self.iterations,
            "converged": self.converged,
            "residuals": list(self.residuals),
            "orth_errors": list(self.orth_errors),
            "tol_residual": self.tol_residual,
            "tol_orth": self.tol_orth,
            "clusters": self.clusters,
            "escalated": self.escalated,
        }


def _cluster_slices(lam: np.ndarray, gap: float) -> list[slice]:
    """Connected components of consecutive eigenvalues closer than
    ``gap`` (ascending input): the groups the elementwise update cannot
    separate.  Returns only the nontrivial (size >= 2) groups."""
    n = lam.size
    if n < 2:
        return []
    close = np.diff(lam) <= gap
    groups: list[slice] = []
    start = 0
    for i in range(n - 1):
        if not close[i]:
            if i + 1 - start >= 2:
                groups.append(slice(start, i + 1))
            start = i + 1
    if n - start >= 2:
        groups.append(slice(start, n))
    return groups


def _rayleigh_ritz_clusters(
    A: np.ndarray, V: np.ndarray, lam: np.ndarray, groups: list[slice]
) -> None:
    """Resolve each nearly-degenerate group exactly: diagonalize the
    small fp64 Rayleigh quotient ``V_cᵀ A V_c`` and rotate the group's
    columns in place (``O(n^2 |c|)`` per group)."""
    for sl in groups:
        Vc = V[:, sl]
        M = Vc.T @ (A @ Vc)
        w, W = np.linalg.eigh((M + M.T) / 2.0)
        V[:, sl] = Vc @ W
        lam[sl] = w


def refine_eigh(
    A: np.ndarray,
    lam: np.ndarray,
    V: np.ndarray,
    tol_residual: float | None = None,
    tol_orth: float | None = None,
    max_iter: int = 6,
    ctx: Any | None = None,
) -> tuple[np.ndarray, np.ndarray, RefinementReport]:
    """Refine an approximate eigendecomposition to fp64 tolerances.

    Parameters
    ----------
    A : (n, n) ndarray
        The fp64 symmetric input matrix (not modified).
    lam : (n,) ndarray
        Approximate eigenvalues, ascending.
    V : (n, n) ndarray
        Approximate eigenvectors (columns); any floating dtype —
        promoted to fp64 internally.
    tol_residual, tol_orth : float, optional
        Convergence targets (default: the fp64
        :func:`~repro.resilience.default_tolerances` used by
        ``verify_evd``).
    max_iter : int
        Iteration cap before declaring a stall.
    ctx : ExecutionContext, optional
        When given, each sweep is timed as stage ``"refine_evd"``.

    Returns
    -------
    (lam, V, report)
        Refined fp64 eigenvalues (ascending) and eigenvectors, plus the
        per-iteration :class:`RefinementReport`.

    Raises
    ------
    RefinementStalled
        Tolerances were not reached within ``max_iter`` iterations, or
        an iteration stopped improving the residual.
    """
    A = np.asarray(A, dtype=np.float64)
    lam = np.array(lam, dtype=np.float64, copy=True)
    V = np.array(V, dtype=np.float64, copy=True)
    n = int(lam.size)
    tr, to = default_tolerances(n)
    tol_residual = tr if tol_residual is None else float(tol_residual)
    tol_orth = to if tol_orth is None else float(tol_orth)
    norm = max(float(np.linalg.norm(A)), float(np.finfo(np.float64).tiny))
    eye = np.eye(n)
    report = RefinementReport(tol_residual=tol_residual, tol_orth=tol_orth)

    def _sweep() -> bool:
        """One measurement + (if unconverged) one update; True = done."""
        maybe_raise("precision.refine")
        AV = A @ V
        G = V.T @ V
        S = V.T @ AV
        res = float(np.linalg.norm(AV - V * lam[None, :])) / norm
        orth = float(np.linalg.norm(G - eye))
        report.residuals.append(res)
        report.orth_errors.append(orth)
        if res <= tol_residual and orth <= tol_orth:
            report.converged = True
            return True
        if len(report.residuals) >= 2:
            prev = report.residuals[-2]
            if res * STALL_FACTOR > prev and orth * STALL_FACTOR > report.orth_errors[-2]:
                raise RefinementStalled(
                    f"eigenpair refinement stalled after {report.iterations} "
                    f"iteration(s): residual {res:.3e} (tol {tol_residual:.3e}), "
                    f"orthogonality {orth:.3e} (tol {tol_orth:.3e})",
                    site="precision.refine",
                    iterations=report.iterations,
                )
        # Ogita–Aishima update (all fp64 BLAS-3).
        diag_G = np.diagonal(G).copy()
        lam_new = np.diagonal(S) / np.where(diag_G > 0.0, diag_G, 1.0)
        R = eye - G
        numer = S + R * lam_new[None, :]
        denom = lam_new[None, :] - lam_new[:, None]
        err_scale = max(res * norm, float(n) * _EPS64 * norm)
        gap = CLUSTER_FACTOR * err_scale
        separated = np.abs(denom) > gap
        E = np.where(separated, numer / np.where(separated, denom, 1.0), R / 2.0)
        np.fill_diagonal(E, np.diagonal(R) / 2.0)
        V[...] = V + V @ E
        lam[...] = lam_new
        groups = _cluster_slices(np.sort(lam_new), gap)
        if groups:
            report.clusters = max(report.clusters, len(groups))
            order = np.argsort(lam, kind="stable")
            lam[...] = lam[order]
            V[...] = V[:, order]
            _rayleigh_ritz_clusters(A, V, lam, groups)
        return False

    for _ in range(max_iter + 1):
        report.iterations += 1
        if ctx is not None:
            with ctx.stage("refine_evd", n=n):
                done = _sweep()
        else:
            done = _sweep()
        if done:
            break
    else:
        raise RefinementStalled(
            f"eigenpair refinement did not reach fp64 tolerances within "
            f"{max_iter} iteration(s): residual "
            f"{report.residual:.3e} (tol {tol_residual:.3e}), orthogonality "
            f"{report.orth_error:.3e} (tol {tol_orth:.3e})",
            site="precision.refine",
            iterations=report.iterations,
        )

    # The update and cluster rotations preserve ascending order up to
    # roundoff; restore it exactly (the API contract verify_evd checks).
    if np.any(np.diff(lam) < 0.0):
        order = np.argsort(lam, kind="stable")
        lam = lam[order]
        V = V[:, order]
    return lam, V, report
