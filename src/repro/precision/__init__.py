"""Mixed-precision execution policies and eigenpair refinement.

The paper's premise is that the two-stage reduction should run as fast
as the hardware allows — and the single biggest lever beyond kernel
shape is *precision*: fp32 GEMM/SYR2K throughput is ~2x fp64 even on
CPU BLAS, and far more on GPU tensor cores.  This subsystem makes that
lever safe to pull:

* :mod:`repro.precision.policy` — frozen, validated
  :class:`PrecisionPolicy` objects naming a dtype per pipeline stage
  (tridiagonalization / tridiagonal solver / back transformation), with
  the presets ``"fp64"`` (the historical bit-exact path), ``"mixed"``
  (fp32 pipeline + fp64 refinement) and ``"fp32"`` (raw single
  precision, no refinement);
* :mod:`repro.precision.refine` — :func:`refine_eigh`, a vectorized
  Ogita–Aishima/Newton–Schulz eigenpair refinement that takes a
  low-precision eigendecomposition and iterates residual and
  orthogonality down to fp64 :func:`~repro.resilience.verify_evd`
  tolerances, with cluster-aware grouping and a typed
  :class:`RefinementStalled` on non-convergence;
* :mod:`repro.precision.driver` — the ``precision="mixed"`` execution
  path of :func:`repro.plan.execute_plan`: fp32 two-stage reduction and
  D&C, promotion to fp64, refinement, verification — escalating through
  the existing :func:`~repro.resilience.execute_plan_with_fallback`
  chain to full fp64 when refinement stalls.

The policy rides on :class:`~repro.plan.EVDPlan` as the ``precision=``
knob of :func:`repro.plan.plan_evd` / :func:`repro.eigh` and
participates in :meth:`~repro.plan.EVDPlan.cache_token`, so fp32 and
fp64 results can never alias in the serving layer's result cache.
"""

from ..core.validation import PrecisionWarning
from .driver import execute_plan_precision
from .policy import (
    PRECISION_PRESETS,
    PrecisionPolicy,
    resolve_policy,
)
from .refine import RefinementReport, RefinementStalled, refine_eigh

__all__ = [
    "PRECISION_PRESETS",
    "PrecisionPolicy",
    "PrecisionWarning",
    "RefinementReport",
    "RefinementStalled",
    "execute_plan_precision",
    "refine_eigh",
    "resolve_policy",
]
