"""The mixed-precision execution path of the plan runner.

:func:`execute_plan_precision` runs a resolved
:class:`~repro.plan.EVDPlan` whose ``precision`` is not ``"fp64"``:

1. the two-stage reduction in the policy's tridiag dtype (fp32 panel
   QR, SYR2K trailing updates and bulge chasing under ``"mixed"``);
2. the tridiagonal eigensolve with the eigenvector carrying / merge
   GEMMs in the solver dtype (the D&C secular machinery always runs
   fp64 on the fp64-promoted ``(d, e)`` — it is ``O(n^2)`` and
   scalar-sensitive, so there is nothing to win and accuracy to lose);
3. the back transformation in the back-transform dtype;
4. promotion to fp64 and — when the policy refines — Ogita–Aishima
   refinement (:func:`~repro.precision.refine_eigh`) down to fp64
   ``verify_evd`` tolerances, followed by verification.

**Escalation.**  A refinement stall
(:class:`~repro.precision.RefinementStalled`), a convergence failure
inside the low-precision pipeline, or a verification failure of the
refined result escalates through the existing
:func:`~repro.resilience.execute_plan_with_fallback` chain with the
plan's fp64 twin — recording the failed mixed attempt as an
:class:`~repro.resilience.EscalationRecord` on the result's
``refinement`` report.  Escalation is *deterministic* (refinement has
no random state), so a result produced this way is still a pure
function of ``(matrix bytes, plan)`` and remains valid under the
plan's cache token.

The raw ``"fp32"`` policy skips refinement *and* verification: it is
the speed tier for callers that accept single-precision accuracy, and
its results will generally not pass fp64 ``verify_evd`` tolerances
(serve with ``verify=True`` will fail such requests unless they carry
``fallback="chain"`` or looser explicit tolerances).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from ..resilience.errors import ConvergenceError, VerificationError
from ..resilience.fallback import EscalationRecord, execute_plan_with_fallback
from ..resilience.verify import verify_evd
from .policy import PrecisionPolicy, resolve_policy
from .refine import RefinementReport, RefinementStalled, refine_eigh

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.evd import EVDResult
    from ..plan.config import EVDPlan

__all__ = ["execute_plan_precision"]


def _pipeline_result(
    A64: np.ndarray,
    plan: "EVDPlan",
    policy: PrecisionPolicy,
    ctx: ExecutionContext,
) -> "EVDResult":
    """Run the three pipeline stages in the policy's dtypes and return
    the (unrefined, fp64-promoted-values) result."""
    from ..core.evd import EVDResult
    from ..core.tridiag import tridiagonalize_planned
    from ..plan.runner import solve_tridiagonal_planned

    with ctx.stage("tridiagonalize", method=plan.method, precision=policy.tridiag):
        tri = tridiagonalize_planned(A64, plan, ctx=ctx, dtype=policy.tridiag_dtype)
    # The tridiagonal (d, e) promote to fp64 regardless of policy: the
    # secular/QL machinery is O(n^2) and scalar-sensitive — only the
    # O(n^3) vector work drops precision.
    d64 = np.asarray(tri.d, dtype=np.float64)
    e64 = np.asarray(tri.e, dtype=np.float64)
    with ctx.stage("tridiag_solver", solver=plan.solver.kind, precision=policy.solver):
        lam, U = solve_tridiagonal_planned(
            d64, e64, plan.solver, ctx=ctx, vector_dtype=policy.solver_dtype
        )
    V: np.ndarray | None = None
    if plan.solver.compute_vectors:
        assert U is not None
        with ctx.stage("back_transform", precision=policy.back_transform):
            V = np.array(U, dtype=policy.back_transform_dtype, copy=True)
            tri.apply_q(V)
    lam = np.asarray(lam, dtype=np.float64)
    return EVDResult(
        eigenvalues=lam, eigenvectors=V, tridiag=tri, solver=plan.solver.kind
    )


def _escalate(
    A64: np.ndarray,
    plan: "EVDPlan",
    ctx: ExecutionContext,
    exc: Exception,
    iterations: int,
) -> "EVDResult":
    """Refinement stalled (or the low-precision pipeline failed): record
    the mixed attempt and re-execute through the fallback chain with the
    plan's fp64 twin (which keeps the plan's own ``fallback`` mode, so a
    ``"chain"`` plan still escalates dense -> QR beyond fp64)."""
    record = EscalationRecord(
        step=0,
        method=f"{plan.method}[precision={plan.precision}]",
        solver=plan.solver.kind,
        error_type=type(exc).__name__,
        error=str(exc),
    )
    fp64_plan = dataclasses.replace(plan, precision="fp64")
    outcome = execute_plan_with_fallback(A64, fp64_plan, ctx=ctx, verify=True)
    report = RefinementReport(
        iterations=iterations, converged=False, escalated=True
    )
    report.escalations = [record] + list(outcome.escalations)
    result = outcome.result
    result.refinement = report
    return result


def execute_plan_precision(
    A: np.ndarray,
    plan: "EVDPlan",
    ctx: ExecutionContext | Any | None = None,
) -> "EVDResult":
    """Execute a plan whose ``precision`` policy is not the fp64 default.

    Called by :func:`repro.plan.execute_plan` (never directly by entry
    points); returns the same :class:`~repro.core.evd.EVDResult` shape,
    with ``result.refinement`` carrying the
    :class:`~repro.precision.RefinementReport` for refined policies.
    """
    from ..core.validation import NonSquareError, check_symmetric
    from ..plan.runner import _check_plan_matches, _resolve_plan_context

    policy = resolve_policy(plan.precision)
    ctx = _resolve_plan_context(plan, ctx)
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise NonSquareError(f"expected a square matrix, got shape {A.shape}")
    _check_plan_matches(A, plan)
    # The fp64 master copy: the refinement/verification reference, and
    # the input each pipeline stage casts down from.  No upcast warning —
    # a float32 input under an explicit precision policy is exactly the
    # intended use.
    A64 = check_symmetric(A, warn_on_upcast=False)

    try:
        result = _pipeline_result(A64, plan, policy, ctx)
    except (ConvergenceError, VerificationError) as exc:
        if not policy.refine:
            raise
        return _escalate(A64, plan, ctx, exc, iterations=0)

    if not policy.refine:
        return result

    assert result.eigenvectors is not None  # planner forbids vectorless refine
    try:
        lam, V, report = refine_eigh(
            A64, result.eigenvalues, result.eigenvectors, ctx=ctx
        )
    except RefinementStalled as exc:
        return _escalate(A64, plan, ctx, exc, iterations=exc.iterations or 0)
    except ConvergenceError as exc:  # injected fault at precision.refine
        return _escalate(A64, plan, ctx, exc, iterations=0)
    result.eigenvalues = lam
    result.eigenvectors = V
    result.refinement = report
    try:
        verify_evd(A64, result, ctx=ctx).raise_if_failed()
    except VerificationError as exc:
        return _escalate(A64, plan, ctx, exc, iterations=report.iterations)
    return result
