"""Cuppen's divide-and-conquer symmetric tridiagonal eigensolver.

This is the from-scratch ``Dstedc`` substrate the paper integrates from
MAGMA for the end-to-end EVD (Section 6.2).  The solver tears the
tridiagonal ``T`` into two halves plus a rank-one coupling,

    T = diag(T1', T2') + rho v v^T,   rho = e_{m-1},  v = e_{m-1} + e_m,

solves the halves, and merges them through the symmetric rank-one update
``D + rho z z^T`` (``z = Q^T v``) using the secular machinery of
:mod:`repro.eig.secular`, with the two standard deflation rules
(negligible ``z_j``; Givens rotation of (near-)equal poles) from LAPACK's
``dlaed2``.  Eigenvector merging is one big GEMM per level — the BLAS3
shape that makes D&C the method of choice on GPUs.

Execution is an explicit *level-order* walk over the merge tree rather
than a recursion: the diagonal is torn once up front (every tear touches
a disjoint index pair), the base-case QL solves at the leaves run as one
grouped pass, and then each level's independent merges execute
back-to-back sharing the context's :class:`~repro.backend.WorkspacePool`
— the same wavefront shape the bulge-chasing engine uses per round.
Every merge reports its three sub-stages (``dc_deflate``, ``dc_secular``,
``dc_gemm``) through the :class:`~repro.backend.ExecutionContext` timing
hooks, so ``SolverService.stats()`` and the benchmark artifacts can
attribute D&C time below the ``tridiag_solver`` line.

The secular stage runs vectorized (``secular_mode="batched"``) by
default; ``secular_mode="scalar"`` selects the original per-root loops as
a bit-exact oracle, mirroring the ``bc_driver="pipelined"`` precedent.

The eigenvalues-only path never forms eigenvectors: the tree carries
just the *first and last rows* of each subproblem's eigenvector matrix
(all a merge needs to build ``z``), turning the ``O(n^3)`` vector cost
into ``O(n^2)`` — mirroring the cheap `Dstedc`-eigenvalues-only mode whose
time share Figure 4 reports at a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from ..resilience.faults import maybe_raise
from .qr_iteration import tridiag_qr_eigh
from .secular import refine_z, secular_eigenvectors, solve_all_roots

__all__ = ["DCStats", "dc_eigh"]

_EPS = np.finfo(np.float64).eps


@dataclass
class DCStats:
    """Instrumentation of one divide-and-conquer run."""

    merges: int = 0
    deflated: int = 0
    secular_size_total: int = 0
    gemm_flops: float = 0.0
    sizes: list[int] = field(default_factory=list)
    levels: int = 0
    leaves: int = 0

    @property
    def deflation_fraction(self) -> float:
        tot = self.deflated + self.secular_size_total
        return self.deflated / tot if tot else 0.0


def _rank_one_update(
    D: np.ndarray,
    z: np.ndarray,
    rho: float,
    Q: np.ndarray,
    stats: DCStats,
    ctx: ExecutionContext,
    secular_mode: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Eigensystem of ``diag(D) + rho z z^T`` expressed through ``Q``.

    ``Q`` holds *any* number of rows of the accumulated eigenvector basis
    (full ``N`` rows in vector mode, 2 rows in eigenvalues-only mode); its
    columns are transformed exactly like eigenvectors.  Returns
    ``(lam ascending, Q_updated)``.
    """
    if rho < 0.0:
        # eig(D + rho z z^T) = -rev(eig(-rev(D) + |rho| rev(z) rev(z)^T))
        lam_r, Q_r = _rank_one_update(
            -D[::-1], z[::-1], -rho, Q[:, ::-1], stats, ctx, secular_mode
        )
        return -lam_r[::-1], Q_r[:, ::-1]

    znorm2 = float(z @ z)
    if rho == 0.0 or znorm2 == 0.0:
        order = np.argsort(D, kind="stable")
        return D[order], Q[:, order]

    with ctx.stage("dc_deflate", n=D.size):
        order = np.argsort(D, kind="stable")
        D = D[order].copy()
        z = z[order].copy()
        Q = Q[:, order].copy()

        znorm = np.sqrt(znorm2)
        norm_m = float(np.max(np.abs(D))) + rho * znorm2
        tol_z = 4.0 * _EPS * norm_m / max(rho * znorm, np.finfo(np.float64).tiny)
        tol_gap = 16.0 * _EPS * norm_m

        deflated = np.abs(z) <= tol_z

        # Givens deflation of (near-)equal poles among the survivors.
        live = np.flatnonzero(~deflated)
        prev = -1
        for cur in live:
            if prev >= 0 and D[cur] - D[prev] <= tol_gap:
                r = np.hypot(z[prev], z[cur])
                c = z[cur] / r
                s = z[prev] / r
                z[cur] = r
                z[prev] = 0.0
                # Rotate the 2x2 diagonal block; the off-diagonal it creates is
                # |c s (D_prev - D_cur)| <= tol_gap / 2 and is dropped (that is
                # the deflation error, bounded by the perturbation tolerance).
                dp, dc_ = D[prev], D[cur]
                D[prev] = c * c * dp + s * s * dc_
                D[cur] = s * s * dp + c * c * dc_
                qp = Q[:, prev].copy()
                Q[:, prev] = c * qp - s * Q[:, cur]
                Q[:, cur] = s * qp + c * Q[:, cur]
                deflated[prev] = True
            prev = cur

        nd = np.flatnonzero(~deflated)
        df = np.flatnonzero(deflated)
        stats.deflated += df.size
        stats.secular_size_total += nd.size

    if nd.size == 0:
        order = np.argsort(D, kind="stable")
        return D[order], Q[:, order]

    # The big (N, N) secular intermediates come from the context's pool in
    # batched mode, so back-to-back merges at one level allocate nothing.
    pool = ctx.workspace if (secular_mode == "batched" and ctx.is_numpy) else None
    with ctx.stage("dc_secular", n=int(nd.size), mode=secular_mode):
        maybe_raise("dc.merge")
        roots = solve_all_roots(D[nd], z[nd], rho, mode=secular_mode, workspace=pool)
        lam_nd = roots.values
        zhat = refine_z(roots, z[nd], rho, mode=secular_mode, workspace=pool)
        S = secular_eigenvectors(roots, zhat, mode=secular_mode, workspace=pool)
    with ctx.stage("dc_gemm", rows=int(Q.shape[0]), k=int(nd.size)):
        # Mixed precision: the secular stage always runs fp64, but the
        # merge GEMM — the O(n^3) cost of D&C — follows the carried
        # basis dtype.  For fp64 Q the astype is a no-op (same object),
        # keeping the historical path bit-identical.
        S = S.astype(Q.dtype, copy=False)
        if ctx.is_numpy:
            Q_nd = Q[:, nd] @ S
        else:
            # The one BLAS3 shape of the merge — route it to the backend; the
            # secular machinery around it is scalar-bound and stays host-side.
            Q_nd = ctx.to_numpy(
                ctx.from_numpy(np.ascontiguousarray(Q[:, nd])) @ ctx.from_numpy(S)
            )
    stats.gemm_flops += 2.0 * Q.shape[0] * nd.size * nd.size

    lam_all = np.concatenate([lam_nd, D[df]])
    Q_all = np.concatenate([Q_nd, Q[:, df]], axis=1)
    order = np.argsort(lam_all, kind="stable")
    return lam_all[order], Q_all[:, order]


def _block_diag_rows(
    U1: np.ndarray, U2: np.ndarray, rows_only: bool
) -> np.ndarray:
    """The carried basis for a merge: full block diagonal in vector mode,
    or just its first and last rows in eigenvalues-only mode."""
    assert U1.dtype == U2.dtype, (
        "carried eigenvector bases must share a dtype "
        f"(got {U1.dtype} / {U2.dtype})"
    )
    n1, k1 = U1.shape
    n2, k2 = U2.shape
    if rows_only:
        Q = np.zeros((2, k1 + k2), dtype=U1.dtype)
        Q[0, :k1] = U1[0]
        Q[1, k1:] = U2[-1]
        return Q
    Q = np.zeros((n1 + n2, k1 + k2), dtype=U1.dtype)
    Q[:n1, :k1] = U1
    Q[n1:, k1:] = U2
    return Q


def _merge_tree(n: int, base_size: int) -> tuple[list[tuple[int, int]], list[list]]:
    """Split ``[0, n)`` like the classic recursion, but materialized.

    Returns ``(leaves, levels)``: ``leaves`` are the base-case segments
    ``(start, end)``; ``levels[k]`` holds the internal nodes
    ``(start, end, mid)`` at depth ``k``, deepest level last — executing
    the levels in *reverse* order is exactly the bottom-up merge wave.
    """
    leaves: list[tuple[int, int]] = []
    levels: list[list] = []
    frontier = [(0, n)]
    while frontier:
        next_frontier = []
        level_nodes = []
        for s, t in frontier:
            if t - s <= base_size:
                leaves.append((s, t))
            else:
                m = s + (t - s) // 2
                level_nodes.append((s, t, m))
                next_frontier.append((s, m))
                next_frontier.append((m, t))
        if level_nodes:
            levels.append(level_nodes)
        frontier = next_frontier
    return leaves, levels


def _dc_level_order(
    d: np.ndarray,
    e: np.ndarray,
    rows_only: bool,
    base_size: int,
    stats: DCStats,
    ctx: ExecutionContext,
    secular_mode: str,
    vector_dtype: np.dtype = np.float64,
) -> tuple[np.ndarray, np.ndarray]:
    """Execute the merge tree level by level.

    Returns ``(lam, Q)`` where ``Q`` is the carried basis (full or
    2-row).  Intermediate results live in a dict keyed by segment; each
    merge pops its children, so peak memory matches the recursion.
    """
    n = d.size
    leaves, levels = _merge_tree(n, base_size)
    stats.leaves = len(leaves)
    stats.levels = len(levels)

    # Tear the diagonal once, up front.  Each internal node's rank-one
    # coupling rho = e[m-1] subtracts from exactly d[m-1] and d[m], and
    # the torn pairs of distinct nodes are disjoint, so a single pass is
    # bit-identical to the recursive tear order.
    dmod = np.array(d, dtype=np.float64, copy=True)
    for level_nodes in levels:
        for _s, _t, m in level_nodes:
            rho = e[m - 1]
            dmod[m - 1] -= rho
            dmod[m] -= rho

    # Grouped base-case solves: every leaf in one pass.
    done: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    with ctx.stage("dc_leaf", count=len(leaves)):
        for s, t in leaves:
            lam, U = tridiag_qr_eigh(dmod[s:t], e[s : t - 1], compute_vectors=True)
            if rows_only:
                # The 2-row basis drives the secular z vectors and stays
                # fp64 regardless of vector_dtype: it is eigenvalue
                # machinery, not eigenvector carrying.
                Q = np.vstack([U[0], U[-1]])
            else:
                Q = U.astype(vector_dtype, copy=False)
            done[(s, t)] = (lam, Q)

    # Merge wave: deepest level first; the merges inside one level are
    # independent and run back-to-back over the shared workspace pool.
    for level_nodes in reversed(levels):
        for s, t, m in level_nodes:
            lam1, Q1 = done.pop((s, m))
            lam2, Q2 = done.pop((m, t))
            rho = float(e[m - 1])
            D = np.concatenate([lam1, lam2])
            # z = Q^T v needs only the last row of the left basis and the
            # first row of the right one.  Promote to fp64: the secular
            # machinery always runs in double even when the carried basis
            # is fp32 (for fp64 bases this is a no-op view).
            z = np.concatenate([Q1[-1], Q2[0]]).astype(np.float64, copy=False)
            Q = _block_diag_rows(Q1, Q2, rows_only)
            stats.merges += 1
            stats.sizes.append(t - s)
            done[(s, t)] = _rank_one_update(D, z, rho, Q, stats, ctx, secular_mode)

    return done[(0, n)]


def dc_eigh(
    d: np.ndarray,
    e: np.ndarray,
    compute_vectors: bool = True,
    base_size: int = 24,
    return_stats: bool = False,
    ctx: ExecutionContext | None = None,
    secular_mode: str = "batched",
    vector_dtype: np.dtype | None = None,
):
    """Eigendecomposition of ``tridiag(d, e)`` by divide and conquer.

    Parameters
    ----------
    d, e : ndarray
        Diagonal (length ``n``) and subdiagonal (length ``n-1``).
    compute_vectors : bool
        When false, only the first/last eigenvector rows are carried
        through the recursion (``O(n^2)`` total).
    base_size : int
        Subproblems at or below this size use QL iteration directly.
    return_stats : bool
        Also return a :class:`DCStats` with merge/deflation counters.
    ctx : ExecutionContext, optional
        Execution context: the per-level eigenvector merge GEMM runs on
        its backend, batched secular scratch comes from its workspace
        pool, and every merge emits ``dc_deflate`` / ``dc_secular`` /
        ``dc_gemm`` stage events through its hooks.
    secular_mode : {"batched", "scalar"}
        ``"batched"`` (default) runs the vectorized secular machinery;
        ``"scalar"`` the original per-root loops (the bit-exact oracle).
    vector_dtype : dtype, optional
        Working dtype of the eigenvector carrying and per-level merge
        GEMMs (the O(n^3) cost).  The eigenvalue/secular machinery —
        leaf QL solves, deflation, secular roots, z refinement — always
        runs float64 on the float64 ``(d, e)``.  ``None`` (the default,
        and the only value fp64 plans ever pass) is bit-identical to
        the historical solver.  Ignored in eigenvalues-only mode, whose
        2-row carried basis is eigenvalue machinery.

    Returns
    -------
    (lam, U[, stats])
        Ascending eigenvalues; ``U`` is the eigenvector matrix or ``None``.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.size
    if e.size != max(n - 1, 0):
        raise ValueError(f"e must have length n-1={n - 1}, got {e.size}")
    if base_size < 3:
        raise ValueError("base_size must be >= 3")
    if secular_mode not in ("batched", "scalar"):
        raise ValueError(
            f"unknown secular_mode {secular_mode!r}; expected 'batched' or 'scalar'"
        )
    vdt = np.dtype(np.float64) if vector_dtype is None else np.dtype(vector_dtype)
    if vdt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"vector_dtype must be float32 or float64, got {vdt}")
    stats = DCStats()
    lam, Q = _dc_level_order(
        d,
        e,
        not compute_vectors,
        base_size,
        stats,
        resolve_context(ctx),
        secular_mode,
        vector_dtype=vdt,
    )
    U = Q if compute_vectors else None
    if return_stats:
        return lam, U, stats
    return lam, U
