"""Cuppen's divide-and-conquer symmetric tridiagonal eigensolver.

This is the from-scratch ``Dstedc`` substrate the paper integrates from
MAGMA for the end-to-end EVD (Section 6.2).  The recursion tears the
tridiagonal ``T`` into two halves plus a rank-one coupling,

    T = diag(T1', T2') + rho v v^T,   rho = e_{m-1},  v = e_{m-1} + e_m,

solves the halves, and merges them through the symmetric rank-one update
``D + rho z z^T`` (``z = Q^T v``) using the secular machinery of
:mod:`repro.eig.secular`, with the two standard deflation rules
(negligible ``z_j``; Givens rotation of (near-)equal poles) from LAPACK's
``dlaed2``.  Eigenvector merging is one big GEMM per level — the BLAS3
shape that makes D&C the method of choice on GPUs.

The eigenvalues-only path never forms eigenvectors: the recursion carries
just the *first and last rows* of each subproblem's eigenvector matrix
(all a merge needs to build ``z``), turning the ``O(n^3)`` vector cost
into ``O(n^2)`` — mirroring the cheap `Dstedc`-eigenvalues-only mode whose
time share Figure 4 reports at a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.context import ExecutionContext, resolve_context
from .qr_iteration import tridiag_qr_eigh
from .secular import refine_z, secular_eigenvectors, solve_all_roots

__all__ = ["DCStats", "dc_eigh"]

_EPS = np.finfo(np.float64).eps


@dataclass
class DCStats:
    """Instrumentation of one divide-and-conquer run."""

    merges: int = 0
    deflated: int = 0
    secular_size_total: int = 0
    gemm_flops: float = 0.0
    sizes: list[int] = field(default_factory=list)

    @property
    def deflation_fraction(self) -> float:
        tot = self.deflated + self.secular_size_total
        return self.deflated / tot if tot else 0.0


def _rank_one_update(
    D: np.ndarray,
    z: np.ndarray,
    rho: float,
    Q: np.ndarray,
    stats: DCStats,
    ctx: ExecutionContext,
) -> tuple[np.ndarray, np.ndarray]:
    """Eigensystem of ``diag(D) + rho z z^T`` expressed through ``Q``.

    ``Q`` holds *any* number of rows of the accumulated eigenvector basis
    (full ``N`` rows in vector mode, 2 rows in eigenvalues-only mode); its
    columns are transformed exactly like eigenvectors.  Returns
    ``(lam ascending, Q_updated)``.
    """
    N = D.size
    if rho < 0.0:
        # eig(D + rho z z^T) = -rev(eig(-rev(D) + |rho| rev(z) rev(z)^T))
        lam_r, Q_r = _rank_one_update(-D[::-1], z[::-1], -rho, Q[:, ::-1], stats, ctx)
        return -lam_r[::-1], Q_r[:, ::-1]

    znorm2 = float(z @ z)
    if rho == 0.0 or znorm2 == 0.0:
        order = np.argsort(D, kind="stable")
        return D[order], Q[:, order]

    order = np.argsort(D, kind="stable")
    D = D[order].copy()
    z = z[order].copy()
    Q = Q[:, order].copy()

    znorm = np.sqrt(znorm2)
    norm_m = float(np.max(np.abs(D))) + rho * znorm2
    tol_z = 4.0 * _EPS * norm_m / max(rho * znorm, np.finfo(np.float64).tiny)
    tol_gap = 16.0 * _EPS * norm_m

    deflated = np.abs(z) <= tol_z

    # Givens deflation of (near-)equal poles among the survivors.
    live = np.flatnonzero(~deflated)
    prev = -1
    for cur in live:
        if prev >= 0 and D[cur] - D[prev] <= tol_gap:
            r = np.hypot(z[prev], z[cur])
            c = z[cur] / r
            s = z[prev] / r
            z[cur] = r
            z[prev] = 0.0
            # Rotate the 2x2 diagonal block; the off-diagonal it creates is
            # |c s (D_prev - D_cur)| <= tol_gap / 2 and is dropped (that is
            # the deflation error, bounded by the perturbation tolerance).
            dp, dc_ = D[prev], D[cur]
            D[prev] = c * c * dp + s * s * dc_
            D[cur] = s * s * dp + c * c * dc_
            qp = Q[:, prev].copy()
            Q[:, prev] = c * qp - s * Q[:, cur]
            Q[:, cur] = s * qp + c * Q[:, cur]
            deflated[prev] = True
        prev = cur

    nd = np.flatnonzero(~deflated)
    df = np.flatnonzero(deflated)
    stats.deflated += df.size
    stats.secular_size_total += nd.size

    if nd.size == 0:
        order = np.argsort(D, kind="stable")
        return D[order], Q[:, order]

    roots = solve_all_roots(D[nd], z[nd], rho)
    lam_nd = roots.values
    zhat = refine_z(roots, z[nd], rho)
    S = secular_eigenvectors(roots, zhat)
    if ctx.is_numpy:
        Q_nd = Q[:, nd] @ S
    else:
        # The one BLAS3 shape of the merge — route it to the backend; the
        # secular machinery around it is scalar-bound and stays host-side.
        Q_nd = ctx.to_numpy(
            ctx.from_numpy(np.ascontiguousarray(Q[:, nd])) @ ctx.from_numpy(S)
        )
    stats.gemm_flops += 2.0 * Q.shape[0] * nd.size * nd.size

    lam_all = np.concatenate([lam_nd, D[df]])
    Q_all = np.concatenate([Q_nd, Q[:, df]], axis=1)
    order = np.argsort(lam_all, kind="stable")
    return lam_all[order], Q_all[:, order]


def _block_diag_rows(
    U1: np.ndarray, U2: np.ndarray, rows_only: bool
) -> np.ndarray:
    """The carried basis for a merge: full block diagonal in vector mode,
    or just its first and last rows in eigenvalues-only mode."""
    n1, k1 = U1.shape
    n2, k2 = U2.shape
    if rows_only:
        Q = np.zeros((2, k1 + k2))
        Q[0, :k1] = U1[0]
        Q[1, k1:] = U2[-1]
        return Q
    Q = np.zeros((n1 + n2, k1 + k2))
    Q[:n1, :k1] = U1
    Q[n1:, k1:] = U2
    return Q


def _dc_recurse(
    d: np.ndarray,
    e: np.ndarray,
    rows_only: bool,
    base_size: int,
    stats: DCStats,
    ctx: ExecutionContext,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(lam, Q, z_top, z_bottom)`` where ``Q`` is the carried
    basis (full or 2-row) and ``z_top``/``z_bottom`` are the first/last
    rows of the true eigenvector matrix (needed to build ``z`` upstairs)."""
    n = d.size
    if n <= base_size:
        lam, U = tridiag_qr_eigh(d, e, compute_vectors=True)
        if rows_only:
            Q = np.vstack([U[0], U[-1]])
        else:
            Q = U
        return lam, Q, Q[0].copy(), Q[-1].copy()

    m = n // 2
    rho = float(e[m - 1])
    d1 = d[:m].copy()
    d2 = d[m:].copy()
    d1[-1] -= rho
    d2[0] -= rho
    lam1, Q1, _, last1 = _dc_recurse(d1, e[: m - 1], rows_only, base_size, stats, ctx)
    lam2, Q2, first2, _ = _dc_recurse(d2, e[m:], rows_only, base_size, stats, ctx)

    D = np.concatenate([lam1, lam2])
    z = np.concatenate([last1, first2])
    Q = _block_diag_rows(Q1, Q2, rows_only)
    stats.merges += 1
    stats.sizes.append(n)
    lam, Qout = _rank_one_update(D, z, rho, Q, stats, ctx)
    return lam, Qout, Qout[0].copy(), Qout[-1].copy()


def dc_eigh(
    d: np.ndarray,
    e: np.ndarray,
    compute_vectors: bool = True,
    base_size: int = 24,
    return_stats: bool = False,
    ctx: ExecutionContext | None = None,
):
    """Eigendecomposition of ``tridiag(d, e)`` by divide and conquer.

    Parameters
    ----------
    d, e : ndarray
        Diagonal (length ``n``) and subdiagonal (length ``n-1``).
    compute_vectors : bool
        When false, only the first/last eigenvector rows are carried
        through the recursion (``O(n^2)`` total).
    base_size : int
        Subproblems at or below this size use QL iteration directly.
    return_stats : bool
        Also return a :class:`DCStats` with merge/deflation counters.
    ctx : ExecutionContext, optional
        Execution context; the per-level eigenvector merge GEMM runs on
        its backend (the secular solves stay on the host).

    Returns
    -------
    (lam, U[, stats])
        Ascending eigenvalues; ``U`` is the eigenvector matrix or ``None``.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.size
    if e.size != max(n - 1, 0):
        raise ValueError(f"e must have length n-1={n - 1}, got {e.size}")
    if base_size < 3:
        raise ValueError("base_size must be >= 3")
    stats = DCStats()
    lam, Q, _, _ = _dc_recurse(
        d, e, not compute_vectors, base_size, stats, resolve_context(ctx)
    )
    U = Q if compute_vectors else None
    if return_stats:
        return lam, U, stats
    return lam, U
