"""Secular equation machinery for the divide-and-conquer eigensolver.

A Cuppen merge step reduces to the symmetric rank-one eigenproblem

    D + rho z z^T,   D = diag(d_1 < d_2 < ... < d_N),  rho > 0,

whose eigenvalues are the roots of the *secular equation*

    f(lam) = 1 + rho * sum_j z_j^2 / (d_j - lam) = 0,

one root strictly inside each interval ``(d_i, d_{i+1})`` plus one beyond
``d_N`` (interlacing).  This module provides:

* :func:`solve_secular_root` — a guarded rational-Newton iteration for a
  single root, returning the root as ``(anchor index, offset)`` so that
  ``lam - d_j`` can later be formed without cancellation;
* :func:`solve_all_roots` — all ``N`` roots;
* :func:`refine_z` — the Gu–Eisenstat trick: recompute the rank-one vector
  ``z_hat`` from the *computed* roots (Löwner's formula), which makes the
  analytic eigenvector formula numerically orthogonal even for tightly
  clustered eigenvalues;
* :func:`secular_eigenvectors` — eigenvectors ``u_i propto z_hat_j /
  (d_j - lam_i)`` built from the refined vector.

Each of the three stages comes in two modes (``mode="batched"`` default,
``mode="scalar"``).  The scalar mode is the original one-root-at-a-time
implementation, kept bit-for-bit as a cross-check oracle (mirroring the
``bc_driver="pipelined"`` precedent).  The batched mode executes the same
mathematics as stacked array sweeps:

* the guarded Newton iteration runs on *all* roots simultaneously over an
  ``(N, N)`` pole-difference matrix with per-root convergence masks and
  bracket updates, compressing to the still-active rows each sweep;
* the Löwner refinement evaluates all paired ratios
  ``(lam_i - d_j) / (d_{i or i+1} - d_j)`` as one matrix (each ratio is
  O(1) by interlacing, so the column products stay bounded) and reduces
  them with a single ``prod``;
* the eigenvector formula is one broadcasted outer division plus a single
  vectorized column normalization.

Large ``(N, N)`` intermediates can be served from a caller-provided
workspace pool (``workspace=``, duck-typed to
:meth:`repro.backend.WorkspacePool.matrix`) so repeated merges inside the
divide-and-conquer tree allocate nothing in steady state.

``rho < 0`` is handled by the caller (:mod:`repro.eig.dc`) through the
reflection ``eig(D + rho z z^T) = -rev(eig(-rev(D) + |rho| rev(z) rev(z)^T))``.
"""

from __future__ import annotations

import numpy as np

from ..resilience.errors import ConvergenceError
from ..resilience.faults import maybe_raise

__all__ = [
    "SecularRoots",
    "solve_secular_root",
    "solve_all_roots",
    "refine_z",
    "secular_eigenvectors",
    "secular_f",
]

_EPS = np.finfo(np.float64).eps

_MODES = ("batched", "scalar")


def _check_mode(mode: str) -> None:
    if mode not in _MODES:
        raise ValueError(f"unknown secular mode {mode!r}; expected one of {_MODES}")


def _scratch_matrix(workspace, tag: str, shape: tuple[int, int]) -> np.ndarray:
    """An uninitialized (rows, cols) scratch matrix, pooled when possible."""
    if workspace is None:
        return np.empty(shape, dtype=np.float64)
    return workspace.matrix(tag, shape, dtype=np.float64)


def secular_f(lam: float, d: np.ndarray, z2: np.ndarray, rho: float) -> float:
    """Evaluate ``f(lam) = 1 + rho * sum z_j^2 / (d_j - lam)`` (diagnostics)."""
    return 1.0 + rho * float(np.sum(z2 / (d - lam)))


class SecularRoots:
    """Roots stored as ``lam_i = d[anchor_i] + offset_i``.

    Keeping the anchor/offset split lets downstream code compute
    ``lam_i - d_j = (d[anchor_i] - d_j) + offset_i`` with one subtraction
    of exact inputs plus one small correction — no catastrophic
    cancellation next to a pole.
    """

    def __init__(self, d: np.ndarray, anchors: np.ndarray, offsets: np.ndarray):
        self.d = d
        self.anchors = anchors
        self.offsets = offsets

    @property
    def values(self) -> np.ndarray:
        """The eigenvalues ``lam`` (ascending)."""
        return self.d[self.anchors] + self.offsets

    def minus_d(self, j: int) -> np.ndarray:
        """Vector ``lam_i - d_j`` for all roots ``i``, cancellation-free."""
        return (self.d[self.anchors] - self.d[j]) + self.offsets

    def gaps(self, i: int) -> np.ndarray:
        """Vector ``d_j - lam_i`` for all ``j``, cancellation-free."""
        return (self.d - self.d[self.anchors[i]]) - self.offsets[i]

    def minus_d_matrix(self, out: np.ndarray | None = None) -> np.ndarray:
        """Matrix ``L[i, j] = lam_i - d_j`` for all roots/poles at once.

        Each entry is one exact-input subtraction plus the small offset —
        the same cancellation-free form as :meth:`minus_d`, built as a
        single broadcast."""
        d, anchors, offsets = self.d, self.anchors, self.offsets
        if out is None:
            return (d[anchors][:, None] - d[None, :]) + offsets[:, None]
        np.subtract(d[anchors][:, None], d[None, :], out=out)
        out += offsets[:, None]
        return out


def _eval_psi_phi(
    mu: float, delta: np.ndarray, z2: np.ndarray, split: int
) -> tuple[float, float, float, float]:
    """Evaluate the two halves of the secular sum at offset ``mu``.

    ``delta = d - d_anchor``; poles below/at the anchor side go to ``psi``,
    the rest to ``phi``.  Returns ``(psi, psi', phi, phi')``.
    """
    diff = delta - mu
    terms = z2 / diff
    dterms = terms / diff
    psi = float(np.sum(terms[: split + 1]))
    dpsi = float(np.sum(dterms[: split + 1]))
    phi = float(np.sum(terms[split + 1 :]))
    dphi = float(np.sum(dterms[split + 1 :]))
    return psi, dpsi, phi, dphi


def solve_secular_root(
    d: np.ndarray,
    z2: np.ndarray,
    rho: float,
    i: int,
    max_iter: int = 256,
) -> tuple[int, float]:
    """Find root ``i`` of the secular equation (``rho > 0``).

    Root ``i`` lies in ``(d_i, d_{i+1})`` for ``i < N-1`` and in
    ``(d_{N-1}, d_{N-1} + rho ||z||^2)`` for ``i == N-1``.  The root is
    anchored to whichever interval endpoint it is closer to (decided by the
    sign of ``f`` at the midpoint) and found by a guarded Newton iteration
    on the offset, with bisection fallback; convergence is to relative
    machine precision of the offset.

    Returns ``(anchor, mu)`` with ``lam = d[anchor] + mu``.

    Raises
    ------
    ConvergenceError
        The iteration hit ``max_iter`` without reaching the backward-
        error floor or a sub-ulp step (site ``"secular.newton"``).
    """
    N = d.size
    if not 0 <= i < N:
        raise IndexError(f"root index {i} out of range 0..{N - 1}")
    if rho <= 0:
        raise ValueError("solve_secular_root requires rho > 0")

    if i < N - 1:
        left, right = d[i], d[i + 1]
        mid = 0.5 * (left + right)
        f_mid = 1.0 + rho * float(np.sum(z2 / (d - mid)))
        # f increasing on the interval: root left of mid iff f(mid) > 0.
        anchor = i if f_mid > 0 else i + 1
    else:
        left = d[N - 1]
        right = d[N - 1] + rho * float(np.sum(z2))
        anchor = N - 1

    delta = d - d[anchor]
    # Bracketing interval for the offset mu.
    lo = left - d[anchor]
    hi = right - d[anchor]
    # Keep strictly inside the poles.
    span = hi - lo
    if span <= 0:
        return anchor, 0.0
    mu = 0.5 * (lo + hi)

    for _ in range(max_iter):
        diff = delta - mu
        if np.any(diff == 0.0):
            # Exactly on a pole (can only happen at bracket endpoints):
            # nudge one ulp toward the interval interior and re-evaluate.
            mu = np.nextafter(mu, 0.5 * (lo + hi))
            diff = delta - mu
            if np.any(diff == 0.0):  # pragma: no cover - degenerate poles
                mu = np.nextafter(mu, 0.5 * (lo + hi))
                diff = delta - mu
        terms = z2 / diff
        f = 1.0 / rho + float(np.sum(terms))
        fp = float(np.sum(terms / diff))  # f' / rho, always > 0
        # Backward-error floor: |f| already at the roundoff level of its
        # own evaluation — iterating further is pure noise.
        fscale = 1.0 / rho + float(np.sum(np.abs(terms)))
        if abs(f) <= 2.0 * _EPS * fscale:
            break
        if f > 0:
            hi = mu
        else:
            lo = mu
        # Newton step on the monotone function.
        step = -f / fp if fp > 0 else 0.0
        mu_new = mu + step
        if not (lo < mu_new < hi):
            mu_new = 0.5 * (lo + hi)
        if abs(mu_new - mu) <= _EPS * max(abs(mu_new), abs(mu)):
            mu = mu_new
            break
        mu = mu_new
    else:
        raise ConvergenceError(
            f"secular Newton iteration for root {i} did not converge in "
            f"{max_iter} iterations",
            site="secular.newton",
            iterations=max_iter,
            indices=[i],
        )
    return anchor, float(mu)


def _solve_all_roots_scalar(
    d: np.ndarray, z2: np.ndarray, rho: float, max_iter: int = 256
) -> SecularRoots:
    N = d.size
    anchors = np.zeros(N, dtype=np.int64)
    offsets = np.zeros(N, dtype=np.float64)
    for i in range(N):
        a, mu = solve_secular_root(d, z2, rho, i, max_iter=max_iter)
        anchors[i] = a
        offsets[i] = mu
    return SecularRoots(d, anchors, offsets)


def _solve_all_roots_batched(
    d: np.ndarray,
    z2: np.ndarray,
    rho: float,
    workspace=None,
    max_iter: int = 256,
) -> SecularRoots:
    """All roots at once: the guarded Newton of :func:`solve_secular_root`
    executed as stacked sweeps over an ``(active, N)`` pole-difference
    matrix with per-root bracket and convergence state."""
    if rho <= 0:
        raise ValueError("solve_all_roots requires rho > 0")
    N = d.size
    anchors = np.arange(N, dtype=np.int64)
    offsets = np.zeros(N, dtype=np.float64)
    if N == 0:
        return SecularRoots(d, anchors, offsets)

    # Anchor choice: evaluate f at each interior midpoint in one sweep;
    # root i sits left of its midpoint iff f(mid_i) > 0 (f increasing).
    if N > 1:
        mids = 0.5 * (d[:-1] + d[1:])
        f_mid = 1.0 + rho * np.sum(z2[None, :] / (d[None, :] - mids[:, None]), axis=1)
        anchors[:-1] += f_mid <= 0.0
    d_anchor = d[anchors]

    # Offset brackets: root i in (d_i, d_{i+1}), the last in
    # (d_{N-1}, d_{N-1} + rho ||z||^2).
    hi = np.empty(N, dtype=np.float64)
    hi[: N - 1] = d[1:] - d_anchor[: N - 1]
    hi[N - 1] = rho * float(np.sum(z2))
    lo = d - d_anchor

    # delta[i, j] = d_j - d_anchor_i: the pole offsets seen by root i.
    delta = _scratch_matrix(workspace, "secular.delta", (N, N))
    np.subtract(d[None, :], d_anchor[:, None], out=delta)

    span = hi - lo
    mu = np.where(span > 0.0, 0.5 * (lo + hi), 0.0)
    idx = np.flatnonzero(span > 0.0)

    inv_rho = 1.0 / rho
    for _ in range(max_iter):
        if idx.size == 0:
            break
        delta_a = delta[idx]
        mu_a = mu[idx]
        lo_a = lo[idx]
        hi_a = hi[idx]
        diff = delta_a - mu_a[:, None]
        # Exactly on a pole (only possible at bracket endpoints): nudge
        # one ulp toward the interval interior and re-evaluate.
        for _nudge in range(2):
            hit = (diff == 0.0).any(axis=1)
            if not hit.any():
                break
            mid_now = 0.5 * (lo_a + hi_a)
            mu_a[hit] = np.nextafter(mu_a[hit], mid_now[hit])
            diff[hit] = delta_a[hit] - mu_a[hit][:, None]
        terms = z2[None, :] / diff
        f = inv_rho + terms.sum(axis=1)
        dterms = terms / diff
        fp = dterms.sum(axis=1)  # f' / rho, always > 0
        # Backward-error floor, per root: |f| at the roundoff level of
        # its own evaluation — iterating further is pure noise.
        np.abs(terms, out=terms)
        fscale = inv_rho + terms.sum(axis=1)
        at_floor = np.abs(f) <= 2.0 * _EPS * fscale
        # Bracket update on the monotone function, then a guarded Newton
        # step with bisection fallback — all rows at once.
        f_pos = f > 0.0
        hi_a = np.where(f_pos, mu_a, hi_a)
        lo_a = np.where(f_pos, lo_a, mu_a)
        step = np.zeros_like(f)
        np.divide(-f, fp, out=step, where=fp > 0.0)
        mu_new = mu_a + step
        inside = (lo_a < mu_new) & (mu_new < hi_a)
        mu_new = np.where(inside, mu_new, 0.5 * (lo_a + hi_a))
        tiny_step = np.abs(mu_new - mu_a) <= _EPS * np.maximum(
            np.abs(mu_new), np.abs(mu_a)
        )
        # Roots at the residual floor keep their current mu; roots whose
        # step collapsed accept the step and stop; the rest keep going.
        mu[idx] = np.where(at_floor, mu_a, mu_new)
        lo[idx] = lo_a
        hi[idx] = hi_a
        idx = idx[~(at_floor | tiny_step)]

    if idx.size > 0:
        # Stagnant brackets must fail loudly: exiting here with silently
        # unconverged roots poisons every eigenvector built from them.
        raise ConvergenceError(
            f"secular Newton sweep left {idx.size} of {N} roots unconverged "
            f"after {max_iter} iterations (root indices {idx[:8].tolist()}"
            f"{'...' if idx.size > 8 else ''})",
            site="secular.newton",
            iterations=max_iter,
            indices=idx,
        )

    offsets[:] = mu
    return SecularRoots(d, anchors, offsets)


def solve_all_roots(
    d: np.ndarray,
    z: np.ndarray,
    rho: float,
    mode: str = "batched",
    workspace=None,
    max_iter: int = 256,
) -> SecularRoots:
    """All ``N`` secular roots for ``D + rho z z^T`` (``rho > 0``,
    ``d`` strictly ascending, ``z`` fully non-deflated).

    ``mode="batched"`` (default) iterates every root simultaneously with
    vectorized sweeps; ``mode="scalar"`` is the original per-root loop,
    kept as a cross-check oracle.  ``workspace`` optionally pools the
    ``(N, N)`` scratch (batched mode only).

    Raises
    ------
    ConvergenceError
        Any root's bracket is still active after ``max_iter`` sweeps
        (site ``"secular.newton"``, carrying the offending root
        indices) — in either mode; stagnant roots never exit silently.
    """
    _check_mode(mode)
    maybe_raise("secular.newton")
    d = np.asarray(d, dtype=np.float64)
    z2 = np.asarray(z, dtype=np.float64) ** 2
    if mode == "scalar":
        return _solve_all_roots_scalar(d, z2, rho, max_iter=max_iter)
    return _solve_all_roots_batched(d, z2, rho, workspace=workspace, max_iter=max_iter)


def _refine_z_scalar(roots: SecularRoots, z: np.ndarray, rho: float) -> np.ndarray:
    d = roots.d
    N = d.size
    zhat = np.zeros(N, dtype=np.float64)
    for j in range(N):
        lam_minus_dj = roots.minus_d(j)  # lam_i - d_j for all i
        val = lam_minus_dj[N - 1] / rho
        for i in range(j):
            val *= lam_minus_dj[i] / (d[i] - d[j])
        for i in range(j, N - 1):
            val *= lam_minus_dj[i] / (d[i + 1] - d[j])
        # Roundoff can leave a tiny negative value for hard clusters.
        zhat[j] = np.copysign(np.sqrt(abs(val)), z[j])
    return zhat


def _refine_z_batched(
    roots: SecularRoots, z: np.ndarray, rho: float, workspace=None
) -> np.ndarray:
    """Löwner evaluation in paired-ratio matrix form: every factor
    ``(lam_i - d_j) / (d_p - d_j)`` pairs a root with the pole on the same
    side (``p = i`` below the diagonal, ``p = i + 1`` at/above), so each
    ratio is O(1) by interlacing and the column products stay bounded —
    no logs needed, no Python loops."""
    d = roots.d
    N = d.size
    L = roots.minus_d_matrix(
        out=_scratch_matrix(workspace, "secular.loewner_num", (N, N))
    )
    if N == 1:
        val = L[0] / rho
    else:
        rows = np.arange(N - 1)[:, None]
        cols = np.arange(N)[None, :]
        pole = rows + (rows >= cols)
        R = _scratch_matrix(workspace, "secular.loewner_ratio", (N - 1, N))
        np.subtract(d[pole], d[None, :], out=R)
        np.divide(L[: N - 1], R, out=R)
        val = np.prod(R, axis=0) * (L[N - 1] / rho)
    # Roundoff can leave a tiny negative value for hard clusters.
    return np.copysign(np.sqrt(np.abs(val)), z)


def refine_z(
    roots: SecularRoots,
    z: np.ndarray,
    rho: float,
    mode: str = "batched",
    workspace=None,
) -> np.ndarray:
    """Gu–Eisenstat refinement: the rank-one vector consistent with the
    *computed* roots.

    By Löwner's formula, exact roots ``lam_i`` of ``D + rho z z^T`` satisfy

        z_j^2 = prod_i (lam_i - d_j) / (rho * prod_{i != j} (d_i - d_j)).

    Evaluating this with the computed roots yields ``z_hat`` such that the
    computed roots are *exact* for ``D + rho z_hat z_hat^T``; eigenvectors
    formed from ``z_hat`` are then orthogonal to machine precision.
    Products are accumulated as paired ratios, each O(1) by interlacing —
    as one ``(N, N)`` ratio matrix in batched mode, or the original
    per-entry double loop with ``mode="scalar"``.
    """
    _check_mode(mode)
    if mode == "scalar":
        return _refine_z_scalar(roots, z, rho)
    return _refine_z_batched(roots, z, rho, workspace=workspace)


def _secular_eigenvectors_scalar(roots: SecularRoots, zhat: np.ndarray) -> np.ndarray:
    N = zhat.size
    U = np.zeros((N, N), dtype=np.float64)
    for i in range(N):
        denom = roots.gaps(i)  # d_j - lam_i, cancellation-free
        U[:, i] = zhat / denom
        U[:, i] /= np.linalg.norm(U[:, i])
    return U


def _secular_eigenvectors_batched(
    roots: SecularRoots, zhat: np.ndarray, workspace=None
) -> np.ndarray:
    d = roots.d
    N = zhat.size
    # G[j, i] = d_j - lam_i, cancellation-free (transpose of minus_d_matrix).
    U = _scratch_matrix(workspace, "secular.U", (N, N))
    np.subtract(d[:, None], d[roots.anchors][None, :], out=U)
    U -= roots.offsets[None, :]
    np.divide(zhat[:, None], U, out=U)
    U /= np.sqrt(np.einsum("ji,ji->i", U, U))[None, :]
    return U


def secular_eigenvectors(
    roots: SecularRoots,
    zhat: np.ndarray,
    mode: str = "batched",
    workspace=None,
) -> np.ndarray:
    """Eigenvector matrix of ``D + rho z_hat z_hat^T`` from the analytic
    formula ``u_i(j) = z_hat_j / (d_j - lam_i)``, columns normalized.

    Batched mode forms the whole matrix as one broadcasted outer division
    plus a single vectorized column normalization; ``mode="scalar"`` is
    the original column-at-a-time loop.  When ``workspace`` is given the
    returned matrix is pool-backed scratch — valid until the next batched
    secular call on the same pool (the divide-and-conquer merge consumes
    it immediately in its GEMM).
    """
    _check_mode(mode)
    if mode == "scalar":
        return _secular_eigenvectors_scalar(roots, zhat)
    return _secular_eigenvectors_batched(roots, zhat, workspace=workspace)
