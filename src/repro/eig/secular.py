"""Secular equation machinery for the divide-and-conquer eigensolver.

A Cuppen merge step reduces to the symmetric rank-one eigenproblem

    D + rho z z^T,   D = diag(d_1 < d_2 < ... < d_N),  rho > 0,

whose eigenvalues are the roots of the *secular equation*

    f(lam) = 1 + rho * sum_j z_j^2 / (d_j - lam) = 0,

one root strictly inside each interval ``(d_i, d_{i+1})`` plus one beyond
``d_N`` (interlacing).  This module provides:

* :func:`solve_secular_root` — a guarded rational-Newton iteration for a
  single root, returning the root as ``(anchor index, offset)`` so that
  ``lam - d_j`` can later be formed without cancellation;
* :func:`solve_all_roots` — all ``N`` roots;
* :func:`refine_z` — the Gu–Eisenstat trick: recompute the rank-one vector
  ``z_hat`` from the *computed* roots (Löwner's formula), which makes the
  analytic eigenvector formula numerically orthogonal even for tightly
  clustered eigenvalues;
* :func:`secular_eigenvectors` — eigenvectors ``u_i propto z_hat_j /
  (d_j - lam_i)`` built from the refined vector.

``rho < 0`` is handled by the caller (:mod:`repro.eig.dc`) through the
reflection ``eig(D + rho z z^T) = -rev(eig(-rev(D) + |rho| rev(z) rev(z)^T))``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SecularRoots",
    "solve_secular_root",
    "solve_all_roots",
    "refine_z",
    "secular_eigenvectors",
    "secular_f",
]

_EPS = np.finfo(np.float64).eps


def secular_f(lam: float, d: np.ndarray, z2: np.ndarray, rho: float) -> float:
    """Evaluate ``f(lam) = 1 + rho * sum z_j^2 / (d_j - lam)`` (diagnostics)."""
    return 1.0 + rho * float(np.sum(z2 / (d - lam)))


class SecularRoots:
    """Roots stored as ``lam_i = d[anchor_i] + offset_i``.

    Keeping the anchor/offset split lets downstream code compute
    ``lam_i - d_j = (d[anchor_i] - d_j) + offset_i`` with one subtraction
    of exact inputs plus one small correction — no catastrophic
    cancellation next to a pole.
    """

    def __init__(self, d: np.ndarray, anchors: np.ndarray, offsets: np.ndarray):
        self.d = d
        self.anchors = anchors
        self.offsets = offsets

    @property
    def values(self) -> np.ndarray:
        """The eigenvalues ``lam`` (ascending)."""
        return self.d[self.anchors] + self.offsets

    def minus_d(self, j: int) -> np.ndarray:
        """Vector ``lam_i - d_j`` for all roots ``i``, cancellation-free."""
        return (self.d[self.anchors] - self.d[j]) + self.offsets

    def gaps(self, i: int) -> np.ndarray:
        """Vector ``d_j - lam_i`` for all ``j``, cancellation-free."""
        return (self.d - self.d[self.anchors[i]]) - self.offsets[i]


def _eval_psi_phi(
    mu: float, delta: np.ndarray, z2: np.ndarray, split: int
) -> tuple[float, float, float, float]:
    """Evaluate the two halves of the secular sum at offset ``mu``.

    ``delta = d - d_anchor``; poles below/at the anchor side go to ``psi``,
    the rest to ``phi``.  Returns ``(psi, psi', phi, phi')``.
    """
    diff = delta - mu
    terms = z2 / diff
    dterms = terms / diff
    psi = float(np.sum(terms[: split + 1]))
    dpsi = float(np.sum(dterms[: split + 1]))
    phi = float(np.sum(terms[split + 1 :]))
    dphi = float(np.sum(dterms[split + 1 :]))
    return psi, dpsi, phi, dphi


def solve_secular_root(
    d: np.ndarray,
    z2: np.ndarray,
    rho: float,
    i: int,
    max_iter: int = 256,
) -> tuple[int, float]:
    """Find root ``i`` of the secular equation (``rho > 0``).

    Root ``i`` lies in ``(d_i, d_{i+1})`` for ``i < N-1`` and in
    ``(d_{N-1}, d_{N-1} + rho ||z||^2)`` for ``i == N-1``.  The root is
    anchored to whichever interval endpoint it is closer to (decided by the
    sign of ``f`` at the midpoint) and found by a guarded Newton iteration
    on the offset, with bisection fallback; convergence is to relative
    machine precision of the offset.

    Returns ``(anchor, mu)`` with ``lam = d[anchor] + mu``.
    """
    N = d.size
    if not 0 <= i < N:
        raise IndexError(f"root index {i} out of range 0..{N - 1}")
    if rho <= 0:
        raise ValueError("solve_secular_root requires rho > 0")

    if i < N - 1:
        left, right = d[i], d[i + 1]
        mid = 0.5 * (left + right)
        f_mid = 1.0 + rho * float(np.sum(z2 / (d - mid)))
        # f increasing on the interval: root left of mid iff f(mid) > 0.
        anchor = i if f_mid > 0 else i + 1
    else:
        left = d[N - 1]
        right = d[N - 1] + rho * float(np.sum(z2))
        anchor = N - 1

    delta = d - d[anchor]
    # Bracketing interval for the offset mu.
    lo = left - d[anchor]
    hi = right - d[anchor]
    # Keep strictly inside the poles.
    span = hi - lo
    if span <= 0:
        return anchor, 0.0
    mu = 0.5 * (lo + hi)

    for _ in range(max_iter):
        diff = delta - mu
        if np.any(diff == 0.0):
            # Exactly on a pole (can only happen at bracket endpoints):
            # nudge one ulp toward the interval interior and re-evaluate.
            mu = np.nextafter(mu, 0.5 * (lo + hi))
            diff = delta - mu
            if np.any(diff == 0.0):  # pragma: no cover - degenerate poles
                mu = np.nextafter(mu, 0.5 * (lo + hi))
                diff = delta - mu
        terms = z2 / diff
        f = 1.0 / rho + float(np.sum(terms))
        fp = float(np.sum(terms / diff))  # f' / rho, always > 0
        # Backward-error floor: |f| already at the roundoff level of its
        # own evaluation — iterating further is pure noise.
        fscale = 1.0 / rho + float(np.sum(np.abs(terms)))
        if abs(f) <= 2.0 * _EPS * fscale:
            break
        if f > 0:
            hi = mu
        else:
            lo = mu
        # Newton step on the monotone function.
        step = -f / fp if fp > 0 else 0.0
        mu_new = mu + step
        if not (lo < mu_new < hi):
            mu_new = 0.5 * (lo + hi)
        if abs(mu_new - mu) <= _EPS * max(abs(mu_new), abs(mu)):
            mu = mu_new
            break
        mu = mu_new
    return anchor, float(mu)


def solve_all_roots(d: np.ndarray, z: np.ndarray, rho: float) -> SecularRoots:
    """All ``N`` secular roots for ``D + rho z z^T`` (``rho > 0``,
    ``d`` strictly ascending, ``z`` fully non-deflated)."""
    d = np.asarray(d, dtype=np.float64)
    z2 = np.asarray(z, dtype=np.float64) ** 2
    N = d.size
    anchors = np.zeros(N, dtype=np.int64)
    offsets = np.zeros(N, dtype=np.float64)
    for i in range(N):
        a, mu = solve_secular_root(d, z2, rho, i)
        anchors[i] = a
        offsets[i] = mu
    return SecularRoots(d, anchors, offsets)


def refine_z(roots: SecularRoots, z: np.ndarray, rho: float) -> np.ndarray:
    """Gu–Eisenstat refinement: the rank-one vector consistent with the
    *computed* roots.

    By Löwner's formula, exact roots ``lam_i`` of ``D + rho z z^T`` satisfy

        z_j^2 = prod_i (lam_i - d_j) / (rho * prod_{i != j} (d_i - d_j)).

    Evaluating this with the computed roots yields ``z_hat`` such that the
    computed roots are *exact* for ``D + rho z_hat z_hat^T``; eigenvectors
    formed from ``z_hat`` are then orthogonal to machine precision.
    Products are accumulated as paired ratios, each O(1) by interlacing.
    """
    d = roots.d
    N = d.size
    zhat = np.zeros(N, dtype=np.float64)
    for j in range(N):
        lam_minus_dj = roots.minus_d(j)  # lam_i - d_j for all i
        val = lam_minus_dj[N - 1] / rho
        for i in range(j):
            val *= lam_minus_dj[i] / (d[i] - d[j])
        for i in range(j, N - 1):
            val *= lam_minus_dj[i] / (d[i + 1] - d[j])
        # Roundoff can leave a tiny negative value for hard clusters.
        zhat[j] = np.copysign(np.sqrt(abs(val)), z[j])
    return zhat


def secular_eigenvectors(roots: SecularRoots, zhat: np.ndarray) -> np.ndarray:
    """Eigenvector matrix of ``D + rho z_hat z_hat^T`` from the analytic
    formula ``u_i(j) = z_hat_j / (d_j - lam_i)``, columns normalized."""
    N = zhat.size
    U = np.zeros((N, N), dtype=np.float64)
    for i in range(N):
        denom = roots.gaps(i)  # d_j - lam_i, cancellation-free
        U[:, i] = zhat / denom
        U[:, i] /= np.linalg.norm(U[:, i])
    return U
