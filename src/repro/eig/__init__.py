"""Tridiagonal eigensolvers: divide & conquer, QL iteration, bisection."""

from .dc import DCStats, dc_eigh
from .jacobi import jacobi_eigh
from .qr_iteration import tridiag_qr_eigh
from .secular import (
    SecularRoots,
    refine_z,
    secular_eigenvectors,
    secular_f,
    solve_all_roots,
    solve_secular_root,
)
from .sturm import (
    eigh_bisect,
    eigvals_bisect,
    inverse_iteration,
    sturm_count,
    tridiag_solve_shifted,
)

__all__ = [
    "DCStats",
    "SecularRoots",
    "dc_eigh",
    "eigh_bisect",
    "eigvals_bisect",
    "inverse_iteration",
    "jacobi_eigh",
    "refine_z",
    "secular_eigenvectors",
    "secular_f",
    "solve_all_roots",
    "solve_secular_root",
    "sturm_count",
    "tridiag_qr_eigh",
    "tridiag_solve_shifted",
]
