"""Sturm-sequence bisection and inverse iteration for tridiagonal matrices.

The Sturm count ``nu(x)`` — the number of eigenvalues of ``tridiag(d, e)``
below ``x`` — comes from the signs of the leading-principal-minor
recurrence ``q_i = (d_i - x) - e_{i-1}^2 / q_{i-1}``.  Bisection on the
counts gives bracketed eigenvalues to any accuracy; inverse iteration with
the shifted tridiagonal LU recovers eigenvectors.

In this reproduction the module is the third, fully independent tridiagonal
eigensolver (next to QL iteration and divide & conquer): the property tests
require all three to agree, which is a strong correctness oracle that does
not rely on SciPy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sturm_count",
    "eigvals_bisect",
    "tridiag_solve_shifted",
    "inverse_iteration",
    "eigh_bisect",
]

_EPS = np.finfo(np.float64).eps


def sturm_count(d: np.ndarray, e: np.ndarray, x: np.ndarray | float) -> np.ndarray:
    """Number of eigenvalues of ``tridiag(d, e)`` strictly below each shift.

    Vectorized over shifts: ``x`` may be a scalar or a 1-D array; returns
    an integer array of the same shape.
    """
    x = np.atleast_1d(np.asarray(x, dtype=np.float64))
    n = d.size
    q = d[0] - x
    count = (q < 0).astype(np.int64)
    tiny = np.sqrt(np.finfo(np.float64).tiny)
    for i in range(1, n):
        q = np.where(np.abs(q) < tiny, -tiny, q)
        q = (d[i] - x) - (e[i - 1] * e[i - 1]) / q
        count += q < 0
    return count


def gershgorin_bounds(d: np.ndarray, e: np.ndarray) -> tuple[float, float]:
    """An interval guaranteed to contain the whole spectrum."""
    n = d.size
    radius = np.zeros(n)
    radius[:-1] += np.abs(e)
    radius[1:] += np.abs(e)
    return float(np.min(d - radius)), float(np.max(d + radius))


def eigvals_bisect(
    d: np.ndarray,
    e: np.ndarray,
    indices: np.ndarray | None = None,
    rtol: float = 4.0 * _EPS,
) -> np.ndarray:
    """Eigenvalues by bisection on the Sturm count.

    Parameters
    ----------
    d, e : ndarray
        Tridiagonal data.
    indices : ndarray or None
        Which eigenvalues (0 = smallest); None = all.
    rtol : float
        Relative interval-width target.

    Converges in ~60 vectorized rounds regardless of clustering.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.size
    if n == 1:
        lam = d.copy()
        return lam if indices is None else lam[np.asarray(indices)]
    idx = np.arange(n) if indices is None else np.asarray(indices, dtype=np.int64)
    lo_g, hi_g = gershgorin_bounds(d, e)
    span = max(hi_g - lo_g, 1.0)
    lo = np.full(idx.size, lo_g - _EPS * span)
    hi = np.full(idx.size, hi_g + _EPS * span)
    for _ in range(128):
        mid = 0.5 * (lo + hi)
        counts = sturm_count(d, e, mid)
        below = counts <= idx  # eigenvalue idx is at or above mid
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
        width = hi - lo
        if np.all(width <= rtol * np.maximum(np.abs(lo) + np.abs(hi), 1.0)):
            break
    return 0.5 * (lo + hi)


def tridiag_solve_shifted(
    d: np.ndarray, e: np.ndarray, sigma: float, rhs: np.ndarray
) -> np.ndarray:
    """Solve ``(tridiag(d, e) - sigma I) x = rhs`` by LU with partial
    pivoting (row swaps create a second superdiagonal, handled explicitly).

    Near-singular pivots (inverse iteration's normal operating point) are
    replaced by a tiny multiple of the matrix scale, as in LAPACK xSTEIN.
    """
    n = d.size
    scale = max(float(np.max(np.abs(d))) if n else 0.0,
                float(np.max(np.abs(e))) if n > 1 else 0.0, 1.0)
    safe = _EPS * scale
    # Band representation: main, first and second superdiagonal, and the
    # subdiagonal multipliers from elimination.
    a = d - sigma
    main = a.copy()
    sup1 = np.zeros(n)
    sup1[: n - 1] = e
    sup2 = np.zeros(n)
    sub = np.zeros(n)  # sub[i] holds e_i below main[i] during elimination
    sub[: n - 1] = e
    x = np.array(rhs, dtype=np.float64, copy=True)

    lower = np.zeros(n)  # multipliers
    swapped = np.zeros(n, dtype=bool)
    for i in range(n - 1):
        if abs(sub[i]) > abs(main[i]):
            # Swap rows i and i+1.
            swapped[i] = True
            main[i], sub[i] = sub[i], main[i]
            sup1[i], main[i + 1] = main[i + 1], sup1[i]
            if i + 2 < n:
                sup2[i], sup1[i + 1] = sup1[i + 1], sup2[i]
            x[i], x[i + 1] = x[i + 1], x[i]
        piv = main[i] if abs(main[i]) > safe * _EPS else np.copysign(safe * _EPS, main[i] or 1.0)
        main[i] = piv
        m = sub[i] / piv
        lower[i] = m
        main[i + 1] -= m * sup1[i]
        if i + 2 < n:
            sup1[i + 1] -= m * sup2[i]
        x[i + 1] -= m * x[i]
    if abs(main[n - 1]) <= safe * _EPS:
        main[n - 1] = np.copysign(safe * _EPS, main[n - 1] or 1.0)

    # Back substitution.
    x[n - 1] /= main[n - 1]
    if n >= 2:
        x[n - 2] = (x[n - 2] - sup1[n - 2] * x[n - 1]) / main[n - 2]
    for i in range(n - 3, -1, -1):
        x[i] = (x[i] - sup1[i] * x[i + 1] - sup2[i] * x[i + 2]) / main[i]
    return x


def inverse_iteration(
    d: np.ndarray,
    e: np.ndarray,
    lam: float,
    against: list[np.ndarray] | None = None,
    iters: int = 4,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """One eigenvector of ``tridiag(d, e)`` for (approximate) eigenvalue
    ``lam``, orthogonalized against ``against`` (cluster neighbours)."""
    n = d.size
    rng = rng if rng is not None else np.random.default_rng(12345)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    for _ in range(iters):
        v = tridiag_solve_shifted(d, e, lam, v)
        if against:
            for u in against:
                v -= (u @ v) * u
        nv = np.linalg.norm(v)
        if nv == 0.0:  # pragma: no cover - pathological restart
            v = rng.standard_normal(n)
            nv = np.linalg.norm(v)
        v /= nv
    return v


def eigh_bisect(
    d: np.ndarray, e: np.ndarray, compute_vectors: bool = True
) -> tuple[np.ndarray, np.ndarray | None]:
    """Full eigendecomposition by bisection + inverse iteration.

    Eigenvectors of clustered eigenvalues are mutually orthogonalized;
    eigenvalues closer than ``1e-3 * ||T||`` are grouped into one cluster
    (the LAPACK ``xSTEIN`` ORTOL criterion).
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.size
    lam = eigvals_bisect(d, e)
    if not compute_vectors:
        return lam, None
    U = np.zeros((n, n))
    scale = max(float(np.max(np.abs(lam))), 1.0)
    cluster: list[np.ndarray] = []
    for i in range(n):
        if i > 0 and lam[i] - lam[i - 1] <= 1e-3 * scale:
            against = cluster
        else:
            cluster = []
            against = None
        v = inverse_iteration(d, e, float(lam[i]), against=against)
        U[:, i] = v
        cluster.append(v)
    return lam, U
