"""Implicit-shift QL/QR iteration for the symmetric tridiagonal eigenproblem.

The classic ``tqli``/``dsteqr`` algorithm: for each eigenvalue, perform
implicit QL steps with the Wilkinson shift until the corresponding
off-diagonal entry is negligible.  Cost is ``O(n^2)`` for eigenvalues and
``O(n^3)`` when rotations are accumulated into the eigenvector matrix.

Within this reproduction it serves three roles: the base-case solver of the
divide-and-conquer recursion (:mod:`repro.eig.dc`), the reference "QR
algorithm" iterative method the paper mentions alongside divide and
conquer, and an independent oracle for the test suite.
"""

from __future__ import annotations

import numpy as np

from ..resilience.errors import ConvergenceError
from ..resilience.faults import maybe_raise

__all__ = ["tridiag_qr_eigh"]

_EPS = np.finfo(np.float64).eps


def tridiag_qr_eigh(
    d: np.ndarray,
    e: np.ndarray,
    compute_vectors: bool = True,
    max_sweeps: int = 50,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Eigendecomposition of ``tridiag(d, e)`` by implicit QL iteration.

    Parameters
    ----------
    d : (n,) ndarray
        Diagonal.
    e : (n-1,) ndarray
        Subdiagonal.
    compute_vectors : bool
        Accumulate rotations into the eigenvector matrix.
    max_sweeps : int
        Maximum QL sweeps per eigenvalue before declaring failure (LAPACK
        uses 30; convergence is normally 2-3).

    Returns
    -------
    (lam, U)
        Ascending eigenvalues; ``U`` has eigenvectors in columns
        (``None`` when ``compute_vectors`` is false).

    Raises
    ------
    ConvergenceError
        An eigenvalue needed more than ``max_sweeps`` QL sweeps (site
        ``"qr.sweep"``; also a :class:`numpy.linalg.LinAlgError`, the
        type this function historically raised).
    """
    maybe_raise("qr.sweep")
    d = np.array(d, dtype=np.float64, copy=True)
    n = d.size
    e_work = np.zeros(n, dtype=np.float64)
    e_work[: n - 1] = e
    Z = np.eye(n) if compute_vectors else None

    for l in range(n):
        iters = 0
        while True:
            # Find the first negligible off-diagonal at or after l.
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(e_work[m]) <= _EPS * dd:
                    break
                m += 1
            if m == l:
                break
            iters += 1
            if iters > max_sweeps:
                raise ConvergenceError(
                    f"QL iteration failed to converge for eigenvalue {l} "
                    f"within {max_sweeps} sweeps",
                    site="qr.sweep",
                    iterations=iters,
                    indices=[l],
                )
            # Wilkinson shift.
            g = (d[l + 1] - d[l]) / (2.0 * e_work[l])
            r = np.hypot(g, 1.0)
            g = d[m] - d[l] + e_work[l] / (g + np.copysign(r, g))
            s = c = 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * e_work[i]
                bb = c * e_work[i]
                r = np.hypot(f, g)
                e_work[i + 1] = r
                if r == 0.0:
                    # Recover from underflow: split the matrix here.
                    d[i + 1] -= p
                    e_work[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * bb
                p = s * r
                d[i + 1] = g + p
                g = c * r - bb
                if Z is not None:
                    col = Z[:, i + 1].copy()
                    Z[:, i + 1] = s * Z[:, i] + c * col
                    Z[:, i] = c * Z[:, i] - s * col
            else:
                d[l] -= p
                e_work[l] = g
                e_work[m] = 0.0

    order = np.argsort(d, kind="stable")
    lam = d[order]
    U = Z[:, order] if Z is not None else None
    return lam, U
