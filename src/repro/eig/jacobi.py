"""Cyclic Jacobi eigensolver for dense symmetric matrices.

The third classical iterative method the paper lists next to the QR
algorithm and divide & conquer (Section 7.2).  Jacobi works on the dense
matrix directly (no tridiagonalization), annihilating one off-diagonal
entry per rotation in cyclic sweeps with the small-angle-stable rotation
formulas; convergence is quadratic once the off-diagonal mass is small.

Within this reproduction it serves as a fully independent, factorization-
free EVD oracle (it never touches the Householder/tridiagonal machinery),
and as the high-relative-accuracy option Jacobi is known for on graded
positive-definite matrices.
"""

from __future__ import annotations

import numpy as np

from ..resilience.errors import ConvergenceError
from ..resilience.faults import maybe_raise

__all__ = ["jacobi_eigh"]

_EPS = np.finfo(np.float64).eps


def _off_norm(A: np.ndarray) -> float:
    n = A.shape[0]
    mask = ~np.eye(n, dtype=bool)
    return float(np.sqrt(np.sum(A[mask] ** 2)))


def jacobi_eigh(
    A: np.ndarray,
    compute_vectors: bool = True,
    tol: float | None = None,
    max_sweeps: int = 30,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Eigendecomposition of symmetric ``A`` by cyclic Jacobi rotations.

    Parameters
    ----------
    A : (n, n) ndarray
        Symmetric input (not modified).
    compute_vectors : bool
        Accumulate rotations into the eigenvector matrix.
    tol : float, optional
        Stop when the off-diagonal Frobenius norm falls below
        ``tol * ||A||_F`` (default ``n * eps``).
    max_sweeps : int
        Maximum cyclic sweeps (quadratic convergence needs ~6-10).

    Returns
    -------
    (lam, V)
        Ascending eigenvalues and (optionally) orthonormal eigenvectors.

    Raises
    ------
    ConvergenceError
        Off-diagonal mass is still far above the threshold after
        ``max_sweeps`` cyclic sweeps (site ``"jacobi.sweep"``; also a
        :class:`numpy.linalg.LinAlgError`, the historical raise type).
    """
    maybe_raise("jacobi.sweep")
    A = np.array(A, dtype=np.float64, copy=True)
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError("A must be square")
    norm_a = max(np.linalg.norm(A), np.finfo(np.float64).tiny)
    threshold = (tol if tol is not None else n * _EPS) * norm_a
    V = np.eye(n) if compute_vectors else None

    for _ in range(max_sweeps):
        if _off_norm(A) <= threshold:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                apq = A[p, q]
                if abs(apq) <= _EPS * norm_a * 1e-2:
                    continue
                # Stable rotation (Golub & Van Loan, Alg. 8.4.1):
                # theta = (a_qq - a_pp) / (2 a_pq), t = sign/(|theta|+sqrt(1+theta^2)).
                theta = (A[q, q] - A[p, p]) / (2.0 * apq)
                t = np.sign(theta) / (abs(theta) + np.hypot(1.0, theta))
                if theta == 0.0:
                    t = 1.0
                c = 1.0 / np.hypot(1.0, t)
                s = t * c
                # Apply J(p, q, theta) from both sides.
                row_p = A[p, :].copy()
                row_q = A[q, :].copy()
                A[p, :] = c * row_p - s * row_q
                A[q, :] = s * row_p + c * row_q
                col_p = A[:, p].copy()
                col_q = A[:, q].copy()
                A[:, p] = c * col_p - s * col_q
                A[:, q] = s * col_p + c * col_q
                A[p, q] = 0.0
                A[q, p] = 0.0
                if V is not None:
                    vp = V[:, p].copy()
                    V[:, p] = c * vp - s * V[:, q]
                    V[:, q] = s * vp + c * V[:, q]
    else:
        if _off_norm(A) > threshold * 1e3:  # pragma: no cover - safety net
            raise ConvergenceError(
                f"Jacobi failed to converge within {max_sweeps} sweeps "
                f"(off-diagonal norm {_off_norm(A):.3e} vs threshold "
                f"{threshold:.3e})",
                site="jacobi.sweep",
                iterations=max_sweeps,
            )

    lam = np.diagonal(A).copy()
    order = np.argsort(lam, kind="stable")
    lam = lam[order]
    if V is not None:
        V = V[:, order]
    return lam, V
