"""Per-backend circuit breaker for the serving layer.

When an accelerator backend starts failing (driver wedged, OOM loop,
library regression), retrying every request against it turns one broken
dependency into a full outage.  The classic fix is a circuit breaker:

* **closed** — normal operation; consecutive backend faults are counted,
  successes reset the count;
* **open** — after ``failure_threshold`` consecutive faults the breaker
  trips; callers are told to route around the backend (the service falls
  back to the NumPy reference backend) for ``reset_timeout_s``;
* **half-open** — after the timeout one probe request is allowed
  through; success closes the breaker, failure re-opens it for another
  full timeout.

The clock is injectable (``clock=`` callable returning seconds) so state
transitions are unit-testable without sleeping.  All methods are
thread-safe — the serving workers share one breaker per backend name.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "BreakerRegistry"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout_s < 0:
            raise ValueError(f"reset_timeout_s must be >= 0, got {reset_timeout_s}")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        # Lifetime counters for stats().
        self._faults = 0
        self._trips = 0
        self._rejections = 0

    # -- queries -------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Caller holds the lock.  OPEN decays to HALF_OPEN once the
        # reset timeout has elapsed.
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = self.HALF_OPEN
            self._probe_inflight = False
        return self._state

    def allow(self) -> bool:
        """May the caller use this backend right now?

        CLOSED: yes.  OPEN: no (counted as a rejection).  HALF_OPEN:
        yes for exactly one in-flight probe at a time.
        """
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            self._rejections += 1
            return False

    # -- outcome reporting --------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._faults += 1
            state = self._effective_state()
            if state == self.HALF_OPEN:
                # The probe failed: back to a full open window.
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                self._trips += 1
                return
            self._consecutive_failures += 1
            if (
                state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._trips += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "state": self._effective_state(),
                "consecutive_failures": self._consecutive_failures,
                "faults": self._faults,
                "trips": self._trips,
                "rejections": self._rejections,
            }


class BreakerRegistry:
    """Lazily-created :class:`CircuitBreaker` per backend name, sharing
    one configuration — what :class:`~repro.serve.SolverService` holds."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, backend: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(backend)
            if breaker is None:
                breaker = CircuitBreaker(
                    backend,
                    failure_threshold=self.failure_threshold,
                    reset_timeout_s=self.reset_timeout_s,
                    clock=self._clock,
                )
                self._breakers[backend] = breaker
            return breaker

    def stats(self) -> dict[str, dict]:
        with self._lock:
            return {name: b.stats() for name, b in self._breakers.items()}
