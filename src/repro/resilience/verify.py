"""Numerical-health verification of EVD and tridiagonalization results.

A divide-and-conquer eigensolver trades internal state for accuracy
risk: a pathological deflation cluster or a stalled secular sweep can
produce a *plausible-looking* wrong answer, which is only shippable
behind a residual check and an escalation path.  This module is the
check:

* :func:`verify_evd` — relative residual ``||A V - V Λ||_F / ||A||_F``
  and orthogonality loss ``||VᵀV - I||_F`` against configurable
  tolerances, plus the cheap structural invariants (finite entries,
  ascending eigenvalues, trace consistency) that also cover
  eigenvalues-only results;
* :func:`verify_tridiag` — reconstruction ``||A - Q T Qᵀ||_F / ||A||_F``
  and ``||QᵀQ - I||_F`` for a tridiagonal factorization.

Both return a :class:`VerificationReport` (never raise on a bad
result — call :meth:`VerificationReport.raise_if_failed` for the typed
:class:`~repro.resilience.errors.VerificationError`), and both emit a
``verify_evd`` / ``verify_tridiag`` stage event through the execution
context when one is supplied, so verification time and count surface in
``SolverService.stats()`` next to the pipeline stages.

Default tolerances scale with problem size as ``factor * n * eps``
(`DEFAULT_RESIDUAL_FACTOR` / ``DEFAULT_ORTH_FACTOR``): loose enough for
every healthy path in the repo (which lands near ``n * eps``), tight
enough that a poisoned payload or a silently-unconverged root fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import VerificationError

__all__ = [
    "VerificationReport",
    "verify_evd",
    "verify_tridiag",
    "default_tolerances",
    "DEFAULT_RESIDUAL_FACTOR",
    "DEFAULT_ORTH_FACTOR",
]

_EPS = float(np.finfo(np.float64).eps)

#: ``tol = FACTOR * n * eps`` — healthy results sit 1-2 orders below.
DEFAULT_RESIDUAL_FACTOR = 200.0
DEFAULT_ORTH_FACTOR = 200.0


def default_tolerances(n: int) -> tuple[float, float]:
    """``(tol_residual, tol_orth)`` for an ``n x n`` problem."""
    n = max(int(n), 1)
    return DEFAULT_RESIDUAL_FACTOR * n * _EPS, DEFAULT_ORTH_FACTOR * n * _EPS


@dataclass
class VerificationReport:
    """Outcome of one verification: per-check booleans + the measured
    quantities (``None`` where a check did not apply, e.g. residual for
    an eigenvalues-only result)."""

    kind: str  # "evd" | "tridiag"
    n: int
    ok: bool = True
    residual: float | None = None
    orth_error: float | None = None
    trace_error: float | None = None
    tol_residual: float = 0.0
    tol_orth: float = 0.0
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def failures(self) -> list[str]:
        return sorted(name for name, passed in self.checks.items() if not passed)

    def _record(self, name: str, passed: bool) -> bool:
        self.checks[name] = bool(passed)
        if not passed:
            self.ok = False
        return self.checks[name]

    def raise_if_failed(self) -> "VerificationReport":
        """Return ``self`` when healthy, raise :class:`VerificationError`
        (carrying this report) otherwise."""
        if not self.ok:
            detail = ", ".join(self.failures)
            raise VerificationError(
                f"{self.kind} result failed verification ({detail}): "
                f"residual={self.residual!r} (tol {self.tol_residual:.3e}), "
                f"orth={self.orth_error!r} (tol {self.tol_orth:.3e})",
                report=self,
            )
        return self

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "n": self.n,
            "ok": self.ok,
            "residual": self.residual,
            "orth_error": self.orth_error,
            "trace_error": self.trace_error,
            "tol_residual": self.tol_residual,
            "tol_orth": self.tol_orth,
            "checks": dict(self.checks),
        }


def _norm_floor(A: np.ndarray) -> float:
    return max(float(np.linalg.norm(A)), float(np.finfo(np.float64).tiny))


def verify_evd(
    A: np.ndarray,
    result,
    tol_residual: float | None = None,
    tol_orth: float | None = None,
    ctx=None,
) -> VerificationReport:
    """Verify an :class:`~repro.core.evd.EVDResult` against its input.

    Checks, in order of cost:

    * ``finite`` — no NaN/Inf in eigenvalues (or eigenvectors);
    * ``ordered`` — eigenvalues ascending (the API contract);
    * ``trace`` — ``|Σλ - tr(A)| / ||A||_F`` within the residual
      tolerance (the one spectral invariant an eigenvalues-only result
      can still be checked against);
    * with eigenvectors: ``residual`` — ``||A V - V Λ||_F / ||A||_F``
      and ``orthogonality`` — ``||VᵀV - I||_F``.

    ``ctx`` (an :class:`~repro.backend.ExecutionContext`) is optional;
    when given, the verification is timed as stage ``"verify_evd"``.
    """
    A = np.asarray(A, dtype=np.float64)
    lam = np.asarray(result.eigenvalues)
    n = int(lam.size)
    tr, to = default_tolerances(n)
    tol_residual = tr if tol_residual is None else float(tol_residual)
    tol_orth = to if tol_orth is None else float(tol_orth)
    report = VerificationReport(
        kind="evd", n=n, tol_residual=tol_residual, tol_orth=tol_orth
    )
    V = result.eigenvectors

    def _run() -> None:
        finite = bool(np.all(np.isfinite(lam)))
        if V is not None:
            finite = finite and bool(np.all(np.isfinite(V)))
        report._record("finite", finite)
        if not finite:
            # Residual/orthogonality on NaN payloads would just propagate
            # NaN; the remaining checks are meaningless.
            return
        report._record("ordered", bool(np.all(np.diff(lam) >= 0.0)))
        norm = _norm_floor(A)
        report.trace_error = float(abs(np.sum(lam) - np.trace(A))) / norm
        report._record("trace", report.trace_error <= tol_residual)
        if V is None:
            return
        report.residual = float(np.linalg.norm(A @ V - V * lam[None, :])) / norm
        report._record("residual", report.residual <= tol_residual)
        gram = np.asarray(V).T @ np.asarray(V)
        report.orth_error = float(
            np.linalg.norm(gram - np.eye(gram.shape[0]))
        )
        report._record("orthogonality", report.orth_error <= tol_orth)

    if ctx is not None:
        with ctx.stage("verify_evd", n=n):
            _run()
    else:
        _run()
    return report


def verify_tridiag(
    A: np.ndarray,
    tri,
    tol_residual: float | None = None,
    tol_orth: float | None = None,
    ctx=None,
) -> VerificationReport:
    """Verify a :class:`~repro.core.tridiag.TridiagResult`: reconstruct
    ``Q`` (via ``tri.q()``) and check ``||A - Q T Qᵀ||_F / ||A||_F``,
    ``||QᵀQ - I||_F``, and finiteness of ``(d, e)``.

    Forming ``Q`` is an ``O(n^3)`` diagnostic — intended for offline
    checks (the ``repro verify`` CLI, the chaos suite), not the serving
    hot path, where :func:`verify_evd` is the per-request check.
    """
    A = np.asarray(A, dtype=np.float64)
    d = np.asarray(tri.d, dtype=np.float64)
    e = np.asarray(tri.e, dtype=np.float64)
    n = int(d.size)
    tr, to = default_tolerances(n)
    tol_residual = tr if tol_residual is None else float(tol_residual)
    tol_orth = to if tol_orth is None else float(tol_orth)
    report = VerificationReport(
        kind="tridiag", n=n, tol_residual=tol_residual, tol_orth=tol_orth
    )

    def _run() -> None:
        finite = bool(np.all(np.isfinite(d)) and np.all(np.isfinite(e)))
        report._record("finite", finite)
        if not finite:
            return
        Q = tri.q()
        T = np.diag(d)
        if n > 1:
            T += np.diag(e, -1) + np.diag(e, 1)
        norm = _norm_floor(A)
        report.residual = float(np.linalg.norm(A - Q @ T @ Q.T)) / norm
        report._record("residual", report.residual <= tol_residual)
        report.orth_error = float(np.linalg.norm(Q.T @ Q - np.eye(n)))
        report._record("orthogonality", report.orth_error <= tol_orth)

    if ctx is not None:
        with ctx.stage("verify_tridiag", n=n):
            _run()
    else:
        _run()
    return report
