"""Numerical-health verification, fallback chains, and fault injection.

The resilience layer is what makes the fast-but-fragile pipeline
(DBBR → wavefront bulge chasing → D&C secular solves) shippable as a
service:

* :mod:`~repro.resilience.errors` — the typed :class:`ReproError`
  hierarchy every deliberate failure derives from;
* :mod:`~repro.resilience.verify` — residual / orthogonality / spectral
  verification of EVD and tridiagonalization results;
* :mod:`~repro.resilience.fallback` — ordered plan escalation
  (``plan_evd(..., fallback="chain")``) retried on convergence or
  verification failure;
* :mod:`~repro.resilience.breaker` — per-backend circuit breaker for
  the serving layer;
* :mod:`~repro.resilience.faults` — deterministic, seeded fault
  injection at named sites (``REPRO_FAULTS``), powering the chaos suite.
"""

from .breaker import BreakerRegistry, CircuitBreaker
from .errors import (
    BackendFault,
    ConvergenceError,
    DeadlineExceeded,
    FallbackExhausted,
    FaultInjectionError,
    InjectedWorkerCrash,
    ReproError,
    VerificationError,
    WorkerCrashError,
)
from .fallback import (
    FALLBACK_MODES,
    EscalationRecord,
    FallbackOutcome,
    execute_plan_with_fallback,
    resolve_fallback_chain,
)
from .faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_faults,
    faults_from_env,
    injected_faults,
    install_faults,
    maybe_corrupt,
    maybe_raise,
    parse_fault_specs,
)
from .verify import (
    DEFAULT_ORTH_FACTOR,
    DEFAULT_RESIDUAL_FACTOR,
    VerificationReport,
    default_tolerances,
    verify_evd,
    verify_tridiag,
)

__all__ = [
    # errors
    "ReproError",
    "ConvergenceError",
    "VerificationError",
    "WorkerCrashError",
    "DeadlineExceeded",
    "BackendFault",
    "FallbackExhausted",
    "FaultInjectionError",
    "InjectedWorkerCrash",
    # verify
    "VerificationReport",
    "verify_evd",
    "verify_tridiag",
    "default_tolerances",
    "DEFAULT_RESIDUAL_FACTOR",
    "DEFAULT_ORTH_FACTOR",
    # fallback
    "FALLBACK_MODES",
    "EscalationRecord",
    "FallbackOutcome",
    "resolve_fallback_chain",
    "execute_plan_with_fallback",
    # breaker
    "CircuitBreaker",
    "BreakerRegistry",
    # faults
    "FAULT_SITES",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "install_faults",
    "clear_faults",
    "injected_faults",
    "active_plan",
    "faults_from_env",
    "parse_fault_specs",
    "maybe_raise",
    "maybe_corrupt",
]
