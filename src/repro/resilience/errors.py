"""The typed error hierarchy of the resilience layer.

Every failure the stack can produce on purpose derives from
:class:`ReproError`, so a caller (and the serving layer, which must map
any failure to a failed future without string-matching messages) can
write one ``except ReproError`` and know it has covered every
deliberate rejection: input validation (:mod:`repro.core.validation`),
plan validation (:mod:`repro.plan.errors`), convergence guards
(:class:`ConvergenceError`), result verification
(:class:`VerificationError`), and the service-level fault-tolerance
machinery (:class:`WorkerCrashError`, :class:`DeadlineExceeded`,
:class:`BackendFault`, :class:`FallbackExhausted`).

The pre-existing error types keep their historical base classes
(``ValueError`` for validation/plan errors, ``numpy.linalg.LinAlgError``
for convergence failures) through multiple inheritance, so every
``except ValueError`` / ``except LinAlgError`` written against earlier
versions keeps catching exactly what it used to.

:class:`InjectedWorkerCrash` is deliberately a ``BaseException``: it
simulates a worker thread *dying* (not a request failing), so it must
escape the per-request ``except Exception`` handlers exactly as a real
thread-killing condition would, and be handled only by the worker
supervisor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "ReproError",
    "ConvergenceError",
    "VerificationError",
    "WorkerCrashError",
    "DeadlineExceeded",
    "BackendFault",
    "FallbackExhausted",
    "FaultInjectionError",
    "InjectedWorkerCrash",
]


class ReproError(Exception):
    """Base class of every typed, deliberate failure in the repro stack."""


class ConvergenceError(ReproError, np.linalg.LinAlgError):
    """An iterative kernel hit its iteration cap without converging.

    Carries enough context to diagnose (and for the fallback chain to
    decide): the named ``site`` that stalled, the ``iterations`` spent,
    and the ``indices`` of the offending roots/eigenvalues (when the
    kernel tracks per-root state).

    Subclasses :class:`numpy.linalg.LinAlgError` so callers that caught
    the historical ``LinAlgError`` raises from the QL iteration and the
    Jacobi sweep keep working.
    """

    def __init__(
        self,
        message: str,
        site: str | None = None,
        iterations: int | None = None,
        indices: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        super().__init__(message)
        self.site = site
        self.iterations = iterations
        self.indices: list[int] | None = (
            [int(i) for i in np.asarray(indices).ravel()]
            if indices is not None
            else None
        )


class VerificationError(ReproError):
    """A computed result failed numerical-health verification.

    ``report`` is the :class:`~repro.resilience.verify.VerificationReport`
    whose checks failed (residual / orthogonality / finiteness / order).
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class WorkerCrashError(ReproError):
    """A service worker thread died while executing this request and the
    request exhausted its crash-retry budget.  The future fails with
    this instead of hanging forever — no future is ever lost."""


class DeadlineExceeded(ReproError):
    """The request's deadline expired before a worker could execute it
    (deadlines are enforced cooperatively at execution boundaries)."""


class BackendFault(ReproError, RuntimeError):
    """An array backend failed while executing a solve — the failure
    class the per-backend circuit breaker counts."""

    def __init__(self, message: str, backend: str | None = None) -> None:
        super().__init__(message)
        self.backend = backend


class FallbackExhausted(ReproError):
    """Every plan in a fallback chain failed.  ``attempts`` records the
    per-step :class:`~repro.resilience.fallback.EscalationRecord` list."""

    def __init__(self, message: str, attempts=None) -> None:
        super().__init__(message)
        self.attempts = list(attempts or [])


class FaultInjectionError(ReproError):
    """A fault-injection spec is malformed (unknown site/kind, bad
    count) — raised at install time, never from an injection site."""


class InjectedWorkerCrash(BaseException):
    """Simulated worker-thread death (fault kind ``"crash"``).

    Deliberately *not* an ``Exception``: it must sail past the
    per-request ``except Exception`` handlers, exactly like a genuine
    thread-killing failure, and reach the worker supervisor.
    """

    def __init__(self, site: str = "serve.worker") -> None:
        super().__init__(f"injected worker crash at fault site {site!r}")
        self.site = site
