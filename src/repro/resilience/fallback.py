"""Fallback-chain execution on top of the plan layer.

A :class:`~repro.plan.EVDPlan` with ``fallback="chain"`` does not run
one pipeline — it runs an ordered *escalation*: the proposed pipeline
first, and on a typed convergence failure or a verification failure,
progressively more conservative plans (the dense LAPACK tier, then the
tridiagonal QR iteration) until one produces a result that passes
:func:`~repro.resilience.verify.verify_evd`.

:func:`execute_plan_with_fallback` is the executor.  It returns a
:class:`FallbackOutcome` carrying the winning result *and* the
:class:`EscalationRecord` trail, so callers (``repro.core.eigh``, the
serving layer) can surface what happened — and, critically, so the
result cache can key an escalated result under the plan that actually
produced it rather than the plan that was asked for.

Only *recoverable* failures escalate: :class:`ConvergenceError` (an
iterative kernel gave up), :class:`VerificationError` (the answer came
back wrong), and NaN/Inf in the output.  Input-validation errors, plan
errors, and genuine bugs propagate immediately — retrying a malformed
input on a slower solver cannot fix it.

Plan-layer imports are deferred to call time: ``repro.plan`` imports
this package for its error types, so a module-level import here would
recurse into a partially-initialized package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .errors import ConvergenceError, FallbackExhausted, VerificationError
from .verify import VerificationReport, verify_evd

__all__ = [
    "FALLBACK_MODES",
    "EscalationRecord",
    "FallbackOutcome",
    "resolve_fallback_chain",
    "execute_plan_with_fallback",
]

FALLBACK_MODES = ("none", "chain")


@dataclass(frozen=True)
class EscalationRecord:
    """One failed step of a fallback chain: which plan failed, and why."""

    step: int
    method: str
    solver: str
    error_type: str
    error: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "step": self.step,
            "method": self.method,
            "solver": self.solver,
            "error_type": self.error_type,
            "error": self.error,
        }


@dataclass
class FallbackOutcome:
    """The winning result of a (possibly escalated) plan execution."""

    result: Any  # EVDResult
    plan: Any  # the EVDPlan that actually produced ``result``
    report: VerificationReport | None
    escalations: list[EscalationRecord] = field(default_factory=list)

    @property
    def escalated(self) -> bool:
        return bool(self.escalations)


def resolve_fallback_chain(plan) -> list:
    """The ordered escalation for ``plan``: the plan itself (with
    ``fallback`` cleared — each link is a plain, directly-executable
    plan), then — for a non-fp64 precision policy — the plan's fp64
    twin, then the dense LAPACK tier, then the tridiagonal QR
    iteration; links identical to an earlier one are dropped.
    """
    import dataclasses

    from ..plan import plan_evd

    primary = (
        dataclasses.replace(plan, fallback="none")
        if getattr(plan, "fallback", "none") != "none"
        else plan
    )
    vectors = plan.solver.compute_vectors
    candidates = [primary]
    if getattr(plan, "precision", "fp64") != "fp64":
        # A low-precision plan's first escalation target is full fp64 on
        # the same pipeline (the precision driver already tries this for
        # refined policies; the explicit link covers raw-fp32 plans and
        # keeps the chain's invariant that later links are strictly more
        # conservative).
        candidates.append(
            dataclasses.replace(primary, precision="fp64")
        )
    dense = plan_evd(
        plan.n, "dense", compute_vectors=vectors, backend=plan.backend
    )
    qr = plan_evd(
        plan.n,
        "proposed",
        solver="qr",
        compute_vectors=vectors,
        backend=plan.backend,
    )
    candidates += [dense, qr]
    chain: list = []
    seen: set[str] = set()
    for candidate in candidates:
        token = candidate.cache_token()
        if token not in seen:
            seen.add(token)
            chain.append(candidate)
    return chain


def _is_recoverable(exc: Exception) -> bool:
    return isinstance(exc, (ConvergenceError, VerificationError))


def execute_plan_with_fallback(
    A: np.ndarray,
    plan,
    ctx=None,
    verify: bool = True,
    tol_residual: float | None = None,
    tol_orth: float | None = None,
) -> FallbackOutcome:
    """Execute ``plan``, escalating along its fallback chain on typed
    convergence/verification failures.

    With ``plan.fallback == "none"`` the chain is just the plan itself
    (so this is a verified :func:`~repro.plan.execute_plan`); with
    ``"chain"`` it is :func:`resolve_fallback_chain`.  Each step runs
    through the verifier (unless ``verify=False``, which still rejects
    non-finite output); a step failing with :class:`ConvergenceError`
    or :class:`VerificationError` is recorded as an
    :class:`EscalationRecord` and the next link runs.  Raises
    :class:`FallbackExhausted` when every link fails.
    """
    from ..plan import execute_plan

    if getattr(plan, "fallback", "none") == "chain":
        chain = resolve_fallback_chain(plan)
    else:
        chain = [plan]

    escalations: list[EscalationRecord] = []
    for step, candidate in enumerate(chain):
        try:
            result = execute_plan(A, candidate, ctx=ctx)
            if verify:
                report = verify_evd(
                    A,
                    result,
                    tol_residual=tol_residual,
                    tol_orth=tol_orth,
                    ctx=ctx,
                ).raise_if_failed()
            else:
                report = None
                lam = np.asarray(result.eigenvalues)
                bad = not bool(np.all(np.isfinite(lam)))
                if result.eigenvectors is not None:
                    bad = bad or not bool(
                        np.all(np.isfinite(result.eigenvectors))
                    )
                if bad:
                    raise VerificationError(
                        "plan produced non-finite output "
                        f"(method={candidate.method!r})"
                    )
        except Exception as exc:
            if not _is_recoverable(exc) or step == len(chain) - 1:
                if escalations and _is_recoverable(exc):
                    escalations.append(_record(step, candidate, exc))
                    raise FallbackExhausted(
                        f"all {len(chain)} fallback plans failed for n={plan.n}: "
                        + "; ".join(
                            f"{r.method}/{r.solver}: {r.error_type}"
                            for r in escalations
                        ),
                        attempts=escalations,
                    ) from exc
                raise
            escalations.append(_record(step, candidate, exc))
            continue
        return FallbackOutcome(
            result=result, plan=candidate, report=report, escalations=escalations
        )
    # Unreachable: the loop either returns or raises on the last step.
    raise FallbackExhausted(
        f"all {len(chain)} fallback plans failed for n={plan.n}",
        attempts=escalations,
    )


def _record(step: int, candidate, exc: Exception) -> EscalationRecord:
    return EscalationRecord(
        step=step,
        method=candidate.method,
        solver=candidate.solver.kind,
        error_type=type(exc).__name__,
        error=str(exc),
    )
