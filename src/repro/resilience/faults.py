"""Deterministic, seeded fault injection at named sites.

Chaos testing a numerical stack only works when the chaos is
*reproducible*: a fault schedule must fire at the same call of the same
site every run, or a failing seed cannot be replayed.  This module keeps
a process-global :class:`FaultPlan` of :class:`FaultSpec` entries, each
naming a **site** (a registered injection point in production code), a
**kind** (what happens when it fires), a fire budget (``times``), an
optional firing ``probability``, and a ``seed`` driving its private
:class:`numpy.random.Generator` — so the firing pattern is a pure
function of (spec, call sequence).

Production code touches this module through exactly two calls, both
no-ops costing one global read when no plan is installed:

* :func:`maybe_raise` — raises the installed spec's exception
  (:class:`~repro.resilience.errors.ConvergenceError` for kind
  ``"convergence"``, :class:`~repro.resilience.errors.BackendFault` for
  ``"backend"``, :class:`~repro.resilience.errors.InjectedWorkerCrash`
  for ``"crash"``);
* :func:`maybe_corrupt` — for kind ``"nan"``, returns a copy of the
  payload with a seeded entry replaced by NaN (the array is otherwise
  returned *unchanged, same object* — the bit-exactness contract with
  faults disabled).

Install via :func:`install_faults` / :func:`clear_faults`, the
:func:`injected_faults` context manager (what the chaos suite uses), or
the ``REPRO_FAULTS`` environment variable / ``repro evd --faults`` CLI
hook, whose grammar is::

    site:kind[:times[:probability[:seed]]][;site:kind...]
    e.g.  REPRO_FAULTS="dc.merge:convergence:1;serve.worker:crash:2:0.5:7"

Sites are a closed registry (:data:`FAULT_SITES`): an unknown site in a
spec raises :class:`~repro.resilience.errors.FaultInjectionError` at
install time, so a typo cannot silently disarm a chaos test.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from .errors import (
    BackendFault,
    ConvergenceError,
    FaultInjectionError,
    InjectedWorkerCrash,
)

__all__ = [
    "FAULT_SITES",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "install_faults",
    "clear_faults",
    "injected_faults",
    "active_plan",
    "faults_from_env",
    "parse_fault_specs",
    "maybe_raise",
    "maybe_corrupt",
]

#: Registered injection sites -> where they live in production code.
FAULT_SITES: dict[str, str] = {
    "secular.newton": "repro.eig.secular.solve_all_roots — the batched/scalar "
    "guarded-Newton root sweep",
    "dc.merge": "repro.eig.dc._rank_one_update — the secular stage of one "
    "divide-and-conquer merge",
    "qr.sweep": "repro.eig.qr_iteration.tridiag_qr_eigh — the implicit QL sweep",
    "jacobi.sweep": "repro.eig.jacobi.jacobi_eigh — the cyclic Jacobi sweep",
    "runner.result": "repro.plan.runner.execute_plan — the assembled result "
    "payload (NaN corruption target)",
    "serve.worker": "repro.serve.SolverService worker executing a request "
    "(crash target)",
    "serve.backend": "repro.serve.SolverService plan execution on the worker "
    "backend (backend-fault target)",
    "precision.refine": "repro.precision.refine.refine_eigh — one Ogita–Aishima "
    "refinement sweep of a mixed-precision result (stall target: a "
    "convergence fault here forces the fp64 escalation path)",
}

FAULT_KINDS = ("nan", "convergence", "crash", "backend")


@dataclass
class FaultSpec:
    """One scheduled fault: fire ``kind`` at ``site`` up to ``times``
    times, each eligible call firing with ``probability`` drawn from a
    generator seeded with ``seed`` (deterministic per spec)."""

    site: str
    kind: str
    times: int = 1
    probability: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise FaultInjectionError(
                f"unknown fault site {self.site!r}: registered sites are "
                f"{', '.join(sorted(FAULT_SITES))}"
            )
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}: valid kinds are "
                f"{', '.join(FAULT_KINDS)}"
            )
        if int(self.times) < 1:
            raise FaultInjectionError(f"times must be >= 1, got {self.times}")
        if not (0.0 < float(self.probability) <= 1.0):
            raise FaultInjectionError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        self.times = int(self.times)
        self.probability = float(self.probability)
        self.seed = int(self.seed)


class FaultPlan:
    """A set of :class:`FaultSpec` entries with thread-safe, seeded
    firing state.  ``fired`` / ``calls`` counters are exposed for the
    chaos suite's accounting."""

    def __init__(self, specs: list[FaultSpec]) -> None:
        self.specs = list(specs)
        self._lock = threading.Lock()
        self._rngs = [np.random.default_rng(s.seed) for s in self.specs]
        self._fired = [0 for _ in self.specs]
        self._calls = [0 for _ in self.specs]

    def fire(self, site: str, kinds: tuple[str, ...]) -> FaultSpec | None:
        """The first matching spec that fires at this call, or ``None``.

        A spec matches when its site equals ``site`` and its kind is in
        ``kinds``; it fires while its budget lasts, each eligible call
        passing an independent seeded Bernoulli draw.
        """
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.site != site or spec.kind not in kinds:
                    continue
                self._calls[i] += 1
                if self._fired[i] >= spec.times:
                    continue
                if spec.probability < 1.0 and (
                    float(self._rngs[i].random()) >= spec.probability
                ):
                    continue
                self._fired[i] += 1
                return spec
        return None

    def corrupt_index(self, spec: FaultSpec, size: int) -> int:
        """Deterministic index of the entry to poison in a ``size``-long
        payload (seeded by the spec's generator stream)."""
        with self._lock:
            i = self.specs.index(spec)
            return int(self._rngs[i].integers(0, max(size, 1)))

    def stats(self) -> list[dict]:
        with self._lock:
            return [
                {
                    "site": s.site,
                    "kind": s.kind,
                    "times": s.times,
                    "fired": self._fired[i],
                    "calls": self._calls[i],
                }
                for i, s in enumerate(self.specs)
            ]


# The one process-global plan.  Reads are a single attribute load (the
# fast path every production site takes); writes go through the lock.
_ACTIVE: FaultPlan | None = None
_INSTALL_LOCK = threading.Lock()


def install_faults(plan: FaultPlan | list[FaultSpec] | FaultSpec) -> FaultPlan:
    """Install a fault plan process-wide (replacing any existing one)."""
    global _ACTIVE
    if isinstance(plan, FaultSpec):
        plan = FaultPlan([plan])
    elif isinstance(plan, list):
        plan = FaultPlan(plan)
    with _INSTALL_LOCK:
        _ACTIVE = plan
    return plan


def clear_faults() -> None:
    """Remove the installed plan; every site becomes a no-op again."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The currently-installed plan (``None`` when faults are off)."""
    return _ACTIVE


@contextmanager
def injected_faults(*specs: FaultSpec) -> Iterator[FaultPlan]:
    """Scoped installation: install ``specs`` on entry, restore the
    previous plan on exit (the chaos suite's primary API)."""
    global _ACTIVE
    previous = _ACTIVE
    plan = install_faults(list(specs))
    try:
        yield plan
    finally:
        with _INSTALL_LOCK:
            _ACTIVE = previous


def parse_fault_specs(text: str) -> list[FaultSpec]:
    """Parse the ``site:kind[:times[:probability[:seed]]]`` grammar
    (``;``-separated specs); raises :class:`FaultInjectionError` on any
    malformed field."""
    specs: list[FaultSpec] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2 or len(parts) > 5:
            raise FaultInjectionError(
                f"malformed fault spec {chunk!r}: expected "
                "site:kind[:times[:probability[:seed]]]"
            )
        try:
            spec = FaultSpec(
                site=parts[0],
                kind=parts[1],
                times=int(parts[2]) if len(parts) > 2 else 1,
                probability=float(parts[3]) if len(parts) > 3 else 1.0,
                seed=int(parts[4]) if len(parts) > 4 else 0,
            )
        except ValueError as exc:
            if isinstance(exc, FaultInjectionError):
                raise
            raise FaultInjectionError(
                f"malformed fault spec {chunk!r}: {exc}"
            ) from exc
        specs.append(spec)
    return specs


def faults_from_env(environ: Mapping[str, str] | None = None) -> FaultPlan | None:
    """Build (but do not install) a plan from ``REPRO_FAULTS``; ``None``
    when the variable is unset/empty."""
    env = os.environ if environ is None else environ
    text = env.get("REPRO_FAULTS", "").strip()
    if not text:
        return None
    specs = parse_fault_specs(text)
    return FaultPlan(specs) if specs else None


def maybe_raise(site: str) -> None:
    """Raise the installed fault for ``site``, if one fires.

    Kind ``"convergence"`` raises :class:`ConvergenceError`,
    ``"backend"`` raises :class:`BackendFault`, ``"crash"`` raises
    :class:`InjectedWorkerCrash`.  No plan installed -> free no-op.
    """
    plan = _ACTIVE
    if plan is None:
        return
    spec = plan.fire(site, ("convergence", "backend", "crash"))
    if spec is None:
        return
    if spec.kind == "convergence":
        raise ConvergenceError(
            f"injected convergence failure at fault site {site!r}",
            site=site,
            iterations=0,
        )
    if spec.kind == "backend":
        raise BackendFault(f"injected backend fault at site {site!r}")
    raise InjectedWorkerCrash(site)


def maybe_corrupt(site: str, payload: np.ndarray) -> np.ndarray:
    """Poison one seeded entry of ``payload`` with NaN when a ``"nan"``
    fault fires at ``site``; otherwise return ``payload`` itself
    (same object — zero-copy, bit-exact when faults are off)."""
    plan = _ACTIVE
    if plan is None:
        return payload
    spec = plan.fire(site, ("nan",))
    if spec is None or payload.size == 0:
        return payload
    corrupted = np.array(payload, copy=True)
    # .flat works for any memory order (reshape(-1) on a Fortran-ordered
    # array would return a copy and the write would be lost).
    corrupted.flat[plan.corrupt_index(spec, corrupted.size)] = np.nan
    return corrupted
