"""``repro.tune`` — empirical autotuning with a persistent per-device
tuning database.

The analytic cost models (:mod:`repro.models` / :mod:`repro.gpusim`)
predict; this subsystem *measures*.  Four pieces compose the loop:

* :mod:`~repro.tune.space` — the candidate space, derived from the plan
  layer's own validation rules so every candidate is a valid
  :class:`~repro.plan.EVDPlan`;
* :mod:`~repro.tune.measure` — the measurement protocol (seeded
  workloads, warmup, trimmed repeats, CV noise guard);
* :mod:`~repro.tune.search` — exhaustive search for small grids,
  model-pruned coordinate descent for large ones;
* :mod:`~repro.tune.store` — the schema-versioned, atomically-written,
  corruption-tolerant JSON :class:`TuningStore`, keyed by (n-bucket,
  method, backend, device fingerprint, dtype), ``$REPRO_TUNE_DB``
  overridable.

Consumption is one knob: ``plan_evd(..., tuning="auto")`` (and therefore
``eigh(A, tuning="auto")``) consults the store and falls back to the
``"model"`` strategy on a miss (counted in :func:`tune_stats`; strictly
read-only).  Tuned knobs resolve into the same frozen plan fields an
explicit caller would spell, so ``cache_token()`` identity and result
bits are untouched by tuning — regression-enforced.  The serving layer
adopts tuned batch thresholds via :func:`tuned_service_config`, and the
``repro tune`` CLI (``search`` / ``show`` / ``export`` / ``import``)
drives the whole loop.  See ``docs/tuning.md``.
"""

from .integration import tuned_service_config
from .measure import (
    DEFAULT_PROTOCOL,
    Measurement,
    MeasureProtocol,
    measure_callable,
    measure_plan,
    workload_matrix,
)
from .search import (
    SearchResult,
    ServeThresholdResult,
    Trial,
    model_candidate,
    search,
    search_serve_threshold,
)
from .space import (
    Candidate,
    candidate_plan,
    candidates,
    default_candidate,
    evd_candidates,
    resolve_method,
    serve_threshold_candidates,
)
from .store import (
    SCHEMA_VERSION,
    TuneRecord,
    TuneStoreError,
    TuneStoreWarning,
    TuningStore,
    default_db_path,
    device_fingerprint,
    lookup_tuned_knobs,
    n_bucket,
    record_key,
    reset_tune_stats,
    tune_stats,
)

__all__ = [
    "Candidate",
    "DEFAULT_PROTOCOL",
    "MeasureProtocol",
    "Measurement",
    "SCHEMA_VERSION",
    "SearchResult",
    "ServeThresholdResult",
    "Trial",
    "TuneRecord",
    "TuneStoreError",
    "TuneStoreWarning",
    "TuningStore",
    "candidate_plan",
    "candidates",
    "default_candidate",
    "default_db_path",
    "device_fingerprint",
    "evd_candidates",
    "lookup_tuned_knobs",
    "measure_callable",
    "measure_plan",
    "model_candidate",
    "n_bucket",
    "record_key",
    "reset_tune_stats",
    "resolve_method",
    "search",
    "search_serve_threshold",
    "serve_threshold_candidates",
    "tune_stats",
    "tuned_service_config",
    "workload_matrix",
]
