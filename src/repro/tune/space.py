"""The tuning search space, derived from the plan layer's own rules.

Every candidate this module emits is, by construction *and* by
verification, a valid :func:`repro.plan.plan_evd` call: the generators
bake in the planner's validation and clamping rules (``b <= n - 2``,
``b | k``, ``k <= n``, back-transform group defaulting, the dense
crossover, the serve batch threshold), and :func:`candidate_plan` runs
each candidate through the real planner so the search can never time a
configuration the library would refuse — or silently re-clamp — at
execution time.  Candidates that the planner's clamps would collapse
onto each other are deduplicated by the resolved plan's
``cache_token()``.

The knob values are exactly what an explicit caller would spell, which
is the root of the bit-exactness guarantee: adopting a tuned candidate
is indistinguishable from having typed its knobs by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..plan.config import EVDPlan
from ..plan.errors import PlanError, bad_choice
from ..plan.planner import PRESETS, TRIDIAG_METHODS, auto_params, plan_evd

__all__ = [
    "BANDWIDTHS",
    "SECOND_BLOCK_MULTS",
    "DIRECT_BLOCKS",
    "DENSE_CROSSOVER_MAX_N",
    "PRECISION_AXIS",
    "SERVE_BATCH_THRESHOLDS",
    "Candidate",
    "candidate_plan",
    "candidates",
    "default_candidate",
    "evd_candidates",
    "resolve_method",
    "serve_threshold_candidates",
]

#: DBBR/SBR block sizes worth trying (the paper's sweep, Figure 9/15).
BANDWIDTHS: tuple[int, ...] = (4, 8, 16, 32, 64)

#: ``k = b * mult`` multipliers for the DBBR second blocking dimension
#: (``b | k`` holds by construction; ``k <= n`` filters per size).
SECOND_BLOCK_MULTS: tuple[int, ...] = (2, 4, 8, 16, 32)

#: One-stage (cuSOLVER-style) panel widths.
DIRECT_BLOCKS: tuple[int, ...] = (8, 16, 32, 64)

#: Largest ``n`` at which the dense LAPACK tier is plausibly competitive
#: with the two-stage pipeline — the dense-crossover candidate is only
#: generated below this (mirrors the serving layer's small-``n`` tier).
DENSE_CROSSOVER_MAX_N = 512

#: Candidate ``dense_fastpath_max_n`` thresholds for the serving layer
#: (0 = never promote), bounded by :data:`DENSE_CROSSOVER_MAX_N`.
SERVE_BATCH_THRESHOLDS: tuple[int, ...] = (0, 16, 32, 64, 128, 256, 512)

#: Precision policies the EVD tuner may explore.  ``"fp32"`` is excluded:
#: it accepts float32-level tolerances, so its timings are not
#: apples-to-apples with the fp64-accurate candidates.
PRECISION_AXIS: tuple[str, ...] = ("fp64", "mixed")


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: a method plus the explicit knobs
    an end user would pass to ``plan_evd``/``eigh``.

    ``knobs`` is a sorted tuple of items (hashable, deterministic
    ordering); :attr:`kwargs` rebuilds the call dict.
    """

    method: str
    knobs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, method: str, **knobs: Any) -> "Candidate":
        return cls(method=method, knobs=tuple(sorted(knobs.items())))

    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.knobs)

    @property
    def label(self) -> str:
        if not self.knobs:
            return self.method
        inner = ",".join(f"{k}={v}" for k, v in self.knobs)
        return f"{self.method}({inner})"


def resolve_method(method: str) -> str:
    """Map a preset spelling to the raw tridiagonalization method the
    store keys on (``"proposed"`` -> ``"dbbr"``), validating the name
    with the planner's own error style."""
    preset = PRESETS.get(method)
    if preset is not None:
        return str(preset["method"])
    if method in TRIDIAG_METHODS + ("dense",):
        return method
    raise bad_choice(
        "tunable method", method, tuple(PRESETS) + TRIDIAG_METHODS + ("dense",)
    )


def candidate_plan(n: int, cand: Candidate, backend: str = "numpy") -> EVDPlan:
    """Resolve a candidate through the real planner (validity proof)."""
    return plan_evd(n, cand.method, backend=backend, **cand.kwargs)


def _dbbr_candidates(n: int) -> list[Candidate]:
    out = []
    for b in BANDWIDTHS:
        if b > max(n - 2, 1):
            break  # planner clamp b <= n - 2 would alias these
        for mult in SECOND_BLOCK_MULTS:
            k = b * mult
            if k > n:
                break  # planner clamp k <= n (via k = (k // b) * b)
            out.append(Candidate.make("dbbr", bandwidth=b, second_block=k))
    return out


def _sbr_like_candidates(n: int, method: str) -> list[Candidate]:
    return [
        Candidate.make(method, bandwidth=b)
        for b in BANDWIDTHS
        if b <= max(n - 2, 1)
    ]


def _direct_candidates(n: int) -> list[Candidate]:
    return [Candidate.make("direct", direct_block=nb) for nb in DIRECT_BLOCKS if nb <= max(n, 1)]


def default_candidate(n: int, method: str = "dbbr") -> Candidate:
    """The untuned baseline: what the planner would resolve on its own
    (``auto_params`` for the two-stage methods) spelled explicitly."""
    method = resolve_method(method)
    if method == "dense":
        return Candidate.make("dense")
    if method == "direct":
        return Candidate.make("direct", direct_block=32)
    b, k = auto_params(n)
    b = max(1, min(b, max(n - 2, 1)))
    if method == "dbbr":
        k = max(b, (max(k, b) // b) * b)
        return Candidate.make("dbbr", bandwidth=b, second_block=k)
    return Candidate.make(method, bandwidth=b)


def _dedup(n: int, cands: Iterable[Candidate], backend: str) -> list[Candidate]:
    """Drop candidates the planner resolves to an already-seen plan, and
    (defensively) any the planner rejects outright."""
    seen: set[str] = set()
    out: list[Candidate] = []
    for cand in cands:
        try:
            token = candidate_plan(n, cand, backend).cache_token()
        except PlanError:  # pragma: no cover - generators respect the rules
            continue
        if token not in seen:
            seen.add(token)
            out.append(cand)
    return out


def candidates(n: int, method: str = "dbbr", backend: str = "numpy") -> list[Candidate]:
    """Every valid, distinct candidate for tuning ``method`` at size ``n``.

    The untuned :func:`default_candidate` is always included, so a
    search can never select something slower than the out-of-the-box
    configuration without having measured that configuration too.
    """
    method = resolve_method(method)
    if n < 1:
        raise PlanError(f"cannot tune an empty problem (n = {n})")
    gen: list[Candidate]
    if method == "dense":
        gen = [Candidate.make("dense")]
    elif method == "dbbr":
        gen = _dbbr_candidates(n)
    elif method in ("sbr", "tile"):
        gen = _sbr_like_candidates(n, method)
    else:
        gen = _direct_candidates(n)
    gen.insert(0, default_candidate(n, method))
    return _dedup(n, gen, backend)


def evd_candidates(
    n: int,
    method: str = "dbbr",
    backend: str = "numpy",
    include_dense: bool = True,
    precisions: tuple[str, ...] = ("fp64",),
) -> list[Candidate]:
    """The candidate list for a full EVD at size ``n``: the pipeline
    space plus — below the crossover — the dense tier, so small problems
    can discover that no pipeline beats one vendor kernel.

    ``precisions`` adds a precision axis: for every non-``"fp64"`` entry
    (see :data:`PRECISION_AXIS`) each pipeline candidate gains a twin
    with ``precision=<policy>`` spelled as an explicit knob — exactly
    what an end user would pass to ``eigh`` — so the tuner can discover
    whether the fp32 pipeline + refinement beats the fp64 pipeline on
    this machine.  Non-fp64 policies require the NumPy backend and never
    apply to the dense tier (the planner would refuse both), so those
    twins are simply not generated elsewhere.
    """
    base = candidates(n, method, backend)
    out = list(base)
    for policy in precisions:
        if policy == "fp64":
            continue
        if policy not in PRECISION_AXIS:
            raise bad_choice("tunable precision", policy, PRECISION_AXIS)
        if backend != "numpy":
            continue
        for cand in base:
            if resolve_method(cand.method) == "dense":
                continue
            out.append(
                Candidate.make(cand.method, precision=policy, **cand.kwargs)
            )
    if include_dense and n <= DENSE_CROSSOVER_MAX_N and resolve_method(method) != "dense":
        out.append(Candidate.make("dense"))
    return _dedup(n, out, backend)


def serve_threshold_candidates(max_n: int | None = None) -> list[int]:
    """Candidate ``dense_fastpath_max_n`` values for the serving layer."""
    cap = DENSE_CROSSOVER_MAX_N if max_n is None else max_n
    return [t for t in SERVE_BATCH_THRESHOLDS if t <= cap]
