"""Search strategies over the tuning space.

Two regimes, chosen by grid size against the measurement ``budget``:

* **exhaustive** — small grids are simply all measured; no model can
  mislead a search that times everything.
* **model-pruned coordinate descent** — large grids are first ranked by
  the calibrated analytical cost models (:mod:`repro.models` via
  :func:`repro.plan.explain.predicted_stage_times`) as a *prior*, then
  refined by real measurements: starting from the model's pick,
  descend one knob axis at a time (measuring only that axis's
  neighbors) until no axis improves or the budget is spent.  The model
  cuts the candidates that get timed; it never gets the final word —
  only measured time does.

Every search also measures the untuned default and the ``tuning="model"``
choice, so the stored winner is *never worse than either* on the
machine that ran the search (up to measurement noise — which is why
measurements carry their CV).  Results are deterministic given the
measurements: ties break on the candidate label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..plan.config import EVDPlan
from ..plan.explain import predicted_stage_times
from ..plan.planner import plan_evd
from .measure import DEFAULT_PROTOCOL, Measurement, MeasureProtocol, measure_plan
from .space import (
    Candidate,
    candidate_plan,
    candidates,
    default_candidate,
    evd_candidates,
    resolve_method,
    serve_threshold_candidates,
)
from .store import TuneRecord, TuningStore, timestamp

__all__ = [
    "MeasureFn",
    "SearchResult",
    "ServeThresholdResult",
    "Trial",
    "model_candidate",
    "search",
    "search_serve_threshold",
]

#: Measures one resolved plan — injectable so searches replay recorded
#: measurements deterministically (tests, round-trip audits).
MeasureFn = Callable[[EVDPlan], Measurement]


@dataclass(frozen=True)
class Trial:
    """One timed candidate: what ran, its resolved identity, the
    measurement, and the model's prior prediction (seconds; ``None``
    when no model covers the plan, e.g. the dense tier)."""

    candidate: Candidate
    cache_token: str
    measurement: Measurement
    prior_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "candidate": self.candidate.label,
            "method": self.candidate.method,
            "knobs": self.candidate.kwargs,
            "cache_token": self.cache_token,
            "prior_s": self.prior_s,
            **{f"measured_{k}": v for k, v in self.measurement.to_dict().items()},
        }


@dataclass
class SearchResult:
    """Outcome of one :func:`search` call.

    ``best`` is the fastest measured candidate overall; ``best_pipeline``
    excludes the dense tier (it is what gets stored — the store's knobs
    must be applicable to the searched pipeline method).  ``pruned``
    counts candidates the model prior excluded from measurement.
    """

    n: int
    method: str
    backend: str
    strategy: str
    best: Trial
    best_pipeline: Trial
    trials: list[Trial] = field(default_factory=list)
    space_size: int = 0
    pruned: int = 0
    record: TuneRecord | None = None
    store_key: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "method": self.method,
            "backend": self.backend,
            "strategy": self.strategy,
            "space_size": self.space_size,
            "pruned": self.pruned,
            "best": self.best.to_dict(),
            "best_pipeline": self.best_pipeline.to_dict(),
            "trials": [t.to_dict() for t in self.trials],
            "store_key": self.store_key,
        }


def model_candidate(
    n: int, method: str = "dbbr", backend: str = "numpy", device: str = "h100"
) -> Candidate:
    """What ``tuning="model"`` would run, spelled as an explicit candidate."""
    raw = resolve_method(method)
    plan = plan_evd(n, raw, backend=backend, tuning="model", device=device)
    t = plan.tridiag
    if t is None:
        return Candidate.make("dense")
    knobs: dict[str, Any] = {}
    if t.method == "direct":
        knobs["direct_block"] = t.direct_block
    else:
        knobs["bandwidth"] = t.bandwidth
        if t.method == "dbbr":
            knobs["second_block"] = t.second_block
    return Candidate.make(raw, **knobs)


def _prior(plan: EVDPlan, device: str) -> float | None:
    stages = predicted_stage_times(plan, device=device)
    if not stages:
        return None
    return float(sum(stages.values()))


class _Budget:
    """Counts unique measured candidates against the allowance."""

    def __init__(self, limit: int) -> None:
        self.limit = max(1, limit)
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit


def _measure_candidates(
    n: int,
    cands: list[Candidate],
    backend: str,
    device: str,
    measure_fn: MeasureFn,
    memo: dict[str, Trial],
    budget: _Budget,
) -> list[Trial]:
    """Measure candidates (memoized on resolved cache token) until the
    budget runs out; returns the trials for this batch in order."""
    out: list[Trial] = []
    for cand in cands:
        plan = candidate_plan(n, cand, backend)
        token = plan.cache_token()
        trial = memo.get(token)
        if trial is None:
            if budget.exhausted:
                continue
            budget.used += 1
            trial = Trial(
                candidate=cand,
                cache_token=token,
                measurement=measure_fn(plan),
                prior_s=_prior(plan, device),
            )
            memo[token] = trial
        out.append(trial)
    return out


def _rank_key(trial: Trial) -> tuple[float, str]:
    return (trial.measurement.time_s, trial.candidate.label)


def _coordinate_descent(
    n: int,
    pool: list[Candidate],
    start: Trial,
    backend: str,
    device: str,
    measure_fn: MeasureFn,
    memo: dict[str, Trial],
    budget: _Budget,
) -> Trial:
    """Greedy one-axis-at-a-time descent over the candidate pool."""
    best = start
    improved = True
    while improved and not budget.exhausted:
        improved = False
        axes = sorted(best.candidate.kwargs)
        for axis in axes:
            fixed = {k: v for k, v in best.candidate.knobs if k != axis}
            neighbors = [
                c
                for c in pool
                if c.method == best.candidate.method
                and {k: v for k, v in c.knobs if k != axis} == fixed
            ]
            trials = _measure_candidates(
                n, neighbors, backend, device, measure_fn, memo, budget
            )
            if not trials:
                continue
            winner = min(trials + [best], key=_rank_key)
            if winner.cache_token != best.cache_token:
                best = winner
                improved = True
    return best


def search(
    n: int,
    method: str = "proposed",
    *,
    backend: str = "numpy",
    budget: int = 32,
    protocol: MeasureProtocol = DEFAULT_PROTOCOL,
    device: str = "h100",
    include_dense: bool = False,
    measure_fn: MeasureFn | None = None,
    store: TuningStore | None = None,
    save: bool = False,
) -> SearchResult:
    """Tune ``method`` at size ``n`` and (optionally) record the winner.

    ``budget`` caps the number of *unique* candidates measured.  When the
    whole space fits, the search is exhaustive; otherwise the model
    prior seeds a coordinate descent (see module docstring).  The
    untuned default and the model's own choice are always measured.

    With ``store`` given, the best *pipeline* candidate is recorded
    under the store key for ``(n, method, backend)`` on this machine's
    device fingerprint (``save=True`` also persists to disk).
    """
    raw = resolve_method(method)
    if measure_fn is None:
        measure_fn = lambda plan: measure_plan(plan, protocol)  # noqa: E731
    pool = (
        evd_candidates(n, raw, backend)
        if include_dense
        else candidates(n, raw, backend)
    )
    anchors = [default_candidate(n, raw)]
    if raw != "dense":
        anchors.append(model_candidate(n, raw, backend, device))
    memo: dict[str, Trial] = {}
    budget_box = _Budget(budget)

    anchor_trials = _measure_candidates(
        n, anchors, backend, device, measure_fn, memo, budget_box
    )
    if len(pool) <= budget_box.limit:
        strategy = "exhaustive"
        _measure_candidates(n, pool, backend, device, measure_fn, memo, budget_box)
    else:
        strategy = "model-pruned-descent"
        # The model ranks the whole space for free; measurement starts
        # from its best-predicted candidate (falling back to the model
        # anchor when the prior covers nothing).
        ranked = sorted(
            pool,
            key=lambda c: (
                _prior(candidate_plan(n, c, backend), device) or 0.0,
                c.label,
            ),
        )
        seeds = _measure_candidates(
            n, ranked[:1], backend, device, measure_fn, memo, budget_box
        )
        start = min(seeds + anchor_trials, key=_rank_key)
        _coordinate_descent(
            n, pool, start, backend, device, measure_fn, memo, budget_box
        )
        # The dense crossover candidate sits on no pipeline axis — make
        # sure it was considered when the pool includes it.
        dense = [c for c in pool if c.method == "dense"]
        _measure_candidates(n, dense, backend, device, measure_fn, memo, budget_box)

    trials = sorted(memo.values(), key=_rank_key)
    best = trials[0]
    pipeline_trials = [t for t in trials if t.candidate.method != "dense"] or trials
    best_pipeline = pipeline_trials[0]

    result = SearchResult(
        n=n,
        method=raw,
        backend=backend,
        strategy=strategy,
        best=best,
        best_pipeline=best_pipeline,
        trials=trials,
        space_size=len(pool),
        pruned=max(0, len(pool) - budget_box.used),
    )
    if store is not None:
        record = TuneRecord(
            method=best_pipeline.candidate.method,
            knobs=best_pipeline.candidate.kwargs,
            time_s=best_pipeline.measurement.time_s,
            cv=best_pipeline.measurement.cv,
            n=n,
            source="measured",
            protocol=protocol.to_dict(),
            created=timestamp(),
        )
        result.record = record
        result.store_key = store.put(n, raw, backend, record)
        if save:
            store.save()
    return result


@dataclass
class ServeThresholdResult:
    """Measured dense-vs-pipeline crossover for the serving layer.

    ``threshold`` is the largest probed size at which the dense tier
    beat the pipeline — the tuned ``dense_fastpath_max_n`` (0 means the
    pipeline won everywhere probed, i.e. never promote)."""

    backend: str
    threshold: int
    probes: list[dict[str, Any]] = field(default_factory=list)
    record: TuneRecord | None = None
    store_key: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "threshold": self.threshold,
            "probes": self.probes,
            "store_key": self.store_key,
        }


def search_serve_threshold(
    *,
    backend: str = "numpy",
    protocol: MeasureProtocol = DEFAULT_PROTOCOL,
    sizes: list[int] | None = None,
    measure_fn: MeasureFn | None = None,
    store: TuningStore | None = None,
    save: bool = False,
) -> ServeThresholdResult:
    """Measure where the stacked dense tier stops beating the pipeline.

    Probes each candidate threshold size with both the dense plan and
    the default pipeline plan; the crossover becomes the tuned
    ``dense_fastpath_max_n`` a :class:`repro.serve.ServiceConfig` can
    adopt (:func:`repro.tune.tuned_service_config`).  Stored under the
    pseudo-method ``"serve"`` at the global ``n = 1`` bucket.
    """
    if measure_fn is None:
        measure_fn = lambda plan: measure_plan(plan, protocol)  # noqa: E731
    probe_sizes = [s for s in (sizes or serve_threshold_candidates()) if s >= 2]
    threshold = 0
    probes: list[dict[str, Any]] = []
    for s in sorted(probe_sizes):
        dense = measure_fn(plan_evd(s, "dense", backend=backend))
        pipe = measure_fn(plan_evd(s, "proposed", backend=backend))
        dense_wins = dense.time_s <= pipe.time_s
        probes.append(
            {
                "n": s,
                "dense_s": dense.time_s,
                "pipeline_s": pipe.time_s,
                "dense_wins": dense_wins,
            }
        )
        if dense_wins:
            threshold = s
    result = ServeThresholdResult(backend=backend, threshold=threshold, probes=probes)
    if store is not None:
        record = TuneRecord(
            method="serve",
            knobs={"dense_fastpath_max_n": threshold},
            time_s=0.0,
            n=1,
            source="measured",
            protocol=protocol.to_dict(),
            created=timestamp(),
        )
        result.record = record
        result.store_key = store.put(1, "serve", backend, record)
        if save:
            store.save()
    return result
